/**
 * @file
 * Ablation: pre-silicon accelerator design-space exploration — the
 * capability the paper argues hardware-in-the-loop with off-the-shelf
 * parts cannot provide (Section 2.2: MAVBench users can only tune
 * "post-silicon system parameters such as core count and clock
 * frequency, without access to a wider range of microarchitectural
 * parameters across accelerator design and SoC integration").
 *
 * Three sweeps:
 *  1. Gemmini mesh size (2x2 .. 16x16) x scratchpad capacity ->
 *     isolated inference latency of ResNet14/ResNet34;
 *  2. memory contention: a background bus master consuming a fraction
 *     of the shared 128-bit bus (modeled with soc::SharedBus) erodes
 *     the accelerator's effective bandwidth -> inference latency;
 *  3. closed-loop check: a 2x2-mesh SoC vs the baseline 4x4 at the
 *     paper's 9 m/s s-shape mission.
 */

#include <cstdio>
#include <string>

#include "core/experiment.hh"
#include "dnn/engine.hh"
#include "soc/mem.hh"

using namespace rose;

namespace {

double
latencyWith(const gemmini::GemminiConfig &g, int depth)
{
    dnn::ExecutionEngine engine(soc::configA(), g);
    return engine.latencySeconds(dnn::makeResNet(depth));
}

} // namespace

int
main()
{
    std::printf("Ablation 1: Gemmini mesh / scratchpad sweep "
                "(BOOM host, isolated inference latency)\n\n");
    std::printf("%-8s %-10s %-14s %-14s\n", "mesh", "spad[KiB]",
                "ResNet14[ms]", "ResNet34[ms]");
    for (int mesh : {2, 4, 8, 16}) {
        for (uint32_t spad_kib : {128u, 256u, 512u}) {
            gemmini::GemminiConfig g;
            g.meshRows = g.meshCols = mesh;
            g.scratchpadBytes = spad_kib * 1024;
            g.accumulatorBytes = spad_kib * 256; // keep 4:1 ratio
            std::printf("%dx%-6d %-10u %-14.0f %-14.0f\n", mesh, mesh,
                        spad_kib, latencyWith(g, 14) * 1e3,
                        latencyWith(g, 34) * 1e3);
        }
    }
    std::printf("\nExpected shape: latency saturates with mesh size "
                "(host overhead dominates the small nets) — exactly "
                "why end-to-end evaluation matters; scratchpad capacity "
                "is secondary at these layer sizes.\n");

    // ------------------------------------------------------------------
    std::printf("\nAblation 2: shared-bus contention (background "
                "traffic vs inference latency)\n\n");
    std::printf("%-14s %-16s %-14s %-14s\n", "bg-traffic", "eff-bw[B/cy]",
                "ResNet14[ms]", "ResNet34[ms]");
    soc::SharedBus bus(16.0);
    for (double frac : {0.0, 0.5, 0.75, 0.875, 0.9375}) {
        gemmini::GemminiConfig g;
        g.busBytesPerCycle = bus.effectiveBandwidth(frac);
        std::printf("%-14.1f %-16.1f %-14.0f %-14.0f\n", frac * 100.0,
                    g.busBytesPerCycle, latencyWith(g, 14) * 1e3,
                    latencyWith(g, 34) * 1e3);
    }
    std::printf("\nExpected shape: the double-buffered accelerator is "
                "compute-bound and tolerates moderate contention, then "
                "degrades once effective bandwidth crosses the "
                "compute/memory balance point — the kind of threshold "
                "only a system-level model exposes.\n");

    // ------------------------------------------------------------------
    std::printf("\nAblation 3: closed-loop effect of mesh size "
                "(s-shape @ 9 m/s, ResNet34 controller)\n\n");
    std::printf("%-8s %-12s %-10s %-6s\n", "mesh", "infer[ms]",
                "mission", "coll");
    for (int mesh : {2, 4, 8}) {
        gemmini::GemminiConfig g;
        g.meshRows = g.meshCols = mesh;

        core::MissionSpec spec;
        spec.world = "s-shape";
        spec.socName = "A";
        spec.modelDepth = 34;
        spec.velocity = 9.0;
        spec.maxSimSeconds = 60.0;
        core::CosimConfig cfg = spec.toConfig();
        cfg.app.gemmini = g;
        core::CoSimulation sim(cfg);
        core::MissionResult r = sim.run();
        std::printf("%dx%-6d %-12.0f %-10s %-6llu\n", mesh, mesh,
                    latencyWith(g, 34) * 1e3,
                    core::missionTimeString(r).c_str(),
                    (unsigned long long)r.collisions);
    }
    return 0;
}
