/**
 * @file
 * Ablation: RoSÉ bridge hardware-queue sizing.
 *
 * The bridge's RX queue must stage at least one camera frame
 * (Section 3.4's hardware queues are finite SRAM). This sweep sizes
 * the RX FIFO against the camera resolution and reports drops and the
 * closed-loop consequence: an undersized bridge silently discards
 * sensor data, and the control loop starves — a sizing bug this
 * infrastructure exposes pre-silicon.
 */

#include <cstdio>

#include "core/experiment.hh"

int
main()
{
    using namespace rose;

    // One 64x48 8-bit frame is 3072 B + 9 B of packet framing.
    std::printf("Ablation: bridge RX FIFO sizing (tunnel @ 3 m/s, "
                "ResNet14, 64x48 camera = ~3.1 KiB/frame)\n\n");
    std::printf("%-12s %-10s %-8s %-10s %-10s %-8s\n", "rx-fifo[B]",
                "mission", "coll", "rx-pkts", "dropped", "infer");

    for (size_t rx_bytes : {1024u, 2048u, 4096u, 65536u}) {
        core::MissionSpec spec;
        spec.world = "tunnel";
        spec.socName = "A";
        spec.modelDepth = 14;
        spec.velocity = 3.0;
        spec.maxSimSeconds = 20.0;

        core::CosimConfig cfg = spec.toConfig();
        cfg.bridgeCfg.rxFifoBytes = rx_bytes;

        core::CoSimulation sim(cfg);
        core::MissionResult r = sim.run();
        const bridge::BridgeStats &bs = sim.bridge().stats();
        std::printf("%-12zu %-10s %-8llu %-10llu %-10llu %-8llu\n",
                    rx_bytes, core::missionTimeString(r).c_str(),
                    (unsigned long long)r.collisions,
                    (unsigned long long)bs.rxPackets,
                    (unsigned long long)bs.rxDropped,
                    (unsigned long long)r.inferences);
    }

    std::printf("\nExpected shape: below one frame (~3.1 KiB) every "
                "image is dropped and the mission never starts; at or "
                "above one frame the loop runs normally. Sizing "
                "guidance: >= one frame plus slack for coalesced "
                "responses.\n");
    return 0;
}
