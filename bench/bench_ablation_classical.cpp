/**
 * @file
 * Ablation: DNN controller vs classical vision-aided MPC on the same
 * SoC and mission — the paper's Section 6 extension class
 * ("classical algorithms ... build upon iterative optimization
 * algorithms ... [with] data-dependent runtime behaviors"). Reports
 * the per-loop compute-time distribution (the classical loop's
 * variance comes entirely from data-dependent solver iterations) and
 * the mission-level outcomes, per SoC.
 *
 * Each SoC's DNN/MPC mission pair is an independent work item run
 * through the deterministic parallel map (--jobs N; output identical
 * for any N).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/batch.hh"
#include "core/experiment.hh"
#include "util/stats.hh"

namespace {

/** Both companion-software variants on one SoC. */
struct SocRow
{
    rose::core::MissionResult dnn;
    rose::core::MpcMissionResult mpc;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace rose;

    core::BatchCli cli = core::parseBatchCli(argc, argv);

    std::printf("Ablation: DNN vs classical MPC companion software "
                "(tunnel @ 3 m/s)\n\n");
    std::printf("%-4s %-10s %-8s %-7s %-7s %-9s %-12s %-14s\n", "SoC",
                "app", "mission", "coll", "loops", "rate[Hz]",
                "lat[ms]", "iters min/avg/max");

    const std::vector<const char *> socs = {"A", "B"};
    std::vector<SocRow> rows = core::parallelIndexed<SocRow>(
        socs.size(), cli.jobs, [&socs](size_t i) {
            core::MissionSpec spec;
            spec.world = "tunnel";
            spec.socName = socs[i];
            spec.modelDepth = 14;
            spec.velocity = 3.0;
            spec.maxSimSeconds = 40.0;

            SocRow row;
            row.dnn = core::runMission(spec);
            row.mpc = core::runMpcMission(spec);
            return row;
        });

    for (size_t i = 0; i < socs.size(); ++i) {
        const char *soc_name = socs[i];
        const core::MissionResult &dnn = rows[i].dnn;
        const core::MpcMissionResult &mpc = rows[i].mpc;

        std::printf("%-4s %-10s %-8s %-7llu %-7llu %-9.1f %-12.0f %-14s\n",
                    soc_name, "trail-dnn",
                    core::missionTimeString(dnn).c_str(),
                    (unsigned long long)dnn.collisions,
                    (unsigned long long)dnn.inferences,
                    dnn.missionTime > 0
                        ? double(dnn.inferences) / dnn.missionTime
                        : 0.0,
                    dnn.avgInferenceLatency * 1e3, "-");

        ScalarStat iters;
        for (const runtime::MpcRecord &rec : mpc.log)
            iters.sample(double(rec.solverIterations));
        std::printf("%-4s %-10s %7.2fs %-7llu %-7zu %-9.1f %-12.1f "
                    "%2.0f/%4.1f/%2.0f\n",
                    soc_name, "mpc",
                    mpc.missionTime,
                    (unsigned long long)mpc.collisions, mpc.log.size(),
                    mpc.missionTime > 0
                        ? double(mpc.log.size()) / mpc.missionTime
                        : 0.0,
                    mpc.avgLatencySeconds() * 1e3, iters.min(),
                    iters.mean(), iters.max());
    }

    std::printf("\nExpected shape: the classical loop runs an order of "
                "magnitude faster than the DNN pipeline and uses no "
                "accelerator, but its per-loop compute is "
                "data-dependent (iteration spread), the behavior class "
                "the paper's Section 6 targets.\n");
    return 0;
}
