/**
 * @file
 * Ablation: mission energy across the design space — the axis the
 * paper's motivation is built on (Section 1: the fruit fly's 120 nW vs
 * 2 mW VIO silicon; Section 2.1: battery and weight bound onboard
 * compute). For every SoC x DNN design point, reports mission energy
 * and average SoC power on the s-shape task, next to mission time —
 * the energy/latency/robustness trade surface a robotics-SoC architect
 * actually navigates.
 *
 * The 10-point design matrix runs through the deterministic mission
 * batch runner (--jobs N; output identical for any N).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/batch.hh"
#include "core/experiment.hh"
#include "dnn/resnet.hh"

int
main(int argc, char **argv)
{
    using namespace rose;

    core::BatchCli cli = core::parseBatchCli(argc, argv);

    std::printf("Ablation: mission energy (s-shape @ 9 m/s)\n\n");
    std::printf("%-4s %-10s %-10s %-6s %-12s %-12s %-14s\n", "SoC",
                "DNN", "mission", "coll", "energy[J]", "power[mW]",
                "J-per-meter");

    std::vector<core::MissionSpec> specs;
    for (const char *soc_name : {"A", "B"}) {
        for (int depth : dnn::resnetZoo()) {
            core::MissionSpec spec;
            spec.world = "s-shape";
            spec.socName = soc_name;
            spec.modelDepth = depth;
            spec.velocity = 9.0;
            spec.maxSimSeconds = 60.0;
            specs.push_back(spec);
        }
    }

    core::BatchRunner runner(cli.options());
    std::vector<core::MissionResult> results = runner.run(specs);

    for (size_t i = 0; i < specs.size(); ++i) {
        const core::MissionSpec &spec = specs[i];
        const core::MissionResult &r = results[i];
        double jpm = r.distanceTravelled > 1.0
                         ? r.energyJoules / r.distanceTravelled
                         : 0.0;
        std::printf("%-4s %-10s %-10s %-6llu %-12.3f %-12.1f "
                    "%-14.4f\n",
                    spec.socName.c_str(),
                    ("ResNet" + std::to_string(spec.modelDepth)).c_str(),
                    core::missionTimeString(r).c_str(),
                    (unsigned long long)r.collisions,
                    r.energyJoules, r.avgPowerWatts * 1e3, jpm);
    }

    core::BatchReport report("ablation_energy");
    report.add("soc_x_zoo", runner.stats());
    report.write(cli.jsonPath);

    std::printf("\nExpected shape: energy grows with model size (more "
                "accelerator and host activity) and explodes for "
                "design points that collide (longer missions at high "
                "power); the in-order host (B) draws less power but "
                "pays in mission robustness — the co-design trade the "
                "paper's infrastructure exists to expose.\n");
    return 0;
}
