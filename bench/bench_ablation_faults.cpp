/**
 * @file
 * Ablation: closed-loop robustness under transport faults.
 *
 * The FaultInjectTransport decorator drops (and optionally delays) data
 * packets on the synchronizer<->bridge link. This sweep raises the drop
 * probability and reports mission outcome, sensor retries, and
 * inference throughput: with the sensor-timeout/retry path the control
 * loop degrades gracefully (extra latency per lost frame) instead of
 * deadlocking — the failure mode the transport hardening removed.
 *
 * Each drop rate is an independent seeded simulation run through the
 * deterministic parallel map (--jobs N; output identical for any N).
 */

#include <cstdio>
#include <vector>

#include "core/batch.hh"
#include "core/experiment.hh"

namespace {

/** One drop-rate point with the stats read off the live simulation. */
struct FaultRow
{
    rose::core::MissionResult result;
    rose::bridge::FaultStats faults;
    uint64_t sensorRetries = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace rose;

    core::BatchCli cli = core::parseBatchCli(argc, argv);

    std::printf("Ablation: transport packet loss (tunnel @ 3 m/s, "
                "ResNet14, seeded fault injection, sync packets "
                "protected)\n\n");
    std::printf("%-10s %-10s %-8s %-10s %-10s %-10s %-8s %-8s\n",
                "drop-p", "mission", "coll", "pkts", "dropped",
                "retries", "infer", "error");

    const std::vector<double> drops = {0.0, 0.02, 0.05, 0.1, 0.2};
    std::vector<FaultRow> rows = core::parallelIndexed<FaultRow>(
        drops.size(), cli.jobs, [&drops](size_t i) {
            core::MissionSpec spec;
            spec.world = "tunnel";
            spec.socName = "A";
            spec.modelDepth = 14;
            spec.velocity = 3.0;
            spec.maxSimSeconds = 30.0;

            core::CosimConfig cfg = spec.toConfig();
            cfg.faults.enabled = true;
            cfg.faults.dropProb = drops[i];
            cfg.faults.seed = 0xab1a;

            core::CoSimulation sim(cfg);
            FaultRow row;
            row.result = sim.run();
            if (const bridge::FaultStats *fs = sim.faultStats())
                row.faults = *fs;
            row.sensorRetries = sim.app().sensorRetries();
            return row;
        });

    for (size_t i = 0; i < drops.size(); ++i) {
        const FaultRow &row = rows[i];
        std::printf("%-10.2f %-10s %-8llu %-10llu %-10llu %-10llu "
                    "%-8llu %-8s\n",
                    drops[i],
                    core::missionTimeString(row.result).c_str(),
                    (unsigned long long)row.result.collisions,
                    (unsigned long long)(row.faults.sent +
                                         row.faults.received),
                    (unsigned long long)row.faults.dropped,
                    (unsigned long long)row.sensorRetries,
                    (unsigned long long)row.result.inferences,
                    row.result.transportError ? "yes" : "-");
    }

    std::printf("\nExpected shape: at 0%% loss the baseline mission "
                "completes with zero retries; as loss rises the app "
                "re-issues sensor requests (retries grow, inference "
                "rate falls) and the mission slows but still "
                "terminates — never a hang. Sync packets are protected "
                "so the lockstep itself stays live.\n");
    return 0;
}
