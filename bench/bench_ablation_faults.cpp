/**
 * @file
 * Ablation: closed-loop robustness under transport faults.
 *
 * The FaultInjectTransport decorator drops (and optionally delays) data
 * packets on the synchronizer<->bridge link. This sweep raises the drop
 * probability and reports mission outcome, sensor retries, and
 * inference throughput: with the sensor-timeout/retry path the control
 * loop degrades gracefully (extra latency per lost frame) instead of
 * deadlocking — the failure mode this PR's hardening removes.
 */

#include <cstdio>

#include "core/experiment.hh"

int
main()
{
    using namespace rose;

    std::printf("Ablation: transport packet loss (tunnel @ 3 m/s, "
                "ResNet14, seeded fault injection, sync packets "
                "protected)\n\n");
    std::printf("%-10s %-10s %-8s %-10s %-10s %-10s %-8s %-8s\n",
                "drop-p", "mission", "coll", "pkts", "dropped",
                "retries", "infer", "error");

    for (double drop : {0.0, 0.02, 0.05, 0.1, 0.2}) {
        core::MissionSpec spec;
        spec.world = "tunnel";
        spec.socName = "A";
        spec.modelDepth = 14;
        spec.velocity = 3.0;
        spec.maxSimSeconds = 30.0;

        core::CosimConfig cfg = spec.toConfig();
        cfg.faults.enabled = true;
        cfg.faults.dropProb = drop;
        cfg.faults.seed = 0xab1a;

        core::CoSimulation sim(cfg);
        core::MissionResult r = sim.run();
        const bridge::FaultStats *fs = sim.faultStats();
        std::printf("%-10.2f %-10s %-8llu %-10llu %-10llu %-10llu "
                    "%-8llu %-8s\n",
                    drop, core::missionTimeString(r).c_str(),
                    (unsigned long long)r.collisions,
                    (unsigned long long)(fs ? fs->sent + fs->received
                                            : 0),
                    (unsigned long long)(fs ? fs->dropped : 0),
                    (unsigned long long)sim.app().sensorRetries(),
                    (unsigned long long)r.inferences,
                    r.transportError ? "yes" : "-");
    }

    std::printf("\nExpected shape: at 0%% loss the baseline mission "
                "completes with zero retries; as loss rises the app "
                "re-issues sensor requests (retries grow, inference "
                "rate falls) and the mission slows but still "
                "terminates — never a hang. Sync packets are protected "
                "so the lockstep itself stays live.\n");
    return 0;
}
