/**
 * @file
 * Ablation: closed-loop robustness under transport faults, and the
 * resilience layer's recovery behavior on top of it.
 *
 * Part 1 (transport hardening, PR 1): the FaultInjectTransport
 * decorator drops data packets on the synchronizer<->bridge link while
 * the sync control plane stays protected. The app's sensor-timeout /
 * retry path degrades gracefully (extra latency per lost frame)
 * instead of deadlocking.
 *
 * Part 2 (mission supervisor): the protection comes off, so a single
 * lost SyncGrant/SyncDone aborts an unsupervised mission. The sweep
 * compares unsupervised vs supervised runs across drop rates: the
 * supervisor restores the latest checkpoint and rerolls the injector
 * seed, converting hard aborts into completed simulated time.
 *
 * Part 3 (degraded-mode control): heavy data-plane loss with the
 * classical fallback enabled — the app trades DNN inference for a
 * proportional controller during sensor starvation instead of coasting
 * blind.
 *
 * Results (all parts) are written to BENCH_resilience.json. Each
 * sweep point is an independent seeded simulation run through the
 * deterministic parallel map (--jobs N; output identical for any N).
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/batch.hh"
#include "core/experiment.hh"
#include "core/supervisor.hh"

namespace {

using namespace rose;

/** One drop-rate point with the stats read off the live simulation. */
struct FaultRow
{
    core::MissionResult result;
    bridge::FaultStats faults;
    uint64_t sensorRetries = 0;
};

/** One recovery-sweep point (unsupervised/supervised pair). */
struct RecoveryRow
{
    double dropProb = 0.0;
    core::MissionResult bare;
    core::MissionResult supervised;
    core::SupervisorStats sup;
};

/** One degraded-mode point. */
struct DegradedRow
{
    double dropProb = 0.0;
    core::MissionResult result;
    uint64_t degradedCommands = 0;
};

core::MissionSpec
baseSpec(double max_sim_seconds)
{
    core::MissionSpec spec;
    spec.world = "tunnel";
    spec.socName = "A";
    spec.modelDepth = 14;
    spec.velocity = 3.0;
    spec.maxSimSeconds = max_sim_seconds;
    return spec;
}

void
jsonMission(std::ostream &os, const core::MissionResult &r,
            double max_sim_seconds)
{
    os << "{\"status\": \"" << core::missionStatusName(r.status)
       << "\", \"mission_time\": " << r.missionTime
       << ", \"sim_time_fraction\": "
       << (max_sim_seconds > 0.0 ? r.missionTime / max_sim_seconds : 0.0)
       << ", \"collisions\": " << r.collisions
       << ", \"inferences\": " << r.inferences
       << ", \"distance_m\": " << r.distanceTravelled << "}";
}

} // namespace

int
main(int argc, char **argv)
{
    core::BatchCli cli = core::parseBatchCli(argc, argv);

    // ---------------- Part 1: protected sync, graceful retries ------
    std::printf("Ablation: transport packet loss (tunnel @ 3 m/s, "
                "ResNet14, seeded fault injection, sync packets "
                "protected)\n\n");
    std::printf("%-10s %-10s %-8s %-10s %-10s %-10s %-8s %-8s\n",
                "drop-p", "mission", "coll", "pkts", "dropped",
                "retries", "infer", "error");

    const std::vector<double> drops = {0.0, 0.02, 0.05, 0.1, 0.2};
    std::vector<FaultRow> rows = core::parallelIndexed<FaultRow>(
        drops.size(), cli.jobs, [&drops](size_t i) {
            core::MissionSpec spec = baseSpec(30.0);
            core::CosimConfig cfg = spec.toConfig();
            cfg.faults.enabled = true;
            cfg.faults.dropProb = drops[i];
            cfg.faults.seed = 0xab1a;

            core::CoSimulation sim(cfg);
            FaultRow row;
            row.result = sim.run();
            if (const bridge::FaultStats *fs = sim.faultStats())
                row.faults = *fs;
            row.sensorRetries = sim.app().sensorRetries();
            return row;
        });

    for (size_t i = 0; i < drops.size(); ++i) {
        const FaultRow &row = rows[i];
        std::printf("%-10.2f %-10s %-8llu %-10llu %-10llu %-10llu "
                    "%-8llu %-8s\n",
                    drops[i],
                    core::missionTimeString(row.result).c_str(),
                    (unsigned long long)row.result.collisions,
                    (unsigned long long)(row.faults.sent +
                                         row.faults.received),
                    (unsigned long long)row.faults.dropped,
                    (unsigned long long)row.sensorRetries,
                    (unsigned long long)row.result.inferences,
                    row.result.transportError ? "yes" : "-");
    }

    // ---------------- Part 2: supervisor recovery sweep -------------
    constexpr double kRecoverySimSeconds = 8.0;
    std::printf("\nRecovery sweep: unprotected sync control "
                "(any lost grant aborts), supervisor off vs on "
                "(checkpoint every 20 periods, reroll-seed retry)\n\n");
    std::printf("%-10s %-14s %-8s %-14s %-8s %-9s %-6s\n", "drop-p",
                "bare", "t/Tmax", "supervised", "t/Tmax", "restores",
                "cold");

    const std::vector<double> hostile = {0.0005, 0.001, 0.002, 0.005};
    std::vector<RecoveryRow> rec = core::parallelIndexed<RecoveryRow>(
        hostile.size(), cli.jobs, [&hostile](size_t i) {
            core::MissionSpec spec = baseSpec(kRecoverySimSeconds);
            spec.faults.enabled = true;
            spec.faults.protectSyncPackets = false;
            spec.faults.dropProb = hostile[i];
            spec.faults.seed = 0xab1a + i;

            RecoveryRow row;
            row.dropProb = hostile[i];
            row.bare = core::runMission(spec);

            core::SupervisorConfig sup;
            sup.checkpointPeriods = 20;
            sup.checkpointRingSize = 4;
            sup.maxRetries = 100;
            sup.faultPolicy = core::FaultRetryPolicy::RerollSeed;
            core::MissionSupervisor supervisor(spec.toConfig(), sup);
            row.supervised = supervisor.run();
            row.sup = supervisor.stats();
            return row;
        });

    for (const RecoveryRow &row : rec) {
        std::printf(
            "%-10.4f %-14s %-8.2f %-14s %-8.2f %-9llu %-6llu\n",
            row.dropProb, core::missionStatusName(row.bare.status),
            row.bare.missionTime / kRecoverySimSeconds,
            core::missionStatusName(row.supervised.status),
            row.supervised.missionTime / kRecoverySimSeconds,
            (unsigned long long)row.sup.restores,
            (unsigned long long)row.sup.coldRestarts);
    }

    // ---------------- Part 3: degraded-mode control ------------------
    constexpr double kDegradedSimSeconds = 8.0;
    std::printf("\nDegraded-mode sweep: heavy data-plane loss "
                "(sync protected), classical fallback enabled\n\n");
    std::printf("%-10s %-12s %-10s %-11s %-10s %-10s\n", "drop-p",
                "status", "intervals", "fallbacks", "infer", "dist-m");

    const std::vector<double> heavy = {0.1, 0.25, 0.4};
    std::vector<DegradedRow> deg = core::parallelIndexed<DegradedRow>(
        heavy.size(), cli.jobs, [&heavy](size_t i) {
            core::MissionSpec spec = baseSpec(kDegradedSimSeconds);
            spec.degradedMode = true;
            spec.faults.enabled = true;
            spec.faults.dropProb = heavy[i];
            spec.faults.seed = 0xab1a;

            DegradedRow row;
            row.dropProb = heavy[i];
            row.result = core::runMission(spec);
            for (const auto &d : row.result.degradedIntervals)
                row.degradedCommands += d.commands;
            return row;
        });

    for (const DegradedRow &row : deg) {
        std::printf("%-10.2f %-12s %-10zu %-11llu %-10llu %-10.1f\n",
                    row.dropProb,
                    core::missionStatusName(row.result.status),
                    row.result.degradedIntervals.size(),
                    (unsigned long long)row.degradedCommands,
                    (unsigned long long)row.result.inferences,
                    row.result.distanceTravelled);
    }

    // ---------------- JSON report ------------------------------------
    std::ostringstream js;
    js.precision(6);
    js << "{\n  \"bench\": \"ablation_faults\",\n  \"retry_sweep\": [";
    for (size_t i = 0; i < drops.size(); ++i) {
        js << (i ? ",\n    " : "\n    ") << "{\"drop_prob\": "
           << drops[i] << ", \"sensor_retries\": "
           << rows[i].sensorRetries << ", \"dropped\": "
           << rows[i].faults.dropped << ", \"mission\": ";
        jsonMission(js, rows[i].result, 30.0);
        js << "}";
    }
    js << "\n  ],\n  \"recovery_sweep\": [";
    for (size_t i = 0; i < rec.size(); ++i) {
        js << (i ? ",\n    " : "\n    ") << "{\"drop_prob\": "
           << rec[i].dropProb << ", \"unsupervised\": ";
        jsonMission(js, rec[i].bare, kRecoverySimSeconds);
        js << ", \"supervised\": ";
        jsonMission(js, rec[i].supervised, kRecoverySimSeconds);
        js << ", \"checkpoints\": " << rec[i].sup.checkpointsTaken
           << ", \"restores\": " << rec[i].sup.restores
           << ", \"cold_restarts\": " << rec[i].sup.coldRestarts
           << ", \"retries\": " << rec[i].sup.retriesUsed << "}";
    }
    js << "\n  ],\n  \"degraded_sweep\": [";
    for (size_t i = 0; i < deg.size(); ++i) {
        js << (i ? ",\n    " : "\n    ") << "{\"drop_prob\": "
           << deg[i].dropProb << ", \"degraded_intervals\": "
           << deg[i].result.degradedIntervals.size()
           << ", \"fallback_commands\": " << deg[i].degradedCommands
           << ", \"mission\": ";
        jsonMission(js, deg[i].result, kDegradedSimSeconds);
        js << "}";
    }
    js << "\n  ]\n}\n";

    const char *json_path = "BENCH_resilience.json";
    std::ofstream out(json_path);
    if (out) {
        out << js.str();
        std::printf("\nresilience report written to %s\n", json_path);
    }

    std::printf(
        "\nExpected shape: with sync protection on, loss costs retries "
        "and inference rate, never a hang. With protection off, the "
        "unsupervised column aborts at the first lost grant while the "
        "supervised column recovers to the full simulated horizon. "
        "Under heavy loss the degraded-mode app swaps starved DNN "
        "iterations for classical-fallback commands and keeps moving.\n");
    return 0;
}
