/**
 * @file
 * Ablation: multi-tenant interference — the paper's opening motivation
 * ("the performance of each individual accelerator can be heavily
 * impacted by system-level resource contentions where multiple
 * general-purpose cores and accelerators are running together",
 * Section 1). A background CPU task (telemetry/logging/mapping class)
 * time-shares the companion computer with the ResNet14 controller; the
 * sweep shows how growing co-tenant share stretches the effective
 * inference latency and degrades — then destroys — the mission, even
 * though the accelerator itself is untouched.
 */

#include <cstdio>

#include "core/experiment.hh"

int
main()
{
    using namespace rose;

    std::printf("Ablation: background co-tenant share vs closed-loop "
                "outcome (s-shape @ 9 m/s, ResNet14 on config A)\n\n");
    std::printf("%-10s %-10s %-6s %-12s %-10s\n", "bg-share",
                "mission", "coll", "infer[ms]", "activity");

    for (double share : {0.0, 0.2, 0.33, 0.5, 0.67}) {
        core::MissionSpec spec;
        spec.world = "s-shape";
        spec.socName = "A";
        spec.modelDepth = 14;
        spec.velocity = 9.0;
        spec.maxSimSeconds = 60.0;

        core::CosimConfig cfg = spec.toConfig();
        if (share > 0.0) {
            cfg.background.enabled = true;
            cfg.background.fgQuantum = 100'000;
            cfg.background.bgQuantum =
                Cycles(100'000 * share / (1.0 - share));
        }
        core::CoSimulation sim(cfg);
        core::MissionResult r = sim.run();
        std::printf("%-10.0f %-10s %-6llu %-12.0f %-10.3f\n",
                    share * 100.0,
                    core::missionTimeString(r).c_str(),
                    (unsigned long long)r.collisions,
                    r.avgInferenceLatency * 1e3,
                    r.accelActivityFactor);
    }

    std::printf("\nExpected shape: latency stretches with the "
                "co-tenant's share (the DNN's host-side work is "
                "time-sliced) until the control loop crosses its "
                "stability boundary and the mission collapses — a "
                "system-level effect invisible to isolated accelerator "
                "benchmarks.\n");
    return 0;
}
