/**
 * @file
 * Figure 10: UAV trajectories for different hardware configurations.
 *
 * Setup (Section 5.1): tunnel environment, ResNet14 controller at a
 * 3 m/s velocity target, three initial headings (-20, 0, +20 degrees),
 * three SoCs (Table 2: A = BOOM+Gemmini, B = Rocket+Gemmini,
 * C = BOOM only). Paper findings to reproduce:
 *  - configs A and B complete with nearly identical trajectories
 *    (both inference latencies are far below the collision horizon);
 *  - config C's ~seconds-long CPU-only inference latency means the UAV
 *    collides before the first control update.
 *
 * The 9-point sweep runs through the deterministic mission batch
 * runner (--jobs N fans it out; output is identical for any N).
 * Emits per-run trajectory CSVs (fig10_<cfg>_<yaw>.csv), a summary
 * table, and batch timing in BENCH_batch.json.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/batch.hh"
#include "core/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace rose;

    core::BatchCli cli = core::parseBatchCli(argc, argv);

    std::printf("Figure 10: tunnel trajectories, ResNet14 @ 3 m/s\n\n");
    std::printf("%-6s %-8s %-10s %-6s %-12s %-12s\n", "cfg", "yaw0",
                "mission", "coll", "infer[ms]", "first-cmd[s]");

    std::vector<core::MissionSpec> specs;
    for (const char *cfg : {"A", "B", "C"}) {
        for (double yaw : {-20.0, 0.0, 20.0}) {
            core::MissionSpec spec;
            spec.world = "tunnel";
            spec.socName = cfg;
            spec.modelDepth = 14;
            spec.velocity = 3.0;
            spec.initialYawDeg = yaw;
            spec.maxSimSeconds = 60.0;
            specs.push_back(spec);
        }
    }

    core::BatchRunner runner(cli.options());
    std::vector<core::MissionResult> results = runner.run(specs);

    for (size_t i = 0; i < specs.size(); ++i) {
        const core::MissionSpec &spec = specs[i];
        const core::MissionResult &r = results[i];

        double first_cmd = 0.0;
        if (!r.inferenceLog.empty()) {
            first_cmd = double(r.inferenceLog.front().commandCycle) /
                        1e9;
        }
        std::printf("%-6s %+-8.0f %-10s %-6llu %-12.0f %-12.2f\n",
                    spec.socName.c_str(), spec.initialYawDeg,
                    core::missionTimeString(r).c_str(),
                    (unsigned long long)r.collisions,
                    r.avgInferenceLatency * 1e3, first_cmd);

        std::string path = "fig10_cfg" + spec.socName + "_yaw" +
                           std::to_string(int(spec.initialYawDeg)) +
                           ".csv";
        core::writeTrajectoryCsv(path, r);
    }

    core::BatchReport report("fig10_hw_trajectories");
    report.add("cfgAxBxC_yaw_sweep", runner.stats());
    report.write(cli.jsonPath);

    std::printf("\nExpected shape: A and B complete with near-identical "
                "trajectories; C collides repeatedly (multi-second "
                "inference latency exceeds the collision horizon).\n");
    std::printf("Trajectory CSVs written to fig10_cfg*_yaw*.csv\n");
    return 0;
}
