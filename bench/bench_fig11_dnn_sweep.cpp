/**
 * @file
 * Figure 11: UAV trajectories sweeping across DNN architectures.
 *
 * Setup (Section 5.2): s-shape environment, 9 m/s velocity target,
 * BOOM+Gemmini SoC (config A), sweeping ResNet-6/11/14/18/34. Paper
 * findings to reproduce:
 *  - mid-size nets complete fastest (the paper's optimum is ResNet14);
 *  - ResNet34's high latency + overconfident (sharp) outputs cause
 *    repeated collisions / non-completion;
 *  - ResNet6's low accuracy and low-confidence outputs produce weak,
 *    sometimes wrong corrections and wall strikes;
 *  - mission times: paper reports ResNet6 16.1 s, ResNet11 12.94 s,
 *    ResNet14 12.32 s, ResNet18 35.68 s.
 *
 * The zoo sweep runs through the deterministic mission batch runner
 * (--jobs N; output identical for any N). Emits
 * lateral-position-over-time series (fig11_resnet<N>.csv) and batch
 * timing in BENCH_batch.json.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/batch.hh"
#include "core/experiment.hh"
#include "dnn/resnet.hh"

int
main(int argc, char **argv)
{
    using namespace rose;

    core::BatchCli cli = core::parseBatchCli(argc, argv);

    std::printf("Figure 11: s-shape DNN sweep @ 9 m/s on config A "
                "(BOOM+Gemmini)\n\n");
    std::printf("%-10s %-10s %-6s %-10s %-12s\n", "model", "mission",
                "coll", "avgv[m/s]", "infer[ms]");

    std::vector<core::MissionSpec> specs;
    for (int depth : dnn::resnetZoo()) {
        core::MissionSpec spec;
        spec.world = "s-shape";
        spec.socName = "A";
        spec.modelDepth = depth;
        spec.velocity = 9.0;
        spec.maxSimSeconds = 60.0;
        specs.push_back(spec);
    }

    core::BatchRunner runner(cli.options());
    std::vector<core::MissionResult> results = runner.run(specs);

    for (size_t i = 0; i < specs.size(); ++i) {
        const core::MissionResult &r = results[i];
        int depth = specs[i].modelDepth;
        std::printf("%-10s %-10s %-6llu %-10.2f %-12.0f\n",
                    ("ResNet" + std::to_string(depth)).c_str(),
                    core::missionTimeString(r).c_str(),
                    (unsigned long long)r.collisions, r.avgSpeed,
                    r.avgInferenceLatency * 1e3);
        core::writeTrajectoryCsv(
            "fig11_resnet" + std::to_string(depth) + ".csv", r);
    }

    core::BatchReport report("fig11_dnn_sweep");
    report.add("resnet_zoo", runner.stats());
    report.write(cli.jsonPath);

    std::printf("\nExpected shape: small/mid nets complete cleanly with "
                "the mid-size net near-optimal; ResNet6 collides (weak, "
                "low-confidence corrections); ResNet18/34 degrade "
                "heavily (high latency + overconfident outputs).\n");
    std::printf("Series CSVs written to fig11_resnet*.csv\n");
    return 0;
}
