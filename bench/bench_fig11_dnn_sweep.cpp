/**
 * @file
 * Figure 11: UAV trajectories sweeping across DNN architectures.
 *
 * Setup (Section 5.2): s-shape environment, 9 m/s velocity target,
 * BOOM+Gemmini SoC (config A), sweeping ResNet-6/11/14/18/34. Paper
 * findings to reproduce:
 *  - mid-size nets complete fastest (the paper's optimum is ResNet14);
 *  - ResNet34's high latency + overconfident (sharp) outputs cause
 *    repeated collisions / non-completion;
 *  - ResNet6's low accuracy and low-confidence outputs produce weak,
 *    sometimes wrong corrections and wall strikes;
 *  - mission times: paper reports ResNet6 16.1 s, ResNet11 12.94 s,
 *    ResNet14 12.32 s, ResNet18 35.68 s.
 *
 * Emits lateral-position-over-time series (fig11_resnet<N>.csv).
 */

#include <cstdio>
#include <string>

#include "core/experiment.hh"
#include "dnn/resnet.hh"

int
main()
{
    using namespace rose;

    std::printf("Figure 11: s-shape DNN sweep @ 9 m/s on config A "
                "(BOOM+Gemmini)\n\n");
    std::printf("%-10s %-10s %-6s %-10s %-12s\n", "model", "mission",
                "coll", "avgv[m/s]", "infer[ms]");

    for (int depth : dnn::resnetZoo()) {
        core::MissionSpec spec;
        spec.world = "s-shape";
        spec.socName = "A";
        spec.modelDepth = depth;
        spec.velocity = 9.0;
        spec.maxSimSeconds = 60.0;

        core::MissionResult r = core::runMission(spec);
        std::printf("%-10s %-10s %-6llu %-10.2f %-12.0f\n",
                    ("ResNet" + std::to_string(depth)).c_str(),
                    core::missionTimeString(r).c_str(),
                    (unsigned long long)r.collisions, r.avgSpeed,
                    r.avgInferenceLatency * 1e3);
        core::writeTrajectoryCsv(
            "fig11_resnet" + std::to_string(depth) + ".csv", r);
    }

    std::printf("\nExpected shape: small/mid nets complete cleanly with "
                "the mid-size net near-optimal; ResNet6 collides (weak, "
                "low-confidence corrections); ResNet18/34 degrade "
                "heavily (high latency + overconfident outputs).\n");
    std::printf("Series CSVs written to fig11_resnet*.csv\n");
    return 0;
}
