/**
 * @file
 * Figure 12: a sweep of the flight controller's velocity targets
 * running ResNet14 on BOOM+Gemmini (Section 5.2).
 *
 * Paper findings to reproduce in the s-shape map:
 *  - 6 m/s: safest trajectory, longest mission;
 *  - 9 m/s: shortest mission time (paper: 12.14 s);
 *  - 12 m/s: collisions "directly after deadline violations" — the
 *    inference latency exceeds the Equation 5 budget at that speed.
 *
 * Also prints the per-velocity deadline budget (Equations 3-5) at a
 * representative obstacle depth to show where the violation begins.
 * Runs through the deterministic mission batch runner (--jobs N).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/batch.hh"
#include "core/experiment.hh"
#include "dnn/engine.hh"
#include "runtime/deadline.hh"

int
main(int argc, char **argv)
{
    using namespace rose;

    core::BatchCli cli = core::parseBatchCli(argc, argv);

    dnn::ExecutionEngine engine(soc::configA());
    double infer_lat = engine.latencySeconds(*dnn::sharedResNet(14));
    runtime::DeadlineModel dl;

    std::printf("Figure 12: velocity sweep, ResNet14 on config A "
                "(s-shape)\n\n");
    std::printf("%-8s %-10s %-6s %-10s %-16s\n", "v[m/s]", "mission",
                "coll", "avgv[m/s]", "critical-depth[m]");

    std::vector<core::MissionSpec> specs;
    for (double v : {6.0, 9.0, 12.0}) {
        core::MissionSpec spec;
        spec.world = "s-shape";
        spec.socName = "A";
        spec.modelDepth = 14;
        spec.velocity = v;
        spec.maxSimSeconds = 60.0;
        specs.push_back(spec);
    }

    core::BatchRunner runner(cli.options());
    std::vector<core::MissionResult> results = runner.run(specs);

    for (size_t i = 0; i < specs.size(); ++i) {
        double v = specs[i].velocity;
        const core::MissionResult &r = results[i];

        // Equations 3-5 inverted: the forward depth below which the
        // deadline is violated (collision unavoidable at this speed).
        // The s-shape turns force the forward depth down toward the
        // corridor half-width (2 m), so once the critical depth
        // exceeds that, collisions follow.
        double critical = v * (infer_lat + dl.sensorLatency +
                               dl.actuationLatency);
        std::printf("%-8.1f %-10s %-6llu %-10.2f %-16.2f\n", v,
                    core::missionTimeString(r).c_str(),
                    (unsigned long long)r.collisions, r.avgSpeed,
                    critical);
        core::writeTrajectoryCsv(
            "fig12_v" + std::to_string(int(v)) + ".csv", r);
    }

    core::BatchReport report("fig12_velocity_sweep");
    report.add("velocity_sweep", runner.stats());
    report.write(cli.jsonPath);

    std::printf("\nResNet14 inference latency on config A: %.0f ms; "
                "s-shape corridor half-width: 2.0 m\n",
                infer_lat * 1e3);
    std::printf("Expected shape: 6 m/s safe and slow; 9 m/s fastest "
                "clean mission; 12 m/s collides once the deadline "
                "budget drops below the inference latency.\n");
    return 0;
}
