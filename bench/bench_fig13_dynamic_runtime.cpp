/**
 * @file
 * Figure 13: application runtimes and DNN accelerator activity factors
 * across static and dynamically allocated DNN tasks (Section 5.3).
 *
 * Three applications navigate the s-shape at a demanding velocity:
 *  - static ResNet6: lowest activity factor, long mission (collisions);
 *  - static ResNet14: fast mission, highest activity factor;
 *  - dynamic ResNet14/ResNet6: the runtime measures the forward depth
 *    sensor, computes the Equation 5 deadline, and swaps in ResNet6
 *    (with the argmax policy) when the deadline tightens.
 *
 * Paper finding to reproduce: the dynamic runtime achieves a lower
 * mission time than static ResNet14 while also reducing the
 * accelerator activity factor, despite the dual-ONNX-session overhead
 * (~15% fewer inferences than static ResNet14).
 *
 * The 3-application x 3-seed matrix runs through the deterministic
 * mission batch runner (--jobs N; output identical for any N).
 */

#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "core/batch.hh"
#include "core/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace rose;

    core::BatchCli cli = core::parseBatchCli(argc, argv);

    const double kVelocity = 10.25;
    std::printf("Figure 13: static vs dynamic DNN selection "
                "(s-shape @ %.1f m/s, config A)\n\n",
                kVelocity);
    std::printf("%-18s %-10s %-6s %-10s %-8s %-10s\n", "application",
                "mission", "coll", "activity", "infer", "small-net%");

    struct Case
    {
        const char *name;
        runtime::RuntimeMode mode;
        int depth;
    };
    const Case cases[] = {
        {"static-ResNet6", runtime::RuntimeMode::Static, 6},
        {"static-ResNet14", runtime::RuntimeMode::Static, 14},
        {"dynamic-14/6", runtime::RuntimeMode::Dynamic, 14},
    };

    // Single trajectories vary run to run (the artifact appendix warns
    // about exactly this); average each application over seeds.
    const uint64_t kSeeds[] = {1, 2, 3};

    std::vector<core::MissionSpec> specs;
    for (const Case &c : cases) {
        for (uint64_t seed : kSeeds) {
            core::MissionSpec spec;
            spec.world = "s-shape";
            spec.socName = "A";
            spec.mode = c.mode;
            spec.modelDepth = c.depth;
            spec.velocity = kVelocity;
            spec.seed = seed;
            spec.maxSimSeconds = 60.0;
            specs.push_back(spec);
        }
    }

    core::BatchRunner runner(cli.options());
    std::vector<core::MissionResult> results = runner.run(specs);

    size_t idx = 0;
    double static14_time = 0.0, static14_act = 0.0, static14_inf = 0.0;
    for (const Case &c : cases) {
        double time_sum = 0.0, act_sum = 0.0, inf_sum = 0.0;
        double small_sum = 0.0;
        uint64_t coll_sum = 0;
        for (size_t s = 0; s < std::size(kSeeds); ++s) {
            const core::MissionResult &r = results[idx++];
            time_sum += r.missionTime;
            act_sum += r.accelActivityFactor;
            inf_sum += double(r.inferences);
            coll_sum += r.collisions;
            for (const auto &rec : r.inferenceLog)
                small_sum += rec.modelDepth == 6 &&
                             c.mode == runtime::RuntimeMode::Dynamic;
        }
        double n = double(std::size(kSeeds));
        double small_pct =
            inf_sum > 0 ? 100.0 * small_sum / inf_sum : 0.0;

        std::printf("%-18s %7.2fs  %-6llu %-10.3f %-8.0f %-10.1f\n",
                    c.name, time_sum / n,
                    (unsigned long long)coll_sum, act_sum / n,
                    inf_sum / n, small_pct);

        if (c.mode == runtime::RuntimeMode::Static && c.depth == 14) {
            static14_time = time_sum / n;
            static14_act = act_sum / n;
            static14_inf = inf_sum / n;
        } else if (c.mode == runtime::RuntimeMode::Dynamic) {
            std::printf("\ndynamic vs static-ResNet14: mission time "
                        "%+.2f s, activity factor %+.3f, inferences "
                        "%+.0f%%\n",
                        time_sum / n - static14_time,
                        act_sum / n - static14_act,
                        static14_inf > 0
                            ? 100.0 * (inf_sum / n - static14_inf) /
                                  static14_inf
                            : 0.0);
        }
    }

    core::BatchReport report("fig13_dynamic_runtime");
    report.add("apps_x_seeds", runner.stats());
    report.write(cli.jsonPath);

    std::printf("\nExpected shape: dynamic completes at least as fast "
                "as static ResNet14 with a lower activity factor and "
                "fewer inferences; static ResNet6 has the lowest "
                "activity but a much longer mission.\n");
    return 0;
}
