/**
 * @file
 * Figure 14: hardware/software co-design — mission time, velocity, and
 * DNN activity for BOOM+Gemmini vs Rocket+Gemmini across the DNN zoo
 * (Section 5.4).
 *
 * Paper findings to reproduce:
 *  - with BOOM, the mid-size ResNet14 is the optimal design point;
 *  - with Rocket, the added host latency pushes mid/large nets past
 *    the stability/deadline boundary (collision recovery, much higher
 *    mission times) — the optimal design point *changes* with the SoC
 *    microarchitecture, which post-silicon core-count/frequency tuning
 *    alone cannot reveal.
 */

#include <cstdio>
#include <string>

#include "core/experiment.hh"
#include "dnn/resnet.hh"

int
main()
{
    using namespace rose;

    std::printf("Figure 14: HW/SW co-design sweep (s-shape @ 9 m/s)\n");
    for (const char *cfg : {"A", "B"}) {
        soc::SocConfig sc = soc::configByName(cfg);
        std::printf("\nconfig %s (%s + %s):\n", cfg,
                    sc.cpuName().c_str(), sc.acceleratorName().c_str());
        std::printf("  %-10s %-7s %-4s %-6s %-10s %-10s %-12s\n",
                    "model", "mission", "done", "coll", "avgv[m/s]",
                    "activity", "infer[ms]");

        // Average each design point over seeds: configurations near
        // the stability boundary are bimodal run-to-run (the artifact
        // appendix's variance warning), and the mean surfaces that.
        const uint64_t kSeeds[] = {1, 2, 3};
        double best_time = 1e9;
        std::string best;
        for (int depth : dnn::resnetZoo()) {
            double time_sum = 0.0, v_sum = 0.0, act_sum = 0.0,
                   lat_sum = 0.0;
            uint64_t coll_sum = 0;
            int completed = 0;
            for (uint64_t seed : kSeeds) {
                core::MissionSpec spec;
                spec.world = "s-shape";
                spec.socName = cfg;
                spec.modelDepth = depth;
                spec.velocity = 9.0;
                spec.seed = seed;
                spec.maxSimSeconds = 60.0;

                core::MissionResult r = core::runMission(spec);
                time_sum += r.missionTime;
                v_sum += r.avgSpeed;
                act_sum += r.accelActivityFactor;
                lat_sum += r.avgInferenceLatency;
                coll_sum += r.collisions;
                completed += r.completed ? 1 : 0;
            }
            double n = double(std::size(kSeeds));
            std::printf("  %-10s %6.2fs %2d/%d %-6llu %-10.2f %-10.3f "
                        "%-12.0f\n",
                        ("ResNet" + std::to_string(depth)).c_str(),
                        time_sum / n, completed, int(n),
                        (unsigned long long)coll_sum, v_sum / n,
                        act_sum / n, lat_sum / n * 1e3);
            if (completed == int(n) && coll_sum == 0 &&
                time_sum / n < best_time) {
                best_time = time_sum / n;
                best = "ResNet" + std::to_string(depth);
            }
        }
        if (best.empty()) {
            std::printf("  -> no design point completed cleanly on "
                        "config %s\n", cfg);
        } else {
            std::printf("  -> best clean design point on config %s: "
                        "%s (%.2f s)\n", cfg, best.c_str(), best_time);
        }
    }

    std::printf("\nExpected shape: Rocket mission times are uniformly "
                "worse; models that are optimal on BOOM collapse on "
                "Rocket (collision recovery), shifting the optimal "
                "design point.\n");
    return 0;
}
