/**
 * @file
 * Figure 14: hardware/software co-design — mission time, velocity, and
 * DNN activity for BOOM+Gemmini vs Rocket+Gemmini across the DNN zoo
 * (Section 5.4).
 *
 * Paper findings to reproduce:
 *  - with BOOM, the mid-size ResNet14 is the optimal design point;
 *  - with Rocket, the added host latency pushes mid/large nets past
 *    the stability/deadline boundary (collision recovery, much higher
 *    mission times) — the optimal design point *changes* with the SoC
 *    microarchitecture, which post-silicon core-count/frequency tuning
 *    alone cannot reveal.
 *
 * The full 2-SoC x 5-model x 3-seed design matrix (30 missions) runs
 * through the deterministic mission batch runner (--jobs N; output
 * identical for any N). Batch timing lands in BENCH_batch.json.
 */

#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "core/batch.hh"
#include "core/experiment.hh"
#include "dnn/resnet.hh"

int
main(int argc, char **argv)
{
    using namespace rose;

    core::BatchCli cli = core::parseBatchCli(argc, argv);

    // Average each design point over seeds: configurations near the
    // stability boundary are bimodal run-to-run (the artifact
    // appendix's variance warning), and the mean surfaces that.
    const uint64_t kSeeds[] = {1, 2, 3};
    const char *kConfigs[] = {"A", "B"};

    std::vector<core::MissionSpec> specs;
    for (const char *cfg : kConfigs) {
        for (int depth : dnn::resnetZoo()) {
            for (uint64_t seed : kSeeds) {
                core::MissionSpec spec;
                spec.world = "s-shape";
                spec.socName = cfg;
                spec.modelDepth = depth;
                spec.velocity = 9.0;
                spec.seed = seed;
                spec.maxSimSeconds = 60.0;
                specs.push_back(spec);
            }
        }
    }

    core::BatchRunner runner(cli.options());
    std::vector<core::MissionResult> results = runner.run(specs);

    std::printf("Figure 14: HW/SW co-design sweep (s-shape @ 9 m/s)\n");
    size_t idx = 0;
    for (const char *cfg : kConfigs) {
        soc::SocConfig sc = soc::configByName(cfg);
        std::printf("\nconfig %s (%s + %s):\n", cfg,
                    sc.cpuName().c_str(), sc.acceleratorName().c_str());
        std::printf("  %-10s %-7s %-4s %-6s %-10s %-10s %-12s\n",
                    "model", "mission", "done", "coll", "avgv[m/s]",
                    "activity", "infer[ms]");

        double best_time = 1e9;
        std::string best;
        for (int depth : dnn::resnetZoo()) {
            double time_sum = 0.0, v_sum = 0.0, act_sum = 0.0,
                   lat_sum = 0.0;
            uint64_t coll_sum = 0;
            int completed = 0;
            for (size_t s = 0; s < std::size(kSeeds); ++s) {
                const core::MissionResult &r = results[idx++];
                time_sum += r.missionTime;
                v_sum += r.avgSpeed;
                act_sum += r.accelActivityFactor;
                lat_sum += r.avgInferenceLatency;
                coll_sum += r.collisions;
                completed += r.completed ? 1 : 0;
            }
            double n = double(std::size(kSeeds));
            std::printf("  %-10s %6.2fs %2d/%d %-6llu %-10.2f %-10.3f "
                        "%-12.0f\n",
                        ("ResNet" + std::to_string(depth)).c_str(),
                        time_sum / n, completed, int(n),
                        (unsigned long long)coll_sum, v_sum / n,
                        act_sum / n, lat_sum / n * 1e3);
            if (completed == int(n) && coll_sum == 0 &&
                time_sum / n < best_time) {
                best_time = time_sum / n;
                best = "ResNet" + std::to_string(depth);
            }
        }
        if (best.empty()) {
            std::printf("  -> no design point completed cleanly on "
                        "config %s\n", cfg);
        } else {
            std::printf("  -> best clean design point on config %s: "
                        "%s (%.2f s)\n", cfg, best.c_str(), best_time);
        }
    }

    core::BatchReport report("fig14_codesign");
    report.add("soc_x_zoo_x_seeds", runner.stats());
    report.write(cli.jsonPath);

    std::printf("\nExpected shape: Rocket mission times are uniformly "
                "worse; models that are optimal on BOOM collapse on "
                "Rocket (collision recovery), shifting the optimal "
                "design point.\n");
    return 0;
}
