/**
 * @file
 * Figure 15 (and Table 4): RoSE simulator throughput vs synchronization
 * granularity.
 *
 * Two views are produced:
 *  1. the deployment host model (Table 4-class FPGA + host): throughput
 *     = G / (G/R_fpga + T_sync), exhibiting the paper's two bottleneck
 *     regimes — sync-overhead-bound at fine granularity, FPGA-rate-
 *     bound at coarse granularity;
 *  2. measured wall-clock throughput of this repository's in-process
 *     co-simulation across the same granularity sweep (no FPGA here;
 *     the software SoC model runs orders of magnitude faster than
 *     real-time RTL emulation, but the same sync-overhead trend shows).
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/hostmodel.hh"

int
main()
{
    using namespace rose;

    core::HostModel host;
    std::printf("Figure 15: simulation throughput vs synchronization "
                "granularity\n\n");
    std::printf("Host model (Table 4-class deployment: %.0f MHz FPGA, "
                "%.1f ms per-sync overhead):\n",
                host.fpgaRateHz / 1e6, host.syncOverheadSeconds * 1e3);
    std::printf("  %-14s %-18s %-18s\n", "granularity",
                "throughput[MHz]", "sync-bound[%]");
    std::vector<Cycles> host_sweep{1 * kMegaCycles, 2 * kMegaCycles,
                                   5 * kMegaCycles};
    for (Cycles g : core::granularitySweep())
        host_sweep.push_back(g);
    for (Cycles g : host_sweep) {
        std::printf("  %-14s %-18.1f %-18.0f\n",
                    (std::to_string(g / kMegaCycles) + "M").c_str(),
                    host.throughputHz(g) / 1e6,
                    100.0 * host.syncOverheadFraction(g));
    }

    std::printf("\nMeasured in-process co-simulation (tunnel, ResNet14 "
                "@ 3 m/s, config A):\n");
    std::printf("  %-14s %-18s %-14s %-10s\n", "granularity",
                "sim-rate[MHz]", "wall[s]", "mission");
    for (Cycles g : core::granularitySweep()) {
        core::MissionSpec spec;
        spec.world = "tunnel";
        spec.socName = "A";
        spec.modelDepth = 14;
        spec.velocity = 3.0;
        spec.syncGranularity = g;
        spec.maxSimSeconds = 40.0;

        core::MissionResult r = core::runMission(spec);
        std::printf("  %-14s %-18.0f %-14.3f %-10s\n",
                    (std::to_string(g / kMegaCycles) + "M").c_str(),
                    r.simulationRateMHz(), r.wallSeconds,
                    core::missionTimeString(r).c_str());
    }

    std::printf("\nExpected shape: throughput rises with granularity, "
                "bottlenecked by per-sync overhead at fine grain and "
                "by the maximum simulator rate at coarse grain.\n");
    return 0;
}
