/**
 * @file
 * Figure 16: effects of synchronization granularity on simulated
 * trajectories and on the measured image-request-to-DNN-output latency
 * (Section 5.5).
 *
 * Setup: tunnel, initial angle +20 degrees, ResNet14 @ 3 m/s, config A;
 * granularity swept from 10M cycles (1 environment frame per sync) to
 * 400M cycles (40 frames per sync). Paper findings to reproduce:
 *  - at 10M the measured request->output latency sits slightly above
 *    the DNN's compute latency (I/O overhead only);
 *  - latency grows with granularity as requests stall to period
 *    boundaries, reaching ~3x+ the ideal latency at 400M;
 *  - trajectories diverge at coarse granularity (the UAV becomes less
 *    responsive due to the artificial latency).
 *
 * The sweep runs through the deterministic mission batch runner
 * (--jobs N; output identical for any N).
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/batch.hh"
#include "core/experiment.hh"
#include "core/hostmodel.hh"
#include "dnn/engine.hh"

int
main(int argc, char **argv)
{
    using namespace rose;

    core::BatchCli cli = core::parseBatchCli(argc, argv);

    dnn::ExecutionEngine engine(soc::configA());
    double ideal = engine.latencySeconds(*dnn::sharedResNet(14));

    std::printf("Figure 16: synchronization granularity sweep "
                "(tunnel, yaw0=+20deg, ResNet14 @ 3 m/s)\n\n");
    std::printf("ideal compute latency: %.0f ms\n\n", ideal * 1e3);
    std::printf("%-14s %-12s %-10s %-6s %-14s %-10s\n", "granularity",
                "latency[ms]", "vs-ideal", "coll", "mission",
                "max|off|[m]");

    std::vector<core::MissionSpec> specs;
    for (Cycles g : core::granularitySweep()) {
        core::MissionSpec spec;
        spec.world = "tunnel";
        spec.socName = "A";
        spec.modelDepth = 14;
        spec.velocity = 3.0;
        spec.initialYawDeg = 20.0;
        spec.syncGranularity = g;
        spec.maxSimSeconds = 60.0;
        specs.push_back(spec);
    }

    core::BatchRunner runner(cli.options());
    std::vector<core::MissionResult> results = runner.run(specs);

    for (size_t i = 0; i < specs.size(); ++i) {
        Cycles g = specs[i].syncGranularity;
        const core::MissionResult &r = results[i];
        double max_off = 0.0;
        for (const core::TrajectorySample &s : r.trajectory)
            max_off = std::max(max_off, std::abs(s.lateralOffset));

        std::printf("%-14s %-12.0f %-10.2f %-6llu %-14s %-10.2f\n",
                    (std::to_string(g / kMegaCycles) + "M").c_str(),
                    r.avgInferenceLatency * 1e3,
                    r.avgInferenceLatency / ideal,
                    (unsigned long long)r.collisions,
                    core::missionTimeString(r).c_str(), max_off);
        core::writeTrajectoryCsv(
            "fig16_g" + std::to_string(g / kMegaCycles) + "M.csv", r);
    }

    core::BatchReport report("fig16_sync_granularity");
    report.add("granularity_sweep", runner.stats());
    report.write(cli.jsonPath);

    std::printf("\nExpected shape: latency starts slightly above the "
                "ideal compute latency and grows toward ~3x+ at 400M; "
                "trajectories degrade (larger offsets, collisions, "
                "longer missions) as granularity coarsens.\n");
    std::printf("Trajectory CSVs written to fig16_g*.csv\n");
    return 0;
}
