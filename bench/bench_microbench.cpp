/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrates: packet
 * codec throughput, corridor raycasting, camera rendering, classifier
 * inference, Gemmini tiling-model evaluation, RV32IM simulation rate,
 * and full co-simulation periods. These quantify the infrastructure
 * itself (the paper's Figure 15 concern: what limits simulator
 * throughput) rather than the modeled UAV.
 */

#include <benchmark/benchmark.h>

#include "bridge/packet.hh"
#include "core/cosim.hh"
#include "dnn/classifier.hh"
#include "dnn/engine.hh"
#include "env/sensors.hh"
#include "env/world.hh"
#include "gemmini/gemmini.hh"
#include "rv/assembler.hh"
#include "rv/core.hh"
#include "rv/timing.hh"

using namespace rose;

static void
BM_PacketImageRoundTrip(benchmark::State &state)
{
    env::Image img(64, 48);
    for (size_t i = 0; i < img.pixels.size(); ++i)
        img.pixels[i] = float(i % 251) / 251.0f;
    for (auto _ : state) {
        bridge::Packet p = bridge::encodeImageResp(img);
        env::Image out = bridge::decodeImageResp(p);
        benchmark::DoNotOptimize(out.pixels.data());
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            int64_t(img.byteSize()));
}
BENCHMARK(BM_PacketImageRoundTrip);

static void
BM_WireFraming(benchmark::State &state)
{
    bridge::Packet p = bridge::encodeVelocityCmd({1.0, 2.0, 3.0});
    std::vector<uint8_t> buf;
    for (auto _ : state) {
        buf.clear();
        bridge::serializePacket(p, buf);
        bridge::Packet out;
        bridge::deserializePacket(buf, out);
        benchmark::DoNotOptimize(out.payload.data());
    }
}
BENCHMARK(BM_WireFraming);

static void
BM_RaycastTunnel(benchmark::State &state)
{
    env::TunnelWorld w;
    double az = 0.3;
    for (auto _ : state) {
        env::RayHit hit = w.raycast({10, 0.4, 1.5}, az);
        benchmark::DoNotOptimize(hit.distance);
        az = -az;
    }
}
BENCHMARK(BM_RaycastTunnel);

static void
BM_CameraRender(benchmark::State &state)
{
    env::TunnelWorld w;
    env::Drone d;
    d.setPose({10, 0.3, 1.5}, Quat::fromEuler(0, 0, 0.1));
    env::Camera cam(env::CameraConfig{}, Rng(1));
    for (auto _ : state) {
        env::Image img = cam.render(w, d);
        benchmark::DoNotOptimize(img.pixels.data());
    }
}
BENCHMARK(BM_CameraRender);

static void
BM_ClassifierInference(benchmark::State &state)
{
    env::TunnelWorld w;
    env::Drone d;
    d.setPose({10, 0.3, 1.5}, Quat::fromEuler(0, 0, 0.1));
    env::Camera cam(env::CameraConfig{}, Rng(1));
    env::Image img = cam.render(w, d);
    dnn::Model m = dnn::makeResNet(14);
    dnn::Classifier cls(m, Rng(2));
    for (auto _ : state) {
        dnn::ClassifierOutput out = cls.infer(img);
        benchmark::DoNotOptimize(out.angular.probs);
    }
}
BENCHMARK(BM_ClassifierInference);

static void
BM_GemminiTilingModel(benchmark::State &state)
{
    gemmini::Gemmini g;
    for (auto _ : state) {
        gemmini::GemmCost c = g.gemmCycles(2500, 288, 64);
        benchmark::DoNotOptimize(c.totalCycles);
    }
}
BENCHMARK(BM_GemminiTilingModel);

static void
BM_InferenceSchedule(benchmark::State &state)
{
    dnn::ExecutionEngine engine(soc::configA());
    dnn::Model m = dnn::makeResNet(int(state.range(0)));
    for (auto _ : state) {
        dnn::InferenceSchedule s = engine.schedule(m);
        benchmark::DoNotOptimize(s.totalCycles);
    }
}
BENCHMARK(BM_InferenceSchedule)->Arg(6)->Arg(34);

static void
BM_RvCoreSimRate(benchmark::State &state)
{
    rv::Program p = rv::assemble(R"(
        li a0, 100000
    loop:
        addi a1, a1, 3
        xori a2, a1, 5
        and a3, a2, a1
        addi a0, a0, -1
        bnez a0, loop
        ecall
    )");
    for (auto _ : state) {
        rv::Core core;
        core.loadProgram(p.words);
        uint64_t n = core.run();
        benchmark::DoNotOptimize(n);
        state.SetItemsProcessed(state.items_processed() + int64_t(n));
    }
}
BENCHMARK(BM_RvCoreSimRate);

static void
BM_RvTimedSimRate(benchmark::State &state)
{
    rv::Program p = rv::assemble(R"(
        li a0, 100000
    loop:
        addi a1, a1, 3
        xori a2, a1, 5
        and a3, a2, a1
        addi a0, a0, -1
        bnez a0, loop
        ecall
    )");
    for (auto _ : state) {
        rv::Core core;
        core.loadProgram(p.words);
        rv::BoomTiming tm;
        uint64_t n = 0;
        while (core.stopReason() == rv::StopReason::Running) {
            tm.retire(core.step());
            ++n;
        }
        benchmark::DoNotOptimize(tm.cycles());
        state.SetItemsProcessed(state.items_processed() + int64_t(n));
    }
}
BENCHMARK(BM_RvTimedSimRate);

static void
BM_CosimPeriod(benchmark::State &state)
{
    core::CosimConfig cfg;
    cfg.env.worldName = "tunnel";
    cfg.soc = soc::configA();
    cfg.sync.cyclesPerSync = Cycles(state.range(0)) * kMegaCycles;
    core::CoSimulation sim(cfg);
    for (auto _ : state)
        sim.stepPeriod();
    // Simulated cycles per wall second.
    state.counters["sim_MHz"] = benchmark::Counter(
        double(state.iterations()) * double(state.range(0)),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CosimPeriod)->Arg(10)->Arg(100);

BENCHMARK_MAIN();
