/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrates: packet
 * codec throughput, corridor raycasting, camera rendering, classifier
 * inference, Gemmini tiling-model evaluation, RV32IM simulation rate,
 * and full co-simulation periods. These quantify the infrastructure
 * itself (the paper's Figure 15 concern: what limits simulator
 * throughput) rather than the modeled UAV.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "bridge/packet.hh"
#include "core/cosim.hh"
#include "dnn/classifier.hh"
#include "dnn/engine.hh"
#include "dnn/forward.hh"
#include "env/sensors.hh"
#include "env/world.hh"
#include "gemmini/gemmini.hh"
#include "rv/assembler.hh"
#include "rv/core.hh"
#include "rv/timing.hh"
#include "util/rng.hh"

using namespace rose;

// --------------------------------------------------------------------
// Process-wide allocation counter, used by the hot-path report to
// verify the zero-steady-state-allocation contract of the workspace
// inference path (same technique as tests/test_hotpath.cc).

static std::atomic<uint64_t> g_allocCount{0};

void *
operator new(size_t n)
{
    ++g_allocCount;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](size_t n)
{
    return ::operator new(n);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, size_t) noexcept { std::free(p); }
void operator delete[](void *p, size_t) noexcept { std::free(p); }

static void
BM_PacketImageRoundTrip(benchmark::State &state)
{
    env::Image img(64, 48);
    for (size_t i = 0; i < img.pixels.size(); ++i)
        img.pixels[i] = float(i % 251) / 251.0f;
    for (auto _ : state) {
        bridge::Packet p = bridge::encodeImageResp(img);
        env::Image out = bridge::decodeImageResp(p);
        benchmark::DoNotOptimize(out.pixels.data());
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            int64_t(img.byteSize()));
}
BENCHMARK(BM_PacketImageRoundTrip);

static void
BM_WireFraming(benchmark::State &state)
{
    bridge::Packet p = bridge::encodeVelocityCmd({1.0, 2.0, 3.0});
    std::vector<uint8_t> buf;
    for (auto _ : state) {
        buf.clear();
        bridge::serializePacket(p, buf);
        bridge::Packet out;
        bridge::deserializePacket(buf, out);
        benchmark::DoNotOptimize(out.payload.data());
    }
}
BENCHMARK(BM_WireFraming);

static void
BM_RaycastTunnel(benchmark::State &state)
{
    env::TunnelWorld w;
    double az = 0.3;
    for (auto _ : state) {
        env::RayHit hit = w.raycast({10, 0.4, 1.5}, az);
        benchmark::DoNotOptimize(hit.distance);
        az = -az;
    }
}
BENCHMARK(BM_RaycastTunnel);

static void
BM_CameraRender(benchmark::State &state)
{
    env::TunnelWorld w;
    env::Drone d;
    d.setPose({10, 0.3, 1.5}, Quat::fromEuler(0, 0, 0.1));
    env::Camera cam(env::CameraConfig{}, Rng(1));
    for (auto _ : state) {
        env::Image img = cam.render(w, d);
        benchmark::DoNotOptimize(img.pixels.data());
    }
}
BENCHMARK(BM_CameraRender);

static void
BM_ClassifierInference(benchmark::State &state)
{
    env::TunnelWorld w;
    env::Drone d;
    d.setPose({10, 0.3, 1.5}, Quat::fromEuler(0, 0, 0.1));
    env::Camera cam(env::CameraConfig{}, Rng(1));
    env::Image img = cam.render(w, d);
    dnn::Model m = dnn::makeResNet(14);
    dnn::Classifier cls(m, Rng(2));
    for (auto _ : state) {
        dnn::ClassifierOutput out = cls.infer(img);
        benchmark::DoNotOptimize(out.angular.probs);
    }
}
BENCHMARK(BM_ClassifierInference);

static void
BM_CameraRenderInto(benchmark::State &state)
{
    env::TunnelWorld w;
    env::Drone d;
    d.setPose({10, 0.3, 1.5}, Quat::fromEuler(0, 0, 0.1));
    env::Camera cam(env::CameraConfig{}, Rng(1));
    env::Image img;
    for (auto _ : state) {
        cam.renderInto(w, d.position(), d.attitude(), img);
        benchmark::DoNotOptimize(img.pixels.data());
    }
}
BENCHMARK(BM_CameraRenderInto);

static void
BM_PoseEstimateScratch(benchmark::State &state)
{
    env::TunnelWorld w;
    env::Drone d;
    d.setPose({10, 0.3, 1.5}, Quat::fromEuler(0, 0, 0.1));
    env::Camera cam(env::CameraConfig{}, Rng(1));
    env::Image img = cam.render(w, d);
    dnn::EstimatorConfig cfg;
    dnn::PoseScratch scratch;
    for (auto _ : state) {
        dnn::PoseEstimate est = dnn::estimatePose(img, cfg, scratch);
        benchmark::DoNotOptimize(est.headingRad);
    }
}
BENCHMARK(BM_PoseEstimateScratch);

static void
BM_GemmNaive(benchmark::State &state)
{
    const int m = int(state.range(0)), k = int(state.range(1)),
              n = int(state.range(2));
    gemmini::Gemmini g;
    Rng rng(3);
    std::vector<float> a(size_t(m) * k), b(size_t(k) * n),
        c(size_t(m) * n);
    for (float &v : a)
        v = float(rng.uniform(-1, 1));
    for (float &v : b)
        v = float(rng.uniform(-1, 1));
    for (auto _ : state) {
        g.matmulNaive(m, k, n, a.data(), b.data(), c.data());
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 2 * m * k * n);
}
BENCHMARK(BM_GemmNaive)->Args({2500, 9, 8})->Args({625, 72, 16})
    ->Args({144, 144, 32});

static void
BM_GemmBlockedPacked(benchmark::State &state)
{
    const int m = int(state.range(0)), k = int(state.range(1)),
              n = int(state.range(2));
    gemmini::Gemmini g;
    Rng rng(3);
    std::vector<float> a(size_t(m) * k), b(size_t(k) * n),
        c(size_t(m) * n);
    for (float &v : a)
        v = float(rng.uniform(-1, 1));
    for (float &v : b)
        v = float(rng.uniform(-1, 1));
    gemmini::PackedB pb;
    gemmini::Gemmini::packB(k, n, b.data(), pb);
    for (auto _ : state) {
        g.matmulPacked(m, a.data(), pb, c.data());
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 2 * m * k * n);
}
BENCHMARK(BM_GemmBlockedPacked)->Args({2500, 9, 8})->Args({625, 72, 16})
    ->Args({144, 144, 32});

static void
BM_Im2col(benchmark::State &state)
{
    dnn::Model m = dnn::makeResNet(14);
    const dnn::LayerSpec &spec = m.layers.front(); // stem conv
    dnn::Tensor in(1, dnn::kDnnInputH, dnn::kDnnInputW);
    Rng rng(5);
    for (float &v : in.data())
        v = float(rng.uniform(0, 1));
    int gm, gk, gn;
    spec.gemmDims(gm, gk, gn);
    std::vector<float> out(size_t(gm) * gk);
    for (auto _ : state) {
        dnn::im2colInto(spec, in, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            int64_t(out.size() * sizeof(float)));
}
BENCHMARK(BM_Im2col);

static void
BM_ForwardWorkspace(benchmark::State &state)
{
    const int depth = int(state.range(0));
    std::shared_ptr<const dnn::Model> m = dnn::sharedResNet(depth);
    std::shared_ptr<const dnn::Weights> w = dnn::sharedWeights(depth, 7);
    std::shared_ptr<const dnn::PackedWeights> pw =
        dnn::sharedPackedWeights(depth, 7);
    dnn::Tensor in(1, dnn::kDnnInputH, dnn::kDnnInputW);
    Rng rng(9);
    for (float &v : in.data())
        v = float(rng.uniform(0, 1));
    dnn::ForwardWorkspace ws;
    dnn::ForwardResult out;
    dnn::runForward(*m, *w, *pw, in, ws, out); // warm the buffers
    for (auto _ : state) {
        dnn::runForward(*m, *w, *pw, in, ws, out);
        benchmark::DoNotOptimize(out.angularProbs.data());
    }
}
BENCHMARK(BM_ForwardWorkspace)->Arg(6)->Arg(14);

static void
BM_GemminiTilingModel(benchmark::State &state)
{
    gemmini::Gemmini g;
    for (auto _ : state) {
        gemmini::GemmCost c = g.gemmCycles(2500, 288, 64);
        benchmark::DoNotOptimize(c.totalCycles);
    }
}
BENCHMARK(BM_GemminiTilingModel);

static void
BM_InferenceSchedule(benchmark::State &state)
{
    dnn::ExecutionEngine engine(soc::configA());
    dnn::Model m = dnn::makeResNet(int(state.range(0)));
    for (auto _ : state) {
        dnn::InferenceSchedule s = engine.schedule(m);
        benchmark::DoNotOptimize(s.totalCycles);
    }
}
BENCHMARK(BM_InferenceSchedule)->Arg(6)->Arg(34);

static void
BM_RvCoreSimRate(benchmark::State &state)
{
    rv::Program p = rv::assemble(R"(
        li a0, 100000
    loop:
        addi a1, a1, 3
        xori a2, a1, 5
        and a3, a2, a1
        addi a0, a0, -1
        bnez a0, loop
        ecall
    )");
    for (auto _ : state) {
        rv::Core core;
        core.loadProgram(p.words);
        uint64_t n = core.run();
        benchmark::DoNotOptimize(n);
        state.SetItemsProcessed(state.items_processed() + int64_t(n));
    }
}
BENCHMARK(BM_RvCoreSimRate);

static void
BM_RvTimedSimRate(benchmark::State &state)
{
    rv::Program p = rv::assemble(R"(
        li a0, 100000
    loop:
        addi a1, a1, 3
        xori a2, a1, 5
        and a3, a2, a1
        addi a0, a0, -1
        bnez a0, loop
        ecall
    )");
    for (auto _ : state) {
        rv::Core core;
        core.loadProgram(p.words);
        rv::BoomTiming tm;
        uint64_t n = 0;
        while (core.stopReason() == rv::StopReason::Running) {
            tm.retire(core.step());
            ++n;
        }
        benchmark::DoNotOptimize(tm.cycles());
        state.SetItemsProcessed(state.items_processed() + int64_t(n));
    }
}
BENCHMARK(BM_RvTimedSimRate);

static void
BM_CosimPeriod(benchmark::State &state)
{
    core::CosimConfig cfg;
    cfg.env.worldName = "tunnel";
    cfg.soc = soc::configA();
    cfg.sync.cyclesPerSync = Cycles(state.range(0)) * kMegaCycles;
    core::CoSimulation sim(cfg);
    for (auto _ : state)
        sim.stepPeriod();
    // Simulated cycles per wall second.
    state.counters["sim_MHz"] = benchmark::Counter(
        double(state.iterations()) * double(state.range(0)),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CosimPeriod)->Arg(10)->Arg(100);

// --------------------------------------------------------------------
// Hot-path perf report (--hotpath): times the blocked GEMM microkernel
// against the naive reference on every distinct GEMM shape of the
// ResNet mission models, the cached-vs-fresh sensor/estimator paths,
// and the steady-state per-frame E2E latency; verifies the
// zero-allocation contract; emits BENCH_hotpath.json. With --baseline
// FILE it fails (exit 1) when any tracked latency regresses by more
// than 2x against the recorded values — the CI perf-smoke gate.
// --write-baseline FILE records the current machine's numbers.

namespace hotpath {

struct ShapeResult
{
    std::string layer;
    bool conv = false;
    int m = 0, k = 0, n = 0;
    double naiveNs = 0.0;
    double blockedNs = 0.0; ///< blocked kernel, scalar tier
    double simdNs = 0.0;    ///< blocked kernel, dispatched tier

    double speedup() const
    { return blockedNs > 0 ? naiveNs / blockedNs : 0.0; }
    double simdSpeedup() const
    { return simdNs > 0 ? blockedNs / simdNs : 0.0; }
    double gflops() const
    {
        return simdNs > 0
                   ? 2.0 * m * k * n / simdNs
                   : 0.0;
    }
};

double
nowNs()
{
    return double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now()
                          .time_since_epoch())
                      .count());
}

/** Best-of-reps wall time of one call, in ns: back-to-back comparisons
 *  within one process are what make the naive/blocked ratio robust on
 *  shared machines. */
template <typename F>
double
timeKernel(F &&fn, double targetNs = 3e7, int reps = 5)
{
    fn(); // warm caches / first-touch
    double t0 = nowNs();
    fn();
    double once = std::max(nowNs() - t0, 50.0);
    int iters = std::max(1, int(targetNs / once));
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        double s = nowNs();
        for (int i = 0; i < iters; ++i)
            fn();
        best = std::min(best, (nowNs() - s) / iters);
    }
    return best;
}

std::map<std::string, double>
loadBaseline(const std::string &path)
{
    std::map<std::string, double> base;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream row(line);
        std::string key;
        double value = 0.0;
        if (row >> key >> value)
            base[key] = value;
    }
    return base;
}

int
run(const std::string &jsonPath, const std::string &baselinePath,
    const std::string &writeBaselinePath)
{
    Rng rng(1234);
    gemmini::Gemmini gem;

    // Every distinct GEMM shape of the mission models (the dynamic
    // runtime's big/small pair), measured on dense random operands.
    std::vector<ShapeResult> shapes;
    for (int depth : {6, 14}) {
        dnn::Model model = dnn::makeResNet(depth);
        for (const dnn::LayerSpec &l : model.layers) {
            if (!l.weighted())
                continue;
            int m, k, n;
            l.gemmDims(m, k, n);
            bool seen = false;
            for (const ShapeResult &s : shapes)
                seen |= s.m == m && s.k == k && s.n == n;
            if (seen)
                continue;
            ShapeResult s;
            s.layer = model.name + "." + l.name;
            s.conv = l.kind == dnn::LayerKind::Conv;
            s.m = m;
            s.k = k;
            s.n = n;
            shapes.push_back(s);
        }
    }

    const gemmini::GemmIsa isa = gemmini::activeGemmIsa();
    const char *isaName = gemmini::gemmIsaName(isa);
    std::printf("hot-path GEMM: blocked microkernel (scalar and "
                "dispatched '%s' tiers) vs naive reference (dense "
                "operands)\n\n",
                isaName);
    std::printf("%-22s %-16s %12s %12s %12s %9s %8s\n", "layer",
                "m*k*n", "naive[ns]", "scalar[ns]", "simd[ns]",
                "simd-up", "GFLOP/s");
    for (ShapeResult &s : shapes) {
        std::vector<float> a(size_t(s.m) * s.k), b(size_t(s.k) * s.n),
            c(size_t(s.m) * s.n);
        for (float &v : a)
            v = float(rng.uniform(-1, 1));
        for (float &v : b)
            v = float(rng.uniform(-1, 1));
        gemmini::PackedB pb;
        gemmini::Gemmini::packB(s.k, s.n, b.data(), pb);
        s.naiveNs = timeKernel([&] {
            gem.matmulNaive(s.m, s.k, s.n, a.data(), b.data(),
                            c.data());
        });
        gemmini::setGemmIsa(gemmini::GemmIsa::Scalar);
        s.blockedNs = timeKernel(
            [&] { gem.matmulPacked(s.m, a.data(), pb, c.data()); });
        gemmini::setGemmIsa(isa);
        s.simdNs = timeKernel(
            [&] { gem.matmulPacked(s.m, a.data(), pb, c.data()); });
        char dims[32];
        std::snprintf(dims, sizeof(dims), "%dx%dx%d", s.m, s.k, s.n);
        std::printf("%-22s %-16s %12.0f %12.0f %12.0f %8.2fx %8.2f\n",
                    s.layer.c_str(), dims, s.naiveNs, s.blockedNs,
                    s.simdNs, s.simdSpeedup(), s.gflops());
    }

    // Per-frame E2E: sensor rendering + pose estimation + the full
    // functional forward pass, classic (allocating) path vs hot path.
    env::TunnelWorld world;
    env::Drone drone;
    drone.setPose({10, 0.3, 1.5}, Quat::fromEuler(0, 0, 0.1));
    env::Camera cam(env::CameraConfig{}, Rng(1));
    dnn::EstimatorConfig ecfg;
    const int depth = 14;
    std::shared_ptr<const dnn::Model> model = dnn::sharedResNet(depth);
    std::shared_ptr<const dnn::Weights> w = dnn::sharedWeights(depth, 7);
    std::shared_ptr<const dnn::PackedWeights> pw =
        dnn::sharedPackedWeights(depth, 7);
    dnn::Tensor in(1, dnn::kDnnInputH, dnn::kDnnInputW);
    Rng irng(9);
    for (float &v : in.data())
        v = float(irng.uniform(0, 1));

    auto classicFrame = [&] {
        env::Image img =
            cam.render(world, drone.position(), drone.attitude());
        dnn::PoseEstimate est = dnn::estimatePose(img, ecfg);
        benchmark::DoNotOptimize(est.headingRad);
        dnn::ForwardResult r =
            dnn::runForward(*model, *w, in, /*use_gemm=*/true);
        benchmark::DoNotOptimize(r.angularProbs.data());
    };
    env::Image img;
    dnn::PoseScratch scratch;
    dnn::ForwardWorkspace ws;
    dnn::ForwardResult fr;
    auto hotFrame = [&] {
        cam.renderInto(world, drone.position(), drone.attitude(), img);
        dnn::PoseEstimate est = dnn::estimatePose(img, ecfg, scratch);
        benchmark::DoNotOptimize(est.headingRad);
        dnn::runForward(*model, *w, *pw, in, ws, fr);
        benchmark::DoNotOptimize(fr.angularProbs.data());
    };

    // Interleave the two variants rep by rep (best-of across reps):
    // frame-scale work on a shared machine drifts over seconds, and
    // back-to-back pairs cancel that drift out of the ratio.
    classicFrame();
    hotFrame();
    double classicNs = 1e300, hotNs = 1e300;
    for (int rep = 0; rep < 9; ++rep) {
        double s = nowNs();
        for (int i = 0; i < 3; ++i)
            classicFrame();
        classicNs = std::min(classicNs, (nowNs() - s) / 3);
        s = nowNs();
        for (int i = 0; i < 3; ++i)
            hotFrame();
        hotNs = std::min(hotNs, (nowNs() - s) / 3);
    }

    // Zero-allocation contract of the steady-state frame.
    uint64_t allocsBefore = g_allocCount.load();
    for (int i = 0; i < 10; ++i) {
        cam.renderInto(world, drone.position(), drone.attitude(), img);
        dnn::estimatePose(img, ecfg, scratch);
        dnn::runForward(*model, *w, *pw, in, ws, fr);
    }
    uint64_t allocsPerTenFrames = g_allocCount.load() - allocsBefore;

    std::printf("\nper-frame E2E (render + pose + ResNet%d forward):\n"
                "  classic %8.0f ns/frame\n"
                "  hotpath %8.0f ns/frame  (%.2fx, %llu allocs per 10 "
                "steady frames)\n",
                depth, classicNs, hotNs, classicNs / hotNs,
                (unsigned long long)allocsPerTenFrames);

    // Per-stage breakdown of the hot frame, plus the bridge's image
    // codec (the wire hop a co-simulated frame also pays). Stages are
    // timed in isolation, so their sum can differ slightly from the
    // E2E number above.
    double renderNs = timeKernel([&] {
        cam.renderInto(world, drone.position(), drone.attitude(), img);
    });
    double poseNs = timeKernel([&] {
        dnn::PoseEstimate est = dnn::estimatePose(img, ecfg, scratch);
        benchmark::DoNotOptimize(est.headingRad);
    });
    double forwardNs = timeKernel(
        [&] { dnn::runForward(*model, *w, *pw, in, ws, fr); });
    double decodeNs = timeKernel([&] {
        bridge::Packet p = bridge::encodeImageResp(img);
        env::Image rt = bridge::decodeImageResp(p);
        benchmark::DoNotOptimize(rt.pixels.data());
    });

    std::printf("\nhot-frame stage breakdown (gemm_isa=%s):\n"
                "  render  %8.0f ns\n"
                "  pose    %8.0f ns\n"
                "  forward %8.0f ns\n"
                "  decode  %8.0f ns (image codec round trip)\n",
                isaName, renderNs, poseNs, forwardNs, decodeNs);

    // ---- JSON report ----
    if (!jsonPath.empty()) {
        std::ofstream js(jsonPath);
        js << "{\n  \"report\": \"hotpath\",\n  \"gemm_isa\": \""
           << isaName << "\",\n  \"gemm\": [\n";
        for (size_t i = 0; i < shapes.size(); ++i) {
            const ShapeResult &s = shapes[i];
            js << "    {\"layer\": \"" << s.layer << "\", \"kind\": \""
               << (s.conv ? "conv" : "dense") << "\", \"m\": " << s.m
               << ", \"k\": " << s.k << ", \"n\": " << s.n
               << ", \"naive_ns\": " << s.naiveNs
               << ", \"blocked_ns\": " << s.blockedNs
               << ", \"simd_ns\": " << s.simdNs
               << ", \"speedup\": " << s.speedup()
               << ", \"simd_speedup\": " << s.simdSpeedup()
               << ", \"gflops\": " << s.gflops() << "}"
               << (i + 1 < shapes.size() ? "," : "") << "\n";
        }
        js << "  ],\n";
        js << "  \"frame_classic_ns\": " << classicNs << ",\n";
        js << "  \"frame_hotpath_ns\": " << hotNs << ",\n";
        js << "  \"frame_speedup\": " << classicNs / hotNs << ",\n";
        js << "  \"frame_stages\": {\n";
        js << "    \"render_ns\": " << renderNs << ",\n";
        js << "    \"pose_ns\": " << poseNs << ",\n";
        js << "    \"forward_ns\": " << forwardNs << ",\n";
        js << "    \"decode_ns\": " << decodeNs << "\n  },\n";
        js << "  \"steady_allocs_per_10_frames\": "
           << allocsPerTenFrames << "\n}\n";
        std::printf("wrote %s\n", jsonPath.c_str());
    }

    // ---- baseline bookkeeping ----
    std::map<std::string, double> current;
    for (const ShapeResult &s : shapes) {
        std::string shape = std::to_string(s.m) + "x" +
                            std::to_string(s.k) + "x" +
                            std::to_string(s.n);
        current["gemm_" + shape + "_blocked_ns"] = s.blockedNs;
        current["gemm_" + shape + "_simd_ns"] = s.simdNs;
    }
    current["frame_hotpath_ns"] = hotNs;
    current["frame_render_ns"] = renderNs;
    current["frame_pose_ns"] = poseNs;
    current["frame_forward_ns"] = forwardNs;
    current["frame_decode_ns"] = decodeNs;

    if (!writeBaselinePath.empty()) {
        std::ofstream out(writeBaselinePath);
        out << "# hot-path perf baseline: <metric> <ns>. Regenerate "
               "with\n# bench_microbench --hotpath --write-baseline "
               "<file>.\n";
        for (const auto &kv : current)
            out << kv.first << " " << kv.second << "\n";
        std::printf("wrote baseline %s\n", writeBaselinePath.c_str());
    }

    int failures = 0;
    if (!baselinePath.empty()) {
        std::map<std::string, double> base = loadBaseline(baselinePath);
        for (const auto &kv : base) {
            auto it = current.find(kv.first);
            if (it == current.end())
                continue; // metric no longer produced: not a regression
            if (it->second > 2.0 * kv.second) {
                std::printf("PERF REGRESSION: %s = %.0f ns, baseline "
                            "%.0f ns (>2x)\n",
                            kv.first.c_str(), it->second, kv.second);
                ++failures;
            }
        }
        if (!failures)
            std::printf("perf-smoke: all %zu tracked metrics within "
                        "2x of baseline\n",
                        base.size());
    }
    return failures ? 1 : 0;
}

} // namespace hotpath

int
main(int argc, char **argv)
{
    // The hot-path report has its own flags; strip them before (or
    // instead of) handing control to google-benchmark.
    bool doHotpath = false;
    std::string jsonPath = "BENCH_hotpath.json";
    std::string baselinePath, writeBaselinePath;
    std::vector<char *> passthrough{argv[0]};
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> bool {
            size_t n = std::strlen(flag);
            if (arg.compare(0, n, flag) == 0 && arg[n] == '=')
                return true;
            return false;
        };
        if (arg == "--hotpath") {
            doHotpath = true;
        } else if (value("--hotpath")) {
            doHotpath = true;
            jsonPath = arg.substr(std::strlen("--hotpath") + 1);
        } else if (value("--baseline")) {
            doHotpath = true;
            baselinePath = arg.substr(std::strlen("--baseline") + 1);
        } else if (value("--write-baseline")) {
            doHotpath = true;
            writeBaselinePath =
                arg.substr(std::strlen("--write-baseline") + 1);
        } else {
            passthrough.push_back(argv[i]);
        }
    }
    if (doHotpath)
        return hotpath::run(jsonPath, baselinePath, writeBaselinePath);

    int pargc = int(passthrough.size());
    benchmark::Initialize(&pargc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(pargc,
                                               passthrough.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
