/**
 * @file
 * Serving throughput of the mission-service daemon (src/serve/).
 *
 * Sweeps client concurrency {1,2,4,8} against two bounded-queue
 * depths on an in-process MissionServer (real TCP loopback — the
 * exact listener/framing/admission path `rosed` runs). Each client
 * submits its missions back-to-back, retrying after an explicit
 * queue-full rejection, and we record:
 *
 *   - per-request latency: submit() to waitResult() wall time,
 *     reported as p50/p95/max;
 *   - queue wait: the server-side admission->start time each
 *     ServedResult carries back (isolates queueing delay from
 *     execution time);
 *   - missions/sec per sweep cell, and how many submissions were
 *     shed (queue_full) along the way.
 *
 * Expected shape: with a deep queue, latency grows with client count
 * (queue wait dominates once clients > workers) while missions/sec
 * saturates at the worker pool's aggregate rate. With a shallow
 * queue, tail latency stays flatter and the overflow shows up as
 * shed submissions instead — backpressure trades retries for bounded
 * queue wait. Results land in BENCH_serve.json.
 *
 * A second sweep measures result streaming: multi-megabyte
 * trajectories fetched through the chunked ResultChunk/ResultEnd
 * protocol across chunk size {64 KiB, 256 KiB, 1 MiB} x clients
 * {1, 4} x encoding {csv, binary}. Reported per cell: p50 fetch
 * latency, p50 reassembled MB/s per client, and the actual wire
 * payload moved (the binary encoding's ~1.8x size win over CSV shows
 * up directly in wire_bytes).
 *
 * A third sweep quantifies the write-ahead job journal's overhead:
 * the same submit->waitResult loop run with journaling off, on
 * (flush-only, the default durability level), and on with fsync per
 * append. Submit latency is reported separately from end-to-end
 * latency because the WAL append sits on the submit path — the
 * admission reply is not sent until the Submit record is on disk —
 * while the Terminal append happens on the worker thread.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.hh"
#include "core/experiment.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "util/logging.hh"

using namespace rose;
using namespace rose::serve;
using Clock = std::chrono::steady_clock;

namespace {

constexpr int kWorkers = 4;
constexpr int kMissionsPerClient = 4;
constexpr double kSimSeconds = 2.0;

core::MissionSpec
benchSpec(uint64_t seed)
{
    core::MissionSpec spec;
    spec.world = "tunnel";
    spec.socName = "A";
    spec.modelDepth = 14;
    spec.velocity = 3.0;
    spec.initialYawDeg = 20.0;
    spec.seed = seed;
    spec.maxSimSeconds = kSimSeconds;
    return spec;
}

struct ClientTally
{
    std::vector<double> latencyMs;
    std::vector<double> queueWaitMs;
    uint64_t shed = 0;
};

struct Pct
{
    double p50 = 0.0, p95 = 0.0, max = 0.0;
};

Pct
percentiles(std::vector<double> v)
{
    Pct p;
    if (v.empty())
        return p;
    std::sort(v.begin(), v.end());
    p.p50 = v[v.size() / 2];
    p.p95 = v[std::min(v.size() - 1, (v.size() * 95) / 100)];
    p.max = v.back();
    return p;
}

struct Cell
{
    int clients = 0;
    size_t queueDepth = 0;
    size_t missions = 0;
    uint64_t shed = 0;
    double wallSeconds = 0.0;
    double missionsPerSec = 0.0;
    Pct latency;
    Pct queueWait;
};

Cell
runCell(int clients, size_t queue_depth)
{
    ServerConfig cfg;
    cfg.workers = kWorkers;
    cfg.maxQueueDepth = queue_depth;
    // The sweep intentionally outruns the queue at small depths; the
    // per-client cap must not be the binding constraint.
    cfg.perClientInFlight = 64;
    MissionServer server(cfg);
    server.start();
    uint16_t port = server.port();

    Clock::time_point t0 = Clock::now();
    std::vector<ClientTally> tallies = core::parallelIndexed<ClientTally>(
        size_t(clients), size_t(clients), [&](size_t ci) {
            ClientTally tally;
            ServeClient client(port);
            for (int m = 0; m < kMissionsPerClient; ++m) {
                core::MissionSpec spec =
                    benchSpec(1 + ci * kMissionsPerClient + m);
                Clock::time_point start = Clock::now();
                SubmitOutcome out;
                for (;;) {
                    out = client.submit(spec);
                    if (out.accepted)
                        break;
                    // Explicit shed: back off briefly and retry. Any
                    // other rejection is a bench bug.
                    if (out.reason != RejectReason::QueueFull)
                        rose_fatal("unexpected rejection: ", out.detail);
                    tally.shed++;
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(2));
                }
                ServedResult r = client.waitResult(out.jobId);
                double ms = std::chrono::duration<double, std::milli>(
                                Clock::now() - start)
                                .count();
                tally.latencyMs.push_back(ms);
                tally.queueWaitMs.push_back(r.queueWaitMs);
            }
            return tally;
        });
    double wall =
        std::chrono::duration<double>(Clock::now() - t0).count();
    server.stop();

    Cell cell;
    cell.clients = clients;
    cell.queueDepth = queue_depth;
    cell.wallSeconds = wall;
    std::vector<double> lat, qw;
    for (const ClientTally &t : tallies) {
        cell.shed += t.shed;
        lat.insert(lat.end(), t.latencyMs.begin(), t.latencyMs.end());
        qw.insert(qw.end(), t.queueWaitMs.begin(), t.queueWaitMs.end());
    }
    cell.missions = lat.size();
    cell.missionsPerSec = wall > 0.0 ? double(cell.missions) / wall : 0.0;
    cell.latency = percentiles(lat);
    cell.queueWait = percentiles(qw);
    return cell;
}

// ------------------------------------------------------- streaming

/** Long-trajectory spec for the streaming sweep: ~4 MB of CSV per
 *  mission (one sample every 20k cycles for 1 simulated second). */
core::MissionSpec
streamSpec(uint64_t seed)
{
    core::MissionSpec spec = benchSpec(seed);
    spec.maxSimSeconds = 1.0;
    spec.syncGranularity = 20000;
    return spec;
}

struct StreamCell
{
    size_t chunkBytes = 0;
    int clients = 0;
    TrajectoryEncoding encoding = TrajectoryEncoding::Csv;
    size_t payloadBytes = 0; ///< reassembled CSV bytes (p50 client)
    uint64_t wireBytes = 0;  ///< chunk payload actually sent
    uint64_t chunks = 0;
    double fetchP50Ms = 0.0;
    double mbPerSecP50 = 0.0;
};

StreamCell
runStreamCell(size_t chunk_bytes, int clients,
              TrajectoryEncoding encoding)
{
    ServerConfig cfg;
    cfg.workers = kWorkers;
    cfg.maxQueueDepth = 32;
    cfg.perClientInFlight = 64;
    cfg.resultChunkBytes = chunk_bytes;
    cfg.progressIntervalPeriods = 0; // measure the stream alone
    MissionServer server(cfg);
    server.start();
    uint16_t port = server.port();

    struct FetchTally
    {
        double ms = 0.0;
        size_t bytes = 0;
    };
    std::vector<FetchTally> tallies =
        core::parallelIndexed<FetchTally>(
            size_t(clients), size_t(clients), [&](size_t ci) {
                ServeClient client(port);
                SubmitOutcome out = client.submit(streamSpec(1 + ci));
                if (!out.accepted)
                    rose_fatal("stream bench submit shed: ",
                               out.detail);
                while (client.status(out.jobId).state !=
                       JobState::Done)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(2));
                // The mission is finished: time only the fetch — the
                // chunked stream generation, transfer, reassembly,
                // and hash verification.
                Clock::time_point f0 = Clock::now();
                ServedResult r;
                JobState st = JobState::Unknown;
                client.tryFetchResult(out.jobId, r, &st, encoding);
                FetchTally t;
                t.ms = std::chrono::duration<double, std::milli>(
                           Clock::now() - f0)
                           .count();
                // Same numerator for both encodings (the canonical
                // CSV the fetch logically delivers) so MB/s compares
                // delivery of identical data; a Binary fetch leaves
                // trajectoryCsv empty, so render it here, outside
                // the timed window.
                t.bytes = !r.trajectoryCsv.empty()
                              ? r.trajectoryCsv.size()
                              : core::trajectoryCsvString(
                                    r.trajectory)
                                    .size();
                return t;
            });
    ServerStatsSnapshot stats = server.stats();
    server.stop();

    StreamCell cell;
    cell.chunkBytes = chunk_bytes;
    cell.clients = clients;
    cell.encoding = encoding;
    cell.wireBytes = stats.streamedPayloadBytes;
    cell.chunks = stats.streamedChunks;
    std::vector<double> ms, mbps;
    for (const FetchTally &t : tallies) {
        ms.push_back(t.ms);
        mbps.push_back(t.ms > 0.0
                           ? double(t.bytes) / 1e6 / (t.ms / 1e3)
                           : 0.0);
    }
    cell.payloadBytes = tallies.empty() ? 0 : tallies[0].bytes;
    cell.fetchP50Ms = percentiles(ms).p50;
    cell.mbPerSecP50 = percentiles(mbps).p50;
    return cell;
}

// --------------------------------------------------------- journal

/** Durability level for the journal-overhead sweep. */
enum class JournalMode
{
    Off,   ///< in-memory only (pre-v3 behavior)
    On,    ///< write-ahead journal, flush per append
    Fsync, ///< write-ahead journal, fsync per append
};

const char *
journalModeName(JournalMode m)
{
    switch (m) {
    case JournalMode::Off:
        return "off";
    case JournalMode::On:
        return "journal";
    case JournalMode::Fsync:
        return "journal+fsync";
    }
    return "?";
}

struct JournalCell
{
    JournalMode mode = JournalMode::Off;
    size_t missions = 0;
    double wallSeconds = 0.0;
    double missionsPerSec = 0.0;
    Pct submit;  ///< submit() wall time — the WAL append sits here
    Pct latency; ///< submit() to waitResult() end to end
};

constexpr int kJournalMissions = 16;

JournalCell
runJournalCell(JournalMode mode)
{
    const std::string dir = "bench_serve_journal.d";
    std::filesystem::remove_all(dir);

    ServerConfig cfg;
    cfg.workers = kWorkers;
    cfg.maxQueueDepth = 32;
    cfg.perClientInFlight = 64;
    if (mode != JournalMode::Off) {
        cfg.journalDir = dir;
        cfg.journalFsync = (mode == JournalMode::Fsync);
    }
    MissionServer server(cfg);
    server.start();

    JournalCell cell;
    cell.mode = mode;
    std::vector<double> submit_ms, lat_ms;
    ServeClient client(server.port());
    Clock::time_point t0 = Clock::now();
    for (int m = 0; m < kJournalMissions; ++m) {
        core::MissionSpec spec = benchSpec(uint64_t(1 + m));
        Clock::time_point start = Clock::now();
        SubmitOutcome out = client.submit(spec);
        submit_ms.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      start)
                .count());
        if (!out.accepted)
            rose_fatal("journal bench submit shed: ", out.detail);
        client.waitResult(out.jobId);
        lat_ms.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      start)
                .count());
    }
    cell.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    server.stop();
    std::filesystem::remove_all(dir);

    cell.missions = lat_ms.size();
    cell.missionsPerSec = cell.wallSeconds > 0.0
                              ? double(cell.missions) / cell.wallSeconds
                              : 0.0;
    cell.submit = percentiles(submit_ms);
    cell.latency = percentiles(lat_ms);
    return cell;
}

} // namespace

int
main()
{
    std::printf("rosed serving throughput (workers=%d, %d missions "
                "per client, %.1fs simulated each)\n\n",
                kWorkers, kMissionsPerClient, kSimSeconds);
    std::printf("%-8s %-7s %-9s %-6s %-12s %-12s %-12s %-12s\n",
                "clients", "queue", "missions", "shed", "msn/sec",
                "lat p50[ms]", "lat p95[ms]", "qwait p95[ms]");

    std::vector<Cell> cells;
    for (size_t depth : {size_t(4), size_t(32)}) {
        for (int clients : {1, 2, 4, 8}) {
            Cell c = runCell(clients, depth);
            std::printf("%-8d %-7zu %-9zu %-6llu %-12.2f %-12.2f "
                        "%-12.2f %-12.2f\n",
                        c.clients, c.queueDepth, c.missions,
                        static_cast<unsigned long long>(c.shed),
                        c.missionsPerSec, c.latency.p50,
                        c.latency.p95, c.queueWait.p95);
            cells.push_back(c);
        }
    }

    std::printf("\nresult streaming (chunk size x clients x "
                "encoding; ~4 MB trajectory per fetch)\n\n");
    std::printf("%-10s %-8s %-9s %-11s %-11s %-8s %-12s %-12s\n",
                "chunk", "clients", "encoding", "payload[B]",
                "wire[B]", "chunks", "fetch p50[ms]", "MB/s p50");
    std::vector<StreamCell> streamCells;
    for (size_t chunk : {size_t(64) * 1024, size_t(256) * 1024,
                         size_t(1024) * 1024}) {
        for (int clients : {1, 4}) {
            for (TrajectoryEncoding enc :
                 {TrajectoryEncoding::Csv,
                  TrajectoryEncoding::Binary}) {
                StreamCell c = runStreamCell(chunk, clients, enc);
                std::printf(
                    "%-10zu %-8d %-9s %-11zu %-11llu %-8llu "
                    "%-12.2f %-12.2f\n",
                    c.chunkBytes, c.clients,
                    trajectoryEncodingName(c.encoding),
                    c.payloadBytes,
                    static_cast<unsigned long long>(c.wireBytes),
                    static_cast<unsigned long long>(c.chunks),
                    c.fetchP50Ms, c.mbPerSecP50);
                streamCells.push_back(c);
            }
        }
    }

    std::printf("\njournal overhead (write-ahead durability on the "
                "submit path; %d sequential missions)\n\n",
                kJournalMissions);
    std::printf("%-15s %-9s %-14s %-14s %-12s %-12s\n", "mode",
                "missions", "submit p50[ms]", "submit p95[ms]",
                "lat p50[ms]", "msn/sec");
    std::vector<JournalCell> journalCells;
    for (JournalMode mode : {JournalMode::Off, JournalMode::On,
                             JournalMode::Fsync}) {
        JournalCell c = runJournalCell(mode);
        std::printf("%-15s %-9zu %-14.3f %-14.3f %-12.2f %-12.2f\n",
                    journalModeName(c.mode), c.missions, c.submit.p50,
                    c.submit.p95, c.latency.p50, c.missionsPerSec);
        journalCells.push_back(c);
    }

    std::ostringstream js;
    js << "{\n  \"workers\": " << kWorkers
       << ",\n  \"missions_per_client\": " << kMissionsPerClient
       << ",\n  \"sim_seconds\": " << kSimSeconds
       << ",\n  \"sweep\": [";
    for (size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        js << (i ? ",\n    " : "\n    ") << "{\"clients\": "
           << c.clients << ", \"queue_depth\": " << c.queueDepth
           << ", \"missions\": " << c.missions << ", \"shed\": "
           << c.shed << ", \"wall_seconds\": " << c.wallSeconds
           << ", \"missions_per_sec\": " << c.missionsPerSec
           << ", \"latency_ms\": {\"p50\": " << c.latency.p50
           << ", \"p95\": " << c.latency.p95 << ", \"max\": "
           << c.latency.max << "}, \"queue_wait_ms\": {\"p50\": "
           << c.queueWait.p50 << ", \"p95\": " << c.queueWait.p95
           << ", \"max\": " << c.queueWait.max << "}}";
    }
    js << "\n  ],\n  \"streaming\": [";
    for (size_t i = 0; i < streamCells.size(); ++i) {
        const StreamCell &c = streamCells[i];
        js << (i ? ",\n    " : "\n    ") << "{\"chunk_bytes\": "
           << c.chunkBytes << ", \"clients\": " << c.clients
           << ", \"encoding\": \""
           << trajectoryEncodingName(c.encoding)
           << "\", \"payload_bytes\": " << c.payloadBytes
           << ", \"wire_bytes\": " << c.wireBytes
           << ", \"chunks\": " << c.chunks
           << ", \"fetch_p50_ms\": " << c.fetchP50Ms
           << ", \"mb_per_sec_p50\": " << c.mbPerSecP50 << "}";
    }
    js << "\n  ],\n  \"journal\": [";
    for (size_t i = 0; i < journalCells.size(); ++i) {
        const JournalCell &c = journalCells[i];
        js << (i ? ",\n    " : "\n    ") << "{\"mode\": \""
           << journalModeName(c.mode) << "\", \"missions\": "
           << c.missions << ", \"wall_seconds\": " << c.wallSeconds
           << ", \"missions_per_sec\": " << c.missionsPerSec
           << ", \"submit_ms\": {\"p50\": " << c.submit.p50
           << ", \"p95\": " << c.submit.p95 << ", \"max\": "
           << c.submit.max << "}, \"latency_ms\": {\"p50\": "
           << c.latency.p50 << ", \"p95\": " << c.latency.p95
           << ", \"max\": " << c.latency.max << "}}";
    }
    js << "\n  ]\n}\n";

    const char *json_path = "BENCH_serve.json";
    std::ofstream out(json_path);
    if (out) {
        out << js.str();
        std::printf("\nserving report written to %s\n", json_path);
    }

    std::printf(
        "\nExpected shape: missions/sec saturates at the worker "
        "pool's aggregate rate once clients >= workers; with the deep "
        "queue the overflow shows up as p95 queue wait, with the "
        "shallow queue as shed submissions — admission control trades "
        "retries for bounded latency.\n");
    return 0;
}
