/**
 * @file
 * Table 2: hardware configurations evaluated using RoSÉ.
 *
 *   Configuration |      A      |    B    |      C
 *   CPU           | 3-wide BOOM | Rocket  | 3-wide BOOM
 *   Accelerator   |   Gemmini   | Gemmini |    None
 *
 * Prints the configuration matrix plus the modeled microarchitectural
 * parameters behind each column (Section 4.2.1), including the Gemmini
 * instance (4x4 FP32 mesh, 256 KiB scratchpad, 64 KiB accumulator).
 */

#include <cstdio>

#include "gemmini/gemmini.hh"
#include "soc/config.hh"

int
main()
{
    using namespace rose;

    std::printf("Table 2: Hardware configurations evaluated using "
                "RoSE\n\n");
    std::printf("%-16s", "Configuration");
    for (const char *name : {"A", "B", "C"})
        std::printf(" | %-14s", name);
    std::printf("\n%-16s", "CPU");
    for (const char *name : {"A", "B", "C"}) {
        soc::SocConfig c = soc::configByName(name);
        std::printf(" | %-14s", c.cpuName().c_str());
    }
    std::printf("\n%-16s", "Accelerator");
    for (const char *name : {"A", "B", "C"}) {
        soc::SocConfig c = soc::configByName(name);
        std::printf(" | %-14s", c.acceleratorName().c_str());
    }
    std::printf("\n\nModeled parameters:\n");
    for (const char *name : {"A", "B", "C"}) {
        soc::SocConfig c = soc::configByName(name);
        std::printf("  config %s: clock %.1f GHz, MMIO %llu cy, host "
                    "bw %.1f B/cy, scalar FP %.3f FLOP/cy, per-layer "
                    "dispatch %llu cy\n",
                    name, c.clockHz / 1e9,
                    (unsigned long long)c.cpuParams.mmioAccessCycles,
                    c.cpuParams.hostBytesPerCycle,
                    c.cpuParams.flopsPerCycle,
                    (unsigned long long)c.cpuParams.perLayerFixedCycles);
    }

    gemmini::GemminiConfig g;
    std::printf("\nGemmini instance (configs A, B): %dx%d FP32 "
                "weight-stationary mesh, %u KiB scratchpad, %u KiB "
                "accumulator, %.0f B/cy memory bus (128-bit), peak %d "
                "MACs/cy\n",
                g.meshRows, g.meshCols, g.scratchpadBytes / 1024,
                g.accumulatorBytes / 1024, g.busBytesPerCycle,
                g.macsPerCycle());
    return 0;
}
