/**
 * @file
 * Table 3: latency and accuracy of trained DNN controllers.
 *
 * Paper rows (ms / percent):
 *   Model                 R6    R11   R14   R18   R34
 *   Latency (BOOM+Gem)    77    83    85    130   225
 *   Latency (Rocket+Gem)  101   108   125   185   300
 *   Validation accuracy   72%   78%   82%   83%   86%
 *
 * Latency is produced by the execution engine lowering each model onto
 * the modeled SoCs; accuracy is measured by classifying rendered
 * validation images at uniformly sampled poses in the tunnel (the
 * paper's 1200-image held-out set).
 */

#include <cstdio>

#include "dnn/classifier.hh"
#include "dnn/engine.hh"
#include "env/sensors.hh"
#include "env/world.hh"

namespace {

/** Validation accuracy over rendered images at random poses. */
double
validationAccuracy(const rose::dnn::Model &model, int samples)
{
    using namespace rose;
    env::TunnelWorld world;
    env::Camera cam(env::CameraConfig{}, Rng(501));
    env::Drone drone;
    dnn::Classifier cls(model, Rng(977));
    dnn::EstimatorConfig ec;
    Rng rng(31);

    int correct = 0;
    for (int i = 0; i < samples; ++i) {
        double y = rng.uniform(-1.2, 1.2);
        double psi = rng.uniform(-0.35, 0.35);
        double x = rng.uniform(5.0, 45.0);
        drone.setPose({x, y, 1.5}, Quat::fromEuler(0, 0, psi));
        env::Image img = cam.render(world, drone);
        dnn::ClassifierOutput out = cls.infer(img);

        int true_ang = psi > ec.headingClassRad
                           ? 0
                           : (psi < -ec.headingClassRad ? 2 : 1);
        int true_lat =
            y > ec.offsetClassM ? 0 : (y < -ec.offsetClassM ? 2 : 1);
        correct += (out.angular.argmax() == true_ang);
        correct += (out.lateral.argmax() == true_lat);
    }
    return double(correct) / double(2 * samples);
}

} // namespace

int
main()
{
    using namespace rose;

    dnn::ExecutionEngine boom(soc::configA());
    dnn::ExecutionEngine rocket(soc::configB());
    dnn::ExecutionEngine cpu_only(soc::configC());

    std::printf("Table 3: latency and accuracy of trained DNN "
                "controllers\n\n");
    std::printf("%-26s", "Model");
    for (int d : dnn::resnetZoo())
        std::printf(" ResNet%-4d", d);
    std::printf("\n%-26s", "Latency (BOOM+Gemmini)");
    for (int d : dnn::resnetZoo()) {
        std::printf(" %6.0fms  ",
                    boom.latencySeconds(dnn::makeResNet(d)) * 1e3);
    }
    std::printf("\n%-26s", "Latency (Rocket+Gemmini)");
    for (int d : dnn::resnetZoo()) {
        std::printf(" %6.0fms  ",
                    rocket.latencySeconds(dnn::makeResNet(d)) * 1e3);
    }
    std::printf("\n%-26s", "Validation accuracy");
    for (int d : dnn::resnetZoo()) {
        double acc = validationAccuracy(dnn::makeResNet(d), 600);
        std::printf(" %6.0f%%  ", acc * 100.0);
    }
    std::printf("\n%-26s", "Paper accuracy");
    for (int d : dnn::resnetZoo()) {
        std::printf(" %6.0f%%  ",
                    dnn::makeResNet(d).calib.paperAccuracy * 100.0);
    }

    // Section 5.1 observation backing Figure 10 config C: CPU-only
    // latency is in whole seconds.
    std::printf("\n\nCPU-only (config C, no accelerator) latency:\n");
    for (int d : dnn::resnetZoo()) {
        dnn::Model m = dnn::makeResNet(d);
        std::printf("  %-10s %6.2f s\n", m.name.c_str(),
                    cpu_only.latencySeconds(m));
    }

    std::printf("\nModel inventory:\n");
    for (int d : dnn::resnetZoo()) {
        dnn::Model m = dnn::makeResNet(d);
        std::printf("  %-10s %4d weighted layers, %7.1f MMACs, %6.2f "
                    "MB weights\n",
                    m.name.c_str(), m.weightedLayers(),
                    m.totalMacs() / 1e6,
                    m.totalWeights() * 4.0 / 1e6);
    }
    return 0;
}
