file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_accelerator.dir/bench_ablation_accelerator.cpp.o"
  "CMakeFiles/bench_ablation_accelerator.dir/bench_ablation_accelerator.cpp.o.d"
  "bench_ablation_accelerator"
  "bench_ablation_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
