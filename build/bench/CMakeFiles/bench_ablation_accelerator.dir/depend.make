# Empty dependencies file for bench_ablation_accelerator.
# This may be replaced when dependencies are built.
