file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bridge.dir/bench_ablation_bridge.cpp.o"
  "CMakeFiles/bench_ablation_bridge.dir/bench_ablation_bridge.cpp.o.d"
  "bench_ablation_bridge"
  "bench_ablation_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
