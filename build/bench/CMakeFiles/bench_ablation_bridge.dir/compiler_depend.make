# Empty compiler generated dependencies file for bench_ablation_bridge.
# This may be replaced when dependencies are built.
