file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_classical.dir/bench_ablation_classical.cpp.o"
  "CMakeFiles/bench_ablation_classical.dir/bench_ablation_classical.cpp.o.d"
  "bench_ablation_classical"
  "bench_ablation_classical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_classical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
