# Empty dependencies file for bench_ablation_classical.
# This may be replaced when dependencies are built.
