file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_energy.dir/bench_ablation_energy.cpp.o"
  "CMakeFiles/bench_ablation_energy.dir/bench_ablation_energy.cpp.o.d"
  "bench_ablation_energy"
  "bench_ablation_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
