# Empty dependencies file for bench_ablation_energy.
# This may be replaced when dependencies are built.
