file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multitenant.dir/bench_ablation_multitenant.cpp.o"
  "CMakeFiles/bench_ablation_multitenant.dir/bench_ablation_multitenant.cpp.o.d"
  "bench_ablation_multitenant"
  "bench_ablation_multitenant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multitenant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
