# Empty compiler generated dependencies file for bench_ablation_multitenant.
# This may be replaced when dependencies are built.
