# Empty compiler generated dependencies file for bench_fig10_hw_trajectories.
# This may be replaced when dependencies are built.
