# Empty dependencies file for bench_fig11_dnn_sweep.
# This may be replaced when dependencies are built.
