# Empty compiler generated dependencies file for bench_fig12_velocity_sweep.
# This may be replaced when dependencies are built.
