# Empty compiler generated dependencies file for bench_fig13_dynamic_runtime.
# This may be replaced when dependencies are built.
