file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_codesign.dir/bench_fig14_codesign.cpp.o"
  "CMakeFiles/bench_fig14_codesign.dir/bench_fig14_codesign.cpp.o.d"
  "bench_fig14_codesign"
  "bench_fig14_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
