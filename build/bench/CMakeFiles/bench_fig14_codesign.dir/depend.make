# Empty dependencies file for bench_fig14_codesign.
# This may be replaced when dependencies are built.
