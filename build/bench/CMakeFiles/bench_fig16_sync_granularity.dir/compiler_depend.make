# Empty compiler generated dependencies file for bench_fig16_sync_granularity.
# This may be replaced when dependencies are built.
