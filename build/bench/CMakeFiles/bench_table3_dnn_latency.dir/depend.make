# Empty dependencies file for bench_table3_dnn_latency.
# This may be replaced when dependencies are built.
