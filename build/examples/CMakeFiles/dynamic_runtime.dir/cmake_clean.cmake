file(REMOVE_RECURSE
  "CMakeFiles/dynamic_runtime.dir/dynamic_runtime.cpp.o"
  "CMakeFiles/dynamic_runtime.dir/dynamic_runtime.cpp.o.d"
  "dynamic_runtime"
  "dynamic_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
