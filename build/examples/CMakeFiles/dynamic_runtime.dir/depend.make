# Empty dependencies file for dynamic_runtime.
# This may be replaced when dependencies are built.
