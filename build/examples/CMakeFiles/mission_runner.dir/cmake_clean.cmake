file(REMOVE_RECURSE
  "CMakeFiles/mission_runner.dir/mission_runner.cpp.o"
  "CMakeFiles/mission_runner.dir/mission_runner.cpp.o.d"
  "mission_runner"
  "mission_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mission_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
