# Empty dependencies file for mission_runner.
# This may be replaced when dependencies are built.
