
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rose_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/rose_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rose_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/rose_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/rose_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/bridge/CMakeFiles/rose_bridge.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/rose_env.dir/DependInfo.cmake"
  "/root/repo/build/src/flight/CMakeFiles/rose_flight.dir/DependInfo.cmake"
  "/root/repo/build/src/rv/CMakeFiles/rose_rv.dir/DependInfo.cmake"
  "/root/repo/build/src/gemmini/CMakeFiles/rose_gemmini.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rose_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
