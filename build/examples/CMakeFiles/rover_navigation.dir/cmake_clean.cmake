file(REMOVE_RECURSE
  "CMakeFiles/rover_navigation.dir/rover_navigation.cpp.o"
  "CMakeFiles/rover_navigation.dir/rover_navigation.cpp.o.d"
  "rover_navigation"
  "rover_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rover_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
