# Empty dependencies file for rover_navigation.
# This may be replaced when dependencies are built.
