file(REMOVE_RECURSE
  "CMakeFiles/rv_baremetal_control.dir/rv_baremetal_control.cpp.o"
  "CMakeFiles/rv_baremetal_control.dir/rv_baremetal_control.cpp.o.d"
  "rv_baremetal_control"
  "rv_baremetal_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rv_baremetal_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
