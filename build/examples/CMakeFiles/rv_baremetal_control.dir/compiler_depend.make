# Empty compiler generated dependencies file for rv_baremetal_control.
# This may be replaced when dependencies are built.
