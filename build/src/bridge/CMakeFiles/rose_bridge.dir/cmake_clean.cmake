file(REMOVE_RECURSE
  "CMakeFiles/rose_bridge.dir/packet.cc.o"
  "CMakeFiles/rose_bridge.dir/packet.cc.o.d"
  "CMakeFiles/rose_bridge.dir/rose_bridge.cc.o"
  "CMakeFiles/rose_bridge.dir/rose_bridge.cc.o.d"
  "CMakeFiles/rose_bridge.dir/target_driver.cc.o"
  "CMakeFiles/rose_bridge.dir/target_driver.cc.o.d"
  "CMakeFiles/rose_bridge.dir/transport.cc.o"
  "CMakeFiles/rose_bridge.dir/transport.cc.o.d"
  "librose_bridge.a"
  "librose_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
