file(REMOVE_RECURSE
  "librose_bridge.a"
)
