# Empty dependencies file for rose_bridge.
# This may be replaced when dependencies are built.
