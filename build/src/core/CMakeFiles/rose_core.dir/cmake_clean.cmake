file(REMOVE_RECURSE
  "CMakeFiles/rose_core.dir/cosim.cc.o"
  "CMakeFiles/rose_core.dir/cosim.cc.o.d"
  "CMakeFiles/rose_core.dir/experiment.cc.o"
  "CMakeFiles/rose_core.dir/experiment.cc.o.d"
  "CMakeFiles/rose_core.dir/hostmodel.cc.o"
  "CMakeFiles/rose_core.dir/hostmodel.cc.o.d"
  "librose_core.a"
  "librose_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
