file(REMOVE_RECURSE
  "librose_core.a"
)
