# Empty dependencies file for rose_core.
# This may be replaced when dependencies are built.
