
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/classifier.cc" "src/dnn/CMakeFiles/rose_dnn.dir/classifier.cc.o" "gcc" "src/dnn/CMakeFiles/rose_dnn.dir/classifier.cc.o.d"
  "/root/repo/src/dnn/engine.cc" "src/dnn/CMakeFiles/rose_dnn.dir/engine.cc.o" "gcc" "src/dnn/CMakeFiles/rose_dnn.dir/engine.cc.o.d"
  "/root/repo/src/dnn/forward.cc" "src/dnn/CMakeFiles/rose_dnn.dir/forward.cc.o" "gcc" "src/dnn/CMakeFiles/rose_dnn.dir/forward.cc.o.d"
  "/root/repo/src/dnn/layers.cc" "src/dnn/CMakeFiles/rose_dnn.dir/layers.cc.o" "gcc" "src/dnn/CMakeFiles/rose_dnn.dir/layers.cc.o.d"
  "/root/repo/src/dnn/resnet.cc" "src/dnn/CMakeFiles/rose_dnn.dir/resnet.cc.o" "gcc" "src/dnn/CMakeFiles/rose_dnn.dir/resnet.cc.o.d"
  "/root/repo/src/dnn/tensor.cc" "src/dnn/CMakeFiles/rose_dnn.dir/tensor.cc.o" "gcc" "src/dnn/CMakeFiles/rose_dnn.dir/tensor.cc.o.d"
  "/root/repo/src/dnn/train.cc" "src/dnn/CMakeFiles/rose_dnn.dir/train.cc.o" "gcc" "src/dnn/CMakeFiles/rose_dnn.dir/train.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rose_util.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/rose_env.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/rose_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/gemmini/CMakeFiles/rose_gemmini.dir/DependInfo.cmake"
  "/root/repo/build/src/bridge/CMakeFiles/rose_bridge.dir/DependInfo.cmake"
  "/root/repo/build/src/flight/CMakeFiles/rose_flight.dir/DependInfo.cmake"
  "/root/repo/build/src/rv/CMakeFiles/rose_rv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
