file(REMOVE_RECURSE
  "CMakeFiles/rose_dnn.dir/classifier.cc.o"
  "CMakeFiles/rose_dnn.dir/classifier.cc.o.d"
  "CMakeFiles/rose_dnn.dir/engine.cc.o"
  "CMakeFiles/rose_dnn.dir/engine.cc.o.d"
  "CMakeFiles/rose_dnn.dir/forward.cc.o"
  "CMakeFiles/rose_dnn.dir/forward.cc.o.d"
  "CMakeFiles/rose_dnn.dir/layers.cc.o"
  "CMakeFiles/rose_dnn.dir/layers.cc.o.d"
  "CMakeFiles/rose_dnn.dir/resnet.cc.o"
  "CMakeFiles/rose_dnn.dir/resnet.cc.o.d"
  "CMakeFiles/rose_dnn.dir/tensor.cc.o"
  "CMakeFiles/rose_dnn.dir/tensor.cc.o.d"
  "CMakeFiles/rose_dnn.dir/train.cc.o"
  "CMakeFiles/rose_dnn.dir/train.cc.o.d"
  "librose_dnn.a"
  "librose_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
