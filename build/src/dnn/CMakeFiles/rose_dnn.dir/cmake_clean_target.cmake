file(REMOVE_RECURSE
  "librose_dnn.a"
)
