# Empty dependencies file for rose_dnn.
# This may be replaced when dependencies are built.
