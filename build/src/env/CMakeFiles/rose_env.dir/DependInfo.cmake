
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/env/drone.cc" "src/env/CMakeFiles/rose_env.dir/drone.cc.o" "gcc" "src/env/CMakeFiles/rose_env.dir/drone.cc.o.d"
  "/root/repo/src/env/envsim.cc" "src/env/CMakeFiles/rose_env.dir/envsim.cc.o" "gcc" "src/env/CMakeFiles/rose_env.dir/envsim.cc.o.d"
  "/root/repo/src/env/sensors.cc" "src/env/CMakeFiles/rose_env.dir/sensors.cc.o" "gcc" "src/env/CMakeFiles/rose_env.dir/sensors.cc.o.d"
  "/root/repo/src/env/vehicle.cc" "src/env/CMakeFiles/rose_env.dir/vehicle.cc.o" "gcc" "src/env/CMakeFiles/rose_env.dir/vehicle.cc.o.d"
  "/root/repo/src/env/world.cc" "src/env/CMakeFiles/rose_env.dir/world.cc.o" "gcc" "src/env/CMakeFiles/rose_env.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rose_util.dir/DependInfo.cmake"
  "/root/repo/build/src/flight/CMakeFiles/rose_flight.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
