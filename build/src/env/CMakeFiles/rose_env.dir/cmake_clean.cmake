file(REMOVE_RECURSE
  "CMakeFiles/rose_env.dir/drone.cc.o"
  "CMakeFiles/rose_env.dir/drone.cc.o.d"
  "CMakeFiles/rose_env.dir/envsim.cc.o"
  "CMakeFiles/rose_env.dir/envsim.cc.o.d"
  "CMakeFiles/rose_env.dir/sensors.cc.o"
  "CMakeFiles/rose_env.dir/sensors.cc.o.d"
  "CMakeFiles/rose_env.dir/vehicle.cc.o"
  "CMakeFiles/rose_env.dir/vehicle.cc.o.d"
  "CMakeFiles/rose_env.dir/world.cc.o"
  "CMakeFiles/rose_env.dir/world.cc.o.d"
  "librose_env.a"
  "librose_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
