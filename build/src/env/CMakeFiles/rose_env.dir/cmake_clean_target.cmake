file(REMOVE_RECURSE
  "librose_env.a"
)
