# Empty dependencies file for rose_env.
# This may be replaced when dependencies are built.
