
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flight/controller.cc" "src/flight/CMakeFiles/rose_flight.dir/controller.cc.o" "gcc" "src/flight/CMakeFiles/rose_flight.dir/controller.cc.o.d"
  "/root/repo/src/flight/pid.cc" "src/flight/CMakeFiles/rose_flight.dir/pid.cc.o" "gcc" "src/flight/CMakeFiles/rose_flight.dir/pid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rose_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
