file(REMOVE_RECURSE
  "CMakeFiles/rose_flight.dir/controller.cc.o"
  "CMakeFiles/rose_flight.dir/controller.cc.o.d"
  "CMakeFiles/rose_flight.dir/pid.cc.o"
  "CMakeFiles/rose_flight.dir/pid.cc.o.d"
  "librose_flight.a"
  "librose_flight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_flight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
