file(REMOVE_RECURSE
  "librose_flight.a"
)
