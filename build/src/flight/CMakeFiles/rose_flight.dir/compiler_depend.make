# Empty compiler generated dependencies file for rose_flight.
# This may be replaced when dependencies are built.
