file(REMOVE_RECURSE
  "CMakeFiles/rose_gemmini.dir/gemmini.cc.o"
  "CMakeFiles/rose_gemmini.dir/gemmini.cc.o.d"
  "librose_gemmini.a"
  "librose_gemmini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_gemmini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
