file(REMOVE_RECURSE
  "librose_gemmini.a"
)
