# Empty compiler generated dependencies file for rose_gemmini.
# This may be replaced when dependencies are built.
