file(REMOVE_RECURSE
  "CMakeFiles/rose_runtime.dir/control_app.cc.o"
  "CMakeFiles/rose_runtime.dir/control_app.cc.o.d"
  "CMakeFiles/rose_runtime.dir/control_policy.cc.o"
  "CMakeFiles/rose_runtime.dir/control_policy.cc.o.d"
  "CMakeFiles/rose_runtime.dir/mpc_app.cc.o"
  "CMakeFiles/rose_runtime.dir/mpc_app.cc.o.d"
  "librose_runtime.a"
  "librose_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
