file(REMOVE_RECURSE
  "librose_runtime.a"
)
