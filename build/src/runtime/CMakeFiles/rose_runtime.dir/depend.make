# Empty dependencies file for rose_runtime.
# This may be replaced when dependencies are built.
