file(REMOVE_RECURSE
  "CMakeFiles/rose_rv.dir/assembler.cc.o"
  "CMakeFiles/rose_rv.dir/assembler.cc.o.d"
  "CMakeFiles/rose_rv.dir/core.cc.o"
  "CMakeFiles/rose_rv.dir/core.cc.o.d"
  "CMakeFiles/rose_rv.dir/insn.cc.o"
  "CMakeFiles/rose_rv.dir/insn.cc.o.d"
  "CMakeFiles/rose_rv.dir/timing.cc.o"
  "CMakeFiles/rose_rv.dir/timing.cc.o.d"
  "librose_rv.a"
  "librose_rv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_rv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
