file(REMOVE_RECURSE
  "librose_rv.a"
)
