# Empty dependencies file for rose_rv.
# This may be replaced when dependencies are built.
