
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/config.cc" "src/soc/CMakeFiles/rose_soc.dir/config.cc.o" "gcc" "src/soc/CMakeFiles/rose_soc.dir/config.cc.o.d"
  "/root/repo/src/soc/mem.cc" "src/soc/CMakeFiles/rose_soc.dir/mem.cc.o" "gcc" "src/soc/CMakeFiles/rose_soc.dir/mem.cc.o.d"
  "/root/repo/src/soc/multitenant.cc" "src/soc/CMakeFiles/rose_soc.dir/multitenant.cc.o" "gcc" "src/soc/CMakeFiles/rose_soc.dir/multitenant.cc.o.d"
  "/root/repo/src/soc/rv_workload.cc" "src/soc/CMakeFiles/rose_soc.dir/rv_workload.cc.o" "gcc" "src/soc/CMakeFiles/rose_soc.dir/rv_workload.cc.o.d"
  "/root/repo/src/soc/socsim.cc" "src/soc/CMakeFiles/rose_soc.dir/socsim.cc.o" "gcc" "src/soc/CMakeFiles/rose_soc.dir/socsim.cc.o.d"
  "/root/repo/src/soc/trace.cc" "src/soc/CMakeFiles/rose_soc.dir/trace.cc.o" "gcc" "src/soc/CMakeFiles/rose_soc.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rose_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bridge/CMakeFiles/rose_bridge.dir/DependInfo.cmake"
  "/root/repo/build/src/rv/CMakeFiles/rose_rv.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/rose_env.dir/DependInfo.cmake"
  "/root/repo/build/src/flight/CMakeFiles/rose_flight.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
