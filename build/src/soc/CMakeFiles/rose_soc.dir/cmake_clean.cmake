file(REMOVE_RECURSE
  "CMakeFiles/rose_soc.dir/config.cc.o"
  "CMakeFiles/rose_soc.dir/config.cc.o.d"
  "CMakeFiles/rose_soc.dir/mem.cc.o"
  "CMakeFiles/rose_soc.dir/mem.cc.o.d"
  "CMakeFiles/rose_soc.dir/multitenant.cc.o"
  "CMakeFiles/rose_soc.dir/multitenant.cc.o.d"
  "CMakeFiles/rose_soc.dir/rv_workload.cc.o"
  "CMakeFiles/rose_soc.dir/rv_workload.cc.o.d"
  "CMakeFiles/rose_soc.dir/socsim.cc.o"
  "CMakeFiles/rose_soc.dir/socsim.cc.o.d"
  "CMakeFiles/rose_soc.dir/trace.cc.o"
  "CMakeFiles/rose_soc.dir/trace.cc.o.d"
  "librose_soc.a"
  "librose_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
