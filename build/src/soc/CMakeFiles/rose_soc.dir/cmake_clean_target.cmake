file(REMOVE_RECURSE
  "librose_soc.a"
)
