# Empty dependencies file for rose_soc.
# This may be replaced when dependencies are built.
