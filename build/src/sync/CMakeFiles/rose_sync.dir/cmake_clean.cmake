file(REMOVE_RECURSE
  "CMakeFiles/rose_sync.dir/synchronizer.cc.o"
  "CMakeFiles/rose_sync.dir/synchronizer.cc.o.d"
  "librose_sync.a"
  "librose_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
