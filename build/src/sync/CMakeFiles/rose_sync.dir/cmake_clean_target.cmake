file(REMOVE_RECURSE
  "librose_sync.a"
)
