# Empty dependencies file for rose_sync.
# This may be replaced when dependencies are built.
