file(REMOVE_RECURSE
  "CMakeFiles/rose_util.dir/csv.cc.o"
  "CMakeFiles/rose_util.dir/csv.cc.o.d"
  "CMakeFiles/rose_util.dir/geometry.cc.o"
  "CMakeFiles/rose_util.dir/geometry.cc.o.d"
  "CMakeFiles/rose_util.dir/logging.cc.o"
  "CMakeFiles/rose_util.dir/logging.cc.o.d"
  "CMakeFiles/rose_util.dir/rng.cc.o"
  "CMakeFiles/rose_util.dir/rng.cc.o.d"
  "CMakeFiles/rose_util.dir/stats.cc.o"
  "CMakeFiles/rose_util.dir/stats.cc.o.d"
  "librose_util.a"
  "librose_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
