file(REMOVE_RECURSE
  "librose_util.a"
)
