# Empty compiler generated dependencies file for rose_util.
# This may be replaced when dependencies are built.
