file(REMOVE_RECURSE
  "CMakeFiles/test_bridge.dir/test_bridge.cc.o"
  "CMakeFiles/test_bridge.dir/test_bridge.cc.o.d"
  "test_bridge"
  "test_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
