# Empty dependencies file for test_bridge.
# This may be replaced when dependencies are built.
