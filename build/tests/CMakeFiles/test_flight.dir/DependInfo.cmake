
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_flight.cc" "tests/CMakeFiles/test_flight.dir/test_flight.cc.o" "gcc" "tests/CMakeFiles/test_flight.dir/test_flight.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flight/CMakeFiles/rose_flight.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/rose_env.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rose_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
