file(REMOVE_RECURSE
  "CMakeFiles/test_flight.dir/test_flight.cc.o"
  "CMakeFiles/test_flight.dir/test_flight.cc.o.d"
  "test_flight"
  "test_flight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
