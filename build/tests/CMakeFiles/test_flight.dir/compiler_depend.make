# Empty compiler generated dependencies file for test_flight.
# This may be replaced when dependencies are built.
