file(REMOVE_RECURSE
  "CMakeFiles/test_gemmini.dir/test_gemmini.cc.o"
  "CMakeFiles/test_gemmini.dir/test_gemmini.cc.o.d"
  "test_gemmini"
  "test_gemmini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gemmini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
