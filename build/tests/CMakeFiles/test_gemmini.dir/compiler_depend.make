# Empty compiler generated dependencies file for test_gemmini.
# This may be replaced when dependencies are built.
