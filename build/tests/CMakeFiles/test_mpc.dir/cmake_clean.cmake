file(REMOVE_RECURSE
  "CMakeFiles/test_mpc.dir/test_mpc.cc.o"
  "CMakeFiles/test_mpc.dir/test_mpc.cc.o.d"
  "test_mpc"
  "test_mpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
