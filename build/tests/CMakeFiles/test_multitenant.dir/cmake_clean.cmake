file(REMOVE_RECURSE
  "CMakeFiles/test_multitenant.dir/test_multitenant.cc.o"
  "CMakeFiles/test_multitenant.dir/test_multitenant.cc.o.d"
  "test_multitenant"
  "test_multitenant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multitenant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
