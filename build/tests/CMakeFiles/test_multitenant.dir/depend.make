# Empty dependencies file for test_multitenant.
# This may be replaced when dependencies are built.
