file(REMOVE_RECURSE
  "CMakeFiles/test_rv.dir/test_rv.cc.o"
  "CMakeFiles/test_rv.dir/test_rv.cc.o.d"
  "test_rv"
  "test_rv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
