# Empty dependencies file for test_rv.
# This may be replaced when dependencies are built.
