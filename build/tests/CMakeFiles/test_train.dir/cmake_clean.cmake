file(REMOVE_RECURSE
  "CMakeFiles/test_train.dir/test_train.cc.o"
  "CMakeFiles/test_train.dir/test_train.cc.o.d"
  "test_train"
  "test_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
