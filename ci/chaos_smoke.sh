#!/usr/bin/env bash
# Chaos smoke for crash-safe serving: boot a journaled rosed, submit a
# long mission, SIGKILL the daemon mid-mission, restart it on the same
# journal directory, and require that
#   (a) resubmitting the same idempotency key lands on the original
#       job id instead of running the mission twice, and
#   (b) the recovered job's served trajectory hashes bit-identically
#       to a local uninterrupted run of the same spec (`rose_client
#       verify` exits nonzero on mismatch).
# Covers the whole durability path end to end: journal append, torn-
# tail-tolerant replay, requeue + checkpoint warm restore, idempotent
# admission, and result streaming after recovery.
#
# usage: chaos_smoke.sh <rose_client> <rosed>
set -euo pipefail

client="$1"
rosed="$2"
work="$(mktemp -d)"
rosed_pid=
cleanup() {
    [ -n "$rosed_pid" ] && kill -9 "$rosed_pid" 2>/dev/null
    rm -rf "$work"
    return 0
}
trap cleanup EXIT

# The canonical golden mission at a deliberately fine sync granularity:
# ~1.7 s of service time in the default build (more under sanitizers),
# so the SIGKILL below reliably lands mid-mission.
spec=(--world tunnel --soc A --depth 14 --velocity 3.0 --yaw 20
      --seed 1 --sim-seconds 30 --sync-granularity 100000)

boot_rosed() {
    : > "$work/port"
    "$rosed" --port 0 --jobs 1 --journal "$work/journal" \
        --port-file "$work/port" &
    rosed_pid=$!
    for _ in $(seq 1 100); do
        [ -s "$work/port" ] && break
        sleep 0.1
    done
    [ -s "$work/port" ] || {
        echo "chaos_smoke: rosed never published its port" >&2
        exit 1
    }
    port="$(cat "$work/port")"
}

boot_rosed
"$client" --port "$port" submit "${spec[@]}" \
    --idem-key chaos-smoke-1 --job-file "$work/job"
job="$(cat "$work/job")"

# Let the mission get going, then die without ceremony — no drain, no
# journal close, exactly the crash the write-ahead discipline is for.
sleep 0.3
kill -9 "$rosed_pid"
wait "$rosed_pid" 2>/dev/null || true

# Restart on the same journal directory: the interrupted job must be
# replayed, and the retried submission must dedup onto its id.
boot_rosed
"$client" --port "$port" submit "${spec[@]}" \
    --idem-key chaos-smoke-1 --job-file "$work/job2"
job2="$(cat "$work/job2")"
if [ "$job" != "$job2" ]; then
    echo "chaos_smoke: idempotent resubmit ran the mission twice" \
        "(job $job before the crash, job $job2 after)" >&2
    exit 1
fi

# Golden-hash parity: the recovered (requeued, possibly checkpoint-
# warm-restored) result must be bit-identical to a local run.
"$client" --port "$port" --timeout 120000 verify "$job" "${spec[@]}"

"$client" --port "$port" shutdown
wait "$rosed_pid"
rosed_pid=
echo "chaos_smoke: job $job recovered bit-identically across SIGKILL"
