#!/usr/bin/env bash
# CI entry point: build and test the default (RelWithDebInfo) tree and
# the ASan+UBSan tree. The sanitizer pass is what keeps the wire-framing
# and transport robustness tests honest — a buffer overread or UB in the
# decode path fails the build here even when the plain run passes.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

run_preset() {
    local preset="$1"
    local builddir="$2"
    echo "==== [$preset] configure ===="
    cmake --preset "$preset"
    echo "==== [$preset] build ===="
    cmake --build --preset "$preset" -j "$jobs"
    echo "==== [$preset] test ===="
    ctest --preset "$preset"

    # Batch determinism parity at explicit thread counts beyond the
    # default {1,2,8} matrix: ROSE_BATCH_JOBS adds counts so the
    # serial-vs-parallel bit-equality contract is exercised at both an
    # odd count and one well past this host's core count.
    echo "==== [$preset] batch parity (extra thread counts) ===="
    ROSE_BATCH_JOBS=3,16 "$builddir/tests/test_batch" \
        --gtest_filter='BatchParity.*'

    # Resilience layer, re-run explicitly: checkpoint/resume must stay
    # bit-identical to the goldens, and a multi-threaded batch with a
    # crashing slot must still return results for every other slot.
    echo "==== [$preset] resilience (checkpoint resume + batch isolation) ===="
    "$builddir/tests/test_checkpoint" \
        --gtest_filter='Checkpoint.ResumeMatchesGoldenTraces'
    "$builddir/tests/test_supervisor" \
        --gtest_filter='BatchIsolation.*:Supervisor.RecoversMissionThatAbortsUnsupervised'

    # Hot-path engine: blocked-GEMM bit-identity, zero-steady-state
    # allocation, cached sensor/pose paths. The allocation-counting
    # assertions skip themselves under the sanitizer preset.
    echo "==== [$preset] hot-path bit-identity + zero-alloc ===="
    "$builddir/tests/test_hotpath"

    # Serve smoke: boot rosed on an ephemeral port, submit the golden
    # missions from 4 concurrent clients, and require every served
    # trajectory to hash bit-identically to a local run (the client's
    # `smoke` subcommand exits nonzero on any mismatch). Exercises the
    # whole daemon — listener, framing, admission, worker pool, drain
    # shutdown — under both presets, so ASan/UBSan covers the IO loop.
    echo "==== [$preset] serve smoke (rosed + 4 concurrent clients) ===="
    portfile="$(mktemp)"
    "$builddir/src/serve/rosed" --port 0 --jobs 2 \
        --port-file "$portfile" &
    rosed_pid=$!
    for _ in $(seq 1 100); do
        [ -s "$portfile" ] && break
        sleep 0.1
    done
    [ -s "$portfile" ] || { echo "rosed never published its port"; \
        kill "$rosed_pid" 2>/dev/null; exit 1; }
    "$builddir/src/serve/rose_client" --port "$(cat "$portfile")" \
        smoke --clients 4 --missions 8

    # Streaming smoke on the same daemon: one mission whose trajectory
    # CSV exceeds 8 MiB (larger than any single protocol frame, so it
    # necessarily crosses many ResultChunk frames), fetched in both
    # CSV and binary encodings and hash-verified against a local run.
    # Under ASan/UBSan this sweeps the chunked tx path, the binary
    # quantizer, and the client-side reassembler.
    echo "==== [$preset] serve streaming smoke (>8 MiB trajectory) ===="
    "$builddir/src/serve/rose_client" --port "$(cat "$portfile")" \
        stream-smoke 2> /dev/null
    "$builddir/src/serve/rose_client" --port "$(cat "$portfile")" \
        shutdown
    wait "$rosed_pid"
    rm -f "$portfile"

    # Chaos smoke: SIGKILL a journaled rosed mid-mission, restart it
    # on the same journal directory, and require idempotent-resubmit
    # dedup plus golden-hash parity of the recovered result. This is
    # the crash-safety acceptance gate, run under both presets so the
    # sanitizers sweep the journal replay and recovery paths too.
    echo "==== [$preset] chaos smoke (SIGKILL + journal recovery) ===="
    ci/chaos_smoke.sh "$builddir/src/serve/rose_client" \
        "$builddir/src/serve/rosed"
}

run_preset default build
run_preset asan build-asan

# ISA-dispatch parity gate: the whole suite must also pass with the
# GEMM dispatcher pinned to the scalar kernel (ROSE_GEMM_ISA=scalar).
# The plain ctest above ran under auto — the best bit-exact SIMD tier
# the host supports — so together the two passes prove the golden
# hashes and every bit-identity contract hold on BOTH sides of the
# dispatch. (avx2fma is never forced here: it is opt-in precisely
# because it is not bit-identical.)
echo "==== [default] scalar-forced ctest (dispatch parity) ===="
ROSE_GEMM_ISA=scalar ctest --preset default

# Perf smoke (default preset only): re-measure the hot-path kernels —
# scalar and SIMD GEMM tiers plus the per-stage frame breakdown — and
# fail on a >2x latency regression against the recorded baseline.
# Refresh the baseline with:
#   build/bench/bench_microbench --hotpath --write-baseline=ci/perf_baseline.txt
echo "==== [default] perf-smoke (hot-path regression gate) ===="
build/bench/bench_microbench --hotpath=BENCH_hotpath.json \
    --baseline=ci/perf_baseline.txt

echo "==== all presets passed ===="
