#!/usr/bin/env bash
# CI entry point: build and test the default (RelWithDebInfo) tree and
# the ASan+UBSan tree. The sanitizer pass is what keeps the wire-framing
# and transport robustness tests honest — a buffer overread or UB in the
# decode path fails the build here even when the plain run passes.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

run_preset() {
    local preset="$1"
    echo "==== [$preset] configure ===="
    cmake --preset "$preset"
    echo "==== [$preset] build ===="
    cmake --build --preset "$preset" -j "$jobs"
    echo "==== [$preset] test ===="
    ctest --preset "$preset"
}

run_preset default
run_preset asan

echo "==== all presets passed ===="
