/**
 * @file
 * Design-space exploration: the paper's headline use case — sweep SoC
 * configurations against controller DNNs in a closed-loop mission and
 * tabulate mission-level outcomes next to the isolated inference
 * latencies, showing why isolated benchmarking is not enough
 * (Sections 5.1/5.4).
 *
 * The full SoC x DNN matrix runs through the deterministic mission
 * batch runner: --jobs N fans the missions out over N worker threads
 * and the table is identical for any N.
 *
 * Run: ./build/examples/design_space_exploration [--jobs N]
 *          [world] [velocity]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/batch.hh"
#include "core/experiment.hh"
#include "dnn/engine.hh"

int
main(int argc, char **argv)
{
    using namespace rose;

    core::BatchCli cli = core::parseBatchCli(argc, argv);
    std::string world = argc > 1 ? argv[1] : "s-shape";
    double velocity = argc > 2 ? std::atof(argv[2]) : 9.0;

    std::printf("RoSE design-space exploration: %s @ %.1f m/s\n\n",
                world.c_str(), velocity);
    std::printf("%-4s %-10s %-12s %-10s %-6s %-10s %-10s\n", "SoC",
                "DNN", "infer[ms]", "mission", "coll", "avgv[m/s]",
                "activity");

    std::vector<core::MissionSpec> specs;
    for (const char *soc_name : {"A", "B"}) {
        for (int depth : dnn::resnetZoo()) {
            core::MissionSpec spec;
            spec.world = world;
            spec.socName = soc_name;
            spec.modelDepth = depth;
            spec.velocity = velocity;
            spec.maxSimSeconds = 60.0;
            specs.push_back(spec);
        }
    }

    core::BatchRunner runner(cli.options());
    std::vector<core::MissionResult> results = runner.run(specs);

    for (size_t i = 0; i < specs.size(); ++i) {
        const core::MissionSpec &spec = specs[i];
        const core::MissionResult &r = results[i];

        dnn::ExecutionEngine engine(soc::configByName(spec.socName));
        double lat =
            engine.latencySeconds(*dnn::sharedResNet(spec.modelDepth));

        std::printf("%-4s %-10s %-12.0f %-10s %-6llu %-10.2f "
                    "%-10.3f\n",
                    spec.socName.c_str(),
                    ("ResNet" + std::to_string(spec.modelDepth)).c_str(),
                    lat * 1e3,
                    core::missionTimeString(r).c_str(),
                    (unsigned long long)r.collisions, r.avgSpeed,
                    r.accelActivityFactor);
    }

    // Timing goes to stderr + JSON so stdout stays byte-identical
    // across --jobs values (the determinism contract is checkable by
    // diffing the table).
    const core::BatchStats &bs = runner.stats();
    std::fprintf(stderr,
                 "[batch] %zu missions in %.2f s wall (%.2f s serial "
                 "equivalent, %.2fx speedup at %d jobs)\n",
                 bs.missions, bs.wallSeconds, bs.serialSeconds,
                 bs.speedup(), cli.jobs);

    core::BatchReport report("design_space_exploration");
    report.add(world + "_soc_x_zoo", bs);
    report.write(cli.jsonPath);

    std::printf("\nNote how designs with similar isolated latency can "
                "have very different mission outcomes — the\n"
                "closed-loop, system-level interaction RoSE exists to "
                "expose.\n");
    return 0;
}
