/**
 * @file
 * Design-space exploration: the paper's headline use case — sweep SoC
 * configurations against controller DNNs in a closed-loop mission and
 * tabulate mission-level outcomes next to the isolated inference
 * latencies, showing why isolated benchmarking is not enough
 * (Sections 5.1/5.4).
 *
 * Run: ./build/examples/design_space_exploration [world] [velocity]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiment.hh"
#include "dnn/engine.hh"

int
main(int argc, char **argv)
{
    using namespace rose;

    std::string world = argc > 1 ? argv[1] : "s-shape";
    double velocity = argc > 2 ? std::atof(argv[2]) : 9.0;

    std::printf("RoSE design-space exploration: %s @ %.1f m/s\n\n",
                world.c_str(), velocity);
    std::printf("%-4s %-10s %-12s %-10s %-6s %-10s %-10s\n", "SoC",
                "DNN", "infer[ms]", "mission", "coll", "avgv[m/s]",
                "activity");

    for (const char *soc_name : {"A", "B"}) {
        dnn::ExecutionEngine engine(soc::configByName(soc_name));
        for (int depth : dnn::resnetZoo()) {
            double lat =
                engine.latencySeconds(dnn::makeResNet(depth));

            core::MissionSpec spec;
            spec.world = world;
            spec.socName = soc_name;
            spec.modelDepth = depth;
            spec.velocity = velocity;
            spec.maxSimSeconds = 60.0;

            core::MissionResult r = core::runMission(spec);
            std::printf("%-4s %-10s %-12.0f %-10s %-6llu %-10.2f "
                        "%-10.3f\n",
                        soc_name,
                        ("ResNet" + std::to_string(depth)).c_str(),
                        lat * 1e3,
                        core::missionTimeString(r).c_str(),
                        (unsigned long long)r.collisions, r.avgSpeed,
                        r.accelActivityFactor);
        }
    }

    std::printf("\nNote how designs with similar isolated latency can "
                "have very different mission outcomes — the\n"
                "closed-loop, system-level interaction RoSE exists to "
                "expose.\n");
    return 0;
}
