/**
 * @file
 * Dynamic-runtime demo (Section 5.3): the companion computer measures
 * the forward depth sensor, derives the Equation 3-5 compute deadline,
 * and swaps between a high-accuracy ResNet14 and a low-latency ResNet6
 * (with the argmax policy) at runtime. Prints the per-inference
 * decision log so the switching behavior is visible.
 *
 * Run: ./build/examples/dynamic_runtime
 */

#include <cstdio>

#include "core/cosim.hh"

int
main()
{
    using namespace rose;

    core::CosimConfig cfg;
    cfg.env.worldName = "s-shape";
    cfg.soc = soc::configA();
    cfg.app.mode = runtime::RuntimeMode::Dynamic;
    cfg.app.modelDepth = 14;
    cfg.app.smallModelDepth = 6;
    cfg.app.policy.forwardVelocity = 10.25;
    cfg.sync.cyclesPerSync = 10 * kMegaCycles;
    cfg.maxSimSeconds = 45.0;

    std::printf("RoSE dynamic runtime: %s @ %.2f m/s, ResNet14 <-> "
                "ResNet6 (deadline-driven)\n\n",
                cfg.env.worldName.c_str(),
                cfg.app.policy.forwardVelocity);

    core::CoSimulation sim(cfg);
    core::MissionResult r = sim.run();

    std::printf("%-8s %-8s %-10s %-12s %-8s\n", "t[s]", "model",
                "depth[m]", "deadline[ms]", "argmax");
    int shown = 0;
    int last_model = 0;
    for (const runtime::InferenceRecord &rec : r.inferenceLog) {
        // Print decision changes plus a sparse sample of steady rows.
        bool switch_point = rec.modelDepth != last_model;
        if (switch_point || shown % 12 == 0) {
            std::printf("%-8.2f ResNet%-2d %-10.1f %-12.0f %-8s%s\n",
                        double(rec.commandCycle) / cfg.soc.clockHz,
                        rec.modelDepth, rec.depthMeters,
                        rec.deadlineSeconds * 1e3,
                        rec.usedArgmax ? "yes" : "no",
                        switch_point ? "  <- switch" : "");
        }
        last_model = rec.modelDepth;
        ++shown;
    }

    uint64_t small = 0;
    for (const auto &rec : r.inferenceLog)
        small += rec.modelDepth == cfg.app.smallModelDepth;

    std::printf("\nmission %s in %.2f s, collisions %llu\n",
                r.completed ? "COMPLETED" : "TIMED OUT", r.missionTime,
                (unsigned long long)r.collisions);
    std::printf("inferences: %llu (%llu on the small model, %.0f%%)\n",
                (unsigned long long)r.inferences,
                (unsigned long long)small,
                r.inferences ? 100.0 * double(small) / double(r.inferences)
                             : 0.0);
    std::printf("accelerator activity factor: %.3f\n",
                r.accelActivityFactor);
    return r.completed ? 0 : 1;
}
