/**
 * @file
 * Mission runner CLI — the equivalent of the paper artifact's
 * deploy/hephaestus/runner.py: one binary that deploys a configurable
 * co-simulation from command-line flags and emits the artifact-style
 * CSV logs (UAV dynamics, sensing requests, control targets).
 *
 * Usage:
 *   mission_runner [--world tunnel|s-shape] [--vehicle quadrotor|rover]
 *                  [--soc A|B|C] [--model 6|11|14|18|34]
 *                  [--velocity V] [--yaw0 DEG] [--sync MCYCLES]
 *                  [--dynamic] [--tcp] [--seed N] [--max-seconds S]
 *                  [--csv PATH] [--quiet]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/experiment.hh"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--world tunnel|s-shape] [--vehicle quadrotor|rover]\n"
        "          [--soc A|B|C] [--model 6|11|14|18|34] [--velocity V]\n"
        "          [--yaw0 DEG] [--sync MCYCLES] [--dynamic] [--tcp]\n"
        "          [--seed N] [--max-seconds S] [--csv PATH]\n"
        "          [--trace PATH.json] [--stats] [--quiet]\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rose;

    core::MissionSpec spec;
    bool use_tcp = false;
    bool quiet = false;
    bool stats = false;
    std::string csv_path;
    std::string trace_path;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--world") {
            spec.world = need("--world");
        } else if (a == "--vehicle") {
            spec.vehicle = need("--vehicle");
        } else if (a == "--soc") {
            spec.socName = need("--soc");
        } else if (a == "--model") {
            spec.modelDepth = std::atoi(need("--model"));
        } else if (a == "--velocity") {
            spec.velocity = std::atof(need("--velocity"));
        } else if (a == "--yaw0") {
            spec.initialYawDeg = std::atof(need("--yaw0"));
        } else if (a == "--sync") {
            spec.syncGranularity =
                Cycles(std::atoll(need("--sync"))) * kMegaCycles;
        } else if (a == "--dynamic") {
            spec.mode = runtime::RuntimeMode::Dynamic;
        } else if (a == "--tcp") {
            use_tcp = true;
        } else if (a == "--seed") {
            spec.seed = uint64_t(std::atoll(need("--seed")));
        } else if (a == "--max-seconds") {
            spec.maxSimSeconds = std::atof(need("--max-seconds"));
        } else if (a == "--csv") {
            csv_path = need("--csv");
        } else if (a == "--trace") {
            trace_path = need("--trace");
        } else if (a == "--stats") {
            stats = true;
        } else if (a == "--quiet") {
            quiet = true;
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    core::CosimConfig cfg = spec.toConfig();
    if (use_tcp)
        cfg.transport = core::TransportKind::Tcp;

    if (!quiet) {
        std::printf("rose-runner: %s  transport=%s\n",
                    spec.label().c_str(), use_tcp ? "tcp" : "in-proc");
    }

    core::CoSimulation sim(cfg);
    soc::ActionTrace trace;
    if (!trace_path.empty())
        sim.socSim().setTrace(&trace);
    core::MissionResult r = sim.run();

    if (!csv_path.empty())
        core::writeTrajectoryCsv(csv_path, r);
    if (!trace_path.empty()) {
        trace.writeChromeTrace(trace_path, cfg.soc.clockHz);
        if (!quiet)
            std::printf("chrome trace (%zu events): %s\n",
                        trace.events().size(), trace_path.c_str());
    }

    if (!quiet) {
        std::printf("result: %s mission=%.2fs collisions=%llu "
                    "avg_speed=%.2f inferences=%llu "
                    "infer_latency=%.0fms activity=%.3f "
                    "sim_rate=%.0fMHz\n",
                    r.completed ? "completed" : "timeout",
                    r.missionTime, (unsigned long long)r.collisions,
                    r.avgSpeed, (unsigned long long)r.inferences,
                    r.avgInferenceLatency * 1e3, r.accelActivityFactor,
                    r.simulationRateMHz());
        if (!csv_path.empty())
            std::printf("trajectory csv: %s\n", csv_path.c_str());
    }
    if (stats)
        sim.printSummary(std::cout);
    return r.completed ? 0 : 1;
}
