/**
 * @file
 * Quickstart: run one full RoSÉ co-simulation — a UAV navigating the
 * tunnel environment with a ResNet14 controller on the BOOM+Gemmini
 * SoC (config A) — and print the mission metrics plus a trajectory
 * excerpt.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/cosim.hh"

int
main()
{
    using namespace rose;

    core::CosimConfig cfg;
    cfg.env.worldName = "tunnel";
    cfg.env.initialYawDeg = 10.0;
    cfg.soc = soc::configA();             // 3-wide BOOM + Gemmini
    cfg.app.modelDepth = 14;              // ResNet14 controller
    cfg.app.policy.forwardVelocity = 3.0; // m/s
    cfg.sync.cyclesPerSync = 10 * kMegaCycles;
    cfg.maxSimSeconds = 40.0;

    std::printf("RoSE quickstart: %s, SoC config %s (%s + %s), "
                "ResNet%d @ %.1f m/s\n",
                cfg.env.worldName.c_str(), cfg.soc.name.c_str(),
                cfg.soc.cpuName().c_str(),
                cfg.soc.acceleratorName().c_str(), cfg.app.modelDepth,
                cfg.app.policy.forwardVelocity);

    core::CoSimulation sim(cfg);
    core::MissionResult r = sim.run();

    std::printf("\nmission %s in %.2f s  (collisions: %llu)\n",
                r.completed ? "COMPLETED" : "TIMED OUT", r.missionTime,
                (unsigned long long)r.collisions);
    std::printf("avg speed %.2f m/s, distance %.1f m\n", r.avgSpeed,
                r.distanceTravelled);
    std::printf("inferences: %llu, avg request->command latency "
                "%.1f ms\n",
                (unsigned long long)r.inferences,
                r.avgInferenceLatency * 1e3);
    std::printf("accelerator activity factor: %.3f\n",
                r.accelActivityFactor);
    std::printf("simulation rate: %.1f simulated MHz (%.2f s wall)\n",
                r.simulationRateMHz(), r.wallSeconds);

    std::printf("\ntrajectory (every ~2 s):\n%8s %8s %8s %8s %8s\n",
                "t[s]", "x[m]", "y[m]", "z[m]", "v[m/s]");
    double next_t = 0.0;
    for (const core::TrajectorySample &s : r.trajectory) {
        if (s.time >= next_t) {
            std::printf("%8.2f %8.2f %8.2f %8.2f %8.2f\n", s.time,
                        s.position.x, s.position.y, s.position.z,
                        s.speed);
            next_t += 2.0;
        }
    }
    return r.completed ? 0 : 1;
}
