/**
 * @file
 * Robot-morphology demo: the same full-stack co-simulation — SoC,
 * bridge, synchronizer, DNN controller — driving an Ackermann ground
 * rover instead of the UAV (the paper artifact's "car vs drone"
 * option, Appendix A.8.3; morphology breadth is Section 6's roadmap).
 * Only the environment-side vehicle model changes; the companion
 * computer runs the identical software stack.
 *
 * Run: ./build/examples/rover_navigation [world] [velocity]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace rose;

    core::MissionSpec spec;
    spec.world = argc > 1 ? argv[1] : "s-shape";
    spec.vehicle = "rover";
    spec.socName = "A";
    spec.modelDepth = 14;
    spec.velocity = argc > 2 ? std::atof(argv[2]) : 6.0;
    spec.maxSimSeconds = 90.0;

    std::printf("RoSE rover navigation: %s @ %.1f m/s, ResNet14 on "
                "config A\n\n",
                spec.world.c_str(), spec.velocity);

    core::MissionResult r = core::runMission(spec);

    std::printf("mission %s in %.2f s (collisions: %llu)\n",
                r.completed ? "COMPLETED" : "TIMED OUT", r.missionTime,
                (unsigned long long)r.collisions);
    std::printf("avg speed %.2f m/s, %llu inferences at %.0f ms "
                "request->command\n",
                r.avgSpeed, (unsigned long long)r.inferences,
                r.avgInferenceLatency * 1e3);

    std::printf("\ntrajectory (every ~3 s):\n%8s %8s %8s %8s\n", "t[s]",
                "x[m]", "y[m]", "v[m/s]");
    double next_t = 0.0;
    for (const core::TrajectorySample &s : r.trajectory) {
        if (s.time >= next_t) {
            std::printf("%8.2f %8.2f %8.2f %8.2f\n", s.time,
                        s.position.x, s.position.y, s.speed);
            next_t += 3.0;
        }
    }
    return r.completed ? 0 : 1;
}
