/**
 * @file
 * Classical-control build-flow demo (Section 3.3): a bare-metal RV32IM
 * program, assembled with the bundled assembler, runs as the companion
 * computer. It drives the RoSE bridge's memory-mapped registers
 * directly — committing VelocityCmd packets and polling sensor
 * responses — while a Rocket-class timing model charges every
 * instruction and uncached MMIO access.
 *
 * This example wires the co-simulation out of individual library
 * pieces (environment, bridge, synchronizer, SoC engine) instead of
 * using the CoSimulation convenience top, showing the composition
 * seams.
 *
 * Run: ./build/examples/rv_baremetal_control
 */

#include <cstdio>

#include "bridge/rose_bridge.hh"
#include "bridge/transport.hh"
#include "env/envsim.hh"
#include "rv/assembler.hh"
#include "rv/core.hh"
#include "rv/timing.hh"
#include "soc/rv_workload.hh"
#include "soc/socsim.hh"
#include "sync/synchronizer.hh"

/// The target program: each iteration sends a VelocityCmd
/// (forward = 2.0 m/s), requests an IMU sample, parks on `fence`
/// until the response crosses a sync boundary, then drains RX.
static const char *kProgram = R"(
        lui a0, 0x40000        # bridge MMIO base
main_loop:
        # --- VelocityCmd{forward=2.0, lateral=0, yawRate=0} ---
        li a1, 0x16            # PacketType::VelocityCmd
        sw a1, 0x18(a0)        # TX_TYPE
        li a1, 24              # 3 x f64 payload
        sw a1, 0x1C(a0)        # TX_LEN
        sw x0, 0x20(a0)        # forward, low word
        lui a2, 0x40000        # f64 2.0 = 0x4000000000000000
        sw a2, 0x20(a0)        # forward, high word
        sw x0, 0x20(a0)        # lateral = 0.0
        sw x0, 0x20(a0)
        sw x0, 0x20(a0)        # yawRate = 0.0
        sw x0, 0x20(a0)
        li a1, 1
        sw a1, 0x24(a0)        # TX_COMMIT

        # --- ImuReq (empty payload) ---
        li a1, 0x10            # PacketType::ImuReq
        sw a1, 0x18(a0)
        sw x0, 0x1C(a0)
        li a1, 1
        sw a1, 0x24(a0)

        fence                  # park until the bridge RX fills

        # --- drain and count responses ---
        lw a3, 0x00(a0)        # RX_COUNT
drain:
        beqz a3, main_loop
        sw x0, 0x10(a0)        # RX_CONSUME
        li a4, 0x100
        lw a5, 0(a4)           # responses-seen counter in RAM
        addi a5, a5, 1
        sw a5, 0(a4)
        addi a3, a3, -1
        j drain
)";

int
main()
{
    using namespace rose;

    // --- Environment + synchronizer side ----------------------------
    env::EnvConfig ecfg;
    ecfg.worldName = "tunnel";
    ecfg.frameHz = 100.0;
    env::EnvSim env(ecfg);

    auto [sync_end, bridge_end] = bridge::makeInProcPair();
    bridge::RoseBridge rose_bridge(*bridge_end);

    sync::SyncConfig scfg;
    scfg.cyclesPerSync = 10 * kMegaCycles;
    sync::Synchronizer synchronizer(env, *sync_end, scfg);

    // --- Target side: assemble and load the program ------------------
    rv::Program program = rv::assemble(kProgram);
    std::printf("assembled %zu words, symbols:", program.words.size());
    for (const auto &[name, addr] : program.symbols)
        std::printf(" %s=0x%x", name.c_str(), addr);
    std::printf("\n");

    rv::Core core;
    core.loadProgram(program.words);
    soc::attachMmioDevice(core, rose_bridge);
    rv::RocketTiming timing;
    soc::RvWorkload workload(core, timing, "baremetal-control");
    soc::SocSim soc_sim(rose_bridge, workload, soc::configB());

    // --- Lockstep run -------------------------------------------------
    synchronizer.configure();
    rose_bridge.hostService();

    const int kPeriods = 1200; // 12 s at 10 ms per period
    for (int i = 0; i < kPeriods; ++i) {
        synchronizer.beginPeriod();
        soc_sim.runPeriod();
        synchronizer.endPeriod();
    }

    // --- Report --------------------------------------------------------
    flight::VehicleState k = env.kinematics();
    std::printf("\nafter %.1f s of simulated flight under RV32IM "
                "control:\n",
                env.simTime());
    std::printf("  position: x=%.2f m, y=%.2f m, z=%.2f m\n",
                k.position.x, k.position.y, k.position.z);
    std::printf("  forward speed: %.2f m/s (commanded 2.0)\n",
                k.velocity.x);
    std::printf("  collisions: %llu\n",
                (unsigned long long)env.collisionInfo().count);
    std::printf("  velocity commands decoded by synchronizer: %llu\n",
                (unsigned long long)
                    synchronizer.stats().velocityCommands);
    std::printf("  IMU responses counted by the RV program: %u\n",
                core.loadWord(0x100));
    std::printf("  retired instructions: %llu, modeled cycles: %llu "
                "(IPC %.2f)\n",
                (unsigned long long)timing.stats().insns,
                (unsigned long long)timing.cycles(), timing.ipc());
    std::printf("  MMIO accesses: %llu\n",
                (unsigned long long)timing.stats().mmioAccesses);

    bool ok = k.position.x > 10.0 &&
              env.collisionInfo().count == 0 &&
              core.loadWord(0x100) > 100;
    std::printf("\n%s\n", ok ? "baremetal control loop flies the "
                               "corridor -- OK"
                             : "unexpected outcome");
    return ok ? 0 : 1;
}
