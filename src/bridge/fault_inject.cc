#include "fault_inject.hh"

#include "util/logging.hh"
#include "util/serde.hh"

namespace rose::bridge {

namespace {

void
validate(const FaultConfig &cfg)
{
    auto in01 = [](double p) { return p >= 0.0 && p <= 1.0; };
    rose_assert(in01(cfg.dropProb) && in01(cfg.corruptProb) &&
                    in01(cfg.reorderProb) && in01(cfg.delayProb),
                "fault probabilities must be in [0, 1]");
    rose_assert(cfg.dropProb + cfg.corruptProb + cfg.reorderProb +
                        cfg.delayProb <=
                    1.0 + 1e-12,
                "fault probabilities must sum to at most 1");
    rose_assert(cfg.delayOpsMin <= cfg.delayOpsMax,
                "delayOpsMin must not exceed delayOpsMax");
}

} // namespace

FaultInjectTransport::FaultInjectTransport(
    std::unique_ptr<Transport> inner, const FaultConfig &cfg)
    : owned_(std::move(inner)), inner_(owned_.get()), cfg_(cfg),
      rng_(cfg.seed)
{
    rose_assert(inner_ != nullptr, "null inner transport");
    validate(cfg_);
}

FaultInjectTransport::FaultInjectTransport(Transport &inner,
                                           const FaultConfig &cfg)
    : inner_(&inner), cfg_(cfg), rng_(cfg.seed)
{
    validate(cfg_);
}

FaultInjectTransport::~FaultInjectTransport()
{
    // Best-effort flush of held packets so teardown does not silently
    // swallow traffic the fault model only meant to postpone.
    try {
        for (Held &h : delayedTx_)
            inner_->send(h.pkt);
        if (reorderTx_)
            inner_->send(*reorderTx_);
    } catch (const TransportError &) {
        // Peer already gone; nothing left to preserve.
    }
}

FaultInjectTransport::Verdict
FaultInjectTransport::classify(const Packet &p)
{
    if (cfg_.protectSyncPackets && !isDataPacket(p.type))
        return Verdict::Deliver;
    double u = rng_.uniform();
    if (u < cfg_.dropProb)
        return Verdict::Drop;
    u -= cfg_.dropProb;
    if (u < cfg_.corruptProb)
        return Verdict::Corrupt;
    u -= cfg_.corruptProb;
    if (u < cfg_.reorderProb)
        return Verdict::Reorder;
    u -= cfg_.reorderProb;
    if (u < cfg_.delayProb)
        return Verdict::Delay;
    return Verdict::Deliver;
}

void
FaultInjectTransport::corrupt(Packet &p)
{
    if (p.payload.empty())
        return;
    size_t byte = size_t(rng_.uniformInt(p.payload.size()));
    p.payload[byte] ^= uint8_t(1u << rng_.uniformInt(8));
}

uint64_t
FaultInjectTransport::delayDraw()
{
    uint64_t span = cfg_.delayOpsMax - cfg_.delayOpsMin + 1;
    return cfg_.delayOpsMin + rng_.uniformInt(span);
}

void
FaultInjectTransport::flushDelayedTx()
{
    while (!delayedTx_.empty() && delayedTx_.front().dueOp <= op_) {
        inner_->send(delayedTx_.front().pkt);
        ++stats_.sent;
        delayedTx_.pop_front();
    }
}

void
FaultInjectTransport::send(const Packet &p)
{
    ++op_;
    flushDelayedTx();

    bool forwarded = false;
    switch (classify(p)) {
      case Verdict::Drop:
        ++stats_.dropped;
        break;
      case Verdict::Corrupt: {
        Packet c = p;
        corrupt(c);
        ++stats_.corrupted;
        inner_->send(c);
        ++stats_.sent;
        forwarded = true;
        break;
      }
      case Verdict::Delay:
        ++stats_.delayed;
        delayedTx_.push_back({p, op_ + delayDraw()});
        break;
      case Verdict::Reorder:
        if (!reorderTx_) {
            ++stats_.reordered;
            reorderTx_ = p;
            return; // held until the next packet passes it
        }
        [[fallthrough]]; // slot busy: deliver normally
      case Verdict::Deliver:
        inner_->send(p);
        ++stats_.sent;
        forwarded = true;
        break;
    }

    // A held reorder packet goes out right after the packet that
    // overtook it: an adjacent swap on the wire.
    if (forwarded && reorderTx_) {
        inner_->send(*reorderTx_);
        ++stats_.sent;
        reorderTx_.reset();
    }
}

bool
FaultInjectTransport::recv(Packet &out)
{
    ++op_;
    flushDelayedTx();

    if (!delayedRx_.empty() && delayedRx_.front().dueOp <= op_) {
        out = std::move(delayedRx_.front().pkt);
        delayedRx_.pop_front();
        ++stats_.received;
        return true;
    }

    Packet p;
    while (inner_->recv(p)) {
        switch (classify(p)) {
          case Verdict::Drop:
            ++stats_.dropped;
            continue;
          case Verdict::Corrupt:
            corrupt(p);
            ++stats_.corrupted;
            break;
          case Verdict::Delay:
            ++stats_.delayed;
            delayedRx_.push_back({std::move(p), op_ + delayDraw()});
            continue;
          case Verdict::Reorder:
            if (!reorderRx_) {
                ++stats_.reordered;
                reorderRx_ = std::move(p);
                continue; // released after the next delivered packet
            }
            break; // slot busy: deliver normally
          case Verdict::Deliver:
            break;
        }
        out = std::move(p);
        if (reorderRx_) {
            // Park the overtaken packet at the front of the delay queue
            // so the very next recv() returns it (adjacent swap).
            delayedRx_.push_front({std::move(*reorderRx_), op_});
            reorderRx_.reset();
        }
        ++stats_.received;
        return true;
    }

    // Inner stream exhausted: release anything still held so a drained
    // lockstep boundary observes every surviving packet.
    if (reorderRx_) {
        out = std::move(*reorderRx_);
        reorderRx_.reset();
        ++stats_.received;
        return true;
    }
    if (!delayedRx_.empty() && delayedRx_.front().dueOp <= op_) {
        out = std::move(delayedRx_.front().pkt);
        delayedRx_.pop_front();
        ++stats_.received;
        return true;
    }
    return false;
}

void
FaultInjectTransport::saveState(StateWriter &w) const
{
    w.u64(stats_.sent);
    w.u64(stats_.received);
    w.u64(stats_.dropped);
    w.u64(stats_.corrupted);
    w.u64(stats_.reordered);
    w.u64(stats_.delayed);
    rng_.saveState(w);
    w.u64(op_);
    auto saveHeld = [&w](const std::deque<Held> &q) {
        w.u32(uint32_t(q.size()));
        for (const Held &h : q) {
            savePacket(w, h.pkt);
            w.u64(h.dueOp);
        }
    };
    saveHeld(delayedTx_);
    saveHeld(delayedRx_);
    auto saveOpt = [&w](const std::optional<Packet> &o) {
        w.boolean(o.has_value());
        if (o)
            savePacket(w, *o);
    };
    saveOpt(reorderTx_);
    saveOpt(reorderRx_);
}

void
FaultInjectTransport::restoreState(StateReader &r)
{
    stats_.sent = r.u64();
    stats_.received = r.u64();
    stats_.dropped = r.u64();
    stats_.corrupted = r.u64();
    stats_.reordered = r.u64();
    stats_.delayed = r.u64();
    rng_.restoreState(r);
    op_ = r.u64();
    auto loadHeld = [&r](std::deque<Held> &q) {
        q.clear();
        uint32_t n = r.u32();
        for (uint32_t i = 0; i < n; ++i) {
            Held h;
            h.pkt = loadPacket(r);
            h.dueOp = r.u64();
            q.push_back(std::move(h));
        }
    };
    loadHeld(delayedTx_);
    loadHeld(delayedRx_);
    auto loadOpt = [&r](std::optional<Packet> &o) {
        o.reset();
        if (r.boolean())
            o = loadPacket(r);
    };
    loadOpt(reorderTx_);
    loadOpt(reorderRx_);
}

} // namespace rose::bridge
