/**
 * @file
 * Fault-injecting transport decorator.
 *
 * The paper's bridge abstracts a physical IO interface (UART, Ethernet,
 * a camera link — Section 3.2); real links drop, corrupt, reorder, and
 * delay traffic. FaultInjectTransport wraps any Transport and injects
 * those faults with configurable, seeded probabilities, so closed-loop
 * experiments can measure how mission behavior degrades under packet
 * loss — a robustness ablation the co-simulation infrastructure enables
 * pre-silicon.
 *
 * Faults are applied at packet granularity in both directions:
 *
 *  - drop: the packet vanishes.
 *  - corrupt: a random payload bit flips (framing stays intact; the
 *    fail-stop payload decoders are the next line of defense).
 *  - reorder: the packet is held and released after the next packet in
 *    the same direction (an adjacent swap).
 *  - delay: the packet is held for a few transport operations before
 *    delivery, modeling link-level retransmission latency.
 *
 * Synchronization packets (SyncGrant/SyncDone/CfgStepSize) are
 * protected by default: they model the simulation control channel, not
 * the lossy IO interface, and dropping them would stall the lockstep —
 * which the sync deadline would then report as a TransportError.
 */

#ifndef ROSE_BRIDGE_FAULT_INJECT_HH
#define ROSE_BRIDGE_FAULT_INJECT_HH

#include <deque>
#include <memory>
#include <optional>

#include "bridge/transport.hh"
#include "util/rng.hh"

namespace rose::bridge {

/** Fault-injection knobs. Probabilities are per packet and mutually
 *  exclusive (their sum must not exceed 1). */
struct FaultConfig
{
    /** Convenience gate for co-simulation wiring. */
    bool enabled = false;

    double dropProb = 0.0;
    double corruptProb = 0.0;
    double reorderProb = 0.0;
    double delayProb = 0.0;

    /** Delay duration in transport operations (sends/recvs observed by
     *  the decorator), drawn uniformly from [min, max]. */
    uint64_t delayOpsMin = 2;
    uint64_t delayOpsMax = 8;

    /** Keep the simulation control channel reliable (see file docs). */
    bool protectSyncPackets = true;

    uint64_t seed = 0xfa017;
};

/** What the decorator did to the traffic. */
struct FaultStats
{
    uint64_t sent = 0;      ///< packets forwarded to the inner send
    uint64_t received = 0;  ///< packets delivered out of recv
    uint64_t dropped = 0;
    uint64_t corrupted = 0;
    uint64_t reordered = 0;
    uint64_t delayed = 0;
};

/** The decorator. */
class FaultInjectTransport : public Transport
{
  public:
    /** Wrap an owned inner transport. */
    FaultInjectTransport(std::unique_ptr<Transport> inner,
                         const FaultConfig &cfg);

    /** Wrap a borrowed inner transport (caller keeps ownership). */
    FaultInjectTransport(Transport &inner, const FaultConfig &cfg);

    ~FaultInjectTransport() override;

    void send(const Packet &p) override;
    bool recv(Packet &out) override;

    TransportState state() const override { return inner_->state(); }
    bool supportsWait() const override { return inner_->supportsWait(); }
    bool waitReadable(int timeout_ms) override
    {
        return inner_->waitReadable(timeout_ms);
    }
    uint64_t bytesSent() const override { return inner_->bytesSent(); }
    uint64_t bytesReceived() const override
    {
        return inner_->bytesReceived();
    }

    const FaultStats &stats() const { return stats_; }
    Transport &inner() { return *inner_; }

    /** Checkpointable iff the wrapped transport is. */
    bool checkpointable() const override
    {
        return inner_->checkpointable();
    }

    /**
     * Serialize decorator state only (stats, fault RNG, operation
     * clock, held/reordered packets). The inner transport saves its
     * own state separately — the co-simulation serializes inner and
     * decorator as distinct checkpoint sections so the fault layer
     * can be disabled on a retry without invalidating the snapshot.
     */
    void saveState(StateWriter &w) const override;
    void restoreState(StateReader &r) override;

    /**
     * Re-seed the fault RNG. A restored checkpoint replays the exact
     * RNG stream that produced the fatal fault; the supervisor's
     * RerollSeed retry policy calls this after restore so the retry
     * explores a different fault schedule instead of re-dying
     * deterministically.
     */
    void reseed(uint64_t seed) { rng_.reseed(seed); }

  private:
    enum class Verdict
    {
        Deliver,
        Drop,
        Corrupt,
        Reorder,
        Delay,
    };

    Verdict classify(const Packet &p);
    void corrupt(Packet &p);
    uint64_t delayDraw();
    void flushDelayedTx();

    struct Held
    {
        Packet pkt;
        uint64_t dueOp;
    };

    std::unique_ptr<Transport> owned_;
    Transport *inner_;
    FaultConfig cfg_;
    FaultStats stats_;
    Rng rng_;

    /** Operation clock: each send()/recv() call advances it; delayed
     *  packets are released when it passes their due op. */
    uint64_t op_ = 0;

    std::deque<Held> delayedTx_;
    std::deque<Held> delayedRx_;
    std::optional<Packet> reorderTx_;
    std::optional<Packet> reorderRx_;
};

} // namespace rose::bridge

#endif // ROSE_BRIDGE_FAULT_INJECT_HH
