/**
 * @file
 * Finite-capacity packet FIFO modeling the RoSÉ bridge's hardware
 * queues ("RoSÉ BRIDGE contains hardware queues to stage packets being
 * transmitted over the modeled IO interface", Figure 5). Capacity is
 * accounted in bytes of staged packet data, modeling the finite SRAM a
 * real bridge would provision; push fails (backpressure) when a packet
 * does not fit.
 */

#ifndef ROSE_BRIDGE_FIFO_HH
#define ROSE_BRIDGE_FIFO_HH

#include <cstddef>
#include <deque>

#include "bridge/packet.hh"

namespace rose::bridge {

/** Byte-budgeted packet FIFO. */
class PacketFifo
{
  public:
    /**
     * @param capacity_bytes total staging capacity; a packet occupies
     *        its wire size (header + payload).
     */
    explicit PacketFifo(size_t capacity_bytes)
        : capacity_(capacity_bytes) {}

    /** Try to stage a packet; returns false when full (backpressure). */
    bool
    push(const Packet &p)
    {
        if (used_ + p.wireSize() > capacity_)
            return false;
        used_ += p.wireSize();
        q_.push_back(p);
        return true;
    }

    /** Pop the oldest packet; returns false when empty. */
    bool
    pop(Packet &out)
    {
        if (q_.empty())
            return false;
        out = std::move(q_.front());
        q_.pop_front();
        used_ -= out.wireSize();
        return true;
    }

    /** Peek the oldest packet without consuming it. */
    const Packet *
    front() const
    {
        return q_.empty() ? nullptr : &q_.front();
    }

    bool empty() const { return q_.empty(); }
    size_t packetCount() const { return q_.size(); }
    size_t usedBytes() const { return used_; }
    size_t capacityBytes() const { return capacity_; }
    size_t freeBytes() const { return capacity_ - used_; }

    /** Staged packets, oldest first (checkpoint serialization). */
    const std::deque<Packet> &packets() const { return q_; }

    /** Drop all staged packets (checkpoint restore repopulates). */
    void
    clear()
    {
        q_.clear();
        used_ = 0;
    }

  private:
    size_t capacity_;
    size_t used_ = 0;
    std::deque<Packet> q_;
};

} // namespace rose::bridge

#endif // ROSE_BRIDGE_FIFO_HH
