#include "packet.hh"

#include <cstring>

#include "util/logging.hh"
#include "util/serde.hh"

namespace rose::bridge {

bool
isDataPacket(PacketType t)
{
    return static_cast<uint8_t>(t) >= 0x10;
}

bool
isValidPacketType(uint8_t raw)
{
    switch (static_cast<PacketType>(raw)) {
      case PacketType::SyncGrant:
      case PacketType::SyncDone:
      case PacketType::CfgStepSize:
      case PacketType::ImuReq:
      case PacketType::ImuResp:
      case PacketType::ImageReq:
      case PacketType::ImageResp:
      case PacketType::DepthReq:
      case PacketType::DepthResp:
      case PacketType::VelocityCmd:
        return true;
    }
    return false;
}

std::string
packetTypeName(PacketType t)
{
    switch (t) {
      case PacketType::SyncGrant: return "SyncGrant";
      case PacketType::SyncDone: return "SyncDone";
      case PacketType::CfgStepSize: return "CfgStepSize";
      case PacketType::ImuReq: return "ImuReq";
      case PacketType::ImuResp: return "ImuResp";
      case PacketType::ImageReq: return "ImageReq";
      case PacketType::ImageResp: return "ImageResp";
      case PacketType::DepthReq: return "DepthReq";
      case PacketType::DepthResp: return "DepthResp";
      case PacketType::VelocityCmd: return "VelocityCmd";
    }
    return "Unknown";
}

// ------------------------------------------------------------- ByteWriter

void
ByteWriter::u16(uint16_t v)
{
    u8(v & 0xff);
    u8(v >> 8);
}

void
ByteWriter::u32(uint32_t v)
{
    u16(v & 0xffff);
    u16(v >> 16);
}

void
ByteWriter::u64(uint64_t v)
{
    u32(v & 0xffffffffu);
    u32(v >> 32);
}

void
ByteWriter::f64(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
ByteWriter::bytes(const uint8_t *data, size_t n)
{
    out_.insert(out_.end(), data, data + n);
}

// ------------------------------------------------------------- ByteReader

uint8_t
ByteReader::u8()
{
    if (pos_ >= in_.size())
        throw PayloadError("packet payload underrun");
    return in_[pos_++];
}

uint16_t
ByteReader::u16()
{
    uint16_t lo = u8();
    return lo | (uint16_t(u8()) << 8);
}

uint32_t
ByteReader::u32()
{
    uint32_t lo = u16();
    return lo | (uint32_t(u16()) << 16);
}

uint64_t
ByteReader::u64()
{
    uint64_t lo = u32();
    return lo | (uint64_t(u32()) << 32);
}

double
ByteReader::f64()
{
    uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

void
ByteReader::bytes(uint8_t *data, size_t n)
{
    if (pos_ + n > in_.size())
        throw PayloadError("packet payload underrun");
    std::memcpy(data, in_.data() + pos_, n);
    pos_ += n;
}

// ----------------------------------------------------------------- codecs

namespace {

Packet
makeU64Packet(PacketType t, uint64_t v)
{
    Packet p;
    p.type = t;
    ByteWriter w(p.payload);
    w.u64(v);
    return p;
}

uint64_t
takeU64(const Packet &p, PacketType expect)
{
    rose_assert(p.type == expect, "packet type mismatch: got ",
                packetTypeName(p.type));
    ByteReader r(p.payload);
    return r.u64();
}

} // namespace

Packet
encodeSyncGrant(uint64_t cycles)
{
    return makeU64Packet(PacketType::SyncGrant, cycles);
}

uint64_t
decodeSyncGrant(const Packet &p)
{
    return takeU64(p, PacketType::SyncGrant);
}

Packet
encodeSyncDone(uint64_t cycles_run)
{
    return makeU64Packet(PacketType::SyncDone, cycles_run);
}

uint64_t
decodeSyncDone(const Packet &p)
{
    return takeU64(p, PacketType::SyncDone);
}

Packet
encodeCfgStepSize(uint64_t cycles_per_sync)
{
    return makeU64Packet(PacketType::CfgStepSize, cycles_per_sync);
}

uint64_t
decodeCfgStepSize(const Packet &p)
{
    return takeU64(p, PacketType::CfgStepSize);
}

Packet
encodeImuReq()
{
    return Packet{PacketType::ImuReq, {}};
}

Packet
encodeImuResp(const env::ImuSample &s)
{
    Packet p;
    p.type = PacketType::ImuResp;
    ByteWriter w(p.payload);
    w.f64(s.accel.x);
    w.f64(s.accel.y);
    w.f64(s.accel.z);
    w.f64(s.gyro.x);
    w.f64(s.gyro.y);
    w.f64(s.gyro.z);
    w.f64(s.timestamp);
    return p;
}

env::ImuSample
decodeImuResp(const Packet &p)
{
    rose_assert(p.type == PacketType::ImuResp, "expected ImuResp");
    ByteReader r(p.payload);
    env::ImuSample s;
    s.accel.x = r.f64();
    s.accel.y = r.f64();
    s.accel.z = r.f64();
    s.gyro.x = r.f64();
    s.gyro.y = r.f64();
    s.gyro.z = r.f64();
    s.timestamp = r.f64();
    return s;
}

Packet
encodeImageReq()
{
    return Packet{PacketType::ImageReq, {}};
}

Packet
encodeImageResp(const env::Image &img)
{
    Packet p;
    p.type = PacketType::ImageResp;
    ByteWriter w(p.payload);
    w.u16(static_cast<uint16_t>(img.width));
    w.u16(static_cast<uint16_t>(img.height));
    for (float v : img.pixels) {
        double c = clampd(double(v), 0.0, 1.0);
        w.u8(static_cast<uint8_t>(c * 255.0 + 0.5));
    }
    return p;
}

void
decodeImageRespInto(const Packet &p, env::Image &img)
{
    rose_assert(p.type == PacketType::ImageResp, "expected ImageResp");
    ByteReader r(p.payload);
    int w = r.u16();
    int h = r.u16();
    // Dimensions must agree with the payload exactly: corrupted
    // dimension bytes would otherwise request an allocation of up to
    // 64K x 64K pixels or walk off the end of the payload.
    if (size_t(w) * size_t(h) != r.remaining())
        throw PayloadError(
            "image dimensions disagree with payload size (" +
            std::to_string(w) + "x" + std::to_string(h) + " vs " +
            std::to_string(r.remaining()) + " pixel bytes)");
    img.width = w;
    img.height = h;
    img.pixels.resize(size_t(w) * size_t(h));
    for (float &v : img.pixels)
        v = r.u8() / 255.0f;
}

env::Image
decodeImageResp(const Packet &p)
{
    env::Image img;
    decodeImageRespInto(p, img);
    return img;
}

Packet
encodeDepthReq()
{
    return Packet{PacketType::DepthReq, {}};
}

Packet
encodeDepthResp(double depth_m)
{
    Packet p;
    p.type = PacketType::DepthResp;
    ByteWriter w(p.payload);
    w.f64(depth_m);
    return p;
}

double
decodeDepthResp(const Packet &p)
{
    rose_assert(p.type == PacketType::DepthResp, "expected DepthResp");
    ByteReader r(p.payload);
    return r.f64();
}

Packet
encodeVelocityCmd(const VelocityCmdPayload &v)
{
    Packet p;
    p.type = PacketType::VelocityCmd;
    ByteWriter w(p.payload);
    w.f64(v.forward);
    w.f64(v.lateral);
    w.f64(v.yawRate);
    return p;
}

VelocityCmdPayload
decodeVelocityCmd(const Packet &p)
{
    rose_assert(p.type == PacketType::VelocityCmd, "expected VelocityCmd");
    ByteReader r(p.payload);
    VelocityCmdPayload v;
    v.forward = r.f64();
    v.lateral = r.f64();
    v.yawRate = r.f64();
    return v;
}

// ----------------------------------------------------------- wire framing

void
serializePacket(const Packet &p, std::vector<uint8_t> &out)
{
    ByteWriter w(out);
    w.u8(static_cast<uint8_t>(p.type));
    w.u32(static_cast<uint32_t>(p.payload.size()));
    if (!p.payload.empty())
        w.bytes(p.payload.data(), p.payload.size());
}

void
savePacket(StateWriter &w, const Packet &p)
{
    w.u8(uint8_t(p.type));
    w.u32(uint32_t(p.payload.size()));
    if (!p.payload.empty())
        w.bytes(p.payload.data(), p.payload.size());
}

Packet
loadPacket(StateReader &r)
{
    Packet p;
    p.type = PacketType(r.u8());
    uint32_t n = r.u32();
    p.payload.resize(n);
    if (n > 0)
        r.bytes(p.payload.data(), n);
    return p;
}

FrameStatus
tryDecodeFrame(const uint8_t *data, size_t size, size_t &consumed,
               Packet &out, std::string *error)
{
    consumed = 0;
    if (size < Packet::kHeaderBytes)
        return FrameStatus::NeedMore;

    // Validate the full header before touching the payload: a corrupt
    // type or length must never drive an allocation or a wait.
    if (!isValidPacketType(data[0])) {
        if (error) {
            *error = detail::concat("unknown packet type byte 0x",
                                    std::hex, unsigned(data[0]));
        }
        return FrameStatus::Malformed;
    }
    uint32_t len = uint32_t(data[1]) | (uint32_t(data[2]) << 8) |
                   (uint32_t(data[3]) << 16) | (uint32_t(data[4]) << 24);
    if (len > kMaxPayloadBytes) {
        if (error) {
            *error = detail::concat(
                "frame length ", len, " exceeds kMaxPayloadBytes (",
                kMaxPayloadBytes, ") for ",
                packetTypeName(static_cast<PacketType>(data[0])));
        }
        return FrameStatus::Malformed;
    }
    if (size < Packet::kHeaderBytes + len)
        return FrameStatus::NeedMore;

    out.type = static_cast<PacketType>(data[0]);
    out.payload.assign(data + Packet::kHeaderBytes,
                       data + Packet::kHeaderBytes + len);
    consumed = Packet::kHeaderBytes + len;
    return FrameStatus::Ok;
}

// ------------------------------------------------------------ FrameBuffer

void
FrameBuffer::append(const uint8_t *data, size_t n)
{
    buf_.insert(buf_.end(), data, data + n);
}

FrameStatus
FrameBuffer::next(Packet &out, std::string *error)
{
    if (poisoned_) {
        if (error)
            *error = poisonError_;
        return FrameStatus::Malformed;
    }
    size_t consumed = 0;
    std::string err;
    FrameStatus s =
        tryDecodeFrame(buf_.data() + pos_, buf_.size() - pos_, consumed,
                       out, &err);
    switch (s) {
      case FrameStatus::Ok:
        pos_ += consumed;
        // Amortized compaction: drop the consumed prefix only once it
        // dominates the buffer, keeping the drain linear overall.
        if (pos_ >= 4096 && pos_ * 2 >= buf_.size()) {
            buf_.erase(buf_.begin(), buf_.begin() + pos_);
            pos_ = 0;
        }
        break;
      case FrameStatus::NeedMore:
        break;
      case FrameStatus::Malformed:
        poisoned_ = true;
        poisonError_ = err;
        if (error)
            *error = err;
        break;
    }
    return s;
}

void
FrameBuffer::clear()
{
    buf_.clear();
    pos_ = 0;
    poisoned_ = false;
    poisonError_.clear();
}

bool
deserializePacket(std::vector<uint8_t> &buf, Packet &out)
{
    size_t consumed = 0;
    std::string err;
    switch (tryDecodeFrame(buf.data(), buf.size(), consumed, out, &err)) {
      case FrameStatus::Ok:
        buf.erase(buf.begin(), buf.begin() + consumed);
        return true;
      case FrameStatus::NeedMore:
        return false;
      case FrameStatus::Malformed:
        rose_warn("dropping unframeable byte stream: ", err);
        buf.clear();
        return false;
    }
    return false;
}

} // namespace rose::bridge
