/**
 * @file
 * The RoSÉ packet protocol (Section 3.4.1).
 *
 * "Packets consist of a header, containing the packet type and number of
 * bytes, as well as a payload containing the serialized contents of the
 * message." Two families exist:
 *
 *  - Synchronization packets: communicate simulation state (cycle grants,
 *    completion, step-size configuration) with the RoSÉ bridge but are
 *    never visible to the modeled SoC.
 *  - Data packets: sensor requests/responses and actuation commands; the
 *    only packets visible to the simulated SoC, surfaced through the
 *    bridge's memory-mapped queues.
 *
 * All multi-byte fields are serialized little-endian.
 */

#ifndef ROSE_BRIDGE_PACKET_HH
#define ROSE_BRIDGE_PACKET_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "env/sensors.hh"
#include "util/geometry.hh"

namespace rose {
class StateWriter;
class StateReader;
} // namespace rose

namespace rose::bridge {

/**
 * Thrown when a structurally valid frame carries a semantically
 * malformed payload (truncated fields, inconsistent image dimensions).
 * Such packets can reach the decoders through injected payload
 * corruption even when the wire framing survives; throwing — instead
 * of aborting — lets the mission supervisor treat a poisoned payload
 * like any other recoverable transport fault.
 */
class PayloadError : public std::runtime_error
{
  public:
    explicit PayloadError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Wire identifiers for every packet kind. */
enum class PacketType : uint8_t
{
    // --- Synchronization packets (bridge-level only) ---
    SyncGrant = 0x01,   ///< host -> bridge: advance N target cycles
    SyncDone = 0x02,    ///< bridge -> host: granted cycles consumed
    CfgStepSize = 0x03, ///< host -> bridge: cycles per sync period

    // --- Data packets (visible to the SoC) ---
    ImuReq = 0x10,
    ImuResp = 0x11,
    ImageReq = 0x12,
    ImageResp = 0x13,
    DepthReq = 0x14,
    DepthResp = 0x15,
    VelocityCmd = 0x16,
};

/** True for the packet kinds the modeled SoC may observe. */
bool isDataPacket(PacketType t);

/** True when the raw wire byte names a known PacketType. */
bool isValidPacketType(uint8_t raw);

/** Human-readable packet-type name for logs. */
std::string packetTypeName(PacketType t);

/**
 * Upper bound on a frame's payload length. The largest legitimate
 * payload is a quantized camera frame (w*h bytes + 4 bytes of
 * dimensions); 256 KiB covers any camera the environment can configure
 * with a wide margin. Frames claiming more are malformed — the bound is
 * what keeps a corrupt length field from triggering an unbounded
 * allocation or an endless NeedMore wait.
 */
constexpr size_t kMaxPayloadBytes = 256 * 1024;

/** Serialized packet: fixed header plus raw payload bytes. */
struct Packet
{
    PacketType type = PacketType::SyncGrant;
    std::vector<uint8_t> payload;

    /** Header bytes on the wire: 1 type byte + 4 length bytes. */
    static constexpr size_t kHeaderBytes = 5;

    size_t wireSize() const { return kHeaderBytes + payload.size(); }
};

// --------------------------------------------------------------------
// Byte-level serialization helpers.

/** Little-endian byte appender. */
class ByteWriter
{
  public:
    explicit ByteWriter(std::vector<uint8_t> &out) : out_(out) {}

    void u8(uint8_t v) { out_.push_back(v); }
    void u16(uint16_t v);
    void u32(uint32_t v);
    void u64(uint64_t v);
    void f64(double v);
    void bytes(const uint8_t *data, size_t n);

  private:
    std::vector<uint8_t> &out_;
};

/** Little-endian byte consumer; throws PayloadError on underrun. */
class ByteReader
{
  public:
    explicit ByteReader(const std::vector<uint8_t> &in) : in_(in) {}

    uint8_t u8();
    uint16_t u16();
    uint32_t u32();
    uint64_t u64();
    double f64();
    void bytes(uint8_t *data, size_t n);

    size_t remaining() const { return in_.size() - pos_; }

  private:
    const std::vector<uint8_t> &in_;
    size_t pos_ = 0;
};

// --------------------------------------------------------------------
// Typed payload codecs.

/** Payload of a VelocityCmd data packet (companion -> flight ctrl). */
struct VelocityCmdPayload
{
    double forward = 0.0;
    double lateral = 0.0;
    double yawRate = 0.0;
};

/** Encode/decode helpers; encode produces a full Packet. */
Packet encodeSyncGrant(uint64_t cycles);
uint64_t decodeSyncGrant(const Packet &p);

Packet encodeSyncDone(uint64_t cycles_run);
uint64_t decodeSyncDone(const Packet &p);

Packet encodeCfgStepSize(uint64_t cycles_per_sync);
uint64_t decodeCfgStepSize(const Packet &p);

Packet encodeImuReq();
Packet encodeImuResp(const env::ImuSample &s);
env::ImuSample decodeImuResp(const Packet &p);

Packet encodeImageReq();
/** Image payload is quantized to 8 bits per pixel for transport. */
Packet encodeImageResp(const env::Image &img);
env::Image decodeImageResp(const Packet &p);
/** Decode into a caller-reused image (no steady-state allocation). */
void decodeImageRespInto(const Packet &p, env::Image &img);

Packet encodeDepthReq();
Packet encodeDepthResp(double depth_m);
double decodeDepthResp(const Packet &p);

Packet encodeVelocityCmd(const VelocityCmdPayload &v);
VelocityCmdPayload decodeVelocityCmd(const Packet &p);

/** Serialize a packet (header + payload) onto a byte stream. */
void serializePacket(const Packet &p, std::vector<uint8_t> &out);

/**
 * Checkpoint-state (de)serialization of a whole packet. Unlike the
 * wire form this is trusted input — it only ever round-trips through
 * StateWriter — but loadPacket still bounds-checks via StateReader.
 */
void savePacket(StateWriter &w, const Packet &p);
Packet loadPacket(StateReader &r);

/** Outcome of attempting to decode one frame from a byte stream. */
enum class FrameStatus : uint8_t
{
    Ok,        ///< a complete, valid frame was decoded
    NeedMore,  ///< the buffer holds only a prefix of a valid frame
    Malformed, ///< the header is invalid; the stream cannot be trusted
};

/**
 * Validated frame decoder: parse one packet from the front of a byte
 * range. The header is checked before any payload allocation: an
 * unknown type byte or a length above kMaxPayloadBytes yields
 * Malformed (with a diagnostic in @p error), never an allocation or a
 * wait for bytes that can never legitimately arrive.
 *
 * @param consumed set to the bytes consumed (only nonzero on Ok).
 */
FrameStatus tryDecodeFrame(const uint8_t *data, size_t size,
                           size_t &consumed, Packet &out,
                           std::string *error = nullptr);

/**
 * Receive-side frame accumulator: append raw stream bytes, drain
 * complete packets. Consumption uses a read cursor with amortized
 * compaction, so draining N packets costs O(bytes), not the O(n²) a
 * per-packet vector erase would.
 */
class FrameBuffer
{
  public:
    void append(const uint8_t *data, size_t n);

    /** Decode the next frame; on Malformed the buffer is poisoned and
     *  every later call returns Malformed (a byte stream cannot be
     *  resynchronized once framing is lost). */
    FrameStatus next(Packet &out, std::string *error = nullptr);

    /** Bytes buffered but not yet decoded. */
    size_t pendingBytes() const { return buf_.size() - pos_; }

    void clear();

  private:
    std::vector<uint8_t> buf_;
    size_t pos_ = 0;
    bool poisoned_ = false;
    std::string poisonError_;
};

/**
 * Try to deserialize one packet from the front of a byte buffer.
 *
 * Compatibility wrapper over tryDecodeFrame: consumed bytes are erased
 * on success; a malformed header drops the whole buffer with a warning
 * (an untyped byte stream cannot be resynchronized) and returns false.
 *
 * @return true when a complete, valid packet was available.
 */
bool deserializePacket(std::vector<uint8_t> &buf, Packet &out);

} // namespace rose::bridge

#endif // ROSE_BRIDGE_PACKET_HH
