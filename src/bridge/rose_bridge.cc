#include "rose_bridge.hh"

#include "util/logging.hh"
#include "util/serde.hh"

namespace rose::bridge {

RoseBridge::RoseBridge(Transport &transport, const BridgeConfig &cfg)
    : transport_(transport), rx_(cfg.rxFifoBytes), tx_(cfg.txFifoBytes)
{
}

uint32_t
RoseBridge::readRxDataWord()
{
    const Packet *head = rx_.front();
    if (!head) {
        rose_warn("RX_DATA read with empty RX queue");
        return 0;
    }
    uint32_t word = 0;
    for (int b = 0; b < 4; ++b) {
        size_t idx = rxReadPos_ + b;
        uint32_t byte =
            idx < head->payload.size() ? head->payload[idx] : 0;
        word |= byte << (8 * b);
    }
    rxReadPos_ += 4;
    return word;
}

uint32_t
RoseBridge::read(uint64_t offset)
{
    ++stats_.mmioReads;
    switch (offset) {
      case reg::kRxCount:
        return static_cast<uint32_t>(rx_.packetCount());
      case reg::kRxType: {
        const Packet *head = rx_.front();
        return head ? static_cast<uint32_t>(head->type) : 0;
      }
      case reg::kRxLen: {
        const Packet *head = rx_.front();
        return head ? static_cast<uint32_t>(head->payload.size()) : 0;
      }
      case reg::kRxData:
        return readRxDataWord();
      case reg::kTxFree:
        return static_cast<uint32_t>(tx_.freeBytes());
      case reg::kBudgetLo:
        return static_cast<uint32_t>(budget_ & 0xffffffffu);
      case reg::kBudgetHi:
        return static_cast<uint32_t>(budget_ >> 32);
      default:
        rose_warn("bridge: read of unmapped register 0x",
                  std::hex, offset);
        return 0;
    }
}

void
RoseBridge::write(uint64_t offset, uint32_t value)
{
    ++stats_.mmioWrites;
    switch (offset) {
      case reg::kRxConsume: {
        Packet dead;
        if (!rx_.pop(dead))
            rose_warn("RX_CONSUME with empty RX queue");
        rxReadPos_ = 0;
        break;
      }
      case reg::kTxType:
        txStaging_ = Packet{};
        txStaging_.type = static_cast<PacketType>(value & 0xff);
        txExpectedLen_ = 0;
        break;
      case reg::kTxLen:
        // Bound the claimed length before reserving: a buggy target
        // writing garbage here must not drive a multi-GiB allocation.
        if (value > kMaxPayloadBytes) {
            rose_warn("bridge: TX_LEN ", value,
                      " exceeds kMaxPayloadBytes; clamping");
            value = kMaxPayloadBytes;
        }
        txExpectedLen_ = value;
        txStaging_.payload.reserve(value);
        break;
      case reg::kTxData:
        for (int b = 0; b < 4; ++b) {
            if (txStaging_.payload.size() < txExpectedLen_)
                txStaging_.payload.push_back((value >> (8 * b)) & 0xff);
        }
        break;
      case reg::kTxCommit:
        if (txStaging_.payload.size() != txExpectedLen_) {
            rose_warn("TX_COMMIT with short payload: ",
                      txStaging_.payload.size(), " of ", txExpectedLen_);
        }
        if (tx_.push(txStaging_)) {
            ++stats_.txPackets;
        } else {
            ++stats_.txBackpressure;
        }
        break;
      default:
        rose_warn("bridge: write of unmapped register 0x",
                  std::hex, offset);
        break;
    }
}

void
RoseBridge::consumeCycles(Cycles n)
{
    rose_assert(n <= budget_, "consuming more cycles than granted");
    budget_ -= n;
}

void
RoseBridge::completeSync(Cycles cycles_run)
{
    ++stats_.syncDones;
    transport_.send(encodeSyncDone(cycles_run));
}

uint64_t
RoseBridge::hostService()
{
    uint64_t moved = 0;

    // Inbound: synchronizer -> bridge.
    Packet p;
    while (transport_.recv(p)) {
        ++moved;
        switch (p.type) {
          case PacketType::SyncGrant:
            budget_ += decodeSyncGrant(p);
            ++stats_.syncGrants;
            break;
          case PacketType::CfgStepSize:
            cyclesPerSync_ = decodeCfgStepSize(p);
            break;
          default:
            if (!isDataPacket(p.type)) {
                rose_warn("bridge: unexpected control packet ",
                          packetTypeName(p.type));
                break;
            }
            if (rx_.push(p)) {
                ++stats_.rxPackets;
            } else {
                // A real bridge would NAK at the protocol level; we
                // count the drop so experiments can detect sizing bugs.
                ++stats_.rxDropped;
                rose_warn("bridge: RX fifo full, dropping ",
                          packetTypeName(p.type));
            }
            break;
        }
    }

    // Outbound: SoC TX queue -> synchronizer.
    Packet out;
    while (tx_.pop(out)) {
        transport_.send(out);
        ++moved;
    }
    return moved;
}

namespace {

void
saveFifo(StateWriter &w, const PacketFifo &f)
{
    w.u32(uint32_t(f.packetCount()));
    for (const Packet &p : f.packets())
        savePacket(w, p);
}

void
loadFifo(StateReader &r, PacketFifo &f)
{
    f.clear();
    uint32_t n = r.u32();
    for (uint32_t i = 0; i < n; ++i) {
        // A checkpointed FIFO's contents always fit: capacity is
        // config, and the snapshot was taken under the same config.
        if (!f.push(loadPacket(r)))
            throw SerdeError("checkpointed FIFO contents exceed "
                             "configured capacity");
    }
}

} // namespace

void
RoseBridge::saveState(StateWriter &w) const
{
    saveFifo(w, rx_);
    saveFifo(w, tx_);
    w.u64(rxReadPos_);
    savePacket(w, txStaging_);
    w.u32(txExpectedLen_);
    w.u64(budget_);
    w.u64(cyclesPerSync_);
    w.u64(stats_.mmioReads);
    w.u64(stats_.mmioWrites);
    w.u64(stats_.rxPackets);
    w.u64(stats_.txPackets);
    w.u64(stats_.rxDropped);
    w.u64(stats_.txBackpressure);
    w.u64(stats_.syncGrants);
    w.u64(stats_.syncDones);
}

void
RoseBridge::restoreState(StateReader &r)
{
    loadFifo(r, rx_);
    loadFifo(r, tx_);
    rxReadPos_ = r.u64();
    txStaging_ = loadPacket(r);
    txExpectedLen_ = r.u32();
    budget_ = r.u64();
    cyclesPerSync_ = r.u64();
    stats_.mmioReads = r.u64();
    stats_.mmioWrites = r.u64();
    stats_.rxPackets = r.u64();
    stats_.txPackets = r.u64();
    stats_.rxDropped = r.u64();
    stats_.txBackpressure = r.u64();
    stats_.syncGrants = r.u64();
    stats_.syncDones = r.u64();
}

} // namespace rose::bridge
