/**
 * @file
 * The RoSÉ BRIDGE (Sections 3.2 and 3.4, Figures 4 and 5).
 *
 * The bridge is the boundary between the simulated SoC and the host:
 *
 *  - Target side: memory-mapped registers on the SoC system bus expose
 *    two hardware packet queues (RX: host -> SoC sensor data; TX:
 *    SoC -> host actuation/requests).
 *  - Host side: a transport carries serialized packets to/from the
 *    synchronizer; hostService() is the bridge-driver poll loop that
 *    moves packets between the transport and the hardware queues.
 *  - Control unit: throttles RTL-simulation progress. The synchronizer
 *    configures cycles-per-sync (CfgStepSize) and grants execution
 *    tokens (SyncGrant); the SoC simulator consumes the budget and
 *    reports completion (SyncDone).
 *
 * The modeled SoC is oblivious to simulation (Section 3.4.2): it only
 * ever observes data packets through the MMIO queues.
 */

#ifndef ROSE_BRIDGE_ROSE_BRIDGE_HH
#define ROSE_BRIDGE_ROSE_BRIDGE_HH

#include <cstdint>

#include "bridge/fifo.hh"
#include "bridge/packet.hh"
#include "bridge/transport.hh"
#include "soc/device.hh"
#include "util/units.hh"

namespace rose::bridge {

/** Bridge register map (byte offsets; all registers are 32-bit). */
namespace reg {
constexpr uint64_t kRxCount = 0x00;   ///< RO: packets waiting in RX
constexpr uint64_t kRxType = 0x04;    ///< RO: head packet type
constexpr uint64_t kRxLen = 0x08;     ///< RO: head packet payload bytes
constexpr uint64_t kRxData = 0x0C;    ///< RO: next payload word (autoinc)
constexpr uint64_t kRxConsume = 0x10; ///< WO: retire head packet
constexpr uint64_t kTxFree = 0x14;    ///< RO: free bytes in TX
constexpr uint64_t kTxType = 0x18;    ///< WO: start packet, set type
constexpr uint64_t kTxLen = 0x1C;     ///< WO: payload length in bytes
constexpr uint64_t kTxData = 0x20;    ///< WO: next payload word (autoinc)
constexpr uint64_t kTxCommit = 0x24;  ///< WO: enqueue assembled packet
constexpr uint64_t kBudgetLo = 0x28;  ///< RO: remaining cycle budget
constexpr uint64_t kBudgetHi = 0x2C;  ///< RO: remaining budget (high)
constexpr uint64_t kWindowBytes = 0x30;
} // namespace reg

/** Sizing of the bridge's hardware queues. */
struct BridgeConfig
{
    size_t rxFifoBytes = 64 * 1024; ///< fits one camera frame + slack
    size_t txFifoBytes = 4 * 1024;
};

/** Statistics the bridge accumulates for evaluation. */
struct BridgeStats
{
    uint64_t mmioReads = 0;
    uint64_t mmioWrites = 0;
    uint64_t rxPackets = 0;     ///< host -> SoC data packets delivered
    uint64_t txPackets = 0;     ///< SoC -> host data packets sent
    uint64_t rxDropped = 0;     ///< host packets dropped: RX fifo full
    uint64_t txBackpressure = 0;///< SoC commits rejected: TX fifo full
    uint64_t syncGrants = 0;
    uint64_t syncDones = 0;
};

/** The bridge proper. */
class RoseBridge : public soc::MmioDevice
{
  public:
    RoseBridge(Transport &transport, const BridgeConfig &cfg = {});

    // ------------------------------------------------- MmioDevice API
    std::string deviceName() const override { return "rose-bridge"; }
    uint64_t windowSize() const override { return reg::kWindowBytes; }
    uint32_t read(uint64_t offset) override;
    void write(uint64_t offset, uint32_t value) override;

    // ------------------------------------------------ control unit API
    /** Remaining granted cycles the SoC may still execute. */
    Cycles cycleBudget() const { return budget_; }

    /** True when the SoC must stall awaiting the next grant. */
    bool stalled() const { return budget_ == 0; }

    /** Consume budget as the SoC simulator advances. */
    void consumeCycles(Cycles n);

    /** Configured cycles-per-sync (set by CfgStepSize). */
    Cycles cyclesPerSync() const { return cyclesPerSync_; }

    /**
     * Report a finished synchronization step back to the host
     * (SyncDone); called by the SoC simulator when the granted budget
     * has been fully consumed.
     */
    void completeSync(Cycles cycles_run);

    // --------------------------------------------------- host-side API
    /**
     * Bridge-driver poll: drain the transport into the RX queue /
     * control unit, and flush the TX queue into the transport.
     *
     * @return number of packets moved in either direction.
     */
    uint64_t hostService();

    const BridgeStats &stats() const { return stats_; }

    /** Direct queue introspection for tests. */
    const PacketFifo &rxFifo() const { return rx_; }
    const PacketFifo &txFifo() const { return tx_; }

    /** Serialize queues, assembly registers, control unit, stats. */
    void saveState(StateWriter &w) const;
    void restoreState(StateReader &r);

  private:
    uint32_t readRxDataWord();

    Transport &transport_;
    PacketFifo rx_;
    PacketFifo tx_;

    // RX head-packet read cursor.
    size_t rxReadPos_ = 0;

    // TX packet assembly registers.
    Packet txStaging_;
    uint32_t txExpectedLen_ = 0;

    // Control unit.
    Cycles budget_ = 0;
    Cycles cyclesPerSync_ = 0;

    BridgeStats stats_;
};

} // namespace rose::bridge

#endif // ROSE_BRIDGE_ROSE_BRIDGE_HH
