#include "target_driver.hh"

#include "bridge/rose_bridge.hh"

namespace rose::bridge {

uint32_t
TargetDriver::mmioRead(uint64_t off)
{
    ++accesses_;
    return dev_.read(off);
}

void
TargetDriver::mmioWrite(uint64_t off, uint32_t v)
{
    ++accesses_;
    dev_.write(off, v);
}

uint32_t
TargetDriver::rxCount()
{
    return mmioRead(reg::kRxCount);
}

std::optional<Packet>
TargetDriver::rxPop()
{
    if (mmioRead(reg::kRxCount) == 0)
        return std::nullopt;

    Packet p;
    p.type = static_cast<PacketType>(mmioRead(reg::kRxType) & 0xff);
    uint32_t len = mmioRead(reg::kRxLen);
    p.payload.reserve(len);
    for (uint32_t off = 0; off < len; off += 4) {
        uint32_t word = mmioRead(reg::kRxData);
        for (int b = 0; b < 4 && off + b < len; ++b)
            p.payload.push_back((word >> (8 * b)) & 0xff);
    }
    mmioWrite(reg::kRxConsume, 1);
    return p;
}

bool
TargetDriver::txSend(const Packet &p)
{
    if (mmioRead(reg::kTxFree) < p.wireSize())
        return false;

    mmioWrite(reg::kTxType, static_cast<uint32_t>(p.type));
    mmioWrite(reg::kTxLen, static_cast<uint32_t>(p.payload.size()));
    for (size_t off = 0; off < p.payload.size(); off += 4) {
        uint32_t word = 0;
        for (size_t b = 0; b < 4 && off + b < p.payload.size(); ++b)
            word |= uint32_t(p.payload[off + b]) << (8 * b);
        mmioWrite(reg::kTxData, word);
    }
    mmioWrite(reg::kTxCommit, 1);
    return true;
}

uint64_t
TargetDriver::takeAccessCount()
{
    uint64_t n = accesses_;
    accesses_ = 0;
    return n;
}

} // namespace rose::bridge
