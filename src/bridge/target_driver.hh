/**
 * @file
 * Target-side bridge driver: the software library the companion-computer
 * application links against to talk to the RoSÉ I/O registers. Mirrors
 * the paper's target software that reads/writes the bridge's
 * memory-mapped queues ("accessible through queues pointed to by
 * memory-mapped registers on the system bus").
 *
 * Every operation is performed through individual 32-bit MMIO accesses;
 * the driver counts them so the SoC timing model can charge bus cycles
 * per access (uncached I/O loads/stores are expensive, which is exactly
 * the per-layer/per-image overhead the paper observes).
 */

#ifndef ROSE_BRIDGE_TARGET_DRIVER_HH
#define ROSE_BRIDGE_TARGET_DRIVER_HH

#include <optional>

#include "bridge/packet.hh"
#include "soc/device.hh"

namespace rose::bridge {

/** Software driver for the bridge's target-facing register file. */
class TargetDriver
{
  public:
    explicit TargetDriver(soc::MmioDevice &dev) : dev_(dev) {}

    /** Number of RX packets ready (one MMIO read). */
    uint32_t rxCount();

    /**
     * Pop the head RX packet, if any. Costs 3 + ceil(len/4) reads and
     * one write.
     */
    std::optional<Packet> rxPop();

    /**
     * Send a packet through the TX queue.
     *
     * @return false when the TX fifo lacks space (backpressure); the
     *         caller should retry after the next sync boundary.
     */
    bool txSend(const Packet &p);

    /**
     * MMIO accesses performed since the last call to this function.
     * The SoC app model drains this counter to charge I/O cycles.
     */
    uint64_t takeAccessCount();

  private:
    uint32_t mmioRead(uint64_t off);
    void mmioWrite(uint64_t off, uint32_t v);

    soc::MmioDevice &dev_;
    uint64_t accesses_ = 0;
};

} // namespace rose::bridge

#endif // ROSE_BRIDGE_TARGET_DRIVER_HH
