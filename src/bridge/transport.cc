#include "transport.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "util/logging.hh"
#include "util/serde.hh"

namespace rose::bridge {

// Non-checkpointable transports (the base default) reject state
// capture loudly: the supervisor checks checkpointable() first and
// falls back to a cold restart when snapshots are impossible.
void
Transport::saveState(StateWriter &) const
{
    throw TransportError("transport does not support checkpointing");
}

void
Transport::restoreState(StateReader &)
{
    throw TransportError("transport does not support checkpointing");
}

// ----------------------------------------------------------- in-process

namespace {

/** Shared state of an in-process pair: one deque per direction. */
struct InProcState
{
    std::deque<Packet> aToB;
    std::deque<Packet> bToA;
    bool aAlive = true;
    bool bAlive = true;
};

class InProcEndpoint : public Transport
{
  public:
    InProcEndpoint(std::shared_ptr<InProcState> state, bool is_a)
        : state_(std::move(state)), isA_(is_a) {}

    ~InProcEndpoint() override
    {
        (isA_ ? state_->aAlive : state_->bAlive) = false;
    }

    void
    send(const Packet &p) override
    {
        if (state() != TransportState::Open)
            throw TransportError("in-process send: peer endpoint "
                                 "destroyed");
        (isA_ ? state_->aToB : state_->bToA).push_back(p);
        sent_ += p.wireSize();
    }

    bool
    recv(Packet &out) override
    {
        auto &q = isA_ ? state_->bToA : state_->aToB;
        if (q.empty())
            return false;
        out = std::move(q.front());
        q.pop_front();
        received_ += out.wireSize();
        return true;
    }

    TransportState
    state() const override
    {
        return (isA_ ? state_->bAlive : state_->aAlive)
                   ? TransportState::Open
                   : TransportState::Closed;
    }

    uint64_t bytesSent() const override { return sent_; }
    uint64_t bytesReceived() const override { return received_; }

    bool checkpointable() const override { return true; }

    // Each endpoint serializes its *inbound* queue plus its own byte
    // counters; saving both endpoints of a pair therefore captures
    // both wire directions exactly once.
    void
    saveState(StateWriter &w) const override
    {
        const auto &q = isA_ ? state_->bToA : state_->aToB;
        w.u32(uint32_t(q.size()));
        for (const Packet &p : q)
            savePacket(w, p);
        w.u64(sent_);
        w.u64(received_);
    }

    void
    restoreState(StateReader &r) override
    {
        auto &q = isA_ ? state_->bToA : state_->aToB;
        q.clear();
        uint32_t n = r.u32();
        for (uint32_t i = 0; i < n; ++i)
            q.push_back(loadPacket(r));
        sent_ = r.u64();
        received_ = r.u64();
    }

  private:
    std::shared_ptr<InProcState> state_;
    bool isA_;
    uint64_t sent_ = 0;
    uint64_t received_ = 0;
};

} // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
makeInProcPair()
{
    auto state = std::make_shared<InProcState>();
    return {std::make_unique<InProcEndpoint>(state, true),
            std::make_unique<InProcEndpoint>(state, false)};
}

// ------------------------------------------------------------------- TCP

namespace {

void
setNonBlocking(int fd)
{
    int flags = fcntl(fd, F_GETFL, 0);
    if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        throw TransportError(std::string("fcntl O_NONBLOCK failed: ") +
                             std::strerror(errno));
}

void
setNoDelay(int fd)
{
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

} // namespace

TcpTransport::TcpTransport(int fd) : fd_(fd)
{
    rose_assert(fd_ >= 0, "invalid socket fd");
    try {
        setNonBlocking(fd_);
    } catch (...) {
        ::close(fd_);
        fd_ = -1;
        throw;
    }
    setNoDelay(fd_);
}

TcpTransport::~TcpTransport()
{
    if (fd_ >= 0)
        close(fd_);
}

void
TcpTransport::send(const Packet &p)
{
    if (state_ != TransportState::Open)
        throw TransportError("TCP send on " +
                             std::string(state_ == TransportState::Closed
                                             ? "closed"
                                             : "errored") +
                             " transport");
    std::vector<uint8_t> wire;
    serializePacket(p, wire);
    size_t off = 0;
    while (off < wire.size()) {
        ssize_t n = ::send(fd_, wire.data() + off, wire.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EPIPE || errno == ECONNRESET) {
                state_ = TransportState::Closed;
                throw TransportError(
                    "TCP send failed: peer closed the connection");
            }
            if (errno != EAGAIN && errno != EWOULDBLOCK) {
                state_ = TransportState::Error;
                throw TransportError(std::string("TCP send failed: ") +
                                     std::strerror(errno));
            }
            // Socket buffer full: bounded wait for POLLOUT instead of
            // busy-spinning on EAGAIN.
            pollfd pfd{fd_, POLLOUT, 0};
            int rc = ::poll(&pfd, 1,
                            sendTimeoutMs_ > 0 ? sendTimeoutMs_ : -1);
            if (rc < 0 && errno != EINTR) {
                state_ = TransportState::Error;
                throw TransportError(std::string("TCP send poll: ") +
                                     std::strerror(errno));
            }
            if (rc == 0) {
                state_ = TransportState::Error;
                throw TransportError(detail::concat(
                    "TCP send stalled: no socket-buffer space within ",
                    sendTimeoutMs_, " ms (peer not draining; ", off,
                    " of ", wire.size(), " bytes written)"));
            }
            continue;
        }
        off += size_t(n);
    }
    sent_ += wire.size();
}

void
TcpTransport::pump()
{
    uint8_t tmp[16384];
    while (state_ == TransportState::Open) {
        ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
        if (n > 0) {
            rx_.append(tmp, size_t(n));
            received_ += uint64_t(n);
        } else if (n == 0) {
            // Orderly shutdown by the peer: surface it instead of
            // pretending "no data yet" forever.
            state_ = TransportState::Closed;
            return;
        } else {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            if (errno == EINTR)
                continue;
            if (errno == ECONNRESET) {
                state_ = TransportState::Closed;
                return;
            }
            state_ = TransportState::Error;
            throw TransportError(std::string("TCP recv failed: ") +
                                 std::strerror(errno));
        }
    }
}

bool
TcpTransport::recv(Packet &out)
{
    pump();
    std::string err;
    switch (rx_.next(out, &err)) {
      case FrameStatus::Ok:
        return true;
      case FrameStatus::NeedMore:
        return false;
      case FrameStatus::Malformed:
        state_ = TransportState::Error;
        throw TransportError("TCP stream framing corrupt: " + err);
    }
    return false;
}

bool
TcpTransport::waitReadable(int timeout_ms)
{
    if (state_ != TransportState::Open)
        return rx_.pendingBytes() > 0;
    pollfd pfd{fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno != EINTR) {
        state_ = TransportState::Error;
        throw TransportError(std::string("TCP recv poll: ") +
                             std::strerror(errno));
    }
    return rc > 0;
}

// --------------------------------------------------------------- listener

TcpListener::TcpListener(uint16_t port, int backlog)
{
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        throw TransportError(std::string("socket() failed: ") +
                             std::strerror(errno));
    // SO_REUSEADDR lets a restarted daemon rebind a port still in
    // TIME_WAIT; ephemeral selection (port 0) plus port() keeps
    // concurrent test processes from ever racing on a fixed port.
    int one = 1;
    setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    try {
        if (bind(fd_, reinterpret_cast<sockaddr *>(&addr),
                 sizeof(addr)) < 0)
            throw TransportError(std::string("bind() failed: ") +
                                 std::strerror(errno));
        if (listen(fd_, backlog) < 0)
            throw TransportError(std::string("listen() failed: ") +
                                 std::strerror(errno));
        socklen_t len = sizeof(addr);
        if (getsockname(fd_, reinterpret_cast<sockaddr *>(&addr),
                        &len) < 0)
            throw TransportError(std::string("getsockname() failed: ") +
                                 std::strerror(errno));
    } catch (...) {
        ::close(fd_);
        fd_ = -1;
        throw;
    }
    port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener()
{
    close();
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

int
TcpListener::acceptFd(int timeout_ms)
{
    if (fd_ < 0)
        throw TransportError("accept on closed listener");
    for (;;) {
        pollfd pfd{fd_, POLLIN, 0};
        int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            throw TransportError(std::string("listener poll: ") +
                                 std::strerror(errno));
        }
        if (rc == 0)
            return -1;
        int conn = ::accept(fd_, nullptr, nullptr);
        if (conn < 0) {
            // A peer that connected and reset before we accepted is
            // not a listener failure; wait for the next connection.
            if (errno == EINTR || errno == ECONNABORTED ||
                errno == EAGAIN || errno == EWOULDBLOCK)
                continue;
            throw TransportError(std::string("accept() failed: ") +
                                 std::strerror(errno));
        }
        return conn;
    }
}

std::unique_ptr<TcpTransport>
TcpListener::accept(int timeout_ms)
{
    int conn = acceptFd(timeout_ms);
    if (conn < 0)
        return nullptr;
    return std::make_unique<TcpTransport>(conn);
}

std::pair<std::unique_ptr<TcpTransport>, std::unique_ptr<TcpTransport>>
TcpTransport::makeLoopbackPair()
{
    TcpListener listener(0, 1);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(listener.port());

    int client = socket(AF_INET, SOCK_STREAM, 0);
    if (client < 0)
        throw TransportError(std::string("socket() failed: ") +
                             std::strerror(errno));
    if (connect(client, reinterpret_cast<sockaddr *>(&addr),
                sizeof(addr)) < 0) {
        int err = errno;
        close(client);
        throw TransportError(std::string("connect() failed: ") +
                             std::strerror(err));
    }

    int server;
    try {
        server = listener.acceptFd(5000);
    } catch (...) {
        close(client);
        throw;
    }
    if (server < 0) {
        close(client);
        throw TransportError("loopback accept timed out");
    }

    std::unique_ptr<TcpTransport> serverEnd, clientEnd;
    try {
        serverEnd = std::make_unique<TcpTransport>(server);
    } catch (...) {
        close(client);
        throw;
    }
    clientEnd = std::make_unique<TcpTransport>(client);
    return {std::move(serverEnd), std::move(clientEnd)};
}

} // namespace rose::bridge
