/**
 * @file
 * Packet transports between the synchronizer and the RoSÉ bridge.
 *
 * The paper transmits serialized packets over TCP between the
 * synchronizer process and the FireSim host (Section 3.4.1). We provide
 * two implementations of the same interface: an in-process channel (the
 * default for single-process co-simulation) and a real POSIX TCP
 * loopback transport exercising the same wire framing.
 */

#ifndef ROSE_BRIDGE_TRANSPORT_HH
#define ROSE_BRIDGE_TRANSPORT_HH

#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "bridge/packet.hh"

namespace rose::bridge {

/** Bidirectional, non-blocking packet endpoint. */
class Transport
{
  public:
    virtual ~Transport() = default;

    /** Queue one packet for the peer. */
    virtual void send(const Packet &p) = 0;

    /**
     * Poll for one received packet.
     *
     * @return true when a packet was delivered into @p out.
     */
    virtual bool recv(Packet &out) = 0;

    /** Bytes sent so far (wire accounting for throughput models). */
    virtual uint64_t bytesSent() const = 0;
    virtual uint64_t bytesReceived() const = 0;
};

/**
 * Create a connected pair of in-process endpoints; what one sends the
 * other receives, preserving order. Endpoints share state and must not
 * outlive each other across threads without external synchronization
 * (the co-simulation is single-threaded).
 */
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
makeInProcPair();

/**
 * TCP loopback transport. The listener binds/accepts on construction of
 * the pair factory; both ends use non-blocking reads with the shared
 * wire framing from packet.hh.
 */
class TcpTransport : public Transport
{
  public:
    /** Adopt a connected socket fd (owned; closed on destruction). */
    explicit TcpTransport(int fd);
    ~TcpTransport() override;

    TcpTransport(const TcpTransport &) = delete;
    TcpTransport &operator=(const TcpTransport &) = delete;

    void send(const Packet &p) override;
    bool recv(Packet &out) override;
    uint64_t bytesSent() const override { return sent_; }
    uint64_t bytesReceived() const override { return received_; }

    /**
     * Create a connected loopback pair: binds an ephemeral port on
     * 127.0.0.1, connects, accepts. Returns {server_end, client_end}.
     */
    static std::pair<std::unique_ptr<TcpTransport>,
                     std::unique_ptr<TcpTransport>>
    makeLoopbackPair();

  private:
    void pump();

    int fd_;
    std::vector<uint8_t> rxBuf_;
    uint64_t sent_ = 0;
    uint64_t received_ = 0;
};

} // namespace rose::bridge

#endif // ROSE_BRIDGE_TRANSPORT_HH
