/**
 * @file
 * Packet transports between the synchronizer and the RoSÉ bridge.
 *
 * The paper transmits serialized packets over TCP between the
 * synchronizer process and the FireSim host (Section 3.4.1). We provide
 * two implementations of the same interface: an in-process channel (the
 * default for single-process co-simulation) and a real POSIX TCP
 * loopback transport exercising the same wire framing.
 */

#ifndef ROSE_BRIDGE_TRANSPORT_HH
#define ROSE_BRIDGE_TRANSPORT_HH

#include <deque>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bridge/packet.hh"

namespace rose {
class StateWriter;
class StateReader;
} // namespace rose

namespace rose::bridge {

/**
 * Transport failure surfaced to the co-simulation: a dead peer, a
 * corrupt wire stream, a send that cannot make progress, or a sync
 * deadline that expired. Thrown instead of silently spinning so the
 * lockstep loop fails loudly with a diagnostic rather than deadlocking.
 */
class TransportError : public std::runtime_error
{
  public:
    explicit TransportError(const std::string &what)
        : std::runtime_error(what) {}
};

/** Liveness of a transport endpoint. */
enum class TransportState : uint8_t
{
    Open,   ///< peer reachable (as far as we know)
    Closed, ///< peer performed an orderly close
    Error,  ///< wire-level failure (reset, corrupt framing)
};

/** Bidirectional, non-blocking packet endpoint. */
class Transport
{
  public:
    virtual ~Transport() = default;

    /**
     * Queue one packet for the peer.
     *
     * @throws TransportError when the peer is gone or the endpoint
     *         cannot make progress within its send deadline.
     */
    virtual void send(const Packet &p) = 0;

    /**
     * Poll for one received packet.
     *
     * @return true when a packet was delivered into @p out.
     * @throws TransportError on a corrupt wire stream.
     */
    virtual bool recv(Packet &out) = 0;

    /** Current liveness; Closed/Error after the peer goes away. */
    virtual TransportState state() const { return TransportState::Open; }

    /** True when waitReadable() can actually block (real sockets). */
    virtual bool supportsWait() const { return false; }

    /**
     * Block up to @p timeout_ms for inbound bytes. Returns true when
     * data may be available, false on timeout. Transports with no
     * notion of blocking (the in-process channel, where both sides run
     * on one thread) return false immediately.
     */
    virtual bool waitReadable(int timeout_ms)
    {
        (void)timeout_ms;
        return false;
    }

    /** Bytes sent so far (wire accounting for throughput models). */
    virtual uint64_t bytesSent() const = 0;
    virtual uint64_t bytesReceived() const = 0;

    /**
     * True when this endpoint's in-flight state can be captured by
     * saveState()/restoreState(). The in-process channel can (its
     * queues are plain memory); TCP cannot — bytes sitting in kernel
     * socket buffers are invisible to user space, so a sound snapshot
     * is impossible and the supervisor instead falls back to a cold
     * restart (optionally on an in-process transport).
     */
    virtual bool checkpointable() const { return false; }

    /**
     * Serialize this endpoint's inbound queue and byte counters.
     * Saving both endpoints of a pair covers both wire directions.
     * Only valid when checkpointable(); the default throws.
     */
    virtual void saveState(StateWriter &w) const;
    virtual void restoreState(StateReader &r);
};

/**
 * Create a connected pair of in-process endpoints; what one sends the
 * other receives, preserving order. Endpoints share state and must not
 * outlive each other across threads without external synchronization
 * (the co-simulation is single-threaded).
 */
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
makeInProcPair();

/**
 * TCP loopback transport. The listener binds/accepts on construction of
 * the pair factory; both ends use non-blocking reads with the shared
 * wire framing from packet.hh.
 */
class TcpTransport : public Transport
{
  public:
    /** Adopt a connected socket fd (owned; closed on destruction). */
    explicit TcpTransport(int fd);
    ~TcpTransport() override;

    TcpTransport(const TcpTransport &) = delete;
    TcpTransport &operator=(const TcpTransport &) = delete;

    void send(const Packet &p) override;
    bool recv(Packet &out) override;
    TransportState state() const override { return state_; }
    bool supportsWait() const override { return true; }
    bool waitReadable(int timeout_ms) override;
    uint64_t bytesSent() const override { return sent_; }
    uint64_t bytesReceived() const override { return received_; }

    /**
     * Bound on how long send() may block waiting for socket-buffer
     * space before concluding the peer stopped draining (default 5 s;
     * 0 waits forever).
     */
    void setSendTimeout(int ms) { sendTimeoutMs_ = ms; }

    /**
     * Create a connected loopback pair: binds an ephemeral port on
     * 127.0.0.1, connects, accepts. Returns {server_end, client_end}.
     *
     * @throws TransportError when any socket operation fails (a busy
     *         port, exhausted descriptors, ...); never aborts, so a
     *         long-lived process can survive a failed setup.
     */
    static std::pair<std::unique_ptr<TcpTransport>,
                     std::unique_ptr<TcpTransport>>
    makeLoopbackPair();

  private:
    void pump();

    int fd_;
    FrameBuffer rx_;
    TransportState state_ = TransportState::Open;
    int sendTimeoutMs_ = 5000;
    uint64_t sent_ = 0;
    uint64_t received_ = 0;
};

/**
 * Listening TCP socket on 127.0.0.1, generalizing the one-shot
 * accept inside makeLoopbackPair() to a long-lived multi-client
 * listener (the mission-service daemon's front door).
 *
 * Failures throw TransportError — a failed bind() must surface as an
 * error a daemon can report, never a process abort. Binding port 0
 * picks an ephemeral port; port() returns the actual bound port so
 * concurrent processes (parallel tests, CI) never race on a fixed
 * number.
 */
class TcpListener
{
  public:
    /** Bind and listen; @p port 0 selects an ephemeral port.
     *  @throws TransportError on socket/bind/listen/getsockname
     *  failure. */
    explicit TcpListener(uint16_t port = 0, int backlog = 16);
    ~TcpListener();

    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /** The actually-bound port (resolves an ephemeral request). */
    uint16_t port() const { return port_; }

    /** Listening descriptor, for callers running their own poll(). */
    int fd() const { return fd_; }

    /**
     * Wait up to @p timeout_ms for a pending connection and accept
     * it. Returns the connected fd (owned by the caller), or -1 on
     * timeout. timeout_ms < 0 blocks indefinitely.
     * @throws TransportError on a hard accept()/poll() failure or
     *         when the listener is closed.
     */
    int acceptFd(int timeout_ms);

    /** acceptFd() wrapped in a TcpTransport; nullptr on timeout. */
    std::unique_ptr<TcpTransport> accept(int timeout_ms);

    /** Close the listening socket (idempotent). */
    void close();

  private:
    int fd_ = -1;
    uint16_t port_ = 0;
};

} // namespace rose::bridge

#endif // ROSE_BRIDGE_TRANSPORT_HH
