#include "batch.hh"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numeric>
#include <sstream>

#include "util/logging.hh"

namespace rose::core {

std::vector<MissionResult>
BatchRunner::run(const std::vector<MissionSpec> &specs)
{
    stats_ = BatchStats{};
    stats_.missions = specs.size();
    stats_.jobs = opts_.jobs;
    stats_.missionWallSeconds.assign(specs.size(), 0.0);

    auto t0 = std::chrono::steady_clock::now();
    std::vector<MissionResult> results =
        parallelIndexed<MissionResult>(
            specs.size(), opts_.jobs, [&](size_t i) {
                // Slot isolation: a crashing mission (bad spec, lost
                // transport, diverged physics) must not take down the
                // batch — its slot reports Crashed with the reason and
                // every other mission still returns a full result.
                try {
                    // runMission already stamps r.wallSeconds.
                    return runMission(specs[i]);
                } catch (const std::exception &e) {
                    rose_warn("batch slot ", i, " (", specs[i].label(),
                              ") failed: ", e.what());
                    MissionResult r;
                    r.completed = false;
                    r.status = MissionStatus::Crashed;
                    r.failureReason = e.what();
                    return r;
                }
            });
    auto t1 = std::chrono::steady_clock::now();

    stats_.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    for (size_t i = 0; i < results.size(); ++i)
        stats_.missionWallSeconds[i] = results[i].wallSeconds;
    stats_.serialSeconds =
        std::accumulate(stats_.missionWallSeconds.begin(),
                        stats_.missionWallSeconds.end(), 0.0);
    return results;
}

std::vector<MissionResult>
runMissionBatch(const std::vector<MissionSpec> &specs, int jobs)
{
    BatchRunner runner(BatchOptions{jobs});
    return runner.run(specs);
}

BatchCli
parseBatchCli(int &argc, char **argv)
{
    BatchCli cli;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto takeValue = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                rose_fatal(flag, " requires a value");
            return argv[++i];
        };
        if (std::strcmp(arg, "--jobs") == 0 ||
            std::strcmp(arg, "-j") == 0) {
            cli.jobs = std::atoi(takeValue(arg));
            if (cli.jobs < 0)
                rose_fatal("--jobs must be >= 0, got ", cli.jobs);
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            cli.jobs = std::atoi(arg + 7);
            if (cli.jobs < 0)
                rose_fatal("--jobs must be >= 0, got ", cli.jobs);
        } else if (std::strcmp(arg, "--batch-json") == 0) {
            cli.jsonPath = takeValue(arg);
        } else if (std::strncmp(arg, "--batch-json=", 13) == 0) {
            cli.jsonPath = arg + 13;
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    return cli;
}

// ------------------------------------------------------------ BatchReport

void
BatchReport::add(const std::string &label, const BatchStats &stats)
{
    entries_.push_back(Entry{label, stats});
}

size_t
BatchReport::missions() const
{
    size_t n = 0;
    for (const Entry &e : entries_)
        n += e.stats.missions;
    return n;
}

namespace {

void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default: os << c;
        }
    }
    os << '"';
}

void
jsonBatch(std::ostream &os, const BatchStats &s)
{
    os << "{\"missions\": " << s.missions << ", \"jobs\": " << s.jobs
       << ", \"serial_seconds\": " << s.serialSeconds
       << ", \"wall_seconds\": " << s.wallSeconds
       << ", \"speedup\": " << s.speedup()
       << ", \"mission_wall_seconds\": [";
    for (size_t i = 0; i < s.missionWallSeconds.size(); ++i) {
        if (i)
            os << ", ";
        os << s.missionWallSeconds[i];
    }
    os << "]}";
}

} // namespace

std::string
BatchReport::toJson() const
{
    double wall = 0.0, serial = 0.0;
    int jobs = 1;
    for (const Entry &e : entries_) {
        wall += e.stats.wallSeconds;
        serial += e.stats.serialSeconds;
        jobs = e.stats.jobs;
    }

    std::ostringstream os;
    os.precision(6);
    os << "{\n  \"bench\": ";
    jsonEscape(os, bench_);
    os << ",\n  \"jobs\": " << jobs
       << ",\n  \"missions\": " << missions()
       << ",\n  \"serial_seconds\": " << serial
       << ",\n  \"wall_seconds\": " << wall << ",\n  \"speedup\": "
       << (wall > 0.0 ? serial / wall : 0.0) << ",\n  \"batches\": [";
    for (size_t i = 0; i < entries_.size(); ++i) {
        os << (i ? ",\n    " : "\n    ") << "{\"label\": ";
        jsonEscape(os, entries_[i].label);
        os << ", \"batch\": ";
        jsonBatch(os, entries_[i].stats);
        os << "}";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

void
BatchReport::write(const std::string &path) const
{
    if (path.empty())
        return;
    std::ofstream out(path);
    if (!out) {
        rose_warn("cannot write batch report: ", path);
        return;
    }
    out << toJson();
    rose_inform("batch timing report written to ", path);
}

} // namespace rose::core
