/**
 * @file
 * Deterministic parallel mission batch execution.
 *
 * Every evaluation in the paper (Section 5, Figures 10-16) is a sweep
 * of independent closed-loop missions across SoC configs, DNN depths,
 * velocities, and seeds; the authors fan those out across FPGAs. Here
 * BatchRunner fans them out across a worker thread pool.
 *
 * Determinism contract (enforced by tests/test_batch.cc):
 *
 *   For any job count and any scheduling, the MissionResults returned
 *   by a batch are identical to running each spec through serial
 *   runMission(), in submission order — with the sole exception of the
 *   wall-clock fields (MissionResult::wallSeconds and derived rates),
 *   which measure the host, not the simulation.
 *
 * What makes this hold:
 *  - each mission owns its entire simulation stack (CoSimulation
 *    constructs a private environment, bridge, SoC engine, and app);
 *  - all randomness is drawn from per-mission Rng instances seeded
 *    from the spec — there is no process-global generator;
 *  - the only cross-mission shared objects are immutable artifacts
 *    (env::sharedWorld geometry, dnn::sharedResNet checkpoints) behind
 *    thread-safe build-once caches (util/memo.hh);
 *  - the logging sink is an atomic-threshold single-write-per-line
 *    stderr stream: concurrency can interleave *lines*, never results.
 */

#ifndef ROSE_CORE_BATCH_HH
#define ROSE_CORE_BATCH_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hh"

namespace rose::core {

/**
 * Deterministic ordered parallel map: evaluate fn(0..n-1) on up to
 * @p jobs worker threads and return the results in index order.
 * fn must not touch shared mutable state; result identity with a
 * serial loop is then independent of the thread count.
 *
 * jobs <= 1 runs inline (no threads spawned); jobs == 0 uses
 * std::thread::hardware_concurrency().
 */
template <typename R>
std::vector<R>
parallelIndexed(size_t n, int jobs, const std::function<R(size_t)> &fn)
{
    std::vector<R> results(n);
    if (n == 0)
        return results;

    unsigned want = jobs == 0 ? std::thread::hardware_concurrency()
                              : unsigned(jobs);
    if (want == 0)
        want = 1;
    unsigned workers = unsigned(std::min<size_t>(want, n));

    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            results[i] = fn(i);
        return results;
    }

    // Work-stealing by atomic ticket: the assignment of missions to
    // threads is scheduling-dependent, but results are written to
    // their submission slot, so output order never is.
    std::atomic<size_t> next{0};
    auto worker = [&] {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            results[i] = fn(i);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    return results;
}

/** Batch execution options. */
struct BatchOptions
{
    /** Worker threads; 0 = hardware concurrency, 1 = run inline. */
    int jobs = 1;
};

/** Aggregate timing of one executed batch. */
struct BatchStats
{
    size_t missions = 0;
    int jobs = 1;
    /** Wall-clock of the whole batch [s]. */
    double wallSeconds = 0.0;
    /** Serial-equivalent time: sum of per-mission wall clocks [s]. */
    double serialSeconds = 0.0;
    /** Per-mission wall clocks, submission order [s]. */
    std::vector<double> missionWallSeconds;

    /** Parallel speedup vs running the same missions back to back. */
    double
    speedup() const
    {
        return wallSeconds > 0.0 ? serialSeconds / wallSeconds : 0.0;
    }
};

/** The worker-pool mission batch executor. */
class BatchRunner
{
  public:
    explicit BatchRunner(const BatchOptions &opts = {}) : opts_(opts) {}

    /**
     * Run every spec to completion/timeout; results in submission
     * order, byte-identical to serial runMission() (see the
     * determinism contract above).
     */
    std::vector<MissionResult> run(const std::vector<MissionSpec> &specs);

    /** Timing of the most recent run(). */
    const BatchStats &stats() const { return stats_; }

  private:
    BatchOptions opts_;
    BatchStats stats_;
};

/** One-shot convenience wrapper. */
std::vector<MissionResult>
runMissionBatch(const std::vector<MissionSpec> &specs, int jobs = 1);

// --------------------------------------------------------------------
// Bench-harness plumbing: --jobs flag and BENCH_batch.json emission.

/**
 * Command-line options shared by all sweep benches. parseBatchCli
 * strips the recognized flags out of argv (compacting argc) so
 * benches can keep parsing their own positionals afterwards:
 *
 *   --jobs N | -j N   worker threads (0 = hardware concurrency)
 *   --batch-json PATH batch timing report path
 *                     (default BENCH_batch.json; "" disables)
 */
struct BatchCli
{
    int jobs = 1;
    std::string jsonPath = "BENCH_batch.json";

    BatchOptions options() const { return BatchOptions{jobs}; }
};

BatchCli parseBatchCli(int &argc, char **argv);

/**
 * Machine-readable perf trajectory of a bench run. Each converted
 * sweep bench records the batches it executed and writes one JSON
 * document (overwriting: the file describes the last run):
 *
 * {
 *   "bench": "<name>",
 *   "jobs": N,
 *   "missions": total,
 *   "serial_seconds": s, "wall_seconds": w, "speedup": s/w,
 *   "batches": [ {"label": ..., "missions": ..., "jobs": ...,
 *                 "serial_seconds": ..., "wall_seconds": ...,
 *                 "speedup": ..., "mission_wall_seconds": [...]}, ... ]
 * }
 */
class BatchReport
{
  public:
    explicit BatchReport(const std::string &bench) : bench_(bench) {}

    /** Record one executed batch under a human-readable label. */
    void add(const std::string &label, const BatchStats &stats);

    /** Missions recorded so far across all batches. */
    size_t missions() const;

    /** Serialize to JSON text. */
    std::string toJson() const;

    /** Write the JSON document; empty path is a no-op. */
    void write(const std::string &path) const;

  private:
    struct Entry
    {
        std::string label;
        BatchStats stats;
    };

    std::string bench_;
    std::vector<Entry> entries_;
};

} // namespace rose::core

#endif // ROSE_CORE_BATCH_HH
