#include "checkpoint.hh"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/cosim.hh"
#include "util/serde.hh"

namespace rose::core {

namespace {

constexpr char kMagic[8] = {'R', 'O', 'S', 'E', 'C', 'K', 'P', 'T'};

} // namespace

uint64_t
stateHashOf(const std::vector<uint8_t> &bytes)
{
    return fnv1a(std::string_view(
        reinterpret_cast<const char *>(bytes.data()), bytes.size()));
}

uint64_t
configFingerprint(const CosimConfig &cfg)
{
    // Serialize the determinism-relevant fields through the same
    // little-endian writer the checkpoint uses, then hash the bytes.
    // Fault injection, transport kind, maxSimSeconds, the sync
    // deadline, and the sensor timeout (defaulted from fault config)
    // are deliberately excluded: the supervisor mutates those between
    // capture and restore.
    StateWriter w;
    w.str(cfg.env.worldName);
    w.str(cfg.env.vehicleName);
    w.f64(cfg.env.frameHz);
    w.u32(uint32_t(cfg.env.physicsSubsteps));
    w.u64(cfg.env.seed);
    w.f64(cfg.env.initialPosition.x);
    w.f64(cfg.env.initialPosition.y);
    w.f64(cfg.env.initialPosition.z);
    w.f64(cfg.env.initialYawDeg);
    w.f64(cfg.env.cruiseAltitude);
    w.u32(uint32_t(cfg.env.obstacles.size()));
    w.f64(cfg.env.turbulenceForceStd);

    w.str(cfg.soc.name);
    w.boolean(cfg.soc.hasGemmini);
    w.f64(cfg.soc.clockHz);

    w.u64(cfg.sync.cyclesPerSync);
    w.f64(cfg.sync.clocks.socClockHz);
    w.f64(cfg.sync.clocks.envFrameHz);

    w.u8(uint8_t(cfg.app.mode));
    w.u32(uint32_t(cfg.app.modelDepth));
    w.u32(uint32_t(cfg.app.smallModelDepth));
    w.u64(cfg.app.seed);
    w.f64(cfg.app.policy.forwardVelocity);
    w.f64(cfg.app.policy.betaLateral);
    w.f64(cfg.app.policy.betaYaw);
    w.boolean(cfg.app.policy.argmaxPolicy);
    w.boolean(cfg.app.degraded.enabled);

    w.boolean(cfg.background.enabled);
    w.u64(cfg.samplePeriods);

    return stateHashOf(w.data());
}

const Checkpoint &
CheckpointRing::latest() const
{
    if (ring_.empty())
        throw CheckpointError("checkpoint ring is empty");
    return ring_.back();
}

const Checkpoint &
CheckpointRing::oldest() const
{
    if (ring_.empty())
        throw CheckpointError("checkpoint ring is empty");
    return ring_.front();
}

void
writeCheckpointFile(const std::string &path, const Checkpoint &ck)
{
    StateWriter w;
    w.u32(ck.version);
    w.u64(ck.period);
    w.f64(ck.simTime);
    w.u64(ck.configFingerprint);
    w.u64(ck.stateHash);
    w.u32(uint32_t(ck.state.size()));
    w.bytes(ck.state.data(), ck.state.size());

    // Write-aside + rename: the file is replaced atomically, so a
    // crash mid-write can never tear the checkpoint — the previous
    // good snapshot survives until the new one is fully on disk
    // (rosed's per-job crash recovery warm-restores from this file).
    const std::string tmp = path + ".tmp";
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f)
            throw CheckpointError(
                "cannot open checkpoint file for write: " + tmp);
        f.write(kMagic, sizeof(kMagic));
        f.write(reinterpret_cast<const char *>(w.data().data()),
                std::streamsize(w.size()));
        if (!f)
            throw CheckpointError("short write to checkpoint file: " +
                                  tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw CheckpointError("cannot move checkpoint into place: " +
                              path);
    }
}

Checkpoint
readCheckpointFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        throw CheckpointError("cannot open checkpoint file: " + path);

    char magic[sizeof(kMagic)];
    f.read(magic, sizeof(magic));
    if (!f || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw CheckpointError("bad checkpoint magic in " + path);

    std::vector<uint8_t> rest(
        (std::istreambuf_iterator<char>(f)),
        std::istreambuf_iterator<char>());
    try {
        StateReader r(rest);
        Checkpoint ck;
        ck.version = r.u32();
        if (ck.version != Checkpoint::kVersion)
            throw CheckpointError(
                "unsupported checkpoint version " +
                std::to_string(ck.version) + " in " + path +
                " (expected " + std::to_string(Checkpoint::kVersion) +
                ")");
        ck.period = r.u64();
        ck.simTime = r.f64();
        ck.configFingerprint = r.u64();
        ck.stateHash = r.u64();
        uint32_t n = r.u32();
        ck.state.resize(n);
        if (n)
            r.bytes(ck.state.data(), n);
        if (stateHashOf(ck.state) != ck.stateHash)
            throw CheckpointError(
                "checkpoint state hash mismatch in " + path +
                " (file corrupt or truncated)");
        return ck;
    } catch (const SerdeError &e) {
        throw CheckpointError("truncated checkpoint file " + path + ": " +
                              e.what());
    }
}

} // namespace rose::core
