/**
 * @file
 * Versioned co-simulation checkpoints (the resilience layer's unit of
 * recovery).
 *
 * A Checkpoint is a self-describing snapshot of everything that moves
 * in a CoSimulation: environment 6-DOF state and sensor RNG streams,
 * SoC cycle counters and in-flight workload actions, synchronizer
 * period bookkeeping, bridge FIFO contents, and (when enabled) fault
 * injector and background-tenant state. Immutable artifacts — DNN
 * models, worlds, layer schedules — are rebuilt from the config on
 * restore, never serialized.
 *
 * The state blob is a sequence of tagged sections (u8 tag + u32 byte
 * length + payload) so a restore can skip sections whose component is
 * absent in the target configuration — the supervisor uses this to
 * restore a faults-enabled snapshot into a faults-disabled retry.
 *
 * Restoring a checkpoint and resuming is bit-identical to an
 * uninterrupted run: the golden-trace tests resume the canonical
 * missions from mid-flight checkpoints and require the PR-2 FNV-1a
 * trajectory hashes to match exactly.
 */

#ifndef ROSE_CORE_CHECKPOINT_HH
#define ROSE_CORE_CHECKPOINT_HH

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/hash.hh"

namespace rose::core {

struct CosimConfig;

/** Thrown on checkpoint format/validation failures (bad magic, version
 *  mismatch, hash mismatch, config mismatch, empty ring). */
class CheckpointError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Tags of the sections inside a checkpoint's state blob. */
enum class CkptSection : uint8_t
{
    Cosim = 1,       ///< period counter, metric accumulators, trajectory
    Env = 2,         ///< vehicle 6-DOF, sensors, collision, env RNG
    Sync = 3,        ///< synchronizer counters and period bookkeeping
    Soc = 4,         ///< cycle counters, pending action, halt flag
    Bridge = 5,      ///< FIFO contents, staging buffer, cycle budget
    App = 6,         ///< control FSM, buffered sensors, telemetry
    TransportSync = 7,   ///< sync-side in-process endpoint queues
    TransportBridge = 8, ///< bridge-side in-process endpoint queues
    Faults = 9,      ///< fault injector (optional; skipped if disabled)
    Background = 10, ///< co-tenant scheduler (optional)
};

/** One snapshot of a CoSimulation. */
struct Checkpoint
{
    /** Bump on any layout change; restores reject other versions. */
    static constexpr uint32_t kVersion = 1;

    uint32_t version = kVersion;
    /** Sync periods executed when the snapshot was taken. */
    uint64_t period = 0;
    /** Environment time at capture [s]. */
    double simTime = 0.0;
    /** Fingerprint of the determinism-relevant config fields; restore
     *  refuses a checkpoint taken under a different mission. */
    uint64_t configFingerprint = 0;
    /** Tagged-section state blob. */
    std::vector<uint8_t> state;
    /** FNV-1a over `state` (integrity check for the disk format). */
    uint64_t stateHash = 0;
};

/** FNV-1a over a byte vector (the checkpoint integrity hash). */
uint64_t stateHashOf(const std::vector<uint8_t> &bytes);

/**
 * Fingerprint of the config fields that determine mission evolution.
 * Excludes knobs that may legitimately differ between capture and
 * restore: fault injection, transport kind, time limit, sync deadline,
 * and the sensor-timeout default derived from fault injection.
 */
uint64_t configFingerprint(const CosimConfig &cfg);

/**
 * Fixed-capacity in-memory ring of recent checkpoints. push() evicts
 * the oldest once full; the supervisor restores from latest() and
 * falls back to older snapshots with dropLatest().
 */
class CheckpointRing
{
  public:
    explicit CheckpointRing(size_t capacity) : capacity_(capacity) {}

    void
    push(Checkpoint ck)
    {
        ring_.push_back(std::move(ck));
        while (ring_.size() > capacity_)
            ring_.pop_front();
    }

    bool empty() const { return ring_.empty(); }
    size_t size() const { return ring_.size(); }
    size_t capacity() const { return capacity_; }

    /** Most recent snapshot; throws CheckpointError when empty. */
    const Checkpoint &latest() const;

    /** Oldest retained snapshot; throws CheckpointError when empty. */
    const Checkpoint &oldest() const;

    /** Drop the newest snapshot (e.g. after it failed to restore).
     *  @return true if a snapshot was dropped. */
    bool
    dropLatest()
    {
        if (ring_.empty())
            return false;
        ring_.pop_back();
        return true;
    }

    void clear() { ring_.clear(); }

  private:
    size_t capacity_;
    std::deque<Checkpoint> ring_;
};

/**
 * Persist a checkpoint to disk ("ROSECKPT" magic + header + blob).
 * Throws CheckpointError on I/O failure.
 */
void writeCheckpointFile(const std::string &path, const Checkpoint &ck);

/**
 * Load and validate a checkpoint file: magic, version, and the FNV-1a
 * state hash must all check out. Throws CheckpointError otherwise.
 */
Checkpoint readCheckpointFile(const std::string &path);

} // namespace rose::core

#endif // ROSE_CORE_CHECKPOINT_HH
