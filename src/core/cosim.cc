#include "cosim.hh"

#include <chrono>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "util/logging.hh"

namespace rose::core {

CoSimulation::CoSimulation(const CosimConfig &cfg) : cfg_(cfg)
{
    // The environment frame rate must match the sync clock ratio.
    cfg_.env.frameHz = cfg_.sync.clocks.envFrameHz;
    env_ = std::make_unique<env::EnvSim>(cfg_.env);

    if (cfg_.transport == TransportKind::Tcp) {
        auto [server, client] = bridge::TcpTransport::makeLoopbackPair();
        syncEnd_ = std::move(server);
        bridgeEnd_ = std::move(client);
    } else {
        auto [a, b] = bridge::makeInProcPair();
        syncEnd_ = std::move(a);
        bridgeEnd_ = std::move(b);
    }

    if (cfg_.faults.enabled) {
        auto wrapped = std::make_unique<bridge::FaultInjectTransport>(
            std::move(syncEnd_), cfg_.faults);
        faults_ = wrapped.get();
        syncEnd_ = std::move(wrapped);
        // On a lossy link the target software must be able to recover
        // from lost sensor traffic: default its timeout to three sync
        // periods unless the caller chose one.
        if (cfg_.app.sensorTimeoutCycles == 0)
            cfg_.app.sensorTimeoutCycles = 3 * cfg_.sync.cyclesPerSync;
    }

    bridge_ = std::make_unique<bridge::RoseBridge>(*bridgeEnd_,
                                                   cfg_.bridgeCfg);
    driver_ = std::make_unique<bridge::TargetDriver>(*bridge_);
    app_ = std::make_unique<runtime::ControlApp>(*driver_, cfg_.soc,
                                                 cfg_.app);
    soc::Workload *workload = app_.get();
    if (cfg_.background.enabled) {
        backgroundLoad_ = std::make_unique<soc::BackgroundLoad>(
            cfg_.background.batchCycles, cfg_.background.idleCycles);
        timeShared_ = std::make_unique<soc::TimeSharedWorkload>(
            *app_, *backgroundLoad_, cfg_.background.fgQuantum,
            cfg_.background.bgQuantum);
        workload = timeShared_.get();
    }
    soc_ = std::make_unique<soc::SocSim>(*bridge_, *workload, cfg_.soc);
    sync_ = std::make_unique<sync::Synchronizer>(*env_, *syncEnd_,
                                                 cfg_.sync);

    sync_->configure();
    // Deliver the step-size configuration to the bridge before the
    // first period.
    bridge_->hostService();
}

CoSimulation::~CoSimulation() = default;

void
CoSimulation::stepPeriod()
{
    // Algorithm 1 in lockstep: grant tokens, run the SoC through its
    // budget (the SoC side services its own bridge), then translate
    // the period's packets into environment API calls and advance the
    // environment by the matching frames.
    sync_->beginPeriod();
    soc_->runPeriod();
    sync_->endPeriod();
    ++periods_;

    if (periods_ % cfg_.samplePeriods == 0)
        sample();
}

void
CoSimulation::sample()
{
    TrajectorySample s;
    flight::VehicleState k = env_->kinematics();
    s.time = env_->simTime();
    s.position = k.position;
    s.yaw = k.attitude.yaw();
    s.speed = std::hypot(k.velocity.x, k.velocity.y);
    s.lateralOffset = env_->lateralOffset();
    s.collisions = env_->collisionInfo().count;
    const sync::LastCommand &cmd = sync_->lastCommand();
    if (cmd.valid) {
        s.cmdForward = cmd.forward;
        s.cmdLateral = cmd.lateral;
        s.cmdYawRate = cmd.yawRate;
    }
    trajectory_.push_back(s);
}

void
CoSimulation::printSummary(std::ostream &os) const
{
    auto line = [&os](const char *name, auto value) {
        os << std::left << std::setw(40) << name << value << "\n";
    };

    os << "---------- RoSE co-simulation summary ----------\n";
    line("sim.periods", periods_);
    line("env.simSeconds", env_->simTime());
    line("env.frames", env_->frameCount());
    line("env.collisions", env_->collisionInfo().count);

    const sync::SyncStats &ss = sync_->stats();
    line("sync.grantsSent", ss.grantsSent);
    line("sync.donesReceived", ss.donesReceived);
    line("sync.imageRequests", ss.imageRequests);
    line("sync.imuRequests", ss.imuRequests);
    line("sync.depthRequests", ss.depthRequests);
    line("sync.velocityCommands", ss.velocityCommands);
    line("sync.deadlineWaits", ss.deadlineWaits);

    if (faults_) {
        const bridge::FaultStats &fs = faults_->stats();
        line("fault.sent", fs.sent);
        line("fault.received", fs.received);
        line("fault.dropped", fs.dropped);
        line("fault.corrupted", fs.corrupted);
        line("fault.reordered", fs.reordered);
        line("fault.delayed", fs.delayed);
        line("app.sensorRetries", app_->sensorRetries());
    }

    const bridge::BridgeStats &bs = bridge_->stats();
    line("bridge.mmioReads", bs.mmioReads);
    line("bridge.mmioWrites", bs.mmioWrites);
    line("bridge.rxPackets", bs.rxPackets);
    line("bridge.txPackets", bs.txPackets);
    line("bridge.rxDropped", bs.rxDropped);
    line("bridge.txBackpressure", bs.txBackpressure);

    const soc::SocStats &st = soc_->stats();
    line("soc.totalCycles", st.totalCycles);
    line("soc.cpuBusyCycles", st.cpuBusyCycles);
    line("soc.accelBusyCycles", st.accelBusyCycles);
    line("soc.ioBusyCycles", st.ioBusyCycles);
    line("soc.rxStallCycles", st.rxStallCycles);
    line("soc.accelActivityFactor", st.accelActivityFactor());
    line("soc.actionsIssued", st.actionsIssued);

    soc::EnergyModel energy;
    line("soc.energyJoules",
         energy.energyJoules(st, cfg_.soc.cpu));
    line("soc.avgPowerWatts",
         energy.averagePowerWatts(st, cfg_.soc.cpu, cfg_.soc.clockHz));
    line("app.inferences", app_->inferenceCount());
    os << "------------------------------------------------\n";
}

MissionResult
CoSimulation::run()
{
    auto t0 = std::chrono::steady_clock::now();

    double speed_sum = 0.0;
    double max_speed = 0.0;
    uint64_t speed_n = 0;
    Vec3 prev_pos = env_->kinematics().position;
    double distance = 0.0;

    bool completed = false;
    bool transport_error = false;
    std::string transport_error_msg;
    try {
        while (env_->simTime() < cfg_.maxSimSeconds) {
            stepPeriod();

            flight::VehicleState k = env_->kinematics();
            double sp = std::hypot(k.velocity.x, k.velocity.y);
            speed_sum += sp;
            max_speed = std::max(max_speed, sp);
            ++speed_n;
            distance += (k.position - prev_pos).norm();
            prev_pos = k.position;

            if (env_->missionComplete()) {
                completed = true;
                break;
            }
        }
    } catch (const bridge::TransportError &e) {
        // Graceful degradation: a dead/corrupt/stalled transport ends
        // the mission with a diagnosis, never a silent deadlock. The
        // metrics accumulated so far are still reported.
        transport_error = true;
        transport_error_msg = e.what();
        rose_warn("mission aborted on transport error: ", e.what());
    }

    auto t1 = std::chrono::steady_clock::now();

    MissionResult r;
    r.completed = completed;
    r.transportError = transport_error;
    r.transportErrorMessage = transport_error_msg;
    r.missionTime = env_->simTime();
    r.collisions = env_->collisionInfo().count;
    r.avgSpeed = speed_n ? speed_sum / double(speed_n) : 0.0;
    r.maxSpeed = max_speed;
    r.distanceTravelled = distance;
    r.inferences = app_->inferenceCount();
    r.accelActivityFactor = soc_->stats().accelActivityFactor();
    r.socStats = soc_->stats();
    r.trajectory = trajectory_;
    r.inferenceLog = app_->records();
    r.simulatedCycles = soc_->stats().totalCycles;
    r.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();

    soc::EnergyModel energy;
    r.energyJoules =
        energy.energyJoules(soc_->stats(), cfg_.soc.cpu);
    r.avgPowerWatts = energy.averagePowerWatts(
        soc_->stats(), cfg_.soc.cpu, cfg_.soc.clockHz);

    if (!r.inferenceLog.empty()) {
        double sum = 0.0;
        for (const auto &rec : r.inferenceLog)
            sum += double(rec.requestToCommand());
        r.avgInferenceLatency =
            sum / double(r.inferenceLog.size()) / cfg_.soc.clockHz;
    }
    return r;
}

} // namespace rose::core
