#include "cosim.hh"

#include <chrono>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "util/logging.hh"
#include "util/serde.hh"

namespace rose::core {

const char *
missionStatusName(MissionStatus s)
{
    switch (s) {
      case MissionStatus::Completed:
        return "completed";
      case MissionStatus::TimedOut:
        return "timed-out";
      case MissionStatus::Crashed:
        return "crashed";
      case MissionStatus::Degraded:
        return "degraded";
    }
    return "unknown";
}

CoSimulation::CoSimulation(const CosimConfig &cfg) : cfg_(cfg)
{
    // The environment frame rate must match the sync clock ratio.
    cfg_.env.frameHz = cfg_.sync.clocks.envFrameHz;
    env_ = std::make_unique<env::EnvSim>(cfg_.env);

    if (cfg_.transport == TransportKind::Tcp) {
        auto [server, client] = bridge::TcpTransport::makeLoopbackPair();
        syncEnd_ = std::move(server);
        bridgeEnd_ = std::move(client);
    } else {
        auto [a, b] = bridge::makeInProcPair();
        syncEnd_ = std::move(a);
        bridgeEnd_ = std::move(b);
    }

    if (cfg_.faults.enabled) {
        auto wrapped = std::make_unique<bridge::FaultInjectTransport>(
            std::move(syncEnd_), cfg_.faults);
        faults_ = wrapped.get();
        syncEnd_ = std::move(wrapped);
        // On a lossy link the target software must be able to recover
        // from lost sensor traffic: default its timeout to three sync
        // periods unless the caller chose one.
        if (cfg_.app.sensorTimeoutCycles == 0)
            cfg_.app.sensorTimeoutCycles = 3 * cfg_.sync.cyclesPerSync;
    }

    bridge_ = std::make_unique<bridge::RoseBridge>(*bridgeEnd_,
                                                   cfg_.bridgeCfg);
    driver_ = std::make_unique<bridge::TargetDriver>(*bridge_);
    app_ = std::make_unique<runtime::ControlApp>(*driver_, cfg_.soc,
                                                 cfg_.app);
    soc::Workload *workload = app_.get();
    if (cfg_.background.enabled) {
        backgroundLoad_ = std::make_unique<soc::BackgroundLoad>(
            cfg_.background.batchCycles, cfg_.background.idleCycles);
        timeShared_ = std::make_unique<soc::TimeSharedWorkload>(
            *app_, *backgroundLoad_, cfg_.background.fgQuantum,
            cfg_.background.bgQuantum);
        workload = timeShared_.get();
    }
    soc_ = std::make_unique<soc::SocSim>(*bridge_, *workload, cfg_.soc);
    sync_ = std::make_unique<sync::Synchronizer>(*env_, *syncEnd_,
                                                 cfg_.sync);

    sync_->configure();
    // Deliver the step-size configuration to the bridge before the
    // first period.
    bridge_->hostService();

    prevPos_ = env_->kinematics().position;
}

CoSimulation::~CoSimulation() = default;

void
CoSimulation::stepPeriod()
{
    // Algorithm 1 in lockstep: grant tokens, run the SoC through its
    // budget (the SoC side services its own bridge), then translate
    // the period's packets into environment API calls and advance the
    // environment by the matching frames.
    sync_->beginPeriod();
    soc_->runPeriod();
    sync_->endPeriod();
    ++periods_;

    flight::VehicleState k = env_->kinematics();
    double sp = std::hypot(k.velocity.x, k.velocity.y);
    speedSum_ += sp;
    maxSpeed_ = std::max(maxSpeed_, sp);
    ++speedN_;
    distance_ += (k.position - prevPos_).norm();
    prevPos_ = k.position;

    if (periods_ % cfg_.samplePeriods == 0)
        sample();

    if (cfg_.progressPeriods != 0 && cfg_.progressHook &&
        periods_ % cfg_.progressPeriods == 0)
        cfg_.progressHook(env_->simTime(), trajectory_.size());
}

void
CoSimulation::sample()
{
    TrajectorySample s;
    flight::VehicleState k = env_->kinematics();
    s.time = env_->simTime();
    s.position = k.position;
    s.yaw = k.attitude.yaw();
    s.speed = std::hypot(k.velocity.x, k.velocity.y);
    s.lateralOffset = env_->lateralOffset();
    s.collisions = env_->collisionInfo().count;
    const sync::LastCommand &cmd = sync_->lastCommand();
    if (cmd.valid) {
        s.cmdForward = cmd.forward;
        s.cmdLateral = cmd.lateral;
        s.cmdYawRate = cmd.yawRate;
    }
    trajectory_.push_back(s);
}

void
CoSimulation::printSummary(std::ostream &os) const
{
    auto line = [&os](const char *name, auto value) {
        os << std::left << std::setw(40) << name << value << "\n";
    };

    os << "---------- RoSE co-simulation summary ----------\n";
    line("sim.periods", periods_);
    line("env.simSeconds", env_->simTime());
    line("env.frames", env_->frameCount());
    line("env.collisions", env_->collisionInfo().count);

    const sync::SyncStats &ss = sync_->stats();
    line("sync.grantsSent", ss.grantsSent);
    line("sync.donesReceived", ss.donesReceived);
    line("sync.imageRequests", ss.imageRequests);
    line("sync.imuRequests", ss.imuRequests);
    line("sync.depthRequests", ss.depthRequests);
    line("sync.velocityCommands", ss.velocityCommands);
    line("sync.deadlineWaits", ss.deadlineWaits);

    if (faults_) {
        const bridge::FaultStats &fs = faults_->stats();
        line("fault.sent", fs.sent);
        line("fault.received", fs.received);
        line("fault.dropped", fs.dropped);
        line("fault.corrupted", fs.corrupted);
        line("fault.reordered", fs.reordered);
        line("fault.delayed", fs.delayed);
        line("app.sensorRetries", app_->sensorRetries());
    }

    const bridge::BridgeStats &bs = bridge_->stats();
    line("bridge.mmioReads", bs.mmioReads);
    line("bridge.mmioWrites", bs.mmioWrites);
    line("bridge.rxPackets", bs.rxPackets);
    line("bridge.txPackets", bs.txPackets);
    line("bridge.rxDropped", bs.rxDropped);
    line("bridge.txBackpressure", bs.txBackpressure);

    const soc::SocStats &st = soc_->stats();
    line("soc.totalCycles", st.totalCycles);
    line("soc.cpuBusyCycles", st.cpuBusyCycles);
    line("soc.accelBusyCycles", st.accelBusyCycles);
    line("soc.ioBusyCycles", st.ioBusyCycles);
    line("soc.rxStallCycles", st.rxStallCycles);
    line("soc.accelActivityFactor", st.accelActivityFactor());
    line("soc.actionsIssued", st.actionsIssued);

    soc::EnergyModel energy;
    line("soc.energyJoules",
         energy.energyJoules(st, cfg_.soc.cpu));
    line("soc.avgPowerWatts",
         energy.averagePowerWatts(st, cfg_.soc.cpu, cfg_.soc.clockHz));
    line("app.inferences", app_->inferenceCount());
    os << "------------------------------------------------\n";
}

MissionResult
CoSimulation::collectResult() const
{
    MissionResult r;
    r.completed = env_->missionComplete();
    if (r.completed) {
        r.status = app_->degradedIntervals().empty()
                       ? MissionStatus::Completed
                       : MissionStatus::Degraded;
    } else {
        r.status = MissionStatus::TimedOut;
        r.failureReason = "simulated-time limit reached";
    }
    r.missionTime = env_->simTime();
    r.collisions = env_->collisionInfo().count;
    r.avgSpeed = speedN_ ? speedSum_ / double(speedN_) : 0.0;
    r.maxSpeed = maxSpeed_;
    r.distanceTravelled = distance_;
    r.inferences = app_->inferenceCount();
    r.accelActivityFactor = soc_->stats().accelActivityFactor();
    r.socStats = soc_->stats();
    r.trajectory = trajectory_;
    r.inferenceLog = app_->records();
    r.degradedIntervals = app_->degradedIntervals();
    r.simulatedCycles = soc_->stats().totalCycles;

    soc::EnergyModel energy;
    r.energyJoules =
        energy.energyJoules(soc_->stats(), cfg_.soc.cpu);
    r.avgPowerWatts = energy.averagePowerWatts(
        soc_->stats(), cfg_.soc.cpu, cfg_.soc.clockHz);

    if (!r.inferenceLog.empty()) {
        double sum = 0.0;
        for (const auto &rec : r.inferenceLog)
            sum += double(rec.requestToCommand());
        r.avgInferenceLatency =
            sum / double(r.inferenceLog.size()) / cfg_.soc.clockHz;
    }
    return r;
}

MissionResult
CoSimulation::run()
{
    auto t0 = std::chrono::steady_clock::now();

    bool crashed = false;
    bool transport_error = false;
    std::string failure;
    try {
        while (env_->simTime() < cfg_.maxSimSeconds) {
            stepPeriod();
            if (env_->missionComplete())
                break;
        }
    } catch (const bridge::TransportError &e) {
        // Graceful degradation: a dead/corrupt/stalled transport ends
        // the mission with a diagnosis, never a silent deadlock. The
        // metrics accumulated so far are still reported.
        crashed = true;
        transport_error = true;
        failure = e.what();
        rose_warn("mission aborted on transport error: ", e.what());
    } catch (const bridge::PayloadError &e) {
        // A corrupted packet that survived framing but failed payload
        // validation (fault injection without the supervisor).
        crashed = true;
        failure = e.what();
        rose_warn("mission aborted on payload error: ", e.what());
    } catch (const env::DivergenceError &e) {
        // Non-finite physics state: abort with the diagnostic dump
        // rather than propagating NaNs into the metrics.
        crashed = true;
        failure = e.what();
        rose_warn("mission aborted on divergence: ", e.what());
    }

    auto t1 = std::chrono::steady_clock::now();

    MissionResult r = collectResult();
    if (crashed) {
        r.completed = false;
        r.status = MissionStatus::Crashed;
        r.failureReason = failure;
        r.transportError = transport_error;
        r.transportErrorMessage = transport_error ? failure : "";
    }
    r.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    return r;
}

bool
CoSimulation::checkpointable() const
{
    return syncEnd_->checkpointable() && bridgeEnd_->checkpointable();
}

namespace {

/** Append one tagged section (u8 tag + u32 length + payload). */
template <typename Fill>
void
putSection(StateWriter &w, CkptSection tag, Fill &&fill)
{
    StateWriter body;
    fill(body);
    w.u8(uint8_t(tag));
    w.u32(uint32_t(body.size()));
    w.bytes(body.data().data(), body.size());
}

void
saveSample(StateWriter &w, const TrajectorySample &s)
{
    w.f64(s.time);
    w.f64(s.position.x);
    w.f64(s.position.y);
    w.f64(s.position.z);
    w.f64(s.yaw);
    w.f64(s.speed);
    w.f64(s.lateralOffset);
    w.u64(s.collisions);
    w.f64(s.cmdForward);
    w.f64(s.cmdLateral);
    w.f64(s.cmdYawRate);
}

TrajectorySample
loadSample(StateReader &r)
{
    TrajectorySample s;
    s.time = r.f64();
    s.position.x = r.f64();
    s.position.y = r.f64();
    s.position.z = r.f64();
    s.yaw = r.f64();
    s.speed = r.f64();
    s.lateralOffset = r.f64();
    s.collisions = r.u64();
    s.cmdForward = r.f64();
    s.cmdLateral = r.f64();
    s.cmdYawRate = r.f64();
    return s;
}

} // namespace

Checkpoint
CoSimulation::checkpoint() const
{
    if (!checkpointable())
        throw CheckpointError(
            "transport does not support checkpointing (TCP sockets "
            "cannot be snapshotted; use the in-process transport or "
            "cold-restart recovery)");

    StateWriter w;
    putSection(w, CkptSection::Cosim, [this](StateWriter &b) {
        b.u64(periods_);
        b.f64(speedSum_);
        b.f64(maxSpeed_);
        b.u64(speedN_);
        b.f64(prevPos_.x);
        b.f64(prevPos_.y);
        b.f64(prevPos_.z);
        b.f64(distance_);
        b.u32(uint32_t(trajectory_.size()));
        for (const TrajectorySample &s : trajectory_)
            saveSample(b, s);
    });
    putSection(w, CkptSection::Env,
               [this](StateWriter &b) { env_->saveState(b); });
    putSection(w, CkptSection::Sync,
               [this](StateWriter &b) { sync_->saveState(b); });
    putSection(w, CkptSection::Soc,
               [this](StateWriter &b) { soc_->saveState(b); });
    putSection(w, CkptSection::Bridge,
               [this](StateWriter &b) { bridge_->saveState(b); });
    putSection(w, CkptSection::App,
               [this](StateWriter &b) { app_->saveState(b); });
    // The fault injector is a decorator: its own state goes into the
    // (optional) Faults section while the wrapped in-process endpoint
    // saves the actual wire queues. A faults-disabled retry can then
    // restore everything except the Faults section.
    const bridge::Transport &syncWire =
        faults_ ? faults_->inner() : *syncEnd_;
    putSection(w, CkptSection::TransportSync,
               [&syncWire](StateWriter &b) { syncWire.saveState(b); });
    putSection(w, CkptSection::TransportBridge,
               [this](StateWriter &b) { bridgeEnd_->saveState(b); });
    if (faults_)
        putSection(w, CkptSection::Faults,
                   [this](StateWriter &b) { faults_->saveState(b); });
    if (timeShared_)
        putSection(w, CkptSection::Background, [this](StateWriter &b) {
            backgroundLoad_->saveState(b);
            timeShared_->saveState(b);
        });

    Checkpoint ck;
    ck.period = periods_;
    ck.simTime = env_->simTime();
    ck.configFingerprint = configFingerprint(cfg_);
    ck.state = w.take();
    ck.stateHash = stateHashOf(ck.state);
    return ck;
}

void
CoSimulation::restore(const Checkpoint &ck)
{
    if (ck.version != Checkpoint::kVersion)
        throw CheckpointError("unsupported checkpoint version " +
                              std::to_string(ck.version));
    if (ck.configFingerprint != configFingerprint(cfg_))
        throw CheckpointError(
            "checkpoint was taken under a different mission "
            "configuration (fingerprint mismatch)");
    if (!checkpointable())
        throw CheckpointError(
            "transport does not support checkpoint restore (TCP)");

    StateReader r(ck.state);
    while (r.remaining() > 0) {
        auto tag = CkptSection(r.u8());
        uint32_t len = r.u32();
        if (len > r.remaining())
            throw SerdeError("checkpoint section overruns the blob");
        // Give each section its own bounded reader so a short section
        // cannot silently consume its successor's bytes.
        StateReader body(ck.state.data() + r.pos(), len);
        switch (tag) {
          case CkptSection::Cosim: {
            periods_ = body.u64();
            speedSum_ = body.f64();
            maxSpeed_ = body.f64();
            speedN_ = body.u64();
            prevPos_.x = body.f64();
            prevPos_.y = body.f64();
            prevPos_.z = body.f64();
            distance_ = body.f64();
            uint32_t n = body.u32();
            trajectory_.clear();
            trajectory_.reserve(n);
            for (uint32_t i = 0; i < n; ++i)
                trajectory_.push_back(loadSample(body));
            break;
          }
          case CkptSection::Env:
            env_->restoreState(body);
            break;
          case CkptSection::Sync:
            sync_->restoreState(body);
            break;
          case CkptSection::Soc:
            soc_->restoreState(body);
            break;
          case CkptSection::Bridge:
            bridge_->restoreState(body);
            break;
          case CkptSection::App:
            app_->restoreState(body);
            break;
          case CkptSection::TransportSync:
            (faults_ ? faults_->inner() : *syncEnd_).restoreState(body);
            break;
          case CkptSection::TransportBridge:
            bridgeEnd_->restoreState(body);
            break;
          case CkptSection::Faults:
            // Skipped (not an error) when this instance runs without
            // fault injection: the supervisor's Disable retry policy
            // restores a faulty run's snapshot into a clean config.
            if (faults_)
                faults_->restoreState(body);
            break;
          case CkptSection::Background:
            if (timeShared_) {
                backgroundLoad_->restoreState(body);
                timeShared_->restoreState(body);
            }
            break;
          default:
            // Unknown forward-compatible section: skip.
            break;
        }
        r.skip(len);
    }
}

} // namespace rose::core
