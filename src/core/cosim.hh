/**
 * @file
 * RoSÉ co-simulation top: wires the environment simulator, the
 * SimpleFlight-class flight controller (inside EnvSim), the RoSÉ
 * bridge, the synchronizer, the SoC cycle engine, and the
 * companion-computer application into one lockstep co-simulation
 * (Figures 3 and 5), and runs missions to produce the metrics the
 * evaluation section reports.
 *
 * This is the library's primary public entry point; see
 * examples/quickstart.cc.
 */

#ifndef ROSE_CORE_COSIM_HH
#define ROSE_CORE_COSIM_HH

#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "bridge/fault_inject.hh"
#include "bridge/rose_bridge.hh"
#include "bridge/target_driver.hh"
#include "bridge/transport.hh"
#include "core/checkpoint.hh"
#include "env/envsim.hh"
#include "runtime/control_app.hh"
#include "soc/config.hh"
#include "soc/energy.hh"
#include "soc/multitenant.hh"
#include "soc/socsim.hh"
#include "sync/synchronizer.hh"

namespace rose::core {

/** Transport selection between synchronizer and bridge. */
enum class TransportKind
{
    InProcess, ///< default: shared-memory channel
    Tcp,       ///< real loopback TCP sockets (the paper's transport)
};

/** Optional co-tenant sharing the companion computer (Section 1's
 *  resource-contention motivation). */
struct BackgroundConfig
{
    bool enabled = false;
    /** Work per background batch [cycles]; always-busy when idle=0. */
    Cycles batchCycles = 200'000;
    Cycles idleCycles = 0;
    /** Scheduler quanta: background share = bg / (fg + bg). */
    Cycles fgQuantum = 100'000;
    Cycles bgQuantum = 100'000;
};

/** Full co-simulation configuration. */
struct CosimConfig
{
    env::EnvConfig env;
    soc::SocConfig soc = soc::configA();
    sync::SyncConfig sync;
    runtime::AppConfig app;
    BackgroundConfig background;
    bridge::BridgeConfig bridgeCfg;
    TransportKind transport = TransportKind::InProcess;
    /**
     * Transport fault injection (drop/corrupt/reorder/delay) applied to
     * the synchronizer↔bridge link. When enabled, the control app's
     * sensor timeout defaults to three sync periods (if not set
     * explicitly) so the target software recovers from lost packets.
     */
    bridge::FaultConfig faults;

    /** Stop after this much environment time [s]. */
    double maxSimSeconds = 60.0;

    /** Record one trajectory sample every N sync periods. */
    uint64_t samplePeriods = 1;

    /**
     * Progress observer: when set (and progressPeriods > 0), called
     * every progressPeriods sync periods with the simulated time and
     * the sample count so far. Purely observational — it does not
     * influence execution, is not part of the config fingerprint
     * (checkpoint.cc serializes selected fields only), and must not
     * throw. rosed uses it to push Progress events to clients while
     * their missions run.
     */
    uint64_t progressPeriods = 0;
    std::function<void(double simTimeSeconds, uint64_t samples)>
        progressHook;
};

/** One trajectory sample. */
struct TrajectorySample
{
    double time = 0.0;
    Vec3 position;
    double yaw = 0.0;
    double speed = 0.0;
    double lateralOffset = 0.0;
    uint64_t collisions = 0;
    double cmdForward = 0.0;
    double cmdLateral = 0.0;
    double cmdYawRate = 0.0;
};

/**
 * How a mission ended. `Degraded` still reached the goal, but spent
 * part of the flight under the classical fallback controller.
 */
enum class MissionStatus
{
    Completed, ///< reached the corridor end inside the time limit
    TimedOut,  ///< hit maxSimSeconds without finishing
    Crashed,   ///< aborted on an exception (transport, divergence, ...)
    Degraded,  ///< completed, but with degraded-control intervals
};

/** Human-readable status name ("completed", "crashed", ...). */
const char *missionStatusName(MissionStatus s);

/** Mission outcome and metrics. */
struct MissionResult
{
    bool completed = false;
    /** Structured outcome; `completed` above is kept for callers that
     *  predate it (Degraded also counts as completed). */
    MissionStatus status = MissionStatus::TimedOut;
    /** Diagnostic for Crashed/TimedOut outcomes (empty otherwise). */
    std::string failureReason;
    /** The run aborted on a bridge::TransportError (dead peer, corrupt
     *  wire, sync deadline) rather than finishing or timing out. */
    bool transportError = false;
    /** Diagnostic from the transport failure (empty otherwise). */
    std::string transportErrorMessage;
    /** Environment time at completion (or at timeout) [s]. */
    double missionTime = 0.0;
    uint64_t collisions = 0;
    double avgSpeed = 0.0;
    double maxSpeed = 0.0;
    double distanceTravelled = 0.0;

    uint64_t inferences = 0;
    /** Mean image-request-to-command latency [s] (Figure 16c). */
    double avgInferenceLatency = 0.0;
    /** Accelerator activity factor (Figure 13). */
    double accelActivityFactor = 0.0;
    /** Full SoC engine counters (cycle-exact; parity-tested across
     *  serial and batched execution). */
    soc::SocStats socStats;

    std::vector<TrajectorySample> trajectory;
    std::vector<runtime::InferenceRecord> inferenceLog;
    /** Intervals flown under the classical fallback controller. */
    std::vector<runtime::DegradedInterval> degradedIntervals;

    /** Mission energy of the companion SoC [J] and its average power
     *  [W] under the default soc::EnergyModel. */
    double energyJoules = 0.0;
    double avgPowerWatts = 0.0;

    /** Wall-clock cost of the run and simulated cycles (Figure 15). */
    double wallSeconds = 0.0;
    Cycles simulatedCycles = 0;

    /** Effective simulation rate [simulated MHz of the SoC clock]. */
    double
    simulationRateMHz() const
    {
        return wallSeconds > 0.0
                   ? double(simulatedCycles) / wallSeconds / 1e6
                   : 0.0;
    }
};

/** The co-simulation. */
class CoSimulation
{
  public:
    explicit CoSimulation(const CosimConfig &cfg);
    ~CoSimulation();

    CoSimulation(const CoSimulation &) = delete;
    CoSimulation &operator=(const CoSimulation &) = delete;

    /** Run one synchronization period (Algorithm 1 body). */
    void stepPeriod();

    /**
     * Run until mission completion or the simulated-time limit.
     *
     * @return metrics of the mission.
     */
    MissionResult run();

    /**
     * Build a MissionResult from the state accumulated so far without
     * running anything — what run() returns, minus wall-clock time.
     * The supervisor uses this to report partial metrics after an
     * unrecoverable failure.
     */
    MissionResult collectResult() const;

    /** True when the transports support in-memory checkpointing
     *  (in-process channel yes, TCP no). */
    bool checkpointable() const;

    /**
     * Snapshot the full co-simulation state. Throws CheckpointError
     * when the transport cannot be checkpointed (TCP).
     */
    Checkpoint checkpoint() const;

    /**
     * Restore a snapshot previously taken from an identically
     * configured co-simulation (configFingerprint must match; fault /
     * transport / time-limit knobs may differ). Resuming afterwards is
     * bit-identical to never having stopped. Throws CheckpointError on
     * version/config mismatch and SerdeError on corrupt state.
     */
    void restore(const Checkpoint &ck);

    // --- component access (read-mostly; for tests and custom loops) --
    env::EnvSim &environment() { return *env_; }
    soc::SocSim &socSim() { return *soc_; }
    sync::Synchronizer &synchronizer() { return *sync_; }
    bridge::RoseBridge &bridge() { return *bridge_; }
    runtime::ControlApp &app() { return *app_; }
    const CosimConfig &config() const { return cfg_; }

    /** Fault-injection stats, or nullptr when faults are disabled. */
    const bridge::FaultStats *faultStats() const
    {
        return faults_ ? &faults_->stats() : nullptr;
    }

    /** Fault injector, or nullptr when faults are disabled. The
     *  supervisor reseeds it between retries. */
    bridge::FaultInjectTransport *faultInjector() { return faults_; }

    /** Periods executed so far. */
    uint64_t periods() const { return periods_; }

    /**
     * Write a gem5-style stats summary of all components (sync,
     * bridge, SoC engine, energy) to the stream.
     */
    void printSummary(std::ostream &os) const;

  private:
    void sample();

    CosimConfig cfg_;
    std::unique_ptr<env::EnvSim> env_;
    bridge::FaultInjectTransport *faults_ = nullptr; ///< owned via syncEnd_
    std::unique_ptr<bridge::Transport> syncEnd_;
    std::unique_ptr<bridge::Transport> bridgeEnd_;
    std::unique_ptr<bridge::RoseBridge> bridge_;
    std::unique_ptr<bridge::TargetDriver> driver_;
    std::unique_ptr<runtime::ControlApp> app_;
    std::unique_ptr<soc::BackgroundLoad> backgroundLoad_;
    std::unique_ptr<soc::TimeSharedWorkload> timeShared_;
    std::unique_ptr<soc::SocSim> soc_;
    std::unique_ptr<sync::Synchronizer> sync_;

    uint64_t periods_ = 0;
    std::vector<TrajectorySample> trajectory_;

    // Mission-metric accumulators, updated per period so they survive
    // checkpoint/restore (they live in the Cosim checkpoint section).
    double speedSum_ = 0.0;
    double maxSpeed_ = 0.0;
    uint64_t speedN_ = 0;
    Vec3 prevPos_;
    double distance_ = 0.0;
};

} // namespace rose::core

#endif // ROSE_CORE_COSIM_HH
