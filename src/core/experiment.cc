#include "experiment.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/csv.hh"

namespace rose::core {

CosimConfig
MissionSpec::toConfig() const
{
    CosimConfig cfg;
    cfg.env.worldName = world;
    cfg.env.vehicleName = vehicle;
    cfg.env.initialYawDeg = initialYawDeg;
    cfg.env.seed = seed;
    if (vehicle == "rover" || vehicle == "car") {
        // The classifier's learned geometry must match the rover's
        // camera mast height.
        cfg.app.estimator.camAltitude = cfg.env.rover.sensorHeight;
    }
    cfg.soc = soc::configByName(socName);
    cfg.app.mode = mode;
    cfg.app.modelDepth = modelDepth;
    cfg.app.policy.forwardVelocity = velocity;
    cfg.app.seed = seed * 7919 + 13;
    cfg.sync.cyclesPerSync = syncGranularity;
    cfg.maxSimSeconds = maxSimSeconds;
    cfg.faults = faults;
    cfg.app.degraded.enabled = degradedMode;
    return cfg;
}

std::string
MissionSpec::label() const
{
    std::ostringstream os;
    os << world << "/cfg" << socName << "/ResNet" << modelDepth << "@"
       << velocity << "mps";
    if (initialYawDeg != 0.0)
        os << "/yaw" << initialYawDeg;
    if (mode == runtime::RuntimeMode::Dynamic)
        os << "/dynamic";
    return os.str();
}

MissionResult
runMission(const MissionSpec &spec)
{
    CoSimulation sim(spec.toConfig());
    return sim.run();
}

namespace {

void
emitTrajectoryCsv(CsvWriter &csv,
                  const std::vector<TrajectorySample> &trajectory)
{
    for (const TrajectorySample &s : trajectory) {
        csv.row(s.time, s.position.x, s.position.y, s.position.z, s.yaw,
                s.speed, s.lateralOffset, s.collisions, s.cmdForward,
                s.cmdLateral, s.cmdYawRate);
    }
}

const std::vector<std::string> &
trajectoryHeader()
{
    static const std::vector<std::string> header{
        "t", "x", "y", "z", "yaw", "speed", "offset",
        "collisions", "cmd_fwd", "cmd_lat", "cmd_yaw"};
    return header;
}

} // namespace

void
writeTrajectoryCsv(const std::string &path, const MissionResult &r)
{
    CsvWriter csv(path, trajectoryHeader());
    emitTrajectoryCsv(csv, r.trajectory);
}

std::string
trajectoryCsvString(const MissionResult &r)
{
    return trajectoryCsvString(r.trajectory);
}

std::string
trajectoryCsvString(const std::vector<TrajectorySample> &trajectory)
{
    // Hot path: this string is rendered once per served result and
    // again by clients verifying fetches, so the ostringstream-per-
    // cell CsvWriter is too slow here. printf's %.6g produces the
    // same bytes as ostream's default (defaultfloat, precision 6)
    // formatting, and no numeric cell ever needs CSV quoting, so a
    // single snprintf per row stays byte-identical to the CsvWriter
    // output (test_golden cross-checks the two paths).
    static const std::string headerLine = [] {
        std::string h;
        for (const std::string &col : trajectoryHeader()) {
            if (!h.empty())
                h += ',';
            h += col;
        }
        h += '\n';
        return h;
    }();

    std::string out;
    out.reserve(headerLine.size() + trajectory.size() * 96);
    out += headerLine;
    char row[256];
    for (const TrajectorySample &s : trajectory) {
        int n = std::snprintf(
            row, sizeof row,
            "%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%llu,%.6g,%.6g,%.6g\n",
            s.time, s.position.x, s.position.y, s.position.z, s.yaw,
            s.speed, s.lateralOffset,
            (unsigned long long)s.collisions, s.cmdForward,
            s.cmdLateral, s.cmdYawRate);
        out.append(row, size_t(n));
    }
    return out;
}

double
MpcMissionResult::avgLatencySeconds(double clock_hz) const
{
    if (log.empty())
        return 0.0;
    double sum = 0.0;
    for (const runtime::MpcRecord &rec : log)
        sum += double(rec.requestToCommand());
    return sum / double(log.size()) / clock_hz;
}

MpcMissionResult
runMpcMission(const MissionSpec &spec, const runtime::MpcConfig &mpc)
{
    CosimConfig cfg = spec.toConfig();

    env::EnvSim env(cfg.env);
    auto [sync_end, bridge_end] = bridge::makeInProcPair();
    bridge::RoseBridge rose_bridge(*bridge_end, cfg.bridgeCfg);
    bridge::TargetDriver driver(rose_bridge);

    runtime::MpcConfig mcfg = mpc;
    mcfg.forwardVelocity = spec.velocity;
    mcfg.estimator = cfg.app.estimator;
    runtime::MpcApp app(driver, cfg.soc, mcfg);
    soc::SocSim soc_sim(rose_bridge, app, cfg.soc);
    sync::Synchronizer synchronizer(env, *sync_end, cfg.sync);
    synchronizer.configure();
    rose_bridge.hostService();

    MpcMissionResult r;
    double speed_sum = 0.0;
    uint64_t speed_n = 0;
    while (env.simTime() < cfg.maxSimSeconds) {
        synchronizer.beginPeriod();
        soc_sim.runPeriod();
        synchronizer.endPeriod();
        flight::VehicleState k = env.kinematics();
        speed_sum += std::hypot(k.velocity.x, k.velocity.y);
        ++speed_n;
        if (env.missionComplete()) {
            r.completed = true;
            break;
        }
    }
    r.missionTime = env.simTime();
    r.collisions = env.collisionInfo().count;
    r.avgSpeed = speed_n ? speed_sum / double(speed_n) : 0.0;
    r.log = app.records();
    r.socStats = soc_sim.stats();
    return r;
}

std::string
missionTimeString(const MissionResult &r)
{
    if (!r.completed)
        return "DNF";
    std::ostringstream os;
    os.precision(2);
    os << std::fixed << r.missionTime << "s";
    return os.str();
}

} // namespace rose::core
