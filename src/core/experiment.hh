/**
 * @file
 * Shared experiment drivers for the evaluation harness (bench/): a
 * declarative mission spec, CSV emission of trajectories and series,
 * and paper-style table printing. Every bench binary regenerating a
 * table/figure of the paper builds on these.
 */

#ifndef ROSE_CORE_EXPERIMENT_HH
#define ROSE_CORE_EXPERIMENT_HH

#include <string>

#include "core/cosim.hh"
#include "runtime/mpc_app.hh"

namespace rose::core {

/** Declarative description of one closed-loop mission. */
struct MissionSpec
{
    std::string world = "tunnel";
    /** "quadrotor" (default) or "rover" (the artifact's car option). */
    std::string vehicle = "quadrotor";
    std::string socName = "A";
    int modelDepth = 14;
    double velocity = 3.0;
    double initialYawDeg = 0.0;
    Cycles syncGranularity = 10 * kMegaCycles;
    runtime::RuntimeMode mode = runtime::RuntimeMode::Static;
    uint64_t seed = 1;
    double maxSimSeconds = 60.0;
    /** Transport fault injection for resilience sweeps (off by
     *  default; copied verbatim into CosimConfig::faults). */
    bridge::FaultConfig faults;
    /** Enable the classical-fallback (degraded-mode) controller. */
    bool degradedMode = false;

    /** Construct the full co-simulation configuration. */
    CosimConfig toConfig() const;

    /** One-line description for table rows/logs. */
    std::string label() const;
};

/** Run one mission to completion/timeout. */
MissionResult runMission(const MissionSpec &spec);

/**
 * Write a mission's trajectory as CSV
 * (columns: t,x,y,z,yaw,speed,offset,collisions,cmd_fwd,cmd_lat,cmd_yaw).
 */
void writeTrajectoryCsv(const std::string &path, const MissionResult &r);

/**
 * The same CSV as a string. This is the golden-trace canonical form:
 * tests/test_golden.cc hashes it (util/hash.hh FNV-1a), so its column
 * set and formatting are part of the regression surface — format
 * changes require regenerating the checked-in golden hashes.
 */
std::string trajectoryCsvString(const MissionResult &r);

/**
 * The canonical CSV of a bare sample vector — what a serve client
 * uses to re-encode a binary-streamed trajectory before checking its
 * hash against the server's.
 */
std::string
trajectoryCsvString(const std::vector<TrajectorySample> &trajectory);

/** Format seconds as "12.34s" or "DNF" for incomplete missions. */
std::string missionTimeString(const MissionResult &r);

/** Outcome of a classical-MPC mission (Section 6 workload). */
struct MpcMissionResult
{
    bool completed = false;
    double missionTime = 0.0;
    uint64_t collisions = 0;
    double avgSpeed = 0.0;
    std::vector<runtime::MpcRecord> log;
    soc::SocStats socStats;

    /** Mean request-to-command latency [s]. */
    double avgLatencySeconds(double clock_hz = 1e9) const;
};

/**
 * Run a mission with the vision-aided MPC companion application
 * instead of the DNN controller (same environment, bridge,
 * synchronizer, and SoC engine; only the target software differs).
 * The spec's modelDepth is ignored.
 */
MpcMissionResult runMpcMission(const MissionSpec &spec,
                               const runtime::MpcConfig &mpc = {});

} // namespace rose::core

#endif // ROSE_CORE_EXPERIMENT_HH
