#include "hostmodel.hh"

namespace rose::core {

std::vector<Cycles>
granularitySweep()
{
    return {10 * kMegaCycles, 20 * kMegaCycles, 50 * kMegaCycles,
            100 * kMegaCycles, 200 * kMegaCycles, 400 * kMegaCycles};
}

} // namespace rose::core
