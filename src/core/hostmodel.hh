/**
 * @file
 * Host-deployment throughput model for Figure 15.
 *
 * On a real deployment (Table 4) the simulation rate is bounded by two
 * effects the paper measures: the maximum FPGA emulation rate, and the
 * per-synchronization host overhead (the FireSim scheduler polling the
 * RoSÉ bridge, TCP round trips, AirSim frame batching). For a
 * synchronization granularity of G target cycles:
 *
 *     wall_time(G)  = G / R_fpga + T_sync
 *     throughput(G) = G / wall_time(G)
 *
 * so fine granularities are sync-overhead-bound while coarse
 * granularities approach the FPGA's native rate — the two bottleneck
 * regimes of Figure 15. We have no FPGA here, so the parameters
 * default to the paper's deployment class; the in-process co-sim's
 * own wall-clock rate is measured separately by MissionResult.
 */

#ifndef ROSE_CORE_HOSTMODEL_HH
#define ROSE_CORE_HOSTMODEL_HH

#include <vector>

#include "util/units.hh"

namespace rose::core {

/** Deployment parameters (Table 4-class hardware). */
struct HostModel
{
    /** Native FPGA emulation rate of the SoC design [Hz]. */
    double fpgaRateHz = 40.0e6;
    /** Per-synchronization host overhead [s]: bridge polling, packet
     *  round trip, environment frame batching. */
    double syncOverheadSeconds = 0.12;

    /** Wall-clock time to simulate one sync period of G cycles [s]. */
    double
    periodWallSeconds(Cycles granularity) const
    {
        return double(granularity) / fpgaRateHz + syncOverheadSeconds;
    }

    /** Achieved simulation throughput [simulated Hz]. */
    double
    throughputHz(Cycles granularity) const
    {
        return double(granularity) / periodWallSeconds(granularity);
    }

    /** Fraction of wall time spent in sync overhead (the bottleneck
     *  indicator of Figure 15). */
    double
    syncOverheadFraction(Cycles granularity) const
    {
        return syncOverheadSeconds / periodWallSeconds(granularity);
    }
};

/** The granularity sweep of Figures 15/16: 10M..400M cycles. */
std::vector<Cycles> granularitySweep();

} // namespace rose::core

#endif // ROSE_CORE_HOSTMODEL_HH
