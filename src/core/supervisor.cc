#include "supervisor.hh"

#include <chrono>
#include <stdexcept>

#include "util/logging.hh"
#include "util/serde.hh"

namespace rose::core {

namespace {

/** Golden-ratio increment: decorrelates per-retry injector seeds. */
constexpr uint64_t kSeedIncrement = 0x9e3779b97f4a7c15ULL;

} // namespace

MissionSupervisor::MissionSupervisor(const CosimConfig &cfg,
                                     const SupervisorConfig &sup)
    : cfg_(cfg), sup_(sup),
      ring_(sup.checkpointRingSize ? sup.checkpointRingSize : 1)
{
}

MissionSupervisor::~MissionSupervisor() = default;

void
MissionSupervisor::note(uint64_t period, std::string what)
{
    rose_inform("supervisor [period ", period, "]: ", what);
    stats_.events.push_back({period, std::move(what)});
}

void
MissionSupervisor::rebuild()
{
    sim_ = std::make_unique<CoSimulation>(cfg_);
}

void
MissionSupervisor::maybeCheckpoint()
{
    if (sup_.checkpointPeriods == 0 || !sim_->checkpointable())
        return;
    if (sim_->periods() % sup_.checkpointPeriods != 0)
        return;
    ring_.push(sim_->checkpoint());
    ++stats_.checkpointsTaken;
    if (!sup_.checkpointPath.empty())
        writeCheckpointFile(sup_.checkpointPath, ring_.latest());
}

bool
MissionSupervisor::adjustForRetry(bool transport_failure)
{
    bool cold = false;
    if (sup_.faultPolicy == FaultRetryPolicy::Disable &&
        cfg_.faults.enabled) {
        // The injector is baked into the transport stack at
        // construction; dropping it means rebuilding. The checkpoint's
        // Faults section is simply skipped on restore.
        cfg_.faults.enabled = false;
        cold = true;
        note(sim_ ? sim_->periods() : 0,
             "fault injection disabled for retry");
    }
    if (transport_failure && cfg_.transport == TransportKind::Tcp &&
        sup_.fallbackToInProc) {
        cfg_.transport = TransportKind::InProcess;
        cold = true;
        note(sim_ ? sim_->periods() : 0,
             "transport fallback: tcp -> in-process");
    }
    return cold;
}

MissionResult
MissionSupervisor::run()
{
    auto t0 = std::chrono::steady_clock::now();
    auto elapsed = [&t0] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    // Cross-process warm start: seed the ring from a snapshot a
    // previous incarnation persisted and restore it, so the mission
    // continues from where that process died instead of replaying
    // from zero. Restore is bit-exact (trajectory-so-far included),
    // so the final trace is identical to an uninterrupted run.
    if (!sup_.resumeFromPath.empty()) {
        try {
            Checkpoint ck = readCheckpointFile(sup_.resumeFromPath);
            rebuild();
            if (sim_->checkpointable()) {
                sim_->restore(ck);
                ring_.push(std::move(ck));
                ++stats_.diskResumes;
                note(sim_->periods(),
                     "resumed from disk checkpoint " +
                         sup_.resumeFromPath);
            } else {
                note(0, "disk checkpoint ignored: transport is not "
                        "checkpointable; cold start");
            }
        } catch (const std::exception &e) {
            note(0, std::string("disk resume unavailable (") +
                        e.what() + "); cold start");
            sim_.reset();
        }
    }

    std::string last_failure;
    while (true) {
        bool transport_failure = false;
        try {
            if (!sim_)
                rebuild();

            while (sim_->environment().simTime() < cfg_.maxSimSeconds) {
                if (sup_.wallClockBudgetSeconds > 0.0 &&
                    elapsed() > sup_.wallClockBudgetSeconds) {
                    note(sim_->periods(), "wall-clock budget exhausted");
                    MissionResult r = sim_->collectResult();
                    r.completed = false;
                    r.status = MissionStatus::TimedOut;
                    r.failureReason =
                        "wall-clock budget exhausted (" +
                        std::to_string(sup_.wallClockBudgetSeconds) +
                        " s)";
                    r.wallSeconds = elapsed();
                    return r;
                }

                sim_->stepPeriod();

                if (sup_.positionBoundM > 0.0) {
                    Vec3 p = sim_->environment().kinematics().position;
                    if (p.norm() > sup_.positionBoundM)
                        throw env::DivergenceError(
                            "position out of bounds: |p| = " +
                            std::to_string(p.norm()) + " m exceeds " +
                            std::to_string(sup_.positionBoundM) + " m");
                }

                maybeCheckpoint();

                if (sim_->environment().missionComplete())
                    break;
            }

            MissionResult r = sim_->collectResult();
            r.wallSeconds = elapsed();
            return r;
        } catch (const bridge::TransportError &e) {
            transport_failure = true;
            last_failure = std::string("transport error: ") + e.what();
        } catch (const bridge::PayloadError &e) {
            last_failure = std::string("payload error: ") + e.what();
        } catch (const env::DivergenceError &e) {
            last_failure = std::string("divergence: ") + e.what();
        } catch (const SerdeError &e) {
            last_failure = std::string("serde error: ") + e.what();
        } catch (const CheckpointError &e) {
            last_failure = std::string("checkpoint error: ") + e.what();
        } catch (const std::invalid_argument &e) {
            // Bad configuration (unknown world/vehicle/SoC): retrying
            // cannot help.
            MissionResult r;
            r.status = MissionStatus::Crashed;
            r.failureReason =
                std::string("configuration error: ") + e.what();
            r.wallSeconds = elapsed();
            return r;
        }

        rose_warn("supervisor caught mission failure: ", last_failure);

        if (stats_.retriesUsed >= sup_.maxRetries) {
            note(sim_ ? sim_->periods() : 0,
                 "retries exhausted: " + last_failure);
            MissionResult r =
                sim_ ? sim_->collectResult() : MissionResult{};
            r.completed = false;
            r.status = MissionStatus::Crashed;
            r.failureReason = last_failure + " (after " +
                              std::to_string(stats_.retriesUsed) +
                              " recovery attempts)";
            r.wallSeconds = elapsed();
            return r;
        }
        ++stats_.retriesUsed;

        bool cold = adjustForRetry(transport_failure);
        try {
            if (cold)
                sim_.reset();
            if (!sim_)
                rebuild();

            // Prefer a warm restore from the ring; fall back through
            // older snapshots if the newest refuses to load, and to a
            // cold restart when none is usable.
            bool restored = false;
            while (!ring_.empty() && sim_->checkpointable()) {
                try {
                    sim_->restore(ring_.latest());
                    restored = true;
                    ++stats_.restores;
                    note(sim_->periods(), "restored checkpoint @ " +
                                              std::to_string(
                                                  ring_.latest().period) +
                                              " after " + last_failure);
                    break;
                } catch (const std::exception &e) {
                    note(sim_->periods(),
                         std::string("checkpoint restore failed, "
                                     "dropping snapshot: ") +
                             e.what());
                    ring_.dropLatest();
                }
            }
            if (!restored) {
                // The live instance went through a failure and cannot
                // be rewound; restart the mission from scratch.
                if (!cold)
                    sim_.reset();
                if (!sim_)
                    rebuild();
                ++stats_.coldRestarts;
                note(0, "cold restart after " + last_failure);
            }

            if (sup_.faultPolicy == FaultRetryPolicy::RerollSeed) {
                if (bridge::FaultInjectTransport *f =
                        sim_->faultInjector()) {
                    uint64_t seed =
                        cfg_.faults.seed +
                        kSeedIncrement * uint64_t(stats_.retriesUsed);
                    f->reseed(seed);
                    note(sim_->periods(),
                         "fault injector reseeded for retry " +
                             std::to_string(stats_.retriesUsed));
                }
            }
        } catch (const std::exception &e) {
            // Recovery itself failed (e.g. transport rebuild error):
            // report what we know rather than throwing out of run().
            MissionResult r =
                sim_ ? sim_->collectResult() : MissionResult{};
            r.completed = false;
            r.status = MissionStatus::Crashed;
            r.failureReason = last_failure +
                              "; recovery failed: " + e.what();
            r.wallSeconds = elapsed();
            return r;
        }
    }
}

} // namespace rose::core
