/**
 * @file
 * Mission supervisor: a watchdog-and-retry harness around
 * CoSimulation::run() (the resilience layer's control plane).
 *
 * Long fault-injection campaigns die in uninteresting ways: a dropped
 * packet stalls the lockstep, a corrupted payload throws mid-decode,
 * injected turbulence drives the physics non-finite. Unsupervised,
 * each such event forfeits the whole mission (and with it the wall
 * hours already simulated). The supervisor instead:
 *
 *  - snapshots the full co-simulation every N sync periods into a
 *    small in-memory ring (optionally mirrored to disk);
 *  - watches for hangs (the PR-1 sync deadline turns a dead transport
 *    into an exception; a wall-clock budget backstops everything
 *    else) and divergence (non-finite physics state throws
 *    env::DivergenceError; a position-bound check catches the
 *    finite-but-absurd case);
 *  - on failure, restores the latest checkpoint and resumes, with a
 *    configurable fault-injector policy (keep the RNG, reroll the
 *    seed so the same packet is not re-dropped deterministically, or
 *    disable injection outright) and bounded retries;
 *  - when the transport itself cannot be checkpointed (TCP), falls
 *    back to a cold restart, optionally switching to the in-process
 *    transport.
 *
 * Checkpoint restore is bit-exact, so a supervised run that never
 * trips a watchdog produces exactly the unsupervised trajectory — the
 * golden-trace tests rely on this.
 */

#ifndef ROSE_CORE_SUPERVISOR_HH
#define ROSE_CORE_SUPERVISOR_HH

#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.hh"
#include "core/cosim.hh"

namespace rose::core {

/** What to do to the fault injector after a restore. */
enum class FaultRetryPolicy
{
    Keep,       ///< keep the injector RNG where the snapshot left it
    RerollSeed, ///< reseed per retry so the failure is not replayed
    Disable,    ///< rebuild without fault injection (clean retry)
};

/** Supervisor knobs. */
struct SupervisorConfig
{
    /** Snapshot cadence [sync periods]; 0 disables checkpointing
     *  (every failure then becomes a cold restart). */
    uint64_t checkpointPeriods = 50;
    /** In-memory snapshots retained (oldest evicted). */
    size_t checkpointRingSize = 3;
    /** Recovery attempts before giving up and reporting Crashed. */
    int maxRetries = 3;
    FaultRetryPolicy faultPolicy = FaultRetryPolicy::RerollSeed;
    /** On a transport failure under TCP, retry on the in-process
     *  channel instead (TCP state cannot be checkpointed). */
    bool fallbackToInProc = true;
    /** Divergence guard: abort-and-recover when the vehicle strays
     *  further than this from the origin [m]; 0 disables. */
    double positionBoundM = 1000.0;
    /** Wall-clock budget for the whole supervised mission [s]; the
     *  mission is cut off (TimedOut) when exceeded; 0 disables. */
    double wallClockBudgetSeconds = 0.0;
    /** When non-empty, the latest checkpoint is also persisted here
     *  (overwritten in place) for post-mortem or cross-process
     *  resume. */
    std::string checkpointPath;
    /**
     * When non-empty, run() first tries to resume from this ROSECKPT
     * file (a previous incarnation's persisted snapshot — rosed's
     * crash recovery uses the per-job checkpoint it wrote before
     * dying). Any problem — missing file, corrupt bytes, config
     * fingerprint mismatch, non-checkpointable transport — falls back
     * to a normal cold start; resume never fails a mission.
     */
    std::string resumeFromPath;
};

/** One recovery-relevant event, for logs and tests. */
struct SupervisorEvent
{
    uint64_t period = 0; ///< sync periods executed when it happened
    std::string what;    ///< e.g. "restore: transport error: ..."
};

/** Counters describing what the supervisor had to do. */
struct SupervisorStats
{
    uint64_t checkpointsTaken = 0;
    uint64_t restores = 0;     ///< warm recoveries from the ring
    uint64_t coldRestarts = 0; ///< rebuilds (no usable checkpoint)
    uint64_t diskResumes = 0;  ///< warm starts from resumeFromPath
    int retriesUsed = 0;
    std::vector<SupervisorEvent> events;
};

/**
 * Runs one mission under supervision. Singleshot: construct, call
 * run() once, inspect stats().
 */
class MissionSupervisor
{
  public:
    MissionSupervisor(const CosimConfig &cfg,
                      const SupervisorConfig &sup = {});
    ~MissionSupervisor();

    /**
     * Run the mission to completion, recovering from failures per the
     * configured policy. Never throws on mission failure: retries
     * exhausted (or unrecoverable setup errors) yield a Crashed
     * result carrying the last failure reason.
     */
    MissionResult run();

    const SupervisorStats &stats() const { return stats_; }

    /** The supervised co-simulation (valid after run() started; for
     *  tests). */
    CoSimulation *simulation() { return sim_.get(); }

  private:
    void note(uint64_t period, std::string what);
    void maybeCheckpoint();
    /** Apply the fault/transport retry policy. @return true when the
     *  simulation must be rebuilt (cold path). */
    bool adjustForRetry(bool transport_failure);
    void rebuild();

    CosimConfig cfg_;
    SupervisorConfig sup_;
    CheckpointRing ring_;
    SupervisorStats stats_;
    std::unique_ptr<CoSimulation> sim_;
};

} // namespace rose::core

#endif // ROSE_CORE_SUPERVISOR_HH
