#include "classifier.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dnn/layers.hh"
#include "util/geometry.hh"
#include "util/logging.hh"

namespace rose::dnn {

int
HeadOutput::argmax() const
{
    return int(std::max_element(probs.begin(), probs.end()) -
               probs.begin());
}

namespace {

/**
 * Expected column profile for a wall at perpendicular distance d_perp
 * seen through a column at camera-relative azimuth alpha, mirroring
 * the renderer's shading model (learned by the trained network).
 * Writes @p height values to @p out.
 */
void
expectedColumn(double d_perp, double alpha, int height, double focal,
               const EstimatorConfig &cfg, float *out)
{
    double mid = height / 2.0 - 0.5;
    double d_shade = d_perp / std::max(0.2, std::cos(alpha));
    double top = mid - focal * (cfg.wallHeight - cfg.camAltitude) / d_perp;
    double bot = mid + focal * cfg.camAltitude / d_perp;
    double wall = 0.25 + 0.6 / (1.0 + 0.12 * d_shade);
    for (int r = 0; r < height; ++r) {
        if (r < top) {
            out[size_t(r)] = 0.85f;
        } else if (r > bot) {
            double floor_d =
                focal * cfg.camAltitude / std::max(0.5, double(r) - mid);
            out[size_t(r)] =
                float(0.10 + 0.25 / (1.0 + 0.2 * floor_d));
        } else {
            out[size_t(r)] = float(wall);
        }
    }
}

/** Open-corridor profile (no wall within range). */
void
openColumn(int height, float *out)
{
    double mid = height / 2.0 - 0.5;
    for (int r = 0; r < height; ++r)
        out[size_t(r)] = r < mid ? 0.85f : 0.15f;
}

/** SSD against a pre-widened contiguous column (see PoseScratch::
 *  colBuf). float->double conversion is exact, so hoisting it out of
 *  the sweep leaves every difference and sum bit-identical. */
double
ssd(const float *profile, int height, const double *col)
{
    double sum = 0.0;
    for (int r = 0; r < height; ++r) {
        double d = double(profile[size_t(r)]) - col[size_t(r)];
        sum += d * d;
    }
    return sum;
}

/**
 * (Re)build the cached geometry in @p s for the given key: per-column
 * azimuths, candidate distances, and the whole template bank. The
 * templates depend only on geometry, so fitting a frame reduces to
 * SSD sweeps over precomputed profiles.
 */
void
rebuildScratch(PoseScratch &s, int width, int height,
               const EstimatorConfig &cfg, double focal)
{
    s.width = width;
    s.height = height;
    s.cfg = cfg;

    s.alpha.resize(size_t(width));
    for (int c = 0; c < width; ++c) {
        double u = width / 2.0 - 0.5 - c;
        s.alpha[size_t(c)] = std::atan2(u, focal);
    }

    // Candidate perpendicular distances, log-spaced.
    s.candidates.clear();
    for (double d = 0.6; d < cfg.maxDepth; d *= 1.22)
        s.candidates.push_back(d);

    s.profiles.resize(s.candidates.size() * size_t(width) * height);
    for (size_t ci = 0; ci < s.candidates.size(); ++ci) {
        for (int c = 0; c < width; ++c) {
            float *dst = &s.profiles[(ci * size_t(width) + size_t(c)) *
                                     size_t(height)];
            expectedColumn(s.candidates[ci], s.alpha[size_t(c)], height,
                           focal, cfg, dst);
        }
    }

    s.openProfile.resize(size_t(height));
    openColumn(height, s.openProfile.data());
}

} // namespace

PoseEstimate
estimatePose(const env::Image &img, const EstimatorConfig &cfg,
             PoseScratch &s)
{
    PoseEstimate est;
    if (img.width < 8 || img.height < 8)
        return est;

    double hfov = deg2rad(cfg.horizontalFovDeg);
    double focal = (img.width / 2.0) / std::tan(hfov / 2.0);

    if (s.width != img.width || s.height != img.height ||
        !(s.cfg == cfg)) {
        rebuildScratch(s, img.width, img.height, cfg, focal);
    }

    s.rayDist.resize(size_t(img.width));
    s.open.resize(size_t(img.width));
    s.colBuf.resize(size_t(img.height));

    for (int c = 0; c < img.width; ++c) {
        double alpha = s.alpha[size_t(c)];

        // Gather the column once; every candidate sweep reads it
        // contiguously instead of striding through the image.
        for (int r = 0; r < img.height; ++r)
            s.colBuf[size_t(r)] = double(img.at(r, c));

        double best = 1e30;
        double best_d = cfg.maxDepth;
        bool best_open = false;
        for (size_t ci = 0; ci < s.candidates.size(); ++ci) {
            const float *profile =
                &s.profiles[(ci * size_t(img.width) + size_t(c)) *
                            size_t(img.height)];
            double e = ssd(profile, img.height, s.colBuf.data());
            if (e < best) {
                best = e;
                best_d = s.candidates[ci];
                best_open = false;
            }
        }
        double e_open =
            ssd(s.openProfile.data(), img.height, s.colBuf.data());
        if (e_open < best) {
            best_open = true;
            best_d = cfg.maxDepth;
        }
        s.open[size_t(c)] = best_open;
        // Convert the fitted perpendicular distance to ray distance.
        s.rayDist[size_t(c)] =
            best_open ? cfg.maxDepth
                      : best_d / std::max(0.2, std::cos(alpha));
    }

    // --- Heading: the deepest view direction points down the corridor.
    // Average the azimuths of the top-distance columns for subpixel
    // stability.
    double best_d = 0.0;
    for (int c = 0; c < img.width; ++c)
        best_d = std::max(best_d, s.rayDist[size_t(c)]);
    double az_sum = 0.0, az_w = 0.0;
    for (int c = 0; c < img.width; ++c) {
        if (s.rayDist[size_t(c)] >= 0.85 * best_d) {
            az_sum += s.alpha[size_t(c)];
            az_w += 1.0;
        }
    }
    if (az_w == 0.0)
        return est;
    double alpha_axis = az_sum / az_w;
    // Corridor axis is at world azimuth ~0, so heading = -alpha_axis.
    est.headingRad = -alpha_axis;

    // --- Offset: triangulate from wall hits on both sides of the
    // corridor axis. For a column at corridor-relative angle theta
    // hitting the left wall: offset = halfWidth - d*sin(theta); right
    // wall: offset = -halfWidth - d*sin(theta). Averaging both sides
    // cancels a wrong trained halfWidth on unfamiliar (wider) maps.
    double left_sum = 0.0, right_sum = 0.0;
    int left_n = 0, right_n = 0;
    for (int c = 0; c < img.width; ++c) {
        if (s.open[size_t(c)])
            continue;
        double theta =
            s.alpha[size_t(c)] - alpha_axis; // corridor-relative azimuth
        double a = std::abs(theta);
        if (a < deg2rad(18.0) || a > deg2rad(60.0))
            continue;
        double lateral = s.rayDist[size_t(c)] * std::sin(theta);
        if (theta > 0) {
            left_sum += cfg.trainedHalfWidth - lateral;
            ++left_n;
        } else {
            right_sum += -cfg.trainedHalfWidth - lateral;
            ++right_n;
        }
    }
    if (left_n > 0 && right_n > 0) {
        est.offsetM =
            0.5 * (left_sum / left_n + right_sum / right_n);
    } else if (left_n > 0) {
        est.offsetM = left_sum / left_n;
    } else if (right_n > 0) {
        est.offsetM = right_sum / right_n;
    } else {
        est.offsetM = 0.0;
    }
    est.valid = true;
    return est;
}

PoseEstimate
estimatePose(const env::Image &img, const EstimatorConfig &cfg)
{
    PoseScratch scratch;
    return estimatePose(img, cfg, scratch);
}

// ------------------------------------------------------------ Classifier

Classifier::Classifier(const Model &model, Rng rng,
                       const EstimatorConfig &cfg)
    : model_(model), rng_(rng), cfg_(cfg)
{
}

HeadOutput
Classifier::scoreHead(double value, double class_threshold,
                      double temperature)
{
    // Class prototypes at -2t, 0, +2t; logits fall off linearly with
    // distance, sharpened by the model's confidence temperature.
    float logits[3];
    const double centers[3] = {2.0 * class_threshold, 0.0,
                               -2.0 * class_threshold};
    for (int i = 0; i < 3; ++i) {
        logits[i] = float(-std::abs(value - centers[i]) /
                          (class_threshold * temperature));
    }
    // Inline softmax on the stack, the exact arithmetic of
    // dnn::softmax (float exp terms, double sum, float(v / sum)) so
    // outputs stay bit-identical to the allocating version.
    float mx = std::max(logits[0], std::max(logits[1], logits[2]));
    HeadOutput out;
    double sum = 0.0;
    for (int i = 0; i < 3; ++i) {
        out.probs[size_t(i)] = std::exp(logits[i] - mx);
        sum += out.probs[size_t(i)];
    }
    for (int i = 0; i < 3; ++i)
        out.probs[size_t(i)] = float(out.probs[size_t(i)] / sum);
    return out;
}

ClassifierOutput
Classifier::infer(const env::Image &img)
{
    ClassifierOutput out;
    PoseEstimate pose = estimatePose(img, cfg_, scratch_);
    if (!pose.valid) {
        // Degenerate view: maximum-entropy outputs.
        out.angular.probs = {1.f / 3, 1.f / 3, 1.f / 3};
        out.lateral.probs = {1.f / 3, 1.f / 3, 1.f / 3};
        return out;
    }
    out.rawHeadingRad = pose.headingRad;
    out.rawOffsetM = pose.offsetM;

    const ClassifierCalib &cal = model_.calib;
    double heading =
        pose.headingRad + rng_.gaussian(0.0, cal.sigmaHeading);
    double offset = pose.offsetM + rng_.gaussian(0.0, cal.sigmaOffset);

    out.angular =
        scoreHead(heading, cfg_.headingClassRad, cal.temperature);
    out.lateral = scoreHead(offset, cfg_.offsetClassM, cal.temperature);
    out.valid = true;
    return out;
}

} // namespace rose::dnn
