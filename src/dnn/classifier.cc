#include "classifier.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dnn/layers.hh"
#include "util/geometry.hh"
#include "util/logging.hh"

namespace rose::dnn {

int
HeadOutput::argmax() const
{
    return int(std::max_element(probs.begin(), probs.end()) -
               probs.begin());
}

namespace {

/**
 * Expected column profile for a wall at perpendicular distance d_perp
 * seen through a column at camera-relative azimuth alpha, mirroring
 * the renderer's shading model (learned by the trained network).
 */
void
expectedColumn(double d_perp, double alpha, int height, double focal,
               const EstimatorConfig &cfg, std::vector<float> &out)
{
    out.resize(size_t(height));
    double mid = height / 2.0 - 0.5;
    double d_shade = d_perp / std::max(0.2, std::cos(alpha));
    double top = mid - focal * (cfg.wallHeight - cfg.camAltitude) / d_perp;
    double bot = mid + focal * cfg.camAltitude / d_perp;
    double wall = 0.25 + 0.6 / (1.0 + 0.12 * d_shade);
    for (int r = 0; r < height; ++r) {
        if (r < top) {
            out[size_t(r)] = 0.85f;
        } else if (r > bot) {
            double floor_d =
                focal * cfg.camAltitude / std::max(0.5, double(r) - mid);
            out[size_t(r)] =
                float(0.10 + 0.25 / (1.0 + 0.2 * floor_d));
        } else {
            out[size_t(r)] = float(wall);
        }
    }
}

/** Open-corridor profile (no wall within range). */
void
openColumn(int height, std::vector<float> &out)
{
    out.resize(size_t(height));
    double mid = height / 2.0 - 0.5;
    for (int r = 0; r < height; ++r)
        out[size_t(r)] = r < mid ? 0.85f : 0.15f;
}

double
ssd(const std::vector<float> &a, const float *col, int height, int width,
    const env::Image &img, int c)
{
    (void)width;
    (void)col;
    double sum = 0.0;
    for (int r = 0; r < height; ++r) {
        double d = double(a[size_t(r)]) - double(img.at(r, c));
        sum += d * d;
    }
    return sum;
}

} // namespace

PoseEstimate
estimatePose(const env::Image &img, const EstimatorConfig &cfg)
{
    PoseEstimate est;
    if (img.width < 8 || img.height < 8)
        return est;

    double hfov = deg2rad(cfg.horizontalFovDeg);
    double focal = (img.width / 2.0) / std::tan(hfov / 2.0);

    // Candidate perpendicular distances, log-spaced.
    std::vector<double> candidates;
    for (double d = 0.6; d < cfg.maxDepth; d *= 1.22)
        candidates.push_back(d);

    std::vector<double> rayDist(size_t(img.width), 0.0);
    std::vector<bool> open(size_t(img.width), false);
    std::vector<float> profile;

    for (int c = 0; c < img.width; ++c) {
        double u = img.width / 2.0 - 0.5 - c;
        double alpha = std::atan2(u, focal);

        double best = 1e30;
        double best_d = cfg.maxDepth;
        bool best_open = false;
        for (double d : candidates) {
            expectedColumn(d, alpha, img.height, focal, cfg, profile);
            double e = ssd(profile, nullptr, img.height, img.width,
                           img, c);
            if (e < best) {
                best = e;
                best_d = d;
                best_open = false;
            }
        }
        openColumn(img.height, profile);
        double e_open =
            ssd(profile, nullptr, img.height, img.width, img, c);
        if (e_open < best) {
            best_open = true;
            best_d = cfg.maxDepth;
        }
        open[size_t(c)] = best_open;
        // Convert the fitted perpendicular distance to ray distance.
        rayDist[size_t(c)] =
            best_open ? cfg.maxDepth
                      : best_d / std::max(0.2, std::cos(alpha));
    }

    // --- Heading: the deepest view direction points down the corridor.
    // Average the azimuths of the top-distance columns for subpixel
    // stability.
    double best_d = 0.0;
    for (int c = 0; c < img.width; ++c)
        best_d = std::max(best_d, rayDist[size_t(c)]);
    double az_sum = 0.0, az_w = 0.0;
    for (int c = 0; c < img.width; ++c) {
        if (rayDist[size_t(c)] >= 0.85 * best_d) {
            double u = img.width / 2.0 - 0.5 - c;
            double alpha = std::atan2(u, focal);
            az_sum += alpha;
            az_w += 1.0;
        }
    }
    if (az_w == 0.0)
        return est;
    double alpha_axis = az_sum / az_w;
    // Corridor axis is at world azimuth ~0, so heading = -alpha_axis.
    est.headingRad = -alpha_axis;

    // --- Offset: triangulate from wall hits on both sides of the
    // corridor axis. For a column at corridor-relative angle theta
    // hitting the left wall: offset = halfWidth - d*sin(theta); right
    // wall: offset = -halfWidth - d*sin(theta). Averaging both sides
    // cancels a wrong trained halfWidth on unfamiliar (wider) maps.
    double left_sum = 0.0, right_sum = 0.0;
    int left_n = 0, right_n = 0;
    for (int c = 0; c < img.width; ++c) {
        if (open[size_t(c)])
            continue;
        double u = img.width / 2.0 - 0.5 - c;
        double alpha = std::atan2(u, focal);
        double theta = alpha - alpha_axis; // corridor-relative azimuth
        double a = std::abs(theta);
        if (a < deg2rad(18.0) || a > deg2rad(60.0))
            continue;
        double lateral = rayDist[size_t(c)] * std::sin(theta);
        if (theta > 0) {
            left_sum += cfg.trainedHalfWidth - lateral;
            ++left_n;
        } else {
            right_sum += -cfg.trainedHalfWidth - lateral;
            ++right_n;
        }
    }
    if (left_n > 0 && right_n > 0) {
        est.offsetM =
            0.5 * (left_sum / left_n + right_sum / right_n);
    } else if (left_n > 0) {
        est.offsetM = left_sum / left_n;
    } else if (right_n > 0) {
        est.offsetM = right_sum / right_n;
    } else {
        est.offsetM = 0.0;
    }
    est.valid = true;
    return est;
}

// ------------------------------------------------------------ Classifier

Classifier::Classifier(const Model &model, Rng rng,
                       const EstimatorConfig &cfg)
    : model_(model), rng_(rng), cfg_(cfg)
{
}

HeadOutput
Classifier::scoreHead(double value, double class_threshold,
                      double temperature)
{
    // Class prototypes at -2t, 0, +2t; logits fall off linearly with
    // distance, sharpened by the model's confidence temperature.
    std::vector<float> logits(3);
    const double centers[3] = {2.0 * class_threshold, 0.0,
                               -2.0 * class_threshold};
    for (int i = 0; i < 3; ++i) {
        logits[size_t(i)] = float(-std::abs(value - centers[i]) /
                                  (class_threshold * temperature));
    }
    std::vector<float> p = softmax(logits);
    HeadOutput out;
    out.probs = {p[0], p[1], p[2]};
    return out;
}

ClassifierOutput
Classifier::infer(const env::Image &img)
{
    ClassifierOutput out;
    PoseEstimate pose = estimatePose(img, cfg_);
    if (!pose.valid) {
        // Degenerate view: maximum-entropy outputs.
        out.angular.probs = {1.f / 3, 1.f / 3, 1.f / 3};
        out.lateral.probs = {1.f / 3, 1.f / 3, 1.f / 3};
        return out;
    }
    out.rawHeadingRad = pose.headingRad;
    out.rawOffsetM = pose.offsetM;

    const ClassifierCalib &cal = model_.calib;
    double heading =
        pose.headingRad + rng_.gaussian(0.0, cal.sigmaHeading);
    double offset = pose.offsetM + rng_.gaussian(0.0, cal.sigmaOffset);

    out.angular =
        scoreHead(heading, cfg_.headingClassRad, cal.temperature);
    out.lateral = scoreHead(offset, cfg_.offsetClassM, cal.temperature);
    out.valid = true;
    return out;
}

} // namespace rose::dnn
