/**
 * @file
 * The controller-DNN behavioral model.
 *
 * The paper trains TrailNet-style dual-headed ResNet classifiers on
 * 12,000 rendered corridor images (Section 4.2.2). Training real
 * ResNets is out of scope here (no GPU); instead the classifier is a
 * calibrated vision model that operates on the same rendered images
 * the camera produces:
 *
 *  1. a template-matching depth estimator recovers a per-column wall
 *     distance profile from the image (this is learned knowledge: the
 *     "model" was trained on images rendered by the same pipeline);
 *  2. corridor-relative heading and lateral offset are estimated from
 *     the profile geometrically (the profile's distance peak points
 *     down the corridor; wall distances at known azimuths triangulate
 *     the offset);
 *  3. per-model Gaussian estimate noise (larger nets = less noise,
 *     Table 3's accuracy column) corrupts the estimates;
 *  4. the dual 3-class heads score the noisy estimates against the
 *     training-label thresholds and emit softmax probabilities at the
 *     model's confidence temperature (larger nets = sharper outputs,
 *     the mechanism behind Section 5.2's behavioral findings).
 *
 * The model is trained on `tunnel` and evaluated on both maps (Section
 * 4.2.3): its trained half-width constant is the tunnel's, and the
 * two-sided triangulation cancels the resulting bias on wider maps.
 */

#ifndef ROSE_DNN_CLASSIFIER_HH
#define ROSE_DNN_CLASSIFIER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "dnn/resnet.hh"
#include "env/sensors.hh"
#include "util/rng.hh"

namespace rose::dnn {

/** Output of one 3-class head. */
struct HeadOutput
{
    /** Class probabilities: [left, center, right]. */
    std::array<float, 3> probs{0.f, 0.f, 0.f};

    int argmax() const;

    /** right-minus-left probability margin (the Equation 2 signal). */
    float margin() const { return probs[2] - probs[0]; }
};

/** Full dual-head inference result. */
struct ClassifierOutput
{
    HeadOutput angular; ///< heading relative to the corridor
    HeadOutput lateral; ///< offset relative to the centerline
    /** Internal pose estimates before noise (for debugging/tests). */
    double rawHeadingRad = 0.0;
    double rawOffsetM = 0.0;
    bool valid = false;
};

/** Geometry the model learned during training. */
struct EstimatorConfig
{
    double horizontalFovDeg = 90.0;
    double wallHeight = 4.0;
    double camAltitude = 1.5;
    /** Trained corridor half-width (tunnel). */
    double trainedHalfWidth = 1.6;
    double maxDepth = 40.0;

    // Training-label thresholds (Figure 8's three classes per head).
    double headingClassRad = 0.14;  ///< ~8 degrees
    double offsetClassM = 0.4;

    bool operator==(const EstimatorConfig &) const = default;
};

/** Geometric pose estimate recovered from an image. */
struct PoseEstimate
{
    double headingRad = 0.0;
    double offsetM = 0.0;
    bool valid = false;
};

/**
 * Reusable state of the pose estimator's per-frame hot path. Two kinds
 * of content live here:
 *
 *  - *cached geometry*, keyed on (image size, config): the per-column
 *    view azimuths and the full template bank — one expected column
 *    profile per (candidate distance, column). These depend only on
 *    geometry, not pixels, so they are computed once and invalidated
 *    when the key changes;
 *  - *per-call scratch* (fitted ray distances, open flags), reused
 *    across frames.
 *
 * After the first frame at a given image size, estimatePose performs
 * zero heap allocations. Single-owner, not thread-safe; each
 * Classifier carries its own. Pure cache: never checkpointed, and
 * results are bit-identical to the scratch-free overload.
 */
struct PoseScratch
{
    // Cache key.
    int width = -1;
    int height = -1;
    EstimatorConfig cfg;

    // Cached geometry (valid while the key matches).
    std::vector<double> alpha;       ///< per-column azimuth [rad]
    std::vector<double> candidates;  ///< log-spaced wall distances
    std::vector<float> profiles;     ///< [cand][col][row] templates
    std::vector<float> openProfile;  ///< [row] open-corridor template

    // Per-call scratch.
    std::vector<double> rayDist;
    std::vector<uint8_t> open;
    /** Current column's pixels, contiguous and pre-widened to double
     *  (exact conversion) so the SSD sweeps don't re-stride the image
     *  once per candidate. */
    std::vector<double> colBuf;
};

/**
 * Recover corridor-relative pose from a rendered camera image. Pure
 * vision: uses only pixel data plus the learned geometry constants.
 */
PoseEstimate estimatePose(const env::Image &img,
                          const EstimatorConfig &cfg = {});

/** Steady-state overload: reuses @p scratch, bit-identical results. */
PoseEstimate estimatePose(const env::Image &img,
                          const EstimatorConfig &cfg,
                          PoseScratch &scratch);

/** The runnable classifier for one model of the zoo. */
class Classifier
{
  public:
    /**
     * @param model zoo model (provides the behavioral calibration).
     * @param rng noise stream (per-classifier, deterministic).
     */
    Classifier(const Model &model, Rng rng,
               const EstimatorConfig &cfg = {});

    /** Run one inference on an image. */
    ClassifierOutput infer(const env::Image &img);

    const Model &model() const { return model_; }
    const EstimatorConfig &estimatorConfig() const { return cfg_; }

    /** Serialize the estimator noise stream (model is immutable). */
    void saveState(StateWriter &w) const { rng_.saveState(w); }
    void restoreState(StateReader &r) { rng_.restoreState(r); }

  private:
    HeadOutput scoreHead(double value, double class_threshold,
                         double temperature);

    Model model_;
    Rng rng_;
    EstimatorConfig cfg_;
    /** Template bank + per-frame buffers (pure cache, never saved). */
    PoseScratch scratch_;
};

} // namespace rose::dnn

#endif // ROSE_DNN_CLASSIFIER_HH
