#include "engine.hh"

#include <memory>
#include <sstream>

#include "util/logging.hh"
#include "util/memo.hh"

namespace rose::dnn {

ExecutionEngine::ExecutionEngine(const soc::SocConfig &soc,
                                 const gemmini::GemminiConfig &gem,
                                 const EngineParams &params)
    : soc_(soc), gem_(gem), params_(params)
{
}

Cycles
ExecutionEngine::sessionOverhead() const
{
    return soc_.cpu == soc::CpuModel::Boom
               ? params_.sessionOverheadBoom
               : params_.sessionOverheadRocket;
}

InferenceSchedule
ExecutionEngine::schedule(const Model &model) const
{
    InferenceSchedule sched;
    const soc::CpuParams &cpu = soc_.cpuParams;

    auto add = [&](Cycles c, soc::Unit unit, const char *label) {
        if (c == 0)
            return;
        sched.actions.push_back(soc::Action::compute(c, unit, label));
        sched.totalCycles += c;
        if (unit == soc::Unit::Accel)
            sched.accelCycles += c;
        else
            sched.hostCycles += c;
    };

    // Runtime session overhead: graph setup, tensor allocation,
    // operator dispatch bookkeeping.
    add(sessionOverhead(), soc::Unit::Cpu, "session");

    for (const LayerSpec &l : model.layers) {
        LayerTiming t;
        t.name = l.name;
        t.macs = l.macs();

        if (l.weighted()) {
            if (soc_.hasGemmini) {
                int m, k, n;
                l.gemmDims(m, k, n);
                gemmini::GemmCost cost = gem_.gemmCycles(m, k, n);
                t.onAccel = true;
                t.accelCycles = cost.totalCycles;
                t.hostCycles =
                    cpu.perLayerFixedCycles +
                    Cycles(params_.hostPasses * double(l.im2colBytes()) /
                           cpu.hostBytesPerCycle);
            } else {
                // Scalar CPU fallback: 2 FLOPs per MAC at the config's
                // effective FP throughput, plus one lowering pass.
                t.onAccel = false;
                t.hostCycles =
                    cpu.perLayerFixedCycles +
                    Cycles(2.0 * double(l.macs()) / cpu.flopsPerCycle) +
                    Cycles(double(l.im2colBytes()) /
                           cpu.hostBytesPerCycle);
            }
        } else {
            // Pool / residual / softmax stay on the CPU.
            t.hostCycles = Cycles(params_.cpuCyclesPerElem *
                                  double(l.outShape().elems()));
        }

        add(t.hostCycles, soc::Unit::Cpu, "layer-host");
        add(t.accelCycles, soc::Unit::Accel, "layer-accel");
        sched.layers.push_back(std::move(t));
    }
    return sched;
}

namespace {

MemoCache<std::string, InferenceSchedule> g_schedule_cache;

} // namespace

std::shared_ptr<const InferenceSchedule>
ExecutionEngine::scheduleShared(const Model &model) const
{
    // The key captures every input of schedule(): the model identity
    // and all timing parameters. Exact decimal formatting keeps
    // distinct configs distinct.
    std::ostringstream key;
    key.precision(17);
    const soc::CpuParams &cpu = soc_.cpuParams;
    key << model.name << '|' << int(soc_.cpu) << '|' << soc_.hasGemmini
        << '|' << soc_.clockHz << '|' << cpu.mmioAccessCycles << '|'
        << cpu.hostBytesPerCycle << '|' << cpu.flopsPerCycle << '|'
        << cpu.perLayerFixedCycles << '|';
    const gemmini::GemminiConfig &g = gem_.config();
    key << g.meshRows << '|' << g.meshCols << '|' << g.elemBytes << '|'
        << g.scratchpadBytes << '|' << g.accumulatorBytes << '|'
        << g.busBytesPerCycle << '|' << g.weightLoadCycles << '|'
        << g.tileIssueCycles << '|';
    key << params_.hostPasses << '|' << params_.sessionOverheadBoom
        << '|' << params_.sessionOverheadRocket << '|'
        << params_.cpuCyclesPerElem;

    return g_schedule_cache.getOrBuild(key.str(), [&] {
        return std::make_shared<InferenceSchedule>(schedule(model));
    });
}

double
ExecutionEngine::latencySeconds(const Model &model) const
{
    return double(schedule(model).totalCycles) / soc_.clockHz;
}

} // namespace rose::dnn
