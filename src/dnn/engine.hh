/**
 * @file
 * DNN execution engine: the ONNX-Runtime-with-Gemmini-backend
 * substitute. Lowers each model layer onto the modeled SoC and produces
 * a timed schedule:
 *
 *  - on Gemmini configs, weighted layers run as im2col + tiled GEMM on
 *    the accelerator model, with the host CPU charged for the lowering
 *    passes and kernel dispatch (this host component is what separates
 *    Rocket-host from BOOM-host latency in Table 3);
 *  - without an accelerator (config C), weighted layers fall back to
 *    scalar FP32 loops on the CPU — the ~6 s ResNet inference of
 *    Section 5.1;
 *  - unweighted layers (pool/residual/softmax) always run on the CPU;
 *  - each inference pays a fixed runtime-session overhead.
 *
 * The schedule is a list of soc::Action, directly consumable by the
 * SoC cycle engine, so accelerator activity factors (Figure 13) fall
 * out of the same accounting.
 */

#ifndef ROSE_DNN_ENGINE_HH
#define ROSE_DNN_ENGINE_HH

#include <vector>

#include "dnn/resnet.hh"
#include "gemmini/gemmini.hh"
#include "soc/config.hh"
#include "soc/workload.hh"

namespace rose::dnn {

/** Engine tunables beyond the SoC/accelerator configs. */
struct EngineParams
{
    /** Host passes over the im2col matrix per conv (read activations,
     *  write the lowered matrix, copy results back). */
    double hostPasses = 2.5;
    /** Per-inference runtime session overhead [cycles], by CPU class. */
    Cycles sessionOverheadBoom = 56 * kMegaCycles;
    Cycles sessionOverheadRocket = 75 * kMegaCycles;
    /** CPU cycles per element for unweighted layers. */
    double cpuCyclesPerElem = 2.0;
};

/** Timing breakdown of one layer. */
struct LayerTiming
{
    std::string name;
    bool onAccel = false;
    Cycles hostCycles = 0;  ///< CPU: lowering + dispatch (or fallback)
    Cycles accelCycles = 0; ///< Gemmini busy time
    uint64_t macs = 0;
};

/** Full inference schedule. */
struct InferenceSchedule
{
    std::vector<soc::Action> actions;
    std::vector<LayerTiming> layers;
    Cycles totalCycles = 0;
    Cycles accelCycles = 0;
    Cycles hostCycles = 0;
};

/** The engine. */
class ExecutionEngine
{
  public:
    ExecutionEngine(const soc::SocConfig &soc,
                    const gemmini::GemminiConfig &gem = {},
                    const EngineParams &params = {});

    /** Build the timed schedule of one inference of the model. */
    InferenceSchedule schedule(const Model &model) const;

    /**
     * Memoized schedule, shared process-wide: keyed on the model name
     * plus every timing parameter, so identical (SoC, accelerator,
     * engine) configurations across missions — e.g. a 30-seed batch
     * sweep — build each schedule once and share it read-only.
     * Thread-safe (util/memo.hh); schedules are immutable after build.
     */
    std::shared_ptr<const InferenceSchedule>
    scheduleShared(const Model &model) const;

    /** Convenience: end-to-end inference latency [s]. */
    double latencySeconds(const Model &model) const;

    const soc::SocConfig &socConfig() const { return soc_; }
    const gemmini::Gemmini &accelerator() const { return gem_; }
    const EngineParams &params() const { return params_; }

  private:
    Cycles sessionOverhead() const;

    soc::SocConfig soc_;
    gemmini::Gemmini gem_;
    EngineParams params_;
};

} // namespace rose::dnn

#endif // ROSE_DNN_ENGINE_HH
