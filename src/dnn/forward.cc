#include "forward.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "dnn/layers.hh"
#include "util/logging.hh"

namespace rose::dnn {

namespace {

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

} // namespace

Weights
initWeights(const Model &model, uint64_t seed)
{
    Weights w;
    Rng rng(seed);
    for (const LayerSpec &l : model.layers) {
        if (!l.weighted())
            continue;
        size_t fan_in;
        size_t count;
        if (l.kind == LayerKind::Conv) {
            fan_in = size_t(l.in.c) * l.kernel * l.kernel;
            count = size_t(l.outChannels) * fan_in;
        } else {
            fan_in = l.in.elems();
            count = size_t(l.outFeatures) * fan_in;
        }
        double std = std::sqrt(2.0 / double(fan_in));
        std::vector<float> vals(count);
        for (float &v : vals)
            v = float(rng.gaussian(0.0, std));
        w.weights[l.name] = std::move(vals);

        size_t outs = l.kind == LayerKind::Conv
                          ? size_t(l.outChannels)
                          : size_t(l.outFeatures);
        w.biases[l.name] = std::vector<float>(outs, 0.0f);
    }
    return w;
}

void
im2colInto(const LayerSpec &spec, const Tensor &input, float *out)
{
    rose_assert(spec.kind == LayerKind::Conv, "im2col needs a conv");
    int m, k, n;
    spec.gemmDims(m, k, n);
    Shape os = spec.outShape();

    // Each kx run is a contiguous slice of one input row; copy the
    // in-bounds middle with memcpy and zero the padded edges instead of
    // going through atPadded's per-element bounds checks. Values and
    // layout are identical to the per-element formulation.
    const int ih = spec.in.h, iw = spec.in.w, kk = spec.kernel;
    const float *src = input.data().data();
    size_t row = 0;
    for (int oy = 0; oy < os.h; ++oy) {
        for (int ox = 0; ox < os.w; ++ox, ++row) {
            float *dst = out + row * size_t(k);
            int iy0 = oy * spec.stride - spec.pad;
            int ix0 = ox * spec.stride - spec.pad;
            int x_lo = std::max(0, -ix0);       // first in-bounds kx
            int x_hi = std::min(kk, iw - ix0);  // one past the last
            for (int ic = 0; ic < spec.in.c; ++ic) {
                const float *chan = src + size_t(ic) * ih * iw;
                for (int ky = 0; ky < kk; ++ky, dst += kk) {
                    int iy = iy0 + ky;
                    if (iy < 0 || iy >= ih || x_lo >= x_hi) {
                        std::fill(dst, dst + kk, 0.0f);
                        continue;
                    }
                    if (x_lo > 0)
                        std::fill(dst, dst + x_lo, 0.0f);
                    std::memcpy(dst + x_lo,
                                chan + size_t(iy) * iw + ix0 + x_lo,
                                size_t(x_hi - x_lo) * sizeof(float));
                    if (x_hi < kk)
                        std::fill(dst + x_hi, dst + kk, 0.0f);
                }
            }
        }
    }
}

std::vector<float>
im2col(const LayerSpec &spec, const Tensor &input)
{
    int m, k, n;
    spec.gemmDims(m, k, n);
    std::vector<float> mat(size_t(m) * k);
    im2colInto(spec, input, mat.data());
    return mat;
}

Tensor
convViaGemm(const LayerSpec &spec, const Tensor &input,
            const std::vector<float> &weights,
            const std::vector<float> &bias, const gemmini::Gemmini &gem,
            bool relu)
{
    int m, k, n;
    spec.gemmDims(m, k, n);
    std::vector<float> a = im2col(spec, input);

    // Weights arrive OIHW = [outC][inC*k*k]; the GEMM needs B as
    // [k][n] = [inC*k*k][outC], i.e. the transpose.
    std::vector<float> b(size_t(k) * n);
    for (int o = 0; o < n; ++o)
        for (int i = 0; i < k; ++i)
            b[size_t(i) * n + o] = weights[size_t(o) * k + i];

    std::vector<float> c;
    gem.matmul(m, k, n, a, b, c);

    Shape os = spec.outShape();
    Tensor out(os.c, os.h, os.w);
    for (int oc = 0; oc < os.c; ++oc) {
        float bias_v = bias.empty() ? 0.0f : bias[size_t(oc)];
        for (int oy = 0; oy < os.h; ++oy) {
            for (int ox = 0; ox < os.w; ++ox) {
                float v = c[size_t(oy * os.w + ox) * n + oc] + bias_v;
                out.at(oc, oy, ox) = relu ? std::max(0.0f, v) : v;
            }
        }
    }
    return out;
}

ForwardResult
runForward(const Model &model, const Weights &w, const Tensor &input,
           bool use_gemm)
{
    rose_assert(input.height() == kDnnInputH &&
                    input.width() == kDnnInputW && input.channels() == 1,
                "input must be (1, ", kDnnInputH, ", ", kDnnInputW, ")");

    gemmini::Gemmini gem;
    Tensor cur = input;
    Tensor block_input;   // shortcut source for the current block
    Tensor proj_output;   // projected shortcut, when present
    bool have_proj = false;
    Tensor pooled;
    ForwardResult result;
    std::vector<float> last_dense;

    auto conv = [&](const LayerSpec &l, const Tensor &x, bool relu) {
        const std::vector<float> &wv = w.weights.at(l.name);
        const std::vector<float> &bv = w.biases.at(l.name);
        return use_gemm ? convViaGemm(l, x, wv, bv, gem, relu)
                        : conv2d(l, x, wv, bv, relu);
    };

    for (const LayerSpec &l : model.layers) {
        switch (l.kind) {
          case LayerKind::Conv: {
            if (endsWith(l.name, ".conv1")) {
                block_input = cur;
                have_proj = false;
                cur = conv(l, cur, /*relu=*/true);
            } else if (endsWith(l.name, ".conv2")) {
                // ReLU is applied after the residual add.
                cur = conv(l, cur, /*relu=*/false);
            } else if (endsWith(l.name, ".proj")) {
                proj_output =
                    conv(l, block_input, /*relu=*/false);
                have_proj = true;
            } else {
                // Stem.
                cur = conv(l, cur, /*relu=*/true);
            }
            break;
          }
          case LayerKind::MaxPool:
            cur = maxPool(l, cur);
            break;
          case LayerKind::Residual:
            cur = residualAdd(cur,
                              have_proj ? proj_output : block_input);
            break;
          case LayerKind::AvgPool:
            pooled = globalAvgPool(cur);
            break;
          case LayerKind::Dense:
            last_dense = dense(l, pooled, w.weights.at(l.name),
                               w.biases.at(l.name));
            break;
          case LayerKind::Softmax: {
            std::vector<float> p = softmax(last_dense);
            if (endsWith(l.name, "angular.softmax"))
                result.angularProbs = p;
            else
                result.lateralProbs = p;
            break;
          }
        }
    }
    rose_assert(result.angularProbs.size() == 3 &&
                    result.lateralProbs.size() == 3,
                "forward pass did not produce both heads");
    return result;
}

// ------------------------------------------------------ hot-path engine

PackedWeights
packWeights(const Model &model, const Weights &w)
{
    PackedWeights pw;
    for (const LayerSpec &l : model.layers) {
        if (!l.weighted())
            continue;
        int m, k, n;
        l.gemmDims(m, k, n);
        // Conv OIHW [outC][inC*k*k] and dense [outF][in] are both the
        // transpose of the GEMM's B; one pack covers both.
        gemmini::Gemmini::packWeightsTransposed(
            k, n, w.weights.at(l.name).data(), pw.layers[l.name]);
    }
    return pw;
}

namespace {

MemoCache<std::pair<int, uint64_t>, Weights> g_weights_cache;
MemoCache<std::pair<int, uint64_t>, PackedWeights> g_packed_cache;

} // namespace

std::shared_ptr<const Weights>
sharedWeights(int depth, uint64_t seed)
{
    return g_weights_cache.getOrBuild({depth, seed}, [&] {
        std::shared_ptr<const Model> model = sharedResNet(depth);
        return std::make_shared<Weights>(initWeights(*model, seed));
    });
}

std::shared_ptr<const PackedWeights>
sharedPackedWeights(int depth, uint64_t seed)
{
    return g_packed_cache.getOrBuild({depth, seed}, [&] {
        std::shared_ptr<const Model> model = sharedResNet(depth);
        std::shared_ptr<const Weights> w = sharedWeights(depth, seed);
        return std::make_shared<PackedWeights>(packWeights(*model, *w));
    });
}

namespace {

/**
 * Conv through the packed-weights path: im2col and GEMM output live in
 * arena slots, the packed panels are read shared, and the result lands
 * in a caller-reused tensor. Bit-identical to convViaGemm: the same
 * panels feed the same kernel (packB of the transposed matrix equals
 * packWeightsTransposed of the OIHW weights), and the bias+ReLU
 * epilogue is the same arithmetic.
 */
void
convPackedInto(const LayerSpec &spec, const Tensor &input,
               const gemmini::PackedB &pb, const std::vector<float> &bias,
               const gemmini::Gemmini &gem, bool relu,
               ForwardWorkspace &ws, Tensor &out)
{
    int m, k, n;
    spec.gemmDims(m, k, n);
    rose_assert(pb.k == k && pb.n == n, "packed weight shape mismatch");

    std::vector<float> &a =
        ws.arena.floats(ForwardWorkspace::kSlotIm2col, size_t(m) * k);
    im2colInto(spec, input, a.data());

    std::vector<float> &c =
        ws.arena.floats(ForwardWorkspace::kSlotGemmOut, size_t(m) * n);
    gem.matmulPacked(m, a.data(), pb, c.data(), ws.gemmThreads);

    // Epilogue walks the GEMM output row-contiguously (one row per
    // spatial site, oc innermost) instead of striding through it once
    // per channel; elementwise, so the bias+ReLU arithmetic per element
    // is unchanged.
    Shape os = spec.outShape();
    out.reshape(os.c, os.h, os.w);
    const int hw = os.h * os.w;
    float *o = out.data().data();
    const float *bp = bias.empty() ? nullptr : bias.data();
    for (int xy = 0; xy < hw; ++xy) {
        const float *crow = c.data() + size_t(xy) * n;
        if (relu) {
            for (int oc = 0; oc < n; ++oc) {
                float v = crow[oc] + (bp ? bp[oc] : 0.0f);
                o[size_t(oc) * hw + xy] = std::max(0.0f, v);
            }
        } else {
            for (int oc = 0; oc < n; ++oc)
                o[size_t(oc) * hw + xy] =
                    crow[oc] + (bp ? bp[oc] : 0.0f);
        }
    }
}

} // namespace

void
runForward(const Model &model, const Weights &w, const PackedWeights &pw,
           const Tensor &input, ForwardWorkspace &ws,
           ForwardResult &result)
{
    rose_assert(input.height() == kDnnInputH &&
                    input.width() == kDnnInputW && input.channels() == 1,
                "input must be (1, ", kDnnInputH, ", ", kDnnInputW, ")");

    gemmini::Gemmini gem;
    ws.cur = input; // vector copy-assign: reuses capacity
    bool have_proj = false;

    auto conv = [&](const LayerSpec &l, const Tensor &x, bool relu,
                    Tensor &out) {
        convPackedInto(l, x, pw.layers.at(l.name), w.biases.at(l.name),
                       gem, relu, ws, out);
    };

    for (const LayerSpec &l : model.layers) {
        switch (l.kind) {
          case LayerKind::Conv: {
            if (endsWith(l.name, ".conv1")) {
                ws.blockInput = ws.cur;
                have_proj = false;
                conv(l, ws.cur, /*relu=*/true, ws.tmp);
                std::swap(ws.cur, ws.tmp);
            } else if (endsWith(l.name, ".conv2")) {
                // ReLU is applied after the residual add.
                conv(l, ws.cur, /*relu=*/false, ws.tmp);
                std::swap(ws.cur, ws.tmp);
            } else if (endsWith(l.name, ".proj")) {
                conv(l, ws.blockInput, /*relu=*/false, ws.projOutput);
                have_proj = true;
            } else {
                // Stem.
                conv(l, ws.cur, /*relu=*/true, ws.tmp);
                std::swap(ws.cur, ws.tmp);
            }
            break;
          }
          case LayerKind::MaxPool:
            maxPoolInto(l, ws.cur, ws.tmp);
            std::swap(ws.cur, ws.tmp);
            break;
          case LayerKind::Residual:
            residualAddInto(ws.cur,
                            have_proj ? ws.projOutput : ws.blockInput,
                            ws.tmp);
            std::swap(ws.cur, ws.tmp);
            break;
          case LayerKind::AvgPool:
            globalAvgPoolInto(ws.cur, ws.pooled);
            break;
          case LayerKind::Dense:
            // The dense heads keep the direct dot-product loop: its
            // accumulator seeds with the bias, a different FP order
            // than GEMM-then-bias, and bit-identity with the reference
            // pass wins over lowering a 1x256x3 GEMM.
            denseInto(l, ws.pooled, w.weights.at(l.name),
                      w.biases.at(l.name), ws.logits);
            break;
          case LayerKind::Softmax:
            if (endsWith(l.name, "angular.softmax"))
                softmaxInto(ws.logits, result.angularProbs);
            else
                softmaxInto(ws.logits, result.lateralProbs);
            break;
        }
    }
    rose_assert(result.angularProbs.size() == 3 &&
                    result.lateralProbs.size() == 3,
                "forward pass did not produce both heads");
}

} // namespace rose::dnn
