#include "forward.hh"

#include <cmath>

#include "dnn/layers.hh"
#include "util/logging.hh"

namespace rose::dnn {

namespace {

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

} // namespace

Weights
initWeights(const Model &model, uint64_t seed)
{
    Weights w;
    Rng rng(seed);
    for (const LayerSpec &l : model.layers) {
        if (!l.weighted())
            continue;
        size_t fan_in;
        size_t count;
        if (l.kind == LayerKind::Conv) {
            fan_in = size_t(l.in.c) * l.kernel * l.kernel;
            count = size_t(l.outChannels) * fan_in;
        } else {
            fan_in = l.in.elems();
            count = size_t(l.outFeatures) * fan_in;
        }
        double std = std::sqrt(2.0 / double(fan_in));
        std::vector<float> vals(count);
        for (float &v : vals)
            v = float(rng.gaussian(0.0, std));
        w.weights[l.name] = std::move(vals);

        size_t outs = l.kind == LayerKind::Conv
                          ? size_t(l.outChannels)
                          : size_t(l.outFeatures);
        w.biases[l.name] = std::vector<float>(outs, 0.0f);
    }
    return w;
}

std::vector<float>
im2col(const LayerSpec &spec, const Tensor &input)
{
    rose_assert(spec.kind == LayerKind::Conv, "im2col needs a conv");
    int m, k, n;
    spec.gemmDims(m, k, n);
    Shape os = spec.outShape();
    std::vector<float> mat(size_t(m) * k, 0.0f);

    size_t row = 0;
    for (int oy = 0; oy < os.h; ++oy) {
        for (int ox = 0; ox < os.w; ++ox, ++row) {
            size_t col = 0;
            int iy0 = oy * spec.stride - spec.pad;
            int ix0 = ox * spec.stride - spec.pad;
            for (int ic = 0; ic < spec.in.c; ++ic) {
                for (int ky = 0; ky < spec.kernel; ++ky) {
                    for (int kx = 0; kx < spec.kernel; ++kx, ++col) {
                        mat[row * size_t(k) + col] =
                            input.atPadded(ic, iy0 + ky, ix0 + kx);
                    }
                }
            }
        }
    }
    return mat;
}

Tensor
convViaGemm(const LayerSpec &spec, const Tensor &input,
            const std::vector<float> &weights,
            const std::vector<float> &bias, const gemmini::Gemmini &gem,
            bool relu)
{
    int m, k, n;
    spec.gemmDims(m, k, n);
    std::vector<float> a = im2col(spec, input);

    // Weights arrive OIHW = [outC][inC*k*k]; the GEMM needs B as
    // [k][n] = [inC*k*k][outC], i.e. the transpose.
    std::vector<float> b(size_t(k) * n);
    for (int o = 0; o < n; ++o)
        for (int i = 0; i < k; ++i)
            b[size_t(i) * n + o] = weights[size_t(o) * k + i];

    std::vector<float> c;
    gem.matmul(m, k, n, a, b, c);

    Shape os = spec.outShape();
    Tensor out(os.c, os.h, os.w);
    for (int oc = 0; oc < os.c; ++oc) {
        float bias_v = bias.empty() ? 0.0f : bias[size_t(oc)];
        for (int oy = 0; oy < os.h; ++oy) {
            for (int ox = 0; ox < os.w; ++ox) {
                float v = c[size_t(oy * os.w + ox) * n + oc] + bias_v;
                out.at(oc, oy, ox) = relu ? std::max(0.0f, v) : v;
            }
        }
    }
    return out;
}

ForwardResult
runForward(const Model &model, const Weights &w, const Tensor &input,
           bool use_gemm)
{
    rose_assert(input.height() == kDnnInputH &&
                    input.width() == kDnnInputW && input.channels() == 1,
                "input must be (1, ", kDnnInputH, ", ", kDnnInputW, ")");

    gemmini::Gemmini gem;
    Tensor cur = input;
    Tensor block_input;   // shortcut source for the current block
    Tensor proj_output;   // projected shortcut, when present
    bool have_proj = false;
    Tensor pooled;
    ForwardResult result;
    std::vector<float> last_dense;

    auto conv = [&](const LayerSpec &l, const Tensor &x, bool relu) {
        const std::vector<float> &wv = w.weights.at(l.name);
        const std::vector<float> &bv = w.biases.at(l.name);
        return use_gemm ? convViaGemm(l, x, wv, bv, gem, relu)
                        : conv2d(l, x, wv, bv, relu);
    };

    for (const LayerSpec &l : model.layers) {
        switch (l.kind) {
          case LayerKind::Conv: {
            if (endsWith(l.name, ".conv1")) {
                block_input = cur;
                have_proj = false;
                cur = conv(l, cur, /*relu=*/true);
            } else if (endsWith(l.name, ".conv2")) {
                // ReLU is applied after the residual add.
                cur = conv(l, cur, /*relu=*/false);
            } else if (endsWith(l.name, ".proj")) {
                proj_output =
                    conv(l, block_input, /*relu=*/false);
                have_proj = true;
            } else {
                // Stem.
                cur = conv(l, cur, /*relu=*/true);
            }
            break;
          }
          case LayerKind::MaxPool:
            cur = maxPool(l, cur);
            break;
          case LayerKind::Residual:
            cur = residualAdd(cur,
                              have_proj ? proj_output : block_input);
            break;
          case LayerKind::AvgPool:
            pooled = globalAvgPool(cur);
            break;
          case LayerKind::Dense:
            last_dense = dense(l, pooled, w.weights.at(l.name),
                               w.biases.at(l.name));
            break;
          case LayerKind::Softmax: {
            std::vector<float> p = softmax(last_dense);
            if (endsWith(l.name, "angular.softmax"))
                result.angularProbs = p;
            else
                result.lateralProbs = p;
            break;
          }
        }
    }
    rose_assert(result.angularProbs.size() == 3 &&
                    result.lateralProbs.size() == 3,
                "forward pass did not produce both heads");
    return result;
}

} // namespace rose::dnn
