/**
 * @file
 * Functional forward execution of zoo models.
 *
 * Executes a Model's layer graph numerically: convolutions (direct or
 * lowered through im2col + the Gemmini functional GEMM — both paths
 * must agree, which the tests check), pooling, residual shortcuts with
 * projections, and the dual softmax heads. Weights come from a
 * deterministic initializer. This is the reference semantics of what
 * the execution engine *times*; it is used by tests and for verifying
 * the im2col lowering the latency model is built on.
 */

#ifndef ROSE_DNN_FORWARD_HH
#define ROSE_DNN_FORWARD_HH

#include <map>
#include <string>
#include <vector>

#include "dnn/resnet.hh"
#include "dnn/tensor.hh"
#include "gemmini/gemmini.hh"
#include "util/rng.hh"

namespace rose::dnn {

/** Per-layer weights for a model. */
struct Weights
{
    /** layer name -> flat weight vector (conv: OIHW; dense: row major). */
    std::map<std::string, std::vector<float>> weights;
    /** layer name -> bias vector. */
    std::map<std::string, std::vector<float>> biases;
};

/**
 * Deterministic He-style initialization for every weighted layer.
 *
 * @param model the zoo model.
 * @param seed RNG seed.
 */
Weights initWeights(const Model &model, uint64_t seed);

/** Lower an input patch volume to the im2col matrix of a conv layer:
 *  rows = output pixels, cols = inC*k*k (matching LayerSpec::gemmDims). */
std::vector<float> im2col(const LayerSpec &spec, const Tensor &input);

/**
 * Convolution through the accelerator path: im2col + functional GEMM
 * (+ bias + ReLU). Must match conv2d() numerically.
 */
Tensor convViaGemm(const LayerSpec &spec, const Tensor &input,
                   const std::vector<float> &weights,
                   const std::vector<float> &bias,
                   const gemmini::Gemmini &gem, bool relu = true);

/** Output of a full forward pass. */
struct ForwardResult
{
    std::vector<float> angularProbs; ///< 3 classes
    std::vector<float> lateralProbs; ///< 3 classes
};

/**
 * Run a full forward pass of the model graph.
 *
 * @param model the zoo model (graph definition).
 * @param w weights from initWeights (or trained elsewhere).
 * @param input (1, H, W) image tensor at the model's input size.
 * @param use_gemm route convs through im2col+GEMM instead of the
 *        direct loops (same numerics, exercises the lowered path).
 */
ForwardResult runForward(const Model &model, const Weights &w,
                         const Tensor &input, bool use_gemm = false);

} // namespace rose::dnn

#endif // ROSE_DNN_FORWARD_HH
