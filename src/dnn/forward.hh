/**
 * @file
 * Functional forward execution of zoo models.
 *
 * Executes a Model's layer graph numerically: convolutions (direct or
 * lowered through im2col + the Gemmini functional GEMM — both paths
 * must agree, which the tests check), pooling, residual shortcuts with
 * projections, and the dual softmax heads. Weights come from a
 * deterministic initializer. This is the reference semantics of what
 * the execution engine *times*; it is used by tests and for verifying
 * the im2col lowering the latency model is built on.
 */

#ifndef ROSE_DNN_FORWARD_HH
#define ROSE_DNN_FORWARD_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dnn/resnet.hh"
#include "dnn/tensor.hh"
#include "gemmini/gemmini.hh"
#include "util/arena.hh"
#include "util/rng.hh"

namespace rose::dnn {

/** Per-layer weights for a model. */
struct Weights
{
    /** layer name -> flat weight vector (conv: OIHW; dense: row major). */
    std::map<std::string, std::vector<float>> weights;
    /** layer name -> bias vector. */
    std::map<std::string, std::vector<float>> biases;
};

/**
 * Deterministic He-style initialization for every weighted layer.
 *
 * @param model the zoo model.
 * @param seed RNG seed.
 */
Weights initWeights(const Model &model, uint64_t seed);

/** Lower an input patch volume to the im2col matrix of a conv layer:
 *  rows = output pixels, cols = inC*k*k (matching LayerSpec::gemmDims). */
std::vector<float> im2col(const LayerSpec &spec, const Tensor &input);

/**
 * Convolution through the accelerator path: im2col + functional GEMM
 * (+ bias + ReLU). Must match conv2d() numerically.
 */
Tensor convViaGemm(const LayerSpec &spec, const Tensor &input,
                   const std::vector<float> &weights,
                   const std::vector<float> &bias,
                   const gemmini::Gemmini &gem, bool relu = true);

/** Output of a full forward pass. */
struct ForwardResult
{
    std::vector<float> angularProbs; ///< 3 classes
    std::vector<float> lateralProbs; ///< 3 classes
};

/**
 * Run a full forward pass of the model graph.
 *
 * @param model the zoo model (graph definition).
 * @param w weights from initWeights (or trained elsewhere).
 * @param input (1, H, W) image tensor at the model's input size.
 * @param use_gemm route convs through im2col+GEMM instead of the
 *        direct loops (same numerics, exercises the lowered path).
 */
ForwardResult runForward(const Model &model, const Weights &w,
                         const Tensor &input, bool use_gemm = false);

// ------------------------------------------------------ hot-path engine

/**
 * Per-layer weight matrices pre-packed into the GEMM kernel's
 * panel-major layout (the OIHW->B transpose folded into the pack).
 * Immutable once built; shared read-only across batch workers via
 * sharedPackedWeights().
 */
struct PackedWeights
{
    std::map<std::string, gemmini::PackedB> layers;
};

/** Pack every weighted layer of @p model (convs and dense heads). */
PackedWeights packWeights(const Model &model, const Weights &w);

/**
 * Process-wide shared weights / packed weights for a zoo model, keyed
 * by (depth, seed): built once, shared read-only across all missions
 * and BatchRunner workers. Thread-safe (util/memo.hh).
 */
std::shared_ptr<const Weights> sharedWeights(int depth, uint64_t seed);
std::shared_ptr<const PackedWeights> sharedPackedWeights(int depth,
                                                         uint64_t seed);

/**
 * Reusable per-caller state of the zero-allocation forward path: the
 * im2col/GEMM scratch slots and the ping-pong layer tensors. The first
 * frame sizes every buffer; later frames run with zero steady-state
 * heap allocation (arena.growthEvents() stays flat — asserted by
 * tests/test_hotpath.cc and the microbench allocation counter).
 * Single-owner, not thread-safe; batch workers each carry their own.
 */
struct ForwardWorkspace
{
    ScratchArena arena;
    Tensor cur;        ///< activations flowing through the graph
    Tensor tmp;        ///< layer output before ping-pong swap
    Tensor blockInput; ///< shortcut source for the current block
    Tensor projOutput; ///< projected shortcut, when present
    Tensor pooled;
    std::vector<float> logits;

    /** Arena slot of the im2col matrix. */
    static constexpr size_t kSlotIm2col = 0;
    /** Arena slot of the raw GEMM output. */
    static constexpr size_t kSlotGemmOut = 1;

    /** Row-parallelism handed to the GEMM (1 = inline). */
    int gemmThreads = 1;
};

/** Lower a conv input into a caller-owned im2col buffer (m*k floats). */
void im2colInto(const LayerSpec &spec, const Tensor &input, float *out);

/**
 * Steady-state forward pass: packed weights, reused workspace buffers,
 * results written into @p result (whose vectors are reused too).
 * Bit-identical to runForward(model, w, input, use_gemm = true).
 */
void runForward(const Model &model, const Weights &w,
                const PackedWeights &pw, const Tensor &input,
                ForwardWorkspace &ws, ForwardResult &result);

} // namespace rose::dnn

#endif // ROSE_DNN_FORWARD_HH
