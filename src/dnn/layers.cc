#include "layers.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace rose::dnn {

Shape
LayerSpec::outShape() const
{
    switch (kind) {
      case LayerKind::Conv: {
        int oh = (in.h + 2 * pad - kernel) / stride + 1;
        int ow = (in.w + 2 * pad - kernel) / stride + 1;
        return {outChannels, oh, ow};
      }
      case LayerKind::Dense:
        return {outFeatures, 1, 1};
      case LayerKind::MaxPool: {
        int oh = (in.h - kernel) / stride + 1;
        int ow = (in.w - kernel) / stride + 1;
        return {in.c, oh, ow};
      }
      case LayerKind::AvgPool:
        return {in.c, 1, 1};
      case LayerKind::Residual:
      case LayerKind::Softmax:
        return in;
    }
    return in;
}

uint64_t
LayerSpec::macs() const
{
    Shape out = outShape();
    switch (kind) {
      case LayerKind::Conv:
        return uint64_t(out.c) * out.h * out.w * in.c * kernel * kernel;
      case LayerKind::Dense:
        return uint64_t(outFeatures) * in.elems();
      default:
        return 0;
    }
}

uint64_t
LayerSpec::weightCount() const
{
    switch (kind) {
      case LayerKind::Conv:
        return uint64_t(outChannels) * in.c * kernel * kernel +
               outChannels;
      case LayerKind::Dense:
        return uint64_t(outFeatures) * in.elems() + outFeatures;
      default:
        return 0;
    }
}

void
LayerSpec::gemmDims(int &m, int &k, int &n) const
{
    Shape out = outShape();
    switch (kind) {
      case LayerKind::Conv:
        // im2col lowering: (out pixels) x (k*k*inC) * (k*k*inC) x outC.
        m = out.h * out.w;
        k = in.c * kernel * kernel;
        n = out.c;
        break;
      case LayerKind::Dense:
        m = 1;
        k = int(in.elems());
        n = outFeatures;
        break;
      default:
        m = k = n = 0;
        break;
    }
}

uint64_t
LayerSpec::im2colBytes() const
{
    int m, k, n;
    gemmDims(m, k, n);
    return uint64_t(m) * k * sizeof(float);
}

// ------------------------------------------------------------ builders

LayerSpec
makeConv(const std::string &name, Shape in, int out_ch, int kernel,
         int stride, int pad)
{
    LayerSpec s;
    s.kind = LayerKind::Conv;
    s.name = name;
    s.in = in;
    s.outChannels = out_ch;
    s.kernel = kernel;
    s.stride = stride;
    s.pad = pad;
    return s;
}

LayerSpec
makeDense(const std::string &name, Shape in, int out_features)
{
    LayerSpec s;
    s.kind = LayerKind::Dense;
    s.name = name;
    s.in = in;
    s.outFeatures = out_features;
    return s;
}

LayerSpec
makeMaxPool(const std::string &name, Shape in, int kernel, int stride)
{
    LayerSpec s;
    s.kind = LayerKind::MaxPool;
    s.name = name;
    s.in = in;
    s.kernel = kernel;
    s.stride = stride;
    s.pad = 0;
    return s;
}

LayerSpec
makeGlobalAvgPool(const std::string &name, Shape in)
{
    LayerSpec s;
    s.kind = LayerKind::AvgPool;
    s.name = name;
    s.in = in;
    return s;
}

LayerSpec
makeResidual(const std::string &name, Shape in)
{
    LayerSpec s;
    s.kind = LayerKind::Residual;
    s.name = name;
    s.in = in;
    return s;
}

LayerSpec
makeSoftmax(const std::string &name, Shape in)
{
    LayerSpec s;
    s.kind = LayerKind::Softmax;
    s.name = name;
    s.in = in;
    return s;
}

// -------------------------------------------------- functional kernels

Tensor
conv2d(const LayerSpec &spec, const Tensor &input,
       const std::vector<float> &weights, const std::vector<float> &bias,
       bool relu)
{
    rose_assert(spec.kind == LayerKind::Conv, "not a conv spec");
    rose_assert(input.channels() == spec.in.c &&
                    input.height() == spec.in.h &&
                    input.width() == spec.in.w,
                "conv input shape mismatch");
    rose_assert(weights.size() == size_t(spec.outChannels) * spec.in.c *
                                      spec.kernel * spec.kernel,
                "conv weight count mismatch");

    Shape os = spec.outShape();
    Tensor out(os.c, os.h, os.w);
    int k = spec.kernel;
    for (int oc = 0; oc < os.c; ++oc) {
        float b = bias.empty() ? 0.0f : bias[oc];
        for (int oy = 0; oy < os.h; ++oy) {
            for (int ox = 0; ox < os.w; ++ox) {
                float acc = b;
                int iy0 = oy * spec.stride - spec.pad;
                int ix0 = ox * spec.stride - spec.pad;
                for (int ic = 0; ic < spec.in.c; ++ic) {
                    const float *wbase =
                        &weights[((size_t(oc) * spec.in.c + ic) * k) * k];
                    for (int ky = 0; ky < k; ++ky) {
                        for (int kx = 0; kx < k; ++kx) {
                            acc += wbase[ky * k + kx] *
                                   input.atPadded(ic, iy0 + ky,
                                                  ix0 + kx);
                        }
                    }
                }
                out.at(oc, oy, ox) =
                    relu ? std::max(0.0f, acc) : acc;
            }
        }
    }
    return out;
}

std::vector<float>
dense(const LayerSpec &spec, const Tensor &input,
      const std::vector<float> &weights, const std::vector<float> &bias)
{
    std::vector<float> out;
    denseInto(spec, input, weights, bias, out);
    return out;
}

Tensor
maxPool(const LayerSpec &spec, const Tensor &input)
{
    Tensor out;
    maxPoolInto(spec, input, out);
    return out;
}

Tensor
globalAvgPool(const Tensor &input)
{
    Tensor out;
    globalAvgPoolInto(input, out);
    return out;
}

Tensor
residualAdd(const Tensor &a, const Tensor &b)
{
    Tensor out;
    residualAddInto(a, b, out);
    return out;
}

std::vector<float>
softmax(const std::vector<float> &logits)
{
    std::vector<float> out;
    softmaxInto(logits, out);
    return out;
}

void
denseInto(const LayerSpec &spec, const Tensor &input,
          const std::vector<float> &weights, const std::vector<float> &bias,
          std::vector<float> &out)
{
    rose_assert(spec.kind == LayerKind::Dense, "not a dense spec");
    size_t in_n = input.size();
    rose_assert(weights.size() == size_t(spec.outFeatures) * in_n,
                "dense weight count mismatch");
    out.resize(size_t(spec.outFeatures));
    for (int o = 0; o < spec.outFeatures; ++o) {
        float acc = bias.empty() ? 0.0f : bias[o];
        const float *wrow = &weights[size_t(o) * in_n];
        for (size_t i = 0; i < in_n; ++i)
            acc += wrow[i] * input.data()[i];
        out[o] = acc;
    }
}

void
maxPoolInto(const LayerSpec &spec, const Tensor &input, Tensor &out)
{
    rose_assert(spec.kind == LayerKind::MaxPool, "not a pool spec");
    Shape os = spec.outShape();
    out.reshape(os.c, os.h, os.w);
    for (int c = 0; c < os.c; ++c) {
        for (int oy = 0; oy < os.h; ++oy) {
            for (int ox = 0; ox < os.w; ++ox) {
                float best = -1e30f;
                for (int ky = 0; ky < spec.kernel; ++ky) {
                    for (int kx = 0; kx < spec.kernel; ++kx) {
                        best = std::max(
                            best, input.at(c, oy * spec.stride + ky,
                                           ox * spec.stride + kx));
                    }
                }
                out.at(c, oy, ox) = best;
            }
        }
    }
}

void
globalAvgPoolInto(const Tensor &input, Tensor &out)
{
    out.reshape(input.channels(), 1, 1);
    double denom = double(input.height()) * input.width();
    for (int c = 0; c < input.channels(); ++c) {
        double sum = 0.0;
        for (int y = 0; y < input.height(); ++y)
            for (int x = 0; x < input.width(); ++x)
                sum += input.at(c, y, x);
        out.at(c, 0, 0) = float(sum / denom);
    }
}

void
residualAddInto(const Tensor &a, const Tensor &b, Tensor &out)
{
    rose_assert(a.channels() == b.channels() &&
                    a.height() == b.height() && a.width() == b.width(),
                "residual shape mismatch");
    out.reshape(a.channels(), a.height(), a.width());
    for (size_t i = 0; i < a.size(); ++i)
        out.data()[i] = std::max(0.0f, a.data()[i] + b.data()[i]);
}

void
softmaxInto(const std::vector<float> &logits, std::vector<float> &out)
{
    rose_assert(!logits.empty(), "softmax of empty vector");
    float mx = *std::max_element(logits.begin(), logits.end());
    out.resize(logits.size());
    double sum = 0.0;
    for (size_t i = 0; i < logits.size(); ++i) {
        out[i] = std::exp(logits[i] - mx);
        sum += out[i];
    }
    for (float &v : out)
        v = float(v / sum);
}

} // namespace rose::dnn
