/**
 * @file
 * Layer descriptors and functional reference kernels.
 *
 * Each layer is described by a LayerSpec carrying everything both
 * consumers need:
 *  - the execution engine derives shapes, FLOPs, im2col GEMM dimensions,
 *    and host data-movement volumes for the latency model;
 *  - the functional kernels (conv2d, dense, pooling, relu, residual
 *    add, softmax) compute real values for tests and small end-to-end
 *    runs.
 */

#ifndef ROSE_DNN_LAYERS_HH
#define ROSE_DNN_LAYERS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/tensor.hh"

namespace rose::dnn {

/** Layer kinds in the model zoo. */
enum class LayerKind
{
    Conv,      ///< 2D convolution (+ folded batchnorm + ReLU)
    Dense,     ///< fully connected
    MaxPool,   ///< max pooling
    AvgPool,   ///< global average pooling
    Residual,  ///< elementwise add with a skip connection + ReLU
    Softmax,   ///< classifier head activation
};

/** (C, H, W) shape triple. */
struct Shape
{
    int c = 0;
    int h = 0;
    int w = 0;

    size_t elems() const { return size_t(c) * h * w; }
    bool operator==(const Shape &o) const = default;
};

/** One layer of a model. */
struct LayerSpec
{
    LayerKind kind = LayerKind::Conv;
    std::string name;

    Shape in;

    // Conv / pool geometry.
    int outChannels = 0;
    int kernel = 3;
    int stride = 1;
    int pad = 1;

    // Dense geometry.
    int outFeatures = 0;

    /** Whether this layer has learned weights (counts toward depth). */
    bool weighted() const
    { return kind == LayerKind::Conv || kind == LayerKind::Dense; }

    /** Output shape given the input shape. */
    Shape outShape() const;

    /** Multiply-accumulate count of the layer. */
    uint64_t macs() const;

    /** Weight parameter count. */
    uint64_t weightCount() const;

    /** GEMM dimensions after im2col lowering (weighted layers only). */
    void gemmDims(int &m, int &k, int &n) const;

    /** Bytes the host touches lowering this layer (im2col matrix). */
    uint64_t im2colBytes() const;
};

// ------------------------------------------------------------ builders

LayerSpec makeConv(const std::string &name, Shape in, int out_ch,
                   int kernel, int stride, int pad);
LayerSpec makeDense(const std::string &name, Shape in, int out_features);
LayerSpec makeMaxPool(const std::string &name, Shape in, int kernel,
                      int stride);
LayerSpec makeGlobalAvgPool(const std::string &name, Shape in);
LayerSpec makeResidual(const std::string &name, Shape in);
LayerSpec makeSoftmax(const std::string &name, Shape in);

// -------------------------------------------------- functional kernels

/**
 * Reference convolution (+ ReLU when relu is set).
 *
 * @param weights outCh * inCh * k * k values.
 * @param bias per-output-channel bias (may be empty for zero bias).
 */
Tensor conv2d(const LayerSpec &spec, const Tensor &input,
              const std::vector<float> &weights,
              const std::vector<float> &bias, bool relu = true);

/** Fully connected layer over the flattened input. */
std::vector<float> dense(const LayerSpec &spec, const Tensor &input,
                         const std::vector<float> &weights,
                         const std::vector<float> &bias);

Tensor maxPool(const LayerSpec &spec, const Tensor &input);
Tensor globalAvgPool(const Tensor &input);

/** out = relu(a + b); shapes must match. */
Tensor residualAdd(const Tensor &a, const Tensor &b);

/** Numerically-stable softmax. */
std::vector<float> softmax(const std::vector<float> &logits);

// Allocation-free variants: identical arithmetic, but the caller owns
// the output buffer (reshaped/resized in place, so a reused buffer at
// steady-state size never allocates). The value-returning functions
// above are thin wrappers over these; results are bit-identical.

void denseInto(const LayerSpec &spec, const Tensor &input,
               const std::vector<float> &weights,
               const std::vector<float> &bias, std::vector<float> &out);
void maxPoolInto(const LayerSpec &spec, const Tensor &input, Tensor &out);
void globalAvgPoolInto(const Tensor &input, Tensor &out);
void residualAddInto(const Tensor &a, const Tensor &b, Tensor &out);
void softmaxInto(const std::vector<float> &logits,
                 std::vector<float> &out);

} // namespace rose::dnn

#endif // ROSE_DNN_LAYERS_HH
