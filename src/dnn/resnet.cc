#include "resnet.hh"

#include "util/logging.hh"

namespace rose::dnn {

uint64_t
Model::totalMacs() const
{
    uint64_t sum = 0;
    for (const LayerSpec &l : layers)
        sum += l.macs();
    return sum;
}

uint64_t
Model::totalWeights() const
{
    uint64_t sum = 0;
    for (const LayerSpec &l : layers)
        sum += l.weightCount();
    return sum;
}

uint64_t
Model::totalIm2colBytes() const
{
    uint64_t sum = 0;
    for (const LayerSpec &l : layers)
        sum += l.im2colBytes();
    return sum;
}

int
Model::weightedLayers() const
{
    int n = 0;
    for (const LayerSpec &l : layers)
        n += l.weighted() ? 1 : 0;
    return n;
}

namespace {

/** Behavioral calibrations per depth. Noise values are fit so that the
 *  classifier's validation accuracy lands on Table 3 (see
 *  tests/test_dnn.cc and bench_table3); temperature encodes the
 *  confidence-vs-capacity trend of Section 5.2. */
ClassifierCalib
calibFor(int depth)
{
    switch (depth) {
      case 6: return {0.122, 0.435, 3.6, 0.72};
      case 11: return {0.094, 0.327, 2.0, 0.78};
      case 14: return {0.073, 0.251, 1.15, 0.82};
      case 18: return {0.068, 0.233, 0.85, 0.83};
      case 34: return {0.053, 0.181, 0.55, 0.86};
      default:
        rose_fatal("no calibration for depth ", depth);
    }
}

std::vector<int>
blockPlanFor(int depth)
{
    switch (depth) {
      case 6: return {1, 1};
      case 11: return {1, 1, 1, 1};
      case 14: return {1, 2, 2, 1};
      case 18: return {2, 2, 2, 2};
      case 34: return {3, 4, 6, 3};
      default:
        rose_fatal("unsupported ResNet depth ", depth,
                   " (zoo: 6, 11, 14, 18, 34)");
    }
}

/** Stage-1 channel width per depth. The small nets (6/11/14) are thin
 *  custom classifiers — which is why Table 3's latencies are nearly
 *  flat across them — while 18/34 use near-standard ResNet widths. */
int
baseChannelsFor(int depth)
{
    switch (depth) {
      case 6: return 32;
      case 11: return 28;
      case 14: return 24;
      case 18: return 36;
      case 34: return 40;
      default:
        rose_fatal("no width for depth ", depth);
    }
}

} // namespace

Model
makeResNet(int depth)
{
    Model m;
    m.depth = depth;
    m.name = "ResNet" + std::to_string(depth);
    m.blockPlan = blockPlanFor(depth);
    m.calib = calibFor(depth);

    const int base = baseChannelsFor(depth);
    const int stage_ch[] = {base, 2 * base, 4 * base, 8 * base};

    // Stem: 5x5/2 conv + 2x2/2 maxpool (DroNet-style front end).
    Shape cur{1, kDnnInputH, kDnnInputW};
    LayerSpec stem = makeConv("stem", cur, stage_ch[0], 5, 2, 2);
    cur = stem.outShape();
    m.layers.push_back(stem);
    LayerSpec pool = makeMaxPool("stem.pool", cur, 2, 2);
    cur = pool.outShape();
    m.layers.push_back(pool);

    // Residual stages.
    for (size_t stage = 0; stage < m.blockPlan.size(); ++stage) {
        int ch = stage_ch[stage];
        for (int block = 0; block < m.blockPlan[stage]; ++block) {
            std::string base = "s" + std::to_string(stage + 1) + ".b" +
                               std::to_string(block + 1);
            // First block of stages >= 2 downsamples and widens; its
            // shortcut needs a 1x1 projection conv.
            bool transition = stage > 0 && block == 0;
            int stride = transition ? 2 : 1;

            LayerSpec c1 =
                makeConv(base + ".conv1", cur, ch, 3, stride, 1);
            m.layers.push_back(c1);
            Shape mid = c1.outShape();
            LayerSpec c2 = makeConv(base + ".conv2", mid, ch, 3, 1, 1);
            m.layers.push_back(c2);
            if (transition) {
                m.layers.push_back(
                    makeConv(base + ".proj", cur, ch, 1, 2, 0));
            }
            cur = c2.outShape();
            m.layers.push_back(makeResidual(base + ".add", cur));
        }
    }

    // Heads: global average pool, then one 3-way dense + softmax per
    // head (angular and lateral), as in Figure 8.
    m.layers.push_back(makeGlobalAvgPool("gap", cur));
    Shape pooled{cur.c, 1, 1};
    m.layers.push_back(
        makeDense("head.angular", pooled, kClassesPerHead));
    m.layers.push_back(
        makeSoftmax("head.angular.softmax",
                    Shape{kClassesPerHead, 1, 1}));
    m.layers.push_back(
        makeDense("head.lateral", pooled, kClassesPerHead));
    m.layers.push_back(
        makeSoftmax("head.lateral.softmax",
                    Shape{kClassesPerHead, 1, 1}));
    return m;
}

const std::vector<int> &
resnetZoo()
{
    static const std::vector<int> zoo{6, 11, 14, 18, 34};
    return zoo;
}

std::shared_ptr<const Model>
sharedResNet(int depth)
{
    static MemoCache<int, Model> cache;
    return cache.getOrBuild(depth, [depth] {
        return std::make_shared<Model>(makeResNet(depth));
    });
}

} // namespace rose::dnn
