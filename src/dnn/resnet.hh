/**
 * @file
 * The DNN controller model zoo (Section 4.2.2, Table 3, Figure 8).
 *
 * TrailNet-style dual-headed ResNet classifiers: a shared convolutional
 * backbone followed by two 3-class heads — y_omega classifying the
 * UAV's angle relative to the trail (left/center/right) and y_l
 * classifying its lateral offset. Five capacities are evaluated:
 * ResNet-6/11/14/18/34.
 *
 * Each model carries its behavioral calibration: estimator noise
 * (larger nets are more accurate) and softmax temperature (larger nets
 * are more confident — the property driving Section 5.2's finding that
 * high-capacity DNNs make sharper corrections). The calibration is
 * validated against Table 3's accuracy column by tests/benches.
 */

#ifndef ROSE_DNN_RESNET_HH
#define ROSE_DNN_RESNET_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dnn/layers.hh"
#include "util/memo.hh"

namespace rose::dnn {

/** Behavioral calibration of a trained controller DNN. */
struct ClassifierCalib
{
    /** Std-dev of the model's internal heading estimate [rad]. */
    double sigmaHeading = 0.1;
    /** Std-dev of the model's internal lateral-offset estimate [m]. */
    double sigmaOffset = 0.3;
    /** Softmax temperature: lower = sharper/more confident outputs. */
    double temperature = 1.0;
    /** Paper-reported validation accuracy (Table 3), for reporting. */
    double paperAccuracy = 0.8;
};

/** One controller DNN. */
struct Model
{
    std::string name;
    int depth = 0;
    /** Per-stage residual block counts. */
    std::vector<int> blockPlan;
    std::vector<LayerSpec> layers;
    ClassifierCalib calib;

    uint64_t totalMacs() const;
    uint64_t totalWeights() const;
    uint64_t totalIm2colBytes() const;
    int weightedLayers() const;
};

/** Classifier input resolution (DroNet-style grayscale). */
constexpr int kDnnInputH = 200;
constexpr int kDnnInputW = 200;

/** Number of classes per head (left / center / right). */
constexpr int kClassesPerHead = 3;

/**
 * Build a zoo model.
 *
 * @param depth one of 6, 11, 14, 18, 34.
 */
Model makeResNet(int depth);

/** All evaluated depths, ascending. */
const std::vector<int> &resnetZoo();

/**
 * Process-wide shared zoo model: the trained-artifact equivalent of the
 * paper's per-depth checkpoint, built once and shared read-only across
 * all missions (and all BatchRunner workers) so sweeps don't rebuild
 * the model description per design point. Thread-safe.
 */
std::shared_ptr<const Model> sharedResNet(int depth);

} // namespace rose::dnn

#endif // ROSE_DNN_RESNET_HH
