#include "tensor.hh"

#include <sstream>

#include "util/logging.hh"

namespace rose::dnn {

Tensor::Tensor(int c, int h, int w)
    : c_(c), h_(h), w_(w), data_(size_t(c) * h * w, 0.0f)
{
    rose_assert(c > 0 && h > 0 && w > 0, "bad tensor shape");
}

float &
Tensor::at(int c, int y, int x)
{
    return data_[(size_t(c) * h_ + y) * w_ + x];
}

float
Tensor::at(int c, int y, int x) const
{
    return data_[(size_t(c) * h_ + y) * w_ + x];
}

float
Tensor::atPadded(int c, int y, int x) const
{
    if (y < 0 || y >= h_ || x < 0 || x >= w_)
        return 0.0f;
    return at(c, y, x);
}

void
Tensor::fill(float v)
{
    data_.assign(data_.size(), v);
}

std::string
Tensor::shapeString() const
{
    std::ostringstream os;
    os << "(" << c_ << "," << h_ << "," << w_ << ")";
    return os.str();
}

} // namespace rose::dnn
