/**
 * @file
 * Minimal dense CHW float tensor used by the DNN library (the
 * ONNX-Runtime substitute of Section 3.3's build flow).
 */

#ifndef ROSE_DNN_TENSOR_HH
#define ROSE_DNN_TENSOR_HH

#include <cstddef>
#include <string>
#include <vector>

namespace rose::dnn {

/** Channel-major (C, H, W) dense float tensor. */
class Tensor
{
  public:
    Tensor() = default;
    Tensor(int c, int h, int w);

    int channels() const { return c_; }
    int height() const { return h_; }
    int width() const { return w_; }
    size_t size() const { return data_.size(); }

    float &at(int c, int y, int x);
    float at(int c, int y, int x) const;

    /** Zero-padded read: out-of-bounds coordinates return 0. */
    float atPadded(int c, int y, int x) const;

    std::vector<float> &data() { return data_; }
    const std::vector<float> &data() const { return data_; }

    /**
     * Re-dimension in place, preserving allocated capacity: a reused
     * tensor that has seen its steady-state size never reallocates.
     * Newly exposed elements are value-initialized; callers overwrite.
     */
    void
    reshape(int c, int h, int w)
    {
        c_ = c;
        h_ = h;
        w_ = w;
        data_.resize(size_t(c) * h * w);
    }

    void fill(float v);

    std::string shapeString() const;

  private:
    int c_ = 0;
    int h_ = 0;
    int w_ = 0;
    std::vector<float> data_;
};

} // namespace rose::dnn

#endif // ROSE_DNN_TENSOR_HH
