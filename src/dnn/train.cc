#include "train.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace rose::dnn {

std::vector<float>
extractFeatures(const env::Image &img)
{
    rose_assert(img.width >= 16 && img.height >= 12,
                "image too small for feature grid");
    // 16x12 average-pooled grid + per-column means + bias.
    const int gw = 16, gh = 12;
    std::vector<float> f;
    f.reserve(size_t(gw) * gh + img.width + 1);

    for (int gy = 0; gy < gh; ++gy) {
        int y0 = gy * img.height / gh;
        int y1 = (gy + 1) * img.height / gh;
        for (int gx = 0; gx < gw; ++gx) {
            int x0 = gx * img.width / gw;
            int x1 = (gx + 1) * img.width / gw;
            double sum = 0.0;
            for (int y = y0; y < y1; ++y)
                for (int x = x0; x < x1; ++x)
                    sum += img.at(y, x);
            f.push_back(float(sum / double((y1 - y0) * (x1 - x0))));
        }
    }
    for (int x = 0; x < img.width; ++x) {
        double sum = 0.0;
        for (int y = 0; y < img.height; ++y)
            sum += img.at(y, x);
        f.push_back(float(sum / img.height));
    }
    f.push_back(1.0f); // bias
    return f;
}

Dataset
generateDataset(const env::World &world, const DatasetConfig &cfg)
{
    Dataset ds;
    Rng rng(cfg.seed);
    env::Camera cam(env::CameraConfig{}, rng.split());
    env::Drone drone;

    const EstimatorConfig &th = cfg.thresholds;
    for (int i = 0; i < cfg.samples; ++i) {
        double y = rng.uniform(-cfg.offsetRange, cfg.offsetRange);
        double psi =
            rng.uniform(-cfg.headingRangeRad, cfg.headingRangeRad);
        double x = rng.uniform(2.0, world.length() - 5.0);
        drone.setPose({x, world.centerY(x) + y, th.camAltitude},
                      Quat::fromEuler(0, 0,
                                      world.tangentAngle(x) + psi));
        env::Image img = cam.render(world, drone);

        Example ex;
        ex.features = extractFeatures(img);
        ex.angularLabel = psi > th.headingClassRad ? 0
                          : psi < -th.headingClassRad ? 2 : 1;
        ex.lateralLabel =
            y > th.offsetClassM ? 0 : y < -th.offsetClassM ? 2 : 1;
        ds.featureDim = ex.features.size();
        ds.examples.push_back(std::move(ex));
    }
    return ds;
}

// ------------------------------------------------------------ SoftmaxHead

SoftmaxHead::SoftmaxHead(size_t feature_dim)
    : dim_(feature_dim), w_(3 * feature_dim, 0.0f)
{
    rose_assert(feature_dim > 0, "empty feature vector");
}

std::array<float, 3>
SoftmaxHead::predict(const std::vector<float> &x) const
{
    rose_assert(x.size() == dim_, "feature dim mismatch");
    std::array<double, 3> z{};
    for (int c = 0; c < 3; ++c) {
        const float *row = &w_[size_t(c) * dim_];
        double acc = 0.0;
        for (size_t i = 0; i < dim_; ++i)
            acc += double(row[i]) * x[i];
        z[size_t(c)] = acc;
    }
    double mx = std::max({z[0], z[1], z[2]});
    double sum = 0.0;
    std::array<float, 3> p{};
    for (int c = 0; c < 3; ++c) {
        double e = std::exp(z[size_t(c)] - mx);
        p[size_t(c)] = float(e);
        sum += e;
    }
    for (float &v : p)
        v = float(v / sum);
    return p;
}

double
SoftmaxHead::sgdStep(const std::vector<float> &x, int label, double lr,
                     double l2)
{
    rose_assert(label >= 0 && label < 3, "bad label");
    std::array<float, 3> p = predict(x);
    for (int c = 0; c < 3; ++c) {
        double grad_scale =
            double(p[size_t(c)]) - (c == label ? 1.0 : 0.0);
        float *row = &w_[size_t(c) * dim_];
        for (size_t i = 0; i < dim_; ++i) {
            row[i] -= float(lr * (grad_scale * x[i] +
                                  l2 * double(row[i])));
        }
    }
    double pl = std::max(1e-12, double(p[size_t(label)]));
    return -std::log(pl);
}

// ---------------------------------------------------------------- training

TrainedClassifier
trainClassifier(const Dataset &train, const TrainConfig &cfg)
{
    rose_assert(!train.examples.empty(), "empty training set");
    TrainedClassifier model(train.featureDim);

    std::vector<size_t> order(train.examples.size());
    std::iota(order.begin(), order.end(), 0);
    Rng rng(cfg.seed);

    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        // Fisher-Yates shuffle with our deterministic RNG.
        for (size_t i = order.size(); i > 1; --i) {
            size_t j = size_t(rng.uniformInt(i));
            std::swap(order[i - 1], order[j]);
        }
        // Simple 1/sqrt schedule keeps late epochs stable.
        double lr = cfg.learningRate / std::sqrt(1.0 + epoch);
        for (size_t idx : order) {
            const Example &ex = train.examples[idx];
            model.angular.sgdStep(ex.features, ex.angularLabel, lr,
                                  cfg.l2);
            model.lateral.sgdStep(ex.features, ex.lateralLabel, lr,
                                  cfg.l2);
        }
    }
    return model;
}

ClassifierOutput
TrainedClassifier::infer(const env::Image &img) const
{
    std::vector<float> f = extractFeatures(img);
    ClassifierOutput out;
    out.angular.probs = angular.predict(f);
    out.lateral.probs = lateral.predict(f);
    out.valid = true;
    return out;
}

EvalResult
evaluate(const TrainedClassifier &model, const Dataset &ds)
{
    rose_assert(!ds.examples.empty(), "empty evaluation set");
    int oka = 0, okl = 0;
    for (const Example &ex : ds.examples) {
        oka += model.angular.predictClass(ex.features) ==
               ex.angularLabel;
        okl += model.lateral.predictClass(ex.features) ==
               ex.lateralLabel;
    }
    EvalResult r;
    r.angularAccuracy = double(oka) / double(ds.examples.size());
    r.lateralAccuracy = double(okl) / double(ds.examples.size());
    return r;
}

} // namespace rose::dnn
