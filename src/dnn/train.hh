/**
 * @file
 * Pure-C++ training path for the dual-headed trail classifiers.
 *
 * The paper trains its controllers in PyTorch on 12,000 rendered
 * images "with randomized positions, angles, and textures" (Section
 * 4.2.2) and validates on 1,200 held-out images. We reproduce that
 * pipeline end to end in C++ at reduced capacity: the dataset
 * generator renders camera images at randomized corridor poses and
 * labels them with the three-class heading/offset rules of Figure 8;
 * the trainer fits two softmax-regression heads (one angular, one
 * lateral) on pixel features by mini-batch SGD. Accuracy therefore
 * *emerges from data* rather than being asserted — the calibrated
 * Classifier in classifier.hh remains the runtime model (its noise
 * parameters are fit to Table 3), while this module demonstrates and
 * tests the learning pipeline itself.
 */

#ifndef ROSE_DNN_TRAIN_HH
#define ROSE_DNN_TRAIN_HH

#include <algorithm>
#include <array>
#include <vector>

#include "dnn/classifier.hh"
#include "env/sensors.hh"
#include "env/world.hh"
#include "util/rng.hh"

namespace rose::dnn {

/** One labeled example. */
struct Example
{
    std::vector<float> features;
    int angularLabel = 1; ///< 0 left, 1 center, 2 right
    int lateralLabel = 1;
};

/** A labeled image dataset. */
struct Dataset
{
    std::vector<Example> examples;
    size_t featureDim = 0;
};

/** Dataset generation parameters (paper Section 4.2.2 ranges). */
struct DatasetConfig
{
    int samples = 2000;
    double offsetRange = 1.2;      ///< |y| <= range [m]
    double headingRangeRad = 0.35; ///< |psi| <= range
    /** Label thresholds (the training-label rule of Figure 8). */
    EstimatorConfig thresholds;
    uint64_t seed = 1;
};

/**
 * Feature extraction: the image downsampled to a coarse pixel grid
 * plus per-column means, with a trailing bias term.
 */
std::vector<float> extractFeatures(const env::Image &img);

/** Render and label a dataset in the given world. */
Dataset generateDataset(const env::World &world,
                        const DatasetConfig &cfg);

/** A 3-class softmax-regression head. */
class SoftmaxHead
{
  public:
    explicit SoftmaxHead(size_t feature_dim);

    /** Class probabilities for one feature vector. */
    std::array<float, 3> predict(const std::vector<float> &x) const;

    int
    predictClass(const std::vector<float> &x) const
    {
        auto p = predict(x);
        return int(std::max_element(p.begin(), p.end()) - p.begin());
    }

    /** One SGD step on a single example; returns its cross-entropy. */
    double sgdStep(const std::vector<float> &x, int label, double lr,
                   double l2);

    size_t featureDim() const { return dim_; }

  private:
    size_t dim_;
    /** Row-major [3][dim] weights (bias folded into the features). */
    std::vector<float> w_;
};

/** Training hyperparameters. */
struct TrainConfig
{
    int epochs = 25;
    double learningRate = 0.05;
    double l2 = 1e-4;
    uint64_t seed = 7;
};

/** The trained dual-head model. */
struct TrainedClassifier
{
    SoftmaxHead angular;
    SoftmaxHead lateral;

    explicit TrainedClassifier(size_t dim) : angular(dim), lateral(dim) {}

    /** Dual-head inference on an image. */
    ClassifierOutput infer(const env::Image &img) const;
};

/** Per-head accuracies on a dataset. */
struct EvalResult
{
    double angularAccuracy = 0.0;
    double lateralAccuracy = 0.0;

    double mean() const
    { return 0.5 * (angularAccuracy + lateralAccuracy); }
};

/** Fit both heads by mini-batch SGD over shuffled epochs. */
TrainedClassifier trainClassifier(const Dataset &train,
                                  const TrainConfig &cfg);

/** Evaluate a trained classifier on a labeled dataset. */
EvalResult evaluate(const TrainedClassifier &model, const Dataset &ds);

} // namespace rose::dnn

#endif // ROSE_DNN_TRAIN_HH
