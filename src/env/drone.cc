#include "drone.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/serde.hh"

namespace rose::env {

namespace {

void
putVec3(StateWriter &w, const Vec3 &v)
{
    w.f64(v.x);
    w.f64(v.y);
    w.f64(v.z);
}

Vec3
getVec3(StateReader &r)
{
    Vec3 v;
    v.x = r.f64();
    v.y = r.f64();
    v.z = r.f64();
    return v;
}

} // namespace

Drone::Drone(const DroneParams &params) : params_(params)
{
}

void
Drone::setPose(const Vec3 &position, const Quat &attitude)
{
    pos_ = position;
    att_ = attitude;
    att_.normalize();
    vel_ = Vec3{};
    omega_ = Vec3{};
    cmd_ = {0.0, 0.0, 0.0, 0.0};
    thrust_ = {0.0, 0.0, 0.0, 0.0};
    lastAccel_ = Vec3{};
}

void
Drone::step(double dt)
{
    rose_assert(dt > 0.0, "drone step requires positive dt");

    // --- Motor lag: first-order response toward the commanded thrust.
    double alpha = dt / (params_.motorTauS + dt);
    for (int i = 0; i < 4; ++i) {
        double c = clampd(cmd_[i], 0.0, params_.maxMotorThrustN);
        thrust_[i] += alpha * (c - thrust_[i]);
    }
    double t_total = thrust_[0] + thrust_[1] + thrust_[2] + thrust_[3];

    // --- Forces: thrust along body z, gravity, drag.
    Vec3 f_world = att_.rotate(Vec3{0.0, 0.0, t_total});
    f_world.z -= params_.massKg * params_.gravity;
    f_world += extForce_;
    double speed = vel_.norm();
    f_world -= vel_ * (params_.linearDrag + params_.quadDrag * speed);

    Vec3 accel = f_world / params_.massKg;
    lastAccel_ = accel;

    // --- Torques. Motor layout (X config, arms at 45 deg):
    //   0 FL(+x,+y) CCW, 1 FR(+x,-y) CW, 2 RR(-x,-y) CCW, 3 RL(-x,+y) CW.
    // tau = sum r_i x (T_i z) = sum T_i * (y_i, -x_i, 0); CCW motors add
    // positive yaw reaction torque.
    double a = params_.armM * 0.70710678118;
    double k = params_.yawTorquePerThrust;
    Vec3 tau{
        a * (thrust_[0] - thrust_[1] - thrust_[2] + thrust_[3]),
        a * (-thrust_[0] - thrust_[1] + thrust_[2] + thrust_[3]),
        k * (thrust_[0] - thrust_[1] + thrust_[2] - thrust_[3])};

    // Euler's equation with diagonal inertia: I w_dot = tau - w x (I w).
    Vec3 iw{params_.inertia.x * omega_.x, params_.inertia.y * omega_.y,
            params_.inertia.z * omega_.z};
    Vec3 gyro = omega_.cross(iw);
    Vec3 omega_dot{(tau.x - gyro.x) / params_.inertia.x,
                   (tau.y - gyro.y) / params_.inertia.y,
                   (tau.z - gyro.z) / params_.inertia.z};

    // --- Semi-implicit Euler: rates first, then pose.
    omega_ += omega_dot * dt;
    vel_ += accel * dt;

    // Quaternion kinematics: q_dot = 0.5 * q * (0, omega_body).
    Quat wq{0.0, omega_.x, omega_.y, omega_.z};
    Quat q_dot = att_ * wq;
    att_.w += 0.5 * q_dot.w * dt;
    att_.x += 0.5 * q_dot.x * dt;
    att_.y += 0.5 * q_dot.y * dt;
    att_.z += 0.5 * q_dot.z * dt;
    att_.normalize();

    pos_ += vel_ * dt;

    // --- Ground contact: inelastic floor at z = 0.
    if (pos_.z < 0.0) {
        pos_.z = 0.0;
        if (vel_.z < 0.0)
            vel_.z = 0.0;
        // Ground friction bleeds horizontal speed and body rates.
        vel_.x *= 0.98;
        vel_.y *= 0.98;
        omega_ *= 0.90;
    }
}

flight::VehicleState
Drone::state() const
{
    return {pos_, vel_, att_, omega_};
}

double
Drone::resolveWallCollision(const Vec3 &clamped_pos, const Vec3 &wall_normal,
                            double restitution)
{
    Vec3 n = wall_normal.normalized();
    double v_into = -vel_.dot(n);
    pos_ = clamped_pos;
    if (v_into > 0.0) {
        // Reflect the into-wall component with restitution. A wall
        // strike is violent for a quadrotor: most momentum is lost to
        // the impact and the body is sent tumbling, which the flight
        // controller then has to recover from (the paper notes large
        // post-collision trajectory variance, Appendix A.7).
        vel_ += n * (v_into * (1.0 + restitution));
        vel_ *= 0.3;
        omega_ *= 0.3;
        omega_.z += (vel_.x * n.y - vel_.y * n.x > 0 ? 1.0 : -1.0) *
                    (1.5 + 0.5 * v_into);
    }
    return v_into > 0.0 ? v_into : 0.0;
}

void
Drone::saveState(StateWriter &w) const
{
    putVec3(w, pos_);
    putVec3(w, vel_);
    w.f64(att_.w);
    w.f64(att_.x);
    w.f64(att_.y);
    w.f64(att_.z);
    putVec3(w, omega_);
    for (double t : cmd_)
        w.f64(t);
    for (double t : thrust_)
        w.f64(t);
    putVec3(w, lastAccel_);
    putVec3(w, extForce_);
}

void
Drone::restoreState(StateReader &r)
{
    pos_ = getVec3(r);
    vel_ = getVec3(r);
    att_.w = r.f64();
    att_.x = r.f64();
    att_.y = r.f64();
    att_.z = r.f64();
    omega_ = getVec3(r);
    for (double &t : cmd_)
        t = r.f64();
    for (double &t : thrust_)
        t = r.f64();
    lastAccel_ = getVec3(r);
    extForce_ = getVec3(r);
}

} // namespace rose::env
