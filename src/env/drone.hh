/**
 * @file
 * 6-DOF quadrotor rigid-body dynamics with first-order motor (ESC) lag.
 *
 * Substitutes for AirSim's internal multirotor physics model: quaternion
 * attitude, thrust/torque generation from four motors in X configuration,
 * linear + quadratic aerodynamic drag, and ground contact. Integrated
 * with semi-implicit Euler at a sub-frame timestep.
 */

#ifndef ROSE_ENV_DRONE_HH
#define ROSE_ENV_DRONE_HH

#include "flight/types.hh"
#include "util/geometry.hh"

namespace rose {
class StateWriter;
class StateReader;
} // namespace rose

namespace rose::env {

/** Physical parameters of the simulated quadrotor. */
struct DroneParams
{
    double massKg = 1.0;
    /** Diagonal inertia tensor [kg m^2]. */
    Vec3 inertia{0.010, 0.010, 0.020};
    /** Motor moment arm (hub to motor) [m]. */
    double armM = 0.18;
    /** Yaw reaction torque per newton of thrust [m]. */
    double yawTorquePerThrust = 0.016;
    double maxMotorThrustN = 7.0;
    /** First-order motor/ESC time constant [s]. */
    double motorTauS = 0.02;
    /** Linear drag coefficient [N s/m]. */
    double linearDrag = 0.12;
    /** Quadratic drag coefficient [N s^2/m^2]. */
    double quadDrag = 0.008;
    /** Collision sphere radius used against world geometry [m]. */
    double bodyRadius = 0.25;
    double gravity = 9.81;
};

/**
 * The quadrotor body. step() advances the dynamics one timestep under
 * the currently commanded motor thrusts.
 */
class Drone
{
  public:
    explicit Drone(const DroneParams &params = {});

    /** Place the vehicle at a pose with zero rates (sim reset). */
    void setPose(const Vec3 &position, const Quat &attitude);

    /** Latch the motor thrust commands [N] (ESC input). */
    void setMotorCommand(const flight::MotorCommand &cmd) { cmd_ = cmd; }

    /**
     * Set a world-frame disturbance force [N] applied on subsequent
     * steps (wind/turbulence injected by the environment).
     */
    void setExternalForce(const Vec3 &f) { extForce_ = f; }

    /**
     * Integrate one physics substep.
     *
     * @param dt substep length [s].
     */
    void step(double dt);

    /** Kinematic state snapshot in the controller's vocabulary. */
    flight::VehicleState state() const;

    const Vec3 &position() const { return pos_; }
    const Vec3 &velocity() const { return vel_; }
    const Quat &attitude() const { return att_; }
    const Vec3 &bodyRates() const { return omega_; }

    /** Current (lagged) per-motor thrusts [N]. */
    const flight::MotorCommand &motorThrust() const { return thrust_; }

    /** Most recent world-frame acceleration (for the IMU model). */
    const Vec3 &lastAccel() const { return lastAccel_; }

    const DroneParams &params() const { return params_; }

    /**
     * Resolve a wall collision: clamp position back to the boundary
     * normal offset and remove the into-wall velocity component,
     * applying a restitution bounce. Returns the impact speed [m/s].
     */
    double resolveWallCollision(const Vec3 &clamped_pos,
                                const Vec3 &wall_normal,
                                double restitution = 0.3);

    /** Serialize the full rigid-body + motor-lag state. */
    void saveState(StateWriter &w) const;
    void restoreState(StateReader &r);

  private:
    DroneParams params_;
    Vec3 pos_{0.0, 0.0, 0.0};
    Vec3 vel_;
    Quat att_;
    Vec3 omega_;
    flight::MotorCommand cmd_{0.0, 0.0, 0.0, 0.0};
    flight::MotorCommand thrust_{0.0, 0.0, 0.0, 0.0};
    Vec3 lastAccel_;
    Vec3 extForce_;
};

} // namespace rose::env

#endif // ROSE_ENV_DRONE_HH
