#include "envsim.hh"

#include <cmath>
#include <sstream>

#include "util/logging.hh"
#include "util/serde.hh"

namespace rose::env {

namespace {

bool
finiteVec(const Vec3 &v)
{
    return std::isfinite(v.x) && std::isfinite(v.y) && std::isfinite(v.z);
}

} // namespace

EnvSim::EnvSim(const EnvConfig &cfg)
    : cfg_(cfg),
      vehicle_(makeVehicle(cfg.vehicleName, cfg.drone, cfg.controller,
                           cfg.cruiseAltitude, cfg.rover)),
      rng_(cfg.seed)
{
    rose_assert(cfg.frameHz > 0.0, "frame rate must be positive");
    rose_assert(cfg.physicsSubsteps > 0, "need at least one substep");

    if (cfg_.obstacles.empty()) {
        // No per-mission mutation: share the immutable geometry with
        // every other mission running in this process.
        world_ = sharedWorld(cfg.worldName);
    } else {
        std::shared_ptr<World> own = makeWorld(cfg.worldName);
        for (const Obstacle &o : cfg_.obstacles)
            own->addObstacle(o);
        world_ = std::move(own);
    }

    imu_ = std::make_unique<Imu>(cfg.imu, rng_.split());
    camera_ = std::make_unique<Camera>(cfg.camera, rng_.split());
    depth_ = std::make_unique<DepthSensor>(cfg.depthMaxRange,
                                           cfg.depthNoiseStd, rng_.split());

    vehicle_->reset(cfg.initialPosition, deg2rad(cfg.initialYawDeg));
}

void
EnvSim::stepFrames(Frames n)
{
    double dt = frameSeconds() / cfg_.physicsSubsteps;
    for (Frames f = 0; f < n; ++f) {
        for (int s = 0; s < cfg_.physicsSubsteps; ++s)
            substep(dt);
        ++frames_;
        time_ = frames_ * frameSeconds();
    }
}

void
EnvSim::substep(double dt)
{
    // Turbulence: zero-mean disturbance force, resampled each substep.
    Vec3 disturbance;
    if (cfg_.turbulenceForceStd > 0.0) {
        disturbance = Vec3{rng_.gaussian(0, cfg_.turbulenceForceStd),
                           rng_.gaussian(0, cfg_.turbulenceForceStd),
                           rng_.gaussian(0, cfg_.turbulenceForceStd)};
    }

    vehicle_->step(dt, disturbance);
    checkDivergence();

    // Wall/obstacle collision: clamp back outside and log the impact.
    Vec3 pos = vehicle_->state().position;
    double radius = vehicle_->bodyRadius();
    if (world_->collides(pos, radius) && pos.z > 0.0) {
        // Pillar strikes resolve radially away from the pillar axis.
        for (const Obstacle &o : world_->obstacles()) {
            double dx = pos.x - o.x, dy = pos.y - o.y;
            double d2 = dx * dx + dy * dy;
            double rr = o.radius + radius;
            if (d2 <= rr * rr) {
                double d = std::sqrt(std::max(d2, 1e-6));
                Vec3 n{dx / d, dy / d, 0.0};
                Vec3 clamped = Vec3{o.x, o.y, pos.z} +
                               n * (rr + 0.01);
                double impact =
                    vehicle_->resolveWallCollision(clamped, n);
                collision_.hasCollided = true;
                ++collision_.count;
                collision_.lastTime = time_;
                collision_.lastImpactSpeed = impact;
                collision_.lastPosition = vehicle_->state().position;
                return;
            }
        }
        double off = world_->lateralOffset(pos);
        double hw = world_->halfWidth(pos.x);
        double slope = world_->centerSlope(pos.x);
        // Inward wall normal: offset gradient is (-f'(x), 1, 0)/|.|;
        // on the left wall (off > 0) the inward direction is -gradient.
        Vec3 grad = Vec3{-slope, 1.0, 0.0}.normalized();
        Vec3 normal = off > 0.0 ? -grad : grad;

        double target_off = (hw - radius - 0.01) * (off > 0.0 ? 1.0 : -1.0);
        Vec3 clamped = pos + grad * (target_off - off);

        double impact =
            vehicle_->resolveWallCollision(clamped, normal);
        collision_.hasCollided = true;
        ++collision_.count;
        collision_.lastTime = time_;
        collision_.lastImpactSpeed = impact;
        collision_.lastPosition = vehicle_->state().position;
    }
}

ImuSample
EnvSim::getImu()
{
    return imu_->sample(vehicle_->sensorFrame(), time_);
}

Image
EnvSim::getImage()
{
    Image img;
    getImageInto(img);
    return img;
}

void
EnvSim::getImageInto(Image &out)
{
    SensorFrame f = vehicle_->sensorFrame();
    camera_->renderInto(*world_, f.position, f.attitude, out);
}

double
EnvSim::getDepth()
{
    SensorFrame f = vehicle_->sensorFrame();
    return depth_->sample(*world_, f.position, f.attitude.yaw());
}

void
EnvSim::commandVelocity(double forward, double lateral, double yaw_rate)
{
    flight::VelocityCommand cmd;
    cmd.forward = forward;
    cmd.lateral = lateral;
    cmd.yawRate = yaw_rate;
    cmd.altitude = cfg_.cruiseAltitude;
    vehicle_->command(cmd);
}

double
EnvSim::lateralOffset() const
{
    return world_->lateralOffset(vehicle_->state().position);
}

double
EnvSim::headingError() const
{
    flight::VehicleState s = vehicle_->state();
    double tangent = world_->tangentAngle(s.position.x);
    return wrapAngle(s.attitude.yaw() - tangent);
}

bool
EnvSim::missionComplete() const
{
    return world_->missionComplete(vehicle_->state().position);
}

void
EnvSim::checkDivergence() const
{
    flight::VehicleState s = vehicle_->state();
    if (finiteVec(s.position) && finiteVec(s.velocity) &&
        finiteVec(s.bodyRates) && std::isfinite(s.attitude.w) &&
        std::isfinite(s.attitude.x) && std::isfinite(s.attitude.y) &&
        std::isfinite(s.attitude.z))
        return;

    std::ostringstream os;
    os << "physics divergence: non-finite vehicle state at frame "
       << frames_ << " (t=" << time_ << "s): pos=(" << s.position.x
       << "," << s.position.y << "," << s.position.z << ") vel=("
       << s.velocity.x << "," << s.velocity.y << "," << s.velocity.z
       << ") att=(" << s.attitude.w << "," << s.attitude.x << ","
       << s.attitude.y << "," << s.attitude.z << ") omega=("
       << s.bodyRates.x << "," << s.bodyRates.y << ","
       << s.bodyRates.z << ")";
    throw DivergenceError(os.str());
}

void
EnvSim::saveState(StateWriter &w) const
{
    w.f64(time_);
    w.u64(frames_);
    w.boolean(collision_.hasCollided);
    w.u64(collision_.count);
    w.f64(collision_.lastTime);
    w.f64(collision_.lastImpactSpeed);
    w.f64(collision_.lastPosition.x);
    w.f64(collision_.lastPosition.y);
    w.f64(collision_.lastPosition.z);
    rng_.saveState(w);
    vehicle_->saveState(w);
    imu_->saveState(w);
    camera_->saveState(w);
    depth_->saveState(w);
}

void
EnvSim::restoreState(StateReader &r)
{
    time_ = r.f64();
    frames_ = r.u64();
    collision_.hasCollided = r.boolean();
    collision_.count = r.u64();
    collision_.lastTime = r.f64();
    collision_.lastImpactSpeed = r.f64();
    collision_.lastPosition.x = r.f64();
    collision_.lastPosition.y = r.f64();
    collision_.lastPosition.z = r.f64();
    rng_.restoreState(r);
    vehicle_->restoreState(r);
    imu_->restoreState(r);
    camera_->restoreState(r);
    depth_->restoreState(r);
}

} // namespace rose::env
