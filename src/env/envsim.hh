/**
 * @file
 * The AirSim-equivalent environment simulator facade.
 *
 * EnvSim owns the world, the quadrotor dynamics, the software-in-the-loop
 * flight controller (the paper's "SimpleFlight" partitioning, Figure 7),
 * and the sensor models. It exposes exactly the API surface the
 * synchronizer consumes over RPC in the paper (Section 3.1): discrete
 * frame stepping, sensor reads, actuation commands, and collision info.
 * Per the simulation-abstraction rule (Section 3.4.2), the simulated SoC
 * never touches this class directly — only serialized packets routed
 * through the synchronizer do.
 */

#ifndef ROSE_ENV_ENVSIM_HH
#define ROSE_ENV_ENVSIM_HH

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "env/drone.hh"
#include "env/sensors.hh"
#include "env/vehicle.hh"
#include "env/world.hh"
#include "flight/controller.hh"
#include "util/rng.hh"
#include "util/units.hh"

namespace rose::env {

/**
 * Thrown when the physics integrator produces a non-finite vehicle
 * state. The message carries a diagnostic dump (full state vector,
 * frame index, sim time) so divergence is attributable — and the
 * mission supervisor can catch it and restore a checkpoint instead of
 * the process dying silently on NaN-poisoned trajectories.
 */
class DivergenceError : public std::runtime_error
{
  public:
    explicit DivergenceError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Collision bookkeeping exposed through the API. */
struct CollisionInfo
{
    bool hasCollided = false;
    uint64_t count = 0;
    double lastTime = 0.0;
    double lastImpactSpeed = 0.0;
    Vec3 lastPosition;
};

/** Full environment configuration. */
struct EnvConfig
{
    std::string worldName = "tunnel";
    /** Vehicle morphology: "quadrotor" (the paper's UAV) or "rover"
     *  (the artifact's car option, Appendix A.8.3). */
    std::string vehicleName = "quadrotor";
    double frameHz = 60.0;
    /** Physics substeps per frame. */
    int physicsSubsteps = 10;
    uint64_t seed = 1;

    /** Spawn pose: x/y position, takeoff altitude, heading. */
    Vec3 initialPosition{1.0, 0.0, 0.4};
    double initialYawDeg = 0.0;
    /** Altitude setpoint held by the flight controller [m]. */
    double cruiseAltitude = 1.5;

    /** Pillar obstacles placed into the world at construction. */
    std::vector<Obstacle> obstacles;

    DroneParams drone;
    RoverParams rover;
    flight::ControllerConfig controller;
    ImuConfig imu;
    CameraConfig camera;
    double depthMaxRange = 30.0;
    double depthNoiseStd = 0.05;

    /**
     * Std-dev of the random world-frame disturbance force [N]; stands
     * in for the Unreal-side randomness the artifact appendix warns
     * about ("noise in the AirSim physics models").
     */
    double turbulenceForceStd = 0.08;
};

/** Environment simulator with frame-granular discrete stepping. */
class EnvSim
{
  public:
    explicit EnvSim(const EnvConfig &cfg);

    // --- Simulation control API ------------------------------------
    /** Advance the world by n frames (physics + sensors + control). */
    void stepFrames(Frames n);

    double simTime() const { return time_; }
    Frames frameCount() const { return frames_; }
    double frameSeconds() const { return 1.0 / cfg_.frameHz; }

    // --- Sensor API --------------------------------------------------
    ImuSample getImu();
    Image getImage();
    /** Render into a caller-reused buffer (no steady-state allocation). */
    void getImageInto(Image &out);
    double getDepth();
    const CollisionInfo &collisionInfo() const { return collision_; }

    // --- Actuation API ------------------------------------------------
    /**
     * Set the flight controller's tracked target (forward velocity,
     * lateral velocity, yaw rate). Altitude is managed internally.
     */
    void commandVelocity(double forward, double lateral, double yaw_rate);

    // --- Ground-truth / logging helpers --------------------------------
    flight::VehicleState kinematics() const
    { return vehicle_->state(); }
    const World &world() const { return *world_; }
    const VehicleModel &vehicle() const { return *vehicle_; }
    /** Mutable vehicle access, for fault-injection experiments and
     *  tests (e.g. teleporting or corrupting state via restoreState
     *  to exercise the divergence guards). */
    VehicleModel &mutableVehicle() { return *vehicle_; }

    /** Signed lateral offset from the corridor centerline [m]. */
    double lateralOffset() const;
    /** Heading error relative to the corridor tangent [rad]. */
    double headingError() const;
    bool missionComplete() const;

    // --- Checkpointing -------------------------------------------------
    /**
     * Serialize all mutable simulation state: clock, collision log,
     * turbulence RNG, vehicle dynamics, sensor noise streams. The
     * world and config are immutable and are reconstructed from the
     * same EnvConfig on restore.
     */
    void saveState(StateWriter &w) const;
    void restoreState(StateReader &r);

  private:
    void substep(double dt);
    void checkDivergence() const;

    EnvConfig cfg_;
    /** Immutable world geometry; shared across concurrent missions
     *  (env::sharedWorld) unless this mission placed obstacles, in
     *  which case it is a private copy. */
    std::shared_ptr<const World> world_;
    std::unique_ptr<VehicleModel> vehicle_;
    Rng rng_;
    std::unique_ptr<Imu> imu_;
    std::unique_ptr<Camera> camera_;
    std::unique_ptr<DepthSensor> depth_;

    double time_ = 0.0;
    Frames frames_ = 0;
    CollisionInfo collision_;
};

} // namespace rose::env

#endif // ROSE_ENV_ENVSIM_HH
