#include "sensors.hh"

#include <cmath>

#include "util/serde.hh"

namespace rose::env {

Imu::Imu(const ImuConfig &cfg, Rng rng) : cfg_(cfg), rng_(rng)
{
    accelBias_ = Vec3{rng_.gaussian(0, cfg_.accelBiasStd),
                      rng_.gaussian(0, cfg_.accelBiasStd),
                      rng_.gaussian(0, cfg_.accelBiasStd)};
    gyroBias_ = Vec3{rng_.gaussian(0, cfg_.gyroBiasStd),
                     rng_.gaussian(0, cfg_.gyroBiasStd),
                     rng_.gaussian(0, cfg_.gyroBiasStd)};
}

ImuSample
Imu::sample(const SensorFrame &frame, double time_s)
{
    // Specific force: the accelerometer measures kinematic acceleration
    // minus gravity, expressed in the body frame.
    Vec3 f_world = frame.accelWorld + Vec3{0.0, 0.0, cfg_.gravity};
    Vec3 f_body = frame.attitude.rotateInverse(f_world);

    ImuSample s;
    s.accel = f_body + accelBias_ +
              Vec3{rng_.gaussian(0, cfg_.accelNoiseStd),
                   rng_.gaussian(0, cfg_.accelNoiseStd),
                   rng_.gaussian(0, cfg_.accelNoiseStd)};
    s.gyro = frame.bodyRates + gyroBias_ +
             Vec3{rng_.gaussian(0, cfg_.gyroNoiseStd),
                  rng_.gaussian(0, cfg_.gyroNoiseStd),
                  rng_.gaussian(0, cfg_.gyroNoiseStd)};
    s.timestamp = time_s;
    return s;
}

ImuSample
Imu::sample(const Drone &drone, double time_s)
{
    return sample(SensorFrame{drone.position(), drone.attitude(),
                              drone.bodyRates(), drone.lastAccel()},
                  time_s);
}

namespace {

/** Deterministic texture hash: smooth-ish brightness jitter keyed on the
 *  wall-hit position, standing in for Unreal's randomized textures. */
double
textureAt(double x, double z, int side)
{
    double u = x * 2.7 + z * 1.3 + side * 17.0;
    double v = std::sin(u) * 43758.5453;
    return v - std::floor(v); // [0,1)
}

} // namespace

Camera::Camera(const CameraConfig &cfg, Rng rng) : cfg_(cfg), rng_(rng)
{
}

void
Camera::ensureDirections(double focal)
{
    if (colAlpha_.size() == size_t(cfg_.width) && dirFocal_ == focal)
        return;
    colAlpha_.resize(size_t(cfg_.width));
    for (int c = 0; c < cfg_.width; ++c) {
        // Column azimuth: leftmost column looks left of the heading.
        double u = (cfg_.width / 2.0 - 0.5 - c);
        colAlpha_[size_t(c)] = std::atan2(u, focal);
    }
    dirFocal_ = focal;
}

Image
Camera::render(const World &world, const Vec3 &position,
               const Quat &attitude)
{
    Image img;
    renderInto(world, position, attitude, img);
    return img;
}

void
Camera::renderInto(const World &world, const Vec3 &position,
                   const Quat &attitude, Image &img)
{
    img.width = cfg_.width;
    img.height = cfg_.height;
    img.pixels.resize(size_t(cfg_.width) * cfg_.height);
    double yaw = attitude.yaw();
    double hfov = deg2rad(cfg_.horizontalFovDeg);
    // Pinhole focal length in pixels (same for both axes).
    double focal = (cfg_.width / 2.0) / std::tan(hfov / 2.0);
    ensureDirections(focal);
    double cam_z = position.z;
    double wall_h = world.wallHeight();

    for (int c = 0; c < cfg_.width; ++c) {
        double az = yaw + colAlpha_[size_t(c)];
        RayHit hit = world.raycast(position, az);

        // Perpendicular distance for projection (avoids fisheye).
        double d = std::max(0.05, hit.distance * std::cos(az - yaw));

        // Rows of the wall's top and bottom edges.
        double mid = cfg_.height / 2.0 - 0.5;
        double top_row = mid - focal * (wall_h - cam_z) / d;
        double bot_row = mid + focal * cam_z / d;

        double shade_base = 0.25 + 0.6 / (1.0 + 0.12 * hit.distance);
        for (int r = 0; r < cfg_.height; ++r) {
            float v;
            if (!hit.hit) {
                // Open end of the corridor: horizon split.
                v = r < mid ? 0.85f : 0.15f;
            } else if (r < top_row) {
                v = 0.85f; // sky above the wall
            } else if (r > bot_row) {
                // Floor: brightness falls off with projected distance.
                double floor_d = focal * cam_z /
                                 std::max(0.5, double(r) - mid);
                v = float(0.10 + 0.25 / (1.0 + 0.2 * floor_d));
            } else {
                // Wall: distance shading plus texture jitter keyed on
                // the hit position and row height.
                double frac = (bot_row - r) /
                              std::max(1.0, bot_row - top_row);
                double tex = textureAt(hit.point.x + hit.point.y,
                                       frac * wall_h, hit.side);
                v = float(shade_base *
                          (1.0 + cfg_.textureAmplitude * (tex - 0.5)));
            }
            v += float(rng_.gaussian(0.0, cfg_.noiseStd));
            img.at(r, c) = float(clampd(v, 0.0, 1.0));
        }
    }
}

Image
Camera::render(const World &world, const Drone &drone)
{
    return render(world, drone.position(), drone.attitude());
}

double
DepthSensor::sample(const World &world, const Vec3 &position,
                    double heading_rad)
{
    RayHit hit = world.raycast(position, heading_rad, maxRange_);
    double d = hit.hit ? hit.distance : maxRange_;
    d += rng_.gaussian(0.0, noiseStd_);
    return clampd(d, 0.0, maxRange_);
}

double
DepthSensor::sample(const World &world, const Drone &drone)
{
    return sample(world, drone.position(), drone.attitude().yaw());
}

void
Imu::saveState(StateWriter &w) const
{
    rng_.saveState(w);
    w.f64(accelBias_.x);
    w.f64(accelBias_.y);
    w.f64(accelBias_.z);
    w.f64(gyroBias_.x);
    w.f64(gyroBias_.y);
    w.f64(gyroBias_.z);
}

void
Imu::restoreState(StateReader &r)
{
    rng_.restoreState(r);
    accelBias_.x = r.f64();
    accelBias_.y = r.f64();
    accelBias_.z = r.f64();
    gyroBias_.x = r.f64();
    gyroBias_.y = r.f64();
    gyroBias_.z = r.f64();
}

} // namespace rose::env
