#include "sensors.hh"

#include <algorithm>
#include <cmath>

#include "util/serde.hh"

namespace rose::env {

Imu::Imu(const ImuConfig &cfg, Rng rng) : cfg_(cfg), rng_(rng)
{
    accelBias_ = Vec3{rng_.gaussian(0, cfg_.accelBiasStd),
                      rng_.gaussian(0, cfg_.accelBiasStd),
                      rng_.gaussian(0, cfg_.accelBiasStd)};
    gyroBias_ = Vec3{rng_.gaussian(0, cfg_.gyroBiasStd),
                     rng_.gaussian(0, cfg_.gyroBiasStd),
                     rng_.gaussian(0, cfg_.gyroBiasStd)};
}

ImuSample
Imu::sample(const SensorFrame &frame, double time_s)
{
    // Specific force: the accelerometer measures kinematic acceleration
    // minus gravity, expressed in the body frame.
    Vec3 f_world = frame.accelWorld + Vec3{0.0, 0.0, cfg_.gravity};
    Vec3 f_body = frame.attitude.rotateInverse(f_world);

    ImuSample s;
    s.accel = f_body + accelBias_ +
              Vec3{rng_.gaussian(0, cfg_.accelNoiseStd),
                   rng_.gaussian(0, cfg_.accelNoiseStd),
                   rng_.gaussian(0, cfg_.accelNoiseStd)};
    s.gyro = frame.bodyRates + gyroBias_ +
             Vec3{rng_.gaussian(0, cfg_.gyroNoiseStd),
                  rng_.gaussian(0, cfg_.gyroNoiseStd),
                  rng_.gaussian(0, cfg_.gyroNoiseStd)};
    s.timestamp = time_s;
    return s;
}

ImuSample
Imu::sample(const Drone &drone, double time_s)
{
    return sample(SensorFrame{drone.position(), drone.attitude(),
                              drone.bodyRates(), drone.lastAccel()},
                  time_s);
}

namespace {

/** Deterministic texture hash: smooth-ish brightness jitter keyed on the
 *  wall-hit position, standing in for Unreal's randomized textures. */
double
textureAt(double x, double z, int side)
{
    double u = x * 2.7 + z * 1.3 + side * 17.0;
    double v = std::sin(u) * 43758.5453;
    return v - std::floor(v); // [0,1)
}

} // namespace

Camera::Camera(const CameraConfig &cfg, Rng rng) : cfg_(cfg), rng_(rng)
{
}

void
Camera::ensureDirections(double focal)
{
    if (colAlpha_.size() == size_t(cfg_.width) && dirFocal_ == focal)
        return;
    colAlpha_.resize(size_t(cfg_.width));
    for (int c = 0; c < cfg_.width; ++c) {
        // Column azimuth: leftmost column looks left of the heading.
        double u = (cfg_.width / 2.0 - 0.5 - c);
        colAlpha_[size_t(c)] = std::atan2(u, focal);
    }
    dirFocal_ = focal;
}

Image
Camera::render(const World &world, const Vec3 &position,
               const Quat &attitude)
{
    Image img;
    renderInto(world, position, attitude, img);
    return img;
}

void
Camera::renderInto(const World &world, const Vec3 &position,
                   const Quat &attitude, Image &img)
{
    img.width = cfg_.width;
    img.height = cfg_.height;
    img.pixels.resize(size_t(cfg_.width) * cfg_.height);
    double yaw = attitude.yaw();
    double hfov = deg2rad(cfg_.horizontalFovDeg);
    // Pinhole focal length in pixels (same for both axes).
    double focal = (cfg_.width / 2.0) / std::tan(hfov / 2.0);
    ensureDirections(focal);
    double cam_z = position.z;
    double wall_h = world.wallHeight();
    const int H = cfg_.height;
    const double mid = H / 2.0 - 0.5;

    // The floor brightness at row r is column-independent: hoist the
    // divide chain out of the pixel loop into one per-frame table,
    // using the exact expression the per-pixel code evaluated.
    floorShade_.resize(size_t(H));
    for (int r = 0; r < H; ++r) {
        double floor_d =
            focal * cam_z / std::max(0.5, double(r) - mid);
        floorShade_[size_t(r)] = float(0.10 + 0.25 / (1.0 + 0.2 * floor_d));
    }
    // Horizon split of the open-corridor view: r < mid for integer r.
    const int horizon = std::clamp(int(std::ceil(mid)), 0, H);
    colShade_.resize(size_t(H));

    for (int c = 0; c < cfg_.width; ++c) {
        double az = yaw + colAlpha_[size_t(c)];
        RayHit hit = world.raycast(position, az);

        // Perpendicular distance for projection (avoids fisheye).
        double d = std::max(0.05, hit.distance * std::cos(az - yaw));

        // Rows of the wall's top and bottom edges.
        double top_row = mid - focal * (wall_h - cam_z) / d;
        double bot_row = mid + focal * cam_z / d;

        // The per-row branch ladder resolves to three contiguous bands
        // (sky / wall / floor): for integer r, r < top_row iff
        // r < ceil(top_row) and r > bot_row iff r >= floor(bot_row)+1.
        // The floor test is subordinate to the sky test, so the floor
        // band cannot start above the sky band's end.
        float *shade = colShade_.data();
        if (!hit.hit) {
            // Open end of the corridor: horizon split.
            for (int r = 0; r < horizon; ++r)
                shade[r] = 0.85f;
            for (int r = horizon; r < H; ++r)
                shade[r] = 0.15f;
        } else {
            // Clamp in double before the int conversion: row edges can
            // be far outside [0, H) for extreme poses.
            int sky_end =
                int(std::clamp(std::ceil(top_row), 0.0, double(H)));
            int floor_begin = std::max(
                sky_end,
                int(std::clamp(std::floor(bot_row) + 1.0, 0.0,
                               double(H))));

            double shade_base =
                0.25 + 0.6 / (1.0 + 0.12 * hit.distance);
            double span = std::max(1.0, bot_row - top_row);
            double tex_u = hit.point.x + hit.point.y;

            for (int r = 0; r < sky_end; ++r)
                shade[r] = 0.85f; // sky above the wall
            for (int r = sky_end; r < floor_begin; ++r) {
                // Wall: distance shading plus texture jitter keyed on
                // the hit position and row height.
                double frac = (bot_row - r) / span;
                double tex = textureAt(tex_u, frac * wall_h, hit.side);
                shade[r] = float(shade_base *
                                 (1.0 +
                                  cfg_.textureAmplitude * (tex - 0.5)));
            }
            for (int r = floor_begin; r < H; ++r)
                shade[r] = floorShade_[size_t(r)];
        }

        // Noise pass: same row-ascending draw order as the fused loop.
        for (int r = 0; r < H; ++r) {
            float v =
                shade[r] + float(rng_.gaussian(0.0, cfg_.noiseStd));
            img.at(r, c) = float(clampd(v, 0.0, 1.0));
        }
    }
}

Image
Camera::render(const World &world, const Drone &drone)
{
    return render(world, drone.position(), drone.attitude());
}

double
DepthSensor::sample(const World &world, const Vec3 &position,
                    double heading_rad)
{
    RayHit hit = world.raycast(position, heading_rad, maxRange_);
    double d = hit.hit ? hit.distance : maxRange_;
    d += rng_.gaussian(0.0, noiseStd_);
    return clampd(d, 0.0, maxRange_);
}

double
DepthSensor::sample(const World &world, const Drone &drone)
{
    return sample(world, drone.position(), drone.attitude().yaw());
}

void
Imu::saveState(StateWriter &w) const
{
    rng_.saveState(w);
    w.f64(accelBias_.x);
    w.f64(accelBias_.y);
    w.f64(accelBias_.z);
    w.f64(gyroBias_.x);
    w.f64(gyroBias_.y);
    w.f64(gyroBias_.z);
}

void
Imu::restoreState(StateReader &r)
{
    rng_.restoreState(r);
    accelBias_.x = r.f64();
    accelBias_.y = r.f64();
    accelBias_.z = r.f64();
    gyroBias_.x = r.f64();
    gyroBias_.y = r.f64();
    gyroBias_.z = r.f64();
}

} // namespace rose::env
