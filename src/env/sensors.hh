/**
 * @file
 * Sensor models: IMU (accelerometer + gyroscope with bias and noise),
 * forward-facing depth sensor, and a first-person-view camera that
 * renders synthetic luminance rasters of the corridor.
 *
 * These substitute for AirSim's inertial sensor models and Unreal's
 * camera rendering. The camera image is a real raster (ray-cast walls
 * with distance shading, per-wall texture jitter, floor and sky bands),
 * carrying exactly the pose-relative-to-corridor information the
 * TrailNet-style classifiers consume. Sensors sample from a
 * SensorFrame so any vehicle model (quadrotor, rover) can carry them;
 * Drone-based convenience overloads are kept for tests.
 */

#ifndef ROSE_ENV_SENSORS_HH
#define ROSE_ENV_SENSORS_HH

#include <cstdint>
#include <vector>

#include "env/drone.hh"
#include "env/vehicle.hh"
#include "env/world.hh"
#include "util/geometry.hh"
#include "util/rng.hh"

namespace rose::env {

/** One IMU reading in the body frame. */
struct ImuSample
{
    /** Specific force [m/s^2] (gravity-reactive, as a real IMU reads). */
    Vec3 accel;
    /** Angular rate [rad/s]. */
    Vec3 gyro;
    /** Environment time of sampling [s]. */
    double timestamp = 0.0;
};

/** Grayscale float image, row-major, values in [0, 1]. */
struct Image
{
    int width = 0;
    int height = 0;
    std::vector<float> pixels;

    Image() = default;
    Image(int w, int h) : width(w), height(h), pixels(size_t(w) * h, 0.f) {}

    float &at(int row, int col)
    { return pixels[size_t(row) * width + col]; }
    float at(int row, int col) const
    { return pixels[size_t(row) * width + col]; }

    /** Serialized byte size when quantized to 8 bits for transport. */
    size_t byteSize() const { return pixels.size(); }
};

/** Noise/bias configuration for the IMU model. */
struct ImuConfig
{
    double accelNoiseStd = 0.05;  // [m/s^2]
    double gyroNoiseStd = 0.005;  // [rad/s]
    double accelBiasStd = 0.02;   // per-run constant bias draw
    double gyroBiasStd = 0.002;
    double gravity = 9.81;
};

/** IMU model; biases are drawn once per construction from the RNG. */
class Imu
{
  public:
    Imu(const ImuConfig &cfg, Rng rng);

    /** Sample the IMU from a vehicle sensor frame. */
    ImuSample sample(const SensorFrame &frame, double time_s);

    /** Convenience overload for bare Drone tests. */
    ImuSample sample(const Drone &drone, double time_s);

    /** Serialize noise stream + per-run bias draws. */
    void saveState(StateWriter &w) const;
    void restoreState(StateReader &r);

  private:
    ImuConfig cfg_;
    Rng rng_;
    Vec3 accelBias_;
    Vec3 gyroBias_;
};

/** Camera intrinsics; the paper's FPV camera has a 90 degree FOV. */
struct CameraConfig
{
    int width = 64;
    int height = 48;
    double horizontalFovDeg = 90.0;
    /** Pixel noise standard deviation. */
    double noiseStd = 0.01;
    /** Amplitude of per-wall-position texture variation. */
    double textureAmplitude = 0.15;
};

/**
 * FPV camera. Renders the corridor by casting one ray per image column
 * (the walls are vertical, so a column shares one wall hit), then fills
 * each column with sky / wall / floor bands using a pinhole projection
 * of the wall's top and bottom edges.
 */
class Camera
{
  public:
    Camera(const CameraConfig &cfg, Rng rng);

    /** Render the view from a pose. */
    Image render(const World &world, const Vec3 &position,
                 const Quat &attitude);

    /**
     * Render into a caller-reused image buffer: resized to the camera
     * dimensions, every pixel overwritten, no steady-state allocation.
     * Bit-identical to render() (which wraps this).
     */
    void renderInto(const World &world, const Vec3 &position,
                    const Quat &attitude, Image &out);

    /** Convenience overload for bare Drone tests. */
    Image render(const World &world, const Drone &drone);

    const CameraConfig &config() const { return cfg_; }

    /** Serialize the pixel-noise stream. */
    void saveState(StateWriter &w) const { rng_.saveState(w); }
    void restoreState(StateReader &r) { rng_.restoreState(r); }

  private:
    /** Rebuild the per-column direction table when the key changes. */
    void ensureDirections(double focal);

    CameraConfig cfg_;
    Rng rng_;
    /**
     * Cached per-column azimuth offsets atan2(u, focal): pure camera
     * geometry, so they are hoisted out of the per-frame loop and
     * invalidated only when width/FOV change. Only the atan2 value is
     * cached — the render still forms az = yaw + alpha and cos(az -
     * yaw) exactly as before, because (yaw + alpha) - yaw != alpha in
     * floating point and bit-identical frames are the contract.
     */
    std::vector<double> colAlpha_;
    double dirFocal_ = 0.0; ///< focal the table was built for
    /**
     * Per-frame floor-shade table: the floor brightness at row r
     * depends only on (focal, cam_z, r), not on the column, so it is
     * computed once per frame with the exact per-pixel expression and
     * looked up per column. Rebuilt every renderInto call (one divide
     * per row instead of per floor pixel).
     */
    std::vector<float> floorShade_;
    /** Per-column shade staging buffer (noise applied in a second
     *  pass, preserving the row-ascending RNG draw order). */
    std::vector<float> colShade_;
};

/**
 * Forward depth sensor used by the dynamic runtime (Section 5.3:
 * "we determine the deadline by measuring forward-facing depth-sensor
 * readings"). Returns the distance to the nearest obstacle in the
 * current heading.
 */
class DepthSensor
{
  public:
    DepthSensor(double max_range, double noise_std, Rng rng)
        : maxRange_(max_range), noiseStd_(noise_std), rng_(rng) {}

    double sample(const World &world, const Vec3 &position,
                  double heading_rad);

    /** Convenience overload for bare Drone tests. */
    double sample(const World &world, const Drone &drone);

    /** Serialize the range-noise stream. */
    void saveState(StateWriter &w) const { rng_.saveState(w); }
    void restoreState(StateReader &r) { rng_.restoreState(r); }

  private:
    double maxRange_;
    double noiseStd_;
    Rng rng_;
};

} // namespace rose::env

#endif // ROSE_ENV_SENSORS_HH
