#include "vehicle.hh"

#include <cmath>
#include <stdexcept>

#include "util/logging.hh"
#include "util/serde.hh"

namespace rose::env {

namespace {

flight::VehicleParams
vehicleParamsFrom(const DroneParams &d)
{
    flight::VehicleParams p;
    p.massKg = d.massKg;
    p.armM = d.armM;
    p.yawTorquePerThrust = d.yawTorquePerThrust;
    p.maxMotorThrustN = d.maxMotorThrustN;
    p.gravity = d.gravity;
    return p;
}

} // namespace

// ------------------------------------------------------ QuadrotorVehicle

QuadrotorVehicle::QuadrotorVehicle(const DroneParams &params,
                                   const flight::ControllerConfig &ctrl,
                                   double cruise_altitude)
    : drone_(params), controller_(vehicleParamsFrom(params), ctrl),
      cruiseAltitude_(cruise_altitude)
{
}

void
QuadrotorVehicle::reset(const Vec3 &position, double yaw_rad)
{
    drone_.setPose(position, Quat::fromEuler(0.0, 0.0, yaw_rad));
    controller_.reset();
    flight::VelocityCommand hover;
    hover.altitude = cruiseAltitude_;
    controller_.setCommand(hover);
}

void
QuadrotorVehicle::command(const flight::VelocityCommand &cmd)
{
    flight::VelocityCommand c = cmd;
    c.altitude = cruiseAltitude_;
    controller_.setCommand(c);
}

void
QuadrotorVehicle::step(double dt, const Vec3 &disturbance)
{
    drone_.setExternalForce(disturbance);
    drone_.setMotorCommand(controller_.update(drone_.state(), dt));
    drone_.step(dt);
}

flight::VehicleState
QuadrotorVehicle::state() const
{
    return drone_.state();
}

SensorFrame
QuadrotorVehicle::sensorFrame() const
{
    return {drone_.position(), drone_.attitude(), drone_.bodyRates(),
            drone_.lastAccel()};
}

double
QuadrotorVehicle::bodyRadius() const
{
    return drone_.params().bodyRadius;
}

double
QuadrotorVehicle::resolveWallCollision(const Vec3 &clamped_pos,
                                       const Vec3 &wall_normal)
{
    return drone_.resolveWallCollision(clamped_pos, wall_normal);
}

// -------------------------------------------------------- AckermannRover

AckermannRover::AckermannRover(const RoverParams &params)
    : params_(params)
{
    rose_assert(params_.wheelbase > 0, "bad wheelbase");
}

void
AckermannRover::reset(const Vec3 &position, double yaw_rad)
{
    pos_ = position;
    pos_.z = params_.sensorHeight;
    yaw_ = yaw_rad;
    speed_ = 0.0;
    steer_ = 0.0;
    cmd_ = flight::VelocityCommand{};
    lastAccel_ = Vec3{};
}

void
AckermannRover::command(const flight::VelocityCommand &cmd)
{
    cmd_ = cmd;
}

void
AckermannRover::step(double dt, const Vec3 &disturbance)
{
    // --- Longitudinal: speed servo with acceleration limit.
    double v_target = clampd(cmd_.forward, 0.0, params_.maxSpeed);
    double dv = clampd(v_target - speed_, -params_.maxAccel * dt,
                       params_.maxAccel * dt);
    // Disturbance force projects onto the direction of travel.
    double fwd_dist = (disturbance.x * std::cos(yaw_) +
                       disturbance.y * std::sin(yaw_)) /
                      params_.massKg;
    double v_prev = speed_;
    speed_ = clampd(speed_ + dv + fwd_dist * dt, 0.0, params_.maxSpeed);

    // --- Steering: bicycle relation, first-order servo. The lateral
    // target (non-holonomic) biases steering toward the same side.
    double v_eff = std::max(0.5, speed_);
    double steer_target =
        std::atan(params_.wheelbase * cmd_.yawRate / v_eff) +
        std::atan2(0.5 * cmd_.lateral, v_eff);
    steer_target = clampd(steer_target, -params_.maxSteer,
                          params_.maxSteer);
    double alpha = dt / (params_.steerTau + dt);
    steer_ += alpha * (steer_target - steer_);

    // --- Kinematic bicycle integration.
    double yaw_rate = speed_ / params_.wheelbase * std::tan(steer_);
    double cy = std::cos(yaw_), sy = std::sin(yaw_);
    pos_.x += speed_ * cy * dt;
    pos_.y += speed_ * sy * dt;
    yaw_ = wrapAngle(yaw_ + yaw_rate * dt);

    // Acceleration for the IMU model (longitudinal + centripetal).
    double a_long = (speed_ - v_prev) / dt;
    double a_lat = speed_ * yaw_rate;
    lastAccel_ = Vec3{a_long * cy - a_lat * sy,
                     a_long * sy + a_lat * cy, 0.0};
}

flight::VehicleState
AckermannRover::state() const
{
    flight::VehicleState s;
    s.position = pos_;
    s.velocity = Vec3{speed_ * std::cos(yaw_), speed_ * std::sin(yaw_),
                      0.0};
    s.attitude = Quat::fromEuler(0.0, 0.0, yaw_);
    s.bodyRates =
        Vec3{0.0, 0.0, speed_ / params_.wheelbase * std::tan(steer_)};
    return s;
}

SensorFrame
AckermannRover::sensorFrame() const
{
    flight::VehicleState s = state();
    return {s.position, s.attitude, s.bodyRates, lastAccel_};
}

double
AckermannRover::bodyRadius() const
{
    return params_.bodyRadius;
}

double
AckermannRover::resolveWallCollision(const Vec3 &clamped_pos,
                                     const Vec3 &wall_normal)
{
    flight::VehicleState s = state();
    double v_into = -s.velocity.dot(wall_normal.normalized());
    pos_ = clamped_pos;
    pos_.z = params_.sensorHeight;
    if (v_into > 0.0) {
        // Scrape: lose most speed, steer stays.
        speed_ *= 0.2;
    }
    return v_into > 0.0 ? v_into : 0.0;
}

void
QuadrotorVehicle::saveState(StateWriter &w) const
{
    drone_.saveState(w);
    controller_.saveState(w);
}

void
QuadrotorVehicle::restoreState(StateReader &r)
{
    drone_.restoreState(r);
    controller_.restoreState(r);
}

void
AckermannRover::saveState(StateWriter &w) const
{
    w.f64(pos_.x);
    w.f64(pos_.y);
    w.f64(pos_.z);
    w.f64(yaw_);
    w.f64(speed_);
    w.f64(steer_);
    w.f64(cmd_.forward);
    w.f64(cmd_.lateral);
    w.f64(cmd_.yawRate);
    w.f64(cmd_.altitude);
    w.f64(lastAccel_.x);
    w.f64(lastAccel_.y);
    w.f64(lastAccel_.z);
}

void
AckermannRover::restoreState(StateReader &r)
{
    pos_.x = r.f64();
    pos_.y = r.f64();
    pos_.z = r.f64();
    yaw_ = r.f64();
    speed_ = r.f64();
    steer_ = r.f64();
    cmd_.forward = r.f64();
    cmd_.lateral = r.f64();
    cmd_.yawRate = r.f64();
    cmd_.altitude = r.f64();
    lastAccel_.x = r.f64();
    lastAccel_.y = r.f64();
    lastAccel_.z = r.f64();
}

// ---------------------------------------------------------------- factory

std::unique_ptr<VehicleModel>
makeVehicle(const std::string &name, const DroneParams &drone_params,
            const flight::ControllerConfig &ctrl_cfg,
            double cruise_altitude, const RoverParams &rover_params)
{
    if (name == "quadrotor" || name == "drone") {
        return std::make_unique<QuadrotorVehicle>(
            drone_params, ctrl_cfg, cruise_altitude);
    }
    if (name == "rover" || name == "car")
        return std::make_unique<AckermannRover>(rover_params);
    // Throw instead of aborting: a bad vehicle name in one batch spec
    // must fail that mission slot, not take down the whole pool.
    throw std::invalid_argument("unknown vehicle: " + name);
}

} // namespace rose::env
