/**
 * @file
 * Vehicle abstraction for the environment simulator.
 *
 * The paper's artifact supports "deploying a car vs a drone
 * simulation" (Appendix A.8.3); RoSÉ's roadmap spans robot
 * morphologies (Section 6). This interface decouples EnvSim from the
 * quadrotor so different vehicle models plug into the same worlds,
 * sensors, synchronizer, and SoC stack:
 *
 *  - QuadrotorVehicle: the 6-DOF drone + SimpleFlight-class cascaded
 *    controller (the paper's evaluated platform);
 *  - AckermannRover: a non-holonomic ground vehicle (kinematic bicycle
 *    model with speed/steering servos), interpreting the same
 *    VelocityCommand targets a companion computer sends.
 */

#ifndef ROSE_ENV_VEHICLE_HH
#define ROSE_ENV_VEHICLE_HH

#include <memory>
#include <string>

#include "env/drone.hh"
#include "flight/controller.hh"
#include "util/rng.hh"

namespace rose::env {

/** Everything the sensor models need from a vehicle. */
struct SensorFrame
{
    Vec3 position;
    Quat attitude;
    Vec3 bodyRates;
    /** World-frame kinematic acceleration (for the IMU). */
    Vec3 accelWorld;
};

/** A vehicle that can live inside EnvSim. */
class VehicleModel
{
  public:
    virtual ~VehicleModel() = default;

    virtual std::string vehicleName() const = 0;

    /** Place the vehicle at a pose with zero rates. */
    virtual void reset(const Vec3 &position, double yaw_rad) = 0;

    /** Latch a companion-computer command (tracked until replaced). */
    virtual void command(const flight::VelocityCommand &cmd) = 0;

    /**
     * Advance one physics substep.
     *
     * @param dt substep [s].
     * @param disturbance world-frame disturbance force [N].
     */
    virtual void step(double dt, const Vec3 &disturbance) = 0;

    virtual flight::VehicleState state() const = 0;
    virtual SensorFrame sensorFrame() const = 0;

    /** Collision sphere radius against world geometry [m]. */
    virtual double bodyRadius() const = 0;

    /**
     * Resolve a wall collision (position already clamped by the
     * caller); returns the impact speed.
     */
    virtual double resolveWallCollision(const Vec3 &clamped_pos,
                                        const Vec3 &wall_normal) = 0;

    /** Serialize dynamic state (not parameters) for checkpointing. */
    virtual void saveState(StateWriter &w) const = 0;
    virtual void restoreState(StateReader &r) = 0;
};

/** The paper's UAV: Drone dynamics + cascaded flight controller. */
class QuadrotorVehicle : public VehicleModel
{
  public:
    QuadrotorVehicle(const DroneParams &params,
                     const flight::ControllerConfig &ctrl_cfg,
                     double cruise_altitude);

    std::string vehicleName() const override { return "quadrotor"; }
    void reset(const Vec3 &position, double yaw_rad) override;
    void command(const flight::VelocityCommand &cmd) override;
    void step(double dt, const Vec3 &disturbance) override;
    flight::VehicleState state() const override;
    SensorFrame sensorFrame() const override;
    double bodyRadius() const override;
    double resolveWallCollision(const Vec3 &clamped_pos,
                                const Vec3 &wall_normal) override;
    void saveState(StateWriter &w) const override;
    void restoreState(StateReader &r) override;

    const Drone &drone() const { return drone_; }

  private:
    Drone drone_;
    flight::CascadedController controller_;
    double cruiseAltitude_;
};

/** Parameters of the ground rover. */
struct RoverParams
{
    /** Wheelbase [m]. */
    double wheelbase = 0.6;
    /** Maximum steering angle [rad]. */
    double maxSteer = 0.55;
    /** Longitudinal acceleration limit [m/s^2]. */
    double maxAccel = 4.0;
    /** Maximum speed [m/s]. */
    double maxSpeed = 15.0;
    /** Steering servo time constant [s]. */
    double steerTau = 0.08;
    /** Camera/sensor mast height [m]. */
    double sensorHeight = 0.8;
    /** Collision radius [m]. */
    double bodyRadius = 0.35;
    double massKg = 8.0;
};

/**
 * Kinematic-bicycle ground vehicle. VelocityCommand interpretation:
 * `forward` is the speed target; `yawRate` maps to a steering angle
 * via the bicycle relation delta = atan(L * omega / v); `lateral`
 * (not executable by a non-holonomic platform) biases steering;
 * `altitude` is ignored.
 */
class AckermannRover : public VehicleModel
{
  public:
    explicit AckermannRover(const RoverParams &params = {});

    std::string vehicleName() const override { return "rover"; }
    void reset(const Vec3 &position, double yaw_rad) override;
    void command(const flight::VelocityCommand &cmd) override;
    void step(double dt, const Vec3 &disturbance) override;
    flight::VehicleState state() const override;
    SensorFrame sensorFrame() const override;
    double bodyRadius() const override;
    double resolveWallCollision(const Vec3 &clamped_pos,
                                const Vec3 &wall_normal) override;
    void saveState(StateWriter &w) const override;
    void restoreState(StateReader &r) override;

    double speed() const { return speed_; }
    double steerAngle() const { return steer_; }

  private:
    RoverParams params_;
    Vec3 pos_;
    double yaw_ = 0.0;
    double speed_ = 0.0;
    double steer_ = 0.0;
    flight::VelocityCommand cmd_;
    Vec3 lastAccel_;
};

/**
 * Vehicle factory.
 *
 * @param name "quadrotor" or "rover".
 */
std::unique_ptr<VehicleModel>
makeVehicle(const std::string &name, const DroneParams &drone_params,
            const flight::ControllerConfig &ctrl_cfg,
            double cruise_altitude, const RoverParams &rover_params = {});

} // namespace rose::env

#endif // ROSE_ENV_VEHICLE_HH
