#include "world.hh"

#include <cmath>
#include <stdexcept>

#include "util/logging.hh"
#include "util/memo.hh"

namespace rose::env {

double
World::centerSlope(double x) const
{
    const double h = 1e-4;
    return (centerY(x + h) - centerY(x - h)) / (2.0 * h);
}

double
World::tangentAngle(double x) const
{
    return std::atan2(centerSlope(x), 1.0);
}

double
World::lateralOffset(const Vec3 &pos) const
{
    return pos.y - centerY(pos.x);
}

bool
World::collides(const Vec3 &pos, double radius) const
{
    if (pos.z < 0.0)
        return true; // below the floor
    if (pos.x < -2.0)
        return true; // flew backwards out of the start area
    for (const Obstacle &o : obstacles_) {
        double dx = pos.x - o.x, dy = pos.y - o.y;
        if (dx * dx + dy * dy <= (o.radius + radius) * (o.radius + radius))
            return true;
    }
    double off = lateralOffset(pos);
    return std::abs(off) + radius >= halfWidth(pos.x);
}

namespace {

/** Nearest ray-circle intersection distance, or a negative value. */
double
rayCircle(double ox, double oy, double dx, double dy,
          const Obstacle &o)
{
    double cx = o.x - ox, cy = o.y - oy;
    double t = cx * dx + cy * dy;
    if (t < 0.0)
        return -1.0;
    double closest2 = cx * cx + cy * cy - t * t;
    double r2 = o.radius * o.radius;
    if (closest2 > r2)
        return -1.0;
    double thit = t - std::sqrt(r2 - closest2);
    return thit >= 0.0 ? thit : 0.0;
}

} // namespace

RayHit
World::raycast(const Vec3 &origin, double azimuth, double max_range) const
{
    // The walls are smooth analytic curves; fixed-step marching with a
    // bisection refinement is robust and plenty fast for sensor rates.
    const double coarse = 0.10;
    double dx = std::cos(azimuth);
    double dy = std::sin(azimuth);

    // Nearest pillar strike bounds the wall search.
    double pillar_t = max_range + 1.0;
    for (const Obstacle &o : obstacles_) {
        double t = rayCircle(origin.x, origin.y, dx, dy, o);
        if (t >= 0.0 && t < pillar_t)
            pillar_t = t;
    }

    auto outside = [&](double t) {
        double x = origin.x + dx * t;
        double y = origin.y + dy * t;
        return std::abs(y - centerY(x)) >= halfWidth(x);
    };

    RayHit hit;
    if (outside(0.0)) {
        // Ray starts inside a wall; report an immediate hit.
        hit.hit = true;
        hit.distance = 0.0;
        hit.point = origin;
        hit.side = lateralOffset(origin) > 0.0 ? 1 : -1;
        return hit;
    }

    auto pillarHit = [&]() {
        RayHit h;
        h.hit = true;
        h.distance = pillar_t;
        h.point = Vec3{origin.x + dx * pillar_t,
                       origin.y + dy * pillar_t, origin.z};
        h.side = lateralOffset(h.point) > 0.0 ? 1 : -1;
        return h;
    };

    double t_prev = 0.0;
    for (double t = coarse; t <= max_range; t += coarse) {
        if (t > pillar_t && pillar_t <= max_range)
            return pillarHit();
        if (outside(t)) {
            // Bisect [t_prev, t] to localize the crossing.
            double lo = t_prev, hi = t;
            for (int i = 0; i < 20; ++i) {
                double mid = 0.5 * (lo + hi);
                if (outside(mid))
                    hi = mid;
                else
                    lo = mid;
            }
            if (pillar_t < hi && pillar_t <= max_range)
                return pillarHit();
            hit.hit = true;
            hit.distance = hi;
            hit.point = Vec3{origin.x + dx * hi, origin.y + dy * hi,
                             origin.z};
            hit.side =
                (hit.point.y - centerY(hit.point.x)) > 0.0 ? 1 : -1;
            return hit;
        }
        t_prev = t;
    }
    if (pillar_t <= max_range)
        return pillarHit();
    hit.hit = false;
    hit.distance = max_range;
    hit.point = Vec3{origin.x + dx * max_range, origin.y + dy * max_range,
                     origin.z};
    return hit;
}

namespace {

/** Smoothstep blend used to round zigzag corners. */
double
smoothstep(double e0, double e1, double x)
{
    double t = clampd((x - e0) / (e1 - e0), 0.0, 1.0);
    return t * t * (3.0 - 2.0 * t);
}

} // namespace

double
ZigzagWorld::centerSlope(double x) const
{
    // Segment k has slope +kSlope for even k, -kSlope for odd k.
    // Corners blend symmetrically over [corner - kRound,
    // corner + kRound]; at most one blend is active at a time since
    // kRound < kSegment / 2.
    int k = int(std::floor(x / kSegment));
    double sign = (k % 2 == 0) ? 1.0 : -1.0;
    double here = sign * kSlope;
    double prev = k == 0 ? 0.0 : -here;
    double next = -here;
    double corner_prev = double(k) * kSegment;
    double corner_next = double(k + 1) * kSegment;

    if (x < corner_prev + kRound) {
        return lerp(prev, here,
                    smoothstep(corner_prev - kRound,
                               corner_prev + kRound, x));
    }
    if (x > corner_next - kRound) {
        return lerp(here, next,
                    smoothstep(corner_next - kRound,
                               corner_next + kRound, x));
    }
    return here;
}

double
ZigzagWorld::centerY(double x) const
{
    // Integrate the slope numerically; the step is fine enough for
    // sensor rates and the result is cached nowhere (cheap anyway).
    const double h = 0.25;
    double y = 0.0;
    double t = 0.0;
    while (t + h <= x) {
        y += 0.5 * (centerSlope(t) + centerSlope(t + h)) * h;
        t += h;
    }
    if (x > t)
        y += 0.5 * (centerSlope(t) + centerSlope(x)) * (x - t);
    return y;
}

std::unique_ptr<World>
makeWorld(const std::string &name)
{
    if (name == "tunnel")
        return std::make_unique<TunnelWorld>();
    if (name == "s-shape" || name == "sshape")
        return std::make_unique<SShapeWorld>();
    if (name == "zigzag")
        return std::make_unique<ZigzagWorld>();
    // Throw instead of aborting so one bad world name in a batch spec
    // fails its mission slot, not the whole process.
    throw std::invalid_argument("unknown world: " + name);
}

std::shared_ptr<const World>
sharedWorld(const std::string &name)
{
    static MemoCache<std::string, World> cache;
    return cache.getOrBuild(
        name, [&name]() -> std::shared_ptr<World> {
            return makeWorld(name);
        });
}

} // namespace rose::env
