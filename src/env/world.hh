/**
 * @file
 * Corridor world geometry for the UAV navigation task.
 *
 * The paper evaluates two Unreal Engine maps (Figure 9): "tunnel", a
 * straight 50 m path 3.2 m wide, and "s-shape", an S-shaped 80 m
 * trajectory with more lateral room. We model both as channel worlds: a
 * centerline y = f(x) with half-width w(x), walls at y = f(x) +- w(x),
 * floor at z = 0 and walls of finite height (used by the camera model).
 * The mission is completed upon reaching x = length() (as in Figure 11:
 * "the mission is completed upon reaching an x-coordinate of 80").
 */

#ifndef ROSE_ENV_WORLD_HH
#define ROSE_ENV_WORLD_HH

#include <memory>
#include <string>
#include <vector>

#include "util/geometry.hh"

namespace rose::env {

/** Result of a horizontal-plane raycast against the corridor walls. */
struct RayHit
{
    /** Distance to the nearest wall along the ray [m]; range-clamped. */
    double distance = 0.0;
    /** True if the ray hit a wall within the max range. */
    bool hit = false;
    /** World position of the hit point (valid when hit). */
    Vec3 point;
    /** +1 if the left wall (y > center) was hit, -1 for the right wall. */
    int side = 0;
};

/** A cylindrical pillar obstacle standing on the corridor floor. */
struct Obstacle
{
    double x = 0.0;
    double y = 0.0;
    double radius = 0.4;
};

/**
 * Abstract corridor world. Coordinates: x is mission progress, y is
 * lateral, z is altitude. Worlds may additionally carry pillar
 * obstacles (full-height cylinders): they block rays (so the camera
 * renders them and the depth sensor sees them) and collide like walls.
 */
class World
{
  public:
    virtual ~World() = default;

    /** Human-readable map name ("tunnel", "s-shape"). */
    virtual std::string name() const = 0;

    /** Mission length along x [m]. */
    virtual double length() const = 0;

    /** Centerline lateral position at progress x. */
    virtual double centerY(double x) const = 0;

    /** Corridor half-width at progress x. */
    virtual double halfWidth(double x) const = 0;

    /** Wall height used by the camera model [m]. */
    virtual double wallHeight() const { return 4.0; }

    /** Slope dCenterY/dx, default via central difference. */
    virtual double centerSlope(double x) const;

    /** Heading of the corridor tangent at x [rad]. */
    double tangentAngle(double x) const;

    /** Signed lateral offset of a point from the centerline (+ = left). */
    double lateralOffset(const Vec3 &pos) const;

    /**
     * Check whether a sphere of the given radius at pos penetrates a
     * wall, the floor, or the entry plane.
     */
    bool collides(const Vec3 &pos, double radius) const;

    /** True once the mission end plane has been crossed. */
    bool missionComplete(const Vec3 &pos) const
    { return pos.x >= length(); }

    /**
     * March a ray from origin along the horizontal direction given by
     * azimuth (world yaw) until it exits the corridor through a wall
     * or strikes a pillar obstacle, whichever is closer.
     *
     * @param origin ray start; only x/y are used for wall intersection.
     * @param azimuth world-frame heading of the ray [rad].
     * @param max_range give up after this distance [m].
     */
    RayHit raycast(const Vec3 &origin, double azimuth,
                   double max_range = 60.0) const;

    /** Add a pillar obstacle. */
    void addObstacle(const Obstacle &o) { obstacles_.push_back(o); }

    const std::vector<Obstacle> &obstacles() const
    { return obstacles_; }

  private:
    std::vector<Obstacle> obstacles_;
};

/** Straight 50 m corridor, 3.2 m wide (walls at y = +-1.6 m). */
class TunnelWorld : public World
{
  public:
    std::string name() const override { return "tunnel"; }
    double length() const override { return 50.0; }
    double centerY(double) const override { return 0.0; }
    double halfWidth(double) const override { return 1.6; }
    double centerSlope(double) const override { return 0.0; }
};

/**
 * S-shaped 80 m corridor: centerline swings one full S (half sine
 * period each way), wider than the tunnel so there is room for error
 * but constant correction is required.
 */
class SShapeWorld : public World
{
  public:
    std::string name() const override { return "s-shape"; }
    double length() const override { return 80.0; }

    double
    centerY(double x) const override
    {
        return amplitude_ * std::sin(2.0 * kPi * x / length());
    }

    double halfWidth(double) const override { return 2.0; }

    double
    centerSlope(double x) const override
    {
        return amplitude_ * (2.0 * kPi / length()) *
               std::cos(2.0 * kPi * x / length());
    }

  private:
    double amplitude_ = 8.0;
};

/**
 * Zigzag corridor: piecewise-linear centerline alternating heading by
 * +-zigzag angle every segment — sharper direction reversals than the
 * s-shape's smooth sine, stressing the controller's correction rate
 * (smoothed corners keep the slope continuous for the raycaster).
 */
class ZigzagWorld : public World
{
  public:
    std::string name() const override { return "zigzag"; }
    double length() const override { return 60.0; }
    double halfWidth(double) const override { return 2.2; }
    double centerY(double x) const override;
    double centerSlope(double x) const override;

  private:
    static constexpr double kSegment = 15.0; ///< segment length [m]
    static constexpr double kSlope = 0.35;   ///< tan of zig angle
    static constexpr double kRound = 2.0;    ///< corner rounding [m]
};

/** Construct a world by map name; fatal on unknown names. */
std::unique_ptr<World> makeWorld(const std::string &name);

/**
 * Process-wide shared immutable world geometry, built once per map name
 * and handed out read-only to every mission (thread-safe; used by
 * parallel mission batches). Missions that place obstacles get a
 * private mutable copy from makeWorld() instead.
 */
std::shared_ptr<const World> sharedWorld(const std::string &name);

} // namespace rose::env

#endif // ROSE_ENV_WORLD_HH
