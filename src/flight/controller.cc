#include "controller.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/serde.hh"

namespace rose::flight {

CascadedController::CascadedController(const VehicleParams &params,
                                       const ControllerConfig &cfg)
    : params_(params), cfg_(cfg),
      altPid_(cfg.altitude),
      velFwdPid_(cfg.velocity), velLatPid_(cfg.velocity),
      rollPid_(cfg.attitude), pitchPid_(cfg.attitude),
      rateRollPid_(cfg.rate), ratePitchPid_(cfg.rate), rateYawPid_(cfg.rate)
{
}

MotorCommand
CascadedController::update(const VehicleState &state, double dt)
{
    rose_assert(dt > 0.0, "controller requires positive dt");

    // --- Altitude loop: z error -> vertical acceleration -> collective.
    double az_cmd =
        altPid_.update(command_.altitude - state.position.z, dt);
    double tilt_comp =
        std::max(0.35, state.attitude.rotate(Vec3{0, 0, 1}).z);
    double thrust_total =
        params_.massKg * (params_.gravity + az_cmd) / tilt_comp;
    thrust_total = clampd(thrust_total, 0.0,
                          4.0 * params_.maxMotorThrustN);

    // --- Horizontal velocity loop in the body-yaw frame.
    double yaw = state.attitude.yaw();
    double cy = std::cos(yaw), sy = std::sin(yaw);
    // World velocity expressed in the yaw-aligned frame.
    double v_fwd = cy * state.velocity.x + sy * state.velocity.y;
    double v_lat = -sy * state.velocity.x + cy * state.velocity.y;

    double a_fwd = velFwdPid_.update(command_.forward - v_fwd, dt);
    double a_lat = velLatPid_.update(command_.lateral - v_lat, dt);

    // Acceleration targets map to tilt. With body x-forward / z-up,
    // positive pitch (about +y) tilts thrust toward +x (forward accel);
    // positive roll (about +x) tilts thrust toward -y, so a leftward
    // (+y) acceleration needs negative roll.
    double pitch_cmd = clampd(std::atan2(a_fwd, params_.gravity),
                              -cfg_.tiltLimit, cfg_.tiltLimit);
    double roll_cmd = clampd(-std::atan2(a_lat, params_.gravity),
                             -cfg_.tiltLimit, cfg_.tiltLimit);

    // --- Attitude loop: tilt error -> body-rate target.
    double roll = state.attitude.roll();
    double pitch = state.attitude.pitch();
    double p_cmd = rollPid_.update(wrapAngle(roll_cmd - roll), dt);
    double q_cmd = pitchPid_.update(wrapAngle(pitch_cmd - pitch), dt);
    double r_cmd = command_.yawRate;

    // --- Rate loop: body-rate error -> torques.
    double tau_x = rateRollPid_.update(p_cmd - state.bodyRates.x, dt);
    double tau_y = ratePitchPid_.update(q_cmd - state.bodyRates.y, dt);
    double tau_z = rateYawPid_.update(r_cmd - state.bodyRates.z, dt);

    // --- X-configuration mixer. Motors: 0 FL(+x,+y), 1 FR(+x,-y),
    // 2 RR(-x,-y), 3 RL(-x,+y); 0/2 spin CCW, 1/3 CW.
    double arm = params_.armM * 0.70710678; // diagonal arms at 45 deg
    double k_yaw = params_.yawTorquePerThrust;

    double base = thrust_total / 4.0;
    double d_roll = tau_x / (4.0 * arm);   // +roll: raise +y motors
    double d_pitch = tau_y / (4.0 * arm);  // +pitch torque: raise -x motors
    double d_yaw = tau_z / (4.0 * k_yaw);  // CCW motors add +z torque

    MotorCommand cmd;
    cmd[0] = base + d_roll - d_pitch + d_yaw;  // FL, CCW
    cmd[1] = base - d_roll - d_pitch - d_yaw;  // FR, CW
    cmd[2] = base - d_roll + d_pitch + d_yaw;  // RR, CCW
    cmd[3] = base + d_roll + d_pitch - d_yaw;  // RL, CW

    for (double &t : cmd)
        t = clampd(t, 0.0, params_.maxMotorThrustN);
    return cmd;
}

void
CascadedController::reset()
{
    altPid_.reset();
    velFwdPid_.reset();
    velLatPid_.reset();
    rollPid_.reset();
    pitchPid_.reset();
    rateRollPid_.reset();
    ratePitchPid_.reset();
    rateYawPid_.reset();
}

void
CascadedController::saveState(StateWriter &w) const
{
    w.f64(command_.forward);
    w.f64(command_.lateral);
    w.f64(command_.yawRate);
    w.f64(command_.altitude);
    altPid_.saveState(w);
    velFwdPid_.saveState(w);
    velLatPid_.saveState(w);
    rollPid_.saveState(w);
    pitchPid_.saveState(w);
    rateRollPid_.saveState(w);
    ratePitchPid_.saveState(w);
    rateYawPid_.saveState(w);
}

void
CascadedController::restoreState(StateReader &r)
{
    command_.forward = r.f64();
    command_.lateral = r.f64();
    command_.yawRate = r.f64();
    command_.altitude = r.f64();
    altPid_.restoreState(r);
    velFwdPid_.restoreState(r);
    velLatPid_.restoreState(r);
    rollPid_.restoreState(r);
    pitchPid_.restoreState(r);
    rateRollPid_.restoreState(r);
    ratePitchPid_.restoreState(r);
    rateYawPid_.restoreState(r);
}

} // namespace rose::flight
