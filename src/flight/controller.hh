/**
 * @file
 * SimpleFlight-class cascaded flight controller.
 *
 * Mirrors the paper's partitioning (Figure 7): the companion computer
 * sends angular and linear velocity targets; this controller tracks the
 * most recent target received through a hierarchy of PID loops
 * (velocity -> attitude -> body rate) and emits per-motor thrusts via an
 * X-configuration mixer. It is the "software-in-the-loop" flight
 * controller, modeled functionally rather than at RTL as in the paper.
 */

#ifndef ROSE_FLIGHT_CONTROLLER_HH
#define ROSE_FLIGHT_CONTROLLER_HH

#include "flight/pid.hh"
#include "flight/types.hh"

namespace rose::flight {

/** Physical parameters the controller needs for feedforward/mixing. */
struct VehicleParams
{
    double massKg = 1.0;
    /** Motor moment arm about both horizontal axes [m]. */
    double armM = 0.18;
    /** Yaw torque per newton of motor thrust [m]. */
    double yawTorquePerThrust = 0.016;
    /** Per-motor thrust limit [N]. */
    double maxMotorThrustN = 7.0;
    double gravity = 9.81;
};

/** Gains for the full cascade; defaults are tuned for VehicleParams{}. */
struct ControllerConfig
{
    PidConfig altitude{/*kp=*/5.0, /*ki=*/1.2, /*kd=*/3.2,
                       /*outputLimit=*/8.0, /*integralLimit=*/4.0};
    PidConfig velocity{/*kp=*/2.4, /*ki=*/0.5, /*kd=*/0.0,
                       /*outputLimit=*/7.0, /*integralLimit=*/3.0};
    PidConfig attitude{/*kp=*/9.0, /*ki=*/0.0, /*kd=*/0.0,
                       /*outputLimit=*/7.0, /*integralLimit=*/0.0};
    PidConfig rate{/*kp=*/0.09, /*ki=*/0.02, /*kd=*/0.002,
                   /*outputLimit=*/0.0, /*integralLimit=*/0.4};
    /** Maximum commanded tilt [rad]. */
    double tiltLimit = 0.55;
};

/**
 * Cascaded velocity/attitude/rate controller.
 *
 * Call setCommand() whenever the companion computer issues a new target
 * (the controller keeps tracking the last one, as SimpleFlight does) and
 * update() once per physics step.
 */
class CascadedController
{
  public:
    CascadedController(const VehicleParams &params,
                       const ControllerConfig &cfg = {});

    /** Replace the tracked target. */
    void setCommand(const VelocityCommand &cmd) { command_ = cmd; }

    const VelocityCommand &command() const { return command_; }

    /**
     * Run one control step.
     *
     * @param state current vehicle kinematics.
     * @param dt control period [s].
     * @return clamped per-motor thrusts [N].
     */
    MotorCommand update(const VehicleState &state, double dt);

    /** Reset all loop state (integral terms, derivative history). */
    void reset();

    /** Serialize tracked command + all eight PID loop states. */
    void saveState(StateWriter &w) const;
    void restoreState(StateReader &r);

  private:
    VehicleParams params_;
    ControllerConfig cfg_;
    VelocityCommand command_;

    Pid altPid_;
    Pid velFwdPid_;
    Pid velLatPid_;
    Pid rollPid_;
    Pid pitchPid_;
    Pid rateRollPid_;
    Pid ratePitchPid_;
    Pid rateYawPid_;
};

} // namespace rose::flight

#endif // ROSE_FLIGHT_CONTROLLER_HH
