#include "pid.hh"

#include "util/geometry.hh"
#include "util/logging.hh"
#include "util/serde.hh"

namespace rose::flight {

double
Pid::update(double error, double dt)
{
    rose_assert(dt > 0.0, "PID update requires positive dt");

    integral_ += error * dt;
    if (cfg_.integralLimit > 0.0)
        integral_ = clampd(integral_, -cfg_.integralLimit,
                           cfg_.integralLimit);

    double deriv = 0.0;
    if (havePrev_)
        deriv = (error - prevError_) / dt;
    prevError_ = error;
    havePrev_ = true;

    double out = cfg_.kp * error + cfg_.ki * integral_ + cfg_.kd * deriv;
    if (cfg_.outputLimit > 0.0)
        out = clampd(out, -cfg_.outputLimit, cfg_.outputLimit);
    return out;
}

void
Pid::reset()
{
    integral_ = 0.0;
    prevError_ = 0.0;
    havePrev_ = false;
}

void
Pid::saveState(StateWriter &w) const
{
    w.f64(integral_);
    w.f64(prevError_);
    w.boolean(havePrev_);
}

void
Pid::restoreState(StateReader &r)
{
    integral_ = r.f64();
    prevError_ = r.f64();
    havePrev_ = r.boolean();
}

} // namespace rose::flight
