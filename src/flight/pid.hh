/**
 * @file
 * Scalar PID controller with output saturation and anti-windup, the
 * building block of the SimpleFlight-style cascaded controller
 * (Section 4.2.2: "Simple Flight contains a hierarchy of PID controllers
 * that manage the position, velocity, and angle of attack targets").
 */

#ifndef ROSE_FLIGHT_PID_HH
#define ROSE_FLIGHT_PID_HH

namespace rose {
class StateWriter;
class StateReader;
} // namespace rose

namespace rose::flight {

/** Gains and limits for one PID loop. */
struct PidConfig
{
    double kp = 0.0;
    double ki = 0.0;
    double kd = 0.0;
    /** Symmetric output saturation; <= 0 disables. */
    double outputLimit = 0.0;
    /** Symmetric integral-term clamp; <= 0 disables. */
    double integralLimit = 0.0;
};

/** One scalar PID loop; update() advances it by dt seconds. */
class Pid
{
  public:
    explicit Pid(const PidConfig &cfg) : cfg_(cfg) {}

    /**
     * Advance the controller.
     *
     * @param error setpoint minus measurement.
     * @param dt timestep in seconds; must be positive.
     * @return saturated control output.
     */
    double update(double error, double dt);

    /** Clear integral and derivative history (e.g. on arming). */
    void reset();

    double integral() const { return integral_; }
    const PidConfig &config() const { return cfg_; }

    /** Serialize loop state (not gains — those come from config). */
    void saveState(StateWriter &w) const;
    void restoreState(StateReader &r);

  private:
    PidConfig cfg_;
    double integral_ = 0.0;
    double prevError_ = 0.0;
    bool havePrev_ = false;
};

} // namespace rose::flight

#endif // ROSE_FLIGHT_PID_HH
