/**
 * @file
 * Shared vehicle-state and command vocabulary between the flight
 * controller and the environment simulator. World frame is ENU (z up);
 * body frame is x-forward, y-left, z-up.
 */

#ifndef ROSE_FLIGHT_TYPES_HH
#define ROSE_FLIGHT_TYPES_HH

#include <array>

#include "util/geometry.hh"

namespace rose::flight {

/** Kinematic state of the vehicle as seen by the controller. */
struct VehicleState
{
    /** Position in the world frame [m]. */
    Vec3 position;
    /** Velocity in the world frame [m/s]. */
    Vec3 velocity;
    /** Attitude: body-to-world rotation. */
    Quat attitude;
    /** Angular velocity in the body frame [rad/s]. */
    Vec3 bodyRates;
};

/**
 * The intermediate-level command interface between companion computer
 * and flight controller (Section 3.4.2): linear velocity targets in the
 * body-yaw frame plus a yaw-rate target, with altitude held separately.
 */
struct VelocityCommand
{
    /** Target forward (body-x) velocity [m/s]. */
    double forward = 0.0;
    /** Target leftward (body-y) velocity [m/s]. */
    double lateral = 0.0;
    /** Target yaw rate, positive counterclockwise [rad/s]. */
    double yawRate = 0.0;
    /** Altitude setpoint [m]. */
    double altitude = 1.5;
};

/** Per-motor thrust commands [N]; X-quad order FL, FR, RR, RL. */
using MotorCommand = std::array<double, 4>;

} // namespace rose::flight

#endif // ROSE_FLIGHT_TYPES_HH
