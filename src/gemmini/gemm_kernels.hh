/**
 * @file
 * Internal interface between the GEMM dispatcher (gemmini.cc) and the
 * per-ISA kernel translation units. Each kernel computes C rows
 * [m0, m1) of C[M,N] = A[M,K] * B_packed with the identical blocked
 * schedule and per-element k-ascending accumulation order; they differ
 * only in how many n-panel lanes one instruction carries (and, for the
 * FMA tier, in fusing the multiply-add).
 *
 * The x86 kernels live in separate .cc files compiled with their own
 * -m flags (see CMakeLists.txt) so the rest of the binary never emits
 * AVX instructions; ROSE_GEMM_HAVE_X86_KERNELS is defined for the
 * gemmini target only on x86-64 builds.
 */

#ifndef ROSE_GEMMINI_GEMM_KERNELS_HH
#define ROSE_GEMMINI_GEMM_KERNELS_HH

namespace rose::gemmini::detail {

/** Compute C rows [m0, m1) against panel-major packed B. */
using GemmRowsFn = void (*)(int m0, int m1, int k, int n,
                            const float *a, const float *packed,
                            float *c);

/** Portable reference microkernel (gemmini.cc). */
void gemmRowsScalar(int m0, int m1, int k, int n, const float *a,
                    const float *packed, float *c);

#if ROSE_GEMM_HAVE_X86_KERNELS
/** AVX2 n-panel vectorization, bit-identical to scalar. */
void gemmRowsAvx2(int m0, int m1, int k, int n, const float *a,
                  const float *packed, float *c);
/** AVX2 + fused multiply-add: faster, NOT bit-identical (opt-in). */
void gemmRowsAvx2Fma(int m0, int m1, int k, int n, const float *a,
                     const float *packed, float *c);
#endif

} // namespace rose::gemmini::detail

#endif // ROSE_GEMMINI_GEMM_KERNELS_HH
