#include "gemmini.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "gemmini/gemm_kernels.hh"
#include "util/cpufeat.hh"
#include "util/logging.hh"

namespace rose::gemmini {

// ------------------------------------------------------- ISA dispatch

const char *
gemmIsaName(GemmIsa isa)
{
    switch (isa) {
      case GemmIsa::Scalar: return "scalar";
      case GemmIsa::Avx2: return "avx2";
      case GemmIsa::Avx2Fma: return "avx2fma";
    }
    return "?";
}

bool
parseGemmIsa(const std::string &text, bool &is_auto, GemmIsa &out)
{
    if (text == "auto") {
        is_auto = true;
        return true;
    }
    for (GemmIsa isa :
         {GemmIsa::Scalar, GemmIsa::Avx2, GemmIsa::Avx2Fma}) {
        if (text == gemmIsaName(isa)) {
            is_auto = false;
            out = isa;
            return true;
        }
    }
    return false;
}

bool
gemmIsaSupported(GemmIsa isa)
{
    switch (isa) {
      case GemmIsa::Scalar:
        return true;
      case GemmIsa::Avx2:
#if ROSE_GEMM_HAVE_X86_KERNELS
        return cpuFeatures().avx2;
#else
        return false;
#endif
      case GemmIsa::Avx2Fma:
#if ROSE_GEMM_HAVE_X86_KERNELS
        return cpuFeatures().avx2 && cpuFeatures().fma;
#else
        return false;
#endif
    }
    return false;
}

namespace {

/** Best supported tier; FMA only when explicitly allowed. */
GemmIsa
bestSupported(bool allow_fma)
{
    if (allow_fma && gemmIsaSupported(GemmIsa::Avx2Fma))
        return GemmIsa::Avx2Fma;
    if (gemmIsaSupported(GemmIsa::Avx2))
        return GemmIsa::Avx2;
    return GemmIsa::Scalar;
}

/** Degrade an unsupported request down the tier chain. */
GemmIsa
clampSupported(GemmIsa want)
{
    if (gemmIsaSupported(want))
        return want;
    GemmIsa got = bestSupported(false);
    rose_warn("ROSE_GEMM_ISA tier '", gemmIsaName(want),
              "' is not supported on this host/build; using '",
              gemmIsaName(got), "'");
    return got;
}

/** Env-driven resolution (no explicit override in play). */
GemmIsa
resolveFromEnv()
{
    const char *env = std::getenv("ROSE_GEMM_ISA");
    if (env && *env) {
        bool is_auto = false;
        GemmIsa want{};
        if (!parseGemmIsa(env, is_auto, want)) {
            rose_warn("unrecognized ROSE_GEMM_ISA value '", env,
                      "' (expected auto|scalar|avx2|avx2fma); "
                      "using auto");
        } else if (!is_auto) {
            return clampSupported(want);
        }
    }
    const char *fma = std::getenv("ROSE_GEMM_FMA");
    bool allow_fma =
        fma && (std::strcmp(fma, "1") == 0 ||
                std::strcmp(fma, "true") == 0);
    return bestSupported(allow_fma);
}

/** Resolved tier, -1 while unresolved (first use / after reset). */
std::atomic<int> g_isa{-1};

detail::GemmRowsFn
kernelFor(GemmIsa isa)
{
    switch (isa) {
#if ROSE_GEMM_HAVE_X86_KERNELS
      case GemmIsa::Avx2:
        return detail::gemmRowsAvx2;
      case GemmIsa::Avx2Fma:
        return detail::gemmRowsAvx2Fma;
#endif
      default:
        return detail::gemmRowsScalar;
    }
}

} // namespace

GemmIsa
activeGemmIsa()
{
    int cur = g_isa.load(std::memory_order_acquire);
    if (cur < 0) {
        GemmIsa isa = resolveFromEnv();
        // Last resolver wins; every candidate value is valid, so a
        // race at first use is benign.
        g_isa.store(int(isa), std::memory_order_release);
        return isa;
    }
    return GemmIsa(cur);
}

void
setGemmIsa(GemmIsa isa)
{
    g_isa.store(int(clampSupported(isa)), std::memory_order_release);
}

void
resetGemmIsa()
{
    g_isa.store(-1, std::memory_order_release);
}

Gemmini::Gemmini(const GemminiConfig &cfg) : cfg_(cfg)
{
    rose_assert(cfg_.meshRows > 0 && cfg_.meshCols > 0, "bad mesh");
    rose_assert(cfg_.busBytesPerCycle > 0, "bad bus width");
}

void
Gemmini::tileShape(int m, int k, int n, int &tm, int &tk, int &tn) const
{
    // The accumulator holds the output tile; the scratchpad holds one
    // A tile and one B tile (double-buffering halves usable capacity).
    int acc_elems = int(cfg_.accumulatorBytes) / cfg_.elemBytes;
    int spad_elems = int(cfg_.scratchpadBytes) / cfg_.elemBytes / 2;

    tm = std::min(m, 128);
    tn = std::min(n, std::max(cfg_.meshCols, acc_elems / std::max(tm, 1)));
    tk = std::min(k, std::max(cfg_.meshRows,
                              spad_elems / std::max(tm + tn, 1)));

    tm = std::max(1, tm);
    tn = std::max(1, tn);
    tk = std::max(1, tk);
}

GemmCost
Gemmini::gemmCycles(int m, int k, int n) const
{
    rose_assert(m > 0 && k > 0 && n > 0, "bad GEMM shape");
    GemmCost cost;
    cost.macs = uint64_t(m) * k * n;

    int tm, tk, tn;
    tileShape(m, k, n, tm, tk, tn);

    auto cdiv = [](int a, int b) { return (a + b - 1) / b; };
    int nm = cdiv(m, tm), nk = cdiv(k, tk), nn = cdiv(n, tn);

    // Weight-stationary schedule: for each (n-tile, k-tile) the B tile
    // is pinned in the PEs 4x4 panels at a time; A rows stream through.
    for (int in = 0; in < nn; ++in) {
        int cn = std::min(tn, n - in * tn);
        for (int ik = 0; ik < nk; ++ik) {
            int ck = std::min(tk, k - ik * tk);
            for (int im = 0; im < nm; ++im) {
                int cm = std::min(tm, m - im * tm);

                uint64_t panels = uint64_t(cdiv(ck, cfg_.meshRows)) *
                                  cdiv(cn, cfg_.meshCols);
                Cycles compute =
                    panels * (Cycles(cm) + cfg_.weightLoadCycles);

                uint64_t bytes_in =
                    (uint64_t(cm) * ck + uint64_t(ck) * cn) *
                    cfg_.elemBytes;
                uint64_t bytes_out =
                    (ik == nk - 1)
                        ? uint64_t(cm) * cn * cfg_.elemBytes
                        : 0;
                Cycles mem = Cycles(double(bytes_in + bytes_out) /
                                    cfg_.busBytesPerCycle);

                cost.computeCycles += compute;
                cost.memoryCycles += mem;
                cost.bytesMoved += bytes_in + bytes_out;
                cost.totalCycles +=
                    cfg_.tileIssueCycles + std::max(compute, mem);
                ++cost.tiles;
            }
        }
    }
    return cost;
}

// --------------------------------------------------- functional kernel
//
// Determinism / bit-identity argument (vs. the naive reference):
//
//  * Every output element accumulates a[i,kk] * b[kk,j] over kk in
//    ascending order starting from +0.0f — the same per-element op
//    sequence as matmulNaive. Blocking, packing, and row parallelism
//    only change *which* element is worked on next, never the order of
//    adds within an element.
//
//  * matmulNaive additionally skips terms whose a-value is exactly
//    zero. The microkernel does not (branches inside a register tile
//    defeat it), which is still bit-identical for any finite B: under
//    round-to-nearest a sum that starts at +0.0 can never become -0.0
//    (x + y is -0.0 only when both operands are -0.0; exact-zero sums
//    round to +0.0), and adding the skipped term — av * b == +/-0.0 —
//    to an accumulator that is not -0.0 is a bitwise no-op. Non-finite
//    B would break this (0 * inf == NaN); weights in this codebase are
//    finite by construction, and tests/test_hotpath.cc fuzzes the
//    equality over signed zeros and denormals to pin the contract.
//
//  * Tail panels are stored zero-padded to the full panel width; the
//    padded lanes accumulate garbage that is never stored back.

namespace {

constexpr int kPW = Gemmini::kPanelWidth;
constexpr int kMR = Gemmini::kRowTile;

/**
 * Full register tile: kMR rows against one packed panel, complete k
 * sweep with all kMR x kPW accumulators live in registers. The k loop
 * is unrolled by two to give the scheduler independent mul/add chains.
 * Stores only the first @p nr columns (tail panels are padded).
 */
inline void
tileFull(int k, const float *a, size_t lda, const float *bp, float *c,
         size_t ldc, int nr)
{
    float acc[kMR][kPW] = {};
    int kk = 0;
    for (; kk + 2 <= k; kk += 2) {
        const float *br0 = bp + size_t(kk) * kPW;
        const float *br1 = br0 + kPW;
        for (int r = 0; r < kMR; ++r) {
            float av0 = a[size_t(r) * lda + kk];
            float av1 = a[size_t(r) * lda + kk + 1];
            for (int j = 0; j < kPW; ++j)
                acc[r][j] += av0 * br0[j];
            for (int j = 0; j < kPW; ++j)
                acc[r][j] += av1 * br1[j];
        }
    }
    for (; kk < k; ++kk) {
        const float *br = bp + size_t(kk) * kPW;
        for (int r = 0; r < kMR; ++r) {
            float av = a[size_t(r) * lda + kk];
            for (int j = 0; j < kPW; ++j)
                acc[r][j] += av * br[j];
        }
    }
    for (int r = 0; r < kMR; ++r)
        for (int j = 0; j < nr; ++j)
            c[size_t(r) * ldc + j] = acc[r][j];
}

/** Row-tail tile: mr < kMR rows; identical per-element order. */
inline void
tileTail(int mr, int k, const float *a, size_t lda, const float *bp,
         float *c, size_t ldc, int nr)
{
    float acc[kMR][kPW] = {};
    for (int kk = 0; kk < k; ++kk) {
        const float *br = bp + size_t(kk) * kPW;
        for (int r = 0; r < mr; ++r) {
            float av = a[size_t(r) * lda + kk];
            for (int j = 0; j < kPW; ++j)
                acc[r][j] += av * br[j];
        }
    }
    for (int r = 0; r < mr; ++r)
        for (int j = 0; j < nr; ++j)
            c[size_t(r) * ldc + j] = acc[r][j];
}

} // namespace

/**
 * The blocked schedule over C rows [m0, m1) against panel-major packed
 * B: m is blocked so a slab of A rows stays cache-hot across all B
 * panels; within a (block, panel) pair rows advance by the register
 * tile height. Rows in [m0, m1) are written exactly once. The SIMD
 * tiers (gemm_kernel_x86.inc) replicate this schedule instruction for
 * instruction; this portable version doubles as the dispatch fallback.
 */
void
detail::gemmRowsScalar(int m0, int m1, int k, int n, const float *a,
                       const float *packed, float *c)
{
    const int npanels = (n + kPW - 1) / kPW;
    for (int ib = m0; ib < m1; ib += Gemmini::kRowBlock) {
        int ie = std::min(ib + Gemmini::kRowBlock, m1);
        for (int p = 0; p < npanels; ++p) {
            const float *pan = packed + size_t(p) * k * kPW;
            int j0 = p * kPW;
            int nr = std::min(kPW, n - j0);
            int i = ib;
            for (; i + kMR <= ie; i += kMR)
                tileFull(k, a + size_t(i) * k, size_t(k), pan,
                         c + size_t(i) * n + j0, size_t(n), nr);
            if (i < ie)
                tileTail(ie - i, k, a + size_t(i) * k, size_t(k), pan,
                         c + size_t(i) * n + j0, size_t(n), nr);
        }
    }
}

namespace {

/**
 * Optional deterministic row parallelism: rows are split into disjoint
 * contiguous chunks aligned to the row block, one thread each. Every
 * output element is still produced by the identical k-sequential
 * accumulation, so results are bit-identical at any thread count — and
 * (outside the opt-in FMA tier) at any dispatched ISA tier, since the
 * SIMD kernels vectorize across the n-panel only.
 */
void
gemmParallel(int m, int k, int n, const float *a, const float *packed,
             float *c, int threads)
{
    // Panel-wide vector ops don't pay off on tiny shapes (the dense
    // classifier heads): under this work bound the scalar kernel wins
    // outright, and falling back to it only ever moves a tier closer
    // to the oracle, so degrade silently.
    const detail::GemmRowsFn rows =
        uint64_t(m) * k * n < (1u << 14)
            ? detail::gemmRowsScalar
            : kernelFor(activeGemmIsa());
    // Too small to amortize thread startup: run inline.
    if (threads < 2 || m < 2 * Gemmini::kRowBlock ||
        uint64_t(m) * k * n < (1u << 20)) {
        rows(0, m, k, n, a, packed, c);
        return;
    }
    int blocks = (m + Gemmini::kRowBlock - 1) / Gemmini::kRowBlock;
    int t = std::min(threads, blocks);
    std::vector<std::thread> pool;
    pool.reserve(size_t(t));
    int done = 0;
    for (int i = 0; i < t; ++i) {
        int nblk = (blocks - i * blocks / t) -
                   (blocks - (i + 1) * blocks / t);
        int r0 = done;
        int r1 = std::min(m, done + nblk * Gemmini::kRowBlock);
        done = r1;
        if (r0 >= r1)
            continue;
        pool.emplace_back(
            [=] { rows(r0, r1, k, n, a, packed, c); });
    }
    for (std::thread &th : pool)
        th.join();
}

} // namespace

void
Gemmini::matmul(int m, int k, int n, const float *a, const float *b,
                float *c, int threads) const
{
    rose_assert(m > 0 && k > 0 && n > 0, "bad GEMM shape");
    // One-shot path: pack B locally, then run the packed kernel. The
    // pack is O(k*n) against O(m*k*n) compute and pays for itself in
    // panel locality; steady-state callers memoize a PackedB instead
    // (see matmulPacked / dnn::sharedPackedWeights).
    PackedB packed;
    packB(k, n, b, packed);
    gemmParallel(m, k, n, a, packed.data.data(), c, threads);
}

void
Gemmini::matmul(int m, int k, int n, const std::vector<float> &a,
                const std::vector<float> &b, std::vector<float> &c,
                int threads) const
{
    rose_assert(int(a.size()) == m * k, "A shape mismatch");
    rose_assert(int(b.size()) == k * n, "B shape mismatch");
    c.resize(size_t(m) * n);
    matmul(m, k, n, a.data(), b.data(), c.data(), threads);
}

void
Gemmini::matmulPacked(int m, const float *a, const PackedB &b, float *c,
                      int threads) const
{
    rose_assert(m > 0 && b.k > 0 && b.n > 0, "bad GEMM shape");
    rose_assert(!b.empty(), "B not packed");
    gemmParallel(m, b.k, b.n, a, b.data.data(), c, threads);
}

void
Gemmini::matmulNaive(int m, int k, int n, const float *a, const float *b,
                     float *c) const
{
    rose_assert(m > 0 && k > 0 && n > 0, "bad GEMM shape");
    std::fill(c, c + size_t(m) * n, 0.0f);
    // Same arithmetic the mesh performs; order chosen for locality.
    for (int i = 0; i < m; ++i) {
        for (int kk = 0; kk < k; ++kk) {
            float av = a[size_t(i) * k + kk];
            if (av == 0.0f)
                continue;
            const float *brow = &b[size_t(kk) * n];
            float *crow = &c[size_t(i) * n];
            for (int j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
Gemmini::packB(int k, int n, const float *b, PackedB &out)
{
    rose_assert(k > 0 && n > 0, "bad pack shape");
    out.k = k;
    out.n = n;
    const int npanels = (n + kPW - 1) / kPW;
    out.data.resize(size_t(npanels) * k * kPW);
    float *dst = out.data.data();
    for (int p = 0; p < npanels; ++p) {
        int j0 = p * kPW;
        int w = std::min(kPW, n - j0);
        for (int kk = 0; kk < k; ++kk)
            for (int j = 0; j < kPW; ++j)
                *dst++ = j < w ? b[size_t(kk) * n + j0 + j] : 0.0f;
    }
}

void
Gemmini::packWeightsTransposed(int k, int n, const float *w, PackedB &out)
{
    rose_assert(k > 0 && n > 0, "bad pack shape");
    out.k = k;
    out.n = n;
    // w is [n][k]; panel element (kk, j) of panel p is w[p*kPW+j][kk].
    const int npanels = (n + kPW - 1) / kPW;
    out.data.resize(size_t(npanels) * k * kPW);
    float *dst = out.data.data();
    for (int p = 0; p < npanels; ++p) {
        int j0 = p * kPW;
        int w_cols = std::min(kPW, n - j0);
        for (int kk = 0; kk < k; ++kk)
            for (int j = 0; j < kPW; ++j)
                *dst++ = j < w_cols ? w[size_t(j0 + j) * k + kk] : 0.0f;
    }
}

} // namespace rose::gemmini
