#include "gemmini.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rose::gemmini {

Gemmini::Gemmini(const GemminiConfig &cfg) : cfg_(cfg)
{
    rose_assert(cfg_.meshRows > 0 && cfg_.meshCols > 0, "bad mesh");
    rose_assert(cfg_.busBytesPerCycle > 0, "bad bus width");
}

void
Gemmini::tileShape(int m, int k, int n, int &tm, int &tk, int &tn) const
{
    // The accumulator holds the output tile; the scratchpad holds one
    // A tile and one B tile (double-buffering halves usable capacity).
    int acc_elems = int(cfg_.accumulatorBytes) / cfg_.elemBytes;
    int spad_elems = int(cfg_.scratchpadBytes) / cfg_.elemBytes / 2;

    tm = std::min(m, 128);
    tn = std::min(n, std::max(cfg_.meshCols, acc_elems / std::max(tm, 1)));
    tk = std::min(k, std::max(cfg_.meshRows,
                              spad_elems / std::max(tm + tn, 1)));

    tm = std::max(1, tm);
    tn = std::max(1, tn);
    tk = std::max(1, tk);
}

GemmCost
Gemmini::gemmCycles(int m, int k, int n) const
{
    rose_assert(m > 0 && k > 0 && n > 0, "bad GEMM shape");
    GemmCost cost;
    cost.macs = uint64_t(m) * k * n;

    int tm, tk, tn;
    tileShape(m, k, n, tm, tk, tn);

    auto cdiv = [](int a, int b) { return (a + b - 1) / b; };
    int nm = cdiv(m, tm), nk = cdiv(k, tk), nn = cdiv(n, tn);

    // Weight-stationary schedule: for each (n-tile, k-tile) the B tile
    // is pinned in the PEs 4x4 panels at a time; A rows stream through.
    for (int in = 0; in < nn; ++in) {
        int cn = std::min(tn, n - in * tn);
        for (int ik = 0; ik < nk; ++ik) {
            int ck = std::min(tk, k - ik * tk);
            for (int im = 0; im < nm; ++im) {
                int cm = std::min(tm, m - im * tm);

                uint64_t panels = uint64_t(cdiv(ck, cfg_.meshRows)) *
                                  cdiv(cn, cfg_.meshCols);
                Cycles compute =
                    panels * (Cycles(cm) + cfg_.weightLoadCycles);

                uint64_t bytes_in =
                    (uint64_t(cm) * ck + uint64_t(ck) * cn) *
                    cfg_.elemBytes;
                uint64_t bytes_out =
                    (ik == nk - 1)
                        ? uint64_t(cm) * cn * cfg_.elemBytes
                        : 0;
                Cycles mem = Cycles(double(bytes_in + bytes_out) /
                                    cfg_.busBytesPerCycle);

                cost.computeCycles += compute;
                cost.memoryCycles += mem;
                cost.bytesMoved += bytes_in + bytes_out;
                cost.totalCycles +=
                    cfg_.tileIssueCycles + std::max(compute, mem);
                ++cost.tiles;
            }
        }
    }
    return cost;
}

void
Gemmini::matmul(int m, int k, int n, const std::vector<float> &a,
                const std::vector<float> &b, std::vector<float> &c) const
{
    rose_assert(int(a.size()) == m * k, "A shape mismatch");
    rose_assert(int(b.size()) == k * n, "B shape mismatch");
    c.assign(size_t(m) * n, 0.0f);
    // Same arithmetic the mesh performs; order chosen for locality.
    for (int i = 0; i < m; ++i) {
        for (int kk = 0; kk < k; ++kk) {
            float av = a[size_t(i) * k + kk];
            if (av == 0.0f)
                continue;
            const float *brow = &b[size_t(kk) * n];
            float *crow = &c[size_t(i) * n];
            for (int j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

} // namespace rose::gemmini
