/**
 * @file
 * Gemmini-class systolic-array DNN accelerator model (Section 4.2.1):
 * a 4x4 FP32 weight-stationary mesh sized to the 128-bit maximum memory
 * bus width, with a 256 KiB scratchpad and a 64 KiB accumulator.
 *
 * The model is used two ways:
 *  - timing: gemmCycles() runs the tiling schedule symbolically and
 *    returns the cycle cost of a GEMM, including scratchpad fill/drain
 *    over the memory bus, weight-load ramp, and accumulator writeback
 *    (compute and data movement overlap double-buffered, so a tile
 *    costs max(compute, memory)).
 *  - functional: matmul() computes the same GEMM numerically for tests
 *    and small end-to-end checks.
 */

#ifndef ROSE_GEMMINI_GEMMINI_HH
#define ROSE_GEMMINI_GEMMINI_HH

#include <cstdint>
#include <vector>

#include "util/units.hh"

namespace rose::gemmini {

/** Static accelerator configuration (defaults match the paper). */
struct GemminiConfig
{
    int meshRows = 4;
    int meshCols = 4;
    /** Bytes of one element (FP32). */
    int elemBytes = 4;
    uint32_t scratchpadBytes = 256 * 1024;
    uint32_t accumulatorBytes = 64 * 1024;
    /** Memory bus width: 128-bit -> 16 bytes/cycle. */
    double busBytesPerCycle = 16.0;
    /** Cycles to load one weight tile into the PEs. */
    Cycles weightLoadCycles = 4;
    /** Fixed cost of issuing one tile command (RoCC dispatch). */
    Cycles tileIssueCycles = 10;

    /** Peak MACs per cycle. */
    int macsPerCycle() const { return meshRows * meshCols; }
};

/** Cost breakdown of one GEMM on the accelerator. */
struct GemmCost
{
    Cycles totalCycles = 0;
    Cycles computeCycles = 0; ///< mesh-busy component
    Cycles memoryCycles = 0;  ///< bus-transfer component (overlapped)
    uint64_t macs = 0;
    uint64_t bytesMoved = 0;
    uint64_t tiles = 0;

    /** Achieved fraction of peak MAC throughput. */
    double
    utilization(const GemminiConfig &cfg) const
    {
        if (!totalCycles)
            return 0.0;
        return double(macs) /
               (double(totalCycles) * cfg.macsPerCycle());
    }
};

/** The accelerator model. */
class Gemmini
{
  public:
    explicit Gemmini(const GemminiConfig &cfg = {});

    const GemminiConfig &config() const { return cfg_; }

    /**
     * Timing of C[M,N] (+)= A[M,K] * B[K,N] under the weight-stationary
     * tiling schedule.
     */
    GemmCost gemmCycles(int m, int k, int n) const;

    /**
     * Functional GEMM: C = A * B with row-major dense matrices.
     *
     * @param a M*K values, row major.
     * @param b K*N values, row major.
     * @param c output, resized to M*N.
     */
    void matmul(int m, int k, int n, const std::vector<float> &a,
                const std::vector<float> &b, std::vector<float> &c) const;

    /** Largest tile dimensions that fit the scratchpad/accumulator. */
    void tileShape(int m, int k, int n, int &tm, int &tk, int &tn) const;

  private:
    GemminiConfig cfg_;
};

} // namespace rose::gemmini

#endif // ROSE_GEMMINI_GEMMINI_HH
