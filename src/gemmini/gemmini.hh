/**
 * @file
 * Gemmini-class systolic-array DNN accelerator model (Section 4.2.1):
 * a 4x4 FP32 weight-stationary mesh sized to the 128-bit maximum memory
 * bus width, with a 256 KiB scratchpad and a 64 KiB accumulator.
 *
 * The model is used two ways:
 *  - timing: gemmCycles() runs the tiling schedule symbolically and
 *    returns the cycle cost of a GEMM, including scratchpad fill/drain
 *    over the memory bus, weight-load ramp, and accumulator writeback
 *    (compute and data movement overlap double-buffered, so a tile
 *    costs max(compute, memory)).
 *  - functional: matmul() computes the same GEMM numerically for the
 *    per-frame inference hot path, tests, and end-to-end checks.
 *
 * The functional path is a cache-blocked, register-tiled microkernel
 * (see matmul()). Its determinism contract: for every output element
 * the FP accumulation runs over k in ascending order, starting from
 * +0.0f. For any finite B this is bit-identical to the naive reference
 * triple-loop (matmulNaive()) — including its exact-zero skip, since
 * adding a +/-0.0 term to an accumulator that started at +0.0 is a
 * bitwise no-op under round-to-nearest (see gemmini.cc for the full
 * argument) — so golden-trace hashes are preserved. Blocking reorders
 * only *which element* is worked on next (m/n), never the k order
 * within an element.
 *
 * The microkernel is runtime-dispatched over ISA tiers (GemmIsa):
 * the portable scalar kernel, an AVX2 kernel vectorized across the
 * 8-wide n-panel (same per-element k order, bit-identical — vector
 * mul/add are per-lane IEEE mul/add), and an opt-in AVX2+FMA kernel
 * whose fused multiply-adds round once per term and are therefore
 * *not* bit-identical (tolerance-verified, never auto-selected). The
 * tier is chosen at first use from cpuid (util/cpufeat.hh) and the
 * ROSE_GEMM_ISA / ROSE_GEMM_FMA environment overrides, or explicitly
 * via setGemmIsa() (rosed --gemm-isa, tests).
 */

#ifndef ROSE_GEMMINI_GEMMINI_HH
#define ROSE_GEMMINI_GEMMINI_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/aligned.hh"
#include "util/units.hh"

namespace rose::gemmini {

/**
 * ISA tier of the functional GEMM microkernel. Scalar and Avx2 are
 * bit-identical to the naive oracle; Avx2Fma fuses the multiply-add
 * (one rounding per term instead of two) and is opt-in only.
 */
enum class GemmIsa : uint8_t
{
    Scalar = 0,
    Avx2 = 1,
    Avx2Fma = 2,
};

/** Human-readable tier name ("scalar", "avx2", "avx2fma"). */
const char *gemmIsaName(GemmIsa isa);

/**
 * Parse a tier name as accepted by ROSE_GEMM_ISA / --gemm-isa:
 * "auto" sets @p is_auto; the explicit names set @p out.
 * @return false on an unrecognized string (outputs untouched).
 */
bool parseGemmIsa(const std::string &text, bool &is_auto, GemmIsa &out);

/** True when @p isa is both compiled into this binary and supported
 *  by the running CPU. Scalar is always supported. */
bool gemmIsaSupported(GemmIsa isa);

/**
 * The tier the dispatcher is currently using. Resolved on first use:
 * an explicit setGemmIsa() override wins, else ROSE_GEMM_ISA
 * ({auto, scalar, avx2, avx2fma}), else auto — the best supported
 * bit-exact tier, upgraded to Avx2Fma only when ROSE_GEMM_FMA=1.
 * Unsupported requests degrade (avx2fma -> avx2 -> scalar) with a
 * warning rather than failing.
 */
GemmIsa activeGemmIsa();

/** Explicitly select a tier (CLI flag, tests). Degrades with a
 *  warning when unsupported. Affects every Gemmini instance. */
void setGemmIsa(GemmIsa isa);

/** Drop any explicit override and re-resolve from the environment on
 *  next use (tests). */
void resetGemmIsa();

/** Static accelerator configuration (defaults match the paper). */
struct GemminiConfig
{
    int meshRows = 4;
    int meshCols = 4;
    /** Bytes of one element (FP32). */
    int elemBytes = 4;
    uint32_t scratchpadBytes = 256 * 1024;
    uint32_t accumulatorBytes = 64 * 1024;
    /** Memory bus width: 128-bit -> 16 bytes/cycle. */
    double busBytesPerCycle = 16.0;
    /** Cycles to load one weight tile into the PEs. */
    Cycles weightLoadCycles = 4;
    /** Fixed cost of issuing one tile command (RoCC dispatch). */
    Cycles tileIssueCycles = 10;

    /** Peak MACs per cycle. */
    int macsPerCycle() const { return meshRows * meshCols; }
};

/** Cost breakdown of one GEMM on the accelerator. */
struct GemmCost
{
    Cycles totalCycles = 0;
    Cycles computeCycles = 0; ///< mesh-busy component
    Cycles memoryCycles = 0;  ///< bus-transfer component (overlapped)
    uint64_t macs = 0;
    uint64_t bytesMoved = 0;
    uint64_t tiles = 0;

    /** Achieved fraction of peak MAC throughput. */
    double
    utilization(const GemminiConfig &cfg) const
    {
        if (!totalCycles)
            return 0.0;
        return double(macs) /
               (double(totalCycles) * cfg.macsPerCycle());
    }
};

/**
 * B matrix pre-packed into panel-major layout for the blocked kernel:
 * column panels of width kPanelWidth, each stored as k contiguous rows
 * of the panel's columns; a ragged last panel is zero-padded to the
 * full width (padded lanes are computed but never stored). Weights are
 * immutable per layer, so packing happens once and is shared read-only
 * (see dnn::sharedPackedWeights). Storage is kSimdAlign-aligned so
 * every panel row (kPanelWidth floats = 32 bytes) is one aligned
 * vector load for the SIMD kernels.
 */
struct PackedB
{
    int k = 0;
    int n = 0;
    AlignedVec<float> data;

    bool empty() const { return data.empty(); }
    size_t bytes() const { return data.size() * sizeof(float); }
};

/** The accelerator model. */
class Gemmini
{
  public:
    /** Column-panel width of the packed layout / microkernel. */
    static constexpr int kPanelWidth = 8;
    /** Row-block height of the register tile. */
    static constexpr int kRowTile = 8;
    /** m-blocking factor (rows of A kept hot per panel sweep). */
    static constexpr int kRowBlock = 128;

    explicit Gemmini(const GemminiConfig &cfg = {});

    const GemminiConfig &config() const { return cfg_; }

    /**
     * Timing of C[M,N] (+)= A[M,K] * B[K,N] under the weight-stationary
     * tiling schedule.
     */
    GemmCost gemmCycles(int m, int k, int n) const;

    /**
     * Functional GEMM: C = A * B (row major, dense), blocked kernel.
     * Packs B internally per call; steady-state callers should memoize
     * a PackedB and use matmulPacked() instead.
     *
     * @param a M*K values, row major.
     * @param b K*N values, row major.
     * @param c caller-provided output span of M*N values, overwritten.
     * @param threads optional deterministic row parallelism: C rows are
     *        split into disjoint contiguous chunks, one thread each, so
     *        the per-element FP order is unchanged. Values < 2, or
     *        GEMMs too small to amortize a thread, run inline.
     */
    void matmul(int m, int k, int n, const float *a, const float *b,
                float *c, int threads = 1) const;

    /** Convenience overload for tests: resizes @p c to M*N. */
    void matmul(int m, int k, int n, const std::vector<float> &a,
                const std::vector<float> &b, std::vector<float> &c,
                int threads = 1) const;

    /**
     * Functional GEMM against a pre-packed B (see packB): the per-layer
     * steady state of the inference hot path — no packing, no
     * allocation, just the microkernel.
     */
    void matmulPacked(int m, const float *a, const PackedB &b, float *c,
                      int threads = 1) const;

    /**
     * Reference naive triple-loop (the pre-blocking kernel), kept as
     * the bit-exactness oracle for tests and the speedup baseline for
     * the microbench. @p c must hold M*N values; overwritten.
     */
    void matmulNaive(int m, int k, int n, const float *a, const float *b,
                     float *c) const;

    /** Pack a row-major B[K,N] into panel-major layout. */
    static void packB(int k, int n, const float *b, PackedB &out);

    /**
     * Pack conv/dense weights W[N,K] (OIHW outer-major, i.e. the
     * *transpose* of the GEMM's B) directly into panel-major layout,
     * folding the transpose into the pack so callers never materialize
     * the K*N transposed matrix.
     */
    static void packWeightsTransposed(int k, int n, const float *w,
                                      PackedB &out);

    /** Largest tile dimensions that fit the scratchpad/accumulator. */
    void tileShape(int m, int k, int n, int &tm, int &tk, int &tn) const;

  private:
    GemminiConfig cfg_;
};

} // namespace rose::gemmini

#endif // ROSE_GEMMINI_GEMMINI_HH
