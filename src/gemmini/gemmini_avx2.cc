/**
 * @file
 * The bit-exact AVX2 tier of the GEMM microkernel. Compiled with
 * -mavx2 (no -mfma) in its own translation unit; only the dispatcher
 * calls in after cpuid confirms AVX2 support.
 */

#define ROSE_KERNEL_NAME gemmRowsAvx2
#define ROSE_KERNEL_FMA 0
#include "gemm_kernel_x86.inc"
