/**
 * @file
 * The opt-in AVX2+FMA tier of the GEMM microkernel. Fusing the
 * multiply-add rounds once per term, so results are close to but not
 * bit-identical with the oracle — this tier is never auto-selected
 * (see activeGemmIsa()) and is verified by tolerance in the tests.
 * Compiled with -mavx2 -mfma in its own translation unit.
 */

#define ROSE_KERNEL_NAME gemmRowsAvx2Fma
#define ROSE_KERNEL_FMA 1
#include "gemm_kernel_x86.inc"
