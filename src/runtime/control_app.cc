#include "control_app.hh"

#include "util/logging.hh"

namespace rose::runtime {

ControlApp::ControlApp(bridge::TargetDriver &driver,
                       const soc::SocConfig &soc, const AppConfig &cfg)
    : driver_(driver), soc_(soc), cfg_(cfg),
      bigModel_(dnn::sharedResNet(cfg.modelDepth)),
      smallModel_(dnn::sharedResNet(cfg.smallModelDepth)),
      bigClassifier_(*bigModel_, Rng(cfg.seed), cfg.estimator),
      smallClassifier_(*smallModel_, Rng(cfg.seed ^ 0x5a11ULL),
                       cfg.estimator),
      engine_(soc, cfg.gemmini, cfg.engine),
      bigSchedule_(engine_.schedule(*bigModel_)),
      smallSchedule_(engine_.schedule(*smallModel_))
{
}

std::string
ControlApp::workloadName() const
{
    if (cfg_.mode == RuntimeMode::Static)
        return "trailnav-static-" + bigModel_->name;
    return "trailnav-dynamic-" + bigModel_->name + "/" +
           smallModel_->name;
}

soc::Action
ControlApp::ioAction(const char *label)
{
    uint64_t accesses = driver_.takeAccessCount();
    Cycles c = accesses * soc_.cpuParams.mmioAccessCycles;
    return soc::Action::compute(c ? c : 1, soc::Unit::Io, label);
}

soc::Action
ControlApp::next(const soc::SocContext &ctx)
{
    switch (state_) {
      case State::Boot: {
        state_ = State::SendRequests;
        return soc::Action::compute(cfg_.bootCycles, soc::Unit::Cpu,
                                    "boot");
      }

      case State::SendRequests: {
        current_ = InferenceRecord{};
        current_.requestCycle = ctx.now;
        if (!driver_.txSend(bridge::encodeImageReq()))
            rose_warn("control app: image request backpressured");
        if (cfg_.mode == RuntimeMode::Dynamic) {
            if (!driver_.txSend(bridge::encodeDepthReq()))
                rose_warn("control app: depth request backpressured");
        }
        sawDepth_ = false;
        image_.reset();
        state_ = State::AwaitResponses;
        return ioAction("sensor-request");
      }

      case State::AwaitResponses: {
        state_ = State::ReadResponses;
        return soc::Action::waitRx("sensor-wait",
                                   cfg_.sensorTimeoutCycles);
      }

      case State::ReadResponses: {
        bool got_any = false;
        while (auto p = driver_.rxPop()) {
            got_any = true;
            switch (p->type) {
              case bridge::PacketType::ImageResp:
                image_ = bridge::decodeImageResp(*p);
                break;
              case bridge::PacketType::DepthResp:
                depth_ = bridge::decodeDepthResp(*p);
                sawDepth_ = true;
                break;
              default:
                rose_warn("control app: unexpected packet ",
                          bridge::packetTypeName(p->type));
                break;
            }
        }
        bool need_depth =
            cfg_.mode == RuntimeMode::Dynamic && !sawDepth_;
        if (!image_ || need_depth) {
            if (!got_any && cfg_.sensorTimeoutCycles > 0) {
                // The wait timed out with nothing delivered: the
                // request or its response was lost in transit.
                // Re-issue the requests instead of waiting forever.
                ++sensorRetries_;
                state_ = State::SendRequests;
                return ioAction("sensor-retry");
            }
            // Response split across boundaries; keep waiting.
            state_ = State::AwaitResponses;
            return ioAction("sensor-poll");
        }
        current_.responseCycle = ctx.now;
        current_.depthMeters =
            cfg_.mode == RuntimeMode::Dynamic ? depth_ : 0.0;

        // --- Model selection -----------------------------------------
        activeDepth_ = cfg_.modelDepth;
        current_.usedArgmax = false;
        if (cfg_.mode == RuntimeMode::Dynamic) {
            double big_lat =
                double(bigSchedule_.totalCycles) / soc_.clockHz;
            double budget = cfg_.deadline.processDeadline(
                depth_, cfg_.policy.forwardVelocity);
            current_.deadlineSeconds = budget;
            if (budget < cfg_.deadlineSafetyFactor * big_lat) {
                activeDepth_ = cfg_.smallModelDepth;
                current_.usedArgmax = true;
            }
        }
        current_.modelDepth = activeDepth_;

        // --- Functional inference + timed schedule -------------------
        bool use_small = activeDepth_ == cfg_.smallModelDepth &&
                         cfg_.mode == RuntimeMode::Dynamic;
        lastOutput_ = use_small ? smallClassifier_.infer(*image_)
                                : bigClassifier_.infer(*image_);
        const dnn::InferenceSchedule &sched =
            use_small ? smallSchedule_ : bigSchedule_;
        queue_.assign(sched.actions.begin(), sched.actions.end());
        if (cfg_.mode == RuntimeMode::Dynamic) {
            queue_.push_front(soc::Action::compute(
                cfg_.dualSessionOverhead, soc::Unit::Cpu,
                "dual-session"));
        }
        state_ = State::Inference;
        return ioAction("sensor-read");
      }

      case State::Inference: {
        if (!queue_.empty()) {
            soc::Action a = queue_.front();
            queue_.pop_front();
            return a;
        }
        state_ = State::SendCommand;
        [[fallthrough]];
      }

      case State::SendCommand: {
        PolicyConfig policy = cfg_.policy;
        policy.argmaxPolicy = current_.usedArgmax;
        current_.command = computeCommand(lastOutput_, policy);
        if (!driver_.txSend(bridge::encodeVelocityCmd(current_.command)))
            rose_warn("control app: command backpressured");
        current_.commandCycle = ctx.now;
        records_.push_back(current_);
        state_ = State::SendRequests;
        return ioAction("command-send");
      }
    }
    rose_panic("unreachable control-app state");
}

} // namespace rose::runtime
