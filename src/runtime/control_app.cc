#include "control_app.hh"

#include "util/logging.hh"
#include "util/serde.hh"

namespace rose::runtime {

ControlApp::ControlApp(bridge::TargetDriver &driver,
                       const soc::SocConfig &soc, const AppConfig &cfg)
    : driver_(driver), soc_(soc), cfg_(cfg),
      bigModel_(dnn::sharedResNet(cfg.modelDepth)),
      smallModel_(dnn::sharedResNet(cfg.smallModelDepth)),
      bigClassifier_(*bigModel_, Rng(cfg.seed), cfg.estimator),
      smallClassifier_(*smallModel_, Rng(cfg.seed ^ 0x5a11ULL),
                       cfg.estimator),
      engine_(soc, cfg.gemmini, cfg.engine),
      bigSchedule_(engine_.scheduleShared(*bigModel_)),
      smallSchedule_(engine_.scheduleShared(*smallModel_))
{
}

std::string
ControlApp::workloadName() const
{
    if (cfg_.mode == RuntimeMode::Static)
        return "trailnav-static-" + bigModel_->name;
    return "trailnav-dynamic-" + bigModel_->name + "/" +
           smallModel_->name;
}

soc::Action
ControlApp::ioAction(const char *label)
{
    uint64_t accesses = driver_.takeAccessCount();
    Cycles c = accesses * soc_.cpuParams.mmioAccessCycles;
    return soc::Action::compute(c ? c : 1, soc::Unit::Io, label);
}

soc::Action
ControlApp::next(const soc::SocContext &ctx)
{
    switch (state_) {
      case State::Boot: {
        state_ = State::SendRequests;
        return soc::Action::compute(cfg_.bootCycles, soc::Unit::Cpu,
                                    "boot");
      }

      case State::SendRequests: {
        current_ = InferenceRecord{};
        current_.requestCycle = ctx.now;
        if (!driver_.txSend(bridge::encodeImageReq()))
            rose_warn("control app: image request backpressured");
        if (cfg_.mode == RuntimeMode::Dynamic) {
            if (!driver_.txSend(bridge::encodeDepthReq()))
                rose_warn("control app: depth request backpressured");
        }
        sawDepth_ = false;
        haveImage_ = false;
        state_ = State::AwaitResponses;
        return ioAction("sensor-request");
      }

      case State::AwaitResponses: {
        state_ = State::ReadResponses;
        return soc::Action::waitRx("sensor-wait",
                                   cfg_.sensorTimeoutCycles);
      }

      case State::ReadResponses: {
        bool got_any = false;
        while (auto p = driver_.rxPop()) {
            got_any = true;
            switch (p->type) {
              case bridge::PacketType::ImageResp:
                bridge::decodeImageRespInto(*p, image_);
                haveImage_ = true;
                break;
              case bridge::PacketType::DepthResp:
                depth_ = bridge::decodeDepthResp(*p);
                sawDepth_ = true;
                break;
              default:
                rose_warn("control app: unexpected packet ",
                          bridge::packetTypeName(p->type));
                break;
            }
        }
        bool need_depth =
            cfg_.mode == RuntimeMode::Dynamic && !sawDepth_;
        if (!haveImage_ || need_depth) {
            if (!got_any && cfg_.sensorTimeoutCycles > 0) {
                // The wait timed out with nothing delivered: the
                // request or its response was lost in transit.
                // Re-issue the requests instead of waiting forever.
                ++sensorRetries_;
                ++consecutiveSensorRetries_;
                if (cfg_.degraded.enabled &&
                    consecutiveSensorRetries_ >=
                        cfg_.degraded.maxConsecutiveSensorRetries) {
                    // The sensor path is dead for now: hold the
                    // classical fallback instead of stalling.
                    enterDegraded("sensor-timeout", ctx.now);
                    return ioAction("degraded-enter");
                }
                state_ = State::SendRequests;
                return ioAction("sensor-retry");
            }
            // Response split across boundaries; keep waiting.
            state_ = State::AwaitResponses;
            return ioAction("sensor-poll");
        }
        consecutiveSensorRetries_ = 0;
        current_.responseCycle = ctx.now;
        current_.depthMeters =
            cfg_.mode == RuntimeMode::Dynamic ? depth_ : 0.0;

        // --- Model selection -----------------------------------------
        activeDepth_ = cfg_.modelDepth;
        current_.usedArgmax = false;
        if (cfg_.mode == RuntimeMode::Dynamic) {
            double big_lat =
                double(bigSchedule_->totalCycles) / soc_.clockHz;
            double small_lat =
                double(smallSchedule_->totalCycles) / soc_.clockHz;
            double budget = cfg_.deadline.processDeadline(
                depth_, cfg_.policy.forwardVelocity);
            current_.deadlineSeconds = budget;
            if (budget < cfg_.deadlineSafetyFactor * big_lat) {
                activeDepth_ = cfg_.smallModelDepth;
                current_.usedArgmax = true;
            }
            // Even the small model cannot meet the budget: that is a
            // deadline miss. Enough of them in a row and the DNN path
            // is declared unhealthy — classical fallback.
            if (budget < small_lat) {
                ++consecutiveDeadlineMisses_;
                if (cfg_.degraded.enabled &&
                    consecutiveDeadlineMisses_ >=
                        cfg_.degraded.maxDeadlineMisses) {
                    enterDegraded("deadline-miss", ctx.now);
                    return ioAction("degraded-enter");
                }
            } else {
                consecutiveDeadlineMisses_ = 0;
            }
        }
        current_.modelDepth = activeDepth_;

        // --- Functional inference + timed schedule -------------------
        bool use_small = activeDepth_ == cfg_.smallModelDepth &&
                         cfg_.mode == RuntimeMode::Dynamic;
        lastOutput_ = use_small ? smallClassifier_.infer(image_)
                                : bigClassifier_.infer(image_);
        const dnn::InferenceSchedule &sched =
            use_small ? *smallSchedule_ : *bigSchedule_;
        queue_.assign(sched.actions.begin(), sched.actions.end());
        if (cfg_.mode == RuntimeMode::Dynamic) {
            queue_.push_front(soc::Action::compute(
                cfg_.dualSessionOverhead, soc::Unit::Cpu,
                "dual-session"));
        }
        state_ = State::Inference;
        return ioAction("sensor-read");
      }

      case State::Inference: {
        if (!queue_.empty()) {
            soc::Action a = queue_.front();
            queue_.pop_front();
            return a;
        }
        state_ = State::SendCommand;
        [[fallthrough]];
      }

      case State::SendCommand: {
        PolicyConfig policy = cfg_.policy;
        policy.argmaxPolicy = current_.usedArgmax;
        current_.command = computeCommand(lastOutput_, policy);
        if (!driver_.txSend(bridge::encodeVelocityCmd(current_.command)))
            rose_warn("control app: command backpressured");
        current_.commandCycle = ctx.now;
        records_.push_back(current_);
        state_ = State::SendRequests;
        return ioAction("command-send");
      }

      case State::Degraded: {
        // One classical-control iteration: steer on the last valid
        // pose estimate at derated speed. Cheap on the CPU, no
        // sensors, no DNN — the vehicle keeps moving while the
        // vision path is unhealthy.
        bridge::VelocityCmdPayload cmd = computeClassicalCommand(
            lastOutput_, cfg_.policy, cfg_.degraded);
        if (!driver_.txSend(bridge::encodeVelocityCmd(cmd)))
            rose_warn("control app: degraded command backpressured");
        ++degraded_.back().commands;
        if (degradedIterLeft_ > 0)
            --degradedIterLeft_;
        if (degradedIterLeft_ == 0) {
            // Hold expired: close the interval and re-probe sensors.
            degraded_.back().endCycle = ctx.now;
            state_ = State::SendRequests;
        }
        return soc::Action::compute(cfg_.degraded.holdCycles,
                                    soc::Unit::Cpu, "degraded-hold");
      }
    }
    rose_panic("unreachable control-app state");
}

namespace {

void
saveAction(StateWriter &w, const soc::Action &a)
{
    w.u8(uint8_t(a.kind));
    w.u64(a.cycles);
    w.u8(uint8_t(a.unit));
}

soc::Action
loadAction(StateReader &r)
{
    soc::Action a;
    a.kind = soc::Action::Kind(r.u8());
    a.cycles = r.u64();
    a.unit = soc::Unit(r.u8());
    a.what = "";
    return a;
}

void
saveRecord(StateWriter &w, const InferenceRecord &rec)
{
    w.u64(rec.requestCycle);
    w.u64(rec.responseCycle);
    w.u64(rec.commandCycle);
    w.u32(uint32_t(rec.modelDepth));
    w.boolean(rec.usedArgmax);
    w.f64(rec.deadlineSeconds);
    w.f64(rec.depthMeters);
    w.f64(rec.command.forward);
    w.f64(rec.command.lateral);
    w.f64(rec.command.yawRate);
}

InferenceRecord
loadRecord(StateReader &r)
{
    InferenceRecord rec;
    rec.requestCycle = r.u64();
    rec.responseCycle = r.u64();
    rec.commandCycle = r.u64();
    rec.modelDepth = int(r.u32());
    rec.usedArgmax = r.boolean();
    rec.deadlineSeconds = r.f64();
    rec.depthMeters = r.f64();
    rec.command.forward = r.f64();
    rec.command.lateral = r.f64();
    rec.command.yawRate = r.f64();
    return rec;
}

void
saveOutput(StateWriter &w, const dnn::ClassifierOutput &o)
{
    for (float p : o.angular.probs)
        w.f32(p);
    for (float p : o.lateral.probs)
        w.f32(p);
    w.f64(o.rawHeadingRad);
    w.f64(o.rawOffsetM);
    w.boolean(o.valid);
}

dnn::ClassifierOutput
loadOutput(StateReader &r)
{
    dnn::ClassifierOutput o;
    for (float &p : o.angular.probs)
        p = r.f32();
    for (float &p : o.lateral.probs)
        p = r.f32();
    o.rawHeadingRad = r.f64();
    o.rawOffsetM = r.f64();
    o.valid = r.boolean();
    return o;
}

} // namespace

void
ControlApp::saveState(StateWriter &w) const
{
    w.u8(uint8_t(state_));
    w.u32(uint32_t(queue_.size()));
    for (const soc::Action &a : queue_)
        saveAction(w, a);
    w.boolean(haveImage_);
    if (haveImage_) {
        w.u32(uint32_t(image_.width));
        w.u32(uint32_t(image_.height));
        for (float v : image_.pixels)
            w.f32(v);
    }
    w.f64(depth_);
    w.boolean(sawDepth_);
    saveRecord(w, current_);
    saveOutput(w, lastOutput_);
    w.u32(uint32_t(activeDepth_));
    w.u32(uint32_t(records_.size()));
    for (const InferenceRecord &rec : records_)
        saveRecord(w, rec);
    w.u64(sensorRetries_);
    w.u64(consecutiveSensorRetries_);
    w.u64(consecutiveDeadlineMisses_);
    w.u64(degradedIterLeft_);
    w.u32(uint32_t(degraded_.size()));
    for (const DegradedInterval &di : degraded_) {
        w.u64(di.startCycle);
        w.u64(di.endCycle);
        w.u64(di.commands);
        w.str(di.reason);
    }
    bigClassifier_.saveState(w);
    smallClassifier_.saveState(w);
}

void
ControlApp::restoreState(StateReader &r)
{
    state_ = State(r.u8());
    queue_.clear();
    uint32_t nq = r.u32();
    for (uint32_t i = 0; i < nq; ++i)
        queue_.push_back(loadAction(r));
    haveImage_ = r.boolean();
    if (haveImage_) {
        image_.width = int(r.u32());
        image_.height = int(r.u32());
        image_.pixels.resize(size_t(image_.width) * image_.height);
        for (float &v : image_.pixels)
            v = r.f32();
    }
    depth_ = r.f64();
    sawDepth_ = r.boolean();
    current_ = loadRecord(r);
    lastOutput_ = loadOutput(r);
    activeDepth_ = int(r.u32());
    records_.clear();
    uint32_t nr = r.u32();
    records_.reserve(nr);
    for (uint32_t i = 0; i < nr; ++i)
        records_.push_back(loadRecord(r));
    sensorRetries_ = r.u64();
    consecutiveSensorRetries_ = r.u64();
    consecutiveDeadlineMisses_ = r.u64();
    degradedIterLeft_ = r.u64();
    degraded_.clear();
    uint32_t nd = r.u32();
    for (uint32_t i = 0; i < nd; ++i) {
        DegradedInterval di;
        di.startCycle = r.u64();
        di.endCycle = r.u64();
        di.commands = r.u64();
        di.reason = r.str();
        degraded_.push_back(std::move(di));
    }
    bigClassifier_.restoreState(r);
    smallClassifier_.restoreState(r);
}

void
ControlApp::enterDegraded(const char *reason, Cycles now)
{
    DegradedInterval di;
    di.startCycle = now;
    di.reason = reason;
    degraded_.push_back(di);
    degradedIterLeft_ = cfg_.degraded.holdIterations;
    consecutiveSensorRetries_ = 0;
    consecutiveDeadlineMisses_ = 0;
    state_ = State::Degraded;
}

} // namespace rose::runtime
