/**
 * @file
 * The companion-computer application: a DNN-based end-to-end visual
 * navigation controller (Section 4.2.2) expressed as a SoC workload.
 *
 * Per control iteration the app:
 *   1. requests a camera frame (and, in dynamic mode, a depth reading)
 *      through the RoSÉ bridge;
 *   2. stalls until the response arrives (requests cross the
 *      synchronizer at period boundaries, so this is where
 *      synchronization-granularity latency appears, Figure 16);
 *   3. selects the DNN — statically configured, or deadline-driven
 *      between a big and a small model (Section 5.3);
 *   4. runs inference: the execution engine's timed layer schedule is
 *      replayed on the SoC (accelerator busy time feeds the activity
 *      factor of Figure 13) while the classifier computes the actual
 *      outputs from the received image;
 *   5. computes Equation 2 control targets and sends a VelocityCmd.
 *
 * The app records per-inference telemetry (request/response/command
 * timestamps, model used, deadline) for the evaluation harness.
 */

#ifndef ROSE_RUNTIME_CONTROL_APP_HH
#define ROSE_RUNTIME_CONTROL_APP_HH

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "bridge/target_driver.hh"
#include "dnn/classifier.hh"
#include "dnn/engine.hh"
#include "runtime/control_policy.hh"
#include "runtime/deadline.hh"
#include "soc/workload.hh"

namespace rose::runtime {

/** Model-selection mode. */
enum class RuntimeMode
{
    Static,  ///< always run `model`
    Dynamic, ///< deadline-driven switch between big and small model
};

/** Application configuration. */
struct AppConfig
{
    RuntimeMode mode = RuntimeMode::Static;
    /** Static model depth (or the dynamic runtime's big model). */
    int modelDepth = 14;
    /** Dynamic runtime's small (fallback) model depth. */
    int smallModelDepth = 6;
    /** Deadline safety factor: switch to the small model when the
     *  available t_process is below factor * big-model latency. */
    double deadlineSafetyFactor = 10.0;
    /** Extra per-inference cycles in dynamic mode (dual ONNX-Runtime
     *  sessions; calibrated to the paper's "15% fewer inferences"). */
    Cycles dualSessionOverhead = 12 * kMegaCycles;
    /** One-time application startup cost [cycles]. */
    Cycles bootCycles = 50 * kMegaCycles;
    /**
     * Sensor-response timeout [cycles]: how long the app waits on the
     * bridge RX queue before re-issuing its sensor requests. 0 (the
     * default) waits forever — correct on a reliable transport, where
     * responses always arrive one sync period later. Set to a few sync
     * periods when the transport can lose packets (fault injection),
     * so a dropped request/response stalls one timeout, not the
     * mission.
     */
    Cycles sensorTimeoutCycles = 0;

    PolicyConfig policy;
    /** Classical-fallback configuration (disabled by default). */
    DegradedModeConfig degraded;
    DeadlineModel deadline;
    dnn::EstimatorConfig estimator;
    dnn::EngineParams engine;
    /** Accelerator instance (mesh/scratchpad/bus) used when the SoC
     *  config has Gemmini; swept by the accelerator-DSE ablation. */
    gemmini::GemminiConfig gemmini;
    /** Classifier noise seed. */
    uint64_t seed = 1234;
};

/** Telemetry of one completed control iteration. */
struct InferenceRecord
{
    Cycles requestCycle = 0;  ///< image request issued
    Cycles responseCycle = 0; ///< image received from the bridge
    Cycles commandCycle = 0;  ///< velocity command sent
    int modelDepth = 0;
    bool usedArgmax = false;
    double deadlineSeconds = 0.0; ///< Equation 5 budget (dynamic mode)
    double depthMeters = 0.0;
    bridge::VelocityCmdPayload command;

    /** Image-request-to-command latency [cycles] (Figure 16c). */
    Cycles requestToCommand() const { return commandCycle - requestCycle; }
};

/** One interval spent in degraded (classical-fallback) control. */
struct DegradedInterval
{
    Cycles startCycle = 0;
    /** 0 while the interval is still open (mission ended degraded). */
    Cycles endCycle = 0;
    /** Fallback commands issued during the interval. */
    uint64_t commands = 0;
    /** What tripped the fallback: "sensor-timeout" or "deadline-miss". */
    std::string reason;
};

/** The application workload. */
class ControlApp : public soc::Workload
{
  public:
    /**
     * @param driver target-side bridge driver.
     * @param soc SoC configuration (selects CPU/accelerator models).
     * @param cfg application configuration.
     */
    ControlApp(bridge::TargetDriver &driver, const soc::SocConfig &soc,
               const AppConfig &cfg);

    std::string workloadName() const override;
    soc::Action next(const soc::SocContext &ctx) override;

    const std::vector<InferenceRecord> &records() const
    { return records_; }

    /** Inferences completed so far. */
    uint64_t inferenceCount() const { return records_.size(); }

    /** Sensor requests re-issued after a response timeout. */
    uint64_t sensorRetries() const { return sensorRetries_; }

    /** Completed and open degraded-control intervals, in order. */
    const std::vector<DegradedInterval> &degradedIntervals() const
    { return degraded_; }

    /** True while the app is holding the classical fallback. */
    bool inDegradedMode() const { return state_ == State::Degraded; }

    const AppConfig &config() const { return cfg_; }

    /**
     * Serialize the full application state: control FSM, staged
     * inference actions, buffered sensor data, telemetry, classifier
     * noise streams, degraded-mode bookkeeping. Immutable artifacts
     * (models, schedules) are rebuilt from config on restore.
     */
    void saveState(StateWriter &w) const;
    void restoreState(StateReader &r);

  private:
    enum class State
    {
        Boot,
        SendRequests,
        AwaitResponses,
        ReadResponses,
        Inference,
        SendCommand,
        Degraded,
    };

    soc::Action ioAction(const char *label);
    void enterDegraded(const char *reason, Cycles now);

    bridge::TargetDriver &driver_;
    soc::SocConfig soc_;
    AppConfig cfg_;

    /** Zoo checkpoints, shared read-only across concurrent missions. */
    std::shared_ptr<const dnn::Model> bigModel_;
    std::shared_ptr<const dnn::Model> smallModel_;
    dnn::Classifier bigClassifier_;
    dnn::Classifier smallClassifier_;
    dnn::ExecutionEngine engine_;
    std::shared_ptr<const dnn::InferenceSchedule> bigSchedule_;
    std::shared_ptr<const dnn::InferenceSchedule> smallSchedule_;

    State state_ = State::Boot;
    std::deque<soc::Action> queue_; ///< staged inference actions
    /**
     * Reused image buffer + validity flag (replacing optional<Image>
     * so the pixel storage survives the per-frame reset and decode
     * lands in the same allocation every frame). The checkpoint byte
     * format is unchanged: a presence flag, then dims + pixels.
     */
    env::Image image_;
    bool haveImage_ = false;
    double depth_ = 1e9;
    bool sawDepth_ = false;

    InferenceRecord current_;
    dnn::ClassifierOutput lastOutput_;
    int activeDepth_ = 0;
    std::vector<InferenceRecord> records_;
    uint64_t sensorRetries_ = 0;

    // Degraded-mode bookkeeping.
    uint64_t consecutiveSensorRetries_ = 0;
    uint64_t consecutiveDeadlineMisses_ = 0;
    uint64_t degradedIterLeft_ = 0;
    std::vector<DegradedInterval> degraded_;
};

} // namespace rose::runtime

#endif // ROSE_RUNTIME_CONTROL_APP_HH
