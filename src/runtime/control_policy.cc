#include "control_policy.hh"

namespace rose::runtime {

namespace {

/** Signed correction signal from one head: +1 favors "right". */
double
headSignal(const dnn::HeadOutput &h, bool argmax)
{
    if (!argmax)
        return h.margin();
    int cls = h.argmax();
    if (cls == 0)
        return -1.0; // left
    if (cls == 2)
        return 1.0; // right
    return 0.0;
}

} // namespace

bridge::VelocityCmdPayload
computeCommand(const dnn::ClassifierOutput &y, const PolicyConfig &cfg)
{
    bridge::VelocityCmdPayload cmd;
    cmd.forward = cfg.forwardVelocity;

    // Class semantics: the angular head says the UAV is yawed
    // left/center/right of the corridor axis; the lateral head says it
    // is offset left/center/right of the centerline. Corrections steer
    // back toward center: "left" classifications command rightward
    // (negative, in our +y-left body frame) motion.
    double ang = headSignal(y.angular, cfg.argmaxPolicy);
    double lat = headSignal(y.lateral, cfg.argmaxPolicy);

    cmd.lateral = cfg.betaLateral * lat;  // right-heavy -> move left
    cmd.yawRate = cfg.betaYaw * ang;      // right-heavy -> yaw left
    return cmd;
}

bridge::VelocityCmdPayload
computeClassicalCommand(const dnn::ClassifierOutput &last_valid,
                        const PolicyConfig &policy,
                        const DegradedModeConfig &cfg)
{
    bridge::VelocityCmdPayload cmd;
    cmd.forward = policy.forwardVelocity * cfg.speedFactor;
    if (!last_valid.valid) {
        // Nothing to steer on: creep straight ahead and let the
        // flight controller hold altitude until vision recovers.
        return cmd;
    }
    // Proportional corrections on the last pose estimate. Signs match
    // computeCommand: positive heading error (yawed left of the
    // corridor axis per the estimator convention) commands a
    // counter-correction back toward the tangent, positive offset
    // commands motion back toward the centerline.
    cmd.yawRate = -cfg.headingGain * last_valid.rawHeadingRad;
    cmd.lateral = -cfg.offsetGain * last_valid.rawOffsetM;
    return cmd;
}

} // namespace rose::runtime
