/**
 * @file
 * Control-target computation from classifier outputs (Equation 2):
 *
 *   v_l = beta_l * (y_l^left - y_l^right)
 *   omega = beta_omega * (y_omega^right - y_omega^left)
 *
 * Targets scale with the softmax margins, so low-confidence (small)
 * models command gentler corrections — Section 5.2's wide-turn-radius
 * effect. The argmax policy (used by the dynamic runtime when running
 * the small net near obstacles, Section 5.3) replaces the margins with
 * hard +-1 decisions so the UAV corrects at full authority.
 */

#ifndef ROSE_RUNTIME_CONTROL_POLICY_HH
#define ROSE_RUNTIME_CONTROL_POLICY_HH

#include "bridge/packet.hh"
#include "dnn/classifier.hh"
#include "util/units.hh"

namespace rose::runtime {

/** Gains and mode of the Equation 2 policy. */
struct PolicyConfig
{
    /** Mission forward-velocity target [m/s] (swept in Figure 12). */
    double forwardVelocity = 3.0;
    /** Lateral correction gain beta_l [m/s per probability]. */
    double betaLateral = 1.4;
    /** Yaw correction gain beta_omega [rad/s per probability]. */
    double betaYaw = 1.4;
    /** Use argmax decisions instead of probability scaling. */
    bool argmaxPolicy = false;
};

/**
 * Compute the velocity command for the flight controller from one
 * inference result.
 */
bridge::VelocityCmdPayload computeCommand(const dnn::ClassifierOutput &y,
                                          const PolicyConfig &cfg);

/**
 * Degraded-mode (classical fallback) control configuration.
 *
 * When the DNN path is unhealthy — sensor retries exhaust without a
 * response, or the dynamic runtime's deadline budget falls below even
 * the small model's latency — the app holds a classical
 * proportional-law controller on its last pose estimate for a few
 * iterations instead of stalling the vehicle mid-corridor. This is
 * the software analogue of a flight stack dropping from vision-based
 * navigation to attitude hold.
 */
struct DegradedModeConfig
{
    bool enabled = false;

    /** Consecutive sensor-retry timeouts that trip degraded mode. */
    uint64_t maxConsecutiveSensorRetries = 3;
    /** Consecutive deadline misses (process budget below the small
     *  model's latency, dynamic mode only) that trip degraded mode. */
    uint64_t maxDeadlineMisses = 3;

    /** Fallback iterations to hold before re-probing the sensors. */
    uint64_t holdIterations = 8;
    /** Modeled CPU cost of one classical iteration [cycles]; tiny
     *  next to a DNN inference — that is the point. */
    Cycles holdCycles = 2 * kMegaCycles;

    /** Forward-speed derating while degraded (0.5 = half speed). */
    double speedFactor = 0.5;
    /** P gains on the last valid pose estimate. */
    double headingGain = 1.2;
    double offsetGain = 0.8;
};

/**
 * Classical fallback command: proportional steering on the last valid
 * pose estimate at derated speed, or straight-and-slow when no valid
 * estimate exists.
 */
bridge::VelocityCmdPayload
computeClassicalCommand(const dnn::ClassifierOutput &last_valid,
                        const PolicyConfig &policy,
                        const DegradedModeConfig &cfg);

} // namespace rose::runtime

#endif // ROSE_RUNTIME_CONTROL_POLICY_HH
