/**
 * @file
 * Control-target computation from classifier outputs (Equation 2):
 *
 *   v_l = beta_l * (y_l^left - y_l^right)
 *   omega = beta_omega * (y_omega^right - y_omega^left)
 *
 * Targets scale with the softmax margins, so low-confidence (small)
 * models command gentler corrections — Section 5.2's wide-turn-radius
 * effect. The argmax policy (used by the dynamic runtime when running
 * the small net near obstacles, Section 5.3) replaces the margins with
 * hard +-1 decisions so the UAV corrects at full authority.
 */

#ifndef ROSE_RUNTIME_CONTROL_POLICY_HH
#define ROSE_RUNTIME_CONTROL_POLICY_HH

#include "bridge/packet.hh"
#include "dnn/classifier.hh"

namespace rose::runtime {

/** Gains and mode of the Equation 2 policy. */
struct PolicyConfig
{
    /** Mission forward-velocity target [m/s] (swept in Figure 12). */
    double forwardVelocity = 3.0;
    /** Lateral correction gain beta_l [m/s per probability]. */
    double betaLateral = 1.4;
    /** Yaw correction gain beta_omega [rad/s per probability]. */
    double betaYaw = 1.4;
    /** Use argmax decisions instead of probability scaling. */
    bool argmaxPolicy = false;
};

/**
 * Compute the velocity command for the flight controller from one
 * inference result.
 */
bridge::VelocityCmdPayload computeCommand(const dnn::ClassifierOutput &y,
                                          const PolicyConfig &cfg);

} // namespace rose::runtime

#endif // ROSE_RUNTIME_CONTROL_POLICY_HH
