/**
 * @file
 * Compute-deadline model (Section 5.2, Equations 3-5):
 *
 *   t_collision = D_obj / velocity                          (3)
 *   t_collision >= t_sensor + t_process + t_actuation       (4)
 *   t_process  <= t_collision - t_sensor - t_actuation      (5)
 *
 * D_obj is the forward depth-sensor reading. The dynamic runtime
 * (Section 5.3) compares the available t_process against the big
 * model's inference latency to decide which DNN to run.
 */

#ifndef ROSE_RUNTIME_DEADLINE_HH
#define ROSE_RUNTIME_DEADLINE_HH

namespace rose::runtime {

/** Latency budget terms outside compute. */
struct DeadlineModel
{
    /** Sensor pipeline latency [s]. */
    double sensorLatency = 0.020;
    /** Actuation response latency (controller + motors) [s]. */
    double actuationLatency = 0.080;

    /**
     * Available processing time before a collision becomes
     * unavoidable (Equation 5). Never negative.
     *
     * @param depth_m forward obstacle distance D_obj [m].
     * @param velocity_mps current forward speed [m/s].
     */
    double
    processDeadline(double depth_m, double velocity_mps) const
    {
        if (velocity_mps <= 0.05)
            return 1e9; // hovering: effectively unconstrained
        double t_collision = depth_m / velocity_mps;
        double t = t_collision - sensorLatency - actuationLatency;
        return t > 0.0 ? t : 0.0;
    }
};

} // namespace rose::runtime

#endif // ROSE_RUNTIME_DEADLINE_HH
