#include "mpc_app.hh"

#include <cmath>

#include "util/logging.hh"

namespace rose::runtime {

std::vector<double>
solveMpc(double offset, double heading, const MpcConfig &cfg,
         int &iterations_out, double *final_cost)
{
    const int h = cfg.horizon;
    rose_assert(h > 0, "MPC horizon must be positive");
    std::vector<double> u(size_t(h), 0.0);
    std::vector<double> y(size_t(h) + 1), psi(size_t(h) + 1);
    std::vector<double> grad(size_t(h), 0.0);

    double v = cfg.forwardVelocity;
    double dt = cfg.dt;

    auto rollout = [&]() {
        y[0] = offset;
        psi[0] = heading;
        double cost = 0.0;
        for (int k = 0; k < h; ++k) {
            y[size_t(k) + 1] = y[size_t(k)] +
                               v * std::sin(psi[size_t(k)]) * dt;
            psi[size_t(k) + 1] = psi[size_t(k)] + u[size_t(k)] * dt;
            cost += cfg.qOffset * y[size_t(k) + 1] * y[size_t(k) + 1] +
                    cfg.qHeading * psi[size_t(k) + 1] *
                        psi[size_t(k) + 1] +
                    cfg.rControl * u[size_t(k)] * u[size_t(k)];
        }
        return cost;
    };

    double cost = rollout();
    double step = cfg.stepSize;
    int iters = 0;
    while (iters < cfg.maxIterations) {
        // Adjoint (backward) pass for the gradient of the quadratic
        // cost through the unicycle dynamics.
        double lam_y = 0.0, lam_psi = 0.0;
        for (int k = h - 1; k >= 0; --k) {
            // Terminal-to-initial accumulation: costs at step k+1.
            lam_y += 2.0 * cfg.qOffset * y[size_t(k) + 1];
            lam_psi += 2.0 * cfg.qHeading * psi[size_t(k) + 1];
            grad[size_t(k)] =
                2.0 * cfg.rControl * u[size_t(k)] + lam_psi * dt;
            // Propagate sensitivities one step back.
            lam_psi += lam_y * v * std::cos(psi[size_t(k)]) * dt;
        }
        for (int k = 0; k < h; ++k) {
            u[size_t(k)] = clampd(
                u[size_t(k)] - step * grad[size_t(k)] / double(h),
                -cfg.maxYawRate, cfg.maxYawRate);
        }
        ++iters;
        double new_cost = rollout();
        double improvement =
            cost > 1e-12 ? (cost - new_cost) / cost : 0.0;
        if (improvement < 0.0)
            step *= 0.5; // overshot: back off
        cost = new_cost;
        // Converged once the cost stops moving — reached faster from
        // small initial errors, which is what makes the per-solve
        // runtime data-dependent.
        if (std::abs(improvement) < cfg.tolerance)
            break;
    }
    iterations_out = iters;
    if (final_cost)
        *final_cost = cost;
    return u;
}

MpcApp::MpcApp(bridge::TargetDriver &driver, const soc::SocConfig &soc,
               const MpcConfig &cfg)
    : driver_(driver), soc_(soc), cfg_(cfg)
{
}

soc::Action
MpcApp::ioAction(const char *label)
{
    uint64_t accesses = driver_.takeAccessCount();
    Cycles c = accesses * soc_.cpuParams.mmioAccessCycles;
    return soc::Action::compute(c ? c : 1, soc::Unit::Io, label);
}

soc::Action
MpcApp::next(const soc::SocContext &ctx)
{
    switch (state_) {
      case State::Boot:
        state_ = State::SendRequest;
        return soc::Action::compute(cfg_.bootCycles, soc::Unit::Cpu,
                                    "boot");

      case State::SendRequest:
        current_ = MpcRecord{};
        current_.requestCycle = ctx.now;
        if (!driver_.txSend(bridge::encodeImageReq()))
            rose_warn("mpc app: image request backpressured");
        image_.reset();
        state_ = State::AwaitResponse;
        return ioAction("sensor-request");

      case State::AwaitResponse:
        state_ = State::ReadAndSolve;
        return soc::Action::waitRx("sensor-wait");

      case State::ReadAndSolve: {
        while (auto p = driver_.rxPop()) {
            if (p->type == bridge::PacketType::ImageResp)
                image_ = bridge::decodeImageResp(*p);
        }
        if (!image_) {
            state_ = State::AwaitResponse;
            return ioAction("sensor-poll");
        }

        // Visual front end + iterative solve. The cycle charge is
        // data-dependent through the iteration count.
        dnn::PoseEstimate pose =
            dnn::estimatePose(*image_, cfg_.estimator);
        current_.offsetEstimate = pose.valid ? pose.offsetM : 0.0;
        current_.headingEstimate = pose.valid ? pose.headingRad : 0.0;

        int iters = 0;
        double cost = 0.0;
        std::vector<double> u =
            solveMpc(current_.offsetEstimate,
                     current_.headingEstimate, cfg_, iters, &cost);
        current_.solverIterations = iters;
        current_.cost = cost;
        current_.command.forward = cfg_.forwardVelocity;
        current_.command.lateral = 0.0;
        current_.command.yawRate = u.empty() ? 0.0 : u.front();

        double flops = cfg_.frontEndFlops +
                       double(iters) * cfg_.flopsPerIteration;
        solveCycles_ =
            Cycles(flops / soc_.cpuParams.flopsPerCycle);
        state_ = State::SendCommand;
        return soc::Action::compute(solveCycles_, soc::Unit::Cpu,
                                    "mpc-solve");
      }

      case State::SendCommand:
        if (!driver_.txSend(
                bridge::encodeVelocityCmd(current_.command)))
            rose_warn("mpc app: command backpressured");
        current_.commandCycle = ctx.now;
        records_.push_back(current_);
        state_ = State::SendRequest;
        return ioAction("command-send");
    }
    rose_panic("unreachable MPC state");
}

} // namespace rose::runtime
