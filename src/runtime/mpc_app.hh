/**
 * @file
 * Classical-control companion application: vision-aided nonlinear MPC.
 *
 * The paper's future-directions section (Section 6) singles out
 * "classical algorithms such as SLAM and nonlinear MPC [that] build
 * upon iterative optimization algorithms ... with data-dependent
 * runtime behaviors and access patterns, where RoSÉ can capture their
 * performance implications on both hardware and software." This
 * workload realizes that: each control iteration
 *
 *   1. acquires a camera frame through the bridge and recovers the
 *      corridor-relative pose (the visual front end, charged to the
 *      CPU at the SoC's scalar throughput);
 *   2. solves a finite-horizon optimal-control problem by iterative
 *      gradient descent on the yaw-rate sequence — the iteration count
 *      depends on the current tracking error, so the per-loop compute
 *      time is *data-dependent*;
 *   3. sends the first optimized control as a VelocityCmd.
 *
 * Unlike the DNN pipeline, there is no accelerator work: this is the
 * kind of irregular CPU-bound loop a robotics SoC must also serve.
 */

#ifndef ROSE_RUNTIME_MPC_APP_HH
#define ROSE_RUNTIME_MPC_APP_HH

#include <optional>
#include <vector>

#include "bridge/target_driver.hh"
#include "dnn/classifier.hh"
#include "soc/config.hh"
#include "soc/workload.hh"

namespace rose::runtime {

/** MPC problem definition and solver controls. */
struct MpcConfig
{
    /** Mission forward velocity [m/s]. */
    double forwardVelocity = 3.0;
    /** Horizon length [steps]. */
    int horizon = 20;
    /** Horizon step [s]. */
    double dt = 0.05;
    /** State costs: lateral offset and heading. */
    double qOffset = 1.0;
    double qHeading = 0.6;
    /** Control effort cost. */
    double rControl = 0.08;
    /** Yaw-rate bound [rad/s]. */
    double maxYawRate = 1.4;
    /** Gradient step size. */
    double stepSize = 2.0;
    /** Convergence: stop when the relative cost improvement drops
     *  below this (the data-dependent part). */
    double tolerance = 2e-3;
    int maxIterations = 60;

    /** Modeled CPU cost of one gradient iteration [FLOPs]. */
    double flopsPerIteration = 4000.0;
    /** Modeled CPU cost of the visual pose front end [FLOPs]. */
    double frontEndFlops = 300'000.0;

    dnn::EstimatorConfig estimator;
    /** One-time startup cost [cycles]. */
    Cycles bootCycles = 20 * kMegaCycles;
};

/** Telemetry of one MPC control iteration. */
struct MpcRecord
{
    Cycles requestCycle = 0;
    Cycles commandCycle = 0;
    int solverIterations = 0;
    double cost = 0.0;
    double offsetEstimate = 0.0;
    double headingEstimate = 0.0;
    bridge::VelocityCmdPayload command;

    Cycles requestToCommand() const
    { return commandCycle - requestCycle; }
};

/**
 * Standalone MPC solve (exposed for tests and benches).
 *
 * @param offset current lateral offset estimate [m].
 * @param heading current heading error estimate [rad].
 * @param cfg problem definition.
 * @param iterations_out gradient iterations performed.
 * @return optimized yaw-rate sequence (horizon entries).
 */
std::vector<double> solveMpc(double offset, double heading,
                             const MpcConfig &cfg, int &iterations_out,
                             double *final_cost = nullptr);

/** The workload. */
class MpcApp : public soc::Workload
{
  public:
    MpcApp(bridge::TargetDriver &driver, const soc::SocConfig &soc,
           const MpcConfig &cfg);

    std::string workloadName() const override { return "mpc-nav"; }
    soc::Action next(const soc::SocContext &ctx) override;

    const std::vector<MpcRecord> &records() const { return records_; }
    uint64_t solveCount() const { return records_.size(); }

  private:
    enum class State
    {
        Boot,
        SendRequest,
        AwaitResponse,
        ReadAndSolve,
        SendCommand,
    };

    soc::Action ioAction(const char *label);

    bridge::TargetDriver &driver_;
    soc::SocConfig soc_;
    MpcConfig cfg_;

    State state_ = State::Boot;
    std::optional<env::Image> image_;
    MpcRecord current_;
    Cycles solveCycles_ = 0;
    std::vector<MpcRecord> records_;
};

} // namespace rose::runtime

#endif // ROSE_RUNTIME_MPC_APP_HH
