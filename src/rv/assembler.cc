#include "assembler.hh"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>

#include "util/logging.hh"

namespace rose::rv {

namespace {

// ----------------------------------------------------------- tokenizing

std::string
stripComment(const std::string &line)
{
    size_t hash = line.find('#');
    std::string s =
        hash == std::string::npos ? line : line.substr(0, hash);
    size_t slashes = s.find("//");
    if (slashes != std::string::npos)
        s = s.substr(0, slashes);
    return s;
}

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

std::vector<std::string>
splitOperands(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            out.push_back(trim(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    cur = trim(cur);
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

// ----------------------------------------------------------- registers

std::optional<uint8_t>
parseReg(const std::string &name)
{
    static const std::map<std::string, uint8_t> abi = {
        {"zero", 0}, {"ra", 1}, {"sp", 2}, {"gp", 3}, {"tp", 4},
        {"t0", 5}, {"t1", 6}, {"t2", 7}, {"s0", 8}, {"fp", 8},
        {"s1", 9}, {"a0", 10}, {"a1", 11}, {"a2", 12}, {"a3", 13},
        {"a4", 14}, {"a5", 15}, {"a6", 16}, {"a7", 17}, {"s2", 18},
        {"s3", 19}, {"s4", 20}, {"s5", 21}, {"s6", 22}, {"s7", 23},
        {"s8", 24}, {"s9", 25}, {"s10", 26}, {"s11", 27}, {"t3", 28},
        {"t4", 29}, {"t5", 30}, {"t6", 31}};
    auto it = abi.find(name);
    if (it != abi.end())
        return it->second;
    if (name.size() >= 2 && name[0] == 'x') {
        int n = 0;
        for (size_t i = 1; i < name.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(name[i])))
                return std::nullopt;
            n = n * 10 + (name[i] - '0');
        }
        if (n < 32)
            return uint8_t(n);
    }
    return std::nullopt;
}

// ------------------------------------------------------------ encoders

uint32_t
encodeR(uint32_t f7, uint8_t rs2, uint8_t rs1, uint32_t f3, uint8_t rd,
        uint32_t opcode)
{
    return (f7 << 25) | (uint32_t(rs2) << 20) | (uint32_t(rs1) << 15) |
           (f3 << 12) | (uint32_t(rd) << 7) | opcode;
}

uint32_t
encodeI(int32_t imm, uint8_t rs1, uint32_t f3, uint8_t rd,
        uint32_t opcode)
{
    return (uint32_t(imm & 0xfff) << 20) | (uint32_t(rs1) << 15) |
           (f3 << 12) | (uint32_t(rd) << 7) | opcode;
}

uint32_t
encodeS(int32_t imm, uint8_t rs2, uint8_t rs1, uint32_t f3,
        uint32_t opcode)
{
    uint32_t u = uint32_t(imm);
    return ((u >> 5 & 0x7f) << 25) | (uint32_t(rs2) << 20) |
           (uint32_t(rs1) << 15) | (f3 << 12) | ((u & 0x1f) << 7) |
           opcode;
}

uint32_t
encodeB(int32_t imm, uint8_t rs2, uint8_t rs1, uint32_t f3,
        uint32_t opcode)
{
    uint32_t u = uint32_t(imm);
    return ((u >> 12 & 1) << 31) | ((u >> 5 & 0x3f) << 25) |
           (uint32_t(rs2) << 20) | (uint32_t(rs1) << 15) | (f3 << 12) |
           ((u >> 1 & 0xf) << 8) | ((u >> 11 & 1) << 7) | opcode;
}

uint32_t
encodeU(int32_t imm, uint8_t rd, uint32_t opcode)
{
    return (uint32_t(imm) & 0xfffff000u) | (uint32_t(rd) << 7) | opcode;
}

uint32_t
encodeJ(int32_t imm, uint8_t rd, uint32_t opcode)
{
    uint32_t u = uint32_t(imm);
    return ((u >> 20 & 1) << 31) | ((u >> 1 & 0x3ff) << 21) |
           ((u >> 11 & 1) << 20) | ((u >> 12 & 0xff) << 12) |
           (uint32_t(rd) << 7) | opcode;
}

// ------------------------------------------------------------ assembler

struct Line
{
    int number;
    std::string mnemonic;
    std::vector<std::string> operands;
};

class Assembler
{
  public:
    Assembler(const std::string &source, uint32_t base) : base_(base)
    {
        firstPass(source);
        secondPass();
    }

    Program
    take()
    {
        Program p;
        p.words = std::move(words_);
        p.symbols = std::move(symbols_);
        p.base = base_;
        return p;
    }

  private:
    [[noreturn]] void
    err(int line, const std::string &msg)
    {
        rose_fatal("asm line ", line, ": ", msg);
    }

    uint8_t
    reg(const Line &l, size_t idx)
    {
        if (idx >= l.operands.size())
            err(l.number, "missing operand");
        auto r = parseReg(l.operands[idx]);
        if (!r)
            err(l.number, "bad register: " + l.operands[idx]);
        return *r;
    }

    int32_t
    imm(const Line &l, size_t idx)
    {
        if (idx >= l.operands.size())
            err(l.number, "missing immediate");
        const std::string &s = l.operands[idx];
        // Label reference?
        auto it = symbols_.find(s);
        if (it != symbols_.end())
            return int32_t(it->second);
        try {
            size_t pos = 0;
            long v = std::stol(s, &pos, 0);
            if (pos != s.size())
                err(l.number, "bad immediate: " + s);
            return int32_t(v);
        } catch (...) {
            err(l.number, "bad immediate or unknown label: " + s);
        }
    }

    /** Parse "imm(reg)" memory operands. */
    void
    memOperand(const Line &l, size_t idx, int32_t &off, uint8_t &basereg)
    {
        if (idx >= l.operands.size())
            err(l.number, "missing memory operand");
        const std::string &s = l.operands[idx];
        size_t lp = s.find('(');
        size_t rp = s.find(')');
        if (lp == std::string::npos || rp == std::string::npos || rp < lp)
            err(l.number, "bad memory operand: " + s);
        std::string offs = trim(s.substr(0, lp));
        std::string regs = trim(s.substr(lp + 1, rp - lp - 1));
        off = offs.empty() ? 0 : [&] {
            try {
                return int32_t(std::stol(offs, nullptr, 0));
            } catch (...) {
                err(l.number, "bad offset: " + offs);
            }
        }();
        auto r = parseReg(regs);
        if (!r)
            err(l.number, "bad base register: " + regs);
        basereg = *r;
    }

    int32_t
    branchTarget(const Line &l, size_t idx, uint32_t pc)
    {
        if (idx >= l.operands.size())
            err(l.number, "missing branch target");
        const std::string &s = l.operands[idx];
        auto it = symbols_.find(s);
        if (it != symbols_.end())
            return int32_t(it->second - pc);
        try {
            return int32_t(std::stol(s, nullptr, 0));
        } catch (...) {
            err(l.number, "unknown label: " + s);
        }
    }

    /** Number of words a mnemonic expands to (for pass-1 layout). */
    size_t
    sizeOf(const Line &l)
    {
        if (l.mnemonic == ".word")
            return l.operands.size();
        if (l.mnemonic == "li") {
            // Worst-case decided in pass 1 and honored in pass 2 so the
            // layout cannot shift: small immediates still take 1 word.
            int32_t v = 0;
            try {
                v = int32_t(std::stol(l.operands.at(1), nullptr, 0));
            } catch (...) {
                return 2; // label/large constant
            }
            return (v >= -2048 && v < 2048) ? 1 : 2;
        }
        if (l.mnemonic == "call")
            return 1;
        return 1;
    }

    void
    firstPass(const std::string &source)
    {
        std::istringstream is(source);
        std::string raw;
        int lineno = 0;
        uint32_t pc = base_;
        while (std::getline(is, raw)) {
            ++lineno;
            std::string s = trim(stripComment(raw));
            // Peel off any labels ("name:") prefixing the statement.
            while (true) {
                size_t colon = s.find(':');
                if (colon == std::string::npos)
                    break;
                std::string label = trim(s.substr(0, colon));
                if (label.empty() ||
                    label.find(' ') != std::string::npos)
                    err(lineno, "bad label");
                if (symbols_.count(label))
                    err(lineno, "duplicate label: " + label);
                symbols_[label] = pc;
                s = trim(s.substr(colon + 1));
            }
            if (s.empty())
                continue;
            size_t sp = s.find_first_of(" \t");
            Line line;
            line.number = lineno;
            line.mnemonic = sp == std::string::npos ? s : s.substr(0, sp);
            std::transform(line.mnemonic.begin(), line.mnemonic.end(),
                           line.mnemonic.begin(), ::tolower);
            if (sp != std::string::npos)
                line.operands = splitOperands(trim(s.substr(sp + 1)));
            pc += uint32_t(sizeOf(line) * 4);
            lines_.push_back(std::move(line));
        }
    }

    void
    emit(uint32_t w)
    {
        words_.push_back(w);
    }

    void
    secondPass()
    {
        uint32_t pc = base_;
        for (const Line &l : lines_) {
            size_t before = words_.size();
            encodeLine(l, pc);
            size_t emitted = words_.size() - before;
            pc += uint32_t(emitted * 4);
        }
    }

    void
    encodeLine(const Line &l, uint32_t pc)
    {
        const std::string &m = l.mnemonic;

        // --- directives -------------------------------------------------
        if (m == ".word") {
            for (size_t i = 0; i < l.operands.size(); ++i)
                emit(uint32_t(imm(l, i)));
            return;
        }

        // --- pseudo-instructions ---------------------------------------
        if (m == "nop") { emit(encodeI(0, 0, 0, 0, 0x13)); return; }
        if (m == "mv") {
            emit(encodeI(0, reg(l, 1), 0, reg(l, 0), 0x13));
            return;
        }
        if (m == "li") {
            uint8_t rd = reg(l, 0);
            int32_t v = imm(l, 1);
            // Mirror pass 1's layout decision exactly: only a literal
            // that fits 12 bits takes one word; labels always take two.
            bool small = sizeOf(l) == 1;
            if (small) {
                emit(encodeI(v, 0, 0, rd, 0x13));
            } else {
                // Unsigned arithmetic: v near INT32_MAX must wrap, not
                // overflow (lui/addi sign-interplay is modular anyway).
                int32_t hi = int32_t((uint32_t(v) + 0x800u) & ~0xfffu);
                int32_t lo = int32_t(uint32_t(v) - uint32_t(hi));
                emit(encodeU(hi, rd, 0x37));
                emit(encodeI(lo, rd, 0, rd, 0x13));
            }
            return;
        }
        if (m == "j") {
            emit(encodeJ(branchTarget(l, 0, pc), 0, 0x6f));
            return;
        }
        if (m == "call") {
            emit(encodeJ(branchTarget(l, 0, pc), 1, 0x6f));
            return;
        }
        if (m == "jr") {
            emit(encodeI(0, reg(l, 0), 0, 0, 0x67));
            return;
        }
        if (m == "ret") { emit(encodeI(0, 1, 0, 0, 0x67)); return; }
        if (m == "beqz") {
            emit(encodeB(branchTarget(l, 1, pc), 0, reg(l, 0), 0, 0x63));
            return;
        }
        if (m == "bnez") {
            emit(encodeB(branchTarget(l, 1, pc), 0, reg(l, 0), 1, 0x63));
            return;
        }
        if (m == "seqz") {
            emit(encodeI(1, reg(l, 1), 3, reg(l, 0), 0x13)); // sltiu rd,rs,1
            return;
        }
        if (m == "snez") {
            emit(encodeR(0, reg(l, 1), 0, 3, reg(l, 0), 0x33)); // sltu rd,x0,rs
            return;
        }
        if (m == "not") {
            emit(encodeI(-1, reg(l, 1), 4, reg(l, 0), 0x13)); // xori -1
            return;
        }
        if (m == "neg") {
            emit(encodeR(0x20, reg(l, 1), 0, 0, reg(l, 0), 0x33)); // sub rd,x0,rs
            return;
        }
        if (m == "ecall") { emit(0x00000073); return; }
        if (m == "ebreak") { emit(0x00100073); return; }
        if (m == "fence") { emit(0x0000000f); return; }

        // --- U / J formats ----------------------------------------------
        // lui/auipc take the standard 20-bit upper immediate.
        if (m == "lui") {
            emit(encodeU(imm(l, 1) << 12, reg(l, 0), 0x37));
            return;
        }
        if (m == "auipc") {
            emit(encodeU(imm(l, 1) << 12, reg(l, 0), 0x17));
            return;
        }
        if (m == "jal") {
            if (l.operands.size() == 1) {
                emit(encodeJ(branchTarget(l, 0, pc), 1, 0x6f));
            } else {
                emit(encodeJ(branchTarget(l, 1, pc), reg(l, 0), 0x6f));
            }
            return;
        }
        if (m == "jalr") {
            int32_t off;
            uint8_t base;
            if (l.operands.size() == 1) {
                emit(encodeI(0, reg(l, 0), 0, 1, 0x67));
            } else {
                memOperand(l, 1, off, base);
                emit(encodeI(off, base, 0, reg(l, 0), 0x67));
            }
            return;
        }

        // --- branches ----------------------------------------------------
        static const std::map<std::string, uint32_t> branches = {
            {"beq", 0}, {"bne", 1}, {"blt", 4}, {"bge", 5},
            {"bltu", 6}, {"bgeu", 7}};
        if (auto it = branches.find(m); it != branches.end()) {
            emit(encodeB(branchTarget(l, 2, pc), reg(l, 1), reg(l, 0),
                         it->second, 0x63));
            return;
        }

        // --- loads / stores ----------------------------------------------
        static const std::map<std::string, uint32_t> loads = {
            {"lb", 0}, {"lh", 1}, {"lw", 2}, {"lbu", 4}, {"lhu", 5}};
        if (auto it = loads.find(m); it != loads.end()) {
            int32_t off;
            uint8_t base;
            memOperand(l, 1, off, base);
            emit(encodeI(off, base, it->second, reg(l, 0), 0x03));
            return;
        }
        static const std::map<std::string, uint32_t> stores = {
            {"sb", 0}, {"sh", 1}, {"sw", 2}};
        if (auto it = stores.find(m); it != stores.end()) {
            int32_t off;
            uint8_t base;
            memOperand(l, 1, off, base);
            emit(encodeS(off, reg(l, 0), base, it->second, 0x23));
            return;
        }

        // --- ALU immediate -------------------------------------------------
        static const std::map<std::string, uint32_t> aluImm = {
            {"addi", 0}, {"slti", 2}, {"sltiu", 3}, {"xori", 4},
            {"ori", 6}, {"andi", 7}};
        if (auto it = aluImm.find(m); it != aluImm.end()) {
            emit(encodeI(imm(l, 2), reg(l, 1), it->second, reg(l, 0),
                         0x13));
            return;
        }
        if (m == "slli" || m == "srli" || m == "srai") {
            uint32_t f3 = m == "slli" ? 1 : 5;
            uint32_t f7 = m == "srai" ? 0x20 : 0;
            uint32_t sh = uint32_t(imm(l, 2)) & 31;
            emit(encodeR(f7, uint8_t(sh), reg(l, 1), f3, reg(l, 0),
                         0x13));
            return;
        }

        // --- ALU register / M extension ------------------------------------
        struct RSpec { uint32_t f7, f3; };
        static const std::map<std::string, RSpec> aluReg = {
            {"add", {0x00, 0}}, {"sub", {0x20, 0}}, {"sll", {0x00, 1}},
            {"slt", {0x00, 2}}, {"sltu", {0x00, 3}}, {"xor", {0x00, 4}},
            {"srl", {0x00, 5}}, {"sra", {0x20, 5}}, {"or", {0x00, 6}},
            {"and", {0x00, 7}},
            {"mul", {0x01, 0}}, {"mulh", {0x01, 1}},
            {"mulhsu", {0x01, 2}}, {"mulhu", {0x01, 3}},
            {"div", {0x01, 4}}, {"divu", {0x01, 5}},
            {"rem", {0x01, 6}}, {"remu", {0x01, 7}}};
        if (auto it = aluReg.find(m); it != aluReg.end()) {
            emit(encodeR(it->second.f7, reg(l, 2), reg(l, 1),
                         it->second.f3, reg(l, 0), 0x33));
            return;
        }

        if (m == "csrr") {
            // csrr rd, csr -> csrrs rd, csr, x0
            emit((uint32_t(imm(l, 1)) << 20) | (0u << 15) | (2u << 12) |
                 (uint32_t(reg(l, 0)) << 7) | 0x73);
            return;
        }

        err(l.number, "unknown mnemonic: " + m);
    }

    uint32_t base_;
    std::vector<Line> lines_;
    std::vector<uint32_t> words_;
    std::map<std::string, uint32_t> symbols_;
};

} // namespace

Program
assemble(const std::string &source, uint32_t base)
{
    Assembler as(source, base);
    return as.take();
}

} // namespace rose::rv
