/**
 * @file
 * A small two-pass RV32IM assembler.
 *
 * Substitutes for the paper's RISC-V software build flow (Section 3.3):
 * target programs — e.g. the classical-control workloads — are written
 * in assembly, built into flat images, and executed on the functional
 * core under a timing model. Supports labels, the full RV32IM mnemonic
 * set, common pseudo-instructions (li, mv, nop, j, ret, beqz, bnez,
 * call), ABI register names, `.word` data directives, and `#` comments.
 */

#ifndef ROSE_RV_ASSEMBLER_HH
#define ROSE_RV_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rose::rv {

/** Assembly output: flat word image plus the resolved symbol table. */
struct Program
{
    std::vector<uint32_t> words;
    std::map<std::string, uint32_t> symbols;
    uint32_t base = 0;

    size_t byteSize() const { return words.size() * 4; }
};

/**
 * Assemble source text.
 *
 * @param source assembly listing.
 * @param base load address of the first instruction.
 * @return assembled image; fatal on syntax errors (with line numbers).
 */
Program assemble(const std::string &source, uint32_t base = 0);

} // namespace rose::rv

#endif // ROSE_RV_ASSEMBLER_HH
