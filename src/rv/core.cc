#include "core.hh"

#include <cstring>

#include "util/logging.hh"

namespace rose::rv {

Core::Core(size_t mem_bytes) : mem_(mem_bytes, 0)
{
}

void
Core::loadProgram(const std::vector<uint32_t> &words, uint32_t base)
{
    rose_assert(base + words.size() * 4 <= mem_.size(),
                "program does not fit in memory");
    for (size_t i = 0; i < words.size(); ++i)
        storeWord(base + uint32_t(i) * 4, words[i]);
    pc_ = base;
    stop_ = StopReason::Running;
}

void
Core::setReg(unsigned i, uint32_t v)
{
    rose_assert(i < 32, "register index out of range");
    if (i != 0)
        regs_[i] = v;
}

uint32_t
Core::loadWord(uint32_t addr) const
{
    rose_assert(addr + 4 <= mem_.size(), "loadWord out of range");
    uint32_t v;
    std::memcpy(&v, mem_.data() + addr, 4);
    return v;
}

void
Core::storeWord(uint32_t addr, uint32_t value)
{
    rose_assert(addr + 4 <= mem_.size(), "storeWord out of range");
    std::memcpy(mem_.data() + addr, &value, 4);
}

uint32_t
Core::memRead(uint32_t addr, int bytes, bool sign, bool &mmio)
{
    if (inMmio(addr)) {
        mmio = true;
        uint32_t v = mmioRead_ ? mmioRead_(addr - mmioBase_) : 0;
        if (bytes == 1)
            v &= 0xff;
        else if (bytes == 2)
            v &= 0xffff;
        return v;
    }
    if (addr + uint32_t(bytes) > mem_.size()) {
        stop_ = StopReason::BadAddress;
        return 0;
    }
    uint32_t v = 0;
    std::memcpy(&v, mem_.data() + addr, size_t(bytes));
    if (sign) {
        if (bytes == 1)
            v = uint32_t(int32_t(int8_t(v)));
        else if (bytes == 2)
            v = uint32_t(int32_t(int16_t(v)));
    }
    return v;
}

void
Core::memWrite(uint32_t addr, uint32_t value, int bytes, bool &mmio)
{
    if (inMmio(addr)) {
        mmio = true;
        if (mmioWrite_)
            mmioWrite_(addr - mmioBase_, value);
        return;
    }
    if (addr + uint32_t(bytes) > mem_.size()) {
        stop_ = StopReason::BadAddress;
        return;
    }
    std::memcpy(mem_.data() + addr, &value, size_t(bytes));
}

Retired
Core::step()
{
    rose_assert(stop_ == StopReason::Running,
                "stepping a stopped core");

    Retired r;
    r.pc = pc_;
    uint32_t raw = loadWord(pc_);
    Insn insn = decode(raw);
    r.insn = insn;

    uint32_t next = pc_ + 4;
    uint32_t a = regs_[insn.rs1];
    uint32_t b = regs_[insn.rs2];

    auto wr = [&](uint32_t v) {
        if (insn.rd != 0)
            regs_[insn.rd] = v;
    };

    switch (insn.op) {
      case Op::Lui: wr(uint32_t(insn.imm)); break;
      case Op::Auipc: wr(pc_ + uint32_t(insn.imm)); break;
      case Op::Jal:
        wr(pc_ + 4);
        next = pc_ + uint32_t(insn.imm);
        r.branchTaken = true;
        break;
      case Op::Jalr:
        wr(pc_ + 4);
        next = (a + uint32_t(insn.imm)) & ~1u;
        r.branchTaken = true;
        break;
      case Op::Beq: if (a == b) { next = pc_ + uint32_t(insn.imm); r.branchTaken = true; } break;
      case Op::Bne: if (a != b) { next = pc_ + uint32_t(insn.imm); r.branchTaken = true; } break;
      case Op::Blt: if (int32_t(a) < int32_t(b)) { next = pc_ + uint32_t(insn.imm); r.branchTaken = true; } break;
      case Op::Bge: if (int32_t(a) >= int32_t(b)) { next = pc_ + uint32_t(insn.imm); r.branchTaken = true; } break;
      case Op::Bltu: if (a < b) { next = pc_ + uint32_t(insn.imm); r.branchTaken = true; } break;
      case Op::Bgeu: if (a >= b) { next = pc_ + uint32_t(insn.imm); r.branchTaken = true; } break;
      case Op::Lb: case Op::Lh: case Op::Lw: case Op::Lbu: case Op::Lhu: {
        int bytes = insn.op == Op::Lw ? 4
                  : (insn.op == Op::Lh || insn.op == Op::Lhu) ? 2 : 1;
        bool sign = insn.op == Op::Lb || insn.op == Op::Lh;
        uint32_t addr = a + uint32_t(insn.imm);
        r.memAccess = true;
        r.memAddr = addr;
        uint32_t v = memRead(addr, bytes, sign, r.mmio);
        if (stop_ == StopReason::Running)
            wr(v);
        break;
      }
      case Op::Sb: case Op::Sh: case Op::Sw: {
        int bytes = insn.op == Op::Sw ? 4 : insn.op == Op::Sh ? 2 : 1;
        uint32_t addr = a + uint32_t(insn.imm);
        r.memAccess = true;
        r.memAddr = addr;
        memWrite(addr, b, bytes, r.mmio);
        break;
      }
      case Op::Addi: wr(a + uint32_t(insn.imm)); break;
      case Op::Slti: wr(int32_t(a) < insn.imm ? 1 : 0); break;
      case Op::Sltiu: wr(a < uint32_t(insn.imm) ? 1 : 0); break;
      case Op::Xori: wr(a ^ uint32_t(insn.imm)); break;
      case Op::Ori: wr(a | uint32_t(insn.imm)); break;
      case Op::Andi: wr(a & uint32_t(insn.imm)); break;
      case Op::Slli: wr(a << (insn.imm & 31)); break;
      case Op::Srli: wr(a >> (insn.imm & 31)); break;
      case Op::Srai: wr(uint32_t(int32_t(a) >> (insn.imm & 31))); break;
      case Op::Add: wr(a + b); break;
      case Op::Sub: wr(a - b); break;
      case Op::Sll: wr(a << (b & 31)); break;
      case Op::Slt: wr(int32_t(a) < int32_t(b) ? 1 : 0); break;
      case Op::Sltu: wr(a < b ? 1 : 0); break;
      case Op::Xor: wr(a ^ b); break;
      case Op::Srl: wr(a >> (b & 31)); break;
      case Op::Sra: wr(uint32_t(int32_t(a) >> (b & 31))); break;
      case Op::Or: wr(a | b); break;
      case Op::And: wr(a & b); break;
      case Op::Mul: wr(a * b); break;
      case Op::Mulh:
        wr(uint32_t((int64_t(int32_t(a)) * int64_t(int32_t(b))) >> 32));
        break;
      case Op::Mulhsu:
        wr(uint32_t((int64_t(int32_t(a)) * int64_t(uint64_t(b))) >> 32));
        break;
      case Op::Mulhu:
        wr(uint32_t((uint64_t(a) * uint64_t(b)) >> 32));
        break;
      case Op::Div:
        if (b == 0)
            wr(0xffffffffu);
        else if (a == 0x80000000u && b == 0xffffffffu)
            wr(a); // overflow case per spec
        else
            wr(uint32_t(int32_t(a) / int32_t(b)));
        break;
      case Op::Divu: wr(b == 0 ? 0xffffffffu : a / b); break;
      case Op::Rem:
        if (b == 0)
            wr(a);
        else if (a == 0x80000000u && b == 0xffffffffu)
            wr(0);
        else
            wr(uint32_t(int32_t(a) % int32_t(b)));
        break;
      case Op::Remu: wr(b == 0 ? a : a % b); break;
      case Op::Fence: break;
      case Op::Csrrs:
        // Only the cycle/instret counters exist; both read instret
        // (the timing model owns real cycle accounting).
        wr(uint32_t(instret_));
        break;
      case Op::Ecall:
        stop_ = StopReason::Ecall;
        break;
      case Op::Ebreak:
        stop_ = StopReason::Ebreak;
        break;
      case Op::Illegal:
        stop_ = StopReason::IllegalInsn;
        break;
    }

    if (stop_ == StopReason::Running ||
        stop_ == StopReason::Ecall || stop_ == StopReason::Ebreak) {
        pc_ = next;
        ++instret_;
    }
    r.nextPc = pc_;
    return r;
}

uint64_t
Core::run(uint64_t max_insns)
{
    uint64_t n = 0;
    while (n < max_insns && stop_ == StopReason::Running) {
        step();
        ++n;
    }
    return n;
}

} // namespace rose::rv
