/**
 * @file
 * Functional RV32IM core with a flat memory and an optional MMIO window.
 *
 * This is the ISA-level substrate under the SoC timing models: programs
 * produced by the bundled assembler (the software-build-flow substitute,
 * Section 3.3) execute here, and the retired-instruction stream feeds
 * the Rocket-class and BOOM-class timing models.
 */

#ifndef ROSE_RV_CORE_HH
#define ROSE_RV_CORE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "rv/insn.hh"

namespace rose::rv {

/** Why the core stopped executing. */
enum class StopReason
{
    Running,     ///< still executable
    Ecall,       ///< program requested services/halt
    Ebreak,      ///< breakpoint
    IllegalInsn, ///< decode failure
    BadAddress,  ///< access outside memory and MMIO windows
};

/** Retired-instruction record consumed by the timing models. */
struct Retired
{
    Insn insn;
    uint32_t pc = 0;
    uint32_t nextPc = 0;
    bool branchTaken = false;
    bool memAccess = false;
    uint32_t memAddr = 0;
    bool mmio = false;
};

/** Functional RV32IM hart. */
class Core
{
  public:
    /**
     * @param mem_bytes size of flat RAM starting at address 0.
     */
    explicit Core(size_t mem_bytes = 1 << 20);

    /** Load a program image at the given address and set the PC. */
    void loadProgram(const std::vector<uint32_t> &words,
                     uint32_t base = 0);

    /**
     * Register an MMIO window: accesses in [base, base+size) are
     * forwarded to the handlers instead of RAM.
     */
    void
    setMmioWindow(uint32_t base, uint32_t size,
                  std::function<uint32_t(uint32_t)> read,
                  std::function<void(uint32_t, uint32_t)> write)
    {
        mmioBase_ = base;
        mmioSize_ = size;
        mmioRead_ = std::move(read);
        mmioWrite_ = std::move(write);
    }

    /** Execute one instruction; returns the retirement record. */
    Retired step();

    /**
     * Run until a stop condition or the instruction limit.
     *
     * @return number of instructions retired.
     */
    uint64_t run(uint64_t max_insns = UINT64_MAX);

    StopReason stopReason() const { return stop_; }
    uint32_t pc() const { return pc_; }
    void setPc(uint32_t pc) { pc_ = pc; stop_ = StopReason::Running; }

    uint32_t reg(unsigned i) const { return regs_.at(i); }
    void setReg(unsigned i, uint32_t v);

    uint64_t instret() const { return instret_; }

    /** Raw RAM access for test setup/inspection (no MMIO). */
    uint32_t loadWord(uint32_t addr) const;
    void storeWord(uint32_t addr, uint32_t value);
    uint8_t loadByte(uint32_t addr) const { return mem_.at(addr); }
    void storeByte(uint32_t addr, uint8_t v) { mem_.at(addr) = v; }

    size_t memSize() const { return mem_.size(); }

  private:
    uint32_t memRead(uint32_t addr, int bytes, bool sign, bool &mmio);
    void memWrite(uint32_t addr, uint32_t value, int bytes, bool &mmio);
    bool inMmio(uint32_t addr) const
    { return mmioSize_ && addr >= mmioBase_ &&
             addr < mmioBase_ + mmioSize_; }

    std::vector<uint8_t> mem_;
    std::array<uint32_t, 32> regs_{};
    uint32_t pc_ = 0;
    uint64_t instret_ = 0;
    StopReason stop_ = StopReason::Running;

    uint32_t mmioBase_ = 0;
    uint32_t mmioSize_ = 0;
    std::function<uint32_t(uint32_t)> mmioRead_;
    std::function<void(uint32_t, uint32_t)> mmioWrite_;
};

} // namespace rose::rv

#endif // ROSE_RV_CORE_HH
