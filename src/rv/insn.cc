#include "insn.hh"

#include <sstream>

namespace rose::rv {

namespace {

int32_t
signExtend(uint32_t v, int bits)
{
    uint32_t mask = 1u << (bits - 1);
    return int32_t((v ^ mask) - mask);
}

int32_t
immI(uint32_t raw)
{
    return signExtend(raw >> 20, 12);
}

int32_t
immS(uint32_t raw)
{
    uint32_t v = ((raw >> 25) << 5) | ((raw >> 7) & 0x1f);
    return signExtend(v, 12);
}

int32_t
immB(uint32_t raw)
{
    uint32_t v = (((raw >> 31) & 1) << 12) | (((raw >> 7) & 1) << 11) |
                 (((raw >> 25) & 0x3f) << 5) | (((raw >> 8) & 0xf) << 1);
    return signExtend(v, 13);
}

int32_t
immU(uint32_t raw)
{
    return int32_t(raw & 0xfffff000u);
}

int32_t
immJ(uint32_t raw)
{
    uint32_t v = (((raw >> 31) & 1) << 20) | (((raw >> 12) & 0xff) << 12) |
                 (((raw >> 20) & 1) << 11) | (((raw >> 21) & 0x3ff) << 1);
    return signExtend(v, 21);
}

} // namespace

Insn
decode(uint32_t raw)
{
    Insn insn;
    insn.raw = raw;
    insn.rd = (raw >> 7) & 0x1f;
    insn.rs1 = (raw >> 15) & 0x1f;
    insn.rs2 = (raw >> 20) & 0x1f;
    uint32_t opcode = raw & 0x7f;
    uint32_t f3 = (raw >> 12) & 0x7;
    uint32_t f7 = raw >> 25;

    switch (opcode) {
      case 0x37:
        insn.op = Op::Lui;
        insn.imm = immU(raw);
        break;
      case 0x17:
        insn.op = Op::Auipc;
        insn.imm = immU(raw);
        break;
      case 0x6f:
        insn.op = Op::Jal;
        insn.imm = immJ(raw);
        break;
      case 0x67:
        insn.op = Op::Jalr;
        insn.imm = immI(raw);
        break;
      case 0x63:
        insn.imm = immB(raw);
        switch (f3) {
          case 0: insn.op = Op::Beq; break;
          case 1: insn.op = Op::Bne; break;
          case 4: insn.op = Op::Blt; break;
          case 5: insn.op = Op::Bge; break;
          case 6: insn.op = Op::Bltu; break;
          case 7: insn.op = Op::Bgeu; break;
          default: insn.op = Op::Illegal; break;
        }
        break;
      case 0x03:
        insn.imm = immI(raw);
        switch (f3) {
          case 0: insn.op = Op::Lb; break;
          case 1: insn.op = Op::Lh; break;
          case 2: insn.op = Op::Lw; break;
          case 4: insn.op = Op::Lbu; break;
          case 5: insn.op = Op::Lhu; break;
          default: insn.op = Op::Illegal; break;
        }
        break;
      case 0x23:
        insn.imm = immS(raw);
        switch (f3) {
          case 0: insn.op = Op::Sb; break;
          case 1: insn.op = Op::Sh; break;
          case 2: insn.op = Op::Sw; break;
          default: insn.op = Op::Illegal; break;
        }
        break;
      case 0x13:
        insn.imm = immI(raw);
        switch (f3) {
          case 0: insn.op = Op::Addi; break;
          case 2: insn.op = Op::Slti; break;
          case 3: insn.op = Op::Sltiu; break;
          case 4: insn.op = Op::Xori; break;
          case 6: insn.op = Op::Ori; break;
          case 7: insn.op = Op::Andi; break;
          case 1:
            insn.op = Op::Slli;
            insn.imm = insn.rs2;
            break;
          case 5:
            insn.op = (f7 & 0x20) ? Op::Srai : Op::Srli;
            insn.imm = insn.rs2;
            break;
          default: insn.op = Op::Illegal; break;
        }
        break;
      case 0x33:
        if (f7 == 0x01) {
            switch (f3) {
              case 0: insn.op = Op::Mul; break;
              case 1: insn.op = Op::Mulh; break;
              case 2: insn.op = Op::Mulhsu; break;
              case 3: insn.op = Op::Mulhu; break;
              case 4: insn.op = Op::Div; break;
              case 5: insn.op = Op::Divu; break;
              case 6: insn.op = Op::Rem; break;
              case 7: insn.op = Op::Remu; break;
            }
        } else {
            switch (f3) {
              case 0: insn.op = (f7 & 0x20) ? Op::Sub : Op::Add; break;
              case 1: insn.op = Op::Sll; break;
              case 2: insn.op = Op::Slt; break;
              case 3: insn.op = Op::Sltu; break;
              case 4: insn.op = Op::Xor; break;
              case 5: insn.op = (f7 & 0x20) ? Op::Sra : Op::Srl; break;
              case 6: insn.op = Op::Or; break;
              case 7: insn.op = Op::And; break;
            }
        }
        break;
      case 0x0f:
        insn.op = Op::Fence;
        break;
      case 0x73:
        if (f3 == 2) {
            insn.op = Op::Csrrs;
            insn.imm = int32_t(raw >> 20); // CSR number
        } else if ((raw >> 20) == 1) {
            insn.op = Op::Ebreak;
        } else {
            insn.op = Op::Ecall;
        }
        break;
      default:
        insn.op = Op::Illegal;
        break;
    }
    return insn;
}

OpClass
Insn::opClass() const
{
    switch (op) {
      case Op::Beq: case Op::Bne: case Op::Blt:
      case Op::Bge: case Op::Bltu: case Op::Bgeu:
        return OpClass::Branch;
      case Op::Jal: case Op::Jalr:
        return OpClass::Jump;
      case Op::Lb: case Op::Lh: case Op::Lw:
      case Op::Lbu: case Op::Lhu:
        return OpClass::Load;
      case Op::Sb: case Op::Sh: case Op::Sw:
        return OpClass::Store;
      case Op::Mul: case Op::Mulh: case Op::Mulhsu: case Op::Mulhu:
        return OpClass::Mul;
      case Op::Div: case Op::Divu: case Op::Rem: case Op::Remu:
        return OpClass::Div;
      case Op::Fence: case Op::Ecall: case Op::Ebreak: case Op::Csrrs:
        return OpClass::System;
      default:
        return OpClass::IntAlu;
    }
}

std::string
opName(Op op)
{
    switch (op) {
      case Op::Lui: return "lui";
      case Op::Auipc: return "auipc";
      case Op::Jal: return "jal";
      case Op::Jalr: return "jalr";
      case Op::Beq: return "beq";
      case Op::Bne: return "bne";
      case Op::Blt: return "blt";
      case Op::Bge: return "bge";
      case Op::Bltu: return "bltu";
      case Op::Bgeu: return "bgeu";
      case Op::Lb: return "lb";
      case Op::Lh: return "lh";
      case Op::Lw: return "lw";
      case Op::Lbu: return "lbu";
      case Op::Lhu: return "lhu";
      case Op::Sb: return "sb";
      case Op::Sh: return "sh";
      case Op::Sw: return "sw";
      case Op::Addi: return "addi";
      case Op::Slti: return "slti";
      case Op::Sltiu: return "sltiu";
      case Op::Xori: return "xori";
      case Op::Ori: return "ori";
      case Op::Andi: return "andi";
      case Op::Slli: return "slli";
      case Op::Srli: return "srli";
      case Op::Srai: return "srai";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Sll: return "sll";
      case Op::Slt: return "slt";
      case Op::Sltu: return "sltu";
      case Op::Xor: return "xor";
      case Op::Srl: return "srl";
      case Op::Sra: return "sra";
      case Op::Or: return "or";
      case Op::And: return "and";
      case Op::Fence: return "fence";
      case Op::Ecall: return "ecall";
      case Op::Ebreak: return "ebreak";
      case Op::Csrrs: return "csrrs";
      case Op::Mul: return "mul";
      case Op::Mulh: return "mulh";
      case Op::Mulhsu: return "mulhsu";
      case Op::Mulhu: return "mulhu";
      case Op::Div: return "div";
      case Op::Divu: return "divu";
      case Op::Rem: return "rem";
      case Op::Remu: return "remu";
      case Op::Illegal: return "illegal";
    }
    return "?";
}

std::string
Insn::toString() const
{
    std::ostringstream os;
    os << opName(op) << " rd=x" << int(rd) << " rs1=x" << int(rs1)
       << " rs2=x" << int(rs2) << " imm=" << imm;
    return os.str();
}

} // namespace rose::rv
