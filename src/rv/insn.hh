/**
 * @file
 * RV32IM instruction encodings and decoder.
 *
 * Stands in for the Rocket/BOOM RTL front-ends at the functional level:
 * the timing models in rv/timing.hh consume the decoded stream to
 * produce cycle counts for the two CPU classes of Table 2.
 */

#ifndef ROSE_RV_INSN_HH
#define ROSE_RV_INSN_HH

#include <cstdint>
#include <string>

namespace rose::rv {

/** Operation identifiers after decode. */
enum class Op
{
    // RV32I
    Lui, Auipc,
    Jal, Jalr,
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    Lb, Lh, Lw, Lbu, Lhu,
    Sb, Sh, Sw,
    Addi, Slti, Sltiu, Xori, Ori, Andi, Slli, Srli, Srai,
    Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And,
    Fence, Ecall, Ebreak,
    Csrrs, // subset: read-only CSR access (cycle/instret)
    // RV32M
    Mul, Mulh, Mulhsu, Mulhu, Div, Divu, Rem, Remu,
    Illegal,
};

/** Broad classes used by the timing models. */
enum class OpClass
{
    IntAlu,
    Branch,
    Jump,
    Load,
    Store,
    Mul,
    Div,
    System,
};

/** Decoded instruction. */
struct Insn
{
    Op op = Op::Illegal;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int32_t imm = 0;
    uint32_t raw = 0;

    /** Timing class of this operation. */
    OpClass opClass() const;

    /** Disassembly for debugging. */
    std::string toString() const;
};

/** Decode one 32-bit instruction word. */
Insn decode(uint32_t raw);

/** Mnemonic of an Op ("addi", "lw", ...). */
std::string opName(Op op);

} // namespace rose::rv

#endif // ROSE_RV_INSN_HH
