#include "timing.hh"

#include "util/logging.hh"

namespace rose::rv {

// ------------------------------------------------------------ SimpleCache

SimpleCache::SimpleCache(uint32_t size_bytes, uint32_t line_bytes)
{
    rose_assert(line_bytes && (line_bytes & (line_bytes - 1)) == 0,
                "line size must be a power of two");
    rose_assert(size_bytes >= line_bytes, "cache smaller than a line");
    lineShift_ = 0;
    while ((1u << lineShift_) < line_bytes)
        ++lineShift_;
    sets_ = size_bytes / line_bytes;
    tags_.assign(sets_, 0);
    valid_.assign(sets_, false);
}

bool
SimpleCache::access(uint32_t addr)
{
    uint32_t line = addr >> lineShift_;
    uint32_t set = line % sets_;
    uint64_t tag = line / sets_;
    if (valid_[set] && tags_[set] == tag) {
        ++hits_;
        return true;
    }
    valid_[set] = true;
    tags_[set] = tag;
    ++misses_;
    return false;
}

void
SimpleCache::reset()
{
    valid_.assign(sets_, false);
    hits_ = 0;
    misses_ = 0;
}

// ---------------------------------------------------------------- shared

bool
btfnPredict(const Retired &r)
{
    if (r.insn.opClass() != OpClass::Branch)
        return true; // jumps resolve early enough in both designs
    bool backward = r.insn.imm < 0;
    bool predicted_taken = backward;
    return predicted_taken == r.branchTaken;
}

// ---------------------------------------------------------------- Rocket

RocketTiming::RocketTiming(const TimingParams &p)
    : params_(p), dcache_(p.dcacheBytes, p.dcacheLine)
{
}

void
RocketTiming::retire(const Retired &r)
{
    ++stats_.insns;
    Cycles c = 1;

    OpClass cls = r.insn.opClass();
    switch (cls) {
      case OpClass::Branch:
        ++stats_.branches;
        if (!btfnPredict(r)) {
            ++stats_.mispredicts;
            c += 3; // front-end redirect
        }
        break;
      case OpClass::Jump:
        c += 2; // fetch bubble on the redirect
        break;
      case OpClass::Mul:
        c += 3;
        break;
      case OpClass::Div:
        c += 32; // iterative divider
        break;
      default:
        break;
    }

    if (r.memAccess) {
        if (cls == OpClass::Load)
            ++stats_.loads;
        else
            ++stats_.stores;
        if (r.mmio) {
            ++stats_.mmioAccesses;
            c += params_.mmioLatency;
        } else if (!dcache_.access(r.memAddr)) {
            ++stats_.cacheMisses;
            c += params_.dramLatency;
        }
    }

    // Load-use interlock: one bubble when the very next instruction
    // consumes the loaded register.
    if (lastWasLoad_ && lastLoadRd_ != 0 &&
        (r.insn.rs1 == lastLoadRd_ || r.insn.rs2 == lastLoadRd_)) {
        c += 1;
    }
    lastWasLoad_ = (cls == OpClass::Load);
    lastLoadRd_ = lastWasLoad_ ? r.insn.rd : 0;

    cycles_ += c;
}

void
RocketTiming::reset()
{
    cycles_ = 0;
    stats_ = TimingStats{};
    dcache_.reset();
    lastWasLoad_ = false;
    lastLoadRd_ = 0;
}

// ------------------------------------------------------------------ BOOM

BoomTiming::BoomTiming(const TimingParams &p)
    : params_(p), dcache_(2 * p.dcacheBytes, p.dcacheLine)
{
}

void
BoomTiming::closeGroup()
{
    if (groupSize_ > 0) {
        cycles_ += 1 + groupExtra_;
        groupSize_ = 0;
        groupHasMem_ = false;
        groupHasCtrl_ = false;
        groupExtra_ = 0;
    }
}

void
BoomTiming::retire(const Retired &r)
{
    ++stats_.insns;
    OpClass cls = r.insn.opClass();
    bool is_mem = r.memAccess;
    bool is_ctrl = cls == OpClass::Branch || cls == OpClass::Jump;

    // Structural limits: 3 ops per group, one memory port, one branch
    // unit. Start a new group when the incoming op does not fit.
    if (groupSize_ >= 3 || (is_mem && groupHasMem_) ||
        (is_ctrl && groupHasCtrl_)) {
        closeGroup();
    }

    ++groupSize_;
    groupHasMem_ |= is_mem;
    groupHasCtrl_ |= is_ctrl;

    Cycles extra = 0;
    if (cls == OpClass::Branch) {
        ++stats_.branches;
        if (!btfnPredict(r)) {
            ++stats_.mispredicts;
            extra += 10; // deep-pipeline squash
        }
    } else if (cls == OpClass::Div) {
        extra += 16; // pipelined-ish iterative divider
    }

    if (is_mem) {
        if (cls == OpClass::Load)
            ++stats_.loads;
        else
            ++stats_.stores;
        if (r.mmio) {
            ++stats_.mmioAccesses;
            extra += params_.mmioLatency; // uncached, serializing
        } else if (!dcache_.access(r.memAddr)) {
            ++stats_.cacheMisses;
            // The OoO window hides part of the miss latency.
            extra += params_.dramLatency / 2;
        }
    }

    if (extra > groupExtra_)
        groupExtra_ = extra;

    // A taken control-flow op ends the fetch group.
    if (is_ctrl && r.branchTaken)
        closeGroup();
}

Cycles
BoomTiming::cycles() const
{
    // Include the still-open group so cycle reads are monotonic.
    return cycles_ + (groupSize_ > 0 ? 1 + groupExtra_ : 0);
}

void
BoomTiming::reset()
{
    cycles_ = 0;
    stats_ = TimingStats{};
    dcache_.reset();
    groupSize_ = 0;
    groupHasMem_ = false;
    groupHasCtrl_ = false;
    groupExtra_ = 0;
}

// --------------------------------------------------------------- factory

std::unique_ptr<TimingModel>
makeTimingModel(const std::string &name, const TimingParams &p)
{
    if (name == "rocket")
        return std::make_unique<RocketTiming>(p);
    if (name == "boom")
        return std::make_unique<BoomTiming>(p);
    rose_fatal("unknown timing model: ", name);
}

} // namespace rose::rv
