/**
 * @file
 * Cycle-approximate timing models for the two CPU classes of Table 2:
 * a Rocket-class 5-stage in-order scalar core and a BOOM-class 3-wide
 * superscalar out-of-order core. The models consume the retired
 * instruction stream from the functional core (execute-first,
 * timing-second, as gem5's atomic+timing split does) and accumulate a
 * cycle count, including a small data-cache model and uncached-MMIO
 * penalties.
 */

#ifndef ROSE_RV_TIMING_HH
#define ROSE_RV_TIMING_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rv/core.hh"
#include "util/units.hh"

namespace rose::rv {

/** Direct-mapped data-cache model (tags only; data lives in Core). */
class SimpleCache
{
  public:
    /**
     * @param size_bytes total capacity.
     * @param line_bytes line size (power of two).
     */
    SimpleCache(uint32_t size_bytes, uint32_t line_bytes);

    /** Look up and allocate-on-miss; returns true on hit. */
    bool access(uint32_t addr);

    void reset();

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

  private:
    uint32_t lineShift_;
    uint32_t sets_;
    std::vector<uint64_t> tags_;
    std::vector<bool> valid_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/** Timing statistics common to both models. */
struct TimingStats
{
    uint64_t insns = 0;
    uint64_t branches = 0;
    uint64_t mispredicts = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t cacheMisses = 0;
    uint64_t mmioAccesses = 0;
};

/** Interface: feed retirements, read cycles. */
class TimingModel
{
  public:
    virtual ~TimingModel() = default;

    virtual std::string modelName() const = 0;

    /** Account one retired instruction. */
    virtual void retire(const Retired &r) = 0;

    virtual Cycles cycles() const = 0;
    virtual const TimingStats &stats() const = 0;
    virtual void reset() = 0;

    /** Retired instructions per cycle so far. */
    double
    ipc() const
    {
        return cycles() ? double(stats().insns) / double(cycles()) : 0.0;
    }
};

/** Shared microarchitectural parameters. */
struct TimingParams
{
    Cycles mmioLatency = 40;   ///< uncached I/O round trip
    Cycles dramLatency = 80;   ///< cache-miss fill latency
    uint32_t dcacheBytes = 16 * 1024;
    uint32_t dcacheLine = 64;
};

/**
 * Rocket-class: single-issue in-order 5-stage pipeline. CPI 1 base;
 * penalties for taken control flow (pipeline redirect), load-use
 * dependencies, long-latency mul/div, cache misses, and MMIO.
 */
class RocketTiming : public TimingModel
{
  public:
    explicit RocketTiming(const TimingParams &p = {});

    std::string modelName() const override { return "rocket"; }
    void retire(const Retired &r) override;
    Cycles cycles() const override { return cycles_; }
    const TimingStats &stats() const override { return stats_; }
    void reset() override;

  private:
    TimingParams params_;
    SimpleCache dcache_;
    Cycles cycles_ = 0;
    TimingStats stats_;
    uint8_t lastLoadRd_ = 0;
    bool lastWasLoad_ = false;
};

/**
 * BOOM-class: 3-wide superscalar out-of-order. Groups up to three
 * retirements per cycle (at most one memory op and one control-flow op
 * per group, groups end at taken branches); mispredicted branches pay a
 * deep-pipeline redirect, cache misses are partially overlapped by the
 * out-of-order window.
 */
class BoomTiming : public TimingModel
{
  public:
    explicit BoomTiming(const TimingParams &p = {});

    std::string modelName() const override { return "boom"; }
    void retire(const Retired &r) override;
    Cycles cycles() const override;
    const TimingStats &stats() const override { return stats_; }
    void reset() override;

  private:
    void closeGroup();

    TimingParams params_;
    SimpleCache dcache_;
    Cycles cycles_ = 0;
    TimingStats stats_;
    // Current issue group state.
    int groupSize_ = 0;
    bool groupHasMem_ = false;
    bool groupHasCtrl_ = false;
    Cycles groupExtra_ = 0;
};

/**
 * Static branch predictor shared by both models: backward-taken,
 * forward-not-taken.
 *
 * @return true if the prediction was correct.
 */
bool btfnPredict(const Retired &r);

/** Factory by model name ("rocket" or "boom"). */
std::unique_ptr<TimingModel> makeTimingModel(const std::string &name,
                                             const TimingParams &p = {});

} // namespace rose::rv

#endif // ROSE_RV_TIMING_HH
