#include "client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <random>
#include <thread>

#include "bridge/transport.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace rose::serve {

using bridge::TransportError;

ServeClient::ServeClient(uint16_t port, const std::string &host,
                         int timeout_ms)
    : host_(host), port_(port), timeoutMs_(timeout_ms)
{
    dial();
}

void
ServeClient::dial()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    // A fresh connection is a fresh frame stream: any half-read
    // frame from the previous incarnation must not prefix it.
    rx_ = MessageBuffer{};

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    if (inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1)
        throw TransportError("invalid IPv4 address: " + host_);

    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        throw TransportError(std::string("socket() failed: ") +
                             std::strerror(errno));
    if (connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                sizeof(addr)) < 0) {
        int err = errno;
        ::close(fd_);
        fd_ = -1;
        throw TransportError(detail::concat("connect to ", host_, ":",
                                            port_, " failed: ",
                                            std::strerror(err)));
    }
    int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void
ServeClient::enableReconnect(const ReconnectConfig &cfg)
{
    reconnect_ = cfg;
    if (reconnect_->maxAttempts < 1)
        reconnect_->maxAttempts = 1;
    if (reconnect_->maxEpisodes < 1)
        reconnect_->maxEpisodes = 1;
    if (keyNonce_ == 0) {
        // Per-instance namespace for auto-generated idempotency
        // keys: two clients (or two incarnations of one) must never
        // collide, or one would silently adopt the other's job.
        std::random_device rd;
        keyNonce_ = (uint64_t(rd()) << 32) ^ uint64_t(rd());
        if (keyNonce_ == 0)
            keyNonce_ = 1;
    }
}

void
ServeClient::reconnectOrThrow()
{
    if (!reconnect_)
        throw; // rethrow the in-flight TransportError
    Backoff backoff(reconnect_->backoff, keyNonce_ ^ reconnects_);
    for (int attempt = 0; attempt < reconnect_->maxAttempts;
         ++attempt) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(backoff.nextDelayMs()));
        try {
            dial();
            reconnects_++;
            return;
        } catch (const TransportError &) {
            // keep trying; the original failure is rethrown below
        }
    }
    throw; // every dial attempt failed
}

ServeClient::~ServeClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
ServeClient::onProgress(std::function<void(const ProgressEvent &)> fn)
{
    progress_ = std::move(fn);
}

void
ServeClient::sendAll(const std::vector<uint8_t> &wire)
{
    size_t off = 0;
    while (off < wire.size()) {
        ssize_t n = ::send(fd_, wire.data() + off, wire.size() - off,
                           MSG_NOSIGNAL);
        if (n >= 0) {
            off += size_t(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK)
            throw TransportError(std::string("serve send failed: ") +
                                 std::strerror(errno));
        pollfd pfd{fd_, POLLOUT, 0};
        int rc = ::poll(&pfd, 1, timeoutMs_);
        if (rc < 0 && errno == EINTR)
            continue;
        if (rc <= 0)
            throw TransportError("serve send stalled (server not "
                                 "draining)");
    }
}

Message
ServeClient::nextResponse(Clock::time_point deadline)
{
    uint8_t tmp[65536];
    for (;;) {
        Message resp;
        std::string err;
        switch (rx_.next(resp, &err)) {
          case FrameStatus::Ok:
            if (isRequest(resp.type))
                throw TransportError(
                    "server sent a request-type message");
            if (resp.type == MsgType::ErrorReply)
                throw ProtocolError(decodeErrorReply(resp));
            if (resp.type == MsgType::Progress) {
                // Push frame: not part of request/response pairing.
                if (progress_)
                    progress_(decodeProgress(resp));
                continue;
            }
            return resp;
          case FrameStatus::Malformed:
            throw TransportError("serve stream framing corrupt: " +
                                 err);
          case FrameStatus::NeedMore:
            break;
        }

        auto now = Clock::now();
        if (now >= deadline)
            throw TransportError(detail::concat(
                "no response from server within ", timeoutMs_, " ms"));
        int wait_ms = int(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - now)
                .count());
        pollfd pfd{fd_, POLLIN, 0};
        int rc = ::poll(&pfd, 1, std::max(1, wait_ms));
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            throw TransportError(std::string("serve recv poll: ") +
                                 std::strerror(errno));
        }
        if (rc == 0)
            continue; // deadline check above will fire
        ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
        if (n > 0) {
            rx_.append(tmp, size_t(n));
        } else if (n == 0) {
            throw TransportError("server closed the connection");
        } else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
            throw TransportError(std::string("serve recv failed: ") +
                                 std::strerror(errno));
        }
    }
}

Message
ServeClient::request(const Message &req)
{
    std::vector<uint8_t> wire;
    serializeMessage(req, wire);
    sendAll(wire);
    return nextResponse(Clock::now() +
                        std::chrono::milliseconds(timeoutMs_));
}

Message
ServeClient::transact(const Message &req, bool retriable)
{
    int episodes = 0;
    for (;;) {
        try {
            return request(req);
        } catch (const TransportError &) {
            if (!retriable ||
                (reconnect_ && ++episodes >= reconnect_->maxEpisodes))
                throw;
            reconnectOrThrow();
        }
    }
}

SubmitOutcome
ServeClient::submit(const core::MissionSpec &spec,
                    const std::string &idempotency_key)
{
    std::string key = idempotency_key;
    if (key.empty() && reconnect_)
        // No caller key under reconnect: mint one, or the
        // transparent retry below could run the mission twice.
        key = detail::concat("rose-", std::hex, keyNonce_, "-",
                             ++keyCounter_);
    // Keyed submissions are idempotent and therefore retriable; an
    // unkeyed one is not (the retry could double-run), so transport
    // failures propagate.
    Message resp = transact(encodeSubmitMission(spec, key),
                            !key.empty());
    SubmitOutcome out;
    out.idempotencyKey = key;
    if (resp.type == MsgType::SubmitOk) {
        SubmitOkReply ok = decodeSubmitOk(resp);
        out.accepted = true;
        out.jobId = ok.jobId;
        out.queuePosition = ok.queuePosition;
        return out;
    }
    RejectedReply rej = decodeRejected(resp);
    out.accepted = false;
    out.reason = rej.reason;
    out.detail = rej.detail;
    return out;
}

StatusInfo
ServeClient::status(uint64_t job_id)
{
    // A pure read: always safe to retry.
    return decodeStatusReply(
        transact(encodeQueryStatus(job_id), true));
}

bool
ServeClient::tryFetchResult(uint64_t job_id, ServedResult &out,
                            JobState *state_out,
                            TrajectoryEncoding encoding)
{
    // Resumable fetch: on connection loss mid-stream (reconnect
    // enabled) the assembled prefix is kept and the re-request
    // carries its byte offset; the server restarts chunk numbering
    // at 0 from there (rewindForResume matches). If the server
    // refuses the resume (e.g. binary no longer servable), one
    // restart from offset 0 with a fresh assembler is attempted.
    ResultStreamAssembler assembler(job_id);
    bool restarted = false;
    int episodes = 0;
    for (;;) {
        try {
            Message resp = request(encodeFetchResult(
                job_id, encoding,
                uint64_t(assembler.payloadBytes())));
            if (resp.type == MsgType::StatusReply) {
                StatusInfo s = decodeStatusReply(resp);
                if (state_out)
                    *state_out = s.state;
                if (s.state == JobState::Unknown)
                    throw ProtocolError(
                        detail::concat("unknown job id ", job_id));
                if (s.state == JobState::Cancelled)
                    throw ProtocolError(detail::concat(
                        "job ", job_id, " was cancelled"));
                return false;
            }
            // The job finished: reassemble and verify its result
            // stream. The deadline resets per frame so a long stream
            // can't trip the round-trip timeout while frames keep
            // arriving.
            while (!assembler.feed(resp))
                resp = nextResponse(
                    Clock::now() +
                    std::chrono::milliseconds(timeoutMs_));
            break;
        } catch (const TransportError &) {
            if (reconnect_ && ++episodes > reconnect_->maxEpisodes)
                throw;
            reconnectOrThrow(); // rethrows when reconnect is off
            assembler.rewindForResume();
        } catch (const ProtocolError &) {
            if (assembler.payloadBytes() == 0 || restarted)
                throw;
            restarted = true;
            assembler = ResultStreamAssembler(job_id);
        }
    }
    ResultData d = assembler.takeResult();
    uint64_t payload_hash = d.payloadHash;
    out = std::move(d.result);
    // Failed executions stream too (an empty trajectory and a
    // failureReason); both terminal states travel in ResultEnd, so
    // callers can tell success from failure without parsing
    // failureReason.
    if (state_out)
        *state_out = d.state;
    // The bytes are verified locally: release the server-side record
    // (the ack carries the hash of the payload we assembled — CSV or
    // binary — so the server only drops what we actually hold).
    ackVerified(job_id, payload_hash);
    return true;
}

void
ServeClient::ackVerified(uint64_t job_id, uint64_t payload_hash)
{
    Message resp;
    try {
        resp = transact(encodeAckResult(job_id, payload_hash),
                        true);
    } catch (const TransportError &) {
        // Best effort: the result is already safe in our hands; an
        // unreachable server just retains the record until its
        // retention bound evicts it.
        return;
    }
    AckInfo a = decodeAckReply(resp);
    if (a.outcome == AckOutcome::HashMismatch)
        // Should be impossible after local verification — it means
        // the server holds different bytes than it streamed us.
        throw ProtocolError(detail::concat(
            "server refused ack of job ", job_id,
            ": trajectory hash mismatch"));
    // Released, or UnknownJob (an earlier ack already landed): done.
}

ServedResult
ServeClient::waitResult(uint64_t job_id, int timeout_ms, int poll_ms,
                        TrajectoryEncoding encoding,
                        JobState *state_out)
{
    auto deadline = Clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    for (;;) {
        ServedResult result;
        if (tryFetchResult(job_id, result, state_out, encoding))
            return result;
        if (Clock::now() >= deadline)
            throw TransportError(detail::concat(
                "job ", job_id, " did not finish within ", timeout_ms,
                " ms"));
        std::this_thread::sleep_for(
            std::chrono::milliseconds(poll_ms));
    }
}

CancelInfo
ServeClient::cancel(uint64_t job_id)
{
    // Cancel is idempotent (a second cancel of the same id answers
    // Dequeued/AlreadyDone, never double-acts): retriable.
    return decodeCancelReply(
        transact(encodeCancelMission(job_id), true));
}

ServerStatsData
ServeClient::serverStats()
{
    return decodeStatsReply(transact(encodeServerStats(), true));
}

void
ServeClient::shutdownServer(bool drain)
{
    Message resp = request(encodeShutdown(drain));
    if (resp.type != MsgType::ShutdownReply)
        throw ProtocolError("unexpected reply to Shutdown");
}

} // namespace rose::serve
