#include "client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "bridge/transport.hh"
#include "util/logging.hh"

namespace rose::serve {

using bridge::TransportError;

ServeClient::ServeClient(uint16_t port, const std::string &host,
                         int timeout_ms)
    : timeoutMs_(timeout_ms)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw TransportError("invalid IPv4 address: " + host);

    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        throw TransportError(std::string("socket() failed: ") +
                             std::strerror(errno));
    if (connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                sizeof(addr)) < 0) {
        int err = errno;
        ::close(fd_);
        fd_ = -1;
        throw TransportError(detail::concat("connect to ", host, ":",
                                            port, " failed: ",
                                            std::strerror(err)));
    }
    int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

ServeClient::~ServeClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
ServeClient::onProgress(std::function<void(const ProgressEvent &)> fn)
{
    progress_ = std::move(fn);
}

void
ServeClient::sendAll(const std::vector<uint8_t> &wire)
{
    size_t off = 0;
    while (off < wire.size()) {
        ssize_t n = ::send(fd_, wire.data() + off, wire.size() - off,
                           MSG_NOSIGNAL);
        if (n >= 0) {
            off += size_t(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK)
            throw TransportError(std::string("serve send failed: ") +
                                 std::strerror(errno));
        pollfd pfd{fd_, POLLOUT, 0};
        int rc = ::poll(&pfd, 1, timeoutMs_);
        if (rc < 0 && errno == EINTR)
            continue;
        if (rc <= 0)
            throw TransportError("serve send stalled (server not "
                                 "draining)");
    }
}

Message
ServeClient::nextResponse(Clock::time_point deadline)
{
    uint8_t tmp[65536];
    for (;;) {
        Message resp;
        std::string err;
        switch (rx_.next(resp, &err)) {
          case FrameStatus::Ok:
            if (isRequest(resp.type))
                throw TransportError(
                    "server sent a request-type message");
            if (resp.type == MsgType::ErrorReply)
                throw ProtocolError(decodeErrorReply(resp));
            if (resp.type == MsgType::Progress) {
                // Push frame: not part of request/response pairing.
                if (progress_)
                    progress_(decodeProgress(resp));
                continue;
            }
            return resp;
          case FrameStatus::Malformed:
            throw TransportError("serve stream framing corrupt: " +
                                 err);
          case FrameStatus::NeedMore:
            break;
        }

        auto now = Clock::now();
        if (now >= deadline)
            throw TransportError(detail::concat(
                "no response from server within ", timeoutMs_, " ms"));
        int wait_ms = int(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - now)
                .count());
        pollfd pfd{fd_, POLLIN, 0};
        int rc = ::poll(&pfd, 1, std::max(1, wait_ms));
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            throw TransportError(std::string("serve recv poll: ") +
                                 std::strerror(errno));
        }
        if (rc == 0)
            continue; // deadline check above will fire
        ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
        if (n > 0) {
            rx_.append(tmp, size_t(n));
        } else if (n == 0) {
            throw TransportError("server closed the connection");
        } else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
            throw TransportError(std::string("serve recv failed: ") +
                                 std::strerror(errno));
        }
    }
}

Message
ServeClient::request(const Message &req)
{
    std::vector<uint8_t> wire;
    serializeMessage(req, wire);
    sendAll(wire);
    return nextResponse(Clock::now() +
                        std::chrono::milliseconds(timeoutMs_));
}

SubmitOutcome
ServeClient::submit(const core::MissionSpec &spec)
{
    Message resp = request(encodeSubmitMission(spec));
    SubmitOutcome out;
    if (resp.type == MsgType::SubmitOk) {
        SubmitOkReply ok = decodeSubmitOk(resp);
        out.accepted = true;
        out.jobId = ok.jobId;
        out.queuePosition = ok.queuePosition;
        return out;
    }
    RejectedReply rej = decodeRejected(resp);
    out.accepted = false;
    out.reason = rej.reason;
    out.detail = rej.detail;
    return out;
}

StatusInfo
ServeClient::status(uint64_t job_id)
{
    return decodeStatusReply(request(encodeQueryStatus(job_id)));
}

bool
ServeClient::tryFetchResult(uint64_t job_id, ServedResult &out,
                            JobState *state_out,
                            TrajectoryEncoding encoding)
{
    Message resp = request(encodeFetchResult(job_id, encoding));
    if (resp.type == MsgType::StatusReply) {
        StatusInfo s = decodeStatusReply(resp);
        if (state_out)
            *state_out = s.state;
        if (s.state == JobState::Unknown)
            throw ProtocolError(
                detail::concat("unknown job id ", job_id));
        if (s.state == JobState::Cancelled)
            throw ProtocolError(detail::concat("job ", job_id,
                                               " was cancelled"));
        return false;
    }
    // The job finished: reassemble and verify its result stream. The
    // deadline resets per frame so a long stream can't trip the
    // round-trip timeout while frames keep arriving.
    ResultStreamAssembler assembler(job_id);
    while (!assembler.feed(resp))
        resp = nextResponse(Clock::now() +
                            std::chrono::milliseconds(timeoutMs_));
    ResultData d = assembler.takeResult();
    out = std::move(d.result);
    // Failed executions stream too (an empty trajectory and a
    // failureReason); both terminal states travel in ResultEnd, so
    // callers can tell success from failure without parsing
    // failureReason.
    if (state_out)
        *state_out = d.state;
    return true;
}

ServedResult
ServeClient::waitResult(uint64_t job_id, int timeout_ms, int poll_ms,
                        TrajectoryEncoding encoding)
{
    auto deadline = Clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    for (;;) {
        ServedResult result;
        if (tryFetchResult(job_id, result, nullptr, encoding))
            return result;
        if (Clock::now() >= deadline)
            throw TransportError(detail::concat(
                "job ", job_id, " did not finish within ", timeout_ms,
                " ms"));
        std::this_thread::sleep_for(
            std::chrono::milliseconds(poll_ms));
    }
}

CancelInfo
ServeClient::cancel(uint64_t job_id)
{
    return decodeCancelReply(request(encodeCancelMission(job_id)));
}

ServerStatsData
ServeClient::serverStats()
{
    return decodeStatsReply(request(encodeServerStats()));
}

void
ServeClient::shutdownServer(bool drain)
{
    Message resp = request(encodeShutdown(drain));
    if (resp.type != MsgType::ShutdownReply)
        throw ProtocolError("unexpected reply to Shutdown");
}

} // namespace rose::serve
