/**
 * @file
 * Blocking client for the mission-service daemon (`rosed`).
 *
 * One ServeClient is one TCP connection and one session: requests are
 * written synchronously and the matching response is awaited (the
 * protocol pairs exactly one response per request, in order), so the
 * client needs no reader thread. Use one ServeClient per thread;
 * instances are not thread-safe (concurrent load is modeled with
 * multiple clients, exactly like real traffic).
 */

#ifndef ROSE_SERVE_CLIENT_HH
#define ROSE_SERVE_CLIENT_HH

#include <cstdint>
#include <string>

#include "serve/proto.hh"

namespace rose::serve {

/** Outcome of a submit: accepted with a job id, or shed. */
struct SubmitOutcome
{
    bool accepted = false;
    uint64_t jobId = 0;        ///< valid when accepted
    uint32_t queuePosition = 0;
    RejectReason reason = RejectReason::QueueFull; ///< when rejected
    std::string detail;
};

class ServeClient
{
  public:
    /**
     * Connect to a daemon on @p host (numeric IPv4) : @p port.
     * @throws bridge::TransportError when the connection fails.
     */
    explicit ServeClient(uint16_t port,
                         const std::string &host = "127.0.0.1",
                         int timeout_ms = 30000);
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Submit a mission; never throws on rejection (see outcome). */
    SubmitOutcome submit(const core::MissionSpec &spec);

    /** Lifecycle state of a job. */
    StatusInfo status(uint64_t job_id);

    /**
     * One FetchResult round-trip. @return true when the job finished
     * and @p out holds its result; false when it is still queued or
     * running. @p state_out (when non-null) receives the job's state
     * — Done or Failed on a true return, so success and failure are
     * distinguishable without inspecting failureReason. Fetching a
     * finished result releases it server-side: a second fetch of the
     * same id reports it Unknown.
     * @throws ProtocolError when the job is unknown.
     */
    bool tryFetchResult(uint64_t job_id, ServedResult &out,
                        JobState *state_out = nullptr);

    /**
     * Poll FetchResult until the job finishes. @throws
     * bridge::TransportError on connection loss or when @p timeout_ms
     * elapses; ProtocolError when the job is unknown or cancelled.
     */
    ServedResult waitResult(uint64_t job_id, int timeout_ms = 120000,
                            int poll_ms = 10);

    CancelInfo cancel(uint64_t job_id);

    ServerStatsData serverStats();

    /** Ask the daemon to shut down (drain = finish queued jobs). */
    void shutdownServer(bool drain = true);

  private:
    /** Send one request and block for its paired response. */
    Message request(const Message &req);
    void sendAll(const std::vector<uint8_t> &wire);

    int fd_ = -1;
    int timeoutMs_;
    MessageBuffer rx_;
};

} // namespace rose::serve

#endif // ROSE_SERVE_CLIENT_HH
