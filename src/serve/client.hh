/**
 * @file
 * Blocking client for the mission-service daemon (`rosed`).
 *
 * One ServeClient is one TCP connection and one session: requests are
 * written synchronously and the matching response is awaited (the
 * protocol pairs one logical response per request, in order), so the
 * client needs no reader thread. Two kinds of frames ride alongside
 * plain replies:
 *
 *  - Result streams: FetchResult of a finished job is answered with a
 *    sequence of ResultChunk frames closed by ResultEnd; the client
 *    reassembles them through ResultStreamAssembler, which verifies
 *    chunk ordering, the byte count, and the FNV-1a trajectory hash
 *    before handing back a ServedResult. Binary-encoded payloads are
 *    re-encoded to canonical CSV so the verified bytes are identical
 *    to a local runMission() of the same spec.
 *
 *  - Progress pushes: the server may interleave Progress frames
 *    (latest simulated time of a running job) anywhere between
 *    logical responses. They are dispatched to the onProgress handler
 *    (when set) and are otherwise invisible to the request/response
 *    pairing.
 *
 * Reconnect (enableReconnect): the client survives a dead daemon or a
 * dropped network path. A TransportError inside a retriable call
 * triggers redial with capped exponential backoff + jitter
 * (util/backoff.hh); submissions ride an idempotency key so the retry
 * lands on the original job instead of running the mission twice, and
 * an interrupted result stream resumes from the byte offset already
 * assembled (FetchResult carries the offset; the assembler keeps its
 * prefix). Fetched results are released server-side by a
 * hash-verified AckResult only after local verification succeeds, so
 * a crash anywhere in between never loses the result.
 *
 * Use one ServeClient per thread; instances are not thread-safe
 * (concurrent load is modeled with multiple clients, exactly like
 * real traffic).
 */

#ifndef ROSE_SERVE_CLIENT_HH
#define ROSE_SERVE_CLIENT_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "serve/proto.hh"
#include "util/backoff.hh"

namespace rose::serve {

/** Outcome of a submit: accepted with a job id, or shed. */
struct SubmitOutcome
{
    bool accepted = false;
    uint64_t jobId = 0;        ///< valid when accepted
    uint32_t queuePosition = 0;
    RejectReason reason = RejectReason::QueueFull; ///< when rejected
    std::string detail;
    /** The key the submission carried (caller-supplied or, under
     *  reconnect, auto-generated) — what a later incarnation would
     *  resubmit with. */
    std::string idempotencyKey;
};

/** Reconnect policy (enableReconnect). */
struct ReconnectConfig
{
    /** Dial attempts per reconnect episode before the original
     *  failure is rethrown. */
    int maxAttempts = 8;
    /** Delay schedule between dial attempts. */
    BackoffConfig backoff{};
    /** Retriable-call episodes (reconnect + retry cycles) before
     *  giving up. */
    int maxEpisodes = 4;
};

class ServeClient
{
  public:
    /**
     * Connect to a daemon on @p host (numeric IPv4) : @p port.
     * @throws bridge::TransportError when the connection fails.
     */
    explicit ServeClient(uint16_t port,
                         const std::string &host = "127.0.0.1",
                         int timeout_ms = 30000);
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /**
     * Install a handler for server-pushed Progress frames. Invoked
     * from whatever call is currently reading the socket (submit,
     * status, tryFetchResult, waitResult); must not reenter the
     * client. Pass nullptr to drop progress silently.
     */
    void onProgress(std::function<void(const ProgressEvent &)> fn);

    /**
     * Turn on crash-safe operation: retriable calls redial and retry
     * on TransportError per @p cfg, submissions auto-generate an
     * idempotency key when the caller supplies none, and interrupted
     * result streams resume from their byte offset. Off by default
     * (a TransportError then propagates immediately, the pre-v3
     * behavior).
     */
    void enableReconnect(const ReconnectConfig &cfg = {});

    /** Reconnect episodes performed so far (telemetry / tests). */
    uint64_t reconnects() const { return reconnects_; }

    /**
     * Submit a mission; never throws on rejection (see outcome).
     * @p idempotency_key makes the submission safe to retry: a
     * resubmission with the same key returns the original job id
     * (even across a daemon restart when rosed journals). Empty
     * means no key — unless reconnect is enabled, in which case one
     * is auto-generated so the transparent retry is safe.
     */
    SubmitOutcome submit(const core::MissionSpec &spec,
                         const std::string &idempotency_key = "");

    /** Lifecycle state of a job. */
    StatusInfo status(uint64_t job_id);

    /**
     * One FetchResult round-trip. @return true when the job finished:
     * the full result stream was consumed, hash-verified, and @p out
     * holds the result; false when it is still queued or running.
     * @p state_out (when non-null) receives the job's state — Done or
     * Failed on a true return, so success and failure are
     * distinguishable without inspecting failureReason. @p encoding
     * selects the trajectory wire encoding (the reassembled
     * trajectoryCsv is byte-identical either way; Binary is smaller
     * on the wire). After local verification the result is released
     * server-side with a hash-verified AckResult; a second fetch of
     * the same id then reports it Unknown. Under reconnect, a stream
     * interrupted by connection loss is resumed from the byte offset
     * already assembled instead of restarting. The receive deadline
     * applies per frame, not to the whole stream, so arbitrarily
     * long results don't trip the timeout while frames keep
     * arriving.
     * @throws ProtocolError when the job is unknown, was cancelled,
     * or the stream is malformed (bad order, truncation, hash
     * mismatch).
     */
    bool tryFetchResult(uint64_t job_id, ServedResult &out,
                        JobState *state_out = nullptr,
                        TrajectoryEncoding encoding =
                            TrajectoryEncoding::Csv);

    /**
     * Poll FetchResult until the job finishes. @p state_out (when
     * non-null) receives the terminal state (Done or Failed), so
     * callers can exit nonzero on failure without parsing
     * failureReason. @throws bridge::TransportError on connection
     * loss or when @p timeout_ms elapses; ProtocolError when the job
     * is unknown or cancelled.
     */
    ServedResult waitResult(uint64_t job_id, int timeout_ms = 120000,
                            int poll_ms = 10,
                            TrajectoryEncoding encoding =
                                TrajectoryEncoding::Csv,
                            JobState *state_out = nullptr);

    CancelInfo cancel(uint64_t job_id);

    ServerStatsData serverStats();

    /** Ask the daemon to shut down (drain = finish queued jobs). */
    void shutdownServer(bool drain = true);

  private:
    using Clock = std::chrono::steady_clock;

    /** Send one request and block for its paired logical response
     *  (the first non-Progress frame). */
    Message request(const Message &req);
    /** request() with transparent reconnect-and-retry on
     *  TransportError when @p retriable and reconnect is enabled. */
    Message transact(const Message &req, bool retriable);
    /** Block for the next non-Progress frame until @p deadline;
     *  Progress frames are dispatched to the handler in passing. */
    Message nextResponse(Clock::time_point deadline);
    void sendAll(const std::vector<uint8_t> &wire);
    /** (Re)establish the TCP connection; resets the frame buffer. */
    void dial();
    /**
     * Redial per the reconnect policy. MUST be called from inside a
     * catch handler: when reconnect is disabled or every dial
     * attempt fails, the in-flight exception is rethrown.
     */
    void reconnectOrThrow();
    /** Release a verified result server-side (best effort; throws
     *  ProtocolError only on a hash mismatch). */
    void ackVerified(uint64_t job_id, uint64_t payload_hash);

    int fd_ = -1;
    std::string host_;
    uint16_t port_ = 0;
    int timeoutMs_;
    MessageBuffer rx_;
    std::function<void(const ProgressEvent &)> progress_;
    std::optional<ReconnectConfig> reconnect_;
    uint64_t reconnects_ = 0;
    uint64_t keyCounter_ = 0; ///< auto idempotency-key sequence
    uint64_t keyNonce_ = 0;   ///< per-instance key namespace
};

} // namespace rose::serve

#endif // ROSE_SERVE_CLIENT_HH
