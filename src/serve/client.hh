/**
 * @file
 * Blocking client for the mission-service daemon (`rosed`).
 *
 * One ServeClient is one TCP connection and one session: requests are
 * written synchronously and the matching response is awaited (the
 * protocol pairs one logical response per request, in order), so the
 * client needs no reader thread. Two kinds of frames ride alongside
 * plain replies:
 *
 *  - Result streams: FetchResult of a finished job is answered with a
 *    sequence of ResultChunk frames closed by ResultEnd; the client
 *    reassembles them through ResultStreamAssembler, which verifies
 *    chunk ordering, the byte count, and the FNV-1a trajectory hash
 *    before handing back a ServedResult. Binary-encoded payloads are
 *    re-encoded to canonical CSV so the verified bytes are identical
 *    to a local runMission() of the same spec.
 *
 *  - Progress pushes: the server may interleave Progress frames
 *    (latest simulated time of a running job) anywhere between
 *    logical responses. They are dispatched to the onProgress handler
 *    (when set) and are otherwise invisible to the request/response
 *    pairing.
 *
 * Use one ServeClient per thread; instances are not thread-safe
 * (concurrent load is modeled with multiple clients, exactly like
 * real traffic).
 */

#ifndef ROSE_SERVE_CLIENT_HH
#define ROSE_SERVE_CLIENT_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "serve/proto.hh"

namespace rose::serve {

/** Outcome of a submit: accepted with a job id, or shed. */
struct SubmitOutcome
{
    bool accepted = false;
    uint64_t jobId = 0;        ///< valid when accepted
    uint32_t queuePosition = 0;
    RejectReason reason = RejectReason::QueueFull; ///< when rejected
    std::string detail;
};

class ServeClient
{
  public:
    /**
     * Connect to a daemon on @p host (numeric IPv4) : @p port.
     * @throws bridge::TransportError when the connection fails.
     */
    explicit ServeClient(uint16_t port,
                         const std::string &host = "127.0.0.1",
                         int timeout_ms = 30000);
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /**
     * Install a handler for server-pushed Progress frames. Invoked
     * from whatever call is currently reading the socket (submit,
     * status, tryFetchResult, waitResult); must not reenter the
     * client. Pass nullptr to drop progress silently.
     */
    void onProgress(std::function<void(const ProgressEvent &)> fn);

    /** Submit a mission; never throws on rejection (see outcome). */
    SubmitOutcome submit(const core::MissionSpec &spec);

    /** Lifecycle state of a job. */
    StatusInfo status(uint64_t job_id);

    /**
     * One FetchResult round-trip. @return true when the job finished:
     * the full result stream was consumed, hash-verified, and @p out
     * holds the result; false when it is still queued or running.
     * @p state_out (when non-null) receives the job's state — Done or
     * Failed on a true return, so success and failure are
     * distinguishable without inspecting failureReason. @p encoding
     * selects the trajectory wire encoding (the reassembled
     * trajectoryCsv is byte-identical either way; Binary is smaller
     * on the wire). Fetching a finished result releases it
     * server-side: a second fetch of the same id reports it Unknown.
     * The receive deadline applies per frame, not to the whole
     * stream, so arbitrarily long results don't trip the timeout
     * while frames keep arriving.
     * @throws ProtocolError when the job is unknown, was cancelled,
     * or the stream is malformed (bad order, truncation, hash
     * mismatch).
     */
    bool tryFetchResult(uint64_t job_id, ServedResult &out,
                        JobState *state_out = nullptr,
                        TrajectoryEncoding encoding =
                            TrajectoryEncoding::Csv);

    /**
     * Poll FetchResult until the job finishes. @throws
     * bridge::TransportError on connection loss or when @p timeout_ms
     * elapses; ProtocolError when the job is unknown or cancelled.
     */
    ServedResult waitResult(uint64_t job_id, int timeout_ms = 120000,
                            int poll_ms = 10,
                            TrajectoryEncoding encoding =
                                TrajectoryEncoding::Csv);

    CancelInfo cancel(uint64_t job_id);

    ServerStatsData serverStats();

    /** Ask the daemon to shut down (drain = finish queued jobs). */
    void shutdownServer(bool drain = true);

  private:
    using Clock = std::chrono::steady_clock;

    /** Send one request and block for its paired logical response
     *  (the first non-Progress frame). */
    Message request(const Message &req);
    /** Block for the next non-Progress frame until @p deadline;
     *  Progress frames are dispatched to the handler in passing. */
    Message nextResponse(Clock::time_point deadline);
    void sendAll(const std::vector<uint8_t> &wire);

    int fd_ = -1;
    int timeoutMs_;
    MessageBuffer rx_;
    std::function<void(const ProgressEvent &)> progress_;
};

} // namespace rose::serve

#endif // ROSE_SERVE_CLIENT_HH
