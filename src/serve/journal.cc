#include "journal.hh"

#include <cerrno>
#include <cstring>

#include <sys/stat.h>
#include <unistd.h>

#include "core/checkpoint.hh"
#include "util/hash.hh"
#include "util/logging.hh"
#include "util/serde.hh"

namespace rose::serve {

namespace {

/** 8-byte file magic, sibling of the checkpoint's "ROSECKPT". */
constexpr char kMagic[8] = {'R', 'O', 'S', 'E', 'J', 'R', 'N', 'L'};

constexpr size_t kHeaderBytes = sizeof(kMagic) + 4 + 8;

/** u8 type + u32 length before, u64 hash after the payload. */
constexpr size_t kRecordOverheadBytes = 1 + 4 + 8;

/**
 * Sanity bound on one record's payload: the largest legitimate
 * record is a Terminal carrying a trajectory CSV, itself bounded by
 * the client-side reassembly guard.
 */
constexpr size_t kMaxRecordPayloadBytes =
    kMaxAssembledTrajectoryBytes + (1u << 20);

enum RecordType : uint8_t
{
    kRecSubmit = 1,
    kRecTerminal = 2,
    kRecReleased = 3,
};

uint64_t
payloadHash(const uint8_t *data, size_t n)
{
    return fnv1a(std::string_view(
        reinterpret_cast<const char *>(data), n));
}

std::vector<uint8_t>
headerBytes(uint64_t fingerprint)
{
    StateWriter w;
    w.bytes(reinterpret_cast<const uint8_t *>(kMagic),
            sizeof(kMagic));
    w.u32(JobJournal::kVersion);
    w.u64(fingerprint);
    return w.take();
}

void
writeServedResult(StateWriter &w, const ServedResult &s)
{
    w.boolean(s.completed);
    w.u8(s.status);
    w.str(s.failureReason);
    w.f64(s.missionTime);
    w.u64(s.collisions);
    w.f64(s.avgSpeed);
    w.f64(s.maxSpeed);
    w.f64(s.distanceTravelled);
    w.u64(s.inferences);
    w.f64(s.avgInferenceLatency);
    w.f64(s.energyJoules);
    w.f64(s.avgPowerWatts);
    w.u64(s.simulatedCycles);
    w.u32(s.trajectorySamples);
    w.u32(s.degradedIntervals);
    w.f64(s.queueWaitMs);
    w.f64(s.serviceMs);
    w.str(s.trajectoryCsv);
    w.u64(s.trajectoryHash);
}

ServedResult
readServedResult(StateReader &r)
{
    ServedResult s;
    s.completed = r.boolean();
    s.status = r.u8();
    s.failureReason = r.str();
    s.missionTime = r.f64();
    s.collisions = r.u64();
    s.avgSpeed = r.f64();
    s.maxSpeed = r.f64();
    s.distanceTravelled = r.f64();
    s.inferences = r.u64();
    s.avgInferenceLatency = r.f64();
    s.energyJoules = r.f64();
    s.avgPowerWatts = r.f64();
    s.simulatedCycles = r.u64();
    s.trajectorySamples = r.u32();
    s.degradedIntervals = r.u32();
    s.queueWaitMs = r.f64();
    s.serviceMs = r.f64();
    s.trajectoryCsv = r.str();
    s.trajectoryHash = r.u64();
    return s;
}

std::vector<uint8_t>
encodeSubmitPayload(uint64_t job_id, const std::string &idem_key,
                    const core::MissionSpec &spec)
{
    // The spec (key included) rides in its SubmitMission wire form,
    // so the journal reuses the protocol codec's validation and
    // version handling verbatim on replay.
    Message m = encodeSubmitMission(spec, idem_key);
    StateWriter w;
    w.u64(job_id);
    w.u32(uint32_t(m.payload.size()));
    w.bytes(m.payload.data(), m.payload.size());
    return w.take();
}

std::vector<uint8_t>
encodeTerminalPayload(uint64_t job_id, JobState state,
                      const ServedResult &result)
{
    StateWriter w;
    w.u64(job_id);
    w.u8(uint8_t(state));
    writeServedResult(w, result);
    return w.take();
}

std::vector<uint8_t>
encodeReleasedPayload(uint64_t job_id)
{
    StateWriter w;
    w.u64(job_id);
    return w.take();
}

/**
 * Apply one intact record to the replay state. Unknown job ids in
 * Terminal/Released records are tolerated (they can only appear in
 * journals hand-edited or compacted by a newer version).
 */
void
applyRecord(uint8_t type, const uint8_t *payload, size_t n,
            JournalReplay &rep)
{
    std::vector<RecoveredJob> &jobs = rep.jobs;
    StateReader r(payload, n);
    switch (type) {
      case kRecSubmit: {
        RecoveredJob job;
        job.jobId = r.u64();
        // Track the high-water id across ALL submits — released jobs
        // included — so a restarted daemon never reuses an id a past
        // client may still reference.
        rep.maxJobId = std::max(rep.maxJobId, job.jobId);
        uint32_t spec_len = r.u32();
        if (spec_len > r.remaining())
            throw SerdeError("submit record spec truncated");
        Message m;
        m.type = MsgType::SubmitMission;
        m.payload.resize(spec_len);
        r.bytes(m.payload.data(), spec_len);
        SubmitRequest req = decodeSubmitRequest(m);
        job.spec = std::move(req.spec);
        job.idempotencyKey = std::move(req.idempotencyKey);
        for (const RecoveredJob &existing : jobs)
            if (existing.jobId == job.jobId)
                return; // duplicate submit: first one wins
        jobs.push_back(std::move(job));
        return;
      }
      case kRecTerminal: {
        uint64_t id = r.u64();
        uint8_t state = r.u8();
        if (state != uint8_t(JobState::Done) &&
            state != uint8_t(JobState::Failed) &&
            state != uint8_t(JobState::Cancelled))
            throw SerdeError("terminal record with non-terminal "
                             "state byte");
        ServedResult result = readServedResult(r);
        for (RecoveredJob &job : jobs) {
            if (job.jobId != id)
                continue;
            job.terminal = true;
            job.state = JobState(state);
            job.result = std::move(result);
            return;
        }
        return;
      }
      case kRecReleased: {
        uint64_t id = r.u64();
        for (size_t i = 0; i < jobs.size(); ++i) {
            if (jobs[i].jobId == id) {
                jobs.erase(jobs.begin() + std::ptrdiff_t(i));
                return;
            }
        }
        return;
      }
    }
    throw SerdeError("unknown journal record type");
}

} // namespace

uint64_t
journalFingerprint(bool supervise)
{
    StateWriter w;
    w.u32(JobJournal::kVersion);
    w.u8(kSpecCodecVersion);
    w.u32(core::Checkpoint::kVersion);
    w.boolean(supervise);
    const std::vector<uint8_t> &b = w.data();
    return payloadHash(b.data(), b.size());
}

JournalReplay
JobJournal::replayBytes(const std::vector<uint8_t> &bytes,
                        uint64_t config_fingerprint,
                        size_t &keep_bytes)
{
    JournalReplay rep;
    keep_bytes = 0;
    if (bytes.empty())
        return rep;

    std::vector<uint8_t> want = headerBytes(config_fingerprint);
    if (bytes.size() < kHeaderBytes) {
        // A header torn by a crash during creation is recoverable
        // (start fresh); anything else is not our file.
        if (std::memcmp(bytes.data(), want.data(), bytes.size()) != 0)
            throw JournalError("journal header is not ROSEJRNL");
        rep.recoveredFromCorruption = true;
        return rep;
    }
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        throw JournalError("journal header is not ROSEJRNL");
    StateReader hdr(bytes.data() + sizeof(kMagic),
                    kHeaderBytes - sizeof(kMagic));
    uint32_t version = hdr.u32();
    if (version != kVersion)
        throw JournalError(detail::concat(
            "journal version ", version, " != supported ", kVersion));
    uint64_t fp = hdr.u64();
    if (fp != config_fingerprint)
        throw JournalError(detail::concat(
            "journal config fingerprint ", std::hex, fp,
            " does not match this daemon's ", config_fingerprint,
            " — refusing to replay a journal written under a "
            "different configuration"));

    size_t pos = kHeaderBytes;
    keep_bytes = pos;
    while (pos < bytes.size()) {
        size_t avail = bytes.size() - pos;
        if (avail < 1 + 4)
            break; // torn record header
        uint8_t type = bytes[pos];
        uint32_t len = uint32_t(bytes[pos + 1]) |
                       uint32_t(bytes[pos + 2]) << 8 |
                       uint32_t(bytes[pos + 3]) << 16 |
                       uint32_t(bytes[pos + 4]) << 24;
        if (type < kRecSubmit || type > kRecReleased)
            break; // corrupt type byte
        if (len > kMaxRecordPayloadBytes)
            break; // corrupt length
        if (avail < kRecordOverheadBytes + size_t(len))
            break; // torn payload/hash
        const uint8_t *payload = bytes.data() + pos + 5;
        StateReader tail(payload + len, 8);
        if (tail.u64() != payloadHash(payload, len))
            break; // corrupt payload
        try {
            applyRecord(type, payload, len, rep);
        } catch (const std::exception &) {
            // Hash-intact but semantically unreadable (e.g. a spec
            // codec from the future): stop here, keep the prefix.
            break;
        }
        rep.recordsReplayed++;
        pos += kRecordOverheadBytes + len;
        keep_bytes = pos;
    }
    if (keep_bytes < bytes.size()) {
        rep.truncatedBytes = bytes.size() - keep_bytes;
        rep.recoveredFromCorruption = true;
    }
    return rep;
}

JobJournal::JobJournal(std::string dir, uint64_t config_fingerprint,
                       bool fsync_each)
    : dir_(std::move(dir)), fingerprint_(config_fingerprint),
      fsync_(fsync_each)
{
    if (dir_.empty())
        throw JournalError("journal directory must be non-empty");
    if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST)
        throw JournalError(detail::concat(
            "cannot create journal directory ", dir_, ": ",
            std::strerror(errno)));

    // Read + replay whatever a previous incarnation left behind.
    std::vector<uint8_t> bytes;
    if (std::FILE *in = std::fopen(walPath().c_str(), "rb")) {
        char buf[1 << 16];
        size_t n = 0;
        while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0)
            bytes.insert(bytes.end(), buf, buf + n);
        std::fclose(in);
    }
    size_t keep = 0;
    replay_ = replayBytes(bytes, fingerprint_, keep);

    // Compact: rewrite only the surviving jobs' records, atomically
    // (tmp + rename), which also truncates any torn/corrupt tail.
    std::string tmp = walPath() + ".tmp";
    std::FILE *out = std::fopen(tmp.c_str(), "wb");
    if (!out)
        throw JournalError(detail::concat(
            "cannot create journal ", tmp, ": ",
            std::strerror(errno)));
    StateWriter w;
    w.bytes(headerBytes(fingerprint_).data(), kHeaderBytes);
    for (const RecoveredJob &job : replay_.jobs) {
        std::vector<uint8_t> p = encodeSubmitPayload(
            job.jobId, job.idempotencyKey, job.spec);
        w.u8(kRecSubmit);
        w.u32(uint32_t(p.size()));
        w.bytes(p.data(), p.size());
        w.u64(payloadHash(p.data(), p.size()));
        if (job.terminal) {
            p = encodeTerminalPayload(job.jobId, job.state,
                                      job.result);
            w.u8(kRecTerminal);
            w.u32(uint32_t(p.size()));
            w.bytes(p.data(), p.size());
            w.u64(payloadHash(p.data(), p.size()));
        }
    }
    const std::vector<uint8_t> &img = w.data();
    bool ok = std::fwrite(img.data(), 1, img.size(), out) ==
                  img.size() &&
              std::fflush(out) == 0 && ::fsync(fileno(out)) == 0;
    std::fclose(out);
    if (!ok || std::rename(tmp.c_str(), walPath().c_str()) != 0) {
        std::remove(tmp.c_str());
        throw JournalError(detail::concat(
            "cannot write journal ", walPath(), ": ",
            std::strerror(errno)));
    }
    bytes_ = img.size();

    f_ = std::fopen(walPath().c_str(), "ab");
    if (!f_)
        throw JournalError(detail::concat(
            "cannot open journal ", walPath(), " for append: ",
            std::strerror(errno)));
}

JobJournal::~JobJournal()
{
    if (f_)
        std::fclose(f_);
}

void
JobJournal::appendRecord(uint8_t type,
                         const std::vector<uint8_t> &payload)
{
    StateWriter w;
    w.u8(type);
    w.u32(uint32_t(payload.size()));
    w.bytes(payload.data(), payload.size());
    w.u64(payloadHash(payload.data(), payload.size()));
    const std::vector<uint8_t> &rec = w.data();

    std::lock_guard<std::mutex> lk(mu_);
    bool ok = std::fwrite(rec.data(), 1, rec.size(), f_) ==
                  rec.size() &&
              std::fflush(f_) == 0;
    if (ok && fsync_)
        ok = ::fsync(fileno(f_)) == 0;
    if (!ok)
        throw JournalError(detail::concat(
            "journal append failed: ", std::strerror(errno)));
    bytes_ += rec.size();
}

void
JobJournal::appendSubmit(uint64_t job_id, const std::string &idem_key,
                         const core::MissionSpec &spec)
{
    appendRecord(kRecSubmit,
                 encodeSubmitPayload(job_id, idem_key, spec));
}

void
JobJournal::appendTerminal(uint64_t job_id, JobState state,
                           const ServedResult &result)
{
    appendRecord(kRecTerminal,
                 encodeTerminalPayload(job_id, state, result));
}

void
JobJournal::appendReleased(uint64_t job_id)
{
    appendRecord(kRecReleased, encodeReleasedPayload(job_id));
}

std::string
JobJournal::checkpointPathFor(uint64_t job_id) const
{
    return dir_ + "/job-" + std::to_string(job_id) + ".ckpt";
}

void
JobJournal::removeCheckpoint(uint64_t job_id) const
{
    const std::string path = checkpointPathFor(job_id);
    std::remove(path.c_str());
    // A crash between the checkpoint's write-aside and its rename can
    // leave the temporary behind; reap it with the job.
    std::remove((path + ".tmp").c_str());
}

std::string
JobJournal::walPath() const
{
    return dir_ + "/journal.wal";
}

uint64_t
JobJournal::bytesOnDisk() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return bytes_;
}

} // namespace rose::serve
