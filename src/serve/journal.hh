/**
 * @file
 * Write-ahead job journal: the durability layer under rosed.
 *
 * Without it, rosed's job table is purely in-memory: a daemon crash
 * loses every queued and running mission, and clients cannot tell a
 * lost submission from a slow one. The journal makes the serve path
 * crash-safe with one discipline — *journal before state transition*:
 *
 *   - SubmitMission appends a Submit record (job id, idempotency key,
 *     the spec in its wire form) before the job enters the queue.
 *   - A terminal transition (Done / Failed / Cancelled) appends a
 *     Terminal record carrying the full scalar result, the canonical
 *     trajectory CSV, and its FNV-1a hash.
 *   - A hash-verified client ack (or retention eviction) appends a
 *     Released record.
 *
 * A restarted rosed replays the journal: released jobs vanish,
 * terminal jobs come back fetchable with bit-identical bytes, and
 * jobs with no Terminal record re-enter the queue — warm-restored
 * from their per-job MissionSupervisor checkpoint
 * (`<dir>/job-<id>.ckpt`, ROSECKPT format) when one survives, cold
 * restarted otherwise. Either way the mission is deterministic, so
 * the recovered trajectory hash equals an uninterrupted run's.
 *
 * On-disk format (all little-endian, built on util/serde.hh):
 *
 *   header:  "ROSEJRNL" magic ·  u32 journal version ·
 *            u64 config fingerprint (journalFingerprint())
 *   record:  u8 type · u32 payload length · payload ·
 *            u64 FNV-1a(payload)
 *
 * Replay never aborts: a truncated tail or a record whose hash does
 * not match ends recovery at the last intact record (the file is
 * truncated back to that point — exactly what a crash mid-append
 * leaves behind). A header whose magic/version/fingerprint mismatch
 * throws JournalError: that journal belongs to a different format or
 * configuration and silently reinterpreting it could replay wrong
 * results. Opening also compacts: surviving records are rewritten to
 * a temp file which is renamed over the journal, so released jobs
 * stop costing disk across restarts.
 *
 * Appends are fwrite + fflush under an internal mutex — durable
 * against process death (the bytes live in the page cache once
 * flushed, SIGKILL included). `fsync_each` upgrades that to
 * power-loss durability at a large latency cost (see bench_serve's
 * journal sweep).
 */

#ifndef ROSE_SERVE_JOURNAL_HH
#define ROSE_SERVE_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "serve/proto.hh"

namespace rose::serve {

/**
 * Unrecoverable journal problems: not a journal file, or one written
 * by an incompatible format/config. Never thrown for torn or corrupt
 * records — those truncate recovery instead.
 */
class JournalError : public std::runtime_error
{
  public:
    explicit JournalError(const std::string &what)
        : std::runtime_error(what) {}
};

/** One job reconstructed by replay. */
struct RecoveredJob
{
    uint64_t jobId = 0;
    std::string idempotencyKey;
    core::MissionSpec spec;
    /** True when a Terminal record was recovered. */
    bool terminal = false;
    /** Done / Failed / Cancelled when terminal. */
    JobState state = JobState::Queued;
    /** The journaled result (samples empty; CSV + hash intact). */
    ServedResult result;
};

/** Outcome of the open-time replay. */
struct JournalReplay
{
    /** Surviving jobs, in submit order. */
    std::vector<RecoveredJob> jobs;
    uint64_t maxJobId = 0;
    /** Intact records applied (including ones later superseded). */
    uint64_t recordsReplayed = 0;
    /** Bytes cut off the tail by torn/corrupt-record recovery. */
    uint64_t truncatedBytes = 0;
    /** True when recovery had to truncate a torn/corrupt tail. */
    bool recoveredFromCorruption = false;
};

/**
 * Fingerprint stored in the journal header: hashes the journal
 * format version, the spec codec version, the checkpoint format
 * version, and the execution mode, so a journal is only ever
 * replayed by a daemon that would interpret it identically.
 */
uint64_t journalFingerprint(bool supervise);

/** The write-ahead job journal (see file comment for the format). */
class JobJournal
{
  public:
    /**
     * Open (creating the directory and file as needed), replay, and
     * compact `<dir>/journal.wal`.
     * @throws JournalError on magic/version/fingerprint mismatch or
     * when the directory/file cannot be created.
     */
    JobJournal(std::string dir, uint64_t config_fingerprint,
               bool fsync_each = false);
    ~JobJournal();

    JobJournal(const JobJournal &) = delete;
    JobJournal &operator=(const JobJournal &) = delete;

    /** Replay outcome of this open (moves the recovered jobs out). */
    JournalReplay takeReplay() { return std::move(replay_); }

    // Appends. Each throws JournalError if the write fails (callers
    // decide whether that is fatal; rosed rejects the submission).
    void appendSubmit(uint64_t job_id, const std::string &idem_key,
                      const core::MissionSpec &spec);
    void appendTerminal(uint64_t job_id, JobState state,
                        const ServedResult &result);
    void appendReleased(uint64_t job_id);

    /** Where this job's supervisor checkpoint ring persists. */
    std::string checkpointPathFor(uint64_t job_id) const;
    /** Best-effort removal of a job's checkpoint file. */
    void removeCheckpoint(uint64_t job_id) const;

    const std::string &dir() const { return dir_; }
    std::string walPath() const;
    /** Journal file size after the last append [bytes]. */
    uint64_t bytesOnDisk() const;

    static constexpr uint32_t kVersion = 1;

    /**
     * Parse journal bytes (header included) into a replay. Exposed
     * for tests; JobJournal's constructor uses exactly this.
     * @param[out] keep_bytes how many leading file bytes survived.
     */
    static JournalReplay replayBytes(const std::vector<uint8_t> &bytes,
                                     uint64_t config_fingerprint,
                                     size_t &keep_bytes);

  private:
    void appendRecord(uint8_t type,
                      const std::vector<uint8_t> &payload);

    std::string dir_;
    uint64_t fingerprint_ = 0;
    bool fsync_ = false;
    std::FILE *f_ = nullptr;
    mutable std::mutex mu_;
    uint64_t bytes_ = 0;
    JournalReplay replay_;
};

} // namespace rose::serve

#endif // ROSE_SERVE_JOURNAL_HH
