#include "proto.hh"

#include <cstring>

#include "util/logging.hh"

namespace rose::serve {

using bridge::ByteReader;
using bridge::ByteWriter;

bool
isValidMsgType(uint8_t raw)
{
    switch (MsgType(raw)) {
      case MsgType::SubmitMission:
      case MsgType::QueryStatus:
      case MsgType::FetchResult:
      case MsgType::CancelMission:
      case MsgType::ServerStats:
      case MsgType::Shutdown:
      case MsgType::SubmitOk:
      case MsgType::SubmitRejected:
      case MsgType::StatusReply:
      case MsgType::ResultReply:
      case MsgType::CancelReply:
      case MsgType::StatsReply:
      case MsgType::ShutdownReply:
      case MsgType::ErrorReply:
        return true;
    }
    return false;
}

bool
isRequest(MsgType t)
{
    return (uint8_t(t) & 0x80) == 0;
}

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::SubmitMission: return "SubmitMission";
      case MsgType::QueryStatus: return "QueryStatus";
      case MsgType::FetchResult: return "FetchResult";
      case MsgType::CancelMission: return "CancelMission";
      case MsgType::ServerStats: return "ServerStats";
      case MsgType::Shutdown: return "Shutdown";
      case MsgType::SubmitOk: return "SubmitOk";
      case MsgType::SubmitRejected: return "SubmitRejected";
      case MsgType::StatusReply: return "StatusReply";
      case MsgType::ResultReply: return "ResultReply";
      case MsgType::CancelReply: return "CancelReply";
      case MsgType::StatsReply: return "StatsReply";
      case MsgType::ShutdownReply: return "ShutdownReply";
      case MsgType::ErrorReply: return "ErrorReply";
    }
    return "unknown";
}

const char *
rejectReasonName(RejectReason r)
{
    switch (r) {
      case RejectReason::QueueFull: return "queue_full";
      case RejectReason::ClientCap: return "client_cap";
      case RejectReason::ShuttingDown: return "shutting_down";
      case RejectReason::BadRequest: return "bad_request";
    }
    return "unknown";
}

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Done: return "done";
      case JobState::Failed: return "failed";
      case JobState::Cancelled: return "cancelled";
      case JobState::Unknown: return "unknown";
    }
    return "unknown";
}

// ------------------------------------------------------------- framing

void
serializeMessage(const Message &m, std::vector<uint8_t> &out)
{
    rose_assert(m.payload.size() <= kMaxServePayloadBytes,
                "serve message payload exceeds wire bound");
    out.reserve(out.size() + m.wireSize());
    out.push_back(uint8_t(m.type));
    uint32_t len = uint32_t(m.payload.size());
    out.push_back(uint8_t(len));
    out.push_back(uint8_t(len >> 8));
    out.push_back(uint8_t(len >> 16));
    out.push_back(uint8_t(len >> 24));
    out.insert(out.end(), m.payload.begin(), m.payload.end());
}

FrameStatus
tryDecodeMessage(const uint8_t *data, size_t size, size_t &consumed,
                 Message &out, std::string *error)
{
    consumed = 0;
    if (size < Message::kHeaderBytes)
        return FrameStatus::NeedMore;

    // Validate the header before touching (or allocating for) the
    // payload — same rule as the bridge framing.
    uint8_t raw_type = data[0];
    if (!isValidMsgType(raw_type)) {
        if (error)
            *error = detail::concat("unknown serve message type 0x",
                                    std::hex, unsigned(raw_type));
        return FrameStatus::Malformed;
    }
    uint32_t len = uint32_t(data[1]) | uint32_t(data[2]) << 8 |
                   uint32_t(data[3]) << 16 | uint32_t(data[4]) << 24;
    if (len > kMaxServePayloadBytes) {
        if (error)
            *error = detail::concat("serve payload length ", len,
                                    " exceeds bound ",
                                    kMaxServePayloadBytes);
        return FrameStatus::Malformed;
    }
    if (size < Message::kHeaderBytes + size_t(len))
        return FrameStatus::NeedMore;

    out.type = MsgType(raw_type);
    out.payload.assign(data + Message::kHeaderBytes,
                       data + Message::kHeaderBytes + len);
    consumed = Message::kHeaderBytes + len;
    return FrameStatus::Ok;
}

void
MessageBuffer::append(const uint8_t *data, size_t n)
{
    buf_.insert(buf_.end(), data, data + n);
}

FrameStatus
MessageBuffer::next(Message &out, std::string *error)
{
    if (poisoned_) {
        if (error)
            *error = poisonError_;
        return FrameStatus::Malformed;
    }
    size_t consumed = 0;
    std::string err;
    FrameStatus st =
        tryDecodeMessage(buf_.data() + pos_, buf_.size() - pos_,
                         consumed, out, &err);
    switch (st) {
      case FrameStatus::Ok:
        pos_ += consumed;
        // Amortized compaction: only shift remaining bytes down once
        // the dead prefix dominates, keeping the drain loop O(bytes).
        if (pos_ > 4096 && pos_ >= buf_.size() / 2) {
            buf_.erase(buf_.begin(),
                       buf_.begin() + std::ptrdiff_t(pos_));
            pos_ = 0;
        }
        if (buf_.size() == pos_) {
            buf_.clear();
            pos_ = 0;
        }
        return FrameStatus::Ok;
      case FrameStatus::NeedMore:
        return FrameStatus::NeedMore;
      case FrameStatus::Malformed:
        poisoned_ = true;
        poisonError_ = err;
        if (error)
            *error = err;
        return FrameStatus::Malformed;
    }
    return FrameStatus::Malformed;
}

void
MessageBuffer::clear()
{
    buf_.clear();
    pos_ = 0;
    poisoned_ = false;
    poisonError_.clear();
}

// ------------------------------------------------------------- helpers

namespace {

/** Hard bound on identifier-like strings in specs/replies. */
constexpr size_t kMaxStringBytes = 4096;

void
writeString(ByteWriter &w, const std::string &s, size_t bound)
{
    rose_assert(s.size() <= bound, "serve string exceeds wire bound");
    w.u32(uint32_t(s.size()));
    w.bytes(reinterpret_cast<const uint8_t *>(s.data()), s.size());
}

std::string
readString(ByteReader &r, size_t bound)
{
    uint32_t n = r.u32();
    if (n > bound)
        throw ProtocolError(detail::concat(
            "string field length ", n, " exceeds bound ", bound));
    if (n > r.remaining())
        throw ProtocolError("string field truncated");
    std::string s(n, '\0');
    r.bytes(reinterpret_cast<uint8_t *>(s.data()), n);
    return s;
}

void
requireType(const Message &m, MsgType want)
{
    if (m.type != want)
        throw ProtocolError(detail::concat(
            "expected ", msgTypeName(want), ", got ",
            msgTypeName(m.type)));
}

Message
makeJobIdMessage(MsgType t, uint64_t job_id)
{
    Message m;
    m.type = t;
    ByteWriter w(m.payload);
    w.u64(job_id);
    return m;
}

uint64_t
readJobIdMessage(const Message &m, MsgType want)
{
    requireType(m, want);
    ByteReader r(m.payload);
    return r.u64();
}

} // namespace

// ------------------------------------------------------------ requests

// Spec codec version: bump when MissionSpec grows wire fields.
static constexpr uint8_t kSpecCodecVersion = 1;

Message
encodeSubmitMission(const core::MissionSpec &spec)
{
    Message m;
    m.type = MsgType::SubmitMission;
    ByteWriter w(m.payload);
    w.u8(kSpecCodecVersion);
    writeString(w, spec.world, kMaxStringBytes);
    writeString(w, spec.vehicle, kMaxStringBytes);
    writeString(w, spec.socName, kMaxStringBytes);
    w.u32(uint32_t(spec.modelDepth));
    w.f64(spec.velocity);
    w.f64(spec.initialYawDeg);
    w.u64(spec.syncGranularity);
    w.u8(uint8_t(spec.mode));
    w.u64(spec.seed);
    w.f64(spec.maxSimSeconds);
    w.u8(spec.degradedMode ? 1 : 0);
    const bridge::FaultConfig &f = spec.faults;
    w.u8(f.enabled ? 1 : 0);
    w.f64(f.dropProb);
    w.f64(f.corruptProb);
    w.f64(f.reorderProb);
    w.f64(f.delayProb);
    w.u64(f.delayOpsMin);
    w.u64(f.delayOpsMax);
    w.u8(f.protectSyncPackets ? 1 : 0);
    w.u64(f.seed);
    return m;
}

core::MissionSpec
decodeSubmitMission(const Message &m)
{
    requireType(m, MsgType::SubmitMission);
    ByteReader r(m.payload);
    uint8_t version = r.u8();
    if (version != kSpecCodecVersion)
        throw ProtocolError(detail::concat(
            "unsupported mission-spec codec version ",
            unsigned(version)));
    core::MissionSpec spec;
    spec.world = readString(r, kMaxStringBytes);
    spec.vehicle = readString(r, kMaxStringBytes);
    spec.socName = readString(r, kMaxStringBytes);
    spec.modelDepth = int(r.u32());
    spec.velocity = r.f64();
    spec.initialYawDeg = r.f64();
    spec.syncGranularity = r.u64();
    uint8_t mode = r.u8();
    if (mode > uint8_t(runtime::RuntimeMode::Dynamic))
        throw ProtocolError(detail::concat(
            "invalid runtime mode byte ", unsigned(mode)));
    spec.mode = runtime::RuntimeMode(mode);
    spec.seed = r.u64();
    spec.maxSimSeconds = r.f64();
    spec.degradedMode = r.u8() != 0;
    bridge::FaultConfig &f = spec.faults;
    f.enabled = r.u8() != 0;
    f.dropProb = r.f64();
    f.corruptProb = r.f64();
    f.reorderProb = r.f64();
    f.delayProb = r.f64();
    f.delayOpsMin = r.u64();
    f.delayOpsMax = r.u64();
    f.protectSyncPackets = r.u8() != 0;
    f.seed = r.u64();
    return spec;
}

Message
encodeQueryStatus(uint64_t job_id)
{
    return makeJobIdMessage(MsgType::QueryStatus, job_id);
}

uint64_t
decodeQueryStatus(const Message &m)
{
    return readJobIdMessage(m, MsgType::QueryStatus);
}

Message
encodeFetchResult(uint64_t job_id)
{
    return makeJobIdMessage(MsgType::FetchResult, job_id);
}

uint64_t
decodeFetchResult(const Message &m)
{
    return readJobIdMessage(m, MsgType::FetchResult);
}

Message
encodeCancelMission(uint64_t job_id)
{
    return makeJobIdMessage(MsgType::CancelMission, job_id);
}

uint64_t
decodeCancelMission(const Message &m)
{
    return readJobIdMessage(m, MsgType::CancelMission);
}

Message
encodeServerStats()
{
    Message m;
    m.type = MsgType::ServerStats;
    return m;
}

Message
encodeShutdown(bool drain)
{
    Message m;
    m.type = MsgType::Shutdown;
    ByteWriter w(m.payload);
    w.u8(drain ? 1 : 0);
    return m;
}

bool
decodeShutdown(const Message &m)
{
    requireType(m, MsgType::Shutdown);
    ByteReader r(m.payload);
    return r.u8() != 0;
}

// ----------------------------------------------------------- responses

Message
encodeSubmitOk(const SubmitOkReply &reply)
{
    Message m;
    m.type = MsgType::SubmitOk;
    ByteWriter w(m.payload);
    w.u64(reply.jobId);
    w.u32(reply.queuePosition);
    return m;
}

SubmitOkReply
decodeSubmitOk(const Message &m)
{
    requireType(m, MsgType::SubmitOk);
    ByteReader r(m.payload);
    SubmitOkReply reply;
    reply.jobId = r.u64();
    reply.queuePosition = r.u32();
    return reply;
}

Message
encodeRejected(const RejectedReply &reply)
{
    Message m;
    m.type = MsgType::SubmitRejected;
    ByteWriter w(m.payload);
    w.u8(uint8_t(reply.reason));
    writeString(w, reply.detail, kMaxStringBytes);
    return m;
}

RejectedReply
decodeRejected(const Message &m)
{
    requireType(m, MsgType::SubmitRejected);
    ByteReader r(m.payload);
    RejectedReply reply;
    uint8_t reason = r.u8();
    if (reason < uint8_t(RejectReason::QueueFull) ||
        reason > uint8_t(RejectReason::BadRequest))
        throw ProtocolError(detail::concat(
            "invalid reject reason byte ", unsigned(reason)));
    reply.reason = RejectReason(reason);
    reply.detail = readString(r, kMaxStringBytes);
    return reply;
}

Message
encodeStatusReply(const StatusInfo &s)
{
    Message m;
    m.type = MsgType::StatusReply;
    ByteWriter w(m.payload);
    w.u64(s.jobId);
    w.u8(uint8_t(s.state));
    w.u32(s.queuePosition);
    w.f64(s.queueWaitMs);
    w.f64(s.serviceMs);
    return m;
}

StatusInfo
decodeStatusReply(const Message &m)
{
    requireType(m, MsgType::StatusReply);
    ByteReader r(m.payload);
    StatusInfo s;
    s.jobId = r.u64();
    uint8_t state = r.u8();
    if (state < uint8_t(JobState::Queued) ||
        state > uint8_t(JobState::Unknown))
        throw ProtocolError(detail::concat(
            "invalid job state byte ", unsigned(state)));
    s.state = JobState(state);
    s.queuePosition = r.u32();
    s.queueWaitMs = r.f64();
    s.serviceMs = r.f64();
    return s;
}

ServedResult
marshalResult(const core::MissionResult &r)
{
    ServedResult s;
    s.completed = r.completed;
    s.status = uint8_t(r.status);
    s.failureReason = r.failureReason;
    s.missionTime = r.missionTime;
    s.collisions = r.collisions;
    s.avgSpeed = r.avgSpeed;
    s.maxSpeed = r.maxSpeed;
    s.distanceTravelled = r.distanceTravelled;
    s.inferences = r.inferences;
    s.avgInferenceLatency = r.avgInferenceLatency;
    s.energyJoules = r.energyJoules;
    s.avgPowerWatts = r.avgPowerWatts;
    s.simulatedCycles = r.simulatedCycles;
    s.trajectorySamples = uint32_t(r.trajectory.size());
    s.degradedIntervals = uint32_t(r.degradedIntervals.size());
    s.trajectoryCsv = core::trajectoryCsvString(r);
    return s;
}

bool
fitResultToWire(ServedResult &r)
{
    if (r.trajectoryCsv.size() <= kMaxTrajectoryCsvBytes)
        return true;
    std::string why = detail::concat(
        "result too large for the wire: trajectory CSV is ",
        r.trajectoryCsv.size(), " bytes, bound is ",
        kMaxTrajectoryCsvBytes,
        " (reduce maxSimSeconds or raise syncGranularity)");
    r.trajectoryCsv.clear();
    if (r.failureReason.empty())
        r.failureReason = why;
    else
        r.failureReason += "; " + why;
    return false;
}

Message
encodeResultReply(const ResultData &d)
{
    Message m;
    m.type = MsgType::ResultReply;
    ByteWriter w(m.payload);
    w.u64(d.jobId);
    w.u8(uint8_t(d.state));
    const ServedResult &s = d.result;
    w.u8(s.completed ? 1 : 0);
    w.u8(s.status);
    writeString(w, s.failureReason, kMaxStringBytes);
    w.f64(s.missionTime);
    w.u64(s.collisions);
    w.f64(s.avgSpeed);
    w.f64(s.maxSpeed);
    w.f64(s.distanceTravelled);
    w.u64(s.inferences);
    w.f64(s.avgInferenceLatency);
    w.f64(s.energyJoules);
    w.f64(s.avgPowerWatts);
    w.u64(s.simulatedCycles);
    w.u32(s.trajectorySamples);
    w.u32(s.degradedIntervals);
    writeString(w, s.trajectoryCsv, kMaxTrajectoryCsvBytes);
    w.f64(s.queueWaitMs);
    w.f64(s.serviceMs);
    return m;
}

ResultData
decodeResultReply(const Message &m)
{
    requireType(m, MsgType::ResultReply);
    ByteReader r(m.payload);
    ResultData d;
    d.jobId = r.u64();
    uint8_t state = r.u8();
    if (state != uint8_t(JobState::Done) &&
        state != uint8_t(JobState::Failed))
        throw ProtocolError(detail::concat(
            "non-terminal job state byte ", unsigned(state),
            " in ResultReply"));
    d.state = JobState(state);
    ServedResult &s = d.result;
    s.completed = r.u8() != 0;
    s.status = r.u8();
    s.failureReason = readString(r, kMaxStringBytes);
    s.missionTime = r.f64();
    s.collisions = r.u64();
    s.avgSpeed = r.f64();
    s.maxSpeed = r.f64();
    s.distanceTravelled = r.f64();
    s.inferences = r.u64();
    s.avgInferenceLatency = r.f64();
    s.energyJoules = r.f64();
    s.avgPowerWatts = r.f64();
    s.simulatedCycles = r.u64();
    s.trajectorySamples = r.u32();
    s.degradedIntervals = r.u32();
    s.trajectoryCsv = readString(r, kMaxTrajectoryCsvBytes);
    s.queueWaitMs = r.f64();
    s.serviceMs = r.f64();
    return d;
}

Message
encodeCancelReply(const CancelInfo &c)
{
    Message m;
    m.type = MsgType::CancelReply;
    ByteWriter w(m.payload);
    w.u64(c.jobId);
    w.u8(uint8_t(c.outcome));
    return m;
}

CancelInfo
decodeCancelReply(const Message &m)
{
    requireType(m, MsgType::CancelReply);
    ByteReader r(m.payload);
    CancelInfo c;
    c.jobId = r.u64();
    uint8_t outcome = r.u8();
    if (outcome < uint8_t(CancelOutcome::Dequeued) ||
        outcome > uint8_t(CancelOutcome::UnknownJob))
        throw ProtocolError(detail::concat(
            "invalid cancel outcome byte ", unsigned(outcome)));
    c.outcome = CancelOutcome(outcome);
    return c;
}

Message
encodeStatsReply(const ServerStatsData &s)
{
    Message m;
    m.type = MsgType::StatsReply;
    ByteWriter w(m.payload);
    w.u64(s.submitted);
    w.u64(s.accepted);
    w.u64(s.completed);
    w.u64(s.failed);
    w.u64(s.cancelled);
    w.u64(s.rejectedQueueFull);
    w.u64(s.rejectedClientCap);
    w.u64(s.rejectedShutdown);
    w.u64(s.malformed);
    w.u32(s.queued);
    w.u32(s.running);
    w.u32(s.workers);
    w.u32(s.queueCapacity);
    w.u64(s.connectionsAccepted);
    w.u32(s.connectionsOpen);
    w.f64(s.totalQueueWaitMs);
    w.f64(s.maxQueueWaitMs);
    w.f64(s.totalServiceMs);
    w.f64(s.maxServiceMs);
    return m;
}

ServerStatsData
decodeStatsReply(const Message &m)
{
    requireType(m, MsgType::StatsReply);
    ByteReader r(m.payload);
    ServerStatsData s;
    s.submitted = r.u64();
    s.accepted = r.u64();
    s.completed = r.u64();
    s.failed = r.u64();
    s.cancelled = r.u64();
    s.rejectedQueueFull = r.u64();
    s.rejectedClientCap = r.u64();
    s.rejectedShutdown = r.u64();
    s.malformed = r.u64();
    s.queued = r.u32();
    s.running = r.u32();
    s.workers = r.u32();
    s.queueCapacity = r.u32();
    s.connectionsAccepted = r.u64();
    s.connectionsOpen = r.u32();
    s.totalQueueWaitMs = r.f64();
    s.maxQueueWaitMs = r.f64();
    s.totalServiceMs = r.f64();
    s.maxServiceMs = r.f64();
    return s;
}

Message
encodeShutdownReply()
{
    Message m;
    m.type = MsgType::ShutdownReply;
    return m;
}

Message
encodeErrorReply(const std::string &what)
{
    Message m;
    m.type = MsgType::ErrorReply;
    ByteWriter w(m.payload);
    writeString(w, what.size() > kMaxStringBytes
                       ? what.substr(0, kMaxStringBytes)
                       : what,
                kMaxStringBytes);
    return m;
}

std::string
decodeErrorReply(const Message &m)
{
    requireType(m, MsgType::ErrorReply);
    ByteReader r(m.payload);
    return readString(r, kMaxStringBytes);
}

} // namespace rose::serve
