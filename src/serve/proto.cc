#include "proto.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/hash.hh"
#include "util/logging.hh"

namespace rose::serve {

using bridge::ByteReader;
using bridge::ByteWriter;

bool
isValidMsgType(uint8_t raw)
{
    switch (MsgType(raw)) {
      case MsgType::SubmitMission:
      case MsgType::QueryStatus:
      case MsgType::FetchResult:
      case MsgType::CancelMission:
      case MsgType::ServerStats:
      case MsgType::Shutdown:
      case MsgType::AckResult:
      case MsgType::SubmitOk:
      case MsgType::SubmitRejected:
      case MsgType::StatusReply:
      case MsgType::CancelReply:
      case MsgType::StatsReply:
      case MsgType::ShutdownReply:
      case MsgType::ResultChunk:
      case MsgType::ResultEnd:
      case MsgType::Progress:
      case MsgType::AckReply:
      case MsgType::ErrorReply:
        return true;
    }
    return false;
}

bool
isRequest(MsgType t)
{
    return (uint8_t(t) & 0x80) == 0;
}

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::SubmitMission: return "SubmitMission";
      case MsgType::QueryStatus: return "QueryStatus";
      case MsgType::FetchResult: return "FetchResult";
      case MsgType::CancelMission: return "CancelMission";
      case MsgType::ServerStats: return "ServerStats";
      case MsgType::Shutdown: return "Shutdown";
      case MsgType::AckResult: return "AckResult";
      case MsgType::SubmitOk: return "SubmitOk";
      case MsgType::SubmitRejected: return "SubmitRejected";
      case MsgType::StatusReply: return "StatusReply";
      case MsgType::CancelReply: return "CancelReply";
      case MsgType::StatsReply: return "StatsReply";
      case MsgType::ShutdownReply: return "ShutdownReply";
      case MsgType::ResultChunk: return "ResultChunk";
      case MsgType::ResultEnd: return "ResultEnd";
      case MsgType::Progress: return "Progress";
      case MsgType::AckReply: return "AckReply";
      case MsgType::ErrorReply: return "ErrorReply";
    }
    return "unknown";
}

const char *
rejectReasonName(RejectReason r)
{
    switch (r) {
      case RejectReason::QueueFull: return "queue_full";
      case RejectReason::ClientCap: return "client_cap";
      case RejectReason::ShuttingDown: return "shutting_down";
      case RejectReason::BadRequest: return "bad_request";
    }
    return "unknown";
}

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Done: return "done";
      case JobState::Failed: return "failed";
      case JobState::Cancelled: return "cancelled";
      case JobState::Unknown: return "unknown";
    }
    return "unknown";
}

const char *
trajectoryEncodingName(TrajectoryEncoding e)
{
    switch (e) {
      case TrajectoryEncoding::Csv: return "csv";
      case TrajectoryEncoding::Binary: return "binary";
    }
    return "unknown";
}

const char *
ackOutcomeName(AckOutcome o)
{
    switch (o) {
      case AckOutcome::Released: return "released";
      case AckOutcome::UnknownJob: return "unknown_job";
      case AckOutcome::HashMismatch: return "hash_mismatch";
    }
    return "unknown";
}

// ------------------------------------------------------------- framing

void
serializeMessage(const Message &m, std::vector<uint8_t> &out)
{
    rose_assert(m.payload.size() <= kMaxServePayloadBytes,
                "serve message payload exceeds wire bound");
    out.reserve(out.size() + m.wireSize());
    out.push_back(uint8_t(m.type));
    uint32_t len = uint32_t(m.payload.size());
    out.push_back(uint8_t(len));
    out.push_back(uint8_t(len >> 8));
    out.push_back(uint8_t(len >> 16));
    out.push_back(uint8_t(len >> 24));
    out.insert(out.end(), m.payload.begin(), m.payload.end());
}

FrameStatus
tryDecodeMessage(const uint8_t *data, size_t size, size_t &consumed,
                 Message &out, std::string *error)
{
    consumed = 0;
    if (size < Message::kHeaderBytes)
        return FrameStatus::NeedMore;

    // Validate the header before touching (or allocating for) the
    // payload — same rule as the bridge framing.
    uint8_t raw_type = data[0];
    if (!isValidMsgType(raw_type)) {
        if (error)
            *error = detail::concat("unknown serve message type 0x",
                                    std::hex, unsigned(raw_type));
        return FrameStatus::Malformed;
    }
    uint32_t len = uint32_t(data[1]) | uint32_t(data[2]) << 8 |
                   uint32_t(data[3]) << 16 | uint32_t(data[4]) << 24;
    if (len > kMaxServePayloadBytes) {
        if (error)
            *error = detail::concat("serve payload length ", len,
                                    " exceeds bound ",
                                    kMaxServePayloadBytes);
        return FrameStatus::Malformed;
    }
    if (size < Message::kHeaderBytes + size_t(len))
        return FrameStatus::NeedMore;

    out.type = MsgType(raw_type);
    out.payload.assign(data + Message::kHeaderBytes,
                       data + Message::kHeaderBytes + len);
    consumed = Message::kHeaderBytes + len;
    return FrameStatus::Ok;
}

void
MessageBuffer::append(const uint8_t *data, size_t n)
{
    buf_.insert(buf_.end(), data, data + n);
}

FrameStatus
MessageBuffer::next(Message &out, std::string *error)
{
    if (poisoned_) {
        if (error)
            *error = poisonError_;
        return FrameStatus::Malformed;
    }
    size_t consumed = 0;
    std::string err;
    FrameStatus st =
        tryDecodeMessage(buf_.data() + pos_, buf_.size() - pos_,
                         consumed, out, &err);
    switch (st) {
      case FrameStatus::Ok:
        pos_ += consumed;
        // Amortized compaction: only shift remaining bytes down once
        // the dead prefix dominates, keeping the drain loop O(bytes).
        if (pos_ > 4096 && pos_ >= buf_.size() / 2) {
            buf_.erase(buf_.begin(),
                       buf_.begin() + std::ptrdiff_t(pos_));
            pos_ = 0;
        }
        if (buf_.size() == pos_) {
            buf_.clear();
            pos_ = 0;
        }
        return FrameStatus::Ok;
      case FrameStatus::NeedMore:
        return FrameStatus::NeedMore;
      case FrameStatus::Malformed:
        poisoned_ = true;
        poisonError_ = err;
        if (error)
            *error = err;
        return FrameStatus::Malformed;
    }
    return FrameStatus::Malformed;
}

void
MessageBuffer::clear()
{
    buf_.clear();
    pos_ = 0;
    poisoned_ = false;
    poisonError_.clear();
}

// ------------------------------------------------------------- helpers

namespace {

/** Hard bound on identifier-like strings in specs/replies. */
constexpr size_t kMaxStringBytes = 4096;

void
writeString(ByteWriter &w, const std::string &s, size_t bound)
{
    rose_assert(s.size() <= bound, "serve string exceeds wire bound");
    w.u32(uint32_t(s.size()));
    w.bytes(reinterpret_cast<const uint8_t *>(s.data()), s.size());
}

std::string
readString(ByteReader &r, size_t bound)
{
    uint32_t n = r.u32();
    if (n > bound)
        throw ProtocolError(detail::concat(
            "string field length ", n, " exceeds bound ", bound));
    if (n > r.remaining())
        throw ProtocolError("string field truncated");
    std::string s(n, '\0');
    r.bytes(reinterpret_cast<uint8_t *>(s.data()), n);
    return s;
}

void
requireType(const Message &m, MsgType want)
{
    if (m.type != want)
        throw ProtocolError(detail::concat(
            "expected ", msgTypeName(want), ", got ",
            msgTypeName(m.type)));
}

Message
makeJobIdMessage(MsgType t, uint64_t job_id)
{
    Message m;
    m.type = t;
    ByteWriter w(m.payload);
    w.u64(job_id);
    return m;
}

uint64_t
readJobIdMessage(const Message &m, MsgType want)
{
    requireType(m, want);
    ByteReader r(m.payload);
    return r.u64();
}

JobState
readTerminalState(ByteReader &r, const char *where)
{
    uint8_t state = r.u8();
    if (state != uint8_t(JobState::Done) &&
        state != uint8_t(JobState::Failed))
        throw ProtocolError(detail::concat(
            "non-terminal job state byte ", unsigned(state), " in ",
            where));
    return JobState(state);
}

TrajectoryEncoding
readEncoding(ByteReader &r, const char *where)
{
    uint8_t enc = r.u8();
    if (enc != uint8_t(TrajectoryEncoding::Csv) &&
        enc != uint8_t(TrajectoryEncoding::Binary))
        throw ProtocolError(detail::concat(
            "invalid trajectory encoding byte ", unsigned(enc),
            " in ", where));
    return TrajectoryEncoding(enc);
}

void
writeF32(ByteWriter &w, float f)
{
    uint32_t bits = 0;
    std::memcpy(&bits, &f, sizeof(bits));
    w.u32(bits);
}

} // namespace

// ------------------------------------------------ binary trajectory

float
canonicalTrajectoryF32(double v)
{
    // %.6g is exactly the default-formatted ostream insertion
    // CsvWriter uses for its cells; re-reading that decimal and
    // narrowing lands within 2^-24 relative of the printed value,
    // which is why printing the f32 at precision 6 reproduces the
    // original cell (tests pin this printf/ostream equivalence).
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return float(std::strtod(buf, nullptr));
}

void
encodeTrajectoryBinaryRecords(const core::TrajectorySample *samples,
                              size_t count, std::vector<uint8_t> &out)
{
    out.reserve(out.size() + count * kTrajectoryBinaryRecordBytes);
    ByteWriter w(out);
    for (size_t i = 0; i < count; ++i) {
        const core::TrajectorySample &s = samples[i];
        if (s.collisions > UINT32_MAX)
            throw ProtocolError(detail::concat(
                "collision count ", s.collisions,
                " exceeds the u32 binary-record field"));
        writeF32(w, canonicalTrajectoryF32(s.time));
        writeF32(w, canonicalTrajectoryF32(s.position.x));
        writeF32(w, canonicalTrajectoryF32(s.position.y));
        writeF32(w, canonicalTrajectoryF32(s.position.z));
        writeF32(w, canonicalTrajectoryF32(s.yaw));
        writeF32(w, canonicalTrajectoryF32(s.speed));
        writeF32(w, canonicalTrajectoryF32(s.lateralOffset));
        w.u32(uint32_t(s.collisions));
        writeF32(w, canonicalTrajectoryF32(s.cmdForward));
        writeF32(w, canonicalTrajectoryF32(s.cmdLateral));
        writeF32(w, canonicalTrajectoryF32(s.cmdYawRate));
    }
}

std::vector<uint8_t>
encodeTrajectoryBinary(const std::vector<core::TrajectorySample> &t)
{
    std::vector<uint8_t> out;
    encodeTrajectoryBinaryRecords(t.data(), t.size(), out);
    return out;
}

std::vector<core::TrajectorySample>
decodeTrajectoryBinary(const uint8_t *data, size_t size)
{
    if (size % kTrajectoryBinaryRecordBytes != 0)
        throw ProtocolError(detail::concat(
            "binary trajectory payload of ", size,
            " bytes is not a whole number of ",
            kTrajectoryBinaryRecordBytes, "-byte records"));
    std::vector<core::TrajectorySample> t;
    t.resize(size / kTrajectoryBinaryRecordBytes);
    const uint8_t *p = data;
    auto rd_u32 = [&p]() {
        uint32_t v = uint32_t(p[0]) | uint32_t(p[1]) << 8 |
                     uint32_t(p[2]) << 16 | uint32_t(p[3]) << 24;
        p += 4;
        return v;
    };
    auto rd_f32 = [&rd_u32]() {
        uint32_t bits = rd_u32();
        float f = 0.0f;
        std::memcpy(&f, &bits, sizeof(f));
        return double(f);
    };
    for (core::TrajectorySample &s : t) {
        s.time = rd_f32();
        s.position.x = rd_f32();
        s.position.y = rd_f32();
        s.position.z = rd_f32();
        s.yaw = rd_f32();
        s.speed = rd_f32();
        s.lateralOffset = rd_f32();
        s.collisions = rd_u32();
        s.cmdForward = rd_f32();
        s.cmdLateral = rd_f32();
        s.cmdYawRate = rd_f32();
    }
    return t;
}

// ------------------------------------------------------------ requests

Message
encodeSubmitMission(const core::MissionSpec &spec,
                    const std::string &idempotency_key)
{
    Message m;
    m.type = MsgType::SubmitMission;
    ByteWriter w(m.payload);
    w.u8(kSpecCodecVersion);
    writeString(w, idempotency_key, kMaxIdempotencyKeyBytes);
    writeString(w, spec.world, kMaxStringBytes);
    writeString(w, spec.vehicle, kMaxStringBytes);
    writeString(w, spec.socName, kMaxStringBytes);
    w.u32(uint32_t(spec.modelDepth));
    w.f64(spec.velocity);
    w.f64(spec.initialYawDeg);
    w.u64(spec.syncGranularity);
    w.u8(uint8_t(spec.mode));
    w.u64(spec.seed);
    w.f64(spec.maxSimSeconds);
    w.u8(spec.degradedMode ? 1 : 0);
    const bridge::FaultConfig &f = spec.faults;
    w.u8(f.enabled ? 1 : 0);
    w.f64(f.dropProb);
    w.f64(f.corruptProb);
    w.f64(f.reorderProb);
    w.f64(f.delayProb);
    w.u64(f.delayOpsMin);
    w.u64(f.delayOpsMax);
    w.u8(f.protectSyncPackets ? 1 : 0);
    w.u64(f.seed);
    return m;
}

SubmitRequest
decodeSubmitRequest(const Message &m)
{
    requireType(m, MsgType::SubmitMission);
    ByteReader r(m.payload);
    uint8_t version = r.u8();
    // Version 1 predates the idempotency key; still accepted (the
    // journal replays v1-era records through this same decoder).
    if (version < 1 || version > kSpecCodecVersion)
        throw ProtocolError(detail::concat(
            "unsupported mission-spec codec version ",
            unsigned(version)));
    SubmitRequest req;
    if (version >= 2)
        req.idempotencyKey = readString(r, kMaxIdempotencyKeyBytes);
    core::MissionSpec &spec = req.spec;
    spec.world = readString(r, kMaxStringBytes);
    spec.vehicle = readString(r, kMaxStringBytes);
    spec.socName = readString(r, kMaxStringBytes);
    spec.modelDepth = int(r.u32());
    spec.velocity = r.f64();
    spec.initialYawDeg = r.f64();
    spec.syncGranularity = r.u64();
    uint8_t mode = r.u8();
    if (mode > uint8_t(runtime::RuntimeMode::Dynamic))
        throw ProtocolError(detail::concat(
            "invalid runtime mode byte ", unsigned(mode)));
    spec.mode = runtime::RuntimeMode(mode);
    spec.seed = r.u64();
    spec.maxSimSeconds = r.f64();
    spec.degradedMode = r.u8() != 0;
    bridge::FaultConfig &f = spec.faults;
    f.enabled = r.u8() != 0;
    f.dropProb = r.f64();
    f.corruptProb = r.f64();
    f.reorderProb = r.f64();
    f.delayProb = r.f64();
    f.delayOpsMin = r.u64();
    f.delayOpsMax = r.u64();
    f.protectSyncPackets = r.u8() != 0;
    f.seed = r.u64();
    return req;
}

core::MissionSpec
decodeSubmitMission(const Message &m)
{
    return decodeSubmitRequest(m).spec;
}

Message
encodeQueryStatus(uint64_t job_id)
{
    return makeJobIdMessage(MsgType::QueryStatus, job_id);
}

uint64_t
decodeQueryStatus(const Message &m)
{
    return readJobIdMessage(m, MsgType::QueryStatus);
}

Message
encodeFetchResult(uint64_t job_id, TrajectoryEncoding enc,
                  uint64_t resume_offset)
{
    Message m;
    m.type = MsgType::FetchResult;
    ByteWriter w(m.payload);
    w.u64(job_id);
    w.u8(uint8_t(enc));
    w.u64(resume_offset);
    return m;
}

FetchRequest
decodeFetchResult(const Message &m)
{
    requireType(m, MsgType::FetchResult);
    ByteReader r(m.payload);
    FetchRequest req;
    req.jobId = r.u64();
    req.encoding = readEncoding(r, "FetchResult");
    req.resumeOffset = r.u64();
    return req;
}

Message
encodeAckResult(uint64_t job_id, uint64_t trajectory_hash)
{
    Message m;
    m.type = MsgType::AckResult;
    ByteWriter w(m.payload);
    w.u64(job_id);
    w.u64(trajectory_hash);
    return m;
}

AckRequest
decodeAckResult(const Message &m)
{
    requireType(m, MsgType::AckResult);
    ByteReader r(m.payload);
    AckRequest a;
    a.jobId = r.u64();
    a.trajectoryHash = r.u64();
    return a;
}

Message
encodeCancelMission(uint64_t job_id)
{
    return makeJobIdMessage(MsgType::CancelMission, job_id);
}

uint64_t
decodeCancelMission(const Message &m)
{
    return readJobIdMessage(m, MsgType::CancelMission);
}

Message
encodeServerStats()
{
    Message m;
    m.type = MsgType::ServerStats;
    return m;
}

Message
encodeShutdown(bool drain)
{
    Message m;
    m.type = MsgType::Shutdown;
    ByteWriter w(m.payload);
    w.u8(drain ? 1 : 0);
    return m;
}

bool
decodeShutdown(const Message &m)
{
    requireType(m, MsgType::Shutdown);
    ByteReader r(m.payload);
    return r.u8() != 0;
}

// ----------------------------------------------------------- responses

Message
encodeSubmitOk(const SubmitOkReply &reply)
{
    Message m;
    m.type = MsgType::SubmitOk;
    ByteWriter w(m.payload);
    w.u64(reply.jobId);
    w.u32(reply.queuePosition);
    return m;
}

SubmitOkReply
decodeSubmitOk(const Message &m)
{
    requireType(m, MsgType::SubmitOk);
    ByteReader r(m.payload);
    SubmitOkReply reply;
    reply.jobId = r.u64();
    reply.queuePosition = r.u32();
    return reply;
}

Message
encodeRejected(const RejectedReply &reply)
{
    Message m;
    m.type = MsgType::SubmitRejected;
    ByteWriter w(m.payload);
    w.u8(uint8_t(reply.reason));
    writeString(w, reply.detail, kMaxStringBytes);
    return m;
}

RejectedReply
decodeRejected(const Message &m)
{
    requireType(m, MsgType::SubmitRejected);
    ByteReader r(m.payload);
    RejectedReply reply;
    uint8_t reason = r.u8();
    if (reason < uint8_t(RejectReason::QueueFull) ||
        reason > uint8_t(RejectReason::BadRequest))
        throw ProtocolError(detail::concat(
            "invalid reject reason byte ", unsigned(reason)));
    reply.reason = RejectReason(reason);
    reply.detail = readString(r, kMaxStringBytes);
    return reply;
}

Message
encodeStatusReply(const StatusInfo &s)
{
    Message m;
    m.type = MsgType::StatusReply;
    ByteWriter w(m.payload);
    w.u64(s.jobId);
    w.u8(uint8_t(s.state));
    w.u32(s.queuePosition);
    w.f64(s.queueWaitMs);
    w.f64(s.serviceMs);
    return m;
}

StatusInfo
decodeStatusReply(const Message &m)
{
    requireType(m, MsgType::StatusReply);
    ByteReader r(m.payload);
    StatusInfo s;
    s.jobId = r.u64();
    uint8_t state = r.u8();
    if (state < uint8_t(JobState::Queued) ||
        state > uint8_t(JobState::Unknown))
        throw ProtocolError(detail::concat(
            "invalid job state byte ", unsigned(state)));
    s.state = JobState(state);
    s.queuePosition = r.u32();
    s.queueWaitMs = r.f64();
    s.serviceMs = r.f64();
    return s;
}

ServedResult
marshalResult(const core::MissionResult &r)
{
    ServedResult s;
    s.completed = r.completed;
    s.status = uint8_t(r.status);
    s.failureReason = r.failureReason;
    s.missionTime = r.missionTime;
    s.collisions = r.collisions;
    s.avgSpeed = r.avgSpeed;
    s.maxSpeed = r.maxSpeed;
    s.distanceTravelled = r.distanceTravelled;
    s.inferences = r.inferences;
    s.avgInferenceLatency = r.avgInferenceLatency;
    s.energyJoules = r.energyJoules;
    s.avgPowerWatts = r.avgPowerWatts;
    s.simulatedCycles = r.simulatedCycles;
    s.trajectorySamples = uint32_t(r.trajectory.size());
    s.degradedIntervals = uint32_t(r.degradedIntervals.size());
    s.trajectoryCsv = core::trajectoryCsvString(r);
    s.trajectoryHash = fnv1a(s.trajectoryCsv);
    // Quantize the binary payload once, here, instead of once per
    // Binary fetch; a trajectory the record cannot represent (u32
    // collision overflow) simply leaves the cache empty and fetches
    // fall back to CSV.
    try {
        s.trajectoryBinary = encodeTrajectoryBinary(r.trajectory);
        s.trajectoryBinaryHash =
            fnv1a(s.trajectoryBinary.data(), s.trajectoryBinary.size());
    } catch (const ProtocolError &) {
        s.trajectoryBinary.clear();
        s.trajectoryBinaryHash = 0;
    }
    return s;
}

Message
encodeResultChunk(const ResultChunkData &c)
{
    rose_assert(c.bytes.size() <= kMaxResultChunkBytes,
                "result chunk exceeds the chunk bound");
    Message m;
    m.type = MsgType::ResultChunk;
    ByteWriter w(m.payload);
    w.u64(c.jobId);
    w.u32(c.seq);
    w.u32(uint32_t(c.bytes.size()));
    w.bytes(c.bytes.data(), c.bytes.size());
    return m;
}

ResultChunkData
decodeResultChunk(const Message &m)
{
    requireType(m, MsgType::ResultChunk);
    ByteReader r(m.payload);
    ResultChunkData c;
    c.jobId = r.u64();
    c.seq = r.u32();
    uint32_t n = r.u32();
    if (n > kMaxResultChunkBytes)
        throw ProtocolError(detail::concat(
            "result chunk length ", n, " exceeds bound ",
            kMaxResultChunkBytes));
    if (n > r.remaining())
        throw ProtocolError("result chunk truncated");
    c.bytes.resize(n);
    r.bytes(c.bytes.data(), n);
    return c;
}

Message
encodeResultEnd(const ResultEndData &e)
{
    Message m;
    m.type = MsgType::ResultEnd;
    ByteWriter w(m.payload);
    w.u64(e.jobId);
    w.u8(uint8_t(e.state));
    w.u8(uint8_t(e.encoding));
    w.u32(e.chunkCount);
    w.u64(e.payloadBytes);
    w.u64(e.trajectoryHash);
    w.u64(e.payloadHash);
    const ServedResult &s = e.result;
    w.u8(s.completed ? 1 : 0);
    w.u8(s.status);
    writeString(w, s.failureReason, kMaxStringBytes);
    w.f64(s.missionTime);
    w.u64(s.collisions);
    w.f64(s.avgSpeed);
    w.f64(s.maxSpeed);
    w.f64(s.distanceTravelled);
    w.u64(s.inferences);
    w.f64(s.avgInferenceLatency);
    w.f64(s.energyJoules);
    w.f64(s.avgPowerWatts);
    w.u64(s.simulatedCycles);
    w.u32(s.trajectorySamples);
    w.u32(s.degradedIntervals);
    w.f64(s.queueWaitMs);
    w.f64(s.serviceMs);
    return m;
}

ResultEndData
decodeResultEnd(const Message &m)
{
    requireType(m, MsgType::ResultEnd);
    ByteReader r(m.payload);
    ResultEndData e;
    e.jobId = r.u64();
    e.state = readTerminalState(r, "ResultEnd");
    e.encoding = readEncoding(r, "ResultEnd");
    e.chunkCount = r.u32();
    e.payloadBytes = r.u64();
    e.trajectoryHash = r.u64();
    e.payloadHash = r.u64();
    ServedResult &s = e.result;
    s.completed = r.u8() != 0;
    s.status = r.u8();
    s.failureReason = readString(r, kMaxStringBytes);
    s.missionTime = r.f64();
    s.collisions = r.u64();
    s.avgSpeed = r.f64();
    s.maxSpeed = r.f64();
    s.distanceTravelled = r.f64();
    s.inferences = r.u64();
    s.avgInferenceLatency = r.f64();
    s.energyJoules = r.f64();
    s.avgPowerWatts = r.f64();
    s.simulatedCycles = r.u64();
    s.trajectorySamples = r.u32();
    s.degradedIntervals = r.u32();
    s.queueWaitMs = r.f64();
    s.serviceMs = r.f64();
    s.trajectoryHash = e.trajectoryHash;
    return e;
}

Message
encodeProgress(const ProgressEvent &p)
{
    Message m;
    m.type = MsgType::Progress;
    ByteWriter w(m.payload);
    w.u64(p.jobId);
    w.f64(p.simTimeSeconds);
    w.f64(p.maxSimSeconds);
    w.u64(p.samples);
    return m;
}

ProgressEvent
decodeProgress(const Message &m)
{
    requireType(m, MsgType::Progress);
    ByteReader r(m.payload);
    ProgressEvent p;
    p.jobId = r.u64();
    p.simTimeSeconds = r.f64();
    p.maxSimSeconds = r.f64();
    p.samples = r.u64();
    return p;
}

// --------------------------------------------------- stream assembly

ResultStreamAssembler::ResultStreamAssembler(uint64_t job_id,
                                             size_t max_payload_bytes)
    : jobId_(job_id), maxPayloadBytes_(max_payload_bytes)
{
}

bool
ResultStreamAssembler::feed(const Message &m)
{
    if (complete_)
        throw ProtocolError(detail::concat(
            msgTypeName(m.type), " frame after ResultEnd closed the "
            "stream for job ", jobId_));
    switch (m.type) {
      case MsgType::ResultChunk: {
        ResultChunkData c = decodeResultChunk(m);
        if (c.jobId != jobId_)
            throw ProtocolError(detail::concat(
                "ResultChunk for job ", c.jobId,
                " inside the stream of job ", jobId_));
        if (c.seq != nextSeq_)
            throw ProtocolError(detail::concat(
                "result stream out of order: expected chunk ",
                nextSeq_, ", got ", c.seq));
        if (c.bytes.size() > maxPayloadBytes_ - payload_.size())
            throw ProtocolError(detail::concat(
                "result stream exceeds the ", maxPayloadBytes_,
                "-byte reassembly bound"));
        payload_.insert(payload_.end(), c.bytes.begin(),
                        c.bytes.end());
        nextSeq_++;
        return false;
      }
      case MsgType::ResultEnd:
        finish(decodeResultEnd(m));
        return true;
      default:
        throw ProtocolError(detail::concat(
            "unexpected ", msgTypeName(m.type),
            " frame inside a result stream"));
    }
}

void
ResultStreamAssembler::finish(const ResultEndData &end)
{
    if (end.jobId != jobId_)
        throw ProtocolError(detail::concat(
            "ResultEnd for job ", end.jobId,
            " inside the stream of job ", jobId_));
    if (end.chunkCount != nextSeq_)
        throw ProtocolError(detail::concat(
            "result stream truncated: ResultEnd declares ",
            end.chunkCount, " chunks, received ", nextSeq_));
    if (end.payloadBytes != payload_.size())
        throw ProtocolError(detail::concat(
            "result stream truncated: ResultEnd declares ",
            end.payloadBytes, " payload bytes, received ",
            payload_.size()));

    // Integrity is checked over the payload bytes as received — no
    // decoding (and for Binary no CSV re-render) sits between the
    // wire and the hash, so a corrupt stream is caught before any
    // decode runs and a Binary fetch verifies at memory speed.
    uint64_t h = fnv1a(payload_.data(), payload_.size());
    if (h != end.payloadHash)
        throw ProtocolError(detail::concat(
            "payload hash mismatch after reassembly of job ",
            jobId_, " (", trajectoryEncodingName(end.encoding),
            " encoding, ", payload_.size(), " payload bytes)"));

    ResultData d;
    d.jobId = end.jobId;
    d.state = end.state;
    d.result = end.result;
    d.payloadHash = h;
    switch (end.encoding) {
      case TrajectoryEncoding::Csv:
        // A Csv payload IS the canonical CSV, so the payload hash
        // must coincide with the canonical-CSV hash the server
        // advertises (and callers compare to goldens).
        if (end.payloadHash != end.trajectoryHash)
            throw ProtocolError(detail::concat(
                "Csv stream payload hash disagrees with the "
                "canonical trajectory hash for job ", jobId_));
        d.result.trajectoryCsv.assign(payload_.begin(),
                                      payload_.end());
        break;
      case TrajectoryEncoding::Binary:
        // The records quantize every cell to its printed decimal, so
        // core::trajectoryCsvString over these samples reproduces
        // the server-side canonical CSV bit-for-bit (test_serve pins
        // this); trajectoryCsv stays empty here — callers render it
        // on demand instead of paying for it inside every fetch.
        d.result.trajectory =
            decodeTrajectoryBinary(payload_.data(), payload_.size());
        break;
    }
    payload_.clear();
    payload_.shrink_to_fit();
    result_ = std::move(d);
    complete_ = true;
}

ResultData
ResultStreamAssembler::takeResult()
{
    rose_assert(complete_,
                "takeResult() before the stream completed");
    return std::move(result_);
}

void
ResultStreamAssembler::rewindForResume()
{
    rose_assert(!complete_,
                "rewindForResume() after the stream completed");
    // The accumulated prefix is kept: a resumed stream restarts its
    // chunk numbering at 0 and ResultEnd's totals still check out —
    // chunkCount counts the resumed stream's chunks and payloadBytes
    // is the whole payload, prefix included.
    nextSeq_ = 0;
}

Message
encodeCancelReply(const CancelInfo &c)
{
    Message m;
    m.type = MsgType::CancelReply;
    ByteWriter w(m.payload);
    w.u64(c.jobId);
    w.u8(uint8_t(c.outcome));
    return m;
}

CancelInfo
decodeCancelReply(const Message &m)
{
    requireType(m, MsgType::CancelReply);
    ByteReader r(m.payload);
    CancelInfo c;
    c.jobId = r.u64();
    uint8_t outcome = r.u8();
    if (outcome < uint8_t(CancelOutcome::Dequeued) ||
        outcome > uint8_t(CancelOutcome::UnknownJob))
        throw ProtocolError(detail::concat(
            "invalid cancel outcome byte ", unsigned(outcome)));
    c.outcome = CancelOutcome(outcome);
    return c;
}

Message
encodeAckReply(const AckInfo &a)
{
    Message m;
    m.type = MsgType::AckReply;
    ByteWriter w(m.payload);
    w.u64(a.jobId);
    w.u8(uint8_t(a.outcome));
    return m;
}

AckInfo
decodeAckReply(const Message &m)
{
    requireType(m, MsgType::AckReply);
    ByteReader r(m.payload);
    AckInfo a;
    a.jobId = r.u64();
    uint8_t outcome = r.u8();
    if (outcome < uint8_t(AckOutcome::Released) ||
        outcome > uint8_t(AckOutcome::HashMismatch))
        throw ProtocolError(detail::concat(
            "invalid ack outcome byte ", unsigned(outcome)));
    a.outcome = AckOutcome(outcome);
    return a;
}

Message
encodeStatsReply(const ServerStatsData &s)
{
    Message m;
    m.type = MsgType::StatsReply;
    ByteWriter w(m.payload);
    w.u64(s.submitted);
    w.u64(s.accepted);
    w.u64(s.completed);
    w.u64(s.failed);
    w.u64(s.cancelled);
    w.u64(s.rejectedQueueFull);
    w.u64(s.rejectedClientCap);
    w.u64(s.rejectedShutdown);
    w.u64(s.malformed);
    w.u32(s.queued);
    w.u32(s.running);
    w.u32(s.workers);
    w.u32(s.queueCapacity);
    w.u64(s.connectionsAccepted);
    w.u32(s.connectionsOpen);
    w.f64(s.totalQueueWaitMs);
    w.f64(s.maxQueueWaitMs);
    w.f64(s.totalServiceMs);
    w.f64(s.maxServiceMs);
    w.u64(s.streamsStarted);
    w.u64(s.streamsCompleted);
    w.u64(s.streamedChunks);
    w.u64(s.streamedPayloadBytes);
    w.u64(s.progressEvents);
    w.u64(s.retainedResultBytes);
    w.u32(s.activeStreams);
    w.u64(s.dedupedSubmits);
    w.u64(s.journalReplayedJobs);
    w.u64(s.warmRestoredJobs);
    w.u64(s.resultsAcked);
    w.u64(s.streamsResumed);
    return m;
}

ServerStatsData
decodeStatsReply(const Message &m)
{
    requireType(m, MsgType::StatsReply);
    ByteReader r(m.payload);
    ServerStatsData s;
    s.submitted = r.u64();
    s.accepted = r.u64();
    s.completed = r.u64();
    s.failed = r.u64();
    s.cancelled = r.u64();
    s.rejectedQueueFull = r.u64();
    s.rejectedClientCap = r.u64();
    s.rejectedShutdown = r.u64();
    s.malformed = r.u64();
    s.queued = r.u32();
    s.running = r.u32();
    s.workers = r.u32();
    s.queueCapacity = r.u32();
    s.connectionsAccepted = r.u64();
    s.connectionsOpen = r.u32();
    s.totalQueueWaitMs = r.f64();
    s.maxQueueWaitMs = r.f64();
    s.totalServiceMs = r.f64();
    s.maxServiceMs = r.f64();
    s.streamsStarted = r.u64();
    s.streamsCompleted = r.u64();
    s.streamedChunks = r.u64();
    s.streamedPayloadBytes = r.u64();
    s.progressEvents = r.u64();
    s.retainedResultBytes = r.u64();
    s.activeStreams = r.u32();
    s.dedupedSubmits = r.u64();
    s.journalReplayedJobs = r.u64();
    s.warmRestoredJobs = r.u64();
    s.resultsAcked = r.u64();
    s.streamsResumed = r.u64();
    return s;
}

Message
encodeShutdownReply()
{
    Message m;
    m.type = MsgType::ShutdownReply;
    return m;
}

Message
encodeErrorReply(const std::string &what)
{
    Message m;
    m.type = MsgType::ErrorReply;
    ByteWriter w(m.payload);
    writeString(w, what.size() > kMaxStringBytes
                       ? what.substr(0, kMaxStringBytes)
                       : what,
                kMaxStringBytes);
    return m;
}

std::string
decodeErrorReply(const Message &m)
{
    requireType(m, MsgType::ErrorReply);
    ByteReader r(m.payload);
    return readString(r, kMaxStringBytes);
}

} // namespace rose::serve
