/**
 * @file
 * Wire protocol of the mission-service daemon (`rosed`).
 *
 * RoSÉ's evaluations are thousands of independent co-simulated
 * missions; the serve layer turns the in-process library into a
 * long-lived service multiple clients can submit missions to. This
 * header defines the request/response message set and its framing.
 *
 * Framing deliberately mirrors the hardened bridge packet format
 * (bridge/packet.hh): a 1-byte type + 4-byte little-endian length
 * header, with the type byte and length bound validated *before* any
 * payload allocation, and a poisoned-buffer rule — once framing is
 * lost the stream can never be trusted again. The payload bound is
 * larger than the bridge's, but still hard: a corrupt length can
 * neither trigger an unbounded allocation nor an endless NeedMore
 * wait.
 *
 * Request/response pairing (protocol version 3): every request
 * produces exactly one *logical* response on the same connection, in
 * request order — but two response kinds span multiple frames or
 * arrive unsolicited:
 *
 *  - A FetchResult of a terminal job answers with a *result stream*:
 *    zero or more ResultChunk frames (ordered, contiguous segments of
 *    the trajectory payload) closed by exactly one ResultEnd frame
 *    that carries the scalar result, the terminal JobState, and an
 *    FNV-1a hash of the canonical trajectory CSV so the client can
 *    verify reassembly bit-for-bit. No frame for a *different
 *    request on the same connection* is interleaved inside a stream.
 *    FetchResult carries a *resume byte offset*: a client whose
 *    connection died mid-stream reconnects and asks for the payload
 *    from where its assembler stopped, instead of restarting. In a
 *    resumed stream, chunk seq restarts at 0 and ResultEnd's
 *    chunkCount counts only the chunks of *this* stream, while
 *    payloadBytes is always the total payload size — the client's
 *    prefix plus the resumed tail must add up to it.
 *
 *  - Progress frames are server-push events for *running* jobs owned
 *    by the connection. They may arrive between any two logical
 *    responses and between the frames of another job's result stream,
 *    but never inside the result stream *of their own job* (a job
 *    only streams after it stopped running).
 *
 * Responses have the high bit of the type byte set.
 */

#ifndef ROSE_SERVE_PROTO_HH
#define ROSE_SERVE_PROTO_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "bridge/packet.hh"
#include "core/cosim.hh"
#include "core/experiment.hh"

namespace rose::serve {

/** Framing classification, shared with the bridge decoder. */
using bridge::FrameStatus;

/**
 * Semantically malformed payload inside a structurally valid frame
 * (truncated fields, out-of-range enum bytes, oversized strings).
 * The server answers such requests with an Error reply and keeps the
 * connection — the framing layer is still intact.
 */
class ProtocolError : public std::runtime_error
{
  public:
    explicit ProtocolError(const std::string &what)
        : std::runtime_error(what) {}
};

/**
 * Serve protocol version. Version 2 replaced the single-frame
 * ResultReply (wire type 0x84, now invalid) with chunked result
 * streams and added Progress push events plus a binary trajectory
 * encoding; FetchResult grew an encoding byte. Version 3 is the
 * crash-safety revision: SubmitMission carries a client-supplied
 * idempotency key (spec codec v2), FetchResult carries a resume byte
 * offset, and the one-shot release-at-stream-open moved to an
 * explicit hash-verified AckResult/AckReply exchange. Version 4
 * added a payload hash to ResultEnd — the FNV-1a of the stream's
 * payload bytes in their wire encoding — so a Binary stream is
 * verified over the bytes actually received instead of requiring the
 * client to re-render the canonical CSV inside the fetch; AckResult
 * correspondingly carries the payload hash of whichever encoding the
 * client assembled.
 */
constexpr uint8_t kServeProtocolVersion = 4;

/**
 * Version byte leading the SubmitMission payload (and the journal's
 * copy of it). Version 2 added the idempotency-key string between
 * the version byte and the spec fields.
 */
constexpr uint8_t kSpecCodecVersion = 2;

/** Bound on a SubmitMission idempotency key (empty = none). */
constexpr size_t kMaxIdempotencyKeyBytes = 256;

/** Wire identifiers. Requests 0x01..0x7f, responses 0x81..0xff. */
enum class MsgType : uint8_t
{
    // --- requests (client -> server) ---
    SubmitMission = 0x01, ///< enqueue a MissionSpec
    QueryStatus = 0x02,   ///< job lifecycle state
    FetchResult = 0x03,   ///< stream a finished job's result
    CancelMission = 0x04, ///< dequeue a not-yet-running job
    ServerStats = 0x05,   ///< admission / load-shedding counters
    Shutdown = 0x06,      ///< stop the daemon (drain or immediate)
    AckResult = 0x07,     ///< hash-verified release of a fetched result

    // --- responses (server -> client) ---
    SubmitOk = 0x81,     ///< job accepted: id + queue position
    SubmitRejected = 0x82, ///< admission control shed the request
    StatusReply = 0x83,
    // 0x84 was the v1 single-frame ResultReply; retired with the
    // protocol-2 stream frames below and invalid on the wire now.
    CancelReply = 0x85,
    StatsReply = 0x86,
    ShutdownReply = 0x87,
    ResultChunk = 0x88, ///< ordered segment of a result stream
    ResultEnd = 0x89,   ///< closes a result stream: scalars + hash
    Progress = 0x8a,    ///< server-push progress of a running job
    AckReply = 0x8b,    ///< outcome of an AckResult release
    ErrorReply = 0x8f, ///< malformed-but-framed request, unknown job
};

/** True when the raw wire byte names a known MsgType. */
bool isValidMsgType(uint8_t raw);

/** True for the request (client -> server) half of the message set. */
bool isRequest(MsgType t);

/** Human-readable message-type name for logs. */
const char *msgTypeName(MsgType t);

/**
 * Upper bound on a serve frame's payload. Trajectories of arbitrary
 * size travel as ResultChunk frames (each at most
 * kMaxResultChunkBytes), so no single frame ever needs to grow with
 * mission length; this bound only has to cover specs, stats, and the
 * scalar stream frames with a wide margin.
 */
constexpr size_t kMaxServePayloadBytes = 8 * 1024 * 1024;

/**
 * Hard bound on one ResultChunk's segment. Decoders reject larger
 * chunks before allocating; servers slice streams at
 * ServerConfig::resultChunkBytes (default below) which is clamped to
 * this.
 */
constexpr size_t kMaxResultChunkBytes = 1024 * 1024;

/** Default server-side stream slice size. */
constexpr size_t kDefaultResultChunkBytes = 256 * 1024;

/**
 * Reassembly guard: a ResultStreamAssembler refuses to accumulate
 * more than this many payload bytes (a corrupt or hostile stream can
 * not drive an unbounded client allocation). 1 GiB is ~35 hours of
 * mission at the default sample cadence — far past maxSimSeconds'
 * admission ceiling.
 */
constexpr size_t kMaxAssembledTrajectoryBytes = 1ull << 30;

/** One serve-protocol message: type + raw payload bytes. */
struct Message
{
    MsgType type = MsgType::ServerStats;
    std::vector<uint8_t> payload;

    /** Header bytes on the wire: 1 type byte + 4 length bytes. */
    static constexpr size_t kHeaderBytes = 5;

    size_t wireSize() const { return kHeaderBytes + payload.size(); }
};

/** Serialize header + payload onto a byte stream. */
void serializeMessage(const Message &m, std::vector<uint8_t> &out);

/**
 * Validated frame decoder (mirrors bridge::tryDecodeFrame): parse one
 * message from the front of a byte range. Header checked before any
 * payload allocation; unknown type or oversized length is Malformed.
 */
FrameStatus tryDecodeMessage(const uint8_t *data, size_t size,
                             size_t &consumed, Message &out,
                             std::string *error = nullptr);

/**
 * Receive-side accumulator with a read cursor and amortized
 * compaction (O(bytes) to drain N messages). Once Malformed, the
 * buffer is poisoned and stays Malformed: a length-prefixed stream
 * cannot be resynchronized after framing is lost.
 */
class MessageBuffer
{
  public:
    void append(const uint8_t *data, size_t n);
    FrameStatus next(Message &out, std::string *error = nullptr);
    size_t pendingBytes() const { return buf_.size() - pos_; }
    void clear();

  private:
    std::vector<uint8_t> buf_;
    size_t pos_ = 0;
    bool poisoned_ = false;
    std::string poisonError_;
};

// --------------------------------------------------------------------
// Typed payload codecs. Decoders throw ProtocolError (or the
// underlying bridge::PayloadError on byte underrun) on bad payloads.

/** Why admission control refused a submission. */
enum class RejectReason : uint8_t
{
    QueueFull = 1,    ///< bounded queue at capacity (load shed)
    ClientCap = 2,    ///< per-client in-flight cap reached
    ShuttingDown = 3, ///< daemon is draining
    BadRequest = 4,   ///< spec failed validation
};

const char *rejectReasonName(RejectReason r);

/** Job lifecycle as observable by clients. */
enum class JobState : uint8_t
{
    Queued = 1,
    Running = 2,
    Done = 3,      ///< mission ran; result available (any outcome)
    Failed = 4,    ///< execution threw; failure reason available
    Cancelled = 5, ///< dequeued before running
    Unknown = 6,   ///< no such job id
};

const char *jobStateName(JobState s);

/**
 * How the trajectory payload of a result stream is encoded. Stream
 * integrity is verified over the payload bytes as received (FNV-1a,
 * ResultEnd.payloadHash) for both encodings. The canonical CSV hash
 * still rides ResultEnd.trajectoryHash: a Csv stream's payload IS
 * the canonical CSV (the two hashes coincide), and a Binary stream's
 * records quantize every cell to its printed decimal, so rendering
 * the decoded samples (core::trajectoryCsvString) reproduces the
 * canonical CSV bit-for-bit — golden hashes are preserved in both
 * encodings, without the client re-rendering CSV inside the fetch.
 */
enum class TrajectoryEncoding : uint8_t
{
    Csv = 1,    ///< the canonical CSV bytes themselves
    Binary = 2, ///< fixed-width records (kTrajectoryBinaryRecordBytes)
};

const char *trajectoryEncodingName(TrajectoryEncoding e);

/**
 * One fixed-width binary trajectory record: the 10 float columns as
 * canonical f32 (7 before `collisions`, 3 command columns after) and
 * `collisions` as u32, little-endian. 44 bytes vs ~80 bytes/sample
 * measured for real CSV rows (~1.8x smaller).
 *
 * "Canonical f32" makes the encoding lossless *with respect to the
 * canonical CSV*: each double is first pushed through its 6
 * significant-digit printed form (exactly what CsvWriter emits), and
 * that decimal re-read as f32. An f32 sits within 2^-24 ≈ 6e-8
 * relative of the decimal value, far inside the 5e-7 half-step of
 * the 6-digit decimal grid, so printing the f32 back at precision 6
 * reproduces the original CSV cell exactly.
 */
constexpr size_t kTrajectoryBinaryRecordBytes = 44;

/** The canonical-f32 quantizer (exposed for tests). */
float canonicalTrajectoryF32(double v);

/**
 * Encode samples as fixed-width binary records.
 * @throws ProtocolError when a sample's collision count exceeds u32
 * (the record could no longer round-trip the CSV bit-for-bit).
 */
std::vector<uint8_t>
encodeTrajectoryBinary(const std::vector<core::TrajectorySample> &t);

/**
 * Append @p count records starting at @p s to @p out. The building
 * block of encodeTrajectoryBinary, exposed so the server can
 * quantize a stream one chunk at a time instead of stalling its IO
 * loop on a whole multi-megabyte trajectory.
 */
void encodeTrajectoryBinaryRecords(const core::TrajectorySample *s,
                                   size_t count,
                                   std::vector<uint8_t> &out);

/**
 * Decode fixed-width binary records.
 * @throws ProtocolError when @p size is not a whole number of records.
 */
std::vector<core::TrajectorySample>
decodeTrajectoryBinary(const uint8_t *data, size_t size);

/** SubmitOk payload. */
struct SubmitOkReply
{
    uint64_t jobId = 0;
    /** Jobs ahead of this one in the queue at admission. */
    uint32_t queuePosition = 0;
};

/** SubmitRejected payload. */
struct RejectedReply
{
    RejectReason reason = RejectReason::QueueFull;
    std::string detail;
};

/** StatusReply payload. */
struct StatusInfo
{
    uint64_t jobId = 0;
    JobState state = JobState::Unknown;
    uint32_t queuePosition = 0; ///< only meaningful when Queued
    double queueWaitMs = 0.0;   ///< admission -> start (so far if Queued)
    double serviceMs = 0.0;     ///< start -> finish (0 until finished)
};

/**
 * A mission result marshalled for the wire. The trajectory's
 * canonical form is the CSV string (core::trajectoryCsvString) — the
 * same bytes the golden-trace tests hash; `trajectoryHash` is its
 * FNV-1a and rides the ResultEnd frame so clients verify reassembly.
 * The server caches the quantized binary records alongside — encoded
 * once at mission end, so a Binary fetch slices ready bytes instead
 * of re-printing every cell through the canonical-f32 quantizer per
 * fetch (at 44 bytes/record the cache is also smaller than the raw
 * samples it replaces).
 */
struct ServedResult
{
    bool completed = false;
    uint8_t status = 0; ///< core::MissionStatus
    std::string failureReason;
    double missionTime = 0.0;
    uint64_t collisions = 0;
    double avgSpeed = 0.0;
    double maxSpeed = 0.0;
    double distanceTravelled = 0.0;
    uint64_t inferences = 0;
    double avgInferenceLatency = 0.0;
    double energyJoules = 0.0;
    double avgPowerWatts = 0.0;
    uint64_t simulatedCycles = 0;
    uint32_t trajectorySamples = 0;
    uint32_t degradedIntervals = 0;
    /** Canonical trajectory CSV (hash target of test_golden.cc).
     *  Client-side: filled by a Csv fetch; a Binary fetch leaves it
     *  empty and fills `trajectory` instead — render on demand with
     *  core::trajectoryCsvString(trajectory), which reproduces these
     *  bytes exactly (the records are canonical-f32 quantized). */
    std::string trajectoryCsv;
    /** FNV-1a of trajectoryCsv (util/hash.hh). */
    uint64_t trajectoryHash = 0;
    /** Decoded samples (client-side reassembly of a Binary stream
     *  fills this; the server does not retain raw samples). */
    std::vector<core::TrajectorySample> trajectory;
    /** Pre-encoded binary records (server-side Binary stream source;
     *  empty when the trajectory cannot ride the fixed-width record,
     *  e.g. a collision count past u32 or a journal-replayed job). */
    std::vector<uint8_t> trajectoryBinary;
    /** FNV-1a of trajectoryBinary (0 when the cache is empty);
     *  Binary streams carry it as ResultEnd.payloadHash. */
    uint64_t trajectoryBinaryHash = 0;
    /** Server-side queueing telemetry for this job. */
    double queueWaitMs = 0.0;
    double serviceMs = 0.0;
};

/** Marshal a core result (trajectory rendered to canonical CSV). */
ServedResult marshalResult(const core::MissionResult &r);

/** ResultChunk payload: one ordered segment of a result stream. */
struct ResultChunkData
{
    uint64_t jobId = 0;
    /** 0-based stream position; chunks arrive strictly sequential. */
    uint32_t seq = 0;
    std::vector<uint8_t> bytes;
};

/**
 * ResultEnd payload: closes a result stream. Carries everything
 * except the trajectory payload itself — terminal state, encoding,
 * stream totals for truncation detection, the verification hash, and
 * the scalar result fields.
 */
struct ResultEndData
{
    uint64_t jobId = 0;
    /** Terminal lifecycle state (Done or Failed) of the job. */
    JobState state = JobState::Done;
    TrajectoryEncoding encoding = TrajectoryEncoding::Csv;
    uint32_t chunkCount = 0;
    uint64_t payloadBytes = 0;
    /** FNV-1a of the canonical trajectory CSV. */
    uint64_t trajectoryHash = 0;
    /** FNV-1a of the stream's payload bytes in their wire encoding:
     *  equals trajectoryHash for a Csv stream (the payload IS the
     *  canonical CSV) and the binary-record hash for Binary. The
     *  assembler verifies reassembly against this, so no encoding
     *  needs a client-side CSV re-render inside the fetch. */
    uint64_t payloadHash = 0;
    /** Scalar fields only; trajectoryCsv/trajectory stay empty. */
    ServedResult result;
};

/** Progress payload: a running job's position in simulated time. */
struct ProgressEvent
{
    uint64_t jobId = 0;
    double simTimeSeconds = 0.0;
    double maxSimSeconds = 0.0;
    uint64_t samples = 0;
};

/** A fully reassembled result (ResultStreamAssembler's output). */
struct ResultData
{
    uint64_t jobId = 0;
    ServedResult result;
    /** Terminal lifecycle state (Done or Failed) of the job. */
    JobState state = JobState::Done;
    /** FNV-1a of the payload bytes the client assembled (verified
     *  against ResultEnd.payloadHash); AckResult carries it back so
     *  the server releases only bytes the client actually holds. */
    uint64_t payloadHash = 0;
};

/**
 * Client-side state machine that reassembles one result stream.
 * Standalone (no socket knowledge) so the whole protocol surface is
 * fuzzable: feed it decoded frames in arrival order and it enforces
 * every stream invariant — matching job id, strictly sequential
 * chunk seq, bounded accumulation, no frame after ResultEnd, totals
 * and chunk count matching, and the FNV-1a payload hash over the
 * assembled bytes in their wire encoding (so a Binary stream needs
 * no CSV re-render to verify).
 */
class ResultStreamAssembler
{
  public:
    explicit ResultStreamAssembler(
        uint64_t job_id,
        size_t max_payload_bytes = kMaxAssembledTrajectoryBytes);

    /**
     * Consume one stream frame (ResultChunk or ResultEnd).
     * @return true once the stream is complete and verified.
     * @throws ProtocolError on any stream violation, including any
     * frame fed after completion and any non-stream message type
     * (Progress frames are connection-level events — dispatch them
     * before the assembler, never into it).
     */
    bool feed(const Message &m);

    bool complete() const { return complete_; }
    uint64_t jobId() const { return jobId_; }
    /** Payload bytes accumulated so far. */
    size_t payloadBytes() const { return payload_.size(); }
    /** The verified result; only valid once complete(). */
    ResultData takeResult();

    /**
     * Prepare to continue after the connection carrying the stream
     * died: keeps the accumulated payload prefix and resets the
     * chunk-sequence expectation to 0, matching the server's numbering
     * of a stream resumed at payloadBytes(). Only valid before
     * completion.
     */
    void rewindForResume();

  private:
    void finish(const ResultEndData &end);

    uint64_t jobId_ = 0;
    size_t maxPayloadBytes_ = 0;
    uint32_t nextSeq_ = 0;
    std::vector<uint8_t> payload_;
    bool complete_ = false;
    ResultData result_;
};

/** What a CancelMission achieved. */
enum class CancelOutcome : uint8_t
{
    Dequeued = 1,    ///< removed from the queue before running
    TooLate = 2,     ///< already running (missions are not preempted)
    AlreadyDone = 3, ///< already finished
    UnknownJob = 4,
};

/** CancelReply payload. */
struct CancelInfo
{
    uint64_t jobId = 0;
    CancelOutcome outcome = CancelOutcome::UnknownJob;
};

/** StatsReply payload: admission + load-shedding counters. */
struct ServerStatsData
{
    uint64_t submitted = 0; ///< SubmitMission requests seen
    uint64_t accepted = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t cancelled = 0;
    uint64_t rejectedQueueFull = 0;
    uint64_t rejectedClientCap = 0;
    uint64_t rejectedShutdown = 0;
    uint64_t malformed = 0; ///< poisoned connections dropped
    uint32_t queued = 0;    ///< jobs waiting right now
    uint32_t running = 0;   ///< jobs executing right now
    uint32_t workers = 0;
    uint32_t queueCapacity = 0;
    uint64_t connectionsAccepted = 0;
    uint32_t connectionsOpen = 0;
    /** Queue-wait / service-time aggregates over finished jobs [ms]. */
    double totalQueueWaitMs = 0.0;
    double maxQueueWaitMs = 0.0;
    double totalServiceMs = 0.0;
    double maxServiceMs = 0.0;
    // Result-stream telemetry (protocol 2).
    uint64_t streamsStarted = 0;
    uint64_t streamsCompleted = 0; ///< ResultEnd enqueued
    uint64_t streamedChunks = 0;
    uint64_t streamedPayloadBytes = 0;
    uint64_t progressEvents = 0;
    /** Bytes currently held by retained terminal results. */
    uint64_t retainedResultBytes = 0;
    uint32_t activeStreams = 0; ///< streams mid-flight right now
    // Durability telemetry (protocol 3).
    uint64_t dedupedSubmits = 0; ///< idempotency-key hits answered
    uint64_t journalReplayedJobs = 0; ///< jobs recovered at boot
    uint64_t warmRestoredJobs = 0; ///< recovered via disk checkpoint
    uint64_t resultsAcked = 0;     ///< hash-verified releases
    uint64_t streamsResumed = 0;   ///< fetches with resumeOffset > 0
};

// Requests.

/** SubmitMission payload: the spec plus an optional idempotency key. */
struct SubmitRequest
{
    core::MissionSpec spec;
    /**
     * Client-chosen retry token. A resubmission carrying a key the
     * server has already journaled answers with the original job id
     * instead of enqueueing a duplicate mission. Empty = none.
     */
    std::string idempotencyKey;
};

Message encodeSubmitMission(const core::MissionSpec &spec,
                            const std::string &idempotency_key = "");
SubmitRequest decodeSubmitRequest(const Message &m);
/** Spec-only view of decodeSubmitRequest (key discarded). */
core::MissionSpec decodeSubmitMission(const Message &m);

Message encodeQueryStatus(uint64_t job_id);
uint64_t decodeQueryStatus(const Message &m);

/** FetchResult payload: job id + encoding + resume byte offset. */
struct FetchRequest
{
    uint64_t jobId = 0;
    TrajectoryEncoding encoding = TrajectoryEncoding::Csv;
    /**
     * Payload bytes the client already holds from an interrupted
     * stream of the same job + encoding; the server streams the rest.
     * 0 = full stream. Binary resumes must be record-aligned.
     */
    uint64_t resumeOffset = 0;
};

Message encodeFetchResult(
    uint64_t job_id,
    TrajectoryEncoding enc = TrajectoryEncoding::Csv,
    uint64_t resume_offset = 0);
FetchRequest decodeFetchResult(const Message &m);

/** AckResult payload: releases a fetched result after verification. */
struct AckRequest
{
    uint64_t jobId = 0;
    /** FNV-1a of the canonical CSV the client reassembled. */
    uint64_t trajectoryHash = 0;
};

Message encodeAckResult(uint64_t job_id, uint64_t trajectory_hash);
AckRequest decodeAckResult(const Message &m);

Message encodeCancelMission(uint64_t job_id);
uint64_t decodeCancelMission(const Message &m);

Message encodeServerStats();

Message encodeShutdown(bool drain);
bool decodeShutdown(const Message &m);

// Responses.
Message encodeSubmitOk(const SubmitOkReply &r);
SubmitOkReply decodeSubmitOk(const Message &m);

Message encodeRejected(const RejectedReply &r);
RejectedReply decodeRejected(const Message &m);

Message encodeStatusReply(const StatusInfo &s);
StatusInfo decodeStatusReply(const Message &m);

Message encodeResultChunk(const ResultChunkData &c);
ResultChunkData decodeResultChunk(const Message &m);

Message encodeResultEnd(const ResultEndData &e);
ResultEndData decodeResultEnd(const Message &m);

Message encodeProgress(const ProgressEvent &p);
ProgressEvent decodeProgress(const Message &m);

Message encodeCancelReply(const CancelInfo &c);
CancelInfo decodeCancelReply(const Message &m);

/** What an AckResult achieved. */
enum class AckOutcome : uint8_t
{
    Released = 1, ///< hash matched; the server dropped the record
    /**
     * No such retained job — also the reply when a reconnect retried
     * an ack that already landed, so clients treat it as success.
     */
    UnknownJob = 2,
    HashMismatch = 3, ///< client hash ≠ stored hash; record kept
};

const char *ackOutcomeName(AckOutcome o);

/** AckReply payload. */
struct AckInfo
{
    uint64_t jobId = 0;
    AckOutcome outcome = AckOutcome::UnknownJob;
};

Message encodeAckReply(const AckInfo &a);
AckInfo decodeAckReply(const Message &m);

Message encodeStatsReply(const ServerStatsData &s);
ServerStatsData decodeStatsReply(const Message &m);

Message encodeShutdownReply();

Message encodeErrorReply(const std::string &what);
std::string decodeErrorReply(const Message &m);

} // namespace rose::serve

#endif // ROSE_SERVE_PROTO_HH
