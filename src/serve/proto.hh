/**
 * @file
 * Wire protocol of the mission-service daemon (`rosed`).
 *
 * RoSÉ's evaluations are thousands of independent co-simulated
 * missions; the serve layer turns the in-process library into a
 * long-lived service multiple clients can submit missions to. This
 * header defines the request/response message set and its framing.
 *
 * Framing deliberately mirrors the hardened bridge packet format
 * (bridge/packet.hh): a 1-byte type + 4-byte little-endian length
 * header, with the type byte and length bound validated *before* any
 * payload allocation, and a poisoned-buffer rule — once framing is
 * lost the stream can never be trusted again. The payload bound is
 * larger than the bridge's (results carry whole trajectory CSVs), but
 * still hard: a corrupt length can neither trigger an unbounded
 * allocation nor an endless NeedMore wait.
 *
 * Request/response pairing is strict: every request produces exactly
 * one response on the same connection, in request order. Responses
 * have the high bit of the type byte set.
 */

#ifndef ROSE_SERVE_PROTO_HH
#define ROSE_SERVE_PROTO_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "bridge/packet.hh"
#include "core/cosim.hh"
#include "core/experiment.hh"

namespace rose::serve {

/** Framing classification, shared with the bridge decoder. */
using bridge::FrameStatus;

/**
 * Semantically malformed payload inside a structurally valid frame
 * (truncated fields, out-of-range enum bytes, oversized strings).
 * The server answers such requests with an Error reply and keeps the
 * connection — the framing layer is still intact.
 */
class ProtocolError : public std::runtime_error
{
  public:
    explicit ProtocolError(const std::string &what)
        : std::runtime_error(what) {}
};

/** Wire identifiers. Requests 0x01..0x7f, responses 0x81..0xff. */
enum class MsgType : uint8_t
{
    // --- requests (client -> server) ---
    SubmitMission = 0x01, ///< enqueue a MissionSpec
    QueryStatus = 0x02,   ///< job lifecycle state
    FetchResult = 0x03,   ///< retrieve a finished job's result
    CancelMission = 0x04, ///< dequeue a not-yet-running job
    ServerStats = 0x05,   ///< admission / load-shedding counters
    Shutdown = 0x06,      ///< stop the daemon (drain or immediate)

    // --- responses (server -> client) ---
    SubmitOk = 0x81,     ///< job accepted: id + queue position
    SubmitRejected = 0x82, ///< admission control shed the request
    StatusReply = 0x83,
    ResultReply = 0x84,
    CancelReply = 0x85,
    StatsReply = 0x86,
    ShutdownReply = 0x87,
    ErrorReply = 0x8f, ///< malformed-but-framed request, unknown job
};

/** True when the raw wire byte names a known MsgType. */
bool isValidMsgType(uint8_t raw);

/** True for the request (client -> server) half of the message set. */
bool isRequest(MsgType t);

/** Human-readable message-type name for logs. */
const char *msgTypeName(MsgType t);

/**
 * Upper bound on a serve frame's payload. The largest legitimate
 * payload is a ResultReply carrying a full trajectory CSV (a
 * 60-second mission at the default sample rate is ~500 KiB); 8 MiB
 * covers any configurable mission with a wide margin.
 */
constexpr size_t kMaxServePayloadBytes = 8 * 1024 * 1024;

/**
 * Budget for the trajectory CSV inside a ResultReply: the payload
 * bound minus generous slack for every fixed-width field and bounded
 * string around it. Results are demoted to a failure *before* they
 * reach the encoder when the CSV outgrows this (fitResultToWire), so
 * an accepted mission can never produce an unencodable reply.
 */
constexpr size_t kMaxTrajectoryCsvBytes =
    kMaxServePayloadBytes - 64 * 1024;

/** One serve-protocol message: type + raw payload bytes. */
struct Message
{
    MsgType type = MsgType::ServerStats;
    std::vector<uint8_t> payload;

    /** Header bytes on the wire: 1 type byte + 4 length bytes. */
    static constexpr size_t kHeaderBytes = 5;

    size_t wireSize() const { return kHeaderBytes + payload.size(); }
};

/** Serialize header + payload onto a byte stream. */
void serializeMessage(const Message &m, std::vector<uint8_t> &out);

/**
 * Validated frame decoder (mirrors bridge::tryDecodeFrame): parse one
 * message from the front of a byte range. Header checked before any
 * payload allocation; unknown type or oversized length is Malformed.
 */
FrameStatus tryDecodeMessage(const uint8_t *data, size_t size,
                             size_t &consumed, Message &out,
                             std::string *error = nullptr);

/**
 * Receive-side accumulator with a read cursor and amortized
 * compaction (O(bytes) to drain N messages). Once Malformed, the
 * buffer is poisoned and stays Malformed: a length-prefixed stream
 * cannot be resynchronized after framing is lost.
 */
class MessageBuffer
{
  public:
    void append(const uint8_t *data, size_t n);
    FrameStatus next(Message &out, std::string *error = nullptr);
    size_t pendingBytes() const { return buf_.size() - pos_; }
    void clear();

  private:
    std::vector<uint8_t> buf_;
    size_t pos_ = 0;
    bool poisoned_ = false;
    std::string poisonError_;
};

// --------------------------------------------------------------------
// Typed payload codecs. Decoders throw ProtocolError (or the
// underlying bridge::PayloadError on byte underrun) on bad payloads.

/** Why admission control refused a submission. */
enum class RejectReason : uint8_t
{
    QueueFull = 1,    ///< bounded queue at capacity (load shed)
    ClientCap = 2,    ///< per-client in-flight cap reached
    ShuttingDown = 3, ///< daemon is draining
    BadRequest = 4,   ///< spec failed validation
};

const char *rejectReasonName(RejectReason r);

/** Job lifecycle as observable by clients. */
enum class JobState : uint8_t
{
    Queued = 1,
    Running = 2,
    Done = 3,      ///< mission ran; result available (any outcome)
    Failed = 4,    ///< execution threw; failure reason available
    Cancelled = 5, ///< dequeued before running
    Unknown = 6,   ///< no such job id
};

const char *jobStateName(JobState s);

/** SubmitOk payload. */
struct SubmitOkReply
{
    uint64_t jobId = 0;
    /** Jobs ahead of this one in the queue at admission. */
    uint32_t queuePosition = 0;
};

/** SubmitRejected payload. */
struct RejectedReply
{
    RejectReason reason = RejectReason::QueueFull;
    std::string detail;
};

/** StatusReply payload. */
struct StatusInfo
{
    uint64_t jobId = 0;
    JobState state = JobState::Unknown;
    uint32_t queuePosition = 0; ///< only meaningful when Queued
    double queueWaitMs = 0.0;   ///< admission -> start (so far if Queued)
    double serviceMs = 0.0;     ///< start -> finish (0 until finished)
};

/**
 * A mission result marshalled for the wire. The trajectory travels as
 * the canonical CSV string (core::trajectoryCsvString) — the same
 * bytes the golden-trace tests hash — so a client can verify
 * bit-identity with a local run without any float re-encoding.
 */
struct ServedResult
{
    bool completed = false;
    uint8_t status = 0; ///< core::MissionStatus
    std::string failureReason;
    double missionTime = 0.0;
    uint64_t collisions = 0;
    double avgSpeed = 0.0;
    double maxSpeed = 0.0;
    double distanceTravelled = 0.0;
    uint64_t inferences = 0;
    double avgInferenceLatency = 0.0;
    double energyJoules = 0.0;
    double avgPowerWatts = 0.0;
    uint64_t simulatedCycles = 0;
    uint32_t trajectorySamples = 0;
    uint32_t degradedIntervals = 0;
    /** Canonical trajectory CSV (hash target of test_golden.cc). */
    std::string trajectoryCsv;
    /** Server-side queueing telemetry for this job. */
    double queueWaitMs = 0.0;
    double serviceMs = 0.0;
};

/** Marshal a core result (trajectory rendered to canonical CSV). */
ServedResult marshalResult(const core::MissionResult &r);

/**
 * Enforce the wire budget on a marshalled result. Returns true when
 * the trajectory CSV fits kMaxTrajectoryCsvBytes; otherwise drops the
 * CSV, records why in failureReason, and returns false so the caller
 * can mark the job Failed — a well-formed failure reply instead of an
 * assert-abort in the encode path.
 */
bool fitResultToWire(ServedResult &r);

/** ResultReply payload. */
struct ResultData
{
    uint64_t jobId = 0;
    ServedResult result;
    /** Terminal lifecycle state (Done or Failed) of the job. */
    JobState state = JobState::Done;
};

/** What a CancelMission achieved. */
enum class CancelOutcome : uint8_t
{
    Dequeued = 1,    ///< removed from the queue before running
    TooLate = 2,     ///< already running (missions are not preempted)
    AlreadyDone = 3, ///< already finished
    UnknownJob = 4,
};

/** CancelReply payload. */
struct CancelInfo
{
    uint64_t jobId = 0;
    CancelOutcome outcome = CancelOutcome::UnknownJob;
};

/** StatsReply payload: admission + load-shedding counters. */
struct ServerStatsData
{
    uint64_t submitted = 0; ///< SubmitMission requests seen
    uint64_t accepted = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t cancelled = 0;
    uint64_t rejectedQueueFull = 0;
    uint64_t rejectedClientCap = 0;
    uint64_t rejectedShutdown = 0;
    uint64_t malformed = 0; ///< poisoned connections dropped
    uint32_t queued = 0;    ///< jobs waiting right now
    uint32_t running = 0;   ///< jobs executing right now
    uint32_t workers = 0;
    uint32_t queueCapacity = 0;
    uint64_t connectionsAccepted = 0;
    uint32_t connectionsOpen = 0;
    /** Queue-wait / service-time aggregates over finished jobs [ms]. */
    double totalQueueWaitMs = 0.0;
    double maxQueueWaitMs = 0.0;
    double totalServiceMs = 0.0;
    double maxServiceMs = 0.0;
};

// Requests.
Message encodeSubmitMission(const core::MissionSpec &spec);
core::MissionSpec decodeSubmitMission(const Message &m);

Message encodeQueryStatus(uint64_t job_id);
uint64_t decodeQueryStatus(const Message &m);

Message encodeFetchResult(uint64_t job_id);
uint64_t decodeFetchResult(const Message &m);

Message encodeCancelMission(uint64_t job_id);
uint64_t decodeCancelMission(const Message &m);

Message encodeServerStats();

Message encodeShutdown(bool drain);
bool decodeShutdown(const Message &m);

// Responses.
Message encodeSubmitOk(const SubmitOkReply &r);
SubmitOkReply decodeSubmitOk(const Message &m);

Message encodeRejected(const RejectedReply &r);
RejectedReply decodeRejected(const Message &m);

Message encodeStatusReply(const StatusInfo &s);
StatusInfo decodeStatusReply(const Message &m);

Message encodeResultReply(const ResultData &r);
ResultData decodeResultReply(const Message &m);

Message encodeCancelReply(const CancelInfo &c);
CancelInfo decodeCancelReply(const Message &m);

Message encodeStatsReply(const ServerStatsData &s);
ServerStatsData decodeStatsReply(const Message &m);

Message encodeShutdownReply();

Message encodeErrorReply(const std::string &what);
std::string decodeErrorReply(const Message &m);

} // namespace rose::serve

#endif // ROSE_SERVE_PROTO_HH
