/**
 * @file
 * `rose_client` — CLI for the mission-service daemon.
 *
 *   rose_client --port N submit [spec flags] [--wait]
 *                               [--idem-key K] [--job-file P]
 *   rose_client --port N status JOB
 *   rose_client --port N fetch JOB [--csv PATH] [--binary]
 *   rose_client --port N cancel JOB
 *   rose_client --port N verify JOB [spec flags]
 *   rose_client --port N stats
 *   rose_client --port N shutdown [--no-drain]
 *   rose_client --port N smoke [--clients 4] [--missions 8]
 *   rose_client --port N stream-smoke [--sim-seconds T]
 *                                     [--sync-granularity N]
 *                                     [--min-bytes B]
 *
 * `submit --wait` and `fetch` print server-pushed progress events
 * (simulated seconds so far) to stderr while the mission runs, and
 * exit 1 (printing the journaled failureReason) when the mission
 * terminal state is Failed. `--idem-key` makes the submission safe
 * to retry across daemon restarts (the resubmit lands on the same
 * job); `--job-file` writes the bare job id for scripts. `verify`
 * fetches a finished job AND runs the same spec locally, exiting 0
 * only when the two trajectory FNV-1a hashes are bit-identical —
 * the crash-recovery chaos check in CI is built on it. The global
 * `--reconnect` flag turns on transparent redial with capped
 * backoff + jitter and resumable result streams.
 *
 * `smoke` is the end-to-end acceptance check used by CI: it fans out
 * concurrent clients (core::parallelIndexed), submits the canonical
 * golden missions, and verifies that every served trajectory hashes
 * bit-identically (FNV-1a) to the same spec run locally through
 * runMission(). Exit 0 only when every mission matches.
 *
 * `stream-smoke` is the long-mission streaming check: it submits one
 * mission whose trajectory CSV exceeds --min-bytes (default 8 MiB —
 * larger than any single protocol frame, so it necessarily crosses
 * many ResultChunk frames), fetches it in both CSV and binary
 * encodings, and verifies each reassembled trajectory hashes
 * bit-identically to the local runMission() of the same spec.
 */

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.hh"
#include "core/experiment.hh"
#include "serve/client.hh"
#include "util/backoff.hh"
#include "util/hash.hh"

using namespace rose;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --port N [--host H] [--timeout MS] [--reconnect] "
        "COMMAND ...\n"
        "commands:\n"
        "  submit [--world W --vehicle V --soc S --depth D --velocity"
        " X\n"
        "          --yaw DEG --seed N --sim-seconds T --dynamic\n"
        "          --degraded] [--wait] [--idem-key K] [--job-file P]\n"
        "  status JOB | fetch JOB [--csv PATH] [--binary] | cancel "
        "JOB\n"
        "  verify JOB [spec flags]   (fetch + local re-run, compare "
        "hashes)\n"
        "  stats | shutdown [--no-drain]\n"
        "  smoke [--clients N] [--missions N] [--sim-seconds T]\n"
        "  stream-smoke [--sim-seconds T] [--sync-granularity N]\n"
        "               [--min-bytes B]\n",
        argv0);
}

/** Progress-to-stderr handler for interactive commands. */
void
printProgress(const serve::ProgressEvent &p)
{
    std::fprintf(stderr,
                 "progress: job %" PRIu64 " %.2f / %.2f sim-s "
                 "(%" PRIu64 " samples)\n",
                 p.jobId, p.simTimeSeconds, p.maxSimSeconds,
                 p.samples);
}

void
printResult(uint64_t job_id, const serve::ServedResult &r)
{
    std::printf("job %" PRIu64 ": %s%s%s\n", job_id,
                r.completed ? "completed" : "did not complete",
                r.failureReason.empty() ? "" : " — ",
                r.failureReason.c_str());
    std::printf("  mission_time=%.3fs collisions=%" PRIu64
                " avg_speed=%.3f m/s distance=%.2f m\n",
                r.missionTime, r.collisions, r.avgSpeed,
                r.distanceTravelled);
    std::printf("  inferences=%" PRIu64 " energy=%.3f J cycles=%" PRIu64
                "\n",
                r.inferences, r.energyJoules, r.simulatedCycles);
    std::printf("  queue_wait=%.1f ms service=%.1f ms samples=%u "
                "trajectory_fnv1a=0x%016" PRIx64 "\n",
                r.queueWaitMs, r.serviceMs, r.trajectorySamples,
                fnv1a(r.trajectoryCsv));
}

/** Consume one mission-spec flag at argv[i]; true when recognized. */
bool
parseSpecFlag(core::MissionSpec &spec, int argc, char **argv, int &i)
{
    std::string arg = argv[i];
    if (arg == "--world" && i + 1 < argc)
        spec.world = argv[++i];
    else if (arg == "--vehicle" && i + 1 < argc)
        spec.vehicle = argv[++i];
    else if (arg == "--soc" && i + 1 < argc)
        spec.socName = argv[++i];
    else if (arg == "--depth" && i + 1 < argc)
        spec.modelDepth = std::atoi(argv[++i]);
    else if (arg == "--velocity" && i + 1 < argc)
        spec.velocity = std::atof(argv[++i]);
    else if (arg == "--yaw" && i + 1 < argc)
        spec.initialYawDeg = std::atof(argv[++i]);
    else if (arg == "--seed" && i + 1 < argc)
        spec.seed = uint64_t(std::atoll(argv[++i]));
    else if (arg == "--sim-seconds" && i + 1 < argc)
        spec.maxSimSeconds = std::atof(argv[++i]);
    else if (arg == "--sync-granularity" && i + 1 < argc)
        spec.syncGranularity = uint64_t(std::atoll(argv[++i]));
    else if (arg == "--dynamic")
        spec.mode = runtime::RuntimeMode::Dynamic;
    else if (arg == "--degraded")
        spec.degradedMode = true;
    else
        return false;
    return true;
}

/** The golden-trace canonical mission, SoC config varying. */
core::MissionSpec
canonicalSpec(const std::string &soc, double sim_seconds)
{
    core::MissionSpec spec;
    spec.world = "tunnel";
    spec.socName = soc;
    spec.modelDepth = 14;
    spec.velocity = 3.0;
    spec.initialYawDeg = 20.0;
    spec.seed = 1;
    spec.maxSimSeconds = sim_seconds;
    return spec;
}

int
runSmoke(const std::string &host, uint16_t port, int timeout_ms,
         int clients, int missions, double sim_seconds)
{
    static const char *kSocs[] = {"A", "B", "C"};

    // Local reference hashes, one runMission per distinct spec.
    std::printf("smoke: computing local reference hashes...\n");
    std::map<std::string, uint64_t> localHash;
    for (int m = 0; m < missions && m < 3; ++m) {
        const char *soc = kSocs[m % 3];
        if (localHash.count(soc))
            continue;
        core::MissionResult r =
            core::runMission(canonicalSpec(soc, sim_seconds));
        localHash[soc] = fnv1a(core::trajectoryCsvString(r));
    }

    std::mutex mu;
    int failures = 0;

    // One client per concurrent slot; each submits its share of the
    // mission list and verifies every served hash.
    auto clientBody = [&](size_t ci) -> int {
        int bad = 0;
        try {
            serve::ServeClient client(port, host, timeout_ms);
            std::vector<std::pair<uint64_t, const char *>> jobs;
            for (int m = int(ci); m < missions; m += clients) {
                const char *soc = kSocs[m % 3];
                // Backpressure is legitimate: retry shed submissions
                // on a capped-backoff-with-jitter schedule (the
                // jitter desynchronizes the concurrent clients so
                // they don't re-stampede the queue in lockstep).
                Backoff backoff({25, 500, 2.0, 0.5},
                                0xb0ffULL + ci * 977 + uint64_t(m));
                serve::SubmitOutcome out;
                for (int attempt = 0; attempt < 8; ++attempt) {
                    out = client.submit(
                        canonicalSpec(soc, sim_seconds));
                    if (out.accepted ||
                        out.reason != serve::RejectReason::QueueFull)
                        break;
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(
                            backoff.nextDelayMs()));
                }
                if (!out.accepted) {
                    std::lock_guard<std::mutex> lk(mu);
                    std::fprintf(stderr,
                                 "smoke: client %zu submit shed "
                                 "repeatedly (%s)\n",
                                 ci, out.detail.c_str());
                    bad++;
                    continue;
                }
                jobs.emplace_back(out.jobId, soc);
            }
            for (auto [id, soc] : jobs) {
                serve::ServedResult r =
                    client.waitResult(id, timeout_ms);
                uint64_t served = fnv1a(r.trajectoryCsv);
                uint64_t expect = localHash.at(soc);
                std::lock_guard<std::mutex> lk(mu);
                if (served != expect) {
                    std::fprintf(stderr,
                                 "smoke: HASH MISMATCH job %" PRIu64
                                 " soc %s served 0x%016" PRIx64
                                 " local 0x%016" PRIx64 "\n",
                                 id, soc, served, expect);
                    bad++;
                } else {
                    std::printf("smoke: job %" PRIu64 " soc %s ok "
                                "(0x%016" PRIx64 ")\n",
                                id, soc, served);
                }
            }
        } catch (const std::exception &e) {
            std::lock_guard<std::mutex> lk(mu);
            std::fprintf(stderr, "smoke: client %zu failed: %s\n", ci,
                         e.what());
            bad++;
        }
        return bad;
    };

    std::vector<int> bad = core::parallelIndexed<int>(
        size_t(clients), clients, clientBody);
    for (int b : bad)
        failures += b;

    if (failures == 0) {
        std::printf("smoke: %d missions from %d clients all "
                    "bit-identical to local runs\n",
                    missions, clients);
        return 0;
    }
    std::fprintf(stderr, "smoke: %d failure(s)\n", failures);
    return 1;
}

int
runStreamSmoke(const std::string &host, uint16_t port, int timeout_ms,
               double sim_seconds, uint64_t sync_granularity,
               size_t min_bytes)
{
    core::MissionSpec spec = canonicalSpec("A", sim_seconds);
    spec.syncGranularity = sync_granularity;

    std::printf("stream-smoke: local reference run...\n");
    core::MissionResult local = core::runMission(spec);
    std::string localCsv = core::trajectoryCsvString(local);
    uint64_t expect = fnv1a(localCsv);
    std::printf("stream-smoke: local CSV %zu bytes, fnv1a "
                "0x%016" PRIx64 "\n",
                localCsv.size(), expect);
    if (localCsv.size() < min_bytes) {
        std::fprintf(stderr,
                     "stream-smoke: trajectory too small (%zu < %zu "
                     "bytes); raise --sim-seconds or lower "
                     "--sync-granularity\n",
                     localCsv.size(), min_bytes);
        return 1;
    }

    serve::ServeClient client(port, host, timeout_ms);
    uint64_t progressSeen = 0;
    client.onProgress([&](const serve::ProgressEvent &p) {
        progressSeen++;
        printProgress(p);
    });

    static const serve::TrajectoryEncoding kEncodings[] = {
        serve::TrajectoryEncoding::Csv,
        serve::TrajectoryEncoding::Binary};
    for (serve::TrajectoryEncoding enc : kEncodings) {
        serve::SubmitOutcome out = client.submit(spec);
        if (!out.accepted) {
            std::fprintf(stderr, "stream-smoke: submit shed: %s\n",
                         out.detail.c_str());
            return 1;
        }
        serve::ServedResult r =
            client.waitResult(out.jobId, timeout_ms, 10, enc);
        // A Binary fetch delivers decoded samples, not CSV; render
        // the canonical CSV here so the golden-hash comparison below
        // proves both encodings carry bit-identical trajectories.
        std::string servedCsv =
            !r.trajectoryCsv.empty()
                ? std::move(r.trajectoryCsv)
                : core::trajectoryCsvString(r.trajectory);
        uint64_t served = fnv1a(servedCsv);
        std::printf("stream-smoke: job %" PRIu64 " (%s) %zu bytes, "
                    "fnv1a 0x%016" PRIx64 "\n",
                    out.jobId, serve::trajectoryEncodingName(enc),
                    servedCsv.size(), served);
        if (served != expect) {
            std::fprintf(stderr,
                         "stream-smoke: HASH MISMATCH (%s): served "
                         "0x%016" PRIx64 " local 0x%016" PRIx64 "\n",
                         serve::trajectoryEncodingName(enc), served,
                         expect);
            return 1;
        }
    }
    std::printf("stream-smoke: %zu-byte trajectory streamed "
                "bit-identically in both encodings (%" PRIu64
                " progress events)\n",
                localCsv.size(), progressSeen);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    int timeout_ms = 120000;
    bool reconnect = false;

    int i = 1;
    for (; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--port" && i + 1 < argc)
            port = uint16_t(std::atoi(argv[++i]));
        else if (arg == "--host" && i + 1 < argc)
            host = argv[++i];
        else if (arg == "--timeout" && i + 1 < argc)
            timeout_ms = std::atoi(argv[++i]);
        else if (arg == "--reconnect")
            reconnect = true;
        else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else
            break;
    }
    if (i >= argc || port == 0) {
        usage(argv[0]);
        return 2;
    }
    std::string cmd = argv[i++];

    try {
        if (cmd == "smoke") {
            int clients = 4, missions = 8;
            double sim_seconds = 10.0;
            for (; i < argc; ++i) {
                std::string arg = argv[i];
                if (arg == "--clients" && i + 1 < argc)
                    clients = std::atoi(argv[++i]);
                else if (arg == "--missions" && i + 1 < argc)
                    missions = std::atoi(argv[++i]);
                else if (arg == "--sim-seconds" && i + 1 < argc)
                    sim_seconds = std::atof(argv[++i]);
            }
            return runSmoke(host, port, timeout_ms, clients, missions,
                            sim_seconds);
        }

        if (cmd == "stream-smoke") {
            double sim_seconds = 2.2;
            uint64_t sync_granularity = 20000;
            size_t min_bytes = 8 * 1024 * 1024;
            for (; i < argc; ++i) {
                std::string arg = argv[i];
                if (arg == "--sim-seconds" && i + 1 < argc)
                    sim_seconds = std::atof(argv[++i]);
                else if (arg == "--sync-granularity" && i + 1 < argc)
                    sync_granularity =
                        uint64_t(std::atoll(argv[++i]));
                else if (arg == "--min-bytes" && i + 1 < argc)
                    min_bytes = size_t(std::atoll(argv[++i]));
            }
            return runStreamSmoke(host, port, timeout_ms, sim_seconds,
                                  sync_granularity, min_bytes);
        }

        serve::ServeClient client(port, host, timeout_ms);
        client.onProgress(printProgress);
        if (reconnect)
            client.enableReconnect();

        if (cmd == "submit") {
            core::MissionSpec spec;
            bool wait = false;
            std::string idemKey, jobFile;
            for (; i < argc; ++i) {
                if (parseSpecFlag(spec, argc, argv, i))
                    continue;
                std::string arg = argv[i];
                if (arg == "--wait")
                    wait = true;
                else if (arg == "--idem-key" && i + 1 < argc)
                    idemKey = argv[++i];
                else if (arg == "--job-file" && i + 1 < argc)
                    jobFile = argv[++i];
            }
            serve::SubmitOutcome out = client.submit(spec, idemKey);
            if (!out.accepted) {
                std::fprintf(stderr, "rejected (%s): %s\n",
                             serve::rejectReasonName(out.reason),
                             out.detail.c_str());
                return 1;
            }
            std::printf("accepted: job %" PRIu64
                        " (queue position %u)\n",
                        out.jobId, out.queuePosition);
            if (!jobFile.empty()) {
                std::FILE *f = std::fopen(jobFile.c_str(), "w");
                if (!f) {
                    std::fprintf(stderr, "cannot write %s\n",
                                 jobFile.c_str());
                    return 1;
                }
                std::fprintf(f, "%" PRIu64 "\n", out.jobId);
                std::fclose(f);
            }
            if (wait) {
                serve::JobState state = serve::JobState::Unknown;
                serve::ServedResult r = client.waitResult(
                    out.jobId, timeout_ms, 10,
                    serve::TrajectoryEncoding::Csv, &state);
                printResult(out.jobId, r);
                if (state == serve::JobState::Failed) {
                    std::fprintf(stderr,
                                 "job %" PRIu64 " FAILED: %s\n",
                                 out.jobId,
                                 r.failureReason.c_str());
                    return 1;
                }
            }
            return 0;
        }

        if (cmd == "verify") {
            if (i >= argc) {
                std::fprintf(stderr, "verify requires a job id\n");
                return 2;
            }
            uint64_t job = uint64_t(std::atoll(argv[i++]));
            core::MissionSpec spec;
            for (; i < argc; ++i)
                parseSpecFlag(spec, argc, argv, i);
            serve::JobState state = serve::JobState::Unknown;
            serve::ServedResult r = client.waitResult(
                job, timeout_ms, 10, serve::TrajectoryEncoding::Csv,
                &state);
            if (state == serve::JobState::Failed) {
                std::fprintf(stderr,
                             "verify: job %" PRIu64 " FAILED: %s\n",
                             job, r.failureReason.c_str());
                return 1;
            }
            uint64_t served = fnv1a(r.trajectoryCsv);
            core::MissionResult local = core::runMission(spec);
            uint64_t expect = fnv1a(core::trajectoryCsvString(local));
            std::printf("verify: job %" PRIu64 " served "
                        "0x%016" PRIx64 " local 0x%016" PRIx64 "\n",
                        job, served, expect);
            if (served != expect) {
                std::fprintf(stderr,
                             "verify: HASH MISMATCH for job %" PRIu64
                             "\n",
                             job);
                return 1;
            }
            std::printf("verify: bit-identical\n");
            return 0;
        }

        if (cmd == "status" || cmd == "fetch" || cmd == "cancel") {
            if (i >= argc) {
                std::fprintf(stderr, "%s requires a job id\n",
                             cmd.c_str());
                return 2;
            }
            uint64_t job = uint64_t(std::atoll(argv[i++]));
            if (cmd == "status") {
                serve::StatusInfo s = client.status(job);
                std::printf("job %" PRIu64 ": %s (queue_pos=%u "
                            "queue_wait=%.1fms service=%.1fms)\n",
                            s.jobId, serve::jobStateName(s.state),
                            s.queuePosition, s.queueWaitMs,
                            s.serviceMs);
                return 0;
            }
            if (cmd == "cancel") {
                serve::CancelInfo c = client.cancel(job);
                static const char *kOutcomes[] = {
                    "?", "dequeued", "too_late", "already_done",
                    "unknown_job"};
                std::printf("job %" PRIu64 ": %s\n", c.jobId,
                            kOutcomes[uint8_t(c.outcome)]);
                return c.outcome ==
                               serve::CancelOutcome::UnknownJob
                           ? 1
                           : 0;
            }
            std::string csvPath;
            serve::TrajectoryEncoding enc =
                serve::TrajectoryEncoding::Csv;
            for (; i < argc; ++i) {
                std::string arg = argv[i];
                if (arg == "--csv" && i + 1 < argc)
                    csvPath = argv[++i];
                else if (arg == "--binary")
                    enc = serve::TrajectoryEncoding::Binary;
            }
            serve::JobState state = serve::JobState::Unknown;
            serve::ServedResult r =
                client.waitResult(job, timeout_ms, 10, enc, &state);
            printResult(job, r);
            if (!csvPath.empty()) {
                std::FILE *f = std::fopen(csvPath.c_str(), "wb");
                if (!f) {
                    std::fprintf(stderr, "cannot write %s\n",
                                 csvPath.c_str());
                    return 1;
                }
                std::fwrite(r.trajectoryCsv.data(), 1,
                            r.trajectoryCsv.size(), f);
                std::fclose(f);
            }
            if (state == serve::JobState::Failed) {
                std::fprintf(stderr, "job %" PRIu64 " FAILED: %s\n",
                             job, r.failureReason.c_str());
                return 1;
            }
            return 0;
        }

        if (cmd == "stats") {
            serve::ServerStatsData s = client.serverStats();
            std::printf(
                "submitted=%" PRIu64 " accepted=%" PRIu64
                " completed=%" PRIu64 " failed=%" PRIu64
                " cancelled=%" PRIu64 "\n"
                "shed: queue_full=%" PRIu64 " client_cap=%" PRIu64
                " shutting_down=%" PRIu64 " malformed=%" PRIu64 "\n"
                "now: queued=%u running=%u workers=%u "
                "queue_capacity=%u connections=%u\n"
                "latency: avg_queue_wait=%.1fms max_queue_wait=%.1fms "
                "avg_service=%.1fms max_service=%.1fms\n",
                s.submitted, s.accepted, s.completed, s.failed,
                s.cancelled, s.rejectedQueueFull, s.rejectedClientCap,
                s.rejectedShutdown, s.malformed, s.queued, s.running,
                s.workers, s.queueCapacity, s.connectionsOpen,
                s.completed + s.failed
                    ? s.totalQueueWaitMs / double(s.completed + s.failed)
                    : 0.0,
                s.maxQueueWaitMs,
                s.completed + s.failed
                    ? s.totalServiceMs / double(s.completed + s.failed)
                    : 0.0,
                s.maxServiceMs);
            return 0;
        }

        if (cmd == "shutdown") {
            bool drain = true;
            for (; i < argc; ++i)
                if (std::string(argv[i]) == "--no-drain")
                    drain = false;
            client.shutdownServer(drain);
            std::printf("shutdown requested (%s)\n",
                        drain ? "drain" : "immediate");
            return 0;
        }

        std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
        usage(argv[0]);
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "rose_client: %s\n", e.what());
        return 1;
    }
}
