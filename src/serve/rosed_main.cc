/**
 * @file
 * `rosed` — the mission-service daemon binary.
 *
 *   rosed --port 0 --jobs 4 --queue-depth 16 --client-cap 8
 *
 * Binds 127.0.0.1:<port> (0 = ephemeral; the bound port is printed
 * and optionally written to --port-file for scripts), serves mission
 * submissions until a client sends Shutdown or the process receives
 * SIGINT/SIGTERM (drain), and exits 0 on a clean shutdown.
 *
 * With --journal DIR the daemon is crash-safe: submissions and
 * terminal results are write-ahead journaled and supervised jobs
 * persist per-job checkpoints, so a SIGKILLed rosed restarted on the
 * same directory replays its job table, finishes interrupted
 * missions (warm-restored from their checkpoint when possible), and
 * serves every journaled result bit-identically.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "gemmini/gemmini.hh"
#include "serve/server.hh"
#include "util/logging.hh"

using namespace rose;

namespace {

volatile std::sig_atomic_t g_signalled = 0;

void
onSignal(int)
{
    g_signalled = 1;
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --port N         listen port on 127.0.0.1 (0 = ephemeral; "
        "default 0)\n"
        "  --jobs N         mission worker threads (default 2)\n"
        "  --queue-depth N  bounded job queue; excess submissions are\n"
        "                   rejected queue_full (default 16)\n"
        "  --client-cap N   per-connection unfinished-job cap "
        "(default 8)\n"
        "  --no-supervise   run missions bare (no checkpoint/retry)\n"
        "  --journal DIR    crash-safe serving: write-ahead job\n"
        "                   journal + per-job checkpoints in DIR;\n"
        "                   restart on the same DIR to recover\n"
        "  --journal-fsync  fsync every journal append (power-loss\n"
        "                   durability; slower)\n"
        "  --port-file P    write the bound port to file P\n"
        "  --gemm-isa T     GEMM kernel tier: auto|scalar|avx2|\n"
        "                   avx2fma (default auto; overrides the\n"
        "                   ROSE_GEMM_ISA environment variable)\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServerConfig cfg;
    std::string portFile;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--port") {
            cfg.port = uint16_t(std::atoi(next("--port")));
        } else if (arg == "--jobs" || arg == "-j") {
            cfg.workers = std::atoi(next("--jobs"));
        } else if (arg == "--queue-depth") {
            cfg.maxQueueDepth = size_t(std::atol(next("--queue-depth")));
        } else if (arg == "--client-cap") {
            cfg.perClientInFlight =
                uint32_t(std::atoi(next("--client-cap")));
        } else if (arg == "--no-supervise") {
            cfg.supervise = false;
        } else if (arg == "--journal") {
            cfg.journalDir = next("--journal");
        } else if (arg == "--journal-fsync") {
            cfg.journalFsync = true;
        } else if (arg == "--port-file") {
            portFile = next("--port-file");
        } else if (arg == "--gemm-isa") {
            std::string tier = next("--gemm-isa");
            bool is_auto = false;
            gemmini::GemmIsa isa{};
            if (!gemmini::parseGemmIsa(tier, is_auto, isa)) {
                std::fprintf(stderr,
                             "--gemm-isa: unknown tier '%s' (expected "
                             "auto|scalar|avx2|avx2fma)\n",
                             tier.c_str());
                return 2;
            }
            if (is_auto)
                gemmini::resetGemmIsa(); // re-resolve from env/cpuid
            else
                gemmini::setGemmIsa(isa);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    // A peer that vanishes between poll() and send() must surface as
    // an EPIPE errno on that one connection, never kill the daemon.
    // Every send already passes MSG_NOSIGNAL; this covers any code
    // path (and any libc) that slips past it.
    std::signal(SIGPIPE, SIG_IGN);

    try {
        serve::MissionServer server(cfg);
        server.start();
        std::printf("rosed: listening on 127.0.0.1:%u "
                    "(workers=%d queue=%zu client-cap=%u gemm=%s%s%s)\n",
                    unsigned(server.port()), cfg.workers,
                    cfg.maxQueueDepth, cfg.perClientInFlight,
                    gemmini::gemmIsaName(gemmini::activeGemmIsa()),
                    cfg.supervise ? ", supervised" : "",
                    cfg.journalDir.empty() ? "" : ", journaled");
        std::fflush(stdout);
        if (!portFile.empty()) {
            // Written after the listener is live: a script that sees
            // the file can connect immediately.
            std::FILE *f = std::fopen(portFile.c_str(), "w");
            if (!f) {
                std::fprintf(stderr,
                             "rosed: cannot write port file %s\n",
                             portFile.c_str());
                server.stop(false);
                return 1;
            }
            std::fprintf(f, "%u\n", unsigned(server.port()));
            std::fclose(f);
        }

        while (server.running()) {
            if (g_signalled) {
                std::printf("rosed: signal received, draining\n");
                std::fflush(stdout);
                server.requestShutdown(true);
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
        server.waitForShutdown();

        serve::ServerStatsSnapshot s = server.stats();
        std::printf("rosed: shut down (accepted=%llu completed=%llu "
                    "failed=%llu cancelled=%llu shed=%llu)\n",
                    (unsigned long long)s.accepted,
                    (unsigned long long)s.completed,
                    (unsigned long long)s.failed,
                    (unsigned long long)s.cancelled,
                    (unsigned long long)(s.rejectedQueueFull +
                                         s.rejectedClientCap +
                                         s.rejectedShutdown));
        return 0;
    } catch (const serve::JournalError &e) {
        std::fprintf(stderr,
                     "rosed: cannot open journal %s: %s\n",
                     cfg.journalDir.c_str(), e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "rosed: %s\n", e.what());
        return 1;
    }
}
