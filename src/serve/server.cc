#include "server.hh"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <vector>

#include "core/batch.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace rose::serve {

namespace {

void
setNonBlockingOrThrow(int fd)
{
    int flags = fcntl(fd, F_GETFL, 0);
    if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        throw bridge::TransportError(
            std::string("fcntl O_NONBLOCK failed: ") +
            std::strerror(errno));
}

double
msBetween(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

} // namespace

/** Bytes a retained terminal job pins in memory (payload only). */
static uint64_t
jobRetainedBytes(const ServedResult *r)
{
    if (!r)
        return 0;
    return uint64_t(r->trajectoryCsv.size()) +
           uint64_t(r->trajectoryBinary.size()) +
           uint64_t(r->trajectory.size()) *
               sizeof(core::TrajectorySample) +
           uint64_t(r->failureReason.size());
}

/** Scalar-only copy of a result (no CSV / sample payload). */
static ServedResult
scalarResult(const ServedResult &r)
{
    ServedResult s;
    s.completed = r.completed;
    s.status = r.status;
    s.failureReason = r.failureReason;
    s.missionTime = r.missionTime;
    s.collisions = r.collisions;
    s.avgSpeed = r.avgSpeed;
    s.maxSpeed = r.maxSpeed;
    s.distanceTravelled = r.distanceTravelled;
    s.inferences = r.inferences;
    s.avgInferenceLatency = r.avgInferenceLatency;
    s.energyJoules = r.energyJoules;
    s.avgPowerWatts = r.avgPowerWatts;
    s.simulatedCycles = r.simulatedCycles;
    s.trajectorySamples = r.trajectorySamples;
    s.degradedIntervals = r.degradedIntervals;
    s.trajectoryHash = r.trajectoryHash;
    s.queueWaitMs = r.queueWaitMs;
    s.serviceMs = r.serviceMs;
    return s;
}

MissionServer::MissionServer(const ServerConfig &cfg)
    : cfg_(cfg), listener_(cfg.port)
{
    if (cfg_.workers < 1)
        cfg_.workers = 1;
    if (cfg_.maxQueueDepth < 1)
        cfg_.maxQueueDepth = 1;
    if (cfg_.maxRetainedResults < 1)
        cfg_.maxRetainedResults = 1;
    if (cfg_.resultChunkBytes < 1)
        cfg_.resultChunkBytes = 1;
    if (cfg_.resultChunkBytes > kMaxResultChunkBytes)
        cfg_.resultChunkBytes = kMaxResultChunkBytes;
    if (cfg_.streamBacklogBytes < 1)
        cfg_.streamBacklogBytes = 1;
    counters_.workers = uint32_t(cfg_.workers);
    counters_.queueCapacity = uint32_t(cfg_.maxQueueDepth);

    if (cfg_.journalDir.empty())
        return;

    // Crash recovery. Open (replaying + compacting) the journal,
    // then rebuild the job table: terminal jobs come back retained
    // and fetchable, unfinished ones re-enter the queue flagged for
    // a warm restore from their persisted checkpoint. Runs before
    // any thread exists, so mu_ conventions are trivially met.
    journal_ = std::make_unique<JobJournal>(
        cfg_.journalDir, journalFingerprint(cfg_.supervise),
        cfg_.journalFsync);
    JournalReplay rep = journal_->takeReplay();
    // High-water mark across every journaled submit (released ones
    // included): a restarted daemon must never reuse a job id.
    nextJobId_ = std::max(nextJobId_, rep.maxJobId + 1);
    if (rep.recoveredFromCorruption)
        rose_warn("rosed journal: recovered past a torn/corrupt ",
                      "tail (", rep.truncatedBytes,
                      " bytes discarded)");
    for (RecoveredJob &rj : rep.jobs) {
        uint64_t id = rj.jobId;
        Job job;
        job.id = id;
        job.spec = std::move(rj.spec);
        job.idempotencyKey = rj.idempotencyKey;
        job.clientId = 0; // the submitting session died with us
        job.enqueued = Clock::now();
        if (!rj.idempotencyKey.empty())
            idemToJob_[rj.idempotencyKey] = id;
        nextJobId_ = std::max(nextJobId_, id + 1);
        counters_.journalReplayedJobs++;
        if (rj.terminal) {
            job.state = rj.state;
            job.queueWaitMs = rj.result.queueWaitMs;
            job.serviceMs = rj.result.serviceMs;
            if (rj.state != JobState::Cancelled)
                job.result = std::make_shared<const ServedResult>(
                    std::move(rj.result));
            jobs_.emplace(id, std::move(job));
            markTerminalLocked(id);
            journal_->removeCheckpoint(id);
        } else {
            job.state = JobState::Queued;
            job.recovered = true;
            jobs_.emplace(id, std::move(job));
            queue_.push_back(id);
        }
    }
    if (counters_.journalReplayedJobs > 0)
        rose_inform("rosed journal: replayed ",
                    counters_.journalReplayedJobs, " job(s), ",
                    queue_.size(), " requeued");
}

MissionServer::~MissionServer()
{
    stop(false);
}

void
MissionServer::start()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        rose_assert(!started_, "MissionServer started twice");
        started_ = true;
    }
    ioThread_ = std::thread([this] { ioLoop(); });

    // The worker pool is the batch runner's pool primitive: a
    // parallel indexed map over worker slots, each slot's body
    // looping on the shared job queue. Launched from a detached-join
    // helper thread because parallelIndexed() itself blocks until
    // every worker exits (which is exactly what waitForShutdown
    // wants to join on).
    poolLauncher_ = std::thread([this] {
        core::parallelIndexed<int>(size_t(cfg_.workers), cfg_.workers,
                                   [this](size_t i) {
                                       workerLoop(i);
                                       return 0;
                                   });
    });
}

void
MissionServer::requestShutdown(bool drain)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (!started_ || shuttingDown_)
        return;
    shuttingDown_ = true;
    drainOnShutdown_ = drain;
    if (!drain) {
        // Immediate shutdown sheds the whole queue; running missions
        // still finish (missions are never preempted mid-flight).
        for (uint64_t id : queue_) {
            auto it = jobs_.find(id);
            if (it == jobs_.end())
                continue;
            it->second.state = JobState::Cancelled;
            counters_.cancelled++;
            auto fl = inFlightByClient_.find(it->second.clientId);
            if (fl != inFlightByClient_.end() && fl->second > 0)
                fl->second--;
            journalCancelLocked(id);
            markTerminalLocked(id);
        }
        queue_.clear();
    }
    queueCv_.notify_all();
}

void
MissionServer::waitForShutdown()
{
    if (ioThread_.joinable())
        ioThread_.join();
    if (poolLauncher_.joinable())
        poolLauncher_.join();
}

void
MissionServer::stop(bool drain)
{
    requestShutdown(drain);
    waitForShutdown();
}

bool
MissionServer::running() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return started_ && !shutdownComplete_;
}

ServerStatsSnapshot
MissionServer::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return statsLocked();
}

ServerStatsSnapshot
MissionServer::statsLocked() const
{
    ServerStatsSnapshot s = counters_;
    s.queued = uint32_t(queue_.size());
    s.running = runningJobs_;
    s.connectionsOpen = openConnections_;
    s.retainedResultBytes = retainedBytes_;
    s.activeStreams = activeStreams_;
    return s;
}

void
MissionServer::pauseWorkers()
{
    std::lock_guard<std::mutex> lk(mu_);
    workersPaused_ = true;
}

void
MissionServer::resumeWorkers()
{
    std::lock_guard<std::mutex> lk(mu_);
    workersPaused_ = false;
    queueCv_.notify_all();
}

void
MissionServer::dropConnections()
{
    std::lock_guard<std::mutex> lk(mu_);
    kickConnections_ = true;
}

// ------------------------------------------------------------ workers

void
MissionServer::workerLoop(size_t)
{
    for (;;) {
        core::MissionSpec spec;
        uint64_t job_id = 0;
        bool recovered = false;
        Clock::time_point started;
        double queue_wait_ms = 0.0;
        {
            std::unique_lock<std::mutex> lk(mu_);
            // Shutdown overrides pause so a drain can never deadlock
            // behind a paused pool.
            queueCv_.wait(lk, [this] {
                bool runnable = !queue_.empty() &&
                                (!workersPaused_ || shuttingDown_);
                bool stop = shuttingDown_ &&
                            (!drainOnShutdown_ || queue_.empty());
                return runnable || stop;
            });
            if (queue_.empty())
                return; // shutdown (drained or immediate)
            job_id = queue_.front();
            queue_.pop_front();
            Job &job = jobs_[job_id];
            job.state = JobState::Running;
            job.started = Clock::now();
            job.queueWaitMs = msBetween(job.enqueued, job.started);
            spec = job.spec;
            recovered = job.recovered;
            started = job.started;
            queue_wait_ms = job.queueWaitMs;
            runningJobs_++;
        }

        // Execute outside the lock. The supervisor path gives served
        // missions checkpoint/restore + fault retry + degraded-mode
        // recovery; an unperturbed supervised run is bit-identical to
        // runMission(), which is what makes served results hash equal
        // to local ones.
        core::MissionResult result;
        bool threw = false;
        bool warm_restored = false;
        std::string why;
        try {
            core::CosimConfig ccfg = spec.toConfig();
            const double max_sim = ccfg.maxSimSeconds;
            if (cfg_.progressIntervalPeriods > 0) {
                ccfg.progressPeriods = cfg_.progressIntervalPeriods;
                ccfg.progressHook =
                    [this, job_id, max_sim](double sim_t,
                                            uint64_t samples) {
                        std::lock_guard<std::mutex> lk(mu_);
                        ProgressEvent &p = pendingProgress_[job_id];
                        p.jobId = job_id;
                        p.simTimeSeconds = sim_t;
                        p.maxSimSeconds = max_sim;
                        p.samples = samples;
                    };
            }
            if (cfg_.supervise) {
                core::SupervisorConfig sc = cfg_.supervisor;
                // A fixed snapshot cadence is quadratic in mission
                // length (each checkpoint copies the whole trajectory
                // so far); cap the checkpoint count instead so the
                // snapshot overhead stays a bounded fraction of any
                // mission.
                if (cfg_.supervisorCheckpointCap > 0 &&
                    sc.checkpointPeriods > 0) {
                    double soc_hz = ccfg.sync.clocks.socClockHz;
                    double expected =
                        max_sim * soc_hz /
                        double(std::max<uint64_t>(
                            1, spec.syncGranularity));
                    uint64_t floor_cadence =
                        uint64_t(expected /
                                 double(cfg_.supervisorCheckpointCap)) +
                        1;
                    if (sc.checkpointPeriods < floor_cadence)
                        sc.checkpointPeriods = floor_cadence;
                }
                // Journaled jobs persist their checkpoint ring per
                // job; a journal-replayed job warm-restores from the
                // snapshot its previous incarnation left behind
                // (supervisor falls back to a cold start on any
                // problem — resume never fails a mission).
                if (journal_) {
                    sc.checkpointPath =
                        journal_->checkpointPathFor(job_id);
                    if (recovered)
                        sc.resumeFromPath = sc.checkpointPath;
                }
                core::MissionSupervisor sup(ccfg, sc);
                result = sup.run();
                warm_restored = sup.stats().diskResumes > 0;
            } else {
                core::CoSimulation sim(ccfg);
                result = sim.run();
            }
        } catch (const std::exception &e) {
            threw = true;
            why = e.what();
        }
        ServedResult served;
        if (!threw) {
            served = marshalResult(result);
        } else {
            served.failureReason = why;
            served.trajectoryHash = fnv1a(served.trajectoryCsv);
        }
        double service_ms = msBetween(started, Clock::now());
        served.queueWaitMs = queue_wait_ms;
        served.serviceMs = service_ms;
        JobState terminal_state =
            threw ? JobState::Failed : JobState::Done;

        // Write-ahead: the terminal record hits the journal before
        // the in-memory transition publishes it, so a crash between
        // the two re-runs the job (duplicated work) rather than
        // acking a result that would evaporate (lost work). Journal
        // trouble is logged, never fatal — the daemon degrades to
        // in-memory serving.
        if (journal_) {
            try {
                journal_->appendTerminal(job_id, terminal_state,
                                         served);
                journal_->removeCheckpoint(job_id);
            } catch (const JournalError &e) {
                rose_warn("rosed journal append failed for job ",
                              job_id, ": ", e.what());
            }
        }

        {
            std::lock_guard<std::mutex> lk(mu_);
            Job &job = jobs_[job_id];
            job.serviceMs = service_ms;
            job.state = terminal_state;
            job.result = std::make_shared<const ServedResult>(
                std::move(served));
            if (threw)
                counters_.failed++;
            else
                counters_.completed++;
            if (warm_restored)
                counters_.warmRestoredJobs++;
            counters_.totalQueueWaitMs += job.queueWaitMs;
            counters_.maxQueueWaitMs =
                std::max(counters_.maxQueueWaitMs, job.queueWaitMs);
            counters_.totalServiceMs += job.serviceMs;
            counters_.maxServiceMs =
                std::max(counters_.maxServiceMs, job.serviceMs);
            runningJobs_--;
            pendingProgress_.erase(job_id);
            if (job.clientId != 0) {
                auto fl = inFlightByClient_.find(job.clientId);
                if (fl != inFlightByClient_.end() && fl->second > 0)
                    fl->second--;
            }
            markTerminalLocked(job_id);
            // A drain may complete with this job: wake idle workers
            // (and let the IO loop observe quiescence on its next
            // poll tick).
            if (shuttingDown_)
                queueCv_.notify_all();
        }
    }
}

// ----------------------------------------------------------------- IO

void
MissionServer::ioLoop()
{
    bool listenerOpen = true;

    for (;;) {
        // Exit once shutdown is requested, the job engine is
        // quiescent (queue drained or shed, nothing running), and no
        // live connection still has buffered replies or an open
        // result stream — the final frames must reach their peers. A
        // peer that refuses to drain cannot wedge the exit: its
        // progress deadline below marks the connection dead.
        {
            bool quiescent;
            {
                std::lock_guard<std::mutex> lk(mu_);
                quiescent = shuttingDown_ && queue_.empty() &&
                            runningJobs_ == 0;
                if (shuttingDown_ && listenerOpen) {
                    // Stop accepting the moment shutdown begins;
                    // existing connections stay serviceable while
                    // draining.
                    listener_.close();
                    listenerOpen = false;
                }
            }
            if (quiescent) {
                bool pending = false;
                for (const auto &c : conns_)
                    if (!c->dead && (c->pendingTx() > 0 || c->stream))
                        pending = true;
                if (!pending)
                    break;
            }
        }

        // Snapshot the connection count the pollfd set covers:
        // acceptPending() below can append to conns_, and those new
        // connections have no pfds entry until the next iteration.
        const size_t polledConns = conns_.size();
        std::vector<pollfd> pfds;
        pfds.reserve(polledConns + 1);
        if (listenerOpen)
            pfds.push_back(pollfd{listener_.fd(), POLLIN, 0});
        for (const auto &c : conns_) {
            short events = POLLIN;
            if (c->pendingTx() > 0)
                events |= POLLOUT;
            pfds.push_back(pollfd{c->fd, events, 0});
        }

        int rc = ::poll(pfds.data(), nfds_t(pfds.size()),
                        cfg_.pollIntervalMs);
        if (rc < 0 && errno != EINTR) {
            rose_warn("rosed IO poll failed: ",
                          std::strerror(errno));
            break;
        }

        size_t idx = 0;
        if (listenerOpen) {
            if (pfds[idx].revents & POLLIN)
                acceptPending();
            idx++;
        }
        for (size_t i = 0; i < polledConns; ++i, ++idx) {
            Connection &conn = *conns_[i];
            if (pfds[idx].revents & POLLOUT)
                flushSend(conn);
            if (pfds[idx].revents &
                (POLLIN | POLLERR | POLLHUP | POLLNVAL))
                serviceConnection(conn);
            // A flushed stream wants refilling even with no new
            // input: generate the next chunks (and any requests
            // deferred behind the stream) now that the backlog has
            // room.
            if (!conn.dead && conn.stream &&
                !drainRequests(conn))
                conn.dead = true;
            if (!conn.dead && conn.pendingTx() > 0 &&
                Clock::now() >= conn.txDeadline) {
                rose_warn("rosed reply stalled on connection ",
                              conn.id, " (", conn.pendingTx(),
                              " bytes unflushed for ",
                              cfg_.sendTimeoutMs,
                              " ms); dropping it");
                conn.dead = true;
            }
        }

        // Push coalesced mission progress to owning connections.
        flushProgress();

        // Chaos hook: sever everything on request, as if the network
        // dropped out from under every client at once.
        {
            bool kick = false;
            {
                std::lock_guard<std::mutex> lk(mu_);
                kick = kickConnections_;
                kickConnections_ = false;
            }
            if (kick)
                for (auto &c : conns_)
                    c->dead = true;
        }

        // Retire dead connections and release their sessions.
        for (size_t i = 0; i < conns_.size();) {
            if (conns_[i]->dead) {
                closeConnection(*conns_[i]);
                conns_.erase(conns_.begin() + std::ptrdiff_t(i));
            } else {
                ++i;
            }
        }
    }

    if (listenerOpen)
        listener_.close();
    for (auto &c : conns_)
        closeConnection(*c);
    conns_.clear();

    std::lock_guard<std::mutex> lk(mu_);
    shutdownComplete_ = true;
}

void
MissionServer::acceptPending()
{
    for (;;) {
        int fd = -1;
        try {
            fd = listener_.acceptFd(0);
        } catch (const bridge::TransportError &e) {
            rose_warn("rosed accept failed: ", e.what());
            return;
        }
        if (fd < 0)
            return;
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        try {
            setNonBlockingOrThrow(fd);
        } catch (const bridge::TransportError &e) {
            rose_warn("rosed connection setup failed: ", e.what());
            ::close(fd);
            continue;
        }
        int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        if (cfg_.sendBufferBytes > 0)
            setsockopt(fd, SOL_SOCKET, SO_SNDBUF,
                       &cfg_.sendBufferBytes,
                       sizeof(cfg_.sendBufferBytes));
        {
            std::lock_guard<std::mutex> lk(mu_);
            conn->id = nextConnId_++;
            counters_.connectionsAccepted++;
            openConnections_++;
            inFlightByClient_[conn->id] = 0;
        }
        conns_.push_back(std::move(conn));
    }
}

void
MissionServer::serviceConnection(Connection &conn)
{
    uint8_t tmp[65536];
    for (;;) {
        ssize_t n = ::recv(conn.fd, tmp, sizeof(tmp), 0);
        if (n > 0) {
            conn.rx.append(tmp, size_t(n));
            continue;
        }
        if (n == 0) {
            conn.dead = true; // orderly peer close
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        conn.dead = true; // reset or hard error
        break;
    }
    if (!drainRequests(conn))
        conn.dead = true;
}

bool
MissionServer::drainRequests(Connection &conn)
{
    for (;;) {
        // An open result stream defers everything behind it: its
        // frames are generated first (bounded by the backlog cap),
        // and only once it closes are further buffered requests
        // decoded — strict per-connection ordering, per-stream
        // memory.
        if (conn.stream) {
            pumpStream(conn);
            if (conn.dead)
                return false;
            if (conn.stream)
                return true; // backlog full; POLLOUT resumes us
        }
        Message req;
        std::string err;
        FrameStatus st = conn.rx.next(req, &err);
        if (st == FrameStatus::NeedMore)
            return true;
        if (st == FrameStatus::Malformed) {
            std::lock_guard<std::mutex> lk(mu_);
            counters_.malformed++;
            rose_warn("rosed dropping connection ", conn.id,
                          ": ", err);
            return false;
        }
        if (!isRequest(req.type)) {
            std::lock_guard<std::mutex> lk(mu_);
            counters_.malformed++;
            rose_warn("rosed dropping connection ", conn.id,
                          ": unexpected response-type message ",
                          msgTypeName(req.type));
            return false;
        }
        std::optional<Message> reply = handleRequest(conn, req);
        if (reply)
            sendMessage(conn, *reply);
        if (conn.dead)
            return false;
    }
}

void
MissionServer::pumpStream(Connection &conn)
{
    ResultStream &st = *conn.stream;
    while (!conn.dead && conn.pendingTx() < cfg_.streamBacklogBytes) {
        if (st.offset >= st.totalBytes) {
            sendMessage(conn, encodeResultEnd(st.end));
            conn.stream.reset();
            std::lock_guard<std::mutex> lk(mu_);
            counters_.streamsCompleted++;
            if (activeStreams_ > 0)
                activeStreams_--;
            return;
        }
        ResultChunkData c;
        c.jobId = st.end.jobId;
        c.seq = st.seq++;
        if (st.encoding == TrajectoryEncoding::Csv) {
            size_t n = size_t(std::min<uint64_t>(
                cfg_.resultChunkBytes, st.totalBytes - st.offset));
            const uint8_t *base =
                reinterpret_cast<const uint8_t *>(
                    st.src->trajectoryCsv.data()) +
                st.offset;
            c.bytes.assign(base, base + n);
        } else {
            // Slice the binary payload quantized once at mission end
            // (marshalResult); chunks stay record-aligned so a
            // resumed stream's byte sequence is identical.
            size_t per_chunk = std::max<size_t>(
                1, cfg_.resultChunkBytes /
                       kTrajectoryBinaryRecordBytes) *
                kTrajectoryBinaryRecordBytes;
            size_t n = size_t(std::min<uint64_t>(
                per_chunk, st.totalBytes - st.offset));
            const uint8_t *base =
                st.src->trajectoryBinary.data() + st.offset;
            c.bytes.assign(base, base + n);
        }
        st.offset += c.bytes.size();
        sendMessage(conn, encodeResultChunk(c));
        std::lock_guard<std::mutex> lk(mu_);
        counters_.streamedChunks++;
        counters_.streamedPayloadBytes += c.bytes.size();
    }
}

void
MissionServer::flushProgress()
{
    std::vector<std::pair<uint64_t, ProgressEvent>> events;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (pendingProgress_.empty())
            return;
        events.reserve(pendingProgress_.size());
        for (const auto &[job_id, ev] : pendingProgress_) {
            auto it = jobs_.find(job_id);
            if (it == jobs_.end() || it->second.clientId == 0)
                continue; // orphaned: nobody to push to
            events.emplace_back(it->second.clientId, ev);
        }
        pendingProgress_.clear();
    }
    uint64_t pushed = 0;
    for (const auto &[client_id, ev] : events) {
        for (auto &c : conns_) {
            if (c->id != client_id || c->dead)
                continue;
            // Progress frames may interleave with another job's
            // result stream on this connection (the client
            // dispatches them before its assembler); a job that is
            // streaming is terminal, so its own stream can never
            // see its own Progress.
            sendMessage(*c, encodeProgress(ev));
            pushed++;
            break;
        }
    }
    if (pushed > 0) {
        std::lock_guard<std::mutex> lk(mu_);
        counters_.progressEvents += pushed;
    }
}

std::optional<Message>
MissionServer::handleRequest(Connection &conn, const Message &req)
{
    try {
        switch (req.type) {
          case MsgType::SubmitMission:
            return handleSubmit(conn, req);
          case MsgType::QueryStatus:
            return handleStatus(req);
          case MsgType::FetchResult:
            return handleFetch(conn, req);
          case MsgType::CancelMission:
            return handleCancel(req);
          case MsgType::AckResult:
            return handleAck(req);
          case MsgType::ServerStats:
            return handleStats();
          case MsgType::Shutdown:
            return handleShutdown(req);
          default:
            return encodeErrorReply(
                std::string("unhandled request type ") +
                msgTypeName(req.type));
        }
    } catch (const ProtocolError &e) {
        return encodeErrorReply(std::string("bad request: ") +
                                e.what());
    } catch (const bridge::PayloadError &e) {
        return encodeErrorReply(std::string("bad request: ") +
                                e.what());
    }
}

Message
MissionServer::handleSubmit(Connection &conn, const Message &req)
{
    SubmitRequest sreq = decodeSubmitRequest(req);
    core::MissionSpec &spec = sreq.spec;

    // Cheap semantic validation up front: a spec that cannot run
    // should cost an admission decision, not a worker slot. Mission
    // *length* is deliberately not validated: a trajectory of any
    // size streams in bounded chunks.
    auto bad = [&](const std::string &why) {
        std::lock_guard<std::mutex> lk(mu_);
        counters_.submitted++;
        return encodeRejected({RejectReason::BadRequest, why});
    };
    if (spec.modelDepth < 1 || spec.modelDepth > 64)
        return bad("modelDepth out of range [1,64]");
    if (!std::isfinite(spec.velocity) || spec.velocity < 0.0)
        return bad("velocity must be finite and non-negative");
    if (!std::isfinite(spec.maxSimSeconds) ||
        spec.maxSimSeconds <= 0.0 || spec.maxSimSeconds > 3600.0)
        return bad("maxSimSeconds out of range (0,3600]");
    if (spec.syncGranularity == 0)
        return bad("syncGranularity must be positive");

    std::lock_guard<std::mutex> lk(mu_);
    counters_.submitted++;

    // Idempotent resubmission: a key we have already admitted (this
    // incarnation or a journal-replayed one) returns the existing
    // job id instead of running the mission twice — this is what
    // makes the client's submit-retry after a reconnect safe.
    if (!sreq.idempotencyKey.empty()) {
        auto ij = idemToJob_.find(sreq.idempotencyKey);
        if (ij != idemToJob_.end() && jobs_.count(ij->second)) {
            counters_.dedupedSubmits++;
            SubmitOkReply ok;
            ok.jobId = ij->second;
            for (size_t i = 0; i < queue_.size(); ++i)
                if (queue_[i] == ok.jobId)
                    ok.queuePosition = uint32_t(i);
            return encodeSubmitOk(ok);
        }
    }

    if (shuttingDown_) {
        counters_.rejectedShutdown++;
        return encodeRejected(
            {RejectReason::ShuttingDown, "daemon is shutting down"});
    }
    if (queue_.size() >= cfg_.maxQueueDepth) {
        counters_.rejectedQueueFull++;
        return encodeRejected(
            {RejectReason::QueueFull,
             detail::concat("queue depth ", cfg_.maxQueueDepth,
                            " reached; resubmit later")});
    }
    uint32_t &inflight = inFlightByClient_[conn.id];
    if (inflight >= cfg_.perClientInFlight) {
        counters_.rejectedClientCap++;
        return encodeRejected(
            {RejectReason::ClientCap,
             detail::concat("per-client in-flight cap ",
                            cfg_.perClientInFlight, " reached")});
    }

    SubmitOkReply ok;
    ok.jobId = nextJobId_++;
    ok.queuePosition = uint32_t(queue_.size());

    // Write-ahead: the submission is journaled before admission
    // takes effect; if the append fails the job is refused outright
    // (admitting it would break the crash-recovery contract).
    if (journal_) {
        try {
            journal_->appendSubmit(ok.jobId, sreq.idempotencyKey,
                                   spec);
        } catch (const JournalError &e) {
            nextJobId_--;
            rose_warn("rosed journal append failed: ", e.what());
            return encodeRejected(
                {RejectReason::BadRequest,
                 std::string("journal append failed: ") + e.what()});
        }
    }

    Job job;
    job.id = ok.jobId;
    job.spec = std::move(spec);
    job.clientId = conn.id;
    job.idempotencyKey = sreq.idempotencyKey;
    job.enqueued = Clock::now();
    if (!sreq.idempotencyKey.empty())
        idemToJob_[sreq.idempotencyKey] = ok.jobId;
    jobs_.emplace(ok.jobId, std::move(job));
    queue_.push_back(ok.jobId);
    inflight++;
    counters_.accepted++;
    queueCv_.notify_one();
    return encodeSubmitOk(ok);
}

Message
MissionServer::handleStatus(const Message &req)
{
    uint64_t id = decodeQueryStatus(req);
    std::lock_guard<std::mutex> lk(mu_);
    StatusInfo s;
    s.jobId = id;
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        s.state = JobState::Unknown;
        return encodeStatusReply(s);
    }
    const Job &job = it->second;
    s.state = job.state;
    if (job.state == JobState::Queued) {
        for (size_t i = 0; i < queue_.size(); ++i) {
            if (queue_[i] == id) {
                s.queuePosition = uint32_t(i);
                break;
            }
        }
        s.queueWaitMs = msBetween(job.enqueued, Clock::now());
    } else {
        s.queueWaitMs = job.queueWaitMs;
        s.serviceMs = job.state == JobState::Running
                          ? msBetween(job.started, Clock::now())
                          : job.serviceMs;
    }
    return encodeStatusReply(s);
}

std::optional<Message>
MissionServer::handleFetch(Connection &conn, const Message &req)
{
    FetchRequest freq = decodeFetchResult(req);
    std::lock_guard<std::mutex> lk(mu_);
    auto it = jobs_.find(freq.jobId);
    if (it == jobs_.end()) {
        StatusInfo s;
        s.jobId = freq.jobId;
        s.state = JobState::Unknown;
        return encodeStatusReply(s);
    }
    Job &job = it->second;
    if (job.state == JobState::Done || job.state == JobState::Failed) {
        std::shared_ptr<const ServedResult> src = job.result;
        if (!src) // Cancelled-at-shutdown records carry no payload
            return encodeErrorReply("job has no result payload");
        TrajectoryEncoding enc = freq.encoding;
        if (enc == TrajectoryEncoding::Binary) {
            // Binary requires the payload cache marshalResult built
            // at mission end: a result that never went through
            // marshalResult (the worker threw) has no cache, a
            // journal-replayed one retains only the CSV, and a
            // collision count past u32 could not ride the fixed-width
            // record so marshalResult left the cache empty — all fall
            // back to the always-correct CSV payload.
            bool encodable =
                !src->trajectoryCsv.empty() &&
                uint64_t(src->trajectoryBinary.size()) ==
                    uint64_t(src->trajectorySamples) *
                        kTrajectoryBinaryRecordBytes;
            if (!encodable) {
                if (freq.resumeOffset > 0)
                    // A resumed binary stream must slice the exact
                    // byte sequence the first attempt produced; if
                    // binary is no longer servable the offsets would
                    // disagree. The client restarts from 0 (in CSV).
                    return encodeErrorReply(
                        "binary resume unavailable for this job; "
                        "restart from offset 0");
                enc = TrajectoryEncoding::Csv;
            }
        }

        auto stream = std::make_unique<ResultStream>();
        stream->encoding = enc;
        stream->src = src;
        stream->totalBytes =
            enc == TrajectoryEncoding::Binary
                ? uint64_t(src->trajectoryBinary.size())
                : uint64_t(src->trajectoryCsv.size());

        // Resume: the client presents how many payload bytes it
        // already holds; the stream restarts its chunk sequence at 0
        // from that offset. ResultEnd.payloadBytes stays the TOTAL
        // payload size so the assembler's final accounting (and the
        // FNV-1a hash check) is identical either way.
        if (freq.resumeOffset > stream->totalBytes)
            return encodeErrorReply(detail::concat(
                "resume offset ", freq.resumeOffset,
                " exceeds payload size ", stream->totalBytes));
        if (enc == TrajectoryEncoding::Binary &&
            freq.resumeOffset % kTrajectoryBinaryRecordBytes != 0)
            return encodeErrorReply(detail::concat(
                "binary resume offset must be a multiple of ",
                kTrajectoryBinaryRecordBytes));
        stream->offset = freq.resumeOffset;

        ResultEndData &end = stream->end;
        end.jobId = freq.jobId;
        end.state = job.state;
        end.encoding = enc;
        end.payloadBytes = stream->totalBytes;
        uint64_t to_send = stream->totalBytes - freq.resumeOffset;
        if (to_send > 0) {
            uint64_t slice = cfg_.resultChunkBytes;
            if (enc == TrajectoryEncoding::Binary)
                slice = std::max<uint64_t>(
                            1, cfg_.resultChunkBytes /
                                   kTrajectoryBinaryRecordBytes) *
                        kTrajectoryBinaryRecordBytes;
            end.chunkCount = uint32_t((to_send + slice - 1) / slice);
        }
        end.trajectoryHash = src->trajectoryHash;
        // Integrity hash over the payload bytes as they travel: the
        // canonical-CSV hash for a Csv stream (the payload IS the
        // CSV), the cached binary-record hash for Binary.
        end.payloadHash = enc == TrajectoryEncoding::Binary
                              ? src->trajectoryBinaryHash
                              : src->trajectoryHash;
        end.result = scalarResult(*src);

        // The job record stays retained (and fetchable) until the
        // client's hash-verified AckResult releases it — a stream
        // that dies with its connection costs nothing; the client
        // reconnects and resumes from its byte offset.
        counters_.streamsStarted++;
        if (freq.resumeOffset > 0)
            counters_.streamsResumed++;
        activeStreams_++;
        conn.stream = std::move(stream);
        return std::nullopt; // the stream frames are the reply
    }
    // Not finished: answer with the lifecycle state so clients can
    // poll FetchResult alone.
    StatusInfo s;
    s.jobId = freq.jobId;
    s.state = job.state;
    s.queueWaitMs = job.state == JobState::Queued
                        ? msBetween(job.enqueued, Clock::now())
                        : job.queueWaitMs;
    if (job.state == JobState::Running)
        s.serviceMs = msBetween(job.started, Clock::now());
    return encodeStatusReply(s);
}

Message
MissionServer::handleCancel(const Message &req)
{
    uint64_t id = decodeCancelMission(req);
    std::lock_guard<std::mutex> lk(mu_);
    CancelInfo c;
    c.jobId = id;
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        c.outcome = CancelOutcome::UnknownJob;
        return encodeCancelReply(c);
    }
    Job &job = it->second;
    switch (job.state) {
      case JobState::Queued: {
        for (size_t i = 0; i < queue_.size(); ++i) {
            if (queue_[i] == id) {
                queue_.erase(queue_.begin() + std::ptrdiff_t(i));
                break;
            }
        }
        job.state = JobState::Cancelled;
        counters_.cancelled++;
        auto fl = inFlightByClient_.find(job.clientId);
        if (fl != inFlightByClient_.end() && fl->second > 0)
            fl->second--;
        journalCancelLocked(id);
        markTerminalLocked(id);
        c.outcome = CancelOutcome::Dequeued;
        break;
      }
      case JobState::Running:
        c.outcome = CancelOutcome::TooLate;
        break;
      case JobState::Done:
      case JobState::Failed:
        c.outcome = CancelOutcome::AlreadyDone;
        break;
      case JobState::Cancelled:
        c.outcome = CancelOutcome::Dequeued;
        break;
      case JobState::Unknown:
        c.outcome = CancelOutcome::UnknownJob;
        break;
    }
    return encodeCancelReply(c);
}

Message
MissionServer::handleAck(const Message &req)
{
    AckRequest ack = decodeAckResult(req);
    std::lock_guard<std::mutex> lk(mu_);
    AckInfo info;
    info.jobId = ack.jobId;
    auto it = jobs_.find(ack.jobId);
    if (it == jobs_.end() || (it->second.state != JobState::Done &&
                              it->second.state != JobState::Failed)) {
        // Unknown covers the retried ack whose first attempt already
        // released the job — clients treat it as success.
        info.outcome = AckOutcome::UnknownJob;
        return encodeAckReply(info);
    }
    // The ack carries the payload hash of whichever encoding the
    // client assembled: the canonical-CSV hash (Csv stream) or the
    // binary-record hash (Binary stream) both prove possession of
    // the bytes we hold.
    bool holds_our_bytes;
    if (const auto &res = it->second.result) {
        holds_our_bytes =
            ack.trajectoryHash == res->trajectoryHash ||
            (!res->trajectoryBinary.empty() &&
             ack.trajectoryHash == res->trajectoryBinaryHash);
    } else {
        holds_our_bytes =
            ack.trajectoryHash == fnv1a(std::string_view{});
    }
    if (!holds_our_bytes) {
        // The client assembled different bytes than we hold: keep
        // the record so it can refetch from offset 0.
        info.outcome = AckOutcome::HashMismatch;
        return encodeAckReply(info);
    }
    releaseJobLocked(ack.jobId);
    counters_.resultsAcked++;
    info.outcome = AckOutcome::Released;
    return encodeAckReply(info);
}

Message
MissionServer::handleStats()
{
    std::lock_guard<std::mutex> lk(mu_);
    return encodeStatsReply(statsLocked());
}

Message
MissionServer::handleShutdown(const Message &req)
{
    bool drain = decodeShutdown(req);
    // The reply is sent by the dispatcher after this returns; the IO
    // loop keeps servicing connections until the drain completes, so
    // the flag can be set right away.
    requestShutdown(drain);
    return encodeShutdownReply();
}

void
MissionServer::sendMessage(Connection &conn, const Message &m)
{
    if (conn.dead)
        return;
    // Compact the already-flushed prefix before growing the buffer.
    if (conn.txPos > 0 && conn.txPos == conn.tx.size()) {
        conn.tx.clear();
        conn.txPos = 0;
    } else if (conn.txPos > 4096 &&
               conn.txPos >= conn.tx.size() / 2) {
        conn.tx.erase(conn.tx.begin(),
                      conn.tx.begin() + std::ptrdiff_t(conn.txPos));
        conn.txPos = 0;
    }
    bool wasIdle = conn.pendingTx() == 0;
    serializeMessage(m, conn.tx);
    if (conn.pendingTx() > cfg_.maxTxBacklogBytes) {
        rose_warn("rosed reply backlog on connection ", conn.id,
                      " exceeds ", cfg_.maxTxBacklogBytes,
                      " bytes; dropping it");
        conn.dead = true;
        return;
    }
    if (wasIdle)
        conn.txDeadline = Clock::now() +
                          std::chrono::milliseconds(cfg_.sendTimeoutMs);
    // Opportunistic flush: most replies fit the socket buffer and
    // leave nothing for the POLLOUT path.
    flushSend(conn);
}

void
MissionServer::flushSend(Connection &conn)
{
    if (conn.dead)
        return;
    while (conn.txPos < conn.tx.size()) {
        ssize_t n = ::send(conn.fd, conn.tx.data() + conn.txPos,
                           conn.tx.size() - conn.txPos, MSG_NOSIGNAL);
        if (n > 0) {
            conn.txPos += size_t(n);
            // Any forward progress restarts the stall deadline.
            conn.txDeadline =
                Clock::now() +
                std::chrono::milliseconds(cfg_.sendTimeoutMs);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return; // kernel buffer full; POLLOUT will resume
        conn.dead = true; // peer gone mid-reply
        return;
    }
    conn.tx.clear();
    conn.txPos = 0;
}

void
MissionServer::closeConnection(Connection &conn)
{
    if (conn.fd >= 0) {
        ::close(conn.fd);
        conn.fd = -1;
    }
    releaseClientJobs(conn.id);
    std::lock_guard<std::mutex> lk(mu_);
    if (conn.stream) {
        // The stream dies with the connection, but its payload is
        // shared with the retained job record, which stays fetchable
        // — the client reconnects and resumes from its byte offset.
        conn.stream.reset();
        if (activeStreams_ > 0)
            activeStreams_--;
    }
    if (openConnections_ > 0)
        openConnections_--;
}

void
MissionServer::releaseClientJobs(uint64_t client_id)
{
    std::lock_guard<std::mutex> lk(mu_);
    // Queued jobs of a vanished client are shed (their results could
    // never be fetched... they could, by job id, but the session is
    // gone and the queue slot is better spent on live clients).
    // Exception: a keyed submission is a client declaring it intends
    // to come back — those stay queued (orphaned below) so the
    // reconnect's idempotent resubmit finds a live job, not a
    // Cancelled tombstone.
    for (size_t i = 0; i < queue_.size();) {
        auto it = jobs_.find(queue_[i]);
        if (it != jobs_.end() && it->second.clientId == client_id &&
            it->second.idempotencyKey.empty()) {
            uint64_t id = queue_[i];
            it->second.state = JobState::Cancelled;
            counters_.cancelled++;
            queue_.erase(queue_.begin() + std::ptrdiff_t(i));
            journalCancelLocked(id);
            markTerminalLocked(id);
        } else {
            ++i;
        }
    }
    // Running/finished jobs are orphaned, not killed: the mission
    // completes and the result stays fetchable by job id.
    for (auto &[id, job] : jobs_) {
        if (job.clientId == client_id)
            job.clientId = 0;
    }
    inFlightByClient_.erase(client_id);
}

void
MissionServer::markTerminalLocked(uint64_t job_id)
{
    auto it = jobs_.find(job_id);
    if (it != jobs_.end())
        retainedBytes_ += jobRetainedBytes(it->second.result.get());
    terminalOrder_.push_back(job_id);
    // Ids already released by an ack just fall out of the FIFO; the
    // release below is a no-op for them.
    auto evictOldest = [this] {
        uint64_t oldest = terminalOrder_.front();
        terminalOrder_.pop_front();
        releaseJobLocked(oldest);
    };
    while (terminalOrder_.size() > cfg_.maxRetainedResults)
        evictOldest();
    // Byte bound: evict oldest-first until the account fits, but
    // never the newest entry — one oversized result stays fetchable
    // rather than evaporating the moment it finishes.
    while (retainedBytes_ > cfg_.maxRetainedResultBytes &&
           terminalOrder_.size() > 1)
        evictOldest();
}

bool
MissionServer::releaseJobLocked(uint64_t job_id)
{
    auto it = jobs_.find(job_id);
    if (it == jobs_.end())
        return false;
    Job &job = it->second;
    retainedBytes_ -=
        std::min(retainedBytes_, jobRetainedBytes(job.result.get()));
    if (!job.idempotencyKey.empty()) {
        auto ij = idemToJob_.find(job.idempotencyKey);
        if (ij != idemToJob_.end() && ij->second == job_id)
            idemToJob_.erase(ij);
    }
    if (journal_) {
        try {
            journal_->appendReleased(job_id);
        } catch (const JournalError &e) {
            rose_warn("rosed journal release failed for job ",
                          job_id, ": ", e.what());
        }
        journal_->removeCheckpoint(job_id);
    }
    jobs_.erase(it);
    return true;
}

void
MissionServer::journalCancelLocked(uint64_t job_id)
{
    if (!journal_)
        return;
    try {
        // A cancellation is terminal with an empty result; on replay
        // the job comes back as a Cancelled tombstone, not requeued.
        journal_->appendTerminal(job_id, JobState::Cancelled,
                                 ServedResult{});
    } catch (const JournalError &e) {
        rose_warn("rosed journal cancel failed for job ", job_id,
                      ": ", e.what());
    }
    journal_->removeCheckpoint(job_id);
}

} // namespace rose::serve
