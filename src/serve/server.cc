#include "server.hh"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <vector>

#include "core/batch.hh"
#include "sync/synchronizer.hh"
#include "util/logging.hh"

namespace rose::serve {

namespace {

void
setNonBlockingOrThrow(int fd)
{
    int flags = fcntl(fd, F_GETFL, 0);
    if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        throw bridge::TransportError(
            std::string("fcntl O_NONBLOCK failed: ") +
            std::strerror(errno));
}

double
msBetween(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

/**
 * Strict lower bound on one trajectory CSV row: 11 cells of at least
 * one character, 10 commas, one newline. Using the minimum (real rows
 * run ~4x larger) means the admission check below can never reject a
 * spec whose result would actually have fit; specs in the gray zone
 * are admitted and demoted at completion by fitResultToWire instead.
 */
constexpr double kMinCsvBytesPerSample = 22.0;

/**
 * Guaranteed-minimum size of a spec's trajectory CSV. One sample is
 * recorded per sync period, and one period is syncGranularity SoC
 * cycles (MissionSpec::toConfig leaves the default 1 GHz clock and
 * one-sample-per-period cadence in place).
 */
double
minTrajectoryCsvBytes(const core::MissionSpec &spec)
{
    double socHz = sync::SyncConfig{}.clocks.socClockHz;
    double periods =
        spec.maxSimSeconds * socHz / double(spec.syncGranularity);
    return periods * kMinCsvBytesPerSample;
}

} // namespace

MissionServer::MissionServer(const ServerConfig &cfg)
    : cfg_(cfg), listener_(cfg.port)
{
    if (cfg_.workers < 1)
        cfg_.workers = 1;
    if (cfg_.maxQueueDepth < 1)
        cfg_.maxQueueDepth = 1;
    if (cfg_.maxRetainedResults < 1)
        cfg_.maxRetainedResults = 1;
    counters_.workers = uint32_t(cfg_.workers);
    counters_.queueCapacity = uint32_t(cfg_.maxQueueDepth);
}

MissionServer::~MissionServer()
{
    stop(false);
}

void
MissionServer::start()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        rose_assert(!started_, "MissionServer started twice");
        started_ = true;
    }
    ioThread_ = std::thread([this] { ioLoop(); });

    // The worker pool is the batch runner's pool primitive: a
    // parallel indexed map over worker slots, each slot's body
    // looping on the shared job queue. Launched from a detached-join
    // helper thread because parallelIndexed() itself blocks until
    // every worker exits (which is exactly what waitForShutdown
    // wants to join on).
    poolLauncher_ = std::thread([this] {
        core::parallelIndexed<int>(size_t(cfg_.workers), cfg_.workers,
                                   [this](size_t i) {
                                       workerLoop(i);
                                       return 0;
                                   });
    });
}

void
MissionServer::requestShutdown(bool drain)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (!started_ || shuttingDown_)
        return;
    shuttingDown_ = true;
    drainOnShutdown_ = drain;
    if (!drain) {
        // Immediate shutdown sheds the whole queue; running missions
        // still finish (missions are never preempted mid-flight).
        for (uint64_t id : queue_) {
            auto it = jobs_.find(id);
            if (it == jobs_.end())
                continue;
            it->second.state = JobState::Cancelled;
            counters_.cancelled++;
            auto fl = inFlightByClient_.find(it->second.clientId);
            if (fl != inFlightByClient_.end() && fl->second > 0)
                fl->second--;
            markTerminalLocked(id);
        }
        queue_.clear();
    }
    queueCv_.notify_all();
}

void
MissionServer::waitForShutdown()
{
    if (ioThread_.joinable())
        ioThread_.join();
    if (poolLauncher_.joinable())
        poolLauncher_.join();
}

void
MissionServer::stop(bool drain)
{
    requestShutdown(drain);
    waitForShutdown();
}

bool
MissionServer::running() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return started_ && !shutdownComplete_;
}

ServerStatsSnapshot
MissionServer::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return statsLocked();
}

ServerStatsSnapshot
MissionServer::statsLocked() const
{
    ServerStatsSnapshot s = counters_;
    s.queued = uint32_t(queue_.size());
    s.running = runningJobs_;
    s.connectionsOpen = openConnections_;
    return s;
}

void
MissionServer::pauseWorkers()
{
    std::lock_guard<std::mutex> lk(mu_);
    workersPaused_ = true;
}

void
MissionServer::resumeWorkers()
{
    std::lock_guard<std::mutex> lk(mu_);
    workersPaused_ = false;
    queueCv_.notify_all();
}

// ------------------------------------------------------------ workers

void
MissionServer::workerLoop(size_t)
{
    for (;;) {
        core::MissionSpec spec;
        uint64_t job_id = 0;
        {
            std::unique_lock<std::mutex> lk(mu_);
            // Shutdown overrides pause so a drain can never deadlock
            // behind a paused pool.
            queueCv_.wait(lk, [this] {
                bool runnable = !queue_.empty() &&
                                (!workersPaused_ || shuttingDown_);
                bool stop = shuttingDown_ &&
                            (!drainOnShutdown_ || queue_.empty());
                return runnable || stop;
            });
            if (queue_.empty())
                return; // shutdown (drained or immediate)
            job_id = queue_.front();
            queue_.pop_front();
            Job &job = jobs_[job_id];
            job.state = JobState::Running;
            job.started = Clock::now();
            job.queueWaitMs = msBetween(job.enqueued, job.started);
            spec = job.spec;
            runningJobs_++;
        }

        // Execute outside the lock. The supervisor path gives served
        // missions checkpoint/restore + fault retry + degraded-mode
        // recovery; an unperturbed supervised run is bit-identical to
        // runMission(), which is what makes served results hash equal
        // to local ones.
        core::MissionResult result;
        bool threw = false;
        std::string why;
        try {
            if (cfg_.supervise) {
                core::MissionSupervisor sup(spec.toConfig(),
                                            cfg_.supervisor);
                result = sup.run();
            } else {
                result = core::runMission(spec);
            }
        } catch (const std::exception &e) {
            threw = true;
            why = e.what();
        }
        ServedResult served;
        bool fits = true;
        if (!threw) {
            served = marshalResult(result);
            // A trajectory beyond the wire budget becomes a
            // well-formed failure (CSV dropped, reason recorded) —
            // never an assert in the encode path.
            fits = fitResultToWire(served);
        }

        {
            std::lock_guard<std::mutex> lk(mu_);
            Job &job = jobs_[job_id];
            job.serviceMs = msBetween(job.started, Clock::now());
            if (threw) {
                job.state = JobState::Failed;
                job.result = ServedResult{};
                job.result.failureReason = why;
                counters_.failed++;
            } else if (!fits) {
                job.state = JobState::Failed;
                job.result = std::move(served);
                counters_.failed++;
            } else {
                job.state = JobState::Done;
                job.result = std::move(served);
                counters_.completed++;
            }
            job.result.queueWaitMs = job.queueWaitMs;
            job.result.serviceMs = job.serviceMs;
            counters_.totalQueueWaitMs += job.queueWaitMs;
            counters_.maxQueueWaitMs =
                std::max(counters_.maxQueueWaitMs, job.queueWaitMs);
            counters_.totalServiceMs += job.serviceMs;
            counters_.maxServiceMs =
                std::max(counters_.maxServiceMs, job.serviceMs);
            runningJobs_--;
            if (job.clientId != 0) {
                auto fl = inFlightByClient_.find(job.clientId);
                if (fl != inFlightByClient_.end() && fl->second > 0)
                    fl->second--;
            }
            markTerminalLocked(job_id);
            // A drain may complete with this job: wake idle workers
            // (and let the IO loop observe quiescence on its next
            // poll tick).
            if (shuttingDown_)
                queueCv_.notify_all();
        }
    }
}

// ----------------------------------------------------------------- IO

void
MissionServer::ioLoop()
{
    bool listenerOpen = true;

    for (;;) {
        // Exit once shutdown is requested, the job engine is
        // quiescent (queue drained or shed, nothing running), and no
        // live connection still has buffered replies — the final
        // ResultReply/ShutdownReply must reach its peer. A peer that
        // refuses to drain cannot wedge the exit: its progress
        // deadline below marks the connection dead.
        {
            bool quiescent;
            {
                std::lock_guard<std::mutex> lk(mu_);
                quiescent = shuttingDown_ && queue_.empty() &&
                            runningJobs_ == 0;
                if (shuttingDown_ && listenerOpen) {
                    // Stop accepting the moment shutdown begins;
                    // existing connections stay serviceable while
                    // draining.
                    listener_.close();
                    listenerOpen = false;
                }
            }
            if (quiescent) {
                bool pending = false;
                for (const auto &c : conns_)
                    if (!c->dead && c->pendingTx() > 0)
                        pending = true;
                if (!pending)
                    break;
            }
        }

        // Snapshot the connection count the pollfd set covers:
        // acceptPending() below can append to conns_, and those new
        // connections have no pfds entry until the next iteration.
        const size_t polledConns = conns_.size();
        std::vector<pollfd> pfds;
        pfds.reserve(polledConns + 1);
        if (listenerOpen)
            pfds.push_back(pollfd{listener_.fd(), POLLIN, 0});
        for (const auto &c : conns_) {
            short events = POLLIN;
            if (c->pendingTx() > 0)
                events |= POLLOUT;
            pfds.push_back(pollfd{c->fd, events, 0});
        }

        int rc = ::poll(pfds.data(), nfds_t(pfds.size()),
                        cfg_.pollIntervalMs);
        if (rc < 0 && errno != EINTR) {
            rose_warn("rosed IO poll failed: ",
                          std::strerror(errno));
            break;
        }

        size_t idx = 0;
        if (listenerOpen) {
            if (pfds[idx].revents & POLLIN)
                acceptPending();
            idx++;
        }
        for (size_t i = 0; i < polledConns; ++i, ++idx) {
            Connection &conn = *conns_[i];
            if (pfds[idx].revents & POLLOUT)
                flushSend(conn);
            if (pfds[idx].revents &
                (POLLIN | POLLERR | POLLHUP | POLLNVAL))
                serviceConnection(conn);
            if (!conn.dead && conn.pendingTx() > 0 &&
                Clock::now() >= conn.txDeadline) {
                rose_warn("rosed reply stalled on connection ",
                              conn.id, " (", conn.pendingTx(),
                              " bytes unflushed for ",
                              cfg_.sendTimeoutMs,
                              " ms); dropping it");
                conn.dead = true;
            }
        }

        // Retire dead connections and release their sessions.
        for (size_t i = 0; i < conns_.size();) {
            if (conns_[i]->dead) {
                closeConnection(*conns_[i]);
                conns_.erase(conns_.begin() + std::ptrdiff_t(i));
            } else {
                ++i;
            }
        }
    }

    if (listenerOpen)
        listener_.close();
    for (auto &c : conns_)
        closeConnection(*c);
    conns_.clear();

    std::lock_guard<std::mutex> lk(mu_);
    shutdownComplete_ = true;
}

void
MissionServer::acceptPending()
{
    for (;;) {
        int fd = -1;
        try {
            fd = listener_.acceptFd(0);
        } catch (const bridge::TransportError &e) {
            rose_warn("rosed accept failed: ", e.what());
            return;
        }
        if (fd < 0)
            return;
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        try {
            setNonBlockingOrThrow(fd);
        } catch (const bridge::TransportError &e) {
            rose_warn("rosed connection setup failed: ", e.what());
            ::close(fd);
            continue;
        }
        int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        if (cfg_.sendBufferBytes > 0)
            setsockopt(fd, SOL_SOCKET, SO_SNDBUF,
                       &cfg_.sendBufferBytes,
                       sizeof(cfg_.sendBufferBytes));
        {
            std::lock_guard<std::mutex> lk(mu_);
            conn->id = nextConnId_++;
            counters_.connectionsAccepted++;
            openConnections_++;
            inFlightByClient_[conn->id] = 0;
        }
        conns_.push_back(std::move(conn));
    }
}

void
MissionServer::serviceConnection(Connection &conn)
{
    uint8_t tmp[65536];
    for (;;) {
        ssize_t n = ::recv(conn.fd, tmp, sizeof(tmp), 0);
        if (n > 0) {
            conn.rx.append(tmp, size_t(n));
            continue;
        }
        if (n == 0) {
            conn.dead = true; // orderly peer close
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        conn.dead = true; // reset or hard error
        break;
    }
    if (!drainRequests(conn))
        conn.dead = true;
}

bool
MissionServer::drainRequests(Connection &conn)
{
    for (;;) {
        Message req;
        std::string err;
        FrameStatus st = conn.rx.next(req, &err);
        if (st == FrameStatus::NeedMore)
            return true;
        if (st == FrameStatus::Malformed) {
            std::lock_guard<std::mutex> lk(mu_);
            counters_.malformed++;
            rose_warn("rosed dropping connection ", conn.id,
                          ": ", err);
            return false;
        }
        if (!isRequest(req.type)) {
            std::lock_guard<std::mutex> lk(mu_);
            counters_.malformed++;
            rose_warn("rosed dropping connection ", conn.id,
                          ": unexpected response-type message ",
                          msgTypeName(req.type));
            return false;
        }
        Message reply = handleRequest(conn, req);
        sendMessage(conn, reply);
        if (conn.dead)
            return false;
    }
}

Message
MissionServer::handleRequest(Connection &conn, const Message &req)
{
    try {
        switch (req.type) {
          case MsgType::SubmitMission:
            return handleSubmit(conn, req);
          case MsgType::QueryStatus:
            return handleStatus(req);
          case MsgType::FetchResult:
            return handleFetch(req);
          case MsgType::CancelMission:
            return handleCancel(req);
          case MsgType::ServerStats:
            return handleStats();
          case MsgType::Shutdown:
            return handleShutdown(req);
          default:
            return encodeErrorReply(
                std::string("unhandled request type ") +
                msgTypeName(req.type));
        }
    } catch (const ProtocolError &e) {
        return encodeErrorReply(std::string("bad request: ") +
                                e.what());
    } catch (const bridge::PayloadError &e) {
        return encodeErrorReply(std::string("bad request: ") +
                                e.what());
    }
}

Message
MissionServer::handleSubmit(Connection &conn, const Message &req)
{
    core::MissionSpec spec = decodeSubmitMission(req);

    // Cheap semantic validation up front: a spec that cannot run
    // should cost an admission decision, not a worker slot.
    auto bad = [&](const std::string &why) {
        std::lock_guard<std::mutex> lk(mu_);
        counters_.submitted++;
        return encodeRejected({RejectReason::BadRequest, why});
    };
    if (spec.modelDepth < 1 || spec.modelDepth > 64)
        return bad("modelDepth out of range [1,64]");
    if (!std::isfinite(spec.velocity) || spec.velocity < 0.0)
        return bad("velocity must be finite and non-negative");
    if (!std::isfinite(spec.maxSimSeconds) ||
        spec.maxSimSeconds <= 0.0 || spec.maxSimSeconds > 3600.0)
        return bad("maxSimSeconds out of range (0,3600]");
    if (spec.syncGranularity == 0)
        return bad("syncGranularity must be positive");
    // A result that provably cannot fit a ResultReply is rejected at
    // the front door instead of burning a worker slot on a mission
    // whose result would only be demoted to Failed at completion.
    if (minTrajectoryCsvBytes(spec) > double(kMaxTrajectoryCsvBytes))
        return bad(detail::concat(
            "trajectory for maxSimSeconds=", spec.maxSimSeconds,
            " at syncGranularity=", spec.syncGranularity,
            " cannot fit the ", kMaxTrajectoryCsvBytes,
            "-byte result bound; shorten the mission or raise the"
            " granularity"));

    std::lock_guard<std::mutex> lk(mu_);
    counters_.submitted++;
    if (shuttingDown_) {
        counters_.rejectedShutdown++;
        return encodeRejected(
            {RejectReason::ShuttingDown, "daemon is shutting down"});
    }
    if (queue_.size() >= cfg_.maxQueueDepth) {
        counters_.rejectedQueueFull++;
        return encodeRejected(
            {RejectReason::QueueFull,
             detail::concat("queue depth ", cfg_.maxQueueDepth,
                            " reached; resubmit later")});
    }
    uint32_t &inflight = inFlightByClient_[conn.id];
    if (inflight >= cfg_.perClientInFlight) {
        counters_.rejectedClientCap++;
        return encodeRejected(
            {RejectReason::ClientCap,
             detail::concat("per-client in-flight cap ",
                            cfg_.perClientInFlight, " reached")});
    }

    SubmitOkReply ok;
    ok.jobId = nextJobId_++;
    ok.queuePosition = uint32_t(queue_.size());
    Job job;
    job.id = ok.jobId;
    job.spec = std::move(spec);
    job.clientId = conn.id;
    job.enqueued = Clock::now();
    jobs_.emplace(ok.jobId, std::move(job));
    queue_.push_back(ok.jobId);
    inflight++;
    counters_.accepted++;
    queueCv_.notify_one();
    return encodeSubmitOk(ok);
}

Message
MissionServer::handleStatus(const Message &req)
{
    uint64_t id = decodeQueryStatus(req);
    std::lock_guard<std::mutex> lk(mu_);
    StatusInfo s;
    s.jobId = id;
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        s.state = JobState::Unknown;
        return encodeStatusReply(s);
    }
    const Job &job = it->second;
    s.state = job.state;
    if (job.state == JobState::Queued) {
        for (size_t i = 0; i < queue_.size(); ++i) {
            if (queue_[i] == id) {
                s.queuePosition = uint32_t(i);
                break;
            }
        }
        s.queueWaitMs = msBetween(job.enqueued, Clock::now());
    } else {
        s.queueWaitMs = job.queueWaitMs;
        s.serviceMs = job.state == JobState::Running
                          ? msBetween(job.started, Clock::now())
                          : job.serviceMs;
    }
    return encodeStatusReply(s);
}

Message
MissionServer::handleFetch(const Message &req)
{
    uint64_t id = decodeFetchResult(req);
    std::lock_guard<std::mutex> lk(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        StatusInfo s;
        s.jobId = id;
        s.state = JobState::Unknown;
        return encodeStatusReply(s);
    }
    Job &job = it->second;
    if (job.state == JobState::Done || job.state == JobState::Failed) {
        ResultData d;
        d.jobId = id;
        d.state = job.state;
        d.result = std::move(job.result);
        // Fetch is one-shot: the record (and its multi-hundred-KiB
        // CSV) is released now rather than retained forever, so a
        // long-lived daemon's memory tracks retention policy, not
        // total jobs served. Later queries for this id say Unknown.
        jobs_.erase(it);
        return encodeResultReply(d);
    }
    // Not finished: answer with the lifecycle state so clients can
    // poll FetchResult alone.
    StatusInfo s;
    s.jobId = id;
    s.state = job.state;
    s.queueWaitMs = job.state == JobState::Queued
                        ? msBetween(job.enqueued, Clock::now())
                        : job.queueWaitMs;
    if (job.state == JobState::Running)
        s.serviceMs = msBetween(job.started, Clock::now());
    return encodeStatusReply(s);
}

Message
MissionServer::handleCancel(const Message &req)
{
    uint64_t id = decodeCancelMission(req);
    std::lock_guard<std::mutex> lk(mu_);
    CancelInfo c;
    c.jobId = id;
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        c.outcome = CancelOutcome::UnknownJob;
        return encodeCancelReply(c);
    }
    Job &job = it->second;
    switch (job.state) {
      case JobState::Queued: {
        for (size_t i = 0; i < queue_.size(); ++i) {
            if (queue_[i] == id) {
                queue_.erase(queue_.begin() + std::ptrdiff_t(i));
                break;
            }
        }
        job.state = JobState::Cancelled;
        counters_.cancelled++;
        auto fl = inFlightByClient_.find(job.clientId);
        if (fl != inFlightByClient_.end() && fl->second > 0)
            fl->second--;
        markTerminalLocked(id);
        c.outcome = CancelOutcome::Dequeued;
        break;
      }
      case JobState::Running:
        c.outcome = CancelOutcome::TooLate;
        break;
      case JobState::Done:
      case JobState::Failed:
        c.outcome = CancelOutcome::AlreadyDone;
        break;
      case JobState::Cancelled:
        c.outcome = CancelOutcome::Dequeued;
        break;
      case JobState::Unknown:
        c.outcome = CancelOutcome::UnknownJob;
        break;
    }
    return encodeCancelReply(c);
}

Message
MissionServer::handleStats()
{
    std::lock_guard<std::mutex> lk(mu_);
    return encodeStatsReply(statsLocked());
}

Message
MissionServer::handleShutdown(const Message &req)
{
    bool drain = decodeShutdown(req);
    // The reply is sent by the dispatcher after this returns; the IO
    // loop keeps servicing connections until the drain completes, so
    // the flag can be set right away.
    requestShutdown(drain);
    return encodeShutdownReply();
}

void
MissionServer::sendMessage(Connection &conn, const Message &m)
{
    if (conn.dead)
        return;
    // Compact the already-flushed prefix before growing the buffer.
    if (conn.txPos > 0 && conn.txPos == conn.tx.size()) {
        conn.tx.clear();
        conn.txPos = 0;
    } else if (conn.txPos > 4096 &&
               conn.txPos >= conn.tx.size() / 2) {
        conn.tx.erase(conn.tx.begin(),
                      conn.tx.begin() + std::ptrdiff_t(conn.txPos));
        conn.txPos = 0;
    }
    bool wasIdle = conn.pendingTx() == 0;
    serializeMessage(m, conn.tx);
    if (conn.pendingTx() > cfg_.maxTxBacklogBytes) {
        rose_warn("rosed reply backlog on connection ", conn.id,
                      " exceeds ", cfg_.maxTxBacklogBytes,
                      " bytes; dropping it");
        conn.dead = true;
        return;
    }
    if (wasIdle)
        conn.txDeadline = Clock::now() +
                          std::chrono::milliseconds(cfg_.sendTimeoutMs);
    // Opportunistic flush: most replies fit the socket buffer and
    // leave nothing for the POLLOUT path.
    flushSend(conn);
}

void
MissionServer::flushSend(Connection &conn)
{
    if (conn.dead)
        return;
    while (conn.txPos < conn.tx.size()) {
        ssize_t n = ::send(conn.fd, conn.tx.data() + conn.txPos,
                           conn.tx.size() - conn.txPos, MSG_NOSIGNAL);
        if (n > 0) {
            conn.txPos += size_t(n);
            // Any forward progress restarts the stall deadline.
            conn.txDeadline =
                Clock::now() +
                std::chrono::milliseconds(cfg_.sendTimeoutMs);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return; // kernel buffer full; POLLOUT will resume
        conn.dead = true; // peer gone mid-reply
        return;
    }
    conn.tx.clear();
    conn.txPos = 0;
}

void
MissionServer::closeConnection(Connection &conn)
{
    if (conn.fd >= 0) {
        ::close(conn.fd);
        conn.fd = -1;
    }
    releaseClientJobs(conn.id);
    std::lock_guard<std::mutex> lk(mu_);
    if (openConnections_ > 0)
        openConnections_--;
}

void
MissionServer::releaseClientJobs(uint64_t client_id)
{
    std::lock_guard<std::mutex> lk(mu_);
    // Queued jobs of a vanished client are shed (their results could
    // never be fetched... they could, by job id, but the session is
    // gone and the queue slot is better spent on live clients).
    for (size_t i = 0; i < queue_.size();) {
        auto it = jobs_.find(queue_[i]);
        if (it != jobs_.end() && it->second.clientId == client_id) {
            uint64_t id = queue_[i];
            it->second.state = JobState::Cancelled;
            counters_.cancelled++;
            queue_.erase(queue_.begin() + std::ptrdiff_t(i));
            markTerminalLocked(id);
        } else {
            ++i;
        }
    }
    // Running/finished jobs are orphaned, not killed: the mission
    // completes and the result stays fetchable by job id.
    for (auto &[id, job] : jobs_) {
        if (job.clientId == client_id)
            job.clientId = 0;
    }
    inFlightByClient_.erase(client_id);
}

void
MissionServer::markTerminalLocked(uint64_t job_id)
{
    terminalOrder_.push_back(job_id);
    // Ids already released by a fetch just fall out of the FIFO; the
    // erase below is a no-op for them.
    while (terminalOrder_.size() > cfg_.maxRetainedResults) {
        uint64_t oldest = terminalOrder_.front();
        terminalOrder_.pop_front();
        jobs_.erase(oldest);
    }
}

} // namespace rose::serve
