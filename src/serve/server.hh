/**
 * @file
 * `rosed` — the concurrent mission-service daemon.
 *
 * Turns the in-process mission library into a long-lived service:
 * clients connect over TCP, submit MissionSpecs through the serve
 * wire protocol (proto.hh), and fetch results whose trajectory bytes
 * are bit-identical to a local runMission() of the same spec.
 *
 * Architecture (one process, three kinds of threads):
 *
 *  - IO thread: a poll(2) loop over the bridge::TcpListener and every
 *    live connection. Each connection owns a MessageBuffer read state
 *    machine; requests are decoded, answered synchronously, and
 *    submissions are handed to the job queue. A terminal job's
 *    FetchResult opens a *result stream* on its connection: the
 *    trajectory payload is sliced into ResultChunk frames generated
 *    under a per-stream backlog cap and drained through the same
 *    POLLOUT tx-buffer machinery as every other reply, then closed
 *    with a ResultEnd carrying the scalar result and the FNV-1a
 *    verification hash. While a stream is open, further requests
 *    buffered on that connection are deferred (strict per-connection
 *    ordering); other connections are untouched. A peer close
 *    (orderly or reset) retires the connection; a framing violation
 *    poisons and drops it.
 *
 *  - Worker pool: `workers` threads launched through
 *    core::parallelIndexed (the batch runner's deterministic pool
 *    primitive) — the pool *is* a parallel indexed map over worker
 *    slots whose body loops on the queue. Each job executes through
 *    core::MissionSupervisor, so served missions inherit
 *    checkpoint/restore, fault retry, and degraded-mode behavior; a
 *    supervised run that never trips a watchdog is bit-identical to
 *    the unsupervised (and thus to the client's local) run. Workers
 *    publish coalesced progress (latest simulated time per running
 *    job); the IO thread drains that map once per poll tick into
 *    Progress push frames on the owning connection.
 *
 *  - The owner thread: constructs/starts/stops the server.
 *
 * Admission control and backpressure: the job queue is bounded
 * (maxQueueDepth), each connection has an in-flight cap
 * (perClientInFlight), and excess submissions are *rejected
 * explicitly* (SubmitRejected{queue_full|client_cap}) rather than
 * buffered — load is shed at the front door, in-flight missions are
 * never disturbed, and every shed request is counted in the stats
 * clients can query with ServerStats. Mission length is not an
 * admission criterion: results of any size stream in bounded chunks.
 *
 * Determinism: mission execution shares nothing across jobs except
 * the immutable artifact caches (util/memo.hh), exactly like
 * core::BatchRunner; a result served to any client therefore hashes
 * identically to the same spec run locally (tests/test_serve.cc pins
 * this against the golden missions).
 *
 * Durability (ServerConfig::journalDir): submissions, terminal
 * results, and releases are write-ahead journaled (serve/journal.hh)
 * and supervised jobs persist their checkpoint ring per job, so a
 * SIGKILLed daemon restarted on the same directory replays its job
 * table, deduplicates resubmissions by idempotency key, warm-
 * restores interrupted missions, and serves their results with
 * hashes bit-identical to uninterrupted runs (determinism is what
 * makes even a cold re-run indistinguishable).
 */

#ifndef ROSE_SERVE_SERVER_HH
#define ROSE_SERVE_SERVER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bridge/transport.hh"
#include "core/supervisor.hh"
#include "serve/journal.hh"
#include "serve/proto.hh"

namespace rose::serve {

/** Daemon configuration. */
struct ServerConfig
{
    /** Listen port on 127.0.0.1; 0 selects an ephemeral port
     *  (retrieve it with MissionServer::port()). */
    uint16_t port = 0;
    /** Mission worker threads. */
    int workers = 2;
    /** Bounded queue: jobs admitted but not yet running. Submissions
     *  beyond this depth are rejected with queue_full. */
    size_t maxQueueDepth = 16;
    /** Per-connection cap on unfinished (queued + running) jobs. */
    uint32_t perClientInFlight = 8;
    /** Execute jobs under MissionSupervisor (checkpoint/retry); off
     *  runs bare runMission() (still deterministic, no recovery). */
    bool supervise = true;
    /** Supervisor knobs for supervised execution. */
    core::SupervisorConfig supervisor;
    /**
     * Upper bound on checkpoints taken over one supervised mission:
     * the effective snapshot cadence is raised to at least
     * expectedPeriods / cap, so a long mission spends a bounded
     * fraction of its wall time snapshotting its (growing)
     * trajectory instead of going quadratic at a fixed cadence.
     * 0 keeps supervisor.checkpointPeriods untouched.
     */
    uint32_t supervisorCheckpointCap = 64;
    /** IO-loop poll granularity [ms] (also shutdown latency bound). */
    int pollIntervalMs = 20;
    /**
     * Response-write progress deadline [ms]: a connection whose
     * buffered replies make no progress for this long is dropped.
     * Writes never block the IO loop — replies are buffered per
     * connection and flushed via POLLOUT, so one stalled reader only
     * costs its own connection (and its own result stream), never
     * other sessions.
     */
    int sendTimeoutMs = 5000;
    /** Drop a connection whose unflushed reply backlog exceeds this. */
    size_t maxTxBacklogBytes = 64 * 1024 * 1024;
    /** Result-stream slice size [bytes]; clamped to
     *  [1, kMaxResultChunkBytes]. */
    size_t resultChunkBytes = kDefaultResultChunkBytes;
    /**
     * Per-stream generation cap [bytes]: chunks are only produced
     * while the connection's unflushed tx backlog is below this, so
     * a slow reader holds at most ~this much of its own stream in
     * server memory — the rest stays in the retained result until
     * the stream advances. (Streams share the retained record's
     * payload; this bounds the transient frame buffer only.)
     */
    size_t streamBacklogBytes = 1024 * 1024;
    /**
     * Worker-side progress cadence [sync periods]: each running
     * mission publishes its simulated time every this many periods
     * (coalesced to the latest per job; the IO thread pushes at most
     * one Progress frame per job per poll tick). 0 disables
     * progress events.
     */
    uint64_t progressIntervalPeriods = 200;
    /**
     * Terminal jobs retained for later FetchResult. A result is
     * released by the client's hash-verified AckResult (fetch itself
     * no longer releases — a stream that dies mid-flight must stay
     * resumable); unacked terminal jobs (orphans, cancellations,
     * crashed clients) are kept for at most this many terminal
     * transitions, oldest evicted first, so a long-lived daemon's
     * memory is bounded by retention, not by total jobs served.
     */
    size_t maxRetainedResults = 256;
    /**
     * Byte bound on retained terminal results (trajectory CSV +
     * samples + failure reason), enforced alongside
     * maxRetainedResults: oldest results are evicted until the total
     * fits. The newest terminal result is never evicted by the byte
     * bound (a single oversized result stays fetchable), so the
     * bound can be transiently exceeded by exactly one result.
     */
    uint64_t maxRetainedResultBytes = 256 * 1024 * 1024;
    /** When > 0, SO_SNDBUF for accepted connections [bytes] (test /
     *  operations hook for exercising slow-reader backpressure). */
    int sendBufferBytes = 0;
    /**
     * When non-empty, serve crash-safely: a write-ahead job journal
     * (serve/journal.hh) lives in this directory, submissions are
     * journaled before admission, terminal results before they are
     * published, and each supervised job persists its checkpoint
     * ring to `<dir>/job-<id>.ckpt`. A restarted daemon pointed at
     * the same directory replays the journal: terminal results come
     * back fetchable bit-identically, unfinished jobs re-enter the
     * queue and warm-restore from their checkpoint. Empty disables
     * journaling (the pre-v3 purely in-memory behavior).
     */
    std::string journalDir;
    /**
     * fsync every journal append. The default (flush only) already
     * survives SIGKILL — the bytes are in the page cache; fsync adds
     * power-loss durability at a significant per-append latency cost
     * (bench_serve's journal sweep quantifies it).
     */
    bool journalFsync = false;
};

/** Point-in-time server counters (mirrors the wire StatsReply). */
using ServerStatsSnapshot = ServerStatsData;

/**
 * The mission-service daemon. Construct (binds the listener — throws
 * bridge::TransportError on a busy port), start(), and eventually
 * stop() or let requestShutdown() arrive over the wire.
 */
class MissionServer
{
  public:
    explicit MissionServer(const ServerConfig &cfg);
    ~MissionServer();

    MissionServer(const MissionServer &) = delete;
    MissionServer &operator=(const MissionServer &) = delete;

    /** Actually-bound port (resolves an ephemeral request). */
    uint16_t port() const { return listener_.port(); }

    /** Spawn the IO thread and worker pool. */
    void start();

    /**
     * Begin shutdown: stop accepting connections and submissions.
     * With @p drain, queued jobs still execute; otherwise they are
     * cancelled. Running missions always finish (no preemption).
     * Thread-safe; callable from any thread or via the wire.
     */
    void requestShutdown(bool drain);

    /** Block until all threads exited (after a shutdown request). */
    void waitForShutdown();

    /** requestShutdown(drain) + waitForShutdown(). Idempotent. */
    void stop(bool drain = true);

    /** True between start() and the end of shutdown. */
    bool running() const;

    /** Counter snapshot (also served over the wire as StatsReply). */
    ServerStatsSnapshot stats() const;

    /**
     * Test/operations hook: freeze the worker pool. Queued jobs stay
     * queued (making queue-depth admission deterministic to test);
     * running jobs are unaffected. resumeWorkers() reawakens the
     * pool.
     */
    void pauseWorkers();
    void resumeWorkers();

    /**
     * Test/chaos hook: sever every live connection on the next poll
     * tick, as if the network dropped. Jobs are untouched (queued
     * ones of the severed clients are cancelled exactly as on a real
     * disconnect); reconnect-enabled clients are expected to dial
     * back and resume.
     */
    void dropConnections();

  private:
    using Clock = std::chrono::steady_clock;

    /** One tracked job (the session manager's unit of work). */
    struct Job
    {
        uint64_t id = 0;
        core::MissionSpec spec;
        JobState state = JobState::Queued;
        /** Owning connection id; 0 once the client disconnected. */
        uint64_t clientId = 0;
        /** Client retry token; "" = none. */
        std::string idempotencyKey;
        /** Replayed from the journal: the worker attempts a warm
         *  restore from the job's persisted checkpoint. */
        bool recovered = false;
        Clock::time_point enqueued;
        Clock::time_point started;
        double queueWaitMs = 0.0;
        double serviceMs = 0.0;
        /** Valid when Done/Failed; shared with any open streams so
         *  the record can be released mid-stream (client ack, ret-
         *  ention eviction) without pulling bytes out from under
         *  them. */
        std::shared_ptr<const ServedResult> result;
    };

    /**
     * One result stream in flight on a connection. Shares the
     * payload source with the retained job record (the CSV string,
     * or the raw samples quantized to binary records one chunk at a
     * time) and owns the pre-built ResultEnd. The job stays
     * fetchable until the client's hash-verified AckResult (or
     * retention eviction) releases it, so a stream that dies with
     * its connection costs nothing — the client reconnects and
     * resumes from its byte offset.
     */
    struct ResultStream
    {
        TrajectoryEncoding encoding = TrajectoryEncoding::Csv;
        /** Payload source, shared with the job record. */
        std::shared_ptr<const ServedResult> src;
        uint64_t totalBytes = 0;
        uint64_t offset = 0; ///< payload bytes already framed
        uint32_t seq = 0;    ///< next chunk sequence number
        ResultEndData end;
    };

    /** One live client connection (owned by the IO thread). */
    struct Connection
    {
        uint64_t id = 0;
        int fd = -1;
        MessageBuffer rx;
        bool dead = false;
        /** Buffered outgoing bytes not yet accepted by the kernel;
         *  tx[txPos..) is pending, flushed on POLLOUT. */
        std::vector<uint8_t> tx;
        size_t txPos = 0;
        /** Progress deadline while pendingTx() > 0. */
        Clock::time_point txDeadline{};
        /** Open result stream; requests queue behind it. */
        std::unique_ptr<ResultStream> stream;

        size_t pendingTx() const { return tx.size() - txPos; }
    };

    void ioLoop();
    void workerLoop(size_t worker_index);
    void acceptPending();
    void serviceConnection(Connection &conn);
    /**
     * The per-connection service pump: emit result-stream frames
     * while the backlog cap allows, then decode + dispatch buffered
     * requests until a stream opens (deferring the rest) or the
     * buffer runs dry. @return false when the connection must be
     * dropped.
     */
    bool drainRequests(Connection &conn);
    /** Generate stream frames up to the backlog cap; closes the
     *  stream (ResultEnd) when the payload is exhausted. */
    void pumpStream(Connection &conn);
    /** Push coalesced worker progress to owning connections. */
    void flushProgress();
    /** @return the reply, or nullopt when a result stream was opened
     *  (its frames are the reply). */
    std::optional<Message> handleRequest(Connection &conn,
                                         const Message &req);
    Message handleSubmit(Connection &conn, const Message &req);
    Message handleStatus(const Message &req);
    std::optional<Message> handleFetch(Connection &conn,
                                       const Message &req);
    Message handleCancel(const Message &req);
    Message handleAck(const Message &req);
    Message handleStats();
    Message handleShutdown(const Message &req);
    /** Queue @p m on the connection and flush what the kernel takes
     *  right now; the remainder drains via POLLOUT in the IO loop. */
    void sendMessage(Connection &conn, const Message &m);
    /** Non-blocking flush of conn.tx; marks the connection dead on a
     *  hard send error. Resets the progress deadline on any write. */
    void flushSend(Connection &conn);
    void closeConnection(Connection &conn);
    /** Cancel the queued jobs of a vanished client; orphan the rest. */
    void releaseClientJobs(uint64_t client_id);
    /** Record a job's terminal transition, add its result to the
     *  retained-byte account, and evict the oldest retained terminal
     *  jobs beyond maxRetainedResults / maxRetainedResultBytes
     *  (mu_ held). */
    void markTerminalLocked(uint64_t job_id);
    /** Drop a job record: retained-byte account, idempotency map,
     *  journal Released record (mu_ held). @return false if the id
     *  was already gone. */
    bool releaseJobLocked(uint64_t job_id);
    /** Journal a cancellation's Terminal record (mu_ held). */
    void journalCancelLocked(uint64_t job_id);
    ServerStatsSnapshot statsLocked() const;

    ServerConfig cfg_;
    bridge::TcpListener listener_;
    /** Write-ahead job journal; null when journalDir is empty. */
    std::unique_ptr<JobJournal> journal_;

    /** Live connections; owned and touched only by the IO thread. */
    std::vector<std::unique_ptr<Connection>> conns_;

    std::thread ioThread_;
    std::thread poolLauncher_; ///< runs parallelIndexed over workers

    mutable std::mutex mu_;
    std::condition_variable queueCv_; ///< workers wait here
    std::deque<uint64_t> queue_;
    std::unordered_map<uint64_t, Job> jobs_;
    /** Terminal jobs in transition order (retention FIFO); ids whose
     *  job was already fetch-evicted are skipped lazily. */
    std::deque<uint64_t> terminalOrder_;
    /** Bytes held by retained terminal results (jobs_ entries that
     *  are Done/Failed/Cancelled). */
    uint64_t retainedBytes_ = 0;
    /** Latest worker-published progress per running job, coalesced
     *  between IO-thread poll ticks. */
    std::unordered_map<uint64_t, ProgressEvent> pendingProgress_;
    /** Unfinished jobs per live connection (admission cap). */
    std::unordered_map<uint64_t, uint32_t> inFlightByClient_;
    /** Live idempotency keys -> job id (journaled submissions). */
    std::unordered_map<std::string, uint64_t> idemToJob_;
    uint64_t nextJobId_ = 1;
    uint64_t nextConnId_ = 1;
    /** dropConnections() latch, consumed by the IO loop. */
    bool kickConnections_ = false;
    bool started_ = false;
    bool shuttingDown_ = false;
    bool shutdownComplete_ = false;
    bool drainOnShutdown_ = true;
    bool workersPaused_ = false;
    uint32_t runningJobs_ = 0;
    uint32_t openConnections_ = 0;
    uint32_t activeStreams_ = 0;

    // Counters (guarded by mu_).
    ServerStatsData counters_;
};

} // namespace rose::serve

#endif // ROSE_SERVE_SERVER_HH
