/**
 * @file
 * `rosed` — the concurrent mission-service daemon.
 *
 * Turns the in-process mission library into a long-lived service:
 * clients connect over TCP, submit MissionSpecs through the serve
 * wire protocol (proto.hh), and fetch results whose trajectory bytes
 * are bit-identical to a local runMission() of the same spec.
 *
 * Architecture (one process, three kinds of threads):
 *
 *  - IO thread: a poll(2) loop over the bridge::TcpListener and every
 *    live connection. Each connection owns a MessageBuffer read state
 *    machine; requests are decoded, answered synchronously (responses
 *    are written with a bounded-poll sender, like the bridge's TCP
 *    send), and submissions are handed to the job queue. A peer close
 *    (orderly or reset) retires the connection; a framing violation
 *    poisons and drops it.
 *
 *  - Worker pool: `workers` threads launched through
 *    core::parallelIndexed (the batch runner's deterministic pool
 *    primitive) — the pool *is* a parallel indexed map over worker
 *    slots whose body loops on the queue. Each job executes through
 *    core::MissionSupervisor, so served missions inherit
 *    checkpoint/restore, fault retry, and degraded-mode behavior; a
 *    supervised run that never trips a watchdog is bit-identical to
 *    the unsupervised (and thus to the client's local) run.
 *
 *  - The owner thread: constructs/starts/stops the server.
 *
 * Admission control and backpressure: the job queue is bounded
 * (maxQueueDepth), each connection has an in-flight cap
 * (perClientInFlight), and excess submissions are *rejected
 * explicitly* (SubmitRejected{queue_full|client_cap}) rather than
 * buffered — load is shed at the front door, in-flight missions are
 * never disturbed, and every shed request is counted in the stats
 * clients can query with ServerStats.
 *
 * Determinism: mission execution shares nothing across jobs except
 * the immutable artifact caches (util/memo.hh), exactly like
 * core::BatchRunner; a result served to any client therefore hashes
 * identically to the same spec run locally (tests/test_serve.cc pins
 * this against the golden missions).
 */

#ifndef ROSE_SERVE_SERVER_HH
#define ROSE_SERVE_SERVER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bridge/transport.hh"
#include "core/supervisor.hh"
#include "serve/proto.hh"

namespace rose::serve {

/** Daemon configuration. */
struct ServerConfig
{
    /** Listen port on 127.0.0.1; 0 selects an ephemeral port
     *  (retrieve it with MissionServer::port()). */
    uint16_t port = 0;
    /** Mission worker threads. */
    int workers = 2;
    /** Bounded queue: jobs admitted but not yet running. Submissions
     *  beyond this depth are rejected with queue_full. */
    size_t maxQueueDepth = 16;
    /** Per-connection cap on unfinished (queued + running) jobs. */
    uint32_t perClientInFlight = 8;
    /** Execute jobs under MissionSupervisor (checkpoint/retry); off
     *  runs bare runMission() (still deterministic, no recovery). */
    bool supervise = true;
    /** Supervisor knobs for supervised execution. */
    core::SupervisorConfig supervisor;
    /** IO-loop poll granularity [ms] (also shutdown latency bound). */
    int pollIntervalMs = 20;
    /**
     * Response-write progress deadline [ms]: a connection whose
     * buffered replies make no progress for this long is dropped.
     * Writes never block the IO loop — replies are buffered per
     * connection and flushed via POLLOUT, so one stalled reader only
     * costs its own connection, never other sessions.
     */
    int sendTimeoutMs = 5000;
    /** Drop a connection whose unflushed reply backlog exceeds this. */
    size_t maxTxBacklogBytes = 64 * 1024 * 1024;
    /**
     * Terminal jobs retained for later FetchResult. A fetched result
     * is evicted immediately (fetch is one-shot); unfetched terminal
     * jobs (orphans, cancellations) are kept for at most this many
     * terminal transitions, oldest evicted first, so a long-lived
     * daemon's memory is bounded by retention, not by total jobs
     * served.
     */
    size_t maxRetainedResults = 256;
    /** When > 0, SO_SNDBUF for accepted connections [bytes] (test /
     *  operations hook for exercising slow-reader backpressure). */
    int sendBufferBytes = 0;
};

/** Point-in-time server counters (mirrors the wire StatsReply). */
using ServerStatsSnapshot = ServerStatsData;

/**
 * The mission-service daemon. Construct (binds the listener — throws
 * bridge::TransportError on a busy port), start(), and eventually
 * stop() or let requestShutdown() arrive over the wire.
 */
class MissionServer
{
  public:
    explicit MissionServer(const ServerConfig &cfg);
    ~MissionServer();

    MissionServer(const MissionServer &) = delete;
    MissionServer &operator=(const MissionServer &) = delete;

    /** Actually-bound port (resolves an ephemeral request). */
    uint16_t port() const { return listener_.port(); }

    /** Spawn the IO thread and worker pool. */
    void start();

    /**
     * Begin shutdown: stop accepting connections and submissions.
     * With @p drain, queued jobs still execute; otherwise they are
     * cancelled. Running missions always finish (no preemption).
     * Thread-safe; callable from any thread or via the wire.
     */
    void requestShutdown(bool drain);

    /** Block until all threads exited (after a shutdown request). */
    void waitForShutdown();

    /** requestShutdown(drain) + waitForShutdown(). Idempotent. */
    void stop(bool drain = true);

    /** True between start() and the end of shutdown. */
    bool running() const;

    /** Counter snapshot (also served over the wire as StatsReply). */
    ServerStatsSnapshot stats() const;

    /**
     * Test/operations hook: freeze the worker pool. Queued jobs stay
     * queued (making queue-depth admission deterministic to test);
     * running jobs are unaffected. resumeWorkers() reawakens the
     * pool.
     */
    void pauseWorkers();
    void resumeWorkers();

  private:
    using Clock = std::chrono::steady_clock;

    /** One tracked job (the session manager's unit of work). */
    struct Job
    {
        uint64_t id = 0;
        core::MissionSpec spec;
        JobState state = JobState::Queued;
        /** Owning connection id; 0 once the client disconnected. */
        uint64_t clientId = 0;
        Clock::time_point enqueued;
        Clock::time_point started;
        double queueWaitMs = 0.0;
        double serviceMs = 0.0;
        ServedResult result; ///< valid when Done/Failed
    };

    /** One live client connection (owned by the IO thread). */
    struct Connection
    {
        uint64_t id = 0;
        int fd = -1;
        MessageBuffer rx;
        bool dead = false;
        /** Buffered outgoing bytes not yet accepted by the kernel;
         *  tx[txPos..) is pending, flushed on POLLOUT. */
        std::vector<uint8_t> tx;
        size_t txPos = 0;
        /** Progress deadline while pendingTx() > 0. */
        Clock::time_point txDeadline{};

        size_t pendingTx() const { return tx.size() - txPos; }
    };

    void ioLoop();
    void workerLoop(size_t worker_index);
    void acceptPending();
    void serviceConnection(Connection &conn);
    /** Decode + dispatch every complete request buffered on @p conn.
     *  @return false when the connection must be dropped. */
    bool drainRequests(Connection &conn);
    Message handleRequest(Connection &conn, const Message &req);
    Message handleSubmit(Connection &conn, const Message &req);
    Message handleStatus(const Message &req);
    Message handleFetch(const Message &req);
    Message handleCancel(const Message &req);
    Message handleStats();
    Message handleShutdown(const Message &req);
    /** Queue @p m on the connection and flush what the kernel takes
     *  right now; the remainder drains via POLLOUT in the IO loop. */
    void sendMessage(Connection &conn, const Message &m);
    /** Non-blocking flush of conn.tx; marks the connection dead on a
     *  hard send error. Resets the progress deadline on any write. */
    void flushSend(Connection &conn);
    void closeConnection(Connection &conn);
    /** Cancel the queued jobs of a vanished client; orphan the rest. */
    void releaseClientJobs(uint64_t client_id);
    /** Record a job's terminal transition and evict the oldest
     *  retained terminal jobs beyond maxRetainedResults (mu_ held). */
    void markTerminalLocked(uint64_t job_id);
    ServerStatsSnapshot statsLocked() const;

    ServerConfig cfg_;
    bridge::TcpListener listener_;

    /** Live connections; owned and touched only by the IO thread. */
    std::vector<std::unique_ptr<Connection>> conns_;

    std::thread ioThread_;
    std::thread poolLauncher_; ///< runs parallelIndexed over workers

    mutable std::mutex mu_;
    std::condition_variable queueCv_; ///< workers wait here
    std::deque<uint64_t> queue_;
    std::unordered_map<uint64_t, Job> jobs_;
    /** Terminal jobs in transition order (retention FIFO); ids whose
     *  job was already fetch-evicted are skipped lazily. */
    std::deque<uint64_t> terminalOrder_;
    /** Unfinished jobs per live connection (admission cap). */
    std::unordered_map<uint64_t, uint32_t> inFlightByClient_;
    uint64_t nextJobId_ = 1;
    uint64_t nextConnId_ = 1;
    bool started_ = false;
    bool shuttingDown_ = false;
    bool shutdownComplete_ = false;
    bool drainOnShutdown_ = true;
    bool workersPaused_ = false;
    uint32_t runningJobs_ = 0;
    uint32_t openConnections_ = 0;

    // Counters (guarded by mu_).
    ServerStatsData counters_;
};

} // namespace rose::serve

#endif // ROSE_SERVE_SERVER_HH
