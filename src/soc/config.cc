#include "config.hh"

#include <stdexcept>

#include "util/logging.hh"

namespace rose::soc {

CpuParams
rocketParams()
{
    CpuParams p;
    p.mmioAccessCycles = 45;      // in-order core blocks on each access
    p.hostBytesPerCycle = 1.4;    // scalar loads/stores, no overlap
    p.flopsPerCycle = 0.030;
    p.perLayerFixedCycles = 1'000'000;
    return p;
}

CpuParams
boomParams()
{
    CpuParams p;
    p.mmioAccessCycles = 30;
    p.hostBytesPerCycle = 4.0;    // wide core overlaps address math
    p.flopsPerCycle = 0.075;
    p.perLayerFixedCycles = 500'000;
    return p;
}

SocConfig
configA()
{
    SocConfig c;
    c.name = "A";
    c.cpu = CpuModel::Boom;
    c.hasGemmini = true;
    c.cpuParams = boomParams();
    return c;
}

SocConfig
configB()
{
    SocConfig c;
    c.name = "B";
    c.cpu = CpuModel::Rocket;
    c.hasGemmini = true;
    c.cpuParams = rocketParams();
    return c;
}

SocConfig
configC()
{
    SocConfig c;
    c.name = "C";
    c.cpu = CpuModel::Boom;
    c.hasGemmini = false;
    c.cpuParams = boomParams();
    return c;
}

SocConfig
configByName(const std::string &name)
{
    if (name == "A")
        return configA();
    if (name == "B")
        return configB();
    if (name == "C")
        return configC();
    // Throw instead of aborting so one bad SoC name in a batch spec
    // fails its mission slot, not the whole process.
    throw std::invalid_argument("unknown SoC config: " + name +
                                " (expected A, B, or C)");
}

} // namespace rose::soc
