/**
 * @file
 * SoC configurations evaluated by RoSÉ (Table 2):
 *
 *   Config | CPU          | Accelerator
 *   -------+--------------+------------
 *     A    | 3-wide BOOM  | Gemmini
 *     B    | Rocket       | Gemmini
 *     C    | 3-wide BOOM  | none
 *
 * The per-CPU parameters feed the DNN execution engine's latency model:
 * uncached MMIO cost, host data-movement bandwidth (im2col, DMA
 * programming — the per-layer overhead that separates Rocket-host from
 * BOOM-host latencies in Table 3), and scalar FP throughput for
 * accelerator-less fallback (config C's ~6 s inference, Section 5.1).
 */

#ifndef ROSE_SOC_CONFIG_HH
#define ROSE_SOC_CONFIG_HH

#include <string>

#include "util/units.hh"

namespace rose::soc {

/** CPU microarchitecture class. */
enum class CpuModel { Rocket, Boom };

/** Per-CPU timing parameters for the workload model. */
struct CpuParams
{
    /** Uncached MMIO access round trip [cycles]. */
    Cycles mmioAccessCycles = 30;
    /**
     * Sustained data-rearrangement bandwidth for host-side layer prep
     * (im2col, scratchpad DMA programming) [bytes/cycle].
     */
    double hostBytesPerCycle = 4.0;
    /** Effective scalar FP32 throughput for CPU-fallback convolutions
     *  [FLOP/cycle] — scalar FPU, cache-miss-bound. */
    double flopsPerCycle = 0.075;
    /** Fixed per-layer kernel-launch / driver cost [cycles]. */
    Cycles perLayerFixedCycles = 500'000;
};

/** Full SoC configuration. */
struct SocConfig
{
    std::string name = "A";
    CpuModel cpu = CpuModel::Boom;
    bool hasGemmini = true;
    double clockHz = 1.0e9;
    CpuParams cpuParams;

    /** Human-readable CPU name. */
    std::string cpuName() const
    { return cpu == CpuModel::Boom ? "3-wide BOOM" : "Rocket"; }

    std::string acceleratorName() const
    { return hasGemmini ? "Gemmini" : "None"; }
};

/** Parameters of the two CPU classes. */
CpuParams rocketParams();
CpuParams boomParams();

/** Table 2 configurations. */
SocConfig configA(); ///< BOOM + Gemmini
SocConfig configB(); ///< Rocket + Gemmini
SocConfig configC(); ///< BOOM only (no accelerator)

/** Lookup by letter; fatal on unknown names. */
SocConfig configByName(const std::string &name);

} // namespace rose::soc

#endif // ROSE_SOC_CONFIG_HH
