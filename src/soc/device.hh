/**
 * @file
 * Memory-mapped device interface for the modeled SoC system bus.
 *
 * The RoSÉ bridge is "exposed to the target SoC as memory-mapped I/O
 * registers on the system bus" (Section 3.2, Figure 4); this interface
 * is what such devices implement. Accesses are 32-bit, word-aligned
 * offsets relative to the device base.
 */

#ifndef ROSE_SOC_DEVICE_HH
#define ROSE_SOC_DEVICE_HH

#include <cstdint>
#include <string>

namespace rose::soc {

/** A device reachable through MMIO loads/stores on the system bus. */
class MmioDevice
{
  public:
    virtual ~MmioDevice() = default;

    /** Device name for the address map / debug output. */
    virtual std::string deviceName() const = 0;

    /** Size of the device's register window in bytes. */
    virtual uint64_t windowSize() const = 0;

    /**
     * 32-bit register read.
     *
     * @param offset byte offset within the window (word aligned).
     */
    virtual uint32_t read(uint64_t offset) = 0;

    /** 32-bit register write. */
    virtual void write(uint64_t offset, uint32_t value) = 0;
};

} // namespace rose::soc

#endif // ROSE_SOC_DEVICE_HH
