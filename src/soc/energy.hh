/**
 * @file
 * SoC energy model.
 *
 * The paper's opening motivation is power: a fruit fly navigates on
 * 120 nW while state-of-the-art VIO silicon needs 2 mW (Section 1),
 * and UAV battery/weight limits bound the onboard compute budget
 * (Section 2.1). This model converts the cycle engine's per-unit busy
 * accounting into mission energy so design points can be compared on
 * the axis the domain actually optimizes.
 *
 * Per-event energies are educated-guess class numbers for an embedded
 * 1 GHz SoC (16 nm-ish): they are not calibrated against silicon, but
 * their *ratios* (OoO core vs in-order core vs systolic array vs
 * leakage) are the standard ones, which is what the cross-config
 * comparisons need.
 */

#ifndef ROSE_SOC_ENERGY_HH
#define ROSE_SOC_ENERGY_HH

#include "soc/config.hh"
#include "soc/socsim.hh"

namespace rose::soc {

/** Per-activity energy coefficients [picojoules per cycle]. */
struct EnergyModel
{
    /** 3-wide out-of-order core actively executing. */
    double boomActivePj = 150.0;
    /** In-order scalar core actively executing. */
    double rocketActivePj = 40.0;
    /** Core clock-gated / spinning on an uncached load. */
    double cpuIdlePj = 10.0;
    /** Gemmini mesh + scratchpad while executing layers. */
    double accelActivePj = 80.0;
    /** Uncached I/O traffic (bus + pads). */
    double ioPj = 25.0;
    /** Whole-SoC leakage + always-on (every cycle). */
    double staticPj = 30.0;

    /** Active-CPU energy rate for a CPU class [pJ/cycle]. */
    double
    cpuActivePj(CpuModel cpu) const
    {
        return cpu == CpuModel::Boom ? boomActivePj : rocketActivePj;
    }

    /**
     * Total energy of a simulated interval [J].
     *
     * @param stats the cycle engine's accounting.
     * @param cpu CPU class of the SoC.
     */
    double
    energyJoules(const SocStats &stats, CpuModel cpu) const
    {
        double pj =
            double(stats.cpuBusyCycles) * cpuActivePj(cpu) +
            double(stats.accelBusyCycles) * accelActivePj +
            double(stats.ioBusyCycles) * ioPj +
            double(stats.rxStallCycles + stats.haltIdleCycles) *
                cpuIdlePj +
            double(stats.totalCycles) * staticPj;
        return pj * 1e-12;
    }

    /** Average power over the interval [W] at the given clock. */
    double
    averagePowerWatts(const SocStats &stats, CpuModel cpu,
                      double clock_hz) const
    {
        if (stats.totalCycles == 0)
            return 0.0;
        double seconds = double(stats.totalCycles) / clock_hz;
        return energyJoules(stats, cpu) / seconds;
    }
};

} // namespace rose::soc

#endif // ROSE_SOC_ENERGY_HH
