#include "mem.hh"

#include "util/logging.hh"

namespace rose::soc {

Dram::Dram(const DramConfig &cfg) : cfg_(cfg)
{
    rose_assert(cfg_.bytesPerCycle > 0, "bad DRAM bandwidth");
    rose_assert(cfg_.burstBytes > 0, "bad burst size");
}

Cycles
Dram::access(Cycles now, uint64_t bytes)
{
    ++stats_.requests;
    uint64_t bursts =
        (bytes + cfg_.burstBytes - 1) / cfg_.burstBytes;
    uint64_t padded = bursts * cfg_.burstBytes;
    stats_.bytes += padded;

    Cycles start = std::max(now, nextFree_);
    stats_.queueWaitCycles += start - now;

    Cycles xfer =
        Cycles(double(padded) / cfg_.bytesPerCycle + 0.9999);
    Cycles done = start + cfg_.accessLatency + xfer;
    stats_.busyCycles += cfg_.accessLatency + xfer;
    nextFree_ = done;
    return done;
}

SharedBus::SharedBus(double bytes_per_cycle)
    : bytesPerCycle_(bytes_per_cycle)
{
    rose_assert(bytesPerCycle_ > 0, "bad bus bandwidth");
}

int
SharedBus::addMaster(const std::string &name)
{
    BusMasterStats s;
    s.name = name;
    masters_.push_back(std::move(s));
    return int(masters_.size()) - 1;
}

Cycles
SharedBus::transfer(int master, Cycles now, uint64_t bytes)
{
    rose_assert(master >= 0 && size_t(master) < masters_.size(),
                "unknown bus master");
    BusMasterStats &m = masters_[size_t(master)];
    ++m.transfers;
    m.bytes += bytes;

    Cycles start = std::max(now, nextFree_);
    m.waitCycles += start - now;

    Cycles xfer = Cycles(double(bytes) / bytesPerCycle_ + 0.9999);
    if (xfer == 0)
        xfer = 1;
    m.transferCycles += xfer;
    nextFree_ = start + xfer;
    return nextFree_;
}

const BusMasterStats &
SharedBus::masterStats(int master) const
{
    rose_assert(master >= 0 && size_t(master) < masters_.size(),
                "unknown bus master");
    return masters_[size_t(master)];
}

} // namespace rose::soc
