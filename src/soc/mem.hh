/**
 * @file
 * Shared memory-system models: a DRAM channel with fixed access
 * latency plus bandwidth occupancy, and a shared system bus with
 * round-robin-fair arbitration between masters.
 *
 * These model the paper's motivating system-level effect: "the
 * performance of each individual accelerator can be heavily impacted
 * by system-level resource contentions where multiple general-purpose
 * cores and accelerators are running together" (Section 1). The
 * contention ablation bench couples these models with the Gemmini
 * latency model to quantify how background memory traffic erodes
 * end-to-end inference latency and mission outcomes.
 */

#ifndef ROSE_SOC_MEM_HH
#define ROSE_SOC_MEM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hh"

namespace rose::soc {

/** DRAM channel timing parameters. */
struct DramConfig
{
    /** Closed-page access latency [cycles]. */
    Cycles accessLatency = 40;
    /** Sustained data bandwidth [bytes/cycle]. */
    double bytesPerCycle = 16.0;
    /** Burst granularity [bytes]; requests round up to full bursts. */
    uint32_t burstBytes = 64;
};

/** Accumulated channel statistics. */
struct DramStats
{
    uint64_t requests = 0;
    uint64_t bytes = 0;
    Cycles busyCycles = 0;
    Cycles queueWaitCycles = 0;
};

/**
 * A single DRAM channel. Requests occupy the channel serially;
 * a request issued while the channel is busy waits for it to drain
 * (modeling bank/channel conflicts at burst granularity).
 */
class Dram
{
  public:
    explicit Dram(const DramConfig &cfg = {});

    /**
     * Issue a read/write burst.
     *
     * @param now cycle at which the request arrives.
     * @param bytes request size.
     * @return cycle at which the data transfer completes.
     */
    Cycles access(Cycles now, uint64_t bytes);

    /** Earliest cycle a new request could start transferring. */
    Cycles nextFree() const { return nextFree_; }

    const DramStats &stats() const { return stats_; }
    const DramConfig &config() const { return cfg_; }

    /** Channel utilization over [0, horizon]. */
    double
    utilization(Cycles horizon) const
    {
        return horizon ? double(stats_.busyCycles) / double(horizon)
                       : 0.0;
    }

  private:
    DramConfig cfg_;
    Cycles nextFree_ = 0;
    DramStats stats_;
};

/** Per-master bus accounting. */
struct BusMasterStats
{
    std::string name;
    uint64_t transfers = 0;
    uint64_t bytes = 0;
    Cycles waitCycles = 0;
    Cycles transferCycles = 0;
};

/**
 * Shared system bus. Masters submit timed transfers; overlapping
 * requests serialize, with queueing accounted to the later arrival
 * (a conservative round-robin-fair approximation adequate for
 * steady-state contention studies).
 */
class SharedBus
{
  public:
    /**
     * @param bytes_per_cycle bus data width x clock ratio.
     */
    explicit SharedBus(double bytes_per_cycle = 16.0);

    /** Register a master; returns its id. */
    int addMaster(const std::string &name);

    /**
     * Perform a transfer for a master.
     *
     * @param master id from addMaster().
     * @param now arrival cycle.
     * @param bytes transfer size.
     * @return completion cycle (includes queueing behind other
     *         masters' in-flight transfers).
     */
    Cycles transfer(int master, Cycles now, uint64_t bytes);

    const BusMasterStats &masterStats(int master) const;
    size_t masterCount() const { return masters_.size(); }

    /**
     * Effective bandwidth a foreground master sees when a background
     * master continuously consumes the given fraction of the bus.
     */
    double
    effectiveBandwidth(double background_fraction) const
    {
        double f = background_fraction < 0.0 ? 0.0
                   : background_fraction > 0.95 ? 0.95
                                                : background_fraction;
        return bytesPerCycle_ * (1.0 - f);
    }

    double bytesPerCycle() const { return bytesPerCycle_; }

  private:
    double bytesPerCycle_;
    Cycles nextFree_ = 0;
    std::vector<BusMasterStats> masters_;
};

} // namespace rose::soc

#endif // ROSE_SOC_MEM_HH
