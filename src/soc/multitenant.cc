#include "multitenant.hh"

#include "util/logging.hh"
#include "util/serde.hh"

namespace rose::soc {

// --------------------------------------------------------- BackgroundLoad

BackgroundLoad::BackgroundLoad(Cycles busy_cycles, Cycles idle_cycles,
                               std::string name)
    : busy_(busy_cycles), idle_(idle_cycles), name_(std::move(name))
{
    rose_assert(busy_ > 0, "background batch must do some work");
}

Action
BackgroundLoad::next(const SocContext &)
{
    if (inBusy_) {
        inBusy_ = false;
        if (idle_ == 0)
            return next(SocContext{});
        return Action::compute(idle_, Unit::Io, "bg-idle");
    }
    inBusy_ = true;
    ++batches_;
    return Action::compute(busy_, Unit::Cpu, "bg-batch");
}

// ----------------------------------------------------- TimeSharedWorkload

TimeSharedWorkload::TimeSharedWorkload(Workload &foreground,
                                       Workload &background,
                                       Cycles fg_quantum,
                                       Cycles bg_quantum)
    : fg_(foreground), bg_(background), fgQuantum_(fg_quantum),
      bgQuantum_(bg_quantum)
{
    rose_assert(fgQuantum_ > 0 && bgQuantum_ > 0,
                "quanta must be positive");
}

std::string
TimeSharedWorkload::workloadName() const
{
    return fg_.workloadName() + "+" + bg_.workloadName();
}

Action
TimeSharedWorkload::nextFromSide(bool fg_side, const SocContext &ctx)
{
    bool &have = fg_side ? fgHave_ : bgHave_;
    Action &act = fg_side ? fgAction_ : bgAction_;
    Cycles &left = fg_side ? fgLeft_ : bgLeft_;
    bool &halted = fg_side ? fgHalted_ : bgHalted_;
    Workload &w = fg_side ? fg_ : bg_;

    if (!have && !halted) {
        act = w.next(ctx);
        left = act.cycles;
        have = true;
        if (act.kind == Action::Kind::Halt)
            halted = true;
    }
    if (halted)
        return Action::halt();

    switch (act.kind) {
      case Action::Kind::Compute: {
        if (act.unit != Unit::Cpu) {
            // Accelerator/IO actions pass through whole; the CPU
            // scheduler does not slice them. (Serialized on the
            // engine's single timeline — a conservative model.)
            have = false;
            return act;
        }
        Cycles take =
            std::min(left, fg_side ? fgQuantum_ : bgQuantum_);
        left -= take;
        if (left == 0)
            have = false;
        (fg_side ? fgCpu_ : bgCpu_) += take;
        return Action::compute(take, Unit::Cpu,
                               fg_side ? "fg-slice" : "bg-slice");
      }
      case Action::Kind::WaitRx:
        // Leave the wait pending; the caller decides what to do with
        // a blocked side.
        return act;
      case Action::Kind::Halt:
        return act;
    }
    rose_panic("unreachable");
}

Action
TimeSharedWorkload::next(const SocContext &ctx)
{
    for (int guard = 0; guard < 8; ++guard) {
        // Resolve a completed foreground wait first.
        if (fgHave_ && fgAction_.kind == Action::Kind::WaitRx &&
            ctx.rxPackets > 0) {
            fgHave_ = false;
        }

        bool fg_blocked =
            fgHalted_ ||
            (fgHave_ && fgAction_.kind == Action::Kind::WaitRx);

        if (fg_blocked) {
            // Foreground is waiting on IO (or done): the background
            // owns the core.
            Action a = nextFromSide(false, ctx);
            if (a.kind == Action::Kind::Compute)
                return a;
            // Background can't run either: expose the wait/halt.
            if (fgHalted_ && a.kind == Action::Kind::Halt)
                return Action::halt();
            return fgHalted_ ? a : fgAction_;
        }

        // Foreground runnable: alternate quanta with the background
        // when it has CPU work.
        if (!runFg_ && !bgHalted_) {
            Action a = nextFromSide(false, ctx);
            runFg_ = true;
            if (a.kind == Action::Kind::Compute)
                return a;
            // Background blocked/halted: fall through to foreground.
        }
        Action a = nextFromSide(true, ctx);
        runFg_ = false;
        if (a.kind == Action::Kind::WaitRx ||
            a.kind == Action::Kind::Halt) {
            // Newly blocked or finished: loop so the background can
            // take the core.
            continue;
        }
        return a;
    }
    // Both sides refusing to produce runnable work: genuine stall.
    return fgHalted_ && bgHalted_ ? Action::halt()
                                  : Action::waitRx("tenant-stall");
}

void
BackgroundLoad::saveState(StateWriter &w) const
{
    w.boolean(inBusy_);
    w.u64(batches_);
}

void
BackgroundLoad::restoreState(StateReader &r)
{
    inBusy_ = r.boolean();
    batches_ = r.u64();
}

namespace {

void
putAction(StateWriter &w, const Action &a)
{
    w.u8(uint8_t(a.kind));
    w.u64(a.cycles);
    w.u8(uint8_t(a.unit));
}

void
getAction(StateReader &r, Action &a)
{
    a.kind = Action::Kind(r.u8());
    a.cycles = r.u64();
    a.unit = Unit(r.u8());
    a.what = "";
}

} // namespace

void
TimeSharedWorkload::saveState(StateWriter &w) const
{
    w.boolean(fgHave_);
    w.boolean(bgHave_);
    putAction(w, fgAction_);
    putAction(w, bgAction_);
    w.u64(fgLeft_);
    w.u64(bgLeft_);
    w.boolean(fgHalted_);
    w.boolean(bgHalted_);
    w.boolean(runFg_);
    w.u64(fgCpu_);
    w.u64(bgCpu_);
}

void
TimeSharedWorkload::restoreState(StateReader &r)
{
    fgHave_ = r.boolean();
    bgHave_ = r.boolean();
    getAction(r, fgAction_);
    getAction(r, bgAction_);
    fgLeft_ = r.u64();
    bgLeft_ = r.u64();
    fgHalted_ = r.boolean();
    bgHalted_ = r.boolean();
    runFg_ = r.boolean();
    fgCpu_ = r.u64();
    bgCpu_ = r.u64();
}

} // namespace rose::soc
