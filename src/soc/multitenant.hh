/**
 * @file
 * Multi-tenant execution on the modeled SoC.
 *
 * The paper's opening motivation: "the performance of each individual
 * accelerator can be heavily impacted by system-level resource
 * contentions where multiple general-purpose cores and accelerators
 * are running together" (Section 1, citing MoCA). These pieces let a
 * RoSÉ mission co-schedule a background task next to the control
 * application and observe the end-to-end impact:
 *
 *  - BackgroundLoad: a periodic batch CPU task (telemetry compression,
 *    logging, mapping back-end) that consumes a duty-cycle fraction of
 *    the CPU.
 *  - TimeSharedWorkload: round-robin time slicing of two workloads on
 *    the single modeled core — the foreground's actions are stretched
 *    by the background's occupancy, exactly how a CFS-class scheduler
 *    degrades a control loop.
 */

#ifndef ROSE_SOC_MULTITENANT_HH
#define ROSE_SOC_MULTITENANT_HH

#include <memory>
#include <string>

#include "soc/workload.hh"
#include "util/units.hh"

namespace rose {
class StateWriter;
class StateReader;
} // namespace rose

namespace rose::soc {

/** A periodic batch CPU task. */
class BackgroundLoad : public Workload
{
  public:
    /**
     * @param busy_cycles work per batch.
     * @param idle_cycles gap between batches (0 = always busy).
     */
    BackgroundLoad(Cycles busy_cycles, Cycles idle_cycles,
                   std::string name = "background");

    std::string workloadName() const override { return name_; }
    Action next(const SocContext &ctx) override;

    uint64_t batchesRun() const { return batches_; }

    /** Serialize batch phase (labels are static, not serialized). */
    void saveState(StateWriter &w) const;
    void restoreState(StateReader &r);

  private:
    Cycles busy_;
    Cycles idle_;
    std::string name_;
    bool inBusy_ = false;
    uint64_t batches_ = 0;
};

/**
 * Round-robin time slicing of a foreground and a background workload
 * on one core. CPU compute actions from either side are interleaved at
 * the given quantum; the foreground's waits (WaitRx) yield the core
 * entirely to the background; accelerator actions pass through
 * unscaled (Gemmini runs asynchronously of the CPU's scheduler).
 */
class TimeSharedWorkload : public Workload
{
  public:
    /**
     * @param foreground the latency-critical application.
     * @param background the co-tenant.
     * @param fg_quantum foreground time slice [cycles].
     * @param bg_quantum background time slice [cycles]; the background
     *        receives roughly bg/(fg+bg) of the core when both are
     *        runnable.
     */
    TimeSharedWorkload(Workload &foreground, Workload &background,
                       Cycles fg_quantum = 100'000,
                       Cycles bg_quantum = 100'000);

    std::string workloadName() const override;
    Action next(const SocContext &ctx) override;

    /** CPU cycles consumed by each side so far. */
    Cycles foregroundCpuCycles() const { return fgCpu_; }
    Cycles backgroundCpuCycles() const { return bgCpu_; }

    /** Serialize scheduler state; fg/bg workloads serialize separately. */
    void saveState(StateWriter &w) const;
    void restoreState(StateReader &r);

  private:
    Action nextFromSide(bool fg_side, const SocContext &ctx);

    Workload &fg_;
    Workload &bg_;
    Cycles fgQuantum_;
    Cycles bgQuantum_;

    // Residual cycles of each side's in-flight CPU action.
    bool fgHave_ = false, bgHave_ = false;
    Action fgAction_, bgAction_;
    Cycles fgLeft_ = 0, bgLeft_ = 0;
    bool fgHalted_ = false, bgHalted_ = false;
    bool runFg_ = true; ///< whose turn the next quantum is

    Cycles fgCpu_ = 0, bgCpu_ = 0;
};

} // namespace rose::soc

#endif // ROSE_SOC_MULTITENANT_HH
