#include "rv_workload.hh"

#include "util/logging.hh"

namespace rose::soc {

void
attachMmioDevice(rv::Core &core, MmioDevice &dev, uint32_t base)
{
    core.setMmioWindow(
        base, uint32_t(dev.windowSize()),
        [&dev](uint32_t off) { return dev.read(off); },
        [&dev](uint32_t off, uint32_t v) { dev.write(off, v); });
}

RvWorkload::RvWorkload(rv::Core &core, rv::TimingModel &timing,
                       std::string name, uint64_t chunk_insns)
    : core_(core), timing_(timing), name_(std::move(name)),
      chunk_(chunk_insns)
{
    rose_assert(chunk_ > 0, "chunk must be positive");
}

Action
RvWorkload::next(const SocContext &)
{
    if (wantWait_) {
        wantWait_ = false;
        return Action::waitRx("fence");
    }
    if (core_.stopReason() != rv::StopReason::Running) {
        if (core_.stopReason() != rv::StopReason::Ecall) {
            rose_warn("RV workload stopped abnormally: reason=",
                      int(core_.stopReason()), " pc=0x", std::hex,
                      core_.pc());
        }
        return Action::halt();
    }

    // Execute up to one chunk, breaking at fences (wait-for-IO).
    uint64_t n = 0;
    bool fenced = false;
    while (n < chunk_ &&
           core_.stopReason() == rv::StopReason::Running) {
        rv::Retired r = core_.step();
        timing_.retire(r);
        ++n;
        if (r.insn.op == rv::Op::Fence) {
            fenced = true;
            break;
        }
    }

    Cycles total = timing_.cycles();
    Cycles delta = total - lastCycles_;
    lastCycles_ = total;
    if (fenced)
        wantWait_ = true;
    if (delta == 0) {
        // Shouldn't happen (every insn costs >= a cycle-third), but
        // never hand the engine a zero-cost livelock.
        delta = 1;
    }
    return Action::compute(delta, Unit::Cpu, "rv-chunk");
}

} // namespace rose::soc
