/**
 * @file
 * Adapter running an RV32IM program (built with the bundled assembler)
 * as a SoC workload — the "classical control workloads" path of the
 * paper's software build flow (Section 3.3).
 *
 * The program talks to the RoSÉ bridge through an MMIO window mapped at
 * kBridgeMmioBase; the functional core executes instructions while a
 * Rocket- or BOOM-class timing model accumulates cycles, which are
 * surfaced to the SoC engine as compute actions in chunks.
 *
 * Two conventions give the program access to co-simulation pacing:
 *  - `fence` parks the hart until the bridge RX queue is non-empty
 *    (a WFI-like idiom; cheap to simulate across long stalls);
 *  - `ecall` halts the workload.
 */

#ifndef ROSE_SOC_RV_WORKLOAD_HH
#define ROSE_SOC_RV_WORKLOAD_HH

#include <string>

#include "rv/core.hh"
#include "rv/timing.hh"
#include "soc/device.hh"
#include "soc/workload.hh"

namespace rose::soc {

/** Base address of the bridge register window in the target map. */
constexpr uint32_t kBridgeMmioBase = 0x40000000u;

/** Map an MmioDevice into a core's address space at the given base. */
void attachMmioDevice(rv::Core &core, MmioDevice &dev,
                      uint32_t base = kBridgeMmioBase);

/** RV program as a workload. */
class RvWorkload : public Workload
{
  public:
    /**
     * @param core functional core with the program already loaded.
     * @param timing timing model matching the SoC's CPU class.
     * @param name reported workload name.
     * @param chunk_insns max instructions folded into one action.
     */
    RvWorkload(rv::Core &core, rv::TimingModel &timing,
               std::string name, uint64_t chunk_insns = 4096);

    std::string workloadName() const override { return name_; }
    Action next(const SocContext &ctx) override;

    const rv::Core &core() const { return core_; }

  private:
    rv::Core &core_;
    rv::TimingModel &timing_;
    std::string name_;
    uint64_t chunk_;
    Cycles lastCycles_ = 0;
    bool wantWait_ = false;
};

} // namespace rose::soc

#endif // ROSE_SOC_RV_WORKLOAD_HH
