#include "socsim.hh"

#include "util/logging.hh"
#include "util/serde.hh"

namespace rose::soc {

SocSim::SocSim(bridge::RoseBridge &bridge, Workload &workload,
               const SocConfig &cfg)
    : bridge_(bridge), workload_(workload), cfg_(cfg)
{
}

void
SocSim::runPeriod()
{
    // Receive the synchronizer's grant and any data packets queued at
    // this boundary (responses to last period's requests).
    bridge_.hostService();
    Cycles budget = bridge_.cycleBudget();
    // A missing grant is a recoverable lockstep fault (e.g. the
    // SyncGrant was dropped by an injected transport fault), not a
    // programming error: throw so a supervisor can restore a
    // checkpoint rather than aborting the process.
    if (budget == 0)
        throw bridge::TransportError(
            "runPeriod without a cycle grant (SyncGrant lost or "
            "lockstep driven out of order)");

    Cycles consumed = 0;
    while (consumed < budget) {
        if (!havePending_) {
            SocContext ctx{stats_.totalCycles + consumed,
                           bridge_.rxFifo().packetCount()};
            pending_ = workload_.next(ctx);
            pendingLeft_ = pending_.cycles;
            havePending_ = true;
            ++stats_.actionsIssued;
        }

        switch (pending_.kind) {
          case Action::Kind::Halt: {
            halted_ = true;
            Cycles rest = budget - consumed;
            if (trace_ && rest > 0) {
                trace_->record({stats_.totalCycles + consumed, rest,
                                Unit::Cpu, "",
                                TraceEvent::Kind::Idle});
            }
            stats_.haltIdleCycles += rest;
            consumed = budget;
            break;
          }
          case Action::Kind::WaitRx: {
            if (bridge_.rxFifo().packetCount() > 0) {
                // Data ready: the wait completes instantly.
                havePending_ = false;
            } else {
                // RX can only change at a sync boundary; the polling
                // loop spins for the rest of the grant — or until the
                // wait's timeout budget (pendingLeft_) runs dry, at
                // which point the workload regains control and can
                // re-request a lost packet.
                Cycles rest = budget - consumed;
                if (pendingLeft_ > 0)
                    rest = std::min(rest, pendingLeft_);
                if (trace_ && rest > 0) {
                    trace_->record({stats_.totalCycles + consumed,
                                    rest, Unit::Cpu, pending_.what,
                                    TraceEvent::Kind::Stall});
                }
                stats_.rxStallCycles += rest;
                consumed += rest;
                if (pendingLeft_ > 0) {
                    pendingLeft_ -= rest;
                    if (pendingLeft_ == 0)
                        havePending_ = false; // wait timed out
                }
            }
            break;
          }
          case Action::Kind::Compute: {
            Cycles take = std::min(pendingLeft_, budget - consumed);
            if (trace_ && take > 0) {
                trace_->record({stats_.totalCycles + consumed, take,
                                pending_.unit, pending_.what,
                                TraceEvent::Kind::Compute});
            }
            consumed += take;
            pendingLeft_ -= take;
            switch (pending_.unit) {
              case Unit::Cpu: stats_.cpuBusyCycles += take; break;
              case Unit::Accel: stats_.accelBusyCycles += take; break;
              case Unit::Io: stats_.ioBusyCycles += take; break;
            }
            if (pendingLeft_ == 0)
                havePending_ = false;
            break;
          }
        }
    }

    stats_.totalCycles += budget;
    ++stats_.periods;
    bridge_.consumeCycles(budget);
    // Flush TX data packets first, then SyncDone, so the period's
    // completion marker is the last packet on the wire: once the
    // synchronizer sees it, every data packet of the period has
    // arrived (ordered transports), making the host-side SyncDone
    // wait a sound barrier.
    bridge_.hostService();
    bridge_.completeSync(budget);
}

void
SocSim::saveState(StateWriter &w) const
{
    w.u64(stats_.totalCycles);
    w.u64(stats_.cpuBusyCycles);
    w.u64(stats_.accelBusyCycles);
    w.u64(stats_.ioBusyCycles);
    w.u64(stats_.rxStallCycles);
    w.u64(stats_.haltIdleCycles);
    w.u64(stats_.actionsIssued);
    w.u64(stats_.periods);
    w.boolean(havePending_);
    w.u8(uint8_t(pending_.kind));
    w.u64(pending_.cycles);
    w.u8(uint8_t(pending_.unit));
    w.u64(pendingLeft_);
    w.boolean(halted_);
}

void
SocSim::restoreState(StateReader &r)
{
    stats_.totalCycles = r.u64();
    stats_.cpuBusyCycles = r.u64();
    stats_.accelBusyCycles = r.u64();
    stats_.ioBusyCycles = r.u64();
    stats_.rxStallCycles = r.u64();
    stats_.haltIdleCycles = r.u64();
    stats_.actionsIssued = r.u64();
    stats_.periods = r.u64();
    havePending_ = r.boolean();
    pending_.kind = Action::Kind(r.u8());
    pending_.cycles = r.u64();
    pending_.unit = Unit(r.u8());
    pending_.what = "";
    pendingLeft_ = r.u64();
    halted_ = r.boolean();
}

} // namespace rose::soc
