/**
 * @file
 * The SoC cycle engine: the FireSim-equivalent simulator side.
 *
 * Advances the modeled SoC strictly within the cycle budget granted by
 * the synchronizer through the RoSÉ bridge control unit, so the whole
 * co-simulation stays in lockstep. One call to runPeriod() performs the
 * SoC side of a synchronization period:
 *
 *   1. bridge host-service: receive the grant + queued RX data packets;
 *   2. execute workload actions until the grant is exhausted — compute
 *      bursts are charged to their unit, waits on RX stall to the
 *      period boundary (RX only changes at boundaries, exactly the
 *      artificial latency of Figure 16);
 *   3. report SyncDone and flush TX packets back to the host.
 */

#ifndef ROSE_SOC_SOCSIM_HH
#define ROSE_SOC_SOCSIM_HH

#include "bridge/rose_bridge.hh"
#include "soc/config.hh"
#include "soc/trace.hh"
#include "soc/workload.hh"
#include "util/units.hh"

namespace rose {
class StateWriter;
class StateReader;
} // namespace rose

namespace rose::soc {

/** Cycle accounting for the evaluation metrics. */
struct SocStats
{
    Cycles totalCycles = 0;
    Cycles cpuBusyCycles = 0;
    Cycles accelBusyCycles = 0;
    Cycles ioBusyCycles = 0;
    Cycles rxStallCycles = 0;
    Cycles haltIdleCycles = 0;
    uint64_t actionsIssued = 0;
    uint64_t periods = 0;

    /** Fraction of time the DNN accelerator was executing layers
     *  (Figure 13's "accelerator activity factor"). */
    double
    accelActivityFactor() const
    {
        return totalCycles
                   ? double(accelBusyCycles) / double(totalCycles)
                   : 0.0;
    }
};

/** The engine. */
class SocSim
{
  public:
    SocSim(bridge::RoseBridge &bridge, Workload &workload,
           const SocConfig &cfg);

    /** Execute the SoC side of one synchronization period. */
    void runPeriod();

    /** Current SoC time [cycles]. */
    Cycles now() const { return stats_.totalCycles; }

    /** Seconds of simulated SoC time at the configured clock. */
    double nowSeconds() const
    { return double(stats_.totalCycles) / cfg_.clockHz; }

    bool halted() const { return halted_; }

    const SocStats &stats() const { return stats_; }
    const SocConfig &config() const { return cfg_; }

    /** Attach an action trace recorder (nullptr disables). */
    void setTrace(ActionTrace *trace) { trace_ = trace; }

    /**
     * Serialize cycle counters and the in-flight action. The pending
     * action's trace label (a static string) is not serialized; a
     * restored action carries an empty label — trace-only, no effect
     * on timing or behavior.
     */
    void saveState(StateWriter &w) const;
    void restoreState(StateReader &r);

  private:
    bridge::RoseBridge &bridge_;
    Workload &workload_;
    SocConfig cfg_;
    SocStats stats_;

    bool havePending_ = false;
    Action pending_;
    Cycles pendingLeft_ = 0;
    bool halted_ = false;
    ActionTrace *trace_ = nullptr;
};

} // namespace rose::soc

#endif // ROSE_SOC_SOCSIM_HH
