#include "trace.hh"

#include <fstream>

#include "util/logging.hh"

namespace rose::soc {

namespace {

const char *
unitName(Unit u)
{
    switch (u) {
      case Unit::Cpu: return "cpu";
      case Unit::Accel: return "gemmini";
      case Unit::Io: return "io";
    }
    return "?";
}

const char *
kindName(TraceEvent::Kind k)
{
    switch (k) {
      case TraceEvent::Kind::Compute: return "compute";
      case TraceEvent::Kind::Stall: return "rx-stall";
      case TraceEvent::Kind::Idle: return "idle";
    }
    return "?";
}

} // namespace

void
ActionTrace::writeChromeTrace(const std::string &path,
                              double clock_hz) const
{
    std::ofstream os(path);
    if (!os)
        rose_fatal("cannot open trace output: ", path);

    // Chrome tracing "complete" events: ts/dur in microseconds.
    double to_us = 1e6 / clock_hz;
    os << "[\n";
    bool first = true;
    for (const TraceEvent &e : events_) {
        if (!first)
            os << ",\n";
        first = false;
        const char *name =
            e.kind == TraceEvent::Kind::Compute
                ? (e.label && e.label[0] ? e.label : "compute")
                : kindName(e.kind);
        os << "  {\"name\": \"" << name << "\", \"cat\": \""
           << kindName(e.kind) << "\", \"ph\": \"X\", \"ts\": "
           << double(e.start) * to_us << ", \"dur\": "
           << double(e.duration) * to_us << ", \"pid\": 1, \"tid\": \""
           << unitName(e.unit) << "\"}";
    }
    os << "\n]\n";
}

} // namespace rose::soc
