/**
 * @file
 * Action-level execution tracing for the SoC engine.
 *
 * When enabled, the cycle engine records every executed action slice
 * (unit, label, start cycle, duration). The trace can be exported in
 * Chrome tracing format (chrome://tracing, Perfetto) so co-simulation
 * timelines — inference phases, bridge waits, background-tenant
 * slices, sync-boundary stalls — can be inspected visually, the way
 * FireSim users inspect TracerV output.
 */

#ifndef ROSE_SOC_TRACE_HH
#define ROSE_SOC_TRACE_HH

#include <string>
#include <vector>

#include "soc/workload.hh"
#include "util/units.hh"

namespace rose::soc {

/** One executed slice of an action. */
struct TraceEvent
{
    Cycles start = 0;
    Cycles duration = 0;
    Unit unit = Unit::Cpu;
    /** Static label from the Action (not owned). */
    const char *label = "";
    /** Stall/idle events get synthetic labels. */
    enum class Kind { Compute, Stall, Idle } kind = Kind::Compute;
};

/** Trace recorder; attach to a SocSim via setTrace(). */
class ActionTrace
{
  public:
    /** @param max_events drop events past this bound (safety). */
    explicit ActionTrace(size_t max_events = 1'000'000)
        : maxEvents_(max_events) {}

    void
    record(const TraceEvent &e)
    {
        if (events_.size() < maxEvents_)
            events_.push_back(e);
    }

    const std::vector<TraceEvent> &events() const { return events_; }
    size_t dropped() const { return dropped_; }
    void clear() { events_.clear(); }

    /**
     * Write the trace as a Chrome tracing JSON array. Cycle timestamps
     * are exported as microseconds at the given clock so a 1 GHz SoC
     * renders 1 cycle = 1 ns.
     *
     * @param path output file.
     * @param clock_hz SoC clock for the time conversion.
     */
    void writeChromeTrace(const std::string &path,
                          double clock_hz = 1.0e9) const;

  private:
    size_t maxEvents_;
    size_t dropped_ = 0;
    std::vector<TraceEvent> events_;
};

} // namespace rose::soc

#endif // ROSE_SOC_TRACE_HH
