/**
 * @file
 * Workload abstraction for the SoC cycle engine.
 *
 * Target software is modeled as a sequence of timed actions: compute
 * bursts (attributed to the CPU or the DNN accelerator for
 * activity-factor accounting, Figure 13), I/O register traffic, waits
 * on bridge RX data, and halt. Functional side effects (bridge driver
 * calls, DNN math) happen when the action is issued; the engine then
 * charges the action's cycles against the synchronization budget,
 * which is what creates the latency/contention behavior the paper
 * measures.
 */

#ifndef ROSE_SOC_WORKLOAD_HH
#define ROSE_SOC_WORKLOAD_HH

#include <string>

#include "util/units.hh"

namespace rose::soc {

/** Execution unit an action occupies (activity accounting buckets). */
enum class Unit
{
    Cpu,
    Accel,
    Io,
};

/** One timed step of the workload. */
struct Action
{
    enum class Kind
    {
        Compute, ///< busy for `cycles` on `unit`
        WaitRx,  ///< stall until the bridge RX queue is non-empty
        Halt,    ///< workload finished; idle forever
    };

    Kind kind = Kind::Halt;
    /** Compute: busy cycles. WaitRx: max cycles to stall before the
     *  wait gives up and control returns to the workload (0 = wait
     *  forever) — the target-side timeout that lets software recover
     *  from a lost packet instead of hanging. */
    Cycles cycles = 0;
    Unit unit = Unit::Cpu;
    /** Optional label for tracing/debug. */
    const char *what = "";

    static Action
    compute(Cycles c, Unit u, const char *label = "")
    {
        return {Kind::Compute, c, u, label};
    }

    static Action
    waitRx(const char *label = "", Cycles timeout = 0)
    {
        return {Kind::WaitRx, timeout, Unit::Cpu, label};
    }

    static Action halt() { return {Kind::Halt, 0, Unit::Cpu, ""}; }
};

/** Engine state visible to the workload when it picks its next step. */
struct SocContext
{
    /** Current SoC simulation time [cycles]. */
    Cycles now = 0;
    /** Packets currently waiting in the bridge RX queue. */
    size_t rxPackets = 0;
};

/**
 * A target application. The engine calls next() whenever the previous
 * action has fully elapsed (or, for WaitRx, when data is available).
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string workloadName() const = 0;

    /** Produce the next action. Must be side-effect-complete: any
     *  bridge-driver or DNN work the action represents has already
     *  been performed functionally when this returns. */
    virtual Action next(const SocContext &ctx) = 0;
};

} // namespace rose::soc

#endif // ROSE_SOC_WORKLOAD_HH
