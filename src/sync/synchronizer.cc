#include "synchronizer.hh"

#include <cmath>

#include "util/logging.hh"

namespace rose::sync {

Synchronizer::Synchronizer(env::EnvSim &env, bridge::Transport &transport,
                           const SyncConfig &cfg)
    : env_(env), transport_(transport), cfg_(cfg)
{
    rose_assert(cfg_.cyclesPerSync > 0, "sync period must be positive");
}

void
Synchronizer::configure()
{
    transport_.send(bridge::encodeCfgStepSize(cfg_.cyclesPerSync));
    configured_ = true;
}

Frames
Synchronizer::framesPerPeriod() const
{
    double frames = static_cast<double>(cfg_.cyclesPerSync) /
                    (cfg_.clocks.socClockHz / cfg_.clocks.envFrameHz);
    return static_cast<Frames>(frames);
}

double
Synchronizer::grantedSimTime() const
{
    return cfg_.clocks.cyclesToSeconds(stats_.grantsSent *
                                       cfg_.cyclesPerSync);
}

void
Synchronizer::beginPeriod()
{
    rose_assert(configured_, "configure() must precede beginPeriod()");
    rose_assert(!periodOpen_, "previous period still open");
    transport_.send(bridge::encodeSyncGrant(cfg_.cyclesPerSync));
    ++stats_.grantsSent;
    periodOpen_ = true;
}

void
Synchronizer::endPeriod()
{
    rose_assert(periodOpen_, "endPeriod() without beginPeriod()");

    // Poll everything the SoC side produced during the period. Data
    // packets turn into environment API calls; their responses are
    // queued on the transport and reach the SoC's RX queue at the next
    // bridge host-service, i.e. the next period boundary — this is the
    // artificial synchronization latency Figure 16 measures.
    bool done_seen = false;
    bridge::Packet p;
    while (transport_.recv(p)) {
        if (p.type == bridge::PacketType::SyncDone) {
            done_seen = true;
            ++stats_.donesReceived;
        } else {
            servicePacket(p);
        }
    }
    if (!done_seen) {
        // With the in-process lockstep the SoC must have finished its
        // grant before the boundary; a missing SyncDone means the
        // caller drove the loop out of order.
        rose_warn("sync period ended without SyncDone");
    }

    // Advance the environment by the matching frames (Equation 1),
    // carrying fractional frames so long runs do not drift.
    double exact = static_cast<double>(cfg_.cyclesPerSync) /
                   (cfg_.clocks.socClockHz / cfg_.clocks.envFrameHz) +
                   frameCarry_;
    Frames whole = static_cast<Frames>(exact);
    frameCarry_ = exact - static_cast<double>(whole);
    env_.stepFrames(whole);
    stats_.framesStepped += whole;

    ++stats_.periods;
    periodOpen_ = false;
}

void
Synchronizer::servicePacket(const bridge::Packet &p)
{
    using bridge::PacketType;
    switch (p.type) {
      case PacketType::ImuReq:
        ++stats_.imuRequests;
        transport_.send(bridge::encodeImuResp(env_.getImu()));
        break;
      case PacketType::ImageReq:
        ++stats_.imageRequests;
        transport_.send(bridge::encodeImageResp(env_.getImage()));
        break;
      case PacketType::DepthReq:
        ++stats_.depthRequests;
        transport_.send(bridge::encodeDepthResp(env_.getDepth()));
        break;
      case PacketType::VelocityCmd: {
        ++stats_.velocityCommands;
        bridge::VelocityCmdPayload v = bridge::decodeVelocityCmd(p);
        env_.commandVelocity(v.forward, v.lateral, v.yawRate);
        lastCmd_ = {true, v.forward, v.lateral, v.yawRate,
                    env_.simTime()};
        break;
      }
      default:
        ++stats_.unknownPackets;
        rose_warn("synchronizer: unhandled packet ",
                  bridge::packetTypeName(p.type));
        break;
    }
}

} // namespace rose::sync
