#include "synchronizer.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/logging.hh"
#include "util/serde.hh"

namespace rose::sync {

Synchronizer::Synchronizer(env::EnvSim &env, bridge::Transport &transport,
                           const SyncConfig &cfg)
    : env_(env), transport_(transport), cfg_(cfg)
{
    rose_assert(cfg_.cyclesPerSync > 0, "sync period must be positive");
}

void
Synchronizer::configure()
{
    transport_.send(bridge::encodeCfgStepSize(cfg_.cyclesPerSync));
    configured_ = true;
}

double
Synchronizer::exactFramesPerPeriod() const
{
    return static_cast<double>(cfg_.cyclesPerSync) /
           (cfg_.clocks.socClockHz / cfg_.clocks.envFrameHz);
}

Frames
Synchronizer::framesPerPeriod() const
{
    // Include the fractional-frame carry so the reported count is the
    // count endPeriod() will actually step (1.5 frames/period reports
    // 1, 2, 1, 2, ... in lockstep with the environment).
    return static_cast<Frames>(exactFramesPerPeriod() + frameCarry_);
}

double
Synchronizer::grantedSimTime() const
{
    return cfg_.clocks.cyclesToSeconds(stats_.grantsSent *
                                       cfg_.cyclesPerSync);
}

void
Synchronizer::beginPeriod()
{
    rose_assert(configured_, "configure() must precede beginPeriod()");
    rose_assert(!periodOpen_, "previous period still open");
    transport_.send(bridge::encodeSyncGrant(cfg_.cyclesPerSync));
    ++stats_.grantsSent;
    periodOpen_ = true;
}

void
Synchronizer::endPeriod()
{
    rose_assert(periodOpen_, "endPeriod() without beginPeriod()");

    // Poll everything the SoC side produced during the period. Data
    // packets turn into environment API calls; their responses are
    // queued on the transport and reach the SoC's RX queue at the next
    // bridge host-service, i.e. the next period boundary — this is the
    // artificial synchronization latency Figure 16 measures.
    //
    // The SoC side sends SyncDone as the last packet of its period, so
    // once it is seen every data packet of the period has been drained.
    // Until then: on a blocking transport (TCP) the bytes may simply be
    // in flight, so wait — but never past the sync deadline, and never
    // on a peer that is known dead.
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    bool done_seen = false;
    bridge::Packet p;
    while (true) {
        while (transport_.recv(p)) {
            if (p.type == bridge::PacketType::SyncDone) {
                done_seen = true;
                ++stats_.donesReceived;
            } else {
                servicePacket(p);
            }
        }
        if (done_seen)
            break;

        if (transport_.state() != bridge::TransportState::Open) {
            throw bridge::TransportError(detail::concat(
                "sync period ", stats_.periods + 1,
                ": bridge transport closed before SyncDone (SoC "
                "simulator died mid-period)"));
        }
        if (!transport_.supportsWait()) {
            // In-process lockstep cannot block: the SoC must have
            // finished its grant before this boundary, so a missing
            // SyncDone means the caller drove the loop out of order.
            throw bridge::TransportError(detail::concat(
                "sync period ", stats_.periods + 1,
                " ended without SyncDone on a non-blocking transport "
                "(SyncDone lost to fault injection, or lockstep driven "
                "out of order)"));
        }
        auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                          clock::now() - t0)
                          .count();
        if (cfg_.syncDeadlineMs > 0 &&
            waited >= long(cfg_.syncDeadlineMs)) {
            throw bridge::TransportError(detail::concat(
                "sync period ", stats_.periods + 1, ": no SyncDone "
                "within the ", cfg_.syncDeadlineMs, " ms deadline — "
                "the SoC side is stalled (grant lost, peer wedged, or "
                "deadline too tight for this sync granularity)"));
        }
        // Bounded wait; short slices keep the deadline check live even
        // if the peer trickles unrelated bytes.
        int slice = 50;
        if (cfg_.syncDeadlineMs > 0) {
            slice = std::min<long>(slice,
                                   long(cfg_.syncDeadlineMs) - waited);
        }
        ++stats_.deadlineWaits;
        transport_.waitReadable(slice);
    }

    // Advance the environment by the matching frames (Equation 1),
    // carrying fractional frames so long runs do not drift.
    double exact = exactFramesPerPeriod() + frameCarry_;
    Frames whole = static_cast<Frames>(exact);
    frameCarry_ = exact - static_cast<double>(whole);
    env_.stepFrames(whole);
    stats_.framesStepped += whole;

    ++stats_.periods;
    periodOpen_ = false;
}

void
Synchronizer::servicePacket(const bridge::Packet &p)
{
    using bridge::PacketType;
    switch (p.type) {
      case PacketType::ImuReq:
        ++stats_.imuRequests;
        transport_.send(bridge::encodeImuResp(env_.getImu()));
        break;
      case PacketType::ImageReq:
        ++stats_.imageRequests;
        env_.getImageInto(imageScratch_);
        transport_.send(bridge::encodeImageResp(imageScratch_));
        break;
      case PacketType::DepthReq:
        ++stats_.depthRequests;
        transport_.send(bridge::encodeDepthResp(env_.getDepth()));
        break;
      case PacketType::VelocityCmd: {
        ++stats_.velocityCommands;
        bridge::VelocityCmdPayload v = bridge::decodeVelocityCmd(p);
        env_.commandVelocity(v.forward, v.lateral, v.yawRate);
        lastCmd_ = {true, v.forward, v.lateral, v.yawRate,
                    env_.simTime()};
        break;
      }
      default:
        ++stats_.unknownPackets;
        rose_warn("synchronizer: unhandled packet ",
                  bridge::packetTypeName(p.type));
        break;
    }
}

void
Synchronizer::saveState(StateWriter &w) const
{
    w.u64(stats_.periods);
    w.u64(stats_.grantsSent);
    w.u64(stats_.donesReceived);
    w.u64(stats_.imuRequests);
    w.u64(stats_.imageRequests);
    w.u64(stats_.depthRequests);
    w.u64(stats_.velocityCommands);
    w.u64(stats_.framesStepped);
    w.u64(stats_.unknownPackets);
    w.u64(stats_.deadlineWaits);
    w.boolean(lastCmd_.valid);
    w.f64(lastCmd_.forward);
    w.f64(lastCmd_.lateral);
    w.f64(lastCmd_.yawRate);
    w.f64(lastCmd_.envTime);
    w.boolean(configured_);
    w.boolean(periodOpen_);
    w.f64(frameCarry_);
}

void
Synchronizer::restoreState(StateReader &r)
{
    stats_.periods = r.u64();
    stats_.grantsSent = r.u64();
    stats_.donesReceived = r.u64();
    stats_.imuRequests = r.u64();
    stats_.imageRequests = r.u64();
    stats_.depthRequests = r.u64();
    stats_.velocityCommands = r.u64();
    stats_.framesStepped = r.u64();
    stats_.unknownPackets = r.u64();
    stats_.deadlineWaits = r.u64();
    lastCmd_.valid = r.boolean();
    lastCmd_.forward = r.f64();
    lastCmd_.lateral = r.f64();
    lastCmd_.yawRate = r.f64();
    lastCmd_.envTime = r.f64();
    configured_ = r.boolean();
    periodOpen_ = r.boolean();
    frameCarry_ = r.f64();
}

} // namespace rose::sync
