/**
 * @file
 * The RoSÉ synchronizer (Section 3.4, Algorithm 1).
 *
 * Runs the lockstep synchronization loop between the environment
 * simulator and the (FireSim-equivalent) SoC simulator. A
 * synchronization period is defined in SoC clock cycles; the matching
 * number of environment frames follows Equation 1:
 *
 *     airsim_steps / firesim_steps = soc_clock_freq / airsim_frame_freq
 *
 * The synchronizer owns the environment side: it decodes data packets
 * received from the bridge into environment API calls (sensor samples,
 * actuation) and encodes the results back into packets, exactly as the
 * paper's synchronizer translates RoSÉ I/O packets into AirSim RPC
 * calls. It never exposes simulator internals to the SoC.
 *
 * In-process lockstep: the caller (the co-simulation top) alternates
 * beginPeriod() / SoC execution / endPeriod(); see cosim.hh.
 */

#ifndef ROSE_SYNC_SYNCHRONIZER_HH
#define ROSE_SYNC_SYNCHRONIZER_HH

#include <cstdint>

#include "bridge/packet.hh"
#include "bridge/transport.hh"
#include "env/envsim.hh"
#include "util/units.hh"

namespace rose::sync {

/** Synchronization parameters. */
struct SyncConfig
{
    /** Synchronization granularity in SoC cycles (Figure 16 sweeps
     *  this from 10M to 400M). */
    Cycles cyclesPerSync = 10 * kMegaCycles;
    /** Clock relationship between the two simulators. */
    ClockRatio clocks{1.0e9, 100.0};
    /**
     * Wall-clock deadline for the SoC side to report SyncDone after a
     * period's packets are drained [ms]. Only meaningful on transports
     * that can block (TCP); endPeriod() throws bridge::TransportError
     * with a diagnostic when it expires, instead of looping forever on
     * a stalled or dead SoC simulator. 0 disables the deadline.
     */
    uint32_t syncDeadlineMs = 5000;
};

/** Counters for evaluating synchronizer behavior. */
struct SyncStats
{
    uint64_t periods = 0;
    uint64_t grantsSent = 0;
    uint64_t donesReceived = 0;
    uint64_t imuRequests = 0;
    uint64_t imageRequests = 0;
    uint64_t depthRequests = 0;
    uint64_t velocityCommands = 0;
    uint64_t framesStepped = 0;
    uint64_t unknownPackets = 0;
    /** Bounded waits taken for a late SyncDone (TCP in-flight data). */
    uint64_t deadlineWaits = 0;
};

/** Most recent actuation command observed (for trajectory logging). */
struct LastCommand
{
    bool valid = false;
    double forward = 0.0;
    double lateral = 0.0;
    double yawRate = 0.0;
    double envTime = 0.0;
};

/** Lockstep synchronizer. */
class Synchronizer
{
  public:
    /**
     * @param env the environment simulator (owned by the caller).
     * @param transport endpoint facing the RoSÉ bridge.
     */
    Synchronizer(env::EnvSim &env, bridge::Transport &transport,
                 const SyncConfig &cfg);

    /**
     * Send the step-size configuration to the bridge
     * (set_firesim_steps in Algorithm 1). Must be called once before
     * the first period.
     */
    void configure();

    /**
     * Start a synchronization period: allocate execution tokens to the
     * SoC simulator by sending a SyncGrant for cyclesPerSync.
     */
    void beginPeriod();

    /**
     * Finish a synchronization period: poll packets from the SoC side,
     * translate data packets into environment API calls (responses are
     * sent back through the transport and become visible to the SoC at
     * the next period), verify SyncDone arrived, and advance the
     * environment by the matching number of frames.
     *
     * On a blocking-capable transport (TCP) this waits up to
     * SyncConfig::syncDeadlineMs for the SoC side's SyncDone.
     *
     * @throws bridge::TransportError when the peer closed, the wire
     *         corrupted, or no SyncDone arrived within the deadline —
     *         a loud diagnostic instead of an infinite lockstep spin.
     */
    void endPeriod();

    /**
     * Environment frames the next endPeriod() will step: the Equation 1
     * ratio plus the fractional-frame carry accumulated so far, so this
     * always agrees with the frames actually stepped — including on
     * non-integer cycle/frame ratios.
     */
    Frames framesPerPeriod() const;

    const SyncConfig &config() const { return cfg_; }
    const SyncStats &stats() const { return stats_; }
    const LastCommand &lastCommand() const { return lastCmd_; }

    /** Total simulated SoC time granted so far [s]. */
    double grantedSimTime() const;

    /** Serialize period bookkeeping (stats, last command, carry). */
    void saveState(StateWriter &w) const;
    void restoreState(StateReader &r);

  private:
    void servicePacket(const bridge::Packet &p);

    /** Equation 1 frames per period before integer truncation. */
    double exactFramesPerPeriod() const;

    env::EnvSim &env_;
    bridge::Transport &transport_;
    SyncConfig cfg_;
    /** Reused camera-frame buffer for ImageReq servicing (pure scratch,
     *  never checkpointed: rendering is repeated on demand). */
    env::Image imageScratch_;
    SyncStats stats_;
    LastCommand lastCmd_;
    bool configured_ = false;
    bool periodOpen_ = false;
    /** Fractional-frame accumulator so non-integer ratios stay exact. */
    double frameCarry_ = 0.0;
};

} // namespace rose::sync

#endif // ROSE_SYNC_SYNCHRONIZER_HH
