/**
 * @file
 * Aligned storage helpers for the SIMD kernels.
 *
 * The GEMM microkernel's packed panels are loaded 8 floats (32 bytes)
 * at a time; serving them from 32-byte-aligned storage lets the AVX2
 * path use aligned vector loads and keeps the panel rows from
 * straddling cache lines. AlignedVec is a drop-in std::vector whose
 * allocations are aligned to kSimdAlign via the aligned operator new
 * (C++17 align_val_t), so existing .data()/.resize() call sites are
 * unchanged.
 */

#ifndef ROSE_UTIL_ALIGNED_HH
#define ROSE_UTIL_ALIGNED_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace rose {

/** Alignment of SIMD-loaded buffers (one AVX2 vector / half a cache
 *  line). Chosen once here so the packer and the kernels agree. */
constexpr size_t kSimdAlign = 32;

/** Minimal aligned allocator (std::allocator semantics). */
template <typename T, size_t Align = kSimdAlign>
struct AlignedAlloc
{
    static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                  "alignment must be a power of two >= alignof(T)");
    using value_type = T;

    AlignedAlloc() noexcept = default;
    template <typename U>
    AlignedAlloc(const AlignedAlloc<U, Align> &) noexcept {}

    template <typename U>
    struct rebind
    {
        using other = AlignedAlloc<U, Align>;
    };

    T *
    allocate(size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t(Align)));
    }

    void
    deallocate(T *p, size_t) noexcept
    {
        ::operator delete(p, std::align_val_t(Align));
    }

    template <typename U>
    bool operator==(const AlignedAlloc<U, Align> &) const noexcept
    { return true; }
    template <typename U>
    bool operator!=(const AlignedAlloc<U, Align> &) const noexcept
    { return false; }
};

/** std::vector with kSimdAlign-aligned storage. */
template <typename T>
using AlignedVec = std::vector<T, AlignedAlloc<T, kSimdAlign>>;

/** True when @p p is aligned to @p align bytes. */
inline bool
isAligned(const void *p, size_t align = kSimdAlign)
{
    return (reinterpret_cast<uintptr_t>(p) & (align - 1)) == 0;
}

} // namespace rose

#endif // ROSE_UTIL_ALIGNED_HH
