/**
 * @file
 * Reusable scratch buffers for per-frame hot paths.
 *
 * The inference loop (im2col, GEMM outputs, layer tensors, pose
 * estimation profiles) needs the same set of working buffers every
 * frame. ScratchArena owns those buffers by stable integer slot: the
 * first frame sizes them, every later frame reuses the same capacity,
 * so the steady state performs zero heap allocations — a property the
 * microbench allocation counter and tests/test_hotpath.cc verify.
 *
 * Slots are plain indices (callers derive them deterministically, e.g.
 * layer-index * purposes + purpose), which keeps lookup allocation-free
 * — no string keys, no hashing. An arena is single-owner state, not
 * thread-safe; parallel workers each carry their own (the same contract
 * as the per-mission RNGs).
 */

#ifndef ROSE_UTIL_ARENA_HH
#define ROSE_UTIL_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace rose {

/** Slot-indexed pool of reusable float buffers. */
class ScratchArena
{
  public:
    /**
     * The buffer for @p slot, resized to exactly @p n elements.
     * Capacity is retained across calls: once a slot has seen its
     * steady-state size, later frames neither allocate nor free.
     * Contents of a freshly grown region are value-initialized by
     * resize; previously used regions keep stale values — callers
     * overwrite or explicitly clear.
     */
    std::vector<float> &
    floats(size_t slot, size_t n)
    {
        while (bufs_.size() <= slot) {
            bufs_.emplace_back();
            ++growthEvents_;
        }
        std::vector<float> &v = bufs_[slot];
        if (n > v.capacity())
            ++growthEvents_;
        v.resize(n);
        return v;
    }

    /** Slots touched so far. */
    size_t slots() const { return bufs_.size(); }

    /**
     * Number of times any slot had to grow (or be created). Stable
     * growth count across frames == zero steady-state allocation.
     */
    uint64_t growthEvents() const { return growthEvents_; }

    /** Total float capacity held, in bytes (diagnostic). */
    size_t
    bytesReserved() const
    {
        size_t total = 0;
        for (const std::vector<float> &v : bufs_)
            total += v.capacity() * sizeof(float);
        return total;
    }

    /** Release all buffers (next frame re-grows from empty). */
    void
    clear()
    {
        bufs_.clear();
    }

  private:
    // deque: growing never moves existing buffers, so references handed
    // out earlier in a frame stay valid while later slots are touched.
    std::deque<std::vector<float>> bufs_;
    uint64_t growthEvents_ = 0;
};

} // namespace rose

#endif // ROSE_UTIL_ARENA_HH
