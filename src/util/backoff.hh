/**
 * @file
 * Capped exponential backoff with deterministic jitter.
 *
 * The serve layer retries two things: a client re-dialing a daemon
 * that dropped its connection, and a submitter re-offering a mission
 * that admission control shed (queue_full). Both want the same
 * policy — delays that grow geometrically up to a cap, with a random
 * jitter fraction subtracted so a herd of retriers decorrelates
 * instead of thundering back in lockstep. The jitter draws from a
 * seeded util Rng, so tests (and the deterministic batch harness)
 * reproduce exact retry schedules.
 */

#ifndef ROSE_UTIL_BACKOFF_HH
#define ROSE_UTIL_BACKOFF_HH

#include <algorithm>
#include <cstdint>

#include "util/rng.hh"

namespace rose {

/** Backoff policy knobs. */
struct BackoffConfig
{
    /** First delay [ms]. */
    int baseMs = 50;
    /** Delay ceiling [ms]; growth saturates here. */
    int capMs = 2000;
    /** Geometric growth factor per attempt. */
    double multiplier = 2.0;
    /**
     * Fraction of each delay randomized away: the returned delay is
     * uniform in [(1 - jitter) * d, d]. 0 is fully deterministic;
     * 1 is "full jitter".
     */
    double jitter = 0.5;
};

/**
 * One retry schedule: nextDelayMs() yields the jittered delay for
 * attempt 0, 1, 2, ... Reset() rewinds to attempt 0 (e.g. after a
 * successful request, so the next failure starts cheap again).
 */
class Backoff
{
  public:
    explicit Backoff(const BackoffConfig &cfg = {},
                     uint64_t seed = 0xb0ffULL)
        : cfg_(cfg), rng_(seed)
    {
        if (cfg_.baseMs < 1)
            cfg_.baseMs = 1;
        if (cfg_.capMs < cfg_.baseMs)
            cfg_.capMs = cfg_.baseMs;
        if (cfg_.multiplier < 1.0)
            cfg_.multiplier = 1.0;
        cfg_.jitter = std::clamp(cfg_.jitter, 0.0, 1.0);
        current_ = double(cfg_.baseMs);
    }

    /** Jittered delay for the next attempt [ms], in
     *  [(1-jitter)*d, d] where d is the capped exponential value. */
    int nextDelayMs()
    {
        double d = std::min(current_, double(cfg_.capMs));
        current_ = std::min(current_ * cfg_.multiplier,
                            double(cfg_.capMs));
        attempt_++;
        double shaved = cfg_.jitter * d * rng_.uniform();
        int delay = int(d - shaved);
        return std::max(1, delay);
    }

    /** Attempts drawn since construction / the last reset(). */
    int attempts() const { return attempt_; }

    void reset()
    {
        current_ = double(cfg_.baseMs);
        attempt_ = 0;
    }

  private:
    BackoffConfig cfg_;
    Rng rng_;
    double current_ = 0.0;
    int attempt_ = 0;
};

} // namespace rose

#endif // ROSE_UTIL_BACKOFF_HH
