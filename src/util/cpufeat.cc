#include "cpufeat.hh"

namespace rose {

namespace {

CpuFeatures
detect()
{
    CpuFeatures f;
#if defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
    __builtin_cpu_init();
    f.avx2 = __builtin_cpu_supports("avx2");
    f.fma = __builtin_cpu_supports("fma");
#endif
#endif
    return f;
}

} // namespace

const CpuFeatures &
cpuFeatures()
{
    static const CpuFeatures f = detect();
    return f;
}

} // namespace rose
