/**
 * @file
 * Runtime CPU feature detection for kernel dispatch.
 *
 * The SIMD GEMM microkernels (src/gemmini) are compiled per-file with
 * the matching -m flags and selected at startup, so one binary runs
 * correctly on any x86-64 host (and on non-x86 hosts, where detection
 * reports no vector features and the portable kernel is used). The
 * detection itself is this one tiny, cached probe; policy — which
 * kernel tier to run — lives with the kernels, not here.
 */

#ifndef ROSE_UTIL_CPUFEAT_HH
#define ROSE_UTIL_CPUFEAT_HH

namespace rose {

/** Vector features of the host CPU relevant to the kernels. */
struct CpuFeatures
{
    bool avx2 = false;
    bool fma = false; ///< FMA3 (always paired with avx2 checks here)
};

/** Detected features of the running host (probed once, cached). */
const CpuFeatures &cpuFeatures();

} // namespace rose

#endif // ROSE_UTIL_CPUFEAT_HH
