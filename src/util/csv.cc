#include "csv.hh"

#include "logging.hh"

namespace rose {

namespace {

void
emitRow(std::ostream &os, const std::vector<std::string> &cells)
{
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os << ',';
        // Quote cells containing separators; the logs we emit are plain
        // numeric, so this path is rare.
        const std::string &c = cells[i];
        if (c.find_first_of(",\"\n") != std::string::npos) {
            os << '"';
            for (char ch : c) {
                if (ch == '"')
                    os << '"';
                os << ch;
            }
            os << '"';
        } else {
            os << c;
        }
    }
    os << '\n';
}

} // namespace

CsvWriter::CsvWriter(std::ostream &os, const std::vector<std::string> &header)
    : os_(&os), columns_(header.size())
{
    rose_assert(columns_ > 0, "CSV header must be non-empty");
    emitRow(*os_, header);
}

CsvWriter::CsvWriter(const std::string &path,
                     const std::vector<std::string> &header)
    : owned_(path), os_(&owned_), columns_(header.size())
{
    if (!owned_)
        rose_fatal("cannot open CSV output file: ", path);
    rose_assert(columns_ > 0, "CSV header must be non-empty");
    emitRow(*os_, header);
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    if (cells.size() != columns_) {
        rose_panic("CSV row has ", cells.size(), " cells, expected ",
                   columns_);
    }
    emitRow(*os_, cells);
    ++rows_;
}

} // namespace rose
