/**
 * @file
 * Minimal CSV emission, matching the paper's artifact output format:
 * "CSV logs from the synchronizer, tracking UAV dynamics, sensing
 * requests, and control targets."
 */

#ifndef ROSE_UTIL_CSV_HH
#define ROSE_UTIL_CSV_HH

#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace rose {

/**
 * Row-oriented CSV writer. Construct with a header; each row must supply
 * exactly as many cells as the header has columns.
 */
class CsvWriter
{
  public:
    /** Write to an externally-owned stream (e.g. std::cout). */
    CsvWriter(std::ostream &os, const std::vector<std::string> &header);

    /** Open and own a file stream; throws via fatal on failure. */
    CsvWriter(const std::string &path,
              const std::vector<std::string> &header);

    /** Append one row of already-formatted cells. */
    void writeRow(const std::vector<std::string> &cells);

    /** Append one row, formatting each value with operator<<. */
    template <typename... Args>
    void
    row(Args &&...args)
    {
        std::vector<std::string> cells;
        cells.reserve(sizeof...(args));
        (cells.push_back(format(std::forward<Args>(args))), ...);
        writeRow(cells);
    }

    size_t columns() const { return columns_; }
    size_t rowsWritten() const { return rows_; }

  private:
    template <typename T>
    static std::string
    format(T &&v)
    {
        std::ostringstream os;
        os << v;
        return os.str();
    }

    std::ofstream owned_;
    std::ostream *os_;
    size_t columns_;
    size_t rows_ = 0;
};

} // namespace rose

#endif // ROSE_UTIL_CSV_HH
