#include "geometry.hh"

#include "logging.hh"

namespace rose {

Quat
Quat::fromAxisAngle(const Vec3 &axis, double angle_rad)
{
    Vec3 u = axis.normalized();
    double half = angle_rad * 0.5;
    double s = std::sin(half);
    return {std::cos(half), u.x * s, u.y * s, u.z * s};
}

Quat
Quat::fromEuler(double roll, double pitch, double yaw)
{
    double cr = std::cos(roll * 0.5), sr = std::sin(roll * 0.5);
    double cp = std::cos(pitch * 0.5), sp = std::sin(pitch * 0.5);
    double cy = std::cos(yaw * 0.5), sy = std::sin(yaw * 0.5);
    return {cr * cp * cy + sr * sp * sy,
            sr * cp * cy - cr * sp * sy,
            cr * sp * cy + sr * cp * sy,
            cr * cp * sy - sr * sp * cy};
}

void
Quat::normalize()
{
    double n = norm();
    if (n <= 0.0) {
        // Degenerate attitude; reset to identity rather than propagate NaNs.
        *this = Quat{};
        return;
    }
    w /= n; x /= n; y /= n; z /= n;
}

Vec3
Quat::rotate(const Vec3 &v) const
{
    // v' = q * (0, v) * q^-1, expanded to avoid temporaries.
    Vec3 u{x, y, z};
    Vec3 t = 2.0 * u.cross(v);
    return v + w * t + u.cross(t);
}

Vec3
Quat::rotateInverse(const Vec3 &v) const
{
    return conjugate().rotate(v);
}

double
Quat::yaw() const
{
    return std::atan2(2.0 * (w * z + x * y), 1.0 - 2.0 * (y * y + z * z));
}

double
Quat::pitch() const
{
    double s = 2.0 * (w * y - z * x);
    s = clampd(s, -1.0, 1.0);
    return std::asin(s);
}

double
Quat::roll() const
{
    return std::atan2(2.0 * (w * x + y * z), 1.0 - 2.0 * (x * x + y * y));
}

Mat3
Mat3::identity()
{
    return diagonal(1.0, 1.0, 1.0);
}

Mat3
Mat3::diagonal(double a, double b, double c)
{
    Mat3 r;
    r.m[0][0] = a;
    r.m[1][1] = b;
    r.m[2][2] = c;
    return r;
}

Vec3
Mat3::operator*(const Vec3 &v) const
{
    return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z};
}

Mat3
Mat3::operator*(const Mat3 &o) const
{
    Mat3 r;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            for (int k = 0; k < 3; ++k)
                r.m[i][j] += m[i][k] * o.m[k][j];
    return r;
}

Mat3
Mat3::diagonalInverse() const
{
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
            if (i != j && m[i][j] != 0.0)
                rose_panic("diagonalInverse on non-diagonal matrix");
        }
    }
    rose_assert(m[0][0] != 0.0 && m[1][1] != 0.0 && m[2][2] != 0.0,
                "singular diagonal matrix");
    return diagonal(1.0 / m[0][0], 1.0 / m[1][1], 1.0 / m[2][2]);
}

double
wrapAngle(double a)
{
    while (a > kPi)
        a -= 2.0 * kPi;
    while (a <= -kPi)
        a += 2.0 * kPi;
    return a;
}

} // namespace rose
