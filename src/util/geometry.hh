/**
 * @file
 * Small fixed-size linear algebra used by the environment simulator:
 * 3-vectors, quaternions, and 3x3 matrices. Double precision throughout;
 * the physics integrator is the consumer, so numerical robustness beats
 * raw speed here.
 */

#ifndef ROSE_UTIL_GEOMETRY_HH
#define ROSE_UTIL_GEOMETRY_HH

#include <cmath>

namespace rose {

/** A 3-component double-precision vector. */
struct Vec3
{
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    constexpr Vec3() = default;
    constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

    constexpr Vec3 operator+(const Vec3 &o) const
    { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3 operator-(const Vec3 &o) const
    { return {x - o.x, y - o.y, z - o.z}; }
    constexpr Vec3 operator-() const { return {-x, -y, -z}; }
    constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }

    Vec3 &operator+=(const Vec3 &o)
    { x += o.x; y += o.y; z += o.z; return *this; }
    Vec3 &operator-=(const Vec3 &o)
    { x -= o.x; y -= o.y; z -= o.z; return *this; }
    Vec3 &operator*=(double s) { x *= s; y *= s; z *= s; return *this; }

    constexpr double dot(const Vec3 &o) const
    { return x * o.x + y * o.y + z * o.z; }

    constexpr Vec3
    cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }

    double norm() const { return std::sqrt(dot(*this)); }
    constexpr double squaredNorm() const { return dot(*this); }

    /** Unit vector in this direction; returns zero vector for zero input. */
    Vec3
    normalized() const
    {
        double n = norm();
        return n > 0.0 ? *this / n : Vec3{};
    }
};

constexpr Vec3 operator*(double s, const Vec3 &v) { return v * s; }

/**
 * Unit quaternion for attitude representation. Hamilton convention,
 * (w, x, y, z), rotating body-frame vectors into the world frame via
 * rotate().
 */
struct Quat
{
    double w = 1.0;
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    constexpr Quat() = default;
    constexpr Quat(double w_, double x_, double y_, double z_)
        : w(w_), x(x_), y(y_), z(z_) {}

    /** Quaternion from an axis-angle rotation; axis need not be unit. */
    static Quat fromAxisAngle(const Vec3 &axis, double angle_rad);

    /** Quaternion from intrinsic Z-Y-X (yaw, pitch, roll) Euler angles. */
    static Quat fromEuler(double roll, double pitch, double yaw);

    constexpr Quat
    operator*(const Quat &o) const
    {
        return {w * o.w - x * o.x - y * o.y - z * o.z,
                w * o.x + x * o.w + y * o.z - z * o.y,
                w * o.y - x * o.z + y * o.w + z * o.x,
                w * o.z + x * o.y - y * o.x + z * o.w};
    }

    constexpr Quat conjugate() const { return {w, -x, -y, -z}; }

    double norm() const { return std::sqrt(w * w + x * x + y * y + z * z); }

    /** Renormalize in place; guards against integrator drift. */
    void normalize();

    /** Rotate a body-frame vector into the world frame. */
    Vec3 rotate(const Vec3 &v) const;

    /** Rotate a world-frame vector into the body frame. */
    Vec3 rotateInverse(const Vec3 &v) const;

    /** Yaw (heading) extracted from the Z-Y-X Euler decomposition. */
    double yaw() const;
    double pitch() const;
    double roll() const;
};

/** Row-major 3x3 matrix; used for inertia tensors. */
struct Mat3
{
    double m[3][3] = {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}};

    static Mat3 identity();
    /** Diagonal matrix from the three diagonal entries. */
    static Mat3 diagonal(double a, double b, double c);

    Vec3 operator*(const Vec3 &v) const;
    Mat3 operator*(const Mat3 &o) const;

    /** Inverse of a diagonal matrix; panics when applied off-diagonal. */
    Mat3 diagonalInverse() const;
};

/** Wrap an angle into (-pi, pi]. */
double wrapAngle(double a);

/** Linear interpolation. */
constexpr double
lerp(double a, double b, double t)
{
    return a + (b - a) * t;
}

/** Clamp helper mirroring std::clamp but constexpr-friendly on doubles. */
constexpr double
clampd(double v, double lo, double hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

constexpr double kPi = 3.14159265358979323846;

/** Degrees to radians. */
constexpr double deg2rad(double d) { return d * kPi / 180.0; }
/** Radians to degrees. */
constexpr double rad2deg(double r) { return r * 180.0 / kPi; }

} // namespace rose

#endif // ROSE_UTIL_GEOMETRY_HH
