/**
 * @file
 * Small non-cryptographic hashing for golden-trace regression tests:
 * FNV-1a over byte strings. The goldens checked into tests/ are these
 * hashes of canonical-mission trajectory CSVs; the algorithm must
 * therefore never change silently (that would invalidate every golden
 * at once without catching any real drift).
 */

#ifndef ROSE_UTIL_HASH_HH
#define ROSE_UTIL_HASH_HH

#include <cstdint>
#include <string_view>

namespace rose {

constexpr uint64_t kFnv1aOffsetBasis = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnv1aPrime = 0x100000001b3ULL;

/** 64-bit FNV-1a over a byte string. */
constexpr uint64_t
fnv1a(std::string_view bytes, uint64_t seed = kFnv1aOffsetBasis)
{
    uint64_t h = seed;
    for (char c : bytes) {
        h ^= uint64_t(uint8_t(c));
        h *= kFnv1aPrime;
    }
    return h;
}

static_assert(fnv1a("") == kFnv1aOffsetBasis);
static_assert(fnv1a("a") == 0xaf63dc4c8601ec8cULL);

/** 64-bit FNV-1a over a raw byte buffer (e.g. binary payloads). */
inline uint64_t
fnv1a(const void *data, size_t n, uint64_t seed = kFnv1aOffsetBasis)
{
    return fnv1a(
        std::string_view(static_cast<const char *>(data), n), seed);
}

} // namespace rose

#endif // ROSE_UTIL_HASH_HH
