#include "logging.hh"

#include <atomic>
#include <cstdio>

namespace rose {

namespace {

// Atomic so concurrent mission workers (core::BatchRunner) can log
// while another thread adjusts verbosity without a data race; each log
// line is emitted with a single fprintf so lines never interleave.
std::atomic<LogLevel> gThreshold{LogLevel::Inform};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Panic: return "panic";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Warn: return "warn";
      case LogLevel::Inform: return "info";
      case LogLevel::Debug: return "debug";
    }
    return "?";
}

} // namespace

LogLevel
logThreshold()
{
    return gThreshold.load(std::memory_order_relaxed);
}

void
setLogThreshold(LogLevel level)
{
    gThreshold.store(level, std::memory_order_relaxed);
}

namespace detail {

void
emitLog(LogLevel level, const std::string &msg, const char *file, int line)
{
    if (static_cast<int>(level) >
        static_cast<int>(gThreshold.load(std::memory_order_relaxed)))
        return;
    if (level == LogLevel::Panic || level == LogLevel::Fatal) {
        std::fprintf(stderr, "[%s] %s (%s:%d)\n", levelName(level),
                     msg.c_str(), file, line);
    } else {
        std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
    }
}

void
panicExit()
{
    std::abort();
}

void
fatalExit()
{
    std::exit(1);
}

} // namespace detail

} // namespace rose
